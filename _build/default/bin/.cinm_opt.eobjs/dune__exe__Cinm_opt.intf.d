bin/cinm_opt.mli:
