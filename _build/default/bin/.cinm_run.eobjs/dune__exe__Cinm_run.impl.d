bin/cinm_run.ml: Arg Backend Benchmark Cinm_benchmarks Cinm_core Cinm_dialects Cinm_ir Cmd Cmdliner Driver List Printf Report Suites Term
