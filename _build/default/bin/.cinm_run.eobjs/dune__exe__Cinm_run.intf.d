bin/cinm_run.mli:
