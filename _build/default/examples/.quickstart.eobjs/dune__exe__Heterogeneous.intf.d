examples/heterogeneous.mli:
