examples/mlp_inference.ml: Attr Backend Benchmark Cinm_benchmarks Cinm_core Cinm_dialects Cinm_ir Cinm_transforms Driver Func Hashtbl Ir List Ml_kernels Option Pass Printer Printf Report
