examples/prim_histogram.ml: Backend Benchmark Cinm_benchmarks Cinm_core Cinm_dialects Driver List Prim_baseline Prim_kernels Printf Report
