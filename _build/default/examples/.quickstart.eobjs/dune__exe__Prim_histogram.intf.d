examples/prim_histogram.mli:
