examples/quickstart.ml: Backend Builder Cinm_core Cinm_dialects Cinm_interp Cinm_ir Driver Func Func_d Linalg_d List Printer Registry Report Rtval String Tensor Types
