examples/quickstart.mli:
