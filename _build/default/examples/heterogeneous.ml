(* Heterogeneous target selection (paper §3.2.2 and §3.4): one program
   containing several kernels, where the cost-model-driven target
   selection sends each cinm op to the device that suits it — gemm to the
   crossbar, the reduction and elementwise tail to UPMEM, leftovers to the
   host. The program is then lowered with BOTH device pipelines and
   executed with both simulators attached.

   Run with:  dune exec examples/heterogeneous.exe *)

open Cinm_ir
open Cinm_dialects
open Cinm_transforms
open Cinm_interp
module Usim = Cinm_upmem_sim
module Msim = Cinm_memristor_sim

let () = Registry.ensure_all ()

let tensor shape = Types.Tensor (shape, Types.I32)

(* score = reduce_add( (A x B) elementwise* S ), plus a histogram of S:
   the gemm prefers the crossbar, the elementwise/reduce/histogram ops
   prefer UPMEM (Table 1: no cim reduce/histogram). *)
let build () =
  let f =
    Func.create ~name:"hetero"
      ~arg_tys:[ tensor [| 64; 64 |]; tensor [| 64; 64 |]; tensor [| 64; 64 |] ]
      ~result_tys:[ Types.Scalar Types.I32; tensor [| 16 |] ]
  in
  let b = Builder.for_func f in
  let mm = Linalg_d.matmul b (Func.param f 0) (Func.param f 1) in
  let weighted = Linalg_d.mul b mm (Func.param f 2) in
  let score = Linalg_d.reduce b ~op:"add" weighted in
  let hist = Cinm_d.histogram b (Func.param f 2) ~bins:16 in
  Func_d.return b [ score; hist ];
  f

let inputs () =
  [
    Rtval.Tensor (Tensor.init [| 64; 64 |] (fun i -> (i mod 7) - 3));
    Rtval.Tensor (Tensor.init [| 64; 64 |] (fun i -> (i mod 5) - 2));
    Rtval.Tensor (Tensor.init [| 64; 64 |] (fun i -> i mod 16));
  ]

let () =
  let f = build () in
  let m = Func.create_module () in
  Func.add_func m f;

  (* Consult the registered cost models (§3.3) for each candidate device,
     then map with the paper's greedy policy: matmul-like ops go to the
     crossbar, every other cinm op to UPMEM. *)
  Cost_model.clear ();
  Cost_model.register_reference_models ();
  Pass.run_pipeline [ Tosa_to_linalg.pass; Linalg_to_cinm.pass ] m;
  print_endline "== cost-model estimates per op (informational, us) ==";
  Func.walk
    (fun op ->
      if Cinm_d.support_of op.Ir.name <> None then begin
        Printf.printf "  %-16s" op.Ir.name;
        List.iter
          (fun (cm : Cost_model.t) ->
            match cm.Cost_model.estimate op with
            | Some t -> Printf.printf "  %s=%.2f" cm.Cost_model.device (1e6 *. t)
            | None -> Printf.printf "  %s=n/a" cm.Cost_model.device)
          (Cost_model.registered ());
        print_newline ()
      end)
    (List.hd m.Func.funcs);
  Pass.run_pipeline [ Target_select.pass () ] m;
  print_endline "\n== greedy target decisions (paper section 3.2.2) ==";
  Func.walk
    (fun op ->
      match Ir.attr op "target" with
      | Some (Attr.Str t) -> Printf.printf "  %-16s -> %s\n" op.Ir.name t
      | _ -> ())
    (List.hd m.Func.funcs);

  (* Lower the cim-targeted ops, then the cnm-targeted ones, then the cnm
     program down to upmem: one module, two accelerators. *)
  let upmem_cfg = { Cinm_to_cnm.default_options with dpus = 16; tasklets = 16 } in
  Pass.run_pipeline
    [ Ew_fusion.pass;
      Cinm_to_cim.pass ~options:{ Cinm_to_cim.default_options with parallel = true } ();
      Loop_unroll.pass; Cim_to_memristor.assign_pass ~tiles:4; Cim_to_memristor.pass;
      Licm.pass; Licm.pass;
      Cinm_to_cnm.pass ~options:upmem_cfg (); Cnm_to_upmem.pass (); ]
    m;

  (* Execute with BOTH device simulators hooked into the interpreter. *)
  let upmem = Usim.Machine.create (Usim.Config.default ~dimms:1 ()) in
  let crossbar = Msim.Machine.create (Msim.Config.default ()) in
  let results, _profile =
    Interp.run_func
      ~hooks:[ Usim.Machine.hook upmem; Msim.Machine.hook crossbar ]
      (List.hd m.Func.funcs) (inputs ())
  in
  (* check against the plain host interpretation *)
  let expected, _ = Interp.run_func (build ()) (inputs ()) in
  assert (expected = results);
  print_endline "\n== one program, two accelerators ==";
  Printf.printf "upmem:    %s\n" (Usim.Stats.to_string upmem.Usim.Machine.stats);
  Printf.printf "crossbar: %s\n" (Msim.Stats.to_string crossbar.Msim.Machine.stats);
  (match results with
  | [ Rtval.Int score; Rtval.Tensor hist ] ->
    Printf.printf "\nscore = %d, histogram = %s\n" score (Tensor.to_string hist)
  | _ -> assert false);
  print_endline "results verified against the host reference."
