(* ML front-end example: a 3-layer MLP entering through the tosa dialect
   (as torch-mlir would produce it), compiled for the UPMEM machine and
   for the memristive crossbar — the paper's MLP benchmark end to end.

   Shows the tosa -> linalg -> cinm decomposition the paper describes
   (§3.2.2): tosa.fully_connected becomes transpose + matmul + bias add;
   the matmuls offload; the ReLU clamps run on the host.

   Run with:  dune exec examples/mlp_inference.exe *)

open Cinm_ir
open Cinm_core
open Cinm_benchmarks

let () = Cinm_dialects.Registry.ensure_all ()

let bench = Ml_kernels.mlp ~batch:32 ~d_in:32 ~d_hidden:32 ~d_out:16 ()

let () =
  print_endline "== MLP at the tosa level ==";
  print_endline (Printer.func_to_string (bench.Benchmark.build ()));

  (* Stage 1: decompose tosa into linalg + cinm and inspect the ops. *)
  let m = Func.create_module () in
  Func.add_func m (bench.Benchmark.build ());
  Pass.run_pipeline
    [ Cinm_transforms.Tosa_to_linalg.pass; Cinm_transforms.Linalg_to_cinm.pass;
      Cinm_transforms.Target_select.pass () ]
    m;
  print_endline "\n== after tosa-to-linalg + linalg-to-cinm + target selection ==";
  let counts = Hashtbl.create 16 in
  Func.walk
    (fun op ->
      let target =
        match Ir.attr op "target" with Some (Attr.Str t) -> t | _ -> "host"
      in
      let key = Printf.sprintf "%-18s -> %s" op.Ir.name target in
      Hashtbl.replace counts key (1 + Option.value ~default:0 (Hashtbl.find_opt counts key)))
    (List.hd m.Func.funcs);
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts []
  |> List.sort compare
  |> List.iter (fun (k, v) -> Printf.printf "  %dx %s\n" v k);

  (* Stage 2: run on both device backends and compare. *)
  print_endline "\n== simulated execution ==";
  List.iter
    (fun backend ->
      let results, report =
        Driver.compile_and_run backend (bench.Benchmark.build ()) (bench.Benchmark.inputs ())
      in
      assert (Benchmark.results_match bench results);
      print_endline (Report.to_string report))
    [
      Backend.Host_xeon;
      Backend.Upmem (Backend.default_upmem ~dimms:1 ~dpus_per_dimm:8 ~tasklets:8 ~optimize:true ());
      Backend.Cim (Backend.default_cim ~min_writes:true ~parallel:true ());
    ];
  print_endline "\ninference results identical on every backend."
