(* PrIM-workload example: the hst-l histogram benchmark — the paper's
   best case vs the hand-written baseline (Fig. 12: ~3.7x faster).

   Runs both the CINM-compiled histogram and the hand-written PrIM-style
   kernel on the same simulated UPMEM machine and explains where the
   difference comes from (WRAM block sizes and the merge strategy).

   Run with:  dune exec examples/prim_histogram.exe *)

open Cinm_core
open Cinm_benchmarks

let () = Cinm_dialects.Registry.ensure_all ()

let config = Backend.default_upmem ~dimms:1 ~dpus_per_dimm:8 ~tasklets:16 ~optimize:true ()
let n = 32768
let bins = 256

let () =
  Printf.printf "histogram of %d values into %d bins on a %d-DPU machine\n\n" n bins
    (config.Backend.dimms * config.Backend.dpus_per_dimm);

  (* CINM-compiled version: device-independent cinm.histogram, lowered to
     per-PU private histograms with large WRAM blocks, merged on the host
     with cinm.merge_partial. *)
  let bench = Prim_kernels.hst_l ~n ~bins () in
  let compiled = Driver.compile_func (Backend.Upmem config) (bench.Benchmark.build ()) in
  let results, cinm_report = Driver.run compiled (bench.Benchmark.inputs ()) in
  assert (Benchmark.results_match bench results);
  Printf.printf "cinm (compiled):     %s\n" (Report.to_string cinm_report);

  (* Hand-written PrIM-style version: small input blocks (WRAM shared with
     the histogram), chunked MRAM merge with barriers. *)
  let baseline = Prim_baseline.hst_l config ~n ~bins () in
  let _, prim_report =
    Driver.run_upmem_func ~backend_name:"prim"
      ~sim_config:(Driver.upmem_sim_config config)
      (baseline.Benchmark.build ())
      (baseline.Benchmark.inputs ())
  in
  Printf.printf "prim (hand-written): %s\n" (Report.to_string prim_report);

  let kernel r = List.assoc "kernel" r.Report.breakdown in
  Printf.printf "\nkernel speedup of the compiled code: %.1fx (paper reports ~3.7x)\n"
    (kernel prim_report /. kernel cinm_report);
  print_endline
    "why: the compiler sizes DMA blocks to the per-tasklet WRAM budget and keeps\n\
     per-PU histograms private (merged on the host); the PrIM kernel uses small\n\
     fixed blocks and synchronizes tasklets while merging through MRAM."
