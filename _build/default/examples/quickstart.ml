(* Quickstart: build a device-independent program with the builder API,
   compile it for three backends, and compare the simulated reports.

   Run with:  dune exec examples/quickstart.exe *)

open Cinm_ir
open Cinm_dialects
open Cinm_interp
open Cinm_core

let () = Registry.ensure_all ()

let tensor shape = Types.Tensor (shape, Types.I32)

(* The program: C = A x B, written at the linalg level (paper Fig. 3b) —
   no device API calls, no address translation, no tasklets. *)
let build_program () =
  let f =
    Func.create ~name:"gemm_example"
      ~arg_tys:[ tensor [| 64; 32 |]; tensor [| 32; 16 |] ]
      ~result_tys:[ tensor [| 64; 16 |] ]
  in
  let b = Builder.for_func f in
  let c = Linalg_d.matmul b (Func.param f 0) (Func.param f 1) in
  Func_d.return b [ c ];
  f

let inputs () =
  [
    Rtval.Tensor (Tensor.init [| 64; 32 |] (fun i -> (i mod 17) - 8));
    Rtval.Tensor (Tensor.init [| 32; 16 |] (fun i -> (i mod 11) - 5));
  ]

let () =
  print_endline "== the device-independent input program ==";
  print_endline (Printer.func_to_string (build_program ()));

  (* Compile and simulate on three targets. *)
  let backends =
    [
      Backend.Host_xeon;
      Backend.Upmem (Backend.default_upmem ~dimms:1 ~dpus_per_dimm:8 ~tasklets:8 ~optimize:true ());
      Backend.Cim (Backend.default_cim ~min_writes:true ~parallel:true ());
    ]
  in
  print_endline "\n== compile + simulate per backend ==";
  let reference = ref None in
  List.iter
    (fun backend ->
      let results, report = Driver.compile_and_run backend (build_program ()) (inputs ()) in
      (match (!reference, results) with
      | None, [ Rtval.Tensor t ] -> reference := Some t
      | Some expected, [ Rtval.Tensor t ] ->
        assert (Tensor.equal expected t) (* every backend computes the same C *)
      | _ -> assert false);
      print_endline (Report.to_string report))
    backends;
  print_endline "\nall backends agree on the result.";

  (* Peek at what the compiler generated for UPMEM. *)
  let compiled =
    Driver.compile_func
      (Backend.Upmem (Backend.default_upmem ~dimms:1 ~dpus_per_dimm:2 ~tasklets:2 ()))
      (build_program ())
  in
  print_endline "\n== lowered upmem-level IR (excerpt) ==";
  let text = Printer.module_to_string compiled.Driver.modul in
  String.split_on_char '\n' text
  |> List.filteri (fun i _ -> i < 25)
  |> List.iter print_endline;
  print_endline "  ..."
