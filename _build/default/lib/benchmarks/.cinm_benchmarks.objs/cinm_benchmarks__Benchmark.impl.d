lib/benchmarks/benchmark.ml: Cinm_interp Cinm_ir Func Interp List Rtval Tensor
