lib/benchmarks/benchmark.mli: Cinm_interp Cinm_ir Func Rtval
