lib/benchmarks/ml_kernels.ml: Benchmark Builder Cinm_d Cinm_dialects Cinm_interp Cinm_ir Func Func_d Linalg_d Printf Rtval Tosa_d Types Workloads
