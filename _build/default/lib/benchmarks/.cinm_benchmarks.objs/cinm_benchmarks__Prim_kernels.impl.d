lib/benchmarks/prim_kernels.ml: Arith Benchmark Builder Cinm_d Cinm_dialects Cinm_interp Cinm_ir Func Func_d Linalg_d Rtval Tensor_d Types Workloads
