lib/benchmarks/suites.ml: Benchmark List Ml_kernels Prim_baseline Prim_kernels
