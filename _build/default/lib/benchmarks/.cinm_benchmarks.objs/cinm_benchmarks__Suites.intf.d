lib/benchmarks/suites.mli: Backend Benchmark Cinm_core
