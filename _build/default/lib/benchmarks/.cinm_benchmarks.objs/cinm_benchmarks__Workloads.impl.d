lib/benchmarks/workloads.ml: Cinm_interp Cinm_ir Tensor
