lib/benchmarks/workloads.mli: Cinm_interp Tensor
