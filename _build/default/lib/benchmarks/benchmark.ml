(* Benchmark descriptor: a device-independent program (built fresh for
   each compilation so pipelines can mutate it) plus deterministic input
   data. *)

open Cinm_ir
open Cinm_interp

type t = {
  name : string;
  category : string;  (** paper benchmark-suite category *)
  description : string;
  build : unit -> Func.t;
  inputs : unit -> Rtval.t list;
}

let make ~name ~category ~description ~build ~inputs =
  { name; category; description; build; inputs }

(* Reference output, computed on the host interpreter. *)
let reference (b : t) =
  let results, _ = Interp.run_func (b.build ()) (b.inputs ()) in
  results

(* Check a backend's results against the host reference. *)
let results_match (b : t) (actual : Rtval.t list) =
  let expected = reference b in
  List.length expected = List.length actual
  && List.for_all2
       (fun e a ->
         match (e, a) with
         | Rtval.Tensor te, Rtval.Tensor ta -> Tensor.equal te ta
         | Rtval.Int ie, Rtval.Int ia -> ie = ia
         | _ -> e = a)
       expected actual
