(* The ML-side benchmarks of the paper's evaluation (§4.1.1): mm, 2mm,
   3mm, conv, the three tensor contractions from OCC, and the 3-layer MLP
   entering through the tosa front-end. Sizes are scaled so the functional
   simulation stays tractable; they can be overridden. *)

open Cinm_ir
open Cinm_dialects
open Cinm_interp

let tensor shape = Types.Tensor (shape, Types.I32)

(* mm: C = A x B *)
let mm ?(m = 256) ?(k = 32) ?(n = 32) () =
  Benchmark.make ~name:"mm" ~category:"linear algebra"
    ~description:(Printf.sprintf "matmul %dx%d * %dx%d" m k k n)
    ~build:(fun () ->
      let f =
        Func.create ~name:"mm" ~arg_tys:[ tensor [| m; k |]; tensor [| k; n |] ]
          ~result_tys:[ tensor [| m; n |] ]
      in
      let b = Builder.for_func f in
      Func_d.return b [ Linalg_d.matmul b (Func.param f 0) (Func.param f 1) ];
      f)
    ~inputs:(fun () ->
      [
        Rtval.Tensor (Workloads.tensor ~seed:1 [| m; k |]);
        Rtval.Tensor (Workloads.tensor ~seed:2 [| k; n |]);
      ])

(* 2mm: E = (A x B) x C — the second gemm depends on the first *)
let mm2 ?(m = 128) ?(k = 32) ?(n = 32) ?(p = 32) () =
  Benchmark.make ~name:"2mm" ~category:"linear algebra"
    ~description:"two dependent matmuls"
    ~build:(fun () ->
      let f =
        Func.create ~name:"mm2"
          ~arg_tys:[ tensor [| m; k |]; tensor [| k; n |]; tensor [| n; p |] ]
          ~result_tys:[ tensor [| m; p |] ]
      in
      let b = Builder.for_func f in
      let d = Linalg_d.matmul b (Func.param f 0) (Func.param f 1) in
      Func_d.return b [ Linalg_d.matmul b d (Func.param f 2) ];
      f)
    ~inputs:(fun () ->
      [
        Rtval.Tensor (Workloads.tensor ~seed:3 [| m; k |]);
        Rtval.Tensor (Workloads.tensor ~seed:4 [| k; n |]);
        Rtval.Tensor (Workloads.tensor ~seed:5 [| n; p |]);
      ])

(* 3mm: G = (A x B) x (C x D) — the third gemm waits on the first two
   (the synchronization-barrier case discussed in §4.2.2) *)
let mm3 ?(m = 128) ?(k = 32) ?(n = 32) ?(p = 32) ?(q = 32) () =
  Benchmark.make ~name:"3mm" ~category:"linear algebra"
    ~description:"two independent matmuls feeding a third"
    ~build:(fun () ->
      let f =
        Func.create ~name:"mm3"
          ~arg_tys:
            [ tensor [| m; k |]; tensor [| k; n |]; tensor [| n; p |]; tensor [| p; q |] ]
          ~result_tys:[ tensor [| m; q |] ]
      in
      let b = Builder.for_func f in
      let e = Linalg_d.matmul b (Func.param f 0) (Func.param f 1) in
      let g = Linalg_d.matmul b (Func.param f 2) (Func.param f 3) in
      Func_d.return b [ Linalg_d.matmul b e g ];
      f)
    ~inputs:(fun () ->
      [
        Rtval.Tensor (Workloads.tensor ~seed:6 [| m; k |]);
        Rtval.Tensor (Workloads.tensor ~seed:7 [| k; n |]);
        Rtval.Tensor (Workloads.tensor ~seed:8 [| n; p |]);
        Rtval.Tensor (Workloads.tensor ~seed:9 [| p; q |]);
      ])

(* conv: 2D convolution (compute-bound ML kernel) *)
let conv ?(h = 64) ?(w = 64) ?(kh = 3) ?(kw = 3) () =
  Benchmark.make ~name:"conv" ~category:"image processing"
    ~description:(Printf.sprintf "2D convolution %dx%d image, %dx%d kernel" h w kh kw)
    ~build:(fun () ->
      let f =
        Func.create ~name:"conv" ~arg_tys:[ tensor [| h; w |]; tensor [| kh; kw |] ]
          ~result_tys:[ tensor [| h - kh + 1; w - kw + 1 |] ]
      in
      let b = Builder.for_func f in
      Func_d.return b [ Linalg_d.conv_2d b (Func.param f 0) (Func.param f 1) ];
      f)
    ~inputs:(fun () ->
      [
        Rtval.Tensor (Workloads.tensor ~seed:10 [| h; w |]);
        Rtval.Tensor (Workloads.tensor ~seed:11 [| kh; kw |]);
      ])

(* Multi-filter convolution, expressed the way the paper's Fig. 5 compiles
   it: im2col of the image against a bank of [filters] flattened kernels.
   This is the conv the CIM evaluation uses (the crossbar needs K x N
   tiles that actually fill the array). *)
let conv_multi ?(h = 64) ?(w = 64) ?(kh = 8) ?(kw = 8) ?(filters = 64) () =
  let oh = h - kh + 1 and ow = w - kw + 1 in
  Benchmark.make ~name:"conv" ~category:"image processing"
    ~description:
      (Printf.sprintf "multi-filter conv %dx%d image, %d %dx%d kernels" h w filters kh kw)
    ~build:(fun () ->
      let f =
        Func.create ~name:"conv_multi"
          ~arg_tys:[ tensor [| h; w |]; tensor [| kh * kw; filters |] ]
          ~result_tys:[ tensor [| oh * ow; filters |] ]
      in
      let b = Builder.for_func f in
      let cols = Cinm_d.im2col b (Func.param f 0) ~kh ~kw in
      Func_d.return b [ Cinm_d.gemm b cols (Func.param f 1) ];
      f)
    ~inputs:(fun () ->
      [
        Rtval.Tensor (Workloads.tensor ~seed:10 [| h; w |]);
        Rtval.Tensor (Workloads.tensor ~seed:11 [| kh * kw; filters |]);
      ])

let einsum_bench ~name ~spec ~a_shape ~b_shape ~out_shape =
  Benchmark.make ~name ~category:"tensor contraction"
    ~description:("einsum " ^ spec)
    ~build:(fun () ->
      let f =
        Func.create ~name ~arg_tys:[ tensor a_shape; tensor b_shape ]
          ~result_tys:[ tensor out_shape ]
      in
      let b = Builder.for_func f in
      Func_d.return b [ Linalg_d.einsum b ~spec (Func.param f 0) (Func.param f 1) ];
      f)
    ~inputs:(fun () ->
      [
        Rtval.Tensor (Workloads.tensor ~seed:12 a_shape);
        Rtval.Tensor (Workloads.tensor ~seed:13 b_shape);
      ])

(* contrl: C_abcd = A_aebf B_dfce (two reductions, §4.1.1) *)
let contrl ?(a = 8) ?(b = 8) ?(c = 8) ?(d = 8) ?(e = 6) ?(f = 6) () =
  einsum_bench ~name:"contrl" ~spec:"aebf,dfce->abcd" ~a_shape:[| a; e; b; f |]
    ~b_shape:[| d; f; c; e |] ~out_shape:[| a; b; c; d |]

(* contrs1: C_ab = A_acd B_dbc *)
let contrs1 ?(a = 32) ?(b = 32) ?(c = 8) ?(d = 8) () =
  einsum_bench ~name:"contrs1" ~spec:"acd,dbc->ab" ~a_shape:[| a; c; d |]
    ~b_shape:[| d; b; c |] ~out_shape:[| a; b |]

(* contrs2: C_abc = A_acd B_db *)
let contrs2 ?(a = 16) ?(b = 16) ?(c = 16) ?(d = 8) () =
  einsum_bench ~name:"contrs2" ~spec:"acd,db->abc" ~a_shape:[| a; c; d |]
    ~b_shape:[| d; b |] ~out_shape:[| a; b; c |]

(* mlp: 3 fully connected layers with ReLU, entering via tosa *)
let mlp ?(batch = 64) ?(d_in = 32) ?(d_hidden = 32) ?(d_out = 16) () =
  Benchmark.make ~name:"mlp" ~category:"machine learning"
    ~description:"3-layer MLP (tosa.fully_connected + clamp)"
    ~build:(fun () ->
      let f =
        Func.create ~name:"mlp"
          ~arg_tys:
            [
              tensor [| batch; d_in |];
              tensor [| d_hidden; d_in |]; tensor [| d_hidden |];
              tensor [| d_hidden; d_hidden |]; tensor [| d_hidden |];
              tensor [| d_out; d_hidden |]; tensor [| d_out |];
            ]
          ~result_tys:[ tensor [| batch; d_out |] ]
      in
      let b = Builder.for_func f in
      let l1 = Tosa_d.fully_connected b (Func.param f 0) (Func.param f 1) (Func.param f 2) in
      let r1 = Tosa_d.relu b l1 in
      let l2 = Tosa_d.fully_connected b r1 (Func.param f 3) (Func.param f 4) in
      let r2 = Tosa_d.relu b l2 in
      let l3 = Tosa_d.fully_connected b r2 (Func.param f 5) (Func.param f 6) in
      Func_d.return b [ l3 ];
      f)
    ~inputs:(fun () ->
      [
        Rtval.Tensor (Workloads.tensor ~seed:14 ~lo:(-8) ~hi:8 [| batch; d_in |]);
        Rtval.Tensor (Workloads.tensor ~seed:15 ~lo:(-4) ~hi:4 [| d_hidden; d_in |]);
        Rtval.Tensor (Workloads.tensor ~seed:16 ~lo:(-4) ~hi:4 [| d_hidden |]);
        Rtval.Tensor (Workloads.tensor ~seed:17 ~lo:(-4) ~hi:4 [| d_hidden; d_hidden |]);
        Rtval.Tensor (Workloads.tensor ~seed:18 ~lo:(-4) ~hi:4 [| d_hidden |]);
        Rtval.Tensor (Workloads.tensor ~seed:19 ~lo:(-4) ~hi:4 [| d_out; d_hidden |]);
        Rtval.Tensor (Workloads.tensor ~seed:20 ~lo:(-4) ~hi:4 [| d_out |]);
      ])
