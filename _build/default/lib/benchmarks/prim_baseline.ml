(* Hand-written UPMEM baselines mirroring the published PrIM kernels
   (Gómez-Luna et al., the paper's §4.3 comparison target). These are
   written directly at the upmem dialect level — the moral equivalent of
   PrIM's hand-optimized C — and run on the same machine simulator as the
   CINM-generated code.

   Structural properties carried over from the PrIM sources:
   - DMA blocks are fixed at 2048 bytes (512 INT32 elements), PrIM's
     BLOCK_SIZE, regardless of the per-tasklet working set;
   - hst-l keeps small input blocks (WRAM is shared with the histogram)
     and merges per-tasklet histograms through MRAM in chunks with
     barriers;
   - mv stages the vector per tasklet and one matrix row at a time;
   - ts hand-unrolls the inner dot-product loop (x4);
   - bfs traverses the adjacency structure with small irregular DMA reads
     (CSR-style access), where CINM's gemv rewrite gets bulk transfers. *)

open Cinm_ir
open Cinm_dialects
open Cinm_transforms
open Cinm_interp
open Cinm_core

let tensor shape = Types.Tensor (shape, Types.I32)

let prim_block = 512  (* elements: PrIM's 2048-byte BLOCK_SIZE *)

let grid_of (c : Backend.upmem_config) =
  (c.Backend.dimms * c.Backend.dpus_per_dimm, c.Backend.tasklets)

let block_of l = Cnm_to_upmem.largest_divisor_leq l prim_block

let check_divisible name total p =
  if total mod p <> 0 then
    invalid_arg
      (Printf.sprintf "prim %s: %d elements not divisible by %d PUs" name total p)

(* ----- va ----- *)

let va (config : Backend.upmem_config) ?(n = 65536) () =
  let dpus, tasklets = grid_of config in
  let p = dpus * tasklets in
  check_divisible "va" n p;
  let l = n / p in
  Benchmark.make ~name:"va" ~category:"prim-baseline" ~description:"PrIM vector add"
    ~build:(fun () ->
      let f =
        Func.create ~name:"prim_va" ~arg_tys:[ tensor [| n |]; tensor [| n |] ]
          ~result_tys:[ tensor [| n |] ]
      in
      let b = Builder.for_func f in
      let wg = Upmem_d.alloc_dpus b ~dimms:config.Backend.dimms ~dpus ~tasklets in
      let a_buf = Upmem_d.alloc b wg ~shape:[| l |] ~dtype:Types.I32 ~level:0 in
      let b_buf = Upmem_d.alloc b wg ~shape:[| l |] ~dtype:Types.I32 ~level:0 in
      let c_buf = Upmem_d.alloc b wg ~shape:[| l |] ~dtype:Types.I32 ~level:0 in
      let t1 = Upmem_d.scatter b (Func.param f 0) a_buf wg ~map:"block" in
      let t2 = Upmem_d.scatter b (Func.param f 1) b_buf wg ~map:"block" in
      let bs = block_of l in
      let tl =
        Upmem_d.launch b wg ~tasklets ~ins:[ a_buf; b_buf ] ~outs:[ c_buf ]
          (fun bb args ->
            let a_m = args.(0) and b_m = args.(1) and c_m = args.(2) in
            let wram_a = Upmem_d.wram_alloc bb [| bs |] Types.I32 in
            let wram_b = Upmem_d.wram_alloc bb [| bs |] Types.I32 in
            let wram_c = Upmem_d.wram_alloc bb [| bs |] Types.I32 in
            let c0 = Arith.const_index bb 0 in
            let c1 = Arith.const_index bb 1 in
            Cnm_to_upmem.foreach_block bb ~l ~bs (fun bb ~off ->
                Upmem_d.mram_read bb ~mram:a_m ~wram:wram_a ~mram_off:off ~wram_off:c0
                  ~count:bs;
                Upmem_d.mram_read bb ~mram:b_m ~wram:wram_b ~mram_off:off ~wram_off:c0
                  ~count:bs;
                Scf_d.for0 bb ~lb:c0 ~ub:(Arith.const_index bb bs) ~step:c1 (fun bb i ->
                    let x = Memref_d.load bb wram_a [ i ] in
                    let y = Memref_d.load bb wram_b [ i ] in
                    Memref_d.store bb (Arith.addi bb x y) wram_c [ i ]);
                Upmem_d.mram_write bb ~wram:wram_c ~mram:c_m ~mram_off:off ~wram_off:c0
                  ~count:bs))
      in
      let out, tg = Upmem_d.gather b c_buf wg ~result_shape:[| n |] in
      Cnm_d.wait b [ t1; t2; tl; tg ];
      Func_d.return b [ out ];
      f)
    ~inputs:(fun () ->
      [
        Rtval.Tensor (Workloads.tensor ~seed:21 [| n |]);
        Rtval.Tensor (Workloads.tensor ~seed:22 [| n |]);
      ])

(* ----- mv ----- *)

let mv (config : Backend.upmem_config) ?(m = 512) ?(n = 64) () =
  let dpus, tasklets = grid_of config in
  let p = dpus * tasklets in
  check_divisible "mv" m p;
  let rows = m / p in
  Benchmark.make ~name:"mv" ~category:"prim-baseline" ~description:"PrIM matrix-vector"
    ~build:(fun () ->
      let f =
        Func.create ~name:"prim_mv" ~arg_tys:[ tensor [| m; n |]; tensor [| n |] ]
          ~result_tys:[ tensor [| m |] ]
      in
      let b = Builder.for_func f in
      let wg = Upmem_d.alloc_dpus b ~dimms:config.Backend.dimms ~dpus ~tasklets in
      let a_buf = Upmem_d.alloc b wg ~shape:[| rows; n |] ~dtype:Types.I32 ~level:0 in
      let x_buf = Upmem_d.alloc b wg ~shape:[| n |] ~dtype:Types.I32 ~level:1 in
      let y_buf = Upmem_d.alloc b wg ~shape:[| rows |] ~dtype:Types.I32 ~level:0 in
      let t1 = Upmem_d.scatter b (Func.param f 0) a_buf wg ~map:"block" in
      let t2 = Upmem_d.scatter b (Func.param f 1) x_buf wg ~map:"broadcast" in
      let tl =
        Upmem_d.launch b wg ~tasklets ~ins:[ a_buf; x_buf ] ~outs:[ y_buf ]
          (fun bb args ->
            let a_m = args.(0) and x_m = args.(1) and y_m = args.(2) in
            let wram_x = Upmem_d.wram_alloc bb [| n |] Types.I32 in
            let wram_row = Upmem_d.wram_alloc bb [| n |] Types.I32 in
            let wram_y = Upmem_d.wram_alloc bb [| rows |] Types.I32 in
            let c0 = Arith.const_index bb 0 in
            let c1 = Arith.const_index bb 1 in
            let cn = Arith.const_index bb n in
            let zero = Arith.constant bb 0 in
            Upmem_d.mram_read bb ~mram:x_m ~wram:wram_x ~mram_off:c0 ~wram_off:c0 ~count:n;
            Scf_d.for0 bb ~lb:c0 ~ub:(Arith.const_index bb rows) ~step:c1 (fun bb i ->
                let row_off = Arith.muli bb i cn in
                Upmem_d.mram_read bb ~mram:a_m ~wram:wram_row ~mram_off:row_off
                  ~wram_off:c0 ~count:n;
                let acc =
                  Scf_d.for_ bb ~lb:c0 ~ub:cn ~step:c1 ~init:[ zero ] (fun bb j iters ->
                      let a = Memref_d.load bb wram_row [ j ] in
                      let x = Memref_d.load bb wram_x [ j ] in
                      [ Arith.addi bb iters.(0) (Arith.muli bb a x) ])
                in
                Memref_d.store bb (List.hd acc) wram_y [ i ]);
            Upmem_d.mram_write bb ~wram:wram_y ~mram:y_m ~mram_off:c0 ~wram_off:c0
              ~count:rows)
      in
      let out, tg = Upmem_d.gather b y_buf wg ~result_shape:[| m |] in
      Cnm_d.wait b [ t1; t2; tl; tg ];
      Func_d.return b [ out ];
      f)
    ~inputs:(fun () ->
      [
        Rtval.Tensor (Workloads.tensor ~seed:23 [| m; n |]);
        Rtval.Tensor (Workloads.tensor ~seed:24 [| n |]);
      ])

(* ----- hst-l ----- *)

let hst_l (config : Backend.upmem_config) ?(n = 65536) ?(bins = 256) () =
  let dpus, tasklets = grid_of config in
  let p = dpus * tasklets in
  check_divisible "hst-l" n p;
  let l = n / p in
  Benchmark.make ~name:"hst-l" ~category:"prim-baseline" ~description:"PrIM histogram (large)"
    ~build:(fun () ->
      let f =
        Func.create ~name:"prim_hst" ~arg_tys:[ tensor [| n |] ]
          ~result_tys:[ tensor [| bins |] ]
      in
      let b = Builder.for_func f in
      let wg = Upmem_d.alloc_dpus b ~dimms:config.Backend.dimms ~dpus ~tasklets in
      let a_buf = Upmem_d.alloc b wg ~shape:[| l |] ~dtype:Types.I32 ~level:0 in
      let h_buf = Upmem_d.alloc b wg ~shape:[| bins |] ~dtype:Types.I32 ~level:0 in
      let t1 = Upmem_d.scatter b (Func.param f 0) a_buf wg ~map:"block" in
      (* small input blocks: WRAM is shared with the histogram tables *)
      let bs = Cnm_to_upmem.largest_divisor_leq l 96 in
      let merge_chunk = 16 in
      let tl =
        Upmem_d.launch b wg ~tasklets ~ins:[ a_buf ] ~outs:[ h_buf ] (fun bb args ->
            let a_m = args.(0) and h_m = args.(1) in
            let wram_a = Upmem_d.wram_alloc bb [| bs |] Types.I32 in
            let wram_h = Upmem_d.wram_alloc bb [| bins |] Types.I32 in
            let c0 = Arith.const_index bb 0 in
            let c1 = Arith.const_index bb 1 in
            let one = Arith.constant bb 1 in
            let zero = Arith.constant bb 0 in
            Scf_d.for0 bb ~lb:c0 ~ub:(Arith.const_index bb bins) ~step:c1 (fun bb i ->
                Memref_d.store bb zero wram_h [ i ]);
            Cnm_to_upmem.foreach_block bb ~l ~bs (fun bb ~off ->
                Upmem_d.mram_read bb ~mram:a_m ~wram:wram_a ~mram_off:off ~wram_off:c0
                  ~count:bs;
                Scf_d.for0 bb ~lb:c0 ~ub:(Arith.const_index bb bs) ~step:c1 (fun bb i ->
                    let v = Memref_d.load bb wram_a [ i ] in
                    let slot = Arith.index_cast bb v ~to_ty:Types.Index in
                    let cur = Memref_d.load bb wram_h [ slot ] in
                    Memref_d.store bb (Arith.addi bb cur one) wram_h [ slot ]));
            (* chunked merge into MRAM with synchronization, as in PrIM's
               cross-tasklet histogram merge *)
            Scf_d.for0 bb ~lb:c0 ~ub:(Arith.const_index bb (bins / merge_chunk)) ~step:c1
              (fun bb chunk ->
                Upmem_d.barrier_wait bb;
                let off = Arith.muli bb chunk (Arith.const_index bb merge_chunk) in
                Upmem_d.mram_write bb ~wram:wram_h ~mram:h_m ~mram_off:off ~wram_off:off
                  ~count:merge_chunk))
      in
      let partials, tg = Upmem_d.gather b h_buf wg ~result_shape:[| p * bins |] in
      Cnm_d.wait b [ t1; tl; tg ];
      (* host merge of per-PU histograms *)
      let zero = Arith.constant b 0 in
      let acc0 =
        Builder.build1 b "tensor.splat" ~operands:[ zero ] ~result_tys:[ tensor [| bins |] ]
      in
      let c0 = Arith.const_index b 0 in
      let c1 = Arith.const_index b 1 in
      let cp = Arith.const_index b p in
      let c_bins = Arith.const_index b bins in
      let merged =
        Scf_d.for_ b ~lb:c0 ~ub:cp ~step:c1 ~init:[ acc0 ] (fun bb pi iters ->
            let off = Arith.muli bb pi c_bins in
            let part =
              Tensor_d.extract_slice bb partials ~offsets:[| 0 |] ~sizes:[| bins |]
                ~dyn_offsets:[ off ]
            in
            [ Cinm_d.merge_partial bb ~op:"add" iters.(0) part ])
      in
      Func_d.return b [ List.hd merged ];
      f)
    ~inputs:(fun () -> [ Rtval.Tensor (Workloads.tensor_mod ~seed:26 [| n |] ~bins) ])

(* ----- sel ----- *)

let sel (config : Backend.upmem_config) ?(n = 65536) ?(threshold = 0) () =
  let dpus, tasklets = grid_of config in
  let p = dpus * tasklets in
  check_divisible "sel" n p;
  let l = n / p in
  Benchmark.make ~name:"sel" ~category:"prim-baseline"
    ~description:"PrIM select (fused predicate + local scan, host offsets)"
    ~build:(fun () ->
      let f =
        Func.create ~name:"prim_sel" ~arg_tys:[ tensor [| n |] ]
          ~result_tys:[ tensor [| n |]; Types.Scalar Types.I32 ]
      in
      let b = Builder.for_func f in
      let wg = Upmem_d.alloc_dpus b ~dimms:config.Backend.dimms ~dpus ~tasklets in
      let x_buf = Upmem_d.alloc b wg ~shape:[| l |] ~dtype:Types.I32 ~level:0 in
      let s_buf = Upmem_d.alloc b wg ~shape:[| l |] ~dtype:Types.I32 ~level:0 in
      let t_buf = Upmem_d.alloc b wg ~shape:[| 1 |] ~dtype:Types.I32 ~level:0 in
      let t1 = Upmem_d.scatter b (Func.param f 0) x_buf wg ~map:"block" in
      let bs = block_of l in
      (* kernel 1: fused predicate + local inclusive scan + total *)
      let tl1 =
        Upmem_d.launch b wg ~tasklets ~ins:[ x_buf ] ~outs:[ s_buf; t_buf ]
          (fun bb args ->
            let x_m = args.(0) and s_m = args.(1) and t_m = args.(2) in
            let wram_x = Upmem_d.wram_alloc bb [| bs |] Types.I32 in
            let wram_t = Upmem_d.wram_alloc bb [| 1 |] Types.I32 in
            let c0 = Arith.const_index bb 0 in
            let c1 = Arith.const_index bb 1 in
            let zero = Arith.constant bb 0 in
            let one = Arith.constant bb 1 in
            let thr = Arith.constant bb threshold in
            Memref_d.store bb zero wram_t [ c0 ];
            Cnm_to_upmem.foreach_block bb ~l ~bs (fun bb ~off ->
                Upmem_d.mram_read bb ~mram:x_m ~wram:wram_x ~mram_off:off ~wram_off:c0
                  ~count:bs;
                Scf_d.for0 bb ~lb:c0 ~ub:(Arith.const_index bb bs) ~step:c1 (fun bb i ->
                    let v = Memref_d.load bb wram_x [ i ] in
                    let pred = Arith.cmpi bb Arith.Slt v thr in
                    let flag = Arith.select bb pred one zero in
                    let carry = Memref_d.load bb wram_t [ c0 ] in
                    let acc = Arith.addi bb carry flag in
                    Memref_d.store bb acc wram_x [ i ];
                    Memref_d.store bb acc wram_t [ c0 ]);
                Upmem_d.mram_write bb ~wram:wram_x ~mram:s_m ~mram_off:off ~wram_off:c0
                  ~count:bs);
            Upmem_d.mram_write bb ~wram:wram_t ~mram:t_m ~mram_off:c0 ~wram_off:c0
              ~count:1)
      in
      let totals, tg1 = Upmem_d.gather b t_buf wg ~result_shape:[| p |] in
      Cnm_d.wait b [ t1; tl1; tg1 ];
      let inclusive = Cinm_d.scan b ~op:"add" totals in
      let offsets = Cinm_d.sub b inclusive totals in
      let o_buf = Upmem_d.alloc b wg ~shape:[| 1 |] ~dtype:Types.I32 ~level:0 in
      let t2 = Upmem_d.scatter b offsets o_buf wg ~map:"block" in
      let f_buf = Upmem_d.alloc b wg ~shape:[| l |] ~dtype:Types.I32 ~level:0 in
      (* kernel 2: add the per-PU offsets *)
      let tl2 =
        Upmem_d.launch b wg ~tasklets ~ins:[ s_buf; o_buf ] ~outs:[ f_buf ]
          (fun bb args ->
            Cnm_to_upmem.scan_add_kernel
              { Cnm_to_upmem.default_options with naive_block = prim_block }
              ~style:"naive" ~tasklets ~opname:"add" ~l ~dt:Types.I32 bb args)
      in
      let final, tg2 = Upmem_d.gather b f_buf wg ~result_shape:[| n |] in
      Cnm_d.wait b [ t2; tl2; tg2 ];
      let n_idx = Arith.const_index b (n - 1) in
      let count = Tensor_d.extract b final [ n_idx ] in
      Func_d.return b [ final; count ];
      f)
    ~inputs:(fun () -> [ Rtval.Tensor (Workloads.tensor ~seed:27 [| n |]) ])

(* ----- ts ----- *)

let ts (config : Backend.upmem_config) ?(n = 65543) ?(m = 8) ?(k = 8) () =
  let dpus, tasklets = grid_of config in
  let p = dpus * tasklets in
  let windows = n - m + 1 in
  check_divisible "ts" windows p;
  let l = windows / p in
  if m mod 4 <> 0 then invalid_arg "prim ts: query length must be a multiple of 4";
  Benchmark.make ~name:"ts" ~category:"prim-baseline"
    ~description:"PrIM time series (hand-unrolled inner loop)"
    ~build:(fun () ->
      let f =
        Func.create ~name:"prim_ts" ~arg_tys:[ tensor [| n |]; tensor [| m |] ]
          ~result_tys:[ tensor [| k |]; tensor [| k |] ]
      in
      let b = Builder.for_func f in
      let wg = Upmem_d.alloc_dpus b ~dimms:config.Backend.dimms ~dpus ~tasklets in
      let db_buf = Upmem_d.alloc b wg ~shape:[| l + m - 1 |] ~dtype:Types.I32 ~level:0 in
      let q_buf = Upmem_d.alloc b wg ~shape:[| m |] ~dtype:Types.I32 ~level:1 in
      let base_buf = Upmem_d.alloc b wg ~shape:[| 1 |] ~dtype:Types.I32 ~level:0 in
      let v_buf = Upmem_d.alloc b wg ~shape:[| k |] ~dtype:Types.I32 ~level:0 in
      let i_buf = Upmem_d.alloc b wg ~shape:[| k |] ~dtype:Types.I32 ~level:0 in
      let t1 = Upmem_d.scatter b (Func.param f 0) db_buf wg ~halo:(m - 1) ~map:"overlap" in
      let t2 = Upmem_d.scatter b (Func.param f 1) q_buf wg ~map:"broadcast" in
      let bases =
        let idx = Builder.build1 b "tensor.empty" ~result_tys:[ tensor [| p |] ] in
        let c0 = Arith.const_index b 0 in
        let c1 = Arith.const_index b 1 in
        let cp = Arith.const_index b p in
        let cl = Arith.constant b l in
        List.hd
          (Scf_d.for_ b ~lb:c0 ~ub:cp ~step:c1 ~init:[ idx ] (fun bb pi iters ->
               let pi32 = Arith.index_cast bb pi ~to_ty:(Types.Scalar Types.I32) in
               [ Tensor_d.insert bb (Arith.muli bb pi32 cl) iters.(0) [ pi ] ]))
      in
      let t3 = Upmem_d.scatter b bases base_buf wg ~map:"block" in
      let tl =
        Upmem_d.launch b wg ~tasklets
          ~ins:[ db_buf; q_buf; base_buf ]
          ~outs:[ v_buf; i_buf ]
          (fun bb args ->
            let db_m = args.(0) and q_m = args.(1) and base_m = args.(2) in
            let v_m = args.(3) and i_m = args.(4) in
            let c0 = Arith.const_index bb 0 in
            let c1 = Arith.const_index bb 1 in
            let zero = Arith.constant bb 0 in
            let min_int32 = Arith.constant bb (-0x80000000) in
            let wram_db = Upmem_d.wram_alloc bb [| l + m - 1 |] Types.I32 in
            let wram_q = Upmem_d.wram_alloc bb [| m |] Types.I32 in
            let wram_base = Upmem_d.wram_alloc bb [| 1 |] Types.I32 in
            let scores = Upmem_d.wram_alloc bb [| l |] Types.I32 in
            let wram_v = Upmem_d.wram_alloc bb [| k |] Types.I32 in
            let wram_i = Upmem_d.wram_alloc bb [| k |] Types.I32 in
            Upmem_d.mram_read bb ~mram:db_m ~wram:wram_db ~mram_off:c0 ~wram_off:c0
              ~count:(l + m - 1);
            Upmem_d.mram_read bb ~mram:q_m ~wram:wram_q ~mram_off:c0 ~wram_off:c0 ~count:m;
            Upmem_d.mram_read bb ~mram:base_m ~wram:wram_base ~mram_off:c0 ~wram_off:c0
              ~count:1;
            (* hand-unrolled x4 inner loop: one loop iteration handles four
               query positions, saving induction overhead *)
            Scf_d.for0 bb ~lb:c0 ~ub:(Arith.const_index bb l) ~step:c1 (fun bb w ->
                let score =
                  Scf_d.for_ bb ~lb:c0 ~ub:(Arith.const_index bb m)
                    ~step:(Arith.const_index bb 4) ~init:[ zero ] (fun bb j iters ->
                      let contrib_at jj =
                        let d = Memref_d.load bb wram_db [ Arith.addi bb w jj ] in
                        let q = Memref_d.load bb wram_q [ jj ] in
                        let diff = Arith.subi bb d q in
                        Arith.muli bb diff diff
                      in
                      let j1 = Arith.addi bb j c1 in
                      let j2 = Arith.addi bb j1 c1 in
                      let j3 = Arith.addi bb j2 c1 in
                      let s01 = Arith.addi bb (contrib_at j) (contrib_at j1) in
                      let s23 = Arith.addi bb (contrib_at j2) (contrib_at j3) in
                      [ Arith.addi bb iters.(0) (Arith.addi bb s01 s23) ])
                in
                (* negate so larger = more similar, as in the CINM kernel *)
                Memref_d.store bb (Arith.subi bb zero (List.hd score)) scores [ w ]);
            let base = Memref_d.load bb wram_base [ c0 ] in
            Scf_d.for0 bb ~lb:c0 ~ub:(Arith.const_index bb k) ~step:c1 (fun bb j ->
                let best =
                  Scf_d.for_ bb ~lb:c0 ~ub:(Arith.const_index bb l) ~step:c1
                    ~init:[ min_int32; zero ] (fun bb w iters ->
                      let s = Memref_d.load bb scores [ w ] in
                      let better = Arith.cmpi bb Arith.Sgt s iters.(0) in
                      let w_i32 = Arith.index_cast bb w ~to_ty:(Types.Scalar Types.I32) in
                      [
                        Arith.select bb better s iters.(0);
                        Arith.select bb better w_i32 iters.(1);
                      ])
                in
                match best with
                | [ best_v; best_w ] ->
                  Memref_d.store bb best_v wram_v [ j ];
                  Memref_d.store bb (Arith.addi bb best_w base) wram_i [ j ];
                  let w_idx = Arith.index_cast bb best_w ~to_ty:Types.Index in
                  Memref_d.store bb min_int32 scores [ w_idx ]
                | _ -> assert false);
            Upmem_d.mram_write bb ~wram:wram_v ~mram:v_m ~mram_off:c0 ~wram_off:c0 ~count:k;
            Upmem_d.mram_write bb ~wram:wram_i ~mram:i_m ~mram_off:c0 ~wram_off:c0 ~count:k)
      in
      let all_v, tg1 = Upmem_d.gather b v_buf wg ~result_shape:[| p * k |] in
      let all_i, tg2 = Upmem_d.gather b i_buf wg ~result_shape:[| p * k |] in
      Cnm_d.wait b [ t1; t2; t3; tl; tg1; tg2 ];
      let top_v, top_pos = Cinm_d.topk b all_v ~k in
      let final_idx0 = Builder.build1 b "tensor.empty" ~result_tys:[ tensor [| k |] ] in
      let c0 = Arith.const_index b 0 in
      let c1 = Arith.const_index b 1 in
      let ck = Arith.const_index b k in
      let final_idx =
        Scf_d.for_ b ~lb:c0 ~ub:ck ~step:c1 ~init:[ final_idx0 ] (fun bb j iters ->
            let pos = Tensor_d.extract bb top_pos [ j ] in
            let pos_idx = Arith.index_cast bb pos ~to_ty:Types.Index in
            let global = Tensor_d.extract bb all_i [ pos_idx ] in
            [ Tensor_d.insert bb global iters.(0) [ j ] ])
      in
      Func_d.return b [ top_v; List.hd final_idx ];
      f)
    ~inputs:(fun () ->
      [
        Rtval.Tensor (Workloads.tensor ~seed:28 ~lo:0 ~hi:60 [| n |]);
        Rtval.Tensor (Workloads.tensor ~seed:29 ~lo:0 ~hi:60 [| m |]);
      ])

(* ----- bfs ----- *)

let bfs (config : Backend.upmem_config) ?(v = 256) ?(levels = 4) ?(density_pct = 6) () =
  let dpus, tasklets = grid_of config in
  let p = dpus * tasklets in
  let rows = Cinm_support.Util.ceil_div v p in
  let v_pad = rows * p in
  Benchmark.make ~name:"bfs" ~category:"prim-baseline"
    ~description:"PrIM BFS (irregular adjacency access)"
    ~build:(fun () ->
      let f =
        Func.create ~name:"prim_bfs" ~arg_tys:[ tensor [| v; v |]; tensor [| v |] ]
          ~result_tys:[ tensor [| v |] ]
      in
      let b = Builder.for_func f in
      let wg = Upmem_d.alloc_dpus b ~dimms:config.Backend.dimms ~dpus ~tasklets in
      (* per-PU adjacency rows stay resident in MRAM across levels *)
      let adj_buf = Upmem_d.alloc b wg ~shape:[| rows; v |] ~dtype:Types.I32 ~level:0 in
      let adj_pad =
        if v_pad = v then Func.param f 0
        else Tensor_d.pad b (Func.param f 0) ~low:[| 0; 0 |] ~high:[| v_pad - v; 0 |]
      in
      let t0 = Upmem_d.scatter b adj_pad adj_buf wg ~map:"block" in
      Cnm_d.wait b [ t0 ];
      let one_splat =
        Builder.build1 b "tensor.splat" ~operands:[ Arith.constant b 1 ]
          ~result_tys:[ tensor [| v |] ]
      in
      let rec level_loop lvl frontier visited =
        if lvl = 0 then visited
        else begin
          let fr_buf = Upmem_d.alloc b wg ~shape:[| v |] ~dtype:Types.I32 ~level:1 in
          let t1 = Upmem_d.scatter b frontier fr_buf wg ~map:"broadcast" in
          let out_buf = Upmem_d.alloc b wg ~shape:[| rows |] ~dtype:Types.I32 ~level:0 in
          let tl =
            Upmem_d.launch b wg ~tasklets ~ins:[ adj_buf; fr_buf ] ~outs:[ out_buf ]
              (fun bb args ->
                let adj_m = args.(0) and fr_m = args.(1) and out_m = args.(2) in
                let wram_fr = Upmem_d.wram_alloc bb [| v |] Types.I32 in
                let wram_e = Upmem_d.wram_alloc bb [| 2 |] Types.I32 in
                let wram_out = Upmem_d.wram_alloc bb [| rows |] Types.I32 in
                let c0 = Arith.const_index bb 0 in
                let c1 = Arith.const_index bb 1 in
                let cv = Arith.const_index bb v in
                let zero = Arith.constant bb 0 in
                let one = Arith.constant bb 1 in
                Upmem_d.mram_read bb ~mram:fr_m ~wram:wram_fr ~mram_off:c0 ~wram_off:c0
                  ~count:v;
                Scf_d.for0 bb ~lb:c0 ~ub:(Arith.const_index bb rows) ~step:c1 (fun bb i ->
                    Memref_d.store bb zero wram_out [ i ];
                    let row_off = Arith.muli bb i cv in
                    (* irregular per-edge reads: each adjacency cell comes
                       in through its own small DMA, as in PrIM's CSR walk *)
                    Scf_d.for0 bb ~lb:c0 ~ub:cv ~step:c1 (fun bb j ->
                        let fr = Memref_d.load bb wram_fr [ j ] in
                        let active = Arith.cmpi bb Arith.Ne fr zero in
                        ignore
                          (Scf_d.if_ bb active
                             ~then_:(fun bb ->
                               Upmem_d.mram_read bb ~mram:adj_m ~wram:wram_e
                                 ~mram_off:(Arith.addi bb row_off j) ~wram_off:c0 ~count:1;
                               let a = Memref_d.load bb wram_e [ c0 ] in
                               let hit = Arith.cmpi bb Arith.Ne a zero in
                               let cur = Memref_d.load bb wram_out [ i ] in
                               Memref_d.store bb (Arith.select bb hit one cur) wram_out [ i ];
                               [])
                             ~else_:(fun _ -> [])
                             ~result_tys:[]));
                    ());
                Upmem_d.mram_write bb ~wram:wram_out ~mram:out_m ~mram_off:c0 ~wram_off:c0
                  ~count:rows)
          in
          let raw_pad, tg = Upmem_d.gather b out_buf wg ~result_shape:[| v_pad |] in
          Cnm_d.wait b [ t1; tl; tg ];
          let raw =
            if v_pad = v then raw_pad
            else
              Tensor_d.extract_slice b raw_pad ~offsets:[| 0 |] ~sizes:[| v |]
                ~dyn_offsets:[]
          in
          (* host: fresh = max(raw - visited, 0); visited' = min(visited + fresh, 1) *)
          let unvisited = Cinm_d.sub b raw visited in
          let zero_splat =
            Builder.build1 b "tensor.splat" ~operands:[ Arith.constant b 0 ]
              ~result_tys:[ tensor [| v |] ]
          in
          let fresh = Cinm_d.max_ b unvisited zero_splat in
          let visited' = Cinm_d.min_ b (Cinm_d.add b visited fresh) one_splat in
          level_loop (lvl - 1) fresh visited'
        end
      in
      let result = level_loop levels (Func.param f 1) (Func.param f 1) in
      Func_d.return b [ result ];
      f)
    ~inputs:(fun () ->
      [
        Rtval.Tensor (Workloads.adjacency ~seed:30 v ~density_pct);
        Rtval.Tensor (Workloads.one_hot v 0);
      ])
