(* The PrIM-suite benchmarks the paper evaluates on UPMEM (§4.1.1): vector
   addition (va), matrix-vector multiplication (mv), large histogram
   (hst-l), breadth-first search (bfs), database select (sel), time-series
   analysis (ts), plus reduction (red, Table 4). Expressed device-
   independently at the linalg/cinm level; the CINM pipeline offloads
   them. *)

open Cinm_ir
open Cinm_dialects
open Cinm_interp

let tensor shape = Types.Tensor (shape, Types.I32)

let va ?(n = 65536) () =
  Benchmark.make ~name:"va" ~category:"linear algebra" ~description:"vector addition"
    ~build:(fun () ->
      let f =
        Func.create ~name:"va" ~arg_tys:[ tensor [| n |]; tensor [| n |] ]
          ~result_tys:[ tensor [| n |] ]
      in
      let b = Builder.for_func f in
      Func_d.return b [ Linalg_d.add b (Func.param f 0) (Func.param f 1) ];
      f)
    ~inputs:(fun () ->
      [
        Rtval.Tensor (Workloads.tensor ~seed:21 [| n |]);
        Rtval.Tensor (Workloads.tensor ~seed:22 [| n |]);
      ])

let mv ?(m = 512) ?(n = 64) () =
  Benchmark.make ~name:"mv" ~category:"linear algebra"
    ~description:"matrix-vector multiplication"
    ~build:(fun () ->
      let f =
        Func.create ~name:"mv" ~arg_tys:[ tensor [| m; n |]; tensor [| n |] ]
          ~result_tys:[ tensor [| m |] ]
      in
      let b = Builder.for_func f in
      Func_d.return b [ Linalg_d.matvec b (Func.param f 0) (Func.param f 1) ];
      f)
    ~inputs:(fun () ->
      [
        Rtval.Tensor (Workloads.tensor ~seed:23 [| m; n |]);
        Rtval.Tensor (Workloads.tensor ~seed:24 [| n |]);
      ])

let red ?(n = 65536) () =
  Benchmark.make ~name:"red" ~category:"reduction" ~description:"sum reduction"
    ~build:(fun () ->
      let f =
        Func.create ~name:"red" ~arg_tys:[ tensor [| n |] ]
          ~result_tys:[ Types.Scalar Types.I32 ]
      in
      let b = Builder.for_func f in
      Func_d.return b [ Linalg_d.reduce b ~op:"add" (Func.param f 0) ];
      f)
    ~inputs:(fun () -> [ Rtval.Tensor (Workloads.tensor ~seed:25 [| n |]) ])

let hst_l ?(n = 65536) ?(bins = 256) () =
  Benchmark.make ~name:"hst-l" ~category:"image processing"
    ~description:"large histogram"
    ~build:(fun () ->
      let f =
        Func.create ~name:"hst_l" ~arg_tys:[ tensor [| n |] ]
          ~result_tys:[ tensor [| bins |] ]
      in
      let b = Builder.for_func f in
      Func_d.return b [ Cinm_d.histogram b (Func.param f 0) ~bins ];
      f)
    ~inputs:(fun () -> [ Rtval.Tensor (Workloads.tensor_mod ~seed:26 [| n |] ~bins) ])

(* sel: database select. flags = (x < t) built from Table-1 elementwise
   ops: max(min(t - x, 1), 0); the offloaded kernel is flags + inclusive
   scan (write positions); the host reads the count from the scan's last
   element. Mirrors PrIM's predicate + prefix-sum structure. *)
let sel ?(n = 65536) ?(threshold = 0) () =
  Benchmark.make ~name:"sel" ~category:"database" ~description:"select (predicate + scan)"
    ~build:(fun () ->
      let f =
        Func.create ~name:"sel" ~arg_tys:[ tensor [| n |] ]
          ~result_tys:[ tensor [| n |]; Types.Scalar Types.I32 ]
      in
      let b = Builder.for_func f in
      let x = Func.param f 0 in
      let t_splat =
        Builder.build1 b "tensor.splat"
          ~operands:[ Arith.constant b threshold ]
          ~result_tys:[ tensor [| n |] ]
      in
      let one_splat =
        Builder.build1 b "tensor.splat" ~operands:[ Arith.constant b 1 ]
          ~result_tys:[ tensor [| n |] ]
      in
      let zero_splat =
        Builder.build1 b "tensor.splat" ~operands:[ Arith.constant b 0 ]
          ~result_tys:[ tensor [| n |] ]
      in
      let diff = Linalg_d.sub b t_splat x in
      let capped = Builder.build1 b "linalg.min" ~operands:[ diff; one_splat ] ~result_tys:[ tensor [| n |] ] in
      let flags = Builder.build1 b "linalg.max" ~operands:[ capped; zero_splat ] ~result_tys:[ tensor [| n |] ] in
      let positions = Cinm_d.scan b ~op:"add" flags in
      let n_idx = Arith.const_index b (n - 1) in
      let count = Tensor_d.extract b positions [ n_idx ] in
      Func_d.return b [ positions; count ];
      f)
    ~inputs:(fun () -> [ Rtval.Tensor (Workloads.tensor ~seed:27 [| n |]) ])

(* ts: time-series analysis — find the k windows of the series most
   similar to the query (cinm.simSearch, Table 1). The window count is
   sized to divide the PU grid. *)
let ts ?(n = 65543) ?(m = 8) ?(k = 8) () =
  Benchmark.make ~name:"ts" ~category:"time series" ~description:"similarity search"
    ~build:(fun () ->
      let f =
        Func.create ~name:"ts" ~arg_tys:[ tensor [| n |]; tensor [| m |] ]
          ~result_tys:[ tensor [| k |]; tensor [| k |] ]
      in
      let b = Builder.for_func f in
      let v, i = Cinm_d.sim_search b ~metric:"l2" ~k (Func.param f 0) (Func.param f 1) in
      Func_d.return b [ v; i ];
      f)
    ~inputs:(fun () ->
      [
        Rtval.Tensor (Workloads.tensor ~seed:28 ~lo:0 ~hi:60 [| n |]);
        Rtval.Tensor (Workloads.tensor ~seed:29 ~lo:0 ~hi:60 [| m |]);
      ])

(* bfs: level-synchronous BFS expressed as gemv + elementwise saturation
   over a dense adjacency matrix (frontier' = clamp(Adj x frontier) and
   not visited), iterated for a fixed number of levels. *)
let bfs ?(v = 256) ?(levels = 4) ?(density_pct = 6) () =
  Benchmark.make ~name:"bfs" ~category:"graph processing"
    ~description:"level-synchronous BFS (gemv formulation)"
    ~build:(fun () ->
      let f =
        Func.create ~name:"bfs" ~arg_tys:[ tensor [| v; v |]; tensor [| v |] ]
          ~result_tys:[ tensor [| v |] ]
      in
      let b = Builder.for_func f in
      let adj = Func.param f 0 in
      let one_splat =
        Builder.build1 b "tensor.splat" ~operands:[ Arith.constant b 1 ]
          ~result_tys:[ tensor [| v |] ]
      in
      let zero_splat =
        Builder.build1 b "tensor.splat" ~operands:[ Arith.constant b 0 ]
          ~result_tys:[ tensor [| v |] ]
      in
      let rec step level frontier visited =
        if level = 0 then visited
        else begin
          let raw = Linalg_d.matvec b adj frontier in
          let reach = Builder.build1 b "linalg.min" ~operands:[ raw; one_splat ] ~result_tys:[ tensor [| v |] ] in
          let unvisited = Linalg_d.sub b reach visited in
          let fresh = Builder.build1 b "linalg.max" ~operands:[ unvisited; zero_splat ] ~result_tys:[ tensor [| v |] ] in
          let visited' =
            let sum = Linalg_d.add b visited fresh in
            Builder.build1 b "linalg.min" ~operands:[ sum; one_splat ] ~result_tys:[ tensor [| v |] ]
          in
          step (level - 1) fresh visited'
        end
      in
      let frontier0 = Func.param f 1 in
      let visited = step levels frontier0 frontier0 in
      Func_d.return b [ visited ];
      f)
    ~inputs:(fun () ->
      [
        Rtval.Tensor (Workloads.adjacency ~seed:30 v ~density_pct);
        Rtval.Tensor (Workloads.one_hot v 0);
      ])
