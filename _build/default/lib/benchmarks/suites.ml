(* Benchmark suites, grouped the way the evaluation section uses them. *)

(* ML workloads (Fig. 10 CIM + Fig. 11 UPMEM optimizations). *)
let ml_suite ?(scale = 1) () =
  let s = max 1 scale in
  [
    Ml_kernels.mm ~m:(128 * s) ~k:32 ~n:32 ();
    Ml_kernels.mm2 ~m:(64 * s) ~k:32 ~n:32 ~p:32 ();
    Ml_kernels.mm3 ~m:(64 * s) ~k:32 ~n:32 ~p:32 ~q:32 ();
    Ml_kernels.conv ~h:(32 * s) ~w:64 ();
    Ml_kernels.contrl ();
    Ml_kernels.contrs1 ();
    Ml_kernels.contrs2 ();
    Ml_kernels.mlp ~batch:(32 * s) ();
  ]

(* PrIM workloads (Fig. 12), sized so the PU grids of every DIMM
   configuration divide the element counts. *)
type prim_sizes = {
  va_n : int;
  mv_m : int;
  mv_n : int;
  red_n : int;
  hst_n : int;
  hst_bins : int;
  sel_n : int;
  ts_n : int;
  ts_m : int;
  ts_k : int;
  bfs_v : int;
}

let default_prim_sizes =
  {
    va_n = 65536;
    mv_m = 2048;
    mv_n = 64;
    red_n = 65536;
    hst_n = 65536;
    hst_bins = 256;
    sel_n = 65536;
    ts_n = 65536 + 7;
    ts_m = 8;
    ts_k = 8;
    bfs_v = 256;
  }

let prim_suite ?(sizes = default_prim_sizes) () =
  [
    Prim_kernels.va ~n:sizes.va_n ();
    Prim_kernels.mv ~m:sizes.mv_m ~n:sizes.mv_n ();
    Prim_kernels.hst_l ~n:sizes.hst_n ~bins:sizes.hst_bins ();
    Prim_kernels.bfs ~v:sizes.bfs_v ();
    Prim_kernels.sel ~n:sizes.sel_n ();
    Prim_kernels.ts ~n:sizes.ts_n ~m:sizes.ts_m ~k:sizes.ts_k ();
    Prim_kernels.red ~n:sizes.red_n ();
  ]

(* Matching hand-written PrIM baselines for a given UPMEM grid. *)
let prim_baselines ?(sizes = default_prim_sizes) config =
  [
    Prim_baseline.va config ~n:sizes.va_n ();
    Prim_baseline.mv config ~m:sizes.mv_m ~n:sizes.mv_n ();
    Prim_baseline.hst_l config ~n:sizes.hst_n ~bins:sizes.hst_bins ();
    Prim_baseline.bfs config ~v:sizes.bfs_v ();
    Prim_baseline.sel config ~n:sizes.sel_n ();
    Prim_baseline.ts config ~n:sizes.ts_n ~m:sizes.ts_m ~k:sizes.ts_k ();
  ]

let find name benches = List.find (fun b -> b.Benchmark.name = name) benches
