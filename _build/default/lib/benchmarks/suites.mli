(** Benchmark suites, grouped the way the evaluation section uses them. *)

open Cinm_core

val ml_suite : ?scale:int -> unit -> Benchmark.t list

type prim_sizes = {
  va_n : int;
  mv_m : int;
  mv_n : int;
  red_n : int;
  hst_n : int;
  hst_bins : int;
  sel_n : int;
  ts_n : int;
  ts_m : int;
  ts_k : int;
  bfs_v : int;
}

val default_prim_sizes : prim_sizes
val prim_suite : ?sizes:prim_sizes -> unit -> Benchmark.t list

(** Hand-written PrIM baselines for a given UPMEM grid. *)
val prim_baselines : ?sizes:prim_sizes -> Backend.upmem_config -> Benchmark.t list

(** @raise Not_found when the benchmark is absent. *)
val find : string -> Benchmark.t list -> Benchmark.t
