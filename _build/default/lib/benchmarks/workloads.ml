(* Deterministic synthetic workload data. The paper's UPMEM/CIM inputs are
   random INT32 tensors (PrIM generates uniform random inputs); we use a
   seeded xorshift PRNG so every run and every backend sees identical
   data. *)

open Cinm_interp

type rng = { mutable state : int }

let rng ~seed = { state = (if seed = 0 then 0x9E3779B9 else seed) }

let next r =
  (* xorshift64* truncated to 30 bits, always non-negative *)
  let s = r.state in
  let s = s lxor (s lsl 13) in
  let s = s lxor (s lsr 7) in
  let s = s lxor (s lsl 17) in
  r.state <- s land max_int;
  r.state land 0x3FFFFFFF

let tensor ?(seed = 42) ?(lo = -50) ?(hi = 50) shape =
  let r = rng ~seed in
  let span = max 1 (hi - lo + 1) in
  Tensor.init shape (fun _ -> lo + (next r mod span))

(* values in [0, bins): histogram inputs *)
let tensor_mod ?(seed = 7) shape ~bins =
  let r = rng ~seed in
  Tensor.init shape (fun _ -> next r mod bins)

(* random 0/1 adjacency matrix with given edge probability (percent),
   symmetric-ish, zero diagonal: bfs input *)
let adjacency ?(seed = 11) v ~density_pct =
  let r = rng ~seed in
  let t = Tensor.zeros [| v; v |] Cinm_ir.Types.I32 in
  for i = 0 to v - 1 do
    for j = 0 to v - 1 do
      if i <> j && next r mod 100 < density_pct then Tensor.set_int t ((i * v) + j) 1
    done
  done;
  t

let one_hot n i =
  let t = Tensor.zeros [| n |] Cinm_ir.Types.I32 in
  Tensor.set_int t i 1;
  t
