(** Deterministic synthetic workload data (seeded xorshift: every run and
    every backend sees identical inputs). *)

open Cinm_interp

type rng

val rng : seed:int -> rng
val next : rng -> int
val tensor : ?seed:int -> ?lo:int -> ?hi:int -> int array -> Tensor.t

(** Values in [0, bins): histogram inputs. *)
val tensor_mod : ?seed:int -> int array -> bins:int -> Tensor.t

(** 0/1 adjacency matrix with ~[density_pct]% edges, zero diagonal. *)
val adjacency : ?seed:int -> int -> density_pct:int -> Tensor.t

val one_hot : int -> int -> Tensor.t
