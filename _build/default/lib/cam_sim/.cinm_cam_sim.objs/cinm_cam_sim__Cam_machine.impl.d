lib/cam_sim/cam_machine.ml: Array Cinm_interp Cinm_ir Func Hashtbl Interp Ir Printf Rtval Tensor
