lib/cam_sim/cam_machine.mli: Cinm_interp Cinm_ir Func Hashtbl Interp Rtval
