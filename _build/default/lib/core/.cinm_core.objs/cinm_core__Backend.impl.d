lib/core/backend.ml: Printf
