lib/core/backend.mli:
