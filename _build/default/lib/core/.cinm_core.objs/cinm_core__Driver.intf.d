lib/core/driver.mli: Backend Cinm_cpu_sim Cinm_interp Cinm_ir Cinm_upmem_sim Func Pass Report Rtval
