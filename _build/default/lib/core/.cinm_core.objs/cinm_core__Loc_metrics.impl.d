lib/core/loc_metrics.ml: Backend Cinm_ir Cinm_transforms Driver Func Linalg_to_cinm List Pass Printer String Tosa_to_linalg
