lib/core/loc_metrics.mli: Backend Cinm_ir Func
