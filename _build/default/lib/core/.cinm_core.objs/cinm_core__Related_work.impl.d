lib/core/related_work.ml: List
