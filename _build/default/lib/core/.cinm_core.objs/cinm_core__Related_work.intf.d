lib/core/related_work.mli:
