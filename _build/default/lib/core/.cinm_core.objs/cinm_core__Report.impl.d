lib/core/report.ml: List Option Printf String
