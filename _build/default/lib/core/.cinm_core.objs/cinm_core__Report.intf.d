lib/core/report.mli:
