(* Lines-of-code productivity metric (paper Table 4): the paper compares
   the cinm-level MLIR representation of each application against its
   hand-written UPMEM C/C++ implementation (host + DPU code).

   Reproduction: "CINM (MLIR)" is the printed cinm-level IR of the
   application (after linalg->cinm); "UPMEM (C/C++)" is modeled as the
   printed upmem-level IR after full lowering — the host orchestration
   plus the generated per-tasklet kernels, which is the code a programmer
   would otherwise write by hand — plus the fixed host boilerplate every
   UPMEM program needs (allocation, binary loading, argument marshalling;
   ~40 lines in the PrIM codebase). *)

open Cinm_ir
open Cinm_transforms

let upmem_host_boilerplate_lines = 40

let count_lines text =
  String.split_on_char '\n' text
  |> List.filter (fun l -> String.trim l <> "")
  |> List.length

let cinm_level_loc (f : Func.t) =
  let m = Func.create_module () in
  Func.add_func m (Func.clone f);
  Pass.run_pipeline [ Tosa_to_linalg.pass; Linalg_to_cinm.pass ] m;
  count_lines (Printer.func_to_string (List.hd m.Func.funcs))

let upmem_level_loc ?(backend = Backend.default_upmem ~dimms:1 ~dpus_per_dimm:4 ~tasklets:4 ())
    (f : Func.t) =
  let compiled = Driver.compile_func (Backend.Upmem backend) (Func.clone f) in
  let text = Printer.func_to_string (List.hd compiled.Driver.modul.Func.funcs) in
  count_lines text + upmem_host_boilerplate_lines

type row = { app : string; cinm_loc : int; upmem_loc : int }

let reduction r = float_of_int r.upmem_loc /. float_of_int (max 1 r.cinm_loc)

let row ~app f = { app; cinm_loc = cinm_level_loc f; upmem_loc = upmem_level_loc f }
