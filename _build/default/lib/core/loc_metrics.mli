(** Lines-of-code productivity metric (paper Table 4): the cinm-level IR of
    an application vs its device-level (upmem) representation — the model
    of the C/C++ a programmer would otherwise write by hand. *)

open Cinm_ir

val upmem_host_boilerplate_lines : int
val count_lines : string -> int

(** Printed cinm-level IR line count (after tosa/linalg lowering). *)
val cinm_level_loc : Func.t -> int

(** Printed fully-lowered upmem IR line count plus the fixed host
    boilerplate. *)
val upmem_level_loc : ?backend:Backend.upmem_config -> Func.t -> int

type row = { app : string; cinm_loc : int; upmem_loc : int }

val reduction : row -> float
val row : app:string -> Func.t -> row
