(* Paper Table 5: comparison of CI/NM compilers and software frameworks.
   Static capability matrix, reproduced so the bench harness can regenerate
   the table. *)

type entry = {
  name : string;  (** citation key in the paper *)
  cim_logic : bool;
  cim_crossbar : bool;
  cim_cam : bool;
  cnm : bool;
  cost_model : bool;
  device_agnostic_input : bool;
  domain_specific_opt : bool;
  device_specific_opt : bool;
  reusable : bool;
  hierarchical : bool;
}

let mk name (cl, cx, cc, cn, cm, da, dso, dvo, ru, hi) =
  {
    name;
    cim_logic = cl;
    cim_crossbar = cx;
    cim_cam = cc;
    cnm = cn;
    cost_model = cm;
    device_agnostic_input = da;
    domain_specific_opt = dso;
    device_specific_opt = dvo;
    reusable = ru;
    hierarchical = hi;
  }

(* Columns of Table 5, in paper order. *)
let entries =
  [
    mk "XLA-NDP [55]" (false, false, false, true, true, true, true, true, false, true);
    mk "[30]" (true, true, false, false, true, true, false, false, true, false);
    mk "PRIMO [5]" (true, false, false, false, false, true, false, true, true, false);
    mk "[26]" (false, true, false, false, false, true, true, true, true, false);
    mk "ComPRIMe [22]" (true, false, false, false, false, false, false, true, false, false);
    mk "[80]" (true, true, true, false, false, true, false, false, true, false);
    mk "TDO-CIM [74]" (false, true, false, false, false, true, false, true, true, true);
    mk "[7]" (false, true, false, false, false, true, true, true, true, true);
    mk "TC-CIM [18]" (false, true, false, false, false, true, false, false, true, true);
    mk "PIMFlow [68]" (false, false, false, true, true, true, true, true, true, true);
    mk "Infinity Stream [77]" (true, false, false, true, true, true, false, true, false, false);
    mk "CHOPPER [59]" (true, false, false, false, false, true, true, true, true, false);
    mk "OCC [61,69]" (false, true, false, false, false, true, true, true, true, true);
    mk "CINM (ours)" (true, true, true, true, true, true, true, true, true, true);
  ]

let metrics =
  [
    ("CIM-Logic", fun e -> e.cim_logic);
    ("CIM-Crossbar", fun e -> e.cim_crossbar);
    ("CIM-CAM", fun e -> e.cim_cam);
    ("CNM", fun e -> e.cnm);
    ("Cost model", fun e -> e.cost_model);
    ("Device-agnostic input", fun e -> e.device_agnostic_input);
    ("Domain-specific optimization", fun e -> e.domain_specific_opt);
    ("Device-specific optimization", fun e -> e.device_specific_opt);
    ("Reusable", fun e -> e.reusable);
    ("Hierarchical", fun e -> e.hierarchical);
  ]

let to_table () =
  let header = "Metric" :: List.map (fun e -> e.name) entries in
  let rows =
    List.map
      (fun (metric, get) ->
        metric :: List.map (fun e -> if get e then "yes" else "no") entries)
      metrics
  in
  header :: rows
