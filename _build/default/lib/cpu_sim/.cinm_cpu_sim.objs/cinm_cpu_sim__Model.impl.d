lib/cpu_sim/model.ml: Cinm_interp Float Interp Printf Profile
