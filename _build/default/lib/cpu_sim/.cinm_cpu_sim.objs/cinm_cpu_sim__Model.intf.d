lib/cpu_sim/model.mli: Cinm_interp Cinm_ir Profile Rtval
