(** Analytic host-CPU timing models, driven by the interpreter's execution
    profile. Two baselines, matching the paper's evaluation (§4.1):
    [xeon_opt] (the `cpu-opt` configuration) and [arm_inorder] (the
    in-order ARMv8 host of the OCC/gem5 CIM setup). *)

open Cinm_interp

type t = {
  model_name : string;
  freq_hz : float;
  cores : float;
  simd_width : float;  (** 32-bit lanes per op *)
  ipc : float;  (** sustained scalar-op issue rate per core *)
  cycles_mul : float;
  cycles_div : float;
  mem_bandwidth : float;  (** bytes/s, shared across cores *)
  cache_reuse : float;  (** fraction of accesses served by caches *)
  power_w : float;  (** package power while active *)
}

(** Scale a model's throughput (cores, bandwidth, power) by [s]; used with
    the 1/16-scale UPMEM machine so speedup ratios match full size. *)
val scaled : float -> t -> t

val xeon_opt : t
val arm_inorder : t

type result = { time_s : float; energy_j : float; compute_s : float; memory_s : float }

(** Roofline estimate: max(compute time, DRAM traffic / bandwidth). *)
val estimate : t -> Profile.t -> result

(** Run a host-level function on the reference interpreter and estimate it
    on this model. *)
val run_and_estimate : t -> Cinm_ir.Func.t -> Rtval.t list -> Rtval.t list * result
