lib/dialects/arith.ml: Attr Builder Cinm_ir Dialect Ir List Types
