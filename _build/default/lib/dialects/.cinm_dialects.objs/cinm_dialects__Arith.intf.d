lib/dialects/arith.mli: Builder Cinm_ir Ir Types
