lib/dialects/cam_d.ml: Attr Builder Cinm_ir Dialect Ir Types
