lib/dialects/cam_d.mli: Builder Cinm_ir Ir
