lib/dialects/cim_d.ml: Array Attr Builder Cinm_ir Dialect Ir List Types
