lib/dialects/cim_d.mli: Builder Cinm_ir Ir Types
