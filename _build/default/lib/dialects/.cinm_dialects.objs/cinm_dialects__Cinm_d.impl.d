lib/dialects/cinm_d.ml: Arith Array Attr Builder Cinm_ir Dialect Ir Linalg_d List Option String Types
