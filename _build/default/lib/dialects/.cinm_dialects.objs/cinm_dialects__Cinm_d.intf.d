lib/dialects/cinm_d.mli: Builder Cinm_ir Ir
