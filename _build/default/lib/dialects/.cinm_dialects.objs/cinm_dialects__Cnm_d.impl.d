lib/dialects/cnm_d.ml: Array Attr Builder Cinm_ir Cinm_support Dialect Ir List Printf Types
