lib/dialects/cnm_d.mli: Builder Cinm_ir Ir Types
