lib/dialects/func_d.ml: Attr Builder Cinm_ir Dialect
