lib/dialects/func_d.mli: Builder Cinm_ir Ir Types
