lib/dialects/linalg_d.ml: Arith Array Attr Builder Cinm_ir Dialect Ir List Option String Types
