lib/dialects/linalg_d.mli: Builder Cinm_ir Ir Types
