lib/dialects/memref_d.ml: Builder Cinm_ir Dialect Ir Option Types
