lib/dialects/memref_d.mli: Builder Cinm_ir Ir Types
