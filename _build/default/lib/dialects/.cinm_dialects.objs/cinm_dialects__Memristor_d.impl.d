lib/dialects/memristor_d.ml: Attr Builder Cinm_ir Dialect Ir Types
