lib/dialects/memristor_d.mli: Builder Cinm_ir Ir Types
