lib/dialects/registry.ml: Arith Cam_d Cim_d Cinm_d Cnm_d Func_d Linalg_d Memref_d Memristor_d Rtm_d Scf_d Tensor_d Torch_d Tosa_d Upmem_d
