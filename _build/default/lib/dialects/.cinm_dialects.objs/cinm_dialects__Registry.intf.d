lib/dialects/registry.mli:
