lib/dialects/rtm_d.ml: Attr Builder Cinm_ir Dialect Ir Types
