lib/dialects/rtm_d.mli: Builder Cinm_ir Ir
