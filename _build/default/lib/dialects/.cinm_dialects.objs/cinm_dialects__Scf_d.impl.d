lib/dialects/scf_d.ml: Array Builder Cinm_ir Dialect Ir List Types
