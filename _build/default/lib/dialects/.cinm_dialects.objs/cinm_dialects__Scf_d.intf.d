lib/dialects/scf_d.mli: Builder Cinm_ir Ir Types
