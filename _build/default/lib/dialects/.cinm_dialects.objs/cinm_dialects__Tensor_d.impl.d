lib/dialects/tensor_d.ml: Array Attr Builder Cinm_ir Dialect Ir Option Types
