lib/dialects/tensor_d.mli: Builder Cinm_ir Ir Types
