lib/dialects/torch_d.ml: Arith Builder Cinm_ir Dialect Ir Linalg_d Option Types
