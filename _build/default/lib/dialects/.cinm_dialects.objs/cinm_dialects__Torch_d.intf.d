lib/dialects/torch_d.mli: Builder Cinm_ir Ir
