lib/dialects/tosa_d.ml: Arith Attr Builder Cinm_ir Dialect Ir Linalg_d Option Types
