lib/dialects/tosa_d.mli: Builder Cinm_ir Ir
