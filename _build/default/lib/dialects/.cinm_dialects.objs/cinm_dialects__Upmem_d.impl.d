lib/dialects/upmem_d.ml: Attr Builder Cinm_ir Dialect Ir List Types
