lib/dialects/upmem_d.mli: Builder Cinm_ir Ir Types
