(* cam device dialect: content-addressable-memory accelerators (paper
   §3.2.2/§3.2.4: "search operations suited to CAMs can be detected using
   the analysis algorithm from C4CAM"; Table 5 claims CIM-CAM support).
   Entries are programmed once; a search compares the query against every
   entry in parallel and returns the best matches. *)

open Cinm_ir

let dialect =
  Dialect.register ~name:"cam" ~description:"content-addressable memory device dialect"

let is_id (v : Ir.value) = Types.equal v.Ir.ty Types.Cim_id

let _ =
  Dialect.add_op dialect "alloc" ~summary:"acquire a CAM array (entries x width)"
    ~verify:(fun op ->
      let open Dialect in
      expect_operands op 0 >>= fun () ->
      expect_results op 1 >>= fun () ->
      expect_attr op "entries" >>= fun () ->
      expect_attr op "width" >>= fun () ->
      expect (is_id (Ir.result op 0)) "cam.alloc: result must be !cim.id")

let _ =
  Dialect.add_op dialect "write_entries" ~summary:"program the entry rows"
    ~verify:(fun op ->
      let open Dialect in
      expect_operands op 2 >>= fun () ->
      expect_results op 0 >>= fun () ->
      expect (is_id (Ir.operand op 0)) "cam.write_entries: operand 0 must be !cim.id"
      >>= fun () ->
      match Types.shape_of (Ir.operand op 1).Ir.ty with
      | Some [| _; _ |] -> Ok ()
      | _ -> Error "cam.write_entries: entries must be rank-2 (entries x width)")

let _ =
  Dialect.add_op dialect "search_best"
    ~summary:"parallel match: indices of the k best entries for the query"
    ~verify:(fun op ->
      let open Dialect in
      expect_operands op 2 >>= fun () ->
      expect_results op 1 >>= fun () ->
      expect_attr op "k" >>= fun () ->
      expect_attr op "metric" >>= fun () ->
      expect (is_id (Ir.operand op 0)) "cam.search_best: operand 0 must be !cim.id"
      >>= fun () ->
      match Types.shape_of (Ir.result op 0).Ir.ty with
      | Some [| k |] -> expect (k = Ir.int_attr op "k") "cam.search_best: result dim <> k"
      | _ -> Error "cam.search_best: result must be rank-1 indices")

let _ =
  Dialect.add_op dialect "release" ~summary:"release the CAM" ~verify:(fun op ->
      let open Dialect in
      expect_operands op 1 >>= fun () -> expect_results op 0)

let ensure () = ignore dialect

(* ----- constructors ----- *)

let alloc b ~entries ~width =
  Builder.build1 b "cam.alloc"
    ~attrs:[ ("entries", Attr.Int entries); ("width", Attr.Int width) ]
    ~result_tys:[ Types.Cim_id ]

let write_entries b id entries = Builder.build0 b "cam.write_entries" ~operands:[ id; entries ]

let search_best b id query ~metric ~k =
  Builder.build1 b "cam.search_best" ~operands:[ id; query ]
    ~attrs:[ ("k", Attr.Int k); ("metric", Attr.Str metric) ]
    ~result_tys:[ Types.Tensor ([| k |], Types.I32) ]

let release b id = Builder.build0 b "cam.release" ~operands:[ id ]
