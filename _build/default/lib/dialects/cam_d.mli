(** cam device dialect: content-addressable memory accelerators (C4CAM
    class; Table 5's CIM-CAM row). *)

open Cinm_ir

val ensure : unit -> unit
val alloc : Builder.t -> entries:int -> width:int -> Ir.value
val write_entries : Builder.t -> Ir.value -> Ir.value -> unit

(** One parallel match of the query against every entry; returns the
    indices of the [k] best entries under [metric]. *)
val search_best : Builder.t -> Ir.value -> Ir.value -> metric:string -> k:int -> Ir.value

val release : Builder.t -> Ir.value -> unit
