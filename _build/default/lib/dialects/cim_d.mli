(** cim dialect: abstraction over compute-in-memory accelerators (paper
    §3.2.4, Table 3). Devices are acquired/released explicitly (most CIM
    devices are non-volatile and need locking). *)

open Cinm_ir

val ensure : unit -> unit

(** Acquire + set up a device; crossbar geometry is fixed at acquire time. *)
val acquire : Builder.t -> rows:int -> cols:int -> tiles:int -> Ir.value

val write : Builder.t -> Ir.value -> Ir.value -> unit
val yield : Builder.t -> Ir.value list -> unit

(** [execute b id ~inputs ~result_tys body]: launch a computation on the
    device; [body] receives the region views of [inputs] and returns the
    values to yield. *)
val execute :
  Builder.t ->
  Ir.value ->
  inputs:Ir.value list ->
  result_tys:Types.t list ->
  (Builder.t -> Ir.value array -> Ir.value list) ->
  Ir.value list

val read : Builder.t -> Ir.value -> result_ty:Types.t -> Ir.value
val barrier : Builder.t -> Ir.value -> unit
val release : Builder.t -> Ir.value -> unit
