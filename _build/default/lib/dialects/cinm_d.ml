(* cinm dialect: the hardware-oblivious entry point of the CINM flow.
   Implements the full operation set of paper Table 1, plus the im2col /
   expand helpers used by the convolution-to-GEMM rewrite (paper Fig. 5).

   Ops carry an optional "target" attribute ("cim" | "cnm" | "host") set by
   the target-selection pass (§3.2.2). *)

open Cinm_ir

let dialect =
  Dialect.register ~name:"cinm"
    ~description:"hardware-oblivious compute-in/near-memory abstraction"

(* Table 1: which paradigm supports which op. Used by target selection. *)
type support = { cim : bool; cnm : bool }

let op_support : (string * support) list =
  [
    ("cinm.add", { cim = true; cnm = true });
    ("cinm.sub", { cim = true; cnm = true });
    ("cinm.mul", { cim = true; cnm = true });
    ("cinm.div", { cim = false; cnm = true });
    ("cinm.min", { cim = true; cnm = true });
    ("cinm.max", { cim = true; cnm = true });
    ("cinm.and", { cim = true; cnm = true });
    ("cinm.or", { cim = true; cnm = true });
    ("cinm.xor", { cim = true; cnm = true });
    ("cinm.not", { cim = true; cnm = true });
    ("cinm.gemv", { cim = true; cnm = true });
    ("cinm.gemm", { cim = true; cnm = true });
    ("cinm.transpose", { cim = false; cnm = true });
    ("cinm.histogram", { cim = false; cnm = true });
    ("cinm.majority", { cim = false; cnm = true });
    ("cinm.topk", { cim = false; cnm = true });
    ("cinm.sim_search", { cim = true; cnm = true });
    ("cinm.merge_partial", { cim = true; cnm = true });
    ("cinm.pop_count", { cim = true; cnm = false });
    ("cinm.reduce", { cim = false; cnm = true });
    ("cinm.scan", { cim = false; cnm = true });
    ("cinm.im2col", { cim = false; cnm = true });
    ("cinm.expand", { cim = false; cnm = true });
  ]

let support_of name = List.assoc_opt name op_support

let elementwise_binary = [ "add"; "sub"; "mul"; "div"; "min"; "max"; "and"; "or"; "xor" ]

let () =
  List.iter
    (fun name ->
      ignore
        (Dialect.add_op dialect name
           ~summary:("element-wise " ^ name ^ " (Table 1)")
           ~verify:Arith.same_operands_and_result))
    elementwise_binary

let _ =
  Dialect.add_op dialect "not" ~summary:"element-wise bitwise not (Table 1)"
    ~verify:(fun op ->
      let open Dialect in
      expect_operands op 1 >>= fun () ->
      expect_results op 1 >>= fun () ->
      expect
        (Types.equal (Ir.operand op 0).Ir.ty (Ir.result op 0).Ir.ty)
        "cinm.not: result type must match operand")

let _ =
  Dialect.add_op dialect "gemm" ~summary:"matrix-matrix product (Table 1)"
    ~verify:Linalg_d.matmul_verify

let _ =
  Dialect.add_op dialect "gemv" ~summary:"matrix-vector product (Table 1)"
    ~verify:Linalg_d.matvec_verify

let _ =
  Dialect.add_op dialect "transpose" ~summary:"transposition (Table 1)"
    ~verify:(fun op ->
      let open Dialect in
      expect_operands op 1 >>= fun () ->
      expect_results op 1 >>= fun () -> expect_attr op "perms")

let _ =
  Dialect.add_op dialect "histogram" ~summary:"histogram (Table 1)" ~verify:(fun op ->
      let open Dialect in
      expect_operands op 1 >>= fun () ->
      expect_results op 1 >>= fun () ->
      expect_attr op "bins" >>= fun () ->
      match Types.shape_of (Ir.result op 0).Ir.ty with
      | Some [| k |] -> expect (k = Ir.int_attr op "bins") "cinm.histogram: result dim <> bins"
      | _ -> Error "cinm.histogram: result must be rank-1")

let _ =
  Dialect.add_op dialect "majority" ~summary:"bit-wise majority (Table 1)"
    ~verify:(fun op ->
      let open Dialect in
      expect_operands op 1 >>= fun () -> expect_results op 1)

let _ =
  Dialect.add_op dialect "topk" ~summary:"k largest values & indices (Table 1)"
    ~verify:(fun op ->
      let open Dialect in
      expect_operands op 1 >>= fun () ->
      expect_results op 2 >>= fun () ->
      expect_attr op "k" >>= fun () ->
      match
        (Types.shape_of (Ir.result op 0).Ir.ty, Types.shape_of (Ir.result op 1).Ir.ty)
      with
      | Some [| k0 |], Some [| k1 |] ->
        let k = Ir.int_attr op "k" in
        expect (k0 = k && k1 = k) "cinm.topk: result dims must equal k"
      | _ -> Error "cinm.topk: results must be rank-1")

let _ =
  Dialect.add_op dialect "sim_search"
    ~summary:"k most similar values & indices with a metric (Table 1)"
    ~verify:(fun op ->
      let open Dialect in
      expect_operands op 2 >>= fun () ->
      expect_results op 2 >>= fun () ->
      expect_attr op "metric" >>= fun () -> expect_attr op "k")

let _ =
  Dialect.add_op dialect "merge_partial"
    ~summary:"merge partial results of a hardware op (Table 1)"
    ~verify:(fun op ->
      let open Dialect in
      expect_operands op 2 >>= fun () ->
      expect_results op 1 >>= fun () ->
      expect_attr op "op" >>= fun () -> expect_same_type op 0 1)

let _ =
  Dialect.add_op dialect "pop_count" ~summary:"count 1s in a bit vector (Table 1)"
    ~verify:(fun op ->
      let open Dialect in
      expect_operands op 1 >>= fun () -> expect_results op 1)

let _ =
  Dialect.add_op dialect "reduce" ~summary:"monoid reduction (Table 1)" ~verify:(fun op ->
      let open Dialect in
      expect_operands op 1 >>= fun () ->
      expect_results op 1 >>= fun () -> expect_attr op "op")

let _ =
  Dialect.add_op dialect "scan" ~summary:"inclusive scan (Table 1)" ~verify:(fun op ->
      let open Dialect in
      (* a fused scan (pre_expr attribute, set by ew-fusion) takes the
         elementwise chain's leaves as operands *)
      (if Ir.attr op "pre_expr" = None then expect_operands op 1
       else expect (Ir.num_operands op >= 1) "cinm.scan: needs at least one operand")
      >>= fun () ->
      expect_results op 1 >>= fun () ->
      expect_attr op "op" >>= fun () ->
      expect
        (Types.equal (Ir.operand op 0).Ir.ty (Ir.result op 0).Ir.ty)
        "cinm.scan: result type must match operand")

let _ =
  Dialect.add_op dialect "im2col" ~summary:"image-to-column rewrite of conv (Fig. 5)"
    ~verify:(fun op ->
      let open Dialect in
      expect_operands op 1 >>= fun () ->
      expect_results op 1 >>= fun () -> expect_attr op "kernel")

let _ =
  Dialect.add_op dialect "expand" ~summary:"reshape GEMM result to conv output (Fig. 5)"
    ~verify:(fun op ->
      let open Dialect in
      expect_operands op 1 >>= fun () ->
      expect_results op 1 >>= fun () ->
      expect
        (Types.num_elements (Ir.operand op 0).Ir.ty
        = Types.num_elements (Ir.result op 0).Ir.ty)
        "cinm.expand: element count must be preserved")

(* Fused elementwise expression (paper §2.4: compilers can fuse operations
   to reduce data movement, unlike device libraries). The "expr" attribute
   is an RPN token list over the operands: "inK" pushes operand K's
   element, "constC" pushes the literal C, and an op name combines the two
   top-of-stack values. Produced by the ew-fusion pass. *)
let _ =
  Dialect.add_op dialect "ew_expr" ~summary:"fused element-wise expression"
    ~verify:(fun op ->
      let open Dialect in
      expect_results op 1 >>= fun () ->
      expect_attr op "expr" >>= fun () ->
      expect (Ir.num_operands op >= 1) "cinm.ew_expr: needs at least one input"
      >>= fun () ->
      let ok = ref (Ok ()) in
      Array.iter
        (fun (v : Ir.value) ->
          if not (Types.equal v.Ir.ty (Ir.result op 0).Ir.ty) then
            ok := Error "cinm.ew_expr: all operands must match the result type")
        op.Ir.operands;
      !ok)

(* RPN evaluation over an abstract value domain; shared by the verifier-
   level checks, the interpreter and the kernel generators. *)
let eval_rpn ~(tokens : string list) ~(input : int -> 'a) ~(const : int -> 'a)
    ~(apply : string -> 'a -> 'a -> 'a) : 'a =
  let stack =
    List.fold_left
      (fun stack tok ->
        if String.length tok > 2 && String.sub tok 0 2 = "in" then
          input (int_of_string (String.sub tok 2 (String.length tok - 2))) :: stack
        else if String.length tok > 5 && String.sub tok 0 5 = "const" then
          const (int_of_string (String.sub tok 5 (String.length tok - 5))) :: stack
        else
          match stack with
          | rhs :: lhs :: rest -> apply tok lhs rhs :: rest
          | _ -> invalid_arg "cinm.ew_expr: malformed RPN")
      [] tokens
  in
  match stack with
  | [ v ] -> v
  | _ -> invalid_arg "cinm.ew_expr: RPN does not reduce to one value"

let ensure () = ignore dialect

(* ----- constructors ----- *)

let binop b name x y =
  Builder.build1 b ("cinm." ^ name) ~operands:[ x; y ] ~result_tys:[ x.Ir.ty ]

let add b x y = binop b "add" x y
let sub b x y = binop b "sub" x y
let mul b x y = binop b "mul" x y
let div b x y = binop b "div" x y
let min_ b x y = binop b "min" x y
let max_ b x y = binop b "max" x y
let and_ b x y = binop b "and" x y
let or_ b x y = binop b "or" x y
let xor b x y = binop b "xor" x y

let not_ b x = Builder.build1 b "cinm.not" ~operands:[ x ] ~result_tys:[ x.Ir.ty ]

let gemm b x y =
  let dt = Option.get (Types.element_dtype x.Ir.ty) in
  match (Types.shape_of x.Ir.ty, Types.shape_of y.Ir.ty) with
  | Some [| m; _ |], Some [| _; n |] ->
    Builder.build1 b "cinm.gemm" ~operands:[ x; y ]
      ~result_tys:[ Types.Tensor ([| m; n |], dt) ]
  | _ -> invalid_arg "Cinm_d.gemm"

let gemv b x y =
  let dt = Option.get (Types.element_dtype x.Ir.ty) in
  match Types.shape_of x.Ir.ty with
  | Some [| m; _ |] ->
    Builder.build1 b "cinm.gemv" ~operands:[ x; y ]
      ~result_tys:[ Types.Tensor ([| m |], dt) ]
  | _ -> invalid_arg "Cinm_d.gemv"

let transpose b x ~perms =
  let dt = Option.get (Types.element_dtype x.Ir.ty) in
  let shape = Option.get (Types.shape_of x.Ir.ty) in
  let out_shape = Array.map (fun p -> shape.(p)) perms in
  Builder.build1 b "cinm.transpose" ~operands:[ x ]
    ~attrs:[ ("perms", Attr.Ints perms) ]
    ~result_tys:[ Types.Tensor (out_shape, dt) ]

let histogram b x ~bins =
  let dt = Option.get (Types.element_dtype x.Ir.ty) in
  Builder.build1 b "cinm.histogram" ~operands:[ x ]
    ~attrs:[ ("bins", Attr.Int bins) ]
    ~result_tys:[ Types.Tensor ([| bins |], dt) ]

let majority b x =
  let dt = Option.get (Types.element_dtype x.Ir.ty) in
  Builder.build1 b "cinm.majority" ~operands:[ x ] ~result_tys:[ Types.Tensor ([| 1 |], dt) ]

let topk b x ~k =
  let dt = Option.get (Types.element_dtype x.Ir.ty) in
  let op =
    Builder.build b "cinm.topk" ~operands:[ x ]
      ~attrs:[ ("k", Attr.Int k) ]
      ~result_tys:[ Types.Tensor ([| k |], dt); Types.Tensor ([| k |], Types.I32) ]
  in
  (Ir.result op 0, Ir.result op 1)

let sim_search b ~metric ~k db query =
  let dt = Option.get (Types.element_dtype db.Ir.ty) in
  let op =
    Builder.build b "cinm.sim_search" ~operands:[ db; query ]
      ~attrs:[ ("metric", Attr.Str metric); ("k", Attr.Int k) ]
      ~result_tys:[ Types.Tensor ([| k |], dt); Types.Tensor ([| k |], Types.I32) ]
  in
  (Ir.result op 0, Ir.result op 1)

let merge_partial b ~op:merge_op x y =
  Builder.build1 b "cinm.merge_partial" ~operands:[ x; y ]
    ~attrs:[ ("op", Attr.Str merge_op) ]
    ~result_tys:[ x.Ir.ty ]

let pop_count b x =
  Builder.build1 b "cinm.pop_count" ~operands:[ x ] ~result_tys:[ Types.Scalar Types.I32 ]

let reduce b ~op:red_op x =
  let dt = Option.get (Types.element_dtype x.Ir.ty) in
  Builder.build1 b "cinm.reduce" ~operands:[ x ]
    ~attrs:[ ("op", Attr.Str red_op) ]
    ~result_tys:[ Types.Scalar dt ]

let scan b ~op:scan_op x =
  Builder.build1 b "cinm.scan" ~operands:[ x ]
    ~attrs:[ ("op", Attr.Str scan_op) ]
    ~result_tys:[ x.Ir.ty ]

let ew_expr b ~tokens inputs =
  match inputs with
  | [] -> invalid_arg "Cinm_d.ew_expr: no inputs"
  | first :: _ ->
    Builder.build1 b "cinm.ew_expr" ~operands:inputs
      ~attrs:[ ("expr", Attr.Strs tokens) ]
      ~result_tys:[ first.Ir.ty ]

(* im2col of a HxW image for a KhxKw kernel: ((H-Kh+1)*(W-Kw+1)) x (Kh*Kw). *)
let im2col b img ~kh ~kw =
  let dt = Option.get (Types.element_dtype img.Ir.ty) in
  match Types.shape_of img.Ir.ty with
  | Some [| h; w |] ->
    let rows = (h - kh + 1) * (w - kw + 1) in
    Builder.build1 b "cinm.im2col" ~operands:[ img ]
      ~attrs:[ ("kernel", Attr.Ints [| kh; kw |]) ]
      ~result_tys:[ Types.Tensor ([| rows; kh * kw |], dt) ]
  | _ -> invalid_arg "Cinm_d.im2col"

let expand b x ~shape =
  let dt = Option.get (Types.element_dtype x.Ir.ty) in
  Builder.build1 b "cinm.expand" ~operands:[ x ]
    ~attrs:[ ("shape", Attr.Ints shape) ]
    ~result_tys:[ Types.Tensor (shape, dt) ]
