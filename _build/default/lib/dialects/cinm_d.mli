(** cinm dialect: the hardware-oblivious entry point of the CINM flow,
    implementing the full operation set of paper Table 1 plus the
    im2col/expand helpers of the convolution rewrite (Fig. 5) and the
    fused cinm.ew_expr produced by ew-fusion.

    Ops carry an optional "target" attribute ("cim" | "cnm" | "host") set
    by target selection (§3.2.2). *)

open Cinm_ir

(** Table 1's device-support matrix, consumed by target selection. *)
type support = { cim : bool; cnm : bool }

val op_support : (string * support) list
val support_of : string -> support option
val elementwise_binary : string list
val ensure : unit -> unit

(** Evaluate an RPN expression (cinm.ew_expr / fused-scan encoding) over an
    abstract value domain: ["inK"] pushes input K, ["constC"] the literal
    C, and an op name combines the two top-of-stack values. Shared by the
    interpreter and the kernel generators.
    @raise Invalid_argument on malformed token streams. *)
val eval_rpn :
  tokens:string list ->
  input:(int -> 'a) ->
  const:(int -> 'a) ->
  apply:(string -> 'a -> 'a -> 'a) ->
  'a

(** {1 Constructors} (Table 1 signatures) *)

val add : Builder.t -> Ir.value -> Ir.value -> Ir.value
val sub : Builder.t -> Ir.value -> Ir.value -> Ir.value
val mul : Builder.t -> Ir.value -> Ir.value -> Ir.value
val div : Builder.t -> Ir.value -> Ir.value -> Ir.value
val min_ : Builder.t -> Ir.value -> Ir.value -> Ir.value
val max_ : Builder.t -> Ir.value -> Ir.value -> Ir.value
val and_ : Builder.t -> Ir.value -> Ir.value -> Ir.value
val or_ : Builder.t -> Ir.value -> Ir.value -> Ir.value
val xor : Builder.t -> Ir.value -> Ir.value -> Ir.value
val not_ : Builder.t -> Ir.value -> Ir.value
val gemm : Builder.t -> Ir.value -> Ir.value -> Ir.value
val gemv : Builder.t -> Ir.value -> Ir.value -> Ir.value
val transpose : Builder.t -> Ir.value -> perms:int array -> Ir.value
val histogram : Builder.t -> Ir.value -> bins:int -> Ir.value
val majority : Builder.t -> Ir.value -> Ir.value

(** Returns (values, indices). *)
val topk : Builder.t -> Ir.value -> k:int -> Ir.value * Ir.value

(** [sim_search ~metric ~k db query]: (values, indices) of the [k] windows
    of [db] most similar to [query]. *)
val sim_search :
  Builder.t -> metric:string -> k:int -> Ir.value -> Ir.value -> Ir.value * Ir.value

val merge_partial : Builder.t -> op:string -> Ir.value -> Ir.value -> Ir.value
val pop_count : Builder.t -> Ir.value -> Ir.value
val reduce : Builder.t -> op:string -> Ir.value -> Ir.value
val scan : Builder.t -> op:string -> Ir.value -> Ir.value
val ew_expr : Builder.t -> tokens:string list -> Ir.value list -> Ir.value
val im2col : Builder.t -> Ir.value -> kh:int -> kw:int -> Ir.value
val expand : Builder.t -> Ir.value -> shape:int array -> Ir.value
