(** cnm dialect: abstraction over compute-near-memory architectures (paper
    §3.2.3, Table 2). A workgroup is a logical grid of processing units
    with tree-shaped memory (Fig. 7); buffers are opaque and only
    materialize as memrefs inside launch bodies, which are isolated from
    above. *)

open Cinm_ir

val scatter_maps : string list

(** Number of buffer instances of a level-[l] buffer: a level-l buffer is
    shared across the last [l] workgroup dimensions.
    @raise Invalid_argument when the level exceeds the workgroup rank. *)
val buffers_at_level : int array -> int -> int

(** The buffer instance a linear PU index sees at a given level. *)
val buffer_index_of_pu : int array -> int -> int -> int

val ensure : unit -> unit

(** {1 Constructors} (Table 2) *)

val workgroup : Builder.t -> shape:int array -> physical_dims:string list -> Ir.value

val alloc :
  Builder.t -> Ir.value -> shape:int array -> dtype:Types.dtype -> level:int -> Ir.value

(** [scatter b t buf wg ~map] distributes [t] ("block", "broadcast",
    "cyclic", or "overlap" with [halo]); returns a token. *)
val scatter :
  Builder.t -> ?halo:int -> Ir.value -> Ir.value -> Ir.value -> map:string -> Ir.value

(** Returns (tensor, token). *)
val gather : Builder.t -> Ir.value -> Ir.value -> result_shape:int array -> Ir.value * Ir.value

val terminator : Builder.t -> unit

(** [launch b wg ~ins ~outs body]: [body] receives the memref views of
    [ins @ outs]; returns the launch token. *)
val launch :
  Builder.t ->
  Ir.value ->
  ins:Ir.value list ->
  outs:Ir.value list ->
  (Builder.t -> Ir.value array -> unit) ->
  Ir.value

val wait : Builder.t -> Ir.value list -> unit
