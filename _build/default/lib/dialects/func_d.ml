(* func dialect: return and call. *)

open Cinm_ir

let dialect = Dialect.register ~name:"func" ~description:"functions, calls, returns"

let _ =
  Dialect.add_op dialect "return" ~summary:"function terminator"
    ~verify:(fun op -> Dialect.expect_results op 0)

let _ =
  Dialect.add_op dialect "call" ~summary:"direct call"
    ~verify:(fun op -> Dialect.expect_attr op "callee")

let ensure () = ignore dialect

let return b values = Builder.build0 b "func.return" ~operands:values

let call b ~callee ~result_tys args =
  Builder.build b "func.call" ~operands:args ~result_tys
    ~attrs:[ ("callee", Attr.Str callee) ]
