(** func dialect: returns and direct calls. *)

open Cinm_ir

val ensure : unit -> unit
val return : Builder.t -> Ir.value list -> unit
val call : Builder.t -> callee:string -> result_tys:Types.t list -> Ir.value list -> Ir.op
