(* linalg dialect: the device-independent front-end abstraction of the CINM
   flow (paper Fig. 3b). Value-semantics named ops; the subset needed by
   the paper's benchmarks plus a generalized einsum for contractions. *)

open Cinm_ir

let dialect = Dialect.register ~name:"linalg" ~description:"linear algebra named ops"

let elementwise_verify = Arith.same_operands_and_result

let matmul_verify op =
  let open Dialect in
  expect_operands op 2 >>= fun () ->
  expect_results op 1 >>= fun () ->
  match
    ( Types.shape_of (Ir.operand op 0).Ir.ty,
      Types.shape_of (Ir.operand op 1).Ir.ty,
      Types.shape_of (Ir.result op 0).Ir.ty )
  with
  | Some [| m; k |], Some [| k'; n |], Some [| m'; n' |] ->
    expect (k = k' && m = m' && n = n') "linalg.matmul: dimension mismatch"
  | _ -> Error "linalg.matmul: operands must be rank-2"

let matvec_verify op =
  let open Dialect in
  expect_operands op 2 >>= fun () ->
  expect_results op 1 >>= fun () ->
  match
    ( Types.shape_of (Ir.operand op 0).Ir.ty,
      Types.shape_of (Ir.operand op 1).Ir.ty,
      Types.shape_of (Ir.result op 0).Ir.ty )
  with
  | Some [| m; n |], Some [| n' |], Some [| m' |] ->
    expect (n = n' && m = m') "linalg.matvec: dimension mismatch"
  | _ -> Error "linalg.matvec: operand ranks must be (2, 1)"

let conv_2d_verify op =
  let open Dialect in
  expect_operands op 2 >>= fun () ->
  expect_results op 1 >>= fun () ->
  match
    ( Types.shape_of (Ir.operand op 0).Ir.ty,
      Types.shape_of (Ir.operand op 1).Ir.ty,
      Types.shape_of (Ir.result op 0).Ir.ty )
  with
  | Some [| h; w |], Some [| kh; kw |], Some [| oh; ow |] ->
    expect
      (oh = h - kh + 1 && ow = w - kw + 1)
      "linalg.conv_2d: output shape must be (H-Kh+1)x(W-Kw+1)"
  | _ -> Error "linalg.conv_2d: operands must be rank-2"

let binary_elementwise = [ "add"; "sub"; "mul"; "div"; "min"; "max" ]

let () =
  List.iter
    (fun name ->
      ignore
        (Dialect.add_op dialect name
           ~summary:("elementwise " ^ name)
           ~verify:elementwise_verify))
    binary_elementwise

let _ = Dialect.add_op dialect "matmul" ~summary:"matrix-matrix product" ~verify:matmul_verify
let _ = Dialect.add_op dialect "matvec" ~summary:"matrix-vector product" ~verify:matvec_verify
let _ = Dialect.add_op dialect "conv_2d" ~summary:"2D convolution" ~verify:conv_2d_verify

let _ =
  Dialect.add_op dialect "dot" ~summary:"vector dot product" ~verify:(fun op ->
      let open Dialect in
      expect_operands op 2 >>= fun () ->
      expect_results op 1 >>= fun () -> expect_same_type op 0 1)

let _ =
  Dialect.add_op dialect "fill" ~summary:"fill tensor with scalar" ~verify:(fun op ->
      let open Dialect in
      expect_operands op 1 >>= fun () -> expect_results op 1)

let _ =
  Dialect.add_op dialect "transpose" ~summary:"permute dimensions" ~verify:(fun op ->
      let open Dialect in
      expect_operands op 1 >>= fun () ->
      expect_results op 1 >>= fun () ->
      expect_attr op "perms" >>= fun () ->
      let perms = Ir.ints_attr op "perms" in
      expect
        (Array.length perms = Types.rank (Ir.operand op 0).Ir.ty)
        "linalg.transpose: perms rank mismatch")

let _ =
  Dialect.add_op dialect "reduce" ~summary:"reduce all elements with a monoid"
    ~verify:(fun op ->
      let open Dialect in
      expect_operands op 1 >>= fun () ->
      expect_results op 1 >>= fun () -> expect_attr op "op")

let _ =
  Dialect.add_op dialect "broadcast" ~summary:"broadcast a vector along new leading dims"
    ~verify:(fun op ->
      let open Dialect in
      expect_operands op 1 >>= fun () ->
      expect_results op 1 >>= fun () ->
      match
        (Types.shape_of (Ir.operand op 0).Ir.ty, Types.shape_of (Ir.result op 0).Ir.ty)
      with
      | Some src, Some dst ->
        let n = Array.length src and m = Array.length dst in
        expect
          (m > n && Array.sub dst (m - n) n = src)
          "linalg.broadcast: source must be a suffix of the result shape"
      | _ -> Error "linalg.broadcast: shaped operands required")

(* Generalized tensor contraction in Einstein notation, e.g. the paper's
   contrl: spec = "aebf,dfce->abcd" (§4.1.1). *)
let einsum_verify op =
  let open Dialect in
  expect_operands op 2 >>= fun () ->
  expect_results op 1 >>= fun () ->
  expect_attr op "spec" >>= fun () ->
  let spec = Ir.str_attr op "spec" in
  match String.split_on_char '>' spec with
  | [ lhs_part; out ] -> (
    let lhs_part =
      (* strip the '-' of "->" *)
      if String.length lhs_part > 0 && lhs_part.[String.length lhs_part - 1] = '-' then
        String.sub lhs_part 0 (String.length lhs_part - 1)
      else lhs_part
    in
    match String.split_on_char ',' lhs_part with
    | [ a; b ] ->
      expect
        (String.length a = Types.rank (Ir.operand op 0).Ir.ty
        && String.length b = Types.rank (Ir.operand op 1).Ir.ty
        && String.length out = Types.rank (Ir.result op 0).Ir.ty)
        "linalg.einsum: spec ranks must match operand/result ranks"
    | _ -> Error "linalg.einsum: spec must have two inputs")
  | _ -> Error "linalg.einsum: spec must contain '->'"

let _ = Dialect.add_op dialect "einsum" ~summary:"einsum contraction" ~verify:einsum_verify

let ensure () = ignore dialect

(* ----- constructors ----- *)

let binop b name x y =
  Builder.build1 b ("linalg." ^ name) ~operands:[ x; y ] ~result_tys:[ x.Ir.ty ]

let add b x y = binop b "add" x y
let sub b x y = binop b "sub" x y
let mul b x y = binop b "mul" x y

let matmul b x y =
  let dt = Option.get (Types.element_dtype x.Ir.ty) in
  match (Types.shape_of x.Ir.ty, Types.shape_of y.Ir.ty) with
  | Some [| m; _k |], Some [| _; n |] ->
    Builder.build1 b "linalg.matmul" ~operands:[ x; y ]
      ~result_tys:[ Types.Tensor ([| m; n |], dt) ]
  | _ -> invalid_arg "Linalg_d.matmul: rank-2 operands required"

let matvec b x y =
  let dt = Option.get (Types.element_dtype x.Ir.ty) in
  match Types.shape_of x.Ir.ty with
  | Some [| m; _n |] ->
    Builder.build1 b "linalg.matvec" ~operands:[ x; y ]
      ~result_tys:[ Types.Tensor ([| m |], dt) ]
  | _ -> invalid_arg "Linalg_d.matvec: rank-2 matrix required"

let conv_2d b img kernel =
  let dt = Option.get (Types.element_dtype img.Ir.ty) in
  match (Types.shape_of img.Ir.ty, Types.shape_of kernel.Ir.ty) with
  | Some [| h; w |], Some [| kh; kw |] ->
    Builder.build1 b "linalg.conv_2d" ~operands:[ img; kernel ]
      ~result_tys:[ Types.Tensor ([| h - kh + 1; w - kw + 1 |], dt) ]
  | _ -> invalid_arg "Linalg_d.conv_2d: rank-2 operands required"

let dot b x y =
  let dt = Option.get (Types.element_dtype x.Ir.ty) in
  Builder.build1 b "linalg.dot" ~operands:[ x; y ] ~result_tys:[ Types.Scalar dt ]

let fill b scalar shape dt =
  Builder.build1 b "linalg.fill" ~operands:[ scalar ]
    ~result_tys:[ Types.Tensor (shape, dt) ]

let transpose b x ~perms =
  let dt = Option.get (Types.element_dtype x.Ir.ty) in
  let shape = Option.get (Types.shape_of x.Ir.ty) in
  let out_shape = Array.map (fun p -> shape.(p)) perms in
  Builder.build1 b "linalg.transpose" ~operands:[ x ]
    ~attrs:[ ("perms", Attr.Ints perms) ]
    ~result_tys:[ Types.Tensor (out_shape, dt) ]

let reduce b ~op:red_op x =
  let dt = Option.get (Types.element_dtype x.Ir.ty) in
  Builder.build1 b "linalg.reduce" ~operands:[ x ]
    ~attrs:[ ("op", Attr.Str red_op) ]
    ~result_tys:[ Types.Scalar dt ]

let broadcast b x ~to_shape =
  let dt = Option.get (Types.element_dtype x.Ir.ty) in
  Builder.build1 b "linalg.broadcast" ~operands:[ x ]
    ~result_tys:[ Types.Tensor (to_shape, dt) ]

(* Parse an einsum spec into (input index strings, output index string). *)
let parse_einsum_spec spec =
  match String.index_opt spec '-' with
  | Some i when i + 1 < String.length spec && spec.[i + 1] = '>' ->
    let lhs = String.sub spec 0 i in
    let out = String.sub spec (i + 2) (String.length spec - i - 2) in
    (match String.split_on_char ',' lhs with
    | [ a; b2 ] -> (a, b2, out)
    | _ -> invalid_arg ("einsum: bad spec " ^ spec))
  | _ -> invalid_arg ("einsum: bad spec " ^ spec)

let einsum b ~spec x y =
  let a_idx, b_idx, out_idx = parse_einsum_spec spec in
  let dt = Option.get (Types.element_dtype x.Ir.ty) in
  let a_shape = Option.get (Types.shape_of x.Ir.ty) in
  let b_shape = Option.get (Types.shape_of y.Ir.ty) in
  let dim_of c =
    match String.index_opt a_idx c with
    | Some i -> a_shape.(i)
    | None -> (
      match String.index_opt b_idx c with
      | Some i -> b_shape.(i)
      | None -> invalid_arg ("einsum: output index not found: " ^ String.make 1 c))
  in
  let out_shape = Array.init (String.length out_idx) (fun i -> dim_of out_idx.[i]) in
  Builder.build1 b "linalg.einsum" ~operands:[ x; y ]
    ~attrs:[ ("spec", Attr.Str spec) ]
    ~result_tys:[ Types.Tensor (out_shape, dt) ]
