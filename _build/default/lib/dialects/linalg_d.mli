(** linalg dialect: the device-independent front-end abstraction of the
    CINM flow (paper Fig. 3b) — named linear-algebra ops plus a
    generalized einsum for the contraction benchmarks. *)

open Cinm_ir

val matmul_verify : Ir.op -> (unit, string) result
val matvec_verify : Ir.op -> (unit, string) result
val conv_2d_verify : Ir.op -> (unit, string) result
val ensure : unit -> unit

val add : Builder.t -> Ir.value -> Ir.value -> Ir.value
val sub : Builder.t -> Ir.value -> Ir.value -> Ir.value
val mul : Builder.t -> Ir.value -> Ir.value -> Ir.value
val matmul : Builder.t -> Ir.value -> Ir.value -> Ir.value
val matvec : Builder.t -> Ir.value -> Ir.value -> Ir.value
val conv_2d : Builder.t -> Ir.value -> Ir.value -> Ir.value
val dot : Builder.t -> Ir.value -> Ir.value -> Ir.value
val fill : Builder.t -> Ir.value -> int array -> Types.dtype -> Ir.value
val transpose : Builder.t -> Ir.value -> perms:int array -> Ir.value
val reduce : Builder.t -> op:string -> Ir.value -> Ir.value
val broadcast : Builder.t -> Ir.value -> to_shape:int array -> Ir.value

(** Split an einsum spec into (lhs indices, rhs indices, out indices).
    @raise Invalid_argument on malformed specs. *)
val parse_einsum_spec : string -> string * string * string

val einsum : Builder.t -> spec:string -> Ir.value -> Ir.value -> Ir.value
