(* memref dialect: mutable buffers. Used inside device kernels (cnm.launch
   bodies turn opaque buffers into memrefs, cf. paper §3.2.3). *)

open Cinm_ir

let dialect = Dialect.register ~name:"memref" ~description:"mutable buffer accesses"

let is_memref (v : Ir.value) = match v.Ir.ty with Types.MemRef _ -> true | _ -> false

let _ =
  Dialect.add_op dialect "alloc" ~summary:"allocate a buffer" ~verify:(fun op ->
      let open Dialect in
      expect_results op 1 >>= fun () ->
      expect (is_memref (Ir.result op 0)) "memref.alloc: result must be a memref")

let _ =
  Dialect.add_op dialect "load" ~summary:"load one element" ~verify:(fun op ->
      let open Dialect in
      expect_results op 1 >>= fun () ->
      expect (Ir.num_operands op >= 1) "memref.load: missing memref operand" >>= fun () ->
      expect (is_memref (Ir.operand op 0)) "memref.load: operand 0 must be a memref"
      >>= fun () ->
      expect
        (Ir.num_operands op = 1 + Types.rank (Ir.operand op 0).Ir.ty)
        "memref.load: needs one index per dimension")

let _ =
  Dialect.add_op dialect "store" ~summary:"store one element" ~verify:(fun op ->
      let open Dialect in
      expect_results op 0 >>= fun () ->
      expect (Ir.num_operands op >= 2) "memref.store: missing operands" >>= fun () ->
      expect (is_memref (Ir.operand op 1)) "memref.store: operand 1 must be a memref"
      >>= fun () ->
      expect
        (Ir.num_operands op = 2 + Types.rank (Ir.operand op 1).Ir.ty)
        "memref.store: needs one index per dimension")

let _ =
  Dialect.add_op dialect "copy" ~summary:"copy between buffers" ~verify:(fun op ->
      let open Dialect in
      expect_operands op 2 >>= fun () -> expect_results op 0)

let _ =
  Dialect.add_op dialect "dealloc" ~summary:"free a buffer" ~verify:(fun op ->
      let open Dialect in
      expect_operands op 1 >>= fun () -> expect_results op 0)

let ensure () = ignore dialect

let alloc b shape dt =
  Builder.build1 b "memref.alloc" ~result_tys:[ Types.MemRef (shape, dt) ]

let load b mem indices =
  let dt = Option.get (Types.element_dtype mem.Ir.ty) in
  Builder.build1 b "memref.load" ~operands:(mem :: indices) ~result_tys:[ Types.Scalar dt ]

let store b scalar mem indices =
  Builder.build0 b "memref.store" ~operands:(scalar :: mem :: indices)

let copy b src dst = Builder.build0 b "memref.copy" ~operands:[ src; dst ]

let dealloc b mem = Builder.build0 b "memref.dealloc" ~operands:[ mem ]
