(** memref dialect: mutable buffers (the form cnm.launch bodies compute
    on). *)

open Cinm_ir

val ensure : unit -> unit
val alloc : Builder.t -> int array -> Types.dtype -> Ir.value
val load : Builder.t -> Ir.value -> Ir.value list -> Ir.value
val store : Builder.t -> Ir.value -> Ir.value -> Ir.value list -> unit
val copy : Builder.t -> Ir.value -> Ir.value -> unit
val dealloc : Builder.t -> Ir.value -> unit
