(* memristor device dialect (paper §3.2.5): interface to memristive
   crossbar accelerators, extending the OCC flow. Weights are programmed
   into a crossbar tile ([store_tile], slow NVM writes); inputs stream
   through the tile ([gemm_tile], constant-time analog MVM per row);
   results come back through the ADCs ([read_result]). *)

open Cinm_ir

let dialect =
  Dialect.register ~name:"memristor"
    ~description:"memristive crossbar device dialect (OCC-derived)"

let is_id (v : Ir.value) = Types.equal v.Ir.ty Types.Cim_id

let with_tile_attr op =
  let open Dialect in
  expect_attr op "tile" >>= fun () ->
  expect (is_id (Ir.operand op 0)) (op.Ir.name ^ ": operand 0 must be !cim.id")

let _ =
  Dialect.add_op dialect "alloc" ~summary:"acquire a crossbar accelerator"
    ~verify:(fun op ->
      let open Dialect in
      expect_results op 1 >>= fun () ->
      expect_attr op "rows" >>= fun () ->
      expect_attr op "cols" >>= fun () ->
      expect_attr op "tiles" >>= fun () ->
      expect (is_id (Ir.result op 0)) "memristor.alloc: result must be !cim.id")

let _ =
  Dialect.add_op dialect "store_tile" ~summary:"program weights into a tile (NVM write)"
    ~verify:(fun op ->
      let open Dialect in
      expect_operands op 2 >>= fun () ->
      expect_results op 0 >>= fun () -> with_tile_attr op)

let _ =
  Dialect.add_op dialect "copy_tile" ~summary:"copy input buffer to a tile's DAC registers"
    ~verify:(fun op ->
      let open Dialect in
      expect_operands op 2 >>= fun () ->
      expect_results op 0 >>= fun () -> with_tile_attr op)

let _ =
  Dialect.add_op dialect "gemm_tile"
    ~summary:"analog MVM of the staged input against the tile's weights"
    ~verify:(fun op ->
      let open Dialect in
      expect_operands op 1 >>= fun () ->
      expect_results op 1 >>= fun () ->
      expect_attr op "tile" >>= fun () ->
      expect (is_id (Ir.operand op 0)) "memristor.gemm_tile: operand 0 must be !cim.id")

let _ =
  Dialect.add_op dialect "read_result" ~summary:"read tile output through the ADCs"
    ~verify:(fun op ->
      let open Dialect in
      expect_operands op 1 >>= fun () ->
      expect_results op 1 >>= fun () ->
      expect (is_id (Ir.operand op 0)) "memristor.read_result: operand 0 must be !cim.id")

let _ =
  Dialect.add_op dialect "barrier" ~summary:"wait for in-flight tile operations"
    ~verify:(fun op ->
      let open Dialect in
      expect_operands op 1 >>= fun () -> expect_results op 0)

let _ =
  Dialect.add_op dialect "release" ~summary:"release the accelerator" ~verify:(fun op ->
      let open Dialect in
      expect_operands op 1 >>= fun () -> expect_results op 0)

let ensure () = ignore dialect

(* ----- constructors ----- *)

let alloc b ~rows ~cols ~tiles =
  Builder.build1 b "memristor.alloc"
    ~attrs:
      [ ("rows", Attr.Int rows); ("cols", Attr.Int cols); ("tiles", Attr.Int tiles) ]
    ~result_tys:[ Types.Cim_id ]

let store_tile b id ~tile weights =
  Builder.build0 b "memristor.store_tile" ~operands:[ id; weights ]
    ~attrs:[ ("tile", Attr.Int tile) ]

let copy_tile b id ~tile input =
  Builder.build0 b "memristor.copy_tile" ~operands:[ id; input ]
    ~attrs:[ ("tile", Attr.Int tile) ]

let gemm_tile b id ~tile ~result_ty =
  Builder.build1 b "memristor.gemm_tile" ~operands:[ id ]
    ~attrs:[ ("tile", Attr.Int tile) ]
    ~result_tys:[ result_ty ]

let read_result b id ~result_ty =
  Builder.build1 b "memristor.read_result" ~operands:[ id ] ~result_tys:[ result_ty ]

let barrier b id = Builder.build0 b "memristor.barrier" ~operands:[ id ]

let release b id = Builder.build0 b "memristor.release" ~operands:[ id ]
