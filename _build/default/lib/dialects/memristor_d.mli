(** memristor device dialect (paper §3.2.5, extending OCC): program
    weights into a crossbar tile (slow NVM writes), stream inputs through
    as analog MVMs, read results behind the ADCs. *)

open Cinm_ir

val ensure : unit -> unit
val alloc : Builder.t -> rows:int -> cols:int -> tiles:int -> Ir.value
val store_tile : Builder.t -> Ir.value -> tile:int -> Ir.value -> unit
val copy_tile : Builder.t -> Ir.value -> tile:int -> Ir.value -> unit
val gemm_tile : Builder.t -> Ir.value -> tile:int -> result_ty:Types.t -> Ir.value
val read_result : Builder.t -> Ir.value -> result_ty:Types.t -> Ir.value
val barrier : Builder.t -> Ir.value -> unit
val release : Builder.t -> Ir.value -> unit
