(* Forces registration of every dialect. OCaml only initializes modules
   that are referenced; call [ensure_all] before verifying or parsing IR. *)

let ensure_all () =
  Arith.ensure ();
  Func_d.ensure ();
  Tensor_d.ensure ();
  Memref_d.ensure ();
  Scf_d.ensure ();
  Linalg_d.ensure ();
  Tosa_d.ensure ();
  Cinm_d.ensure ();
  Cnm_d.ensure ();
  Cim_d.ensure ();
  Torch_d.ensure ();
  Upmem_d.ensure ();
  Memristor_d.ensure ();
  Cam_d.ensure ();
  Rtm_d.ensure ()
