(** Forces registration of every dialect: call before verifying or parsing
    IR (OCaml only initializes modules that are referenced). *)

val ensure_all : unit -> unit
