(* rtm device dialect: racetrack-memory logic CIM (paper §2.3: RTM's
   transverse reads give efficient population count and majority; Table 5
   claims CIM-Logic support). Data is written into nanowire tracks; a
   transverse read senses across the domains of all tracks at once. *)

open Cinm_ir

let dialect =
  Dialect.register ~name:"rtm" ~description:"racetrack-memory logic-CIM device dialect"

let is_id (v : Ir.value) = Types.equal v.Ir.ty Types.Cim_id

let _ =
  Dialect.add_op dialect "alloc" ~summary:"acquire tracks (tracks x domains per track)"
    ~verify:(fun op ->
      let open Dialect in
      expect_operands op 0 >>= fun () ->
      expect_results op 1 >>= fun () ->
      expect_attr op "tracks" >>= fun () ->
      expect_attr op "domains" >>= fun () ->
      expect (is_id (Ir.result op 0)) "rtm.alloc: result must be !cim.id")

let _ =
  Dialect.add_op dialect "write" ~summary:"shift data into the tracks"
    ~verify:(fun op ->
      let open Dialect in
      expect_operands op 2 >>= fun () ->
      expect_results op 0 >>= fun () ->
      expect (is_id (Ir.operand op 0)) "rtm.write: operand 0 must be !cim.id")

let _ =
  Dialect.add_op dialect "pop_count" ~summary:"transverse-read population count"
    ~verify:(fun op ->
      let open Dialect in
      expect_operands op 1 >>= fun () ->
      expect_results op 1 >>= fun () ->
      expect (is_id (Ir.operand op 0)) "rtm.pop_count: operand 0 must be !cim.id")

let _ =
  Dialect.add_op dialect "release" ~summary:"release the tracks" ~verify:(fun op ->
      let open Dialect in
      expect_operands op 1 >>= fun () -> expect_results op 0)

let ensure () = ignore dialect

(* ----- constructors ----- *)

let alloc b ~tracks ~domains =
  Builder.build1 b "rtm.alloc"
    ~attrs:[ ("tracks", Attr.Int tracks); ("domains", Attr.Int domains) ]
    ~result_tys:[ Types.Cim_id ]

let write b id data = Builder.build0 b "rtm.write" ~operands:[ id; data ]

let pop_count b id =
  Builder.build1 b "rtm.pop_count" ~operands:[ id ] ~result_tys:[ Types.Scalar Types.I32 ]

let release b id = Builder.build0 b "rtm.release" ~operands:[ id ]
