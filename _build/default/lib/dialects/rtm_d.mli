(** rtm device dialect: racetrack-memory logic CIM (transverse-read
    popcount; Table 5's CIM-Logic row). *)

open Cinm_ir

val ensure : unit -> unit
val alloc : Builder.t -> tracks:int -> domains:int -> Ir.value
val write : Builder.t -> Ir.value -> Ir.value -> unit
val pop_count : Builder.t -> Ir.value -> Ir.value
val release : Builder.t -> Ir.value -> unit
