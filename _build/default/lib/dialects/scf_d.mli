(** scf dialect: structured control flow. scf.for carries loop-carried
    values (iter_args) like MLIR; the tiling passes emit these loops. *)

open Cinm_ir

val ensure : unit -> unit
val yield : Builder.t -> Ir.value list -> unit

(** Counted loop: [body] receives a builder, the induction variable and the
    iter_args; it returns the values to yield. Returns the loop results. *)
val for_ :
  Builder.t ->
  lb:Ir.value ->
  ub:Ir.value ->
  step:Ir.value ->
  init:Ir.value list ->
  (Builder.t -> Ir.value -> Ir.value array -> Ir.value list) ->
  Ir.value list

(** Loop without iter_args. *)
val for0 :
  Builder.t -> lb:Ir.value -> ub:Ir.value -> step:Ir.value -> (Builder.t -> Ir.value -> unit) -> unit

val if_ :
  Builder.t ->
  Ir.value ->
  then_:(Builder.t -> Ir.value list) ->
  else_:(Builder.t -> Ir.value list) ->
  result_tys:Types.t list ->
  Ir.value list

(** Multi-dimensional parallel loop; bounds are (lb, ub, step) triples. *)
val parallel :
  Builder.t -> bounds:(Ir.value * Ir.value * Ir.value) list -> (Builder.t -> Ir.value array -> unit) -> unit

(** Accessors used by lowerings and the interpreter. *)

val for_lb : Ir.op -> Ir.value
val for_ub : Ir.op -> Ir.value
val for_step : Ir.op -> Ir.value
val for_inits : Ir.op -> Ir.value list
val for_body : Ir.op -> Ir.block
