(* tensor dialect: value-semantics tensor creation and slicing, the glue
   between linalg kernels and the tiling transformations (paper §3.2.6). *)

open Cinm_ir

let dialect = Dialect.register ~name:"tensor" ~description:"tensor creation and slicing"

let shaped_result op =
  let open Dialect in
  expect_results op 1 >>= fun () ->
  expect (Types.is_shaped (Ir.result op 0).Ir.ty) (op.Ir.name ^ ": result must be shaped")

let _ =
  Dialect.add_op dialect "empty" ~summary:"uninitialized tensor" ~verify:(fun op ->
      let open Dialect in
      expect_operands op 0 >>= fun () -> shaped_result op)

let _ =
  Dialect.add_op dialect "splat" ~summary:"tensor filled with one scalar" ~verify:(fun op ->
      let open Dialect in
      expect_operands op 1 >>= fun () -> shaped_result op)

let _ =
  Dialect.add_op dialect "extract_slice" ~summary:"extract a rectangular sub-tensor"
    ~verify:(fun op ->
      let open Dialect in
      expect_results op 1 >>= fun () ->
      expect_attr op "sizes" >>= fun () ->
      expect_shaped_operand op 0 >>= fun () ->
      let sizes = Ir.ints_attr op "sizes" in
      match Types.shape_of (Ir.result op 0).Ir.ty with
      | Some shape ->
        expect (shape = sizes) "tensor.extract_slice: result shape must equal sizes"
      | None -> Error "tensor.extract_slice: result must be shaped")

let _ =
  Dialect.add_op dialect "insert_slice" ~summary:"insert a sub-tensor into a tensor"
    ~verify:(fun op ->
      let open Dialect in
      expect (Ir.num_operands op >= 2) "tensor.insert_slice: needs src and dst"
      >>= fun () ->
      expect_results op 1 >>= fun () ->
      expect_attr op "offsets" >>= fun () ->
      expect
        (Types.equal (Ir.operand op 1).Ir.ty (Ir.result op 0).Ir.ty)
        "tensor.insert_slice: result type must match destination type")

let _ =
  Dialect.add_op dialect "extract" ~summary:"extract one element" ~verify:(fun op ->
      let open Dialect in
      expect_results op 1 >>= fun () ->
      expect_shaped_operand op 0 >>= fun () ->
      expect
        (Ir.num_operands op = 1 + Types.rank (Ir.operand op 0).Ir.ty)
        "tensor.extract: needs one index per dimension")

let _ =
  Dialect.add_op dialect "insert" ~summary:"insert one element (value semantics)"
    ~verify:(fun op ->
      let open Dialect in
      expect_results op 1 >>= fun () ->
      expect_shaped_operand op 1 >>= fun () ->
      expect
        (Ir.num_operands op = 2 + Types.rank (Ir.operand op 1).Ir.ty)
        "tensor.insert: needs one index per dimension")

let _ =
  Dialect.add_op dialect "reshape" ~summary:"reinterpret tensor shape" ~verify:(fun op ->
      let open Dialect in
      expect_operands op 1 >>= fun () ->
      expect_results op 1 >>= fun () ->
      expect
        (Types.num_elements (Ir.operand op 0).Ir.ty = Types.num_elements (Ir.result op 0).Ir.ty)
        "tensor.reshape: element count must be preserved")

let _ =
  Dialect.add_op dialect "pad" ~summary:"zero-pad a tensor" ~verify:(fun op ->
      let open Dialect in
      expect_operands op 1 >>= fun () ->
      expect_results op 1 >>= fun () ->
      expect_attr op "low" >>= fun () -> expect_attr op "high")

let ensure () = ignore dialect

(* ----- constructors ----- *)

let empty b shape dt =
  Builder.build1 b "tensor.empty" ~result_tys:[ Types.Tensor (shape, dt) ]

let splat b scalar shape dt =
  Builder.build1 b "tensor.splat" ~operands:[ scalar ]
    ~result_tys:[ Types.Tensor (shape, dt) ]

(* Static offsets/sizes as attributes; dynamic offsets as index operands
   (one per dimension, used by tiled loops). *)
let extract_slice b src ~offsets ~sizes ~dyn_offsets =
  let dt =
    match Types.element_dtype src.Ir.ty with
    | Some dt -> dt
    | None -> invalid_arg "tensor.extract_slice: source not shaped"
  in
  Builder.build1 b "tensor.extract_slice"
    ~operands:(src :: dyn_offsets)
    ~attrs:[ ("offsets", Attr.Ints offsets); ("sizes", Attr.Ints sizes) ]
    ~result_tys:[ Types.Tensor (sizes, dt) ]

let insert_slice b src dst ~offsets ~dyn_offsets =
  Builder.build1 b "tensor.insert_slice"
    ~operands:(src :: dst :: dyn_offsets)
    ~attrs:[ ("offsets", Attr.Ints offsets) ]
    ~result_tys:[ dst.Ir.ty ]

let extract b src indices =
  let dt =
    match Types.element_dtype src.Ir.ty with
    | Some dt -> dt
    | None -> invalid_arg "tensor.extract: source not shaped"
  in
  Builder.build1 b "tensor.extract" ~operands:(src :: indices)
    ~result_tys:[ Types.Scalar dt ]

let insert b scalar dst indices =
  Builder.build1 b "tensor.insert" ~operands:(scalar :: dst :: indices)
    ~result_tys:[ dst.Ir.ty ]

let reshape b src new_shape =
  let dt = Option.get (Types.element_dtype src.Ir.ty) in
  Builder.build1 b "tensor.reshape" ~operands:[ src ]
    ~attrs:[ ("shape", Attr.Ints new_shape) ]
    ~result_tys:[ Types.Tensor (new_shape, dt) ]

let pad b src ~low ~high =
  let shape = Option.get (Types.shape_of src.Ir.ty) in
  let dt = Option.get (Types.element_dtype src.Ir.ty) in
  let new_shape = Array.mapi (fun i d -> d + low.(i) + high.(i)) shape in
  Builder.build1 b "tensor.pad" ~operands:[ src ]
    ~attrs:[ ("low", Attr.Ints low); ("high", Attr.Ints high) ]
    ~result_tys:[ Types.Tensor (new_shape, dt) ]
