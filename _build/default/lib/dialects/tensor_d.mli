(** tensor dialect: value-semantics tensor creation and slicing — the glue
    between linalg kernels and the tiling transformations (paper §3.2.6). *)

open Cinm_ir

val ensure : unit -> unit
val empty : Builder.t -> int array -> Types.dtype -> Ir.value
val splat : Builder.t -> Ir.value -> int array -> Types.dtype -> Ir.value

(** Static [offsets]/[sizes] as attributes; [dyn_offsets] (one index per
    dimension, added to the static offsets) for tiled loops. *)
val extract_slice :
  Builder.t ->
  Ir.value ->
  offsets:int array ->
  sizes:int array ->
  dyn_offsets:Ir.value list ->
  Ir.value

val insert_slice :
  Builder.t -> Ir.value -> Ir.value -> offsets:int array -> dyn_offsets:Ir.value list -> Ir.value

val extract : Builder.t -> Ir.value -> Ir.value list -> Ir.value
val insert : Builder.t -> Ir.value -> Ir.value -> Ir.value list -> Ir.value
val reshape : Builder.t -> Ir.value -> int array -> Ir.value
val pad : Builder.t -> Ir.value -> low:int array -> high:int array -> Ir.value
