(* torch dialect: the third front-end the paper names (§3.2.1, via
   torch-mlir). A small aten-op subset sufficient for the MLP/matmul
   benchmarks; Torch_to_tosa lowers it into the tosa/linalg path. *)

open Cinm_ir

let dialect =
  Dialect.register ~name:"torch" ~description:"PyTorch aten ops (torch-mlir front-end)"

let _ =
  Dialect.add_op dialect "torch.aten.mm" ~summary:"matrix multiply"
    ~verify:Linalg_d.matmul_verify

let _ =
  Dialect.add_op dialect "torch.aten.linear" ~summary:"x W^T + b (dense layer)"
    ~verify:(fun op ->
      let open Dialect in
      expect_operands op 3 >>= fun () -> expect_results op 1)

let _ =
  Dialect.add_op dialect "torch.aten.relu" ~summary:"rectified linear unit"
    ~verify:(fun op ->
      let open Dialect in
      expect_operands op 1 >>= fun () ->
      expect_results op 1 >>= fun () ->
      expect
        (Types.equal (Ir.operand op 0).Ir.ty (Ir.result op 0).Ir.ty)
        "torch.aten.relu: result type must match operand")

let _ =
  Dialect.add_op dialect "torch.aten.add_tensor" ~summary:"elementwise add"
    ~verify:Arith.same_operands_and_result

let _ =
  Dialect.add_op dialect "torch.aten.mul_tensor" ~summary:"elementwise multiply"
    ~verify:Arith.same_operands_and_result

let _ =
  Dialect.add_op dialect "torch.aten.conv2d" ~summary:"2D convolution (single channel)"
    ~verify:Linalg_d.conv_2d_verify

let _ =
  Dialect.add_op dialect "torch.aten.sum" ~summary:"sum of all elements"
    ~verify:(fun op ->
      let open Dialect in
      expect_operands op 1 >>= fun () -> expect_results op 1)

let ensure () = ignore dialect

(* ----- constructors ----- *)

let mm b x y =
  let dt = Option.get (Types.element_dtype x.Ir.ty) in
  match (Types.shape_of x.Ir.ty, Types.shape_of y.Ir.ty) with
  | Some [| m; _ |], Some [| _; n |] ->
    Builder.build1 b "torch.aten.mm" ~operands:[ x; y ]
      ~result_tys:[ Types.Tensor ([| m; n |], dt) ]
  | _ -> invalid_arg "Torch_d.mm"

let linear b input weight bias =
  let dt = Option.get (Types.element_dtype input.Ir.ty) in
  match (Types.shape_of input.Ir.ty, Types.shape_of weight.Ir.ty) with
  | Some [| n; _k |], Some [| f; _ |] ->
    Builder.build1 b "torch.aten.linear" ~operands:[ input; weight; bias ]
      ~result_tys:[ Types.Tensor ([| n; f |], dt) ]
  | _ -> invalid_arg "Torch_d.linear"

let relu b x = Builder.build1 b "torch.aten.relu" ~operands:[ x ] ~result_tys:[ x.Ir.ty ]

let add b x y =
  Builder.build1 b "torch.aten.add_tensor" ~operands:[ x; y ] ~result_tys:[ x.Ir.ty ]

let mul b x y =
  Builder.build1 b "torch.aten.mul_tensor" ~operands:[ x; y ] ~result_tys:[ x.Ir.ty ]

let conv2d b img kernel =
  let dt = Option.get (Types.element_dtype img.Ir.ty) in
  match (Types.shape_of img.Ir.ty, Types.shape_of kernel.Ir.ty) with
  | Some [| h; w |], Some [| kh; kw |] ->
    Builder.build1 b "torch.aten.conv2d" ~operands:[ img; kernel ]
      ~result_tys:[ Types.Tensor ([| h - kh + 1; w - kw + 1 |], dt) ]
  | _ -> invalid_arg "Torch_d.conv2d"

let sum b x =
  let dt = Option.get (Types.element_dtype x.Ir.ty) in
  Builder.build1 b "torch.aten.sum" ~operands:[ x ] ~result_tys:[ Types.Scalar dt ]
