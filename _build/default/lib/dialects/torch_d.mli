(** torch dialect: aten-op subset, the third front-end the paper names
    (torch-mlir route). *)

open Cinm_ir

val ensure : unit -> unit
val mm : Builder.t -> Ir.value -> Ir.value -> Ir.value
val linear : Builder.t -> Ir.value -> Ir.value -> Ir.value -> Ir.value
val relu : Builder.t -> Ir.value -> Ir.value
val add : Builder.t -> Ir.value -> Ir.value -> Ir.value
val mul : Builder.t -> Ir.value -> Ir.value -> Ir.value
val conv2d : Builder.t -> Ir.value -> Ir.value -> Ir.value
val sum : Builder.t -> Ir.value -> Ir.value
