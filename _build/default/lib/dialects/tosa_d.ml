(* tosa dialect: higher-level ML front-end ops (paper §3.2.1). The
   tosa-to-linalg decomposition mirrors the paper's MLP example:
   tosa.fully_connected -> transpose + matmul + bias add. *)

open Cinm_ir

let dialect = Dialect.register ~name:"tosa" ~description:"tensor operator set (ML front-end)"

let _ =
  Dialect.add_op dialect "fully_connected" ~summary:"dense layer: x*W^T + bias"
    ~verify:(fun op ->
      let open Dialect in
      expect_operands op 3 >>= fun () ->
      expect_results op 1 >>= fun () ->
      match
        ( Types.shape_of (Ir.operand op 0).Ir.ty,
          Types.shape_of (Ir.operand op 1).Ir.ty,
          Types.shape_of (Ir.operand op 2).Ir.ty )
      with
      | Some [| _n; k |], Some [| f; k' |], Some [| f' |] ->
        expect (k = k' && f = f') "tosa.fully_connected: dimension mismatch"
      | _ -> Error "tosa.fully_connected: (input NxK, weight FxK, bias F)")

let _ =
  Dialect.add_op dialect "matmul" ~summary:"batched/plain matmul"
    ~verify:Linalg_d.matmul_verify

let _ =
  Dialect.add_op dialect "add" ~summary:"elementwise add" ~verify:Arith.same_operands_and_result

let _ =
  Dialect.add_op dialect "clamp" ~summary:"clamp (covers ReLU)" ~verify:(fun op ->
      let open Dialect in
      expect_operands op 1 >>= fun () ->
      expect_results op 1 >>= fun () ->
      expect_attr op "min" >>= fun () -> expect_attr op "max")

let ensure () = ignore dialect

let fully_connected b input weight bias =
  let dt = Option.get (Types.element_dtype input.Ir.ty) in
  match (Types.shape_of input.Ir.ty, Types.shape_of weight.Ir.ty) with
  | Some [| n; _k |], Some [| f; _ |] ->
    Builder.build1 b "tosa.fully_connected" ~operands:[ input; weight; bias ]
      ~result_tys:[ Types.Tensor ([| n; f |], dt) ]
  | _ -> invalid_arg "Tosa_d.fully_connected"

let matmul b x y =
  let dt = Option.get (Types.element_dtype x.Ir.ty) in
  match (Types.shape_of x.Ir.ty, Types.shape_of y.Ir.ty) with
  | Some [| m; _ |], Some [| _; n |] ->
    Builder.build1 b "tosa.matmul" ~operands:[ x; y ]
      ~result_tys:[ Types.Tensor ([| m; n |], dt) ]
  | _ -> invalid_arg "Tosa_d.matmul"

let add b x y = Builder.build1 b "tosa.add" ~operands:[ x; y ] ~result_tys:[ x.Ir.ty ]

let clamp b x ~min_v ~max_v =
  Builder.build1 b "tosa.clamp" ~operands:[ x ]
    ~attrs:[ ("min", Attr.Int min_v); ("max", Attr.Int max_v) ]
    ~result_tys:[ x.Ir.ty ]

let relu b x = clamp b x ~min_v:0 ~max_v:max_int
