(** tosa dialect: ML front-end ops (paper §3.2.1); tosa.fully_connected is
    the op the paper's MLP decomposition example uses. *)

open Cinm_ir

val ensure : unit -> unit
val fully_connected : Builder.t -> Ir.value -> Ir.value -> Ir.value -> Ir.value
val matmul : Builder.t -> Ir.value -> Ir.value -> Ir.value
val add : Builder.t -> Ir.value -> Ir.value -> Ir.value
val clamp : Builder.t -> Ir.value -> min_v:int -> max_v:int -> Ir.value
val relu : Builder.t -> Ir.value -> Ir.value
