(* upmem device dialect (paper §3.2.5): exposes the UPMEM architecture —
   DPUs grouped in DIMMs, tasklets, explicit WRAM staging via MRAM<->WRAM
   DMA, and tasklet barriers. The cnm-to-upmem conversion materializes
   these device concepts; the upmem simulator executes them. *)

open Cinm_ir

let dialect =
  Dialect.register ~name:"upmem" ~description:"UPMEM DPU device dialect"

let _ =
  Dialect.add_op dialect "alloc_dpus" ~summary:"allocate a DPU grid" ~verify:(fun op ->
      let open Dialect in
      expect_operands op 0 >>= fun () ->
      expect_results op 1 >>= fun () ->
      expect_attr op "dimms" >>= fun () ->
      match (Ir.result op 0).Ir.ty with
      | Types.Workgroup [| _dpus; _tasklets |] -> Ok ()
      | _ -> Error "upmem.alloc_dpus: result must be !cnm.workgroup<dpus x tasklets>")

let _ =
  Dialect.add_op dialect "scatter" ~summary:"host -> MRAM transfer" ~verify:(fun op ->
      let open Dialect in
      expect_operands op 3 >>= fun () ->
      expect_results op 1 >>= fun () -> expect_attr op "map")

let _ =
  Dialect.add_op dialect "gather" ~summary:"MRAM -> host transfer" ~verify:(fun op ->
      let open Dialect in
      expect_operands op 2 >>= fun () -> expect_results op 2)

let _ =
  Dialect.add_op dialect "launch" ~summary:"launch the per-tasklet kernel on all DPUs"
    ~verify:(fun op ->
      let open Dialect in
      expect_regions op 1 >>= fun () ->
      expect_results op 1 >>= fun () ->
      expect_attr op "tasklets" >>= fun () ->
      expect_attr op "n_inputs" >>= fun () ->
      expect (Ir.num_operands op >= 1) "upmem.launch: missing workgroup")

let _ =
  Dialect.add_op dialect "free_dpus" ~summary:"release the DPU grid" ~verify:(fun op ->
      let open Dialect in
      expect_operands op 1 >>= fun () -> expect_results op 0)

(* --- ops used inside the launch body (the DPU kernel) --- *)

let _ =
  Dialect.add_op dialect "tasklet_id" ~summary:"id of the executing tasklet"
    ~verify:(fun op ->
      let open Dialect in
      expect_operands op 0 >>= fun () ->
      expect_results op 1 >>= fun () ->
      expect
        (Types.equal (Ir.result op 0).Ir.ty Types.Index)
        "upmem.tasklet_id: result must be index")

let _ =
  Dialect.add_op dialect "wram_alloc" ~summary:"allocate a WRAM scratchpad buffer"
    ~verify:(fun op ->
      let open Dialect in
      expect_operands op 0 >>= fun () ->
      expect_results op 1 >>= fun () ->
      match (Ir.result op 0).Ir.ty with
      | Types.MemRef _ -> Ok ()
      | _ -> Error "upmem.wram_alloc: result must be a memref")

let _ =
  Dialect.add_op dialect "wram_shared_alloc"
    ~summary:"WRAM buffer shared by all tasklets of a DPU" ~verify:(fun op ->
      let open Dialect in
      expect_operands op 0 >>= fun () ->
      expect_results op 1 >>= fun () ->
      match (Ir.result op 0).Ir.ty with
      | Types.MemRef _ -> Ok ()
      | _ -> Error "upmem.wram_shared_alloc: result must be a memref")

let _ =
  Dialect.add_op dialect "alloc" ~summary:"per-PU MRAM buffer (device form of cnm.alloc)"
    ~verify:(fun op ->
      let open Dialect in
      expect_operands op 1 >>= fun () ->
      expect_results op 1 >>= fun () ->
      match (Ir.result op 0).Ir.ty with
      | Types.Buffer _ -> Ok ()
      | _ -> Error "upmem.alloc: result must be a buffer")

(* mram_read/mram_write copy [count] contiguous elements between an MRAM
   memref and a WRAM memref, with dynamic element offsets on both sides:
   (mram, wram, mram_offset, wram_offset) + attrs {count}. *)
let dma_verify op =
  let open Dialect in
  expect_operands op 4 >>= fun () ->
  expect_results op 0 >>= fun () ->
  expect_attr op "count" >>= fun () ->
  expect
    (Types.equal (Ir.operand op 2).Ir.ty Types.Index
    && Types.equal (Ir.operand op 3).Ir.ty Types.Index)
    (op.Ir.name ^ ": offsets must be index")

let _ = Dialect.add_op dialect "mram_read" ~summary:"DMA MRAM -> WRAM" ~verify:dma_verify
let _ = Dialect.add_op dialect "mram_write" ~summary:"DMA WRAM -> MRAM" ~verify:dma_verify

let _ =
  Dialect.add_op dialect "barrier_wait" ~summary:"barrier across the DPU's tasklets"
    ~verify:(fun op ->
      let open Dialect in
      expect_operands op 0 >>= fun () -> expect_results op 0)

let ensure () = ignore dialect

(* ----- constructors ----- *)

let alloc_dpus b ~dimms ~dpus ~tasklets =
  Builder.build1 b "upmem.alloc_dpus"
    ~attrs:[ ("dimms", Attr.Int dimms) ]
    ~result_tys:[ Types.Workgroup [| dpus; tasklets |] ]

let scatter b ?halo tensor buffer wg ~map =
  let attrs =
    ("map", Attr.Str map)
    :: (match halo with Some h -> [ ("halo", Attr.Int h) ] | None -> [])
  in
  Builder.build1 b "upmem.scatter" ~operands:[ tensor; buffer; wg ] ~attrs
    ~result_tys:[ Types.Token ]

let gather b buffer wg ~result_shape =
  let dtype =
    match buffer.Ir.ty with
    | Types.Buffer { dtype; _ } -> dtype
    | _ -> invalid_arg "Upmem_d.gather"
  in
  let op =
    Builder.build b "upmem.gather" ~operands:[ buffer; wg ]
      ~result_tys:[ Types.Tensor (result_shape, dtype); Types.Token ]
  in
  (Ir.result op 0, Ir.result op 1)

let launch b wg ~tasklets ~ins ~outs (body : Builder.t -> Ir.value array -> unit) =
  let buffers = ins @ outs in
  let memref_ty (v : Ir.value) =
    match v.Ir.ty with
    | Types.Buffer { shape; dtype; _ } -> Types.MemRef (shape, dtype)
    | _ -> invalid_arg "Upmem_d.launch: operand is not a buffer"
  in
  let region =
    Builder.build_region ~arg_tys:(List.map memref_ty buffers) (fun bb args ->
        body bb args;
        Builder.build0 bb "cnm.terminator")
  in
  Builder.build1 b "upmem.launch"
    ~operands:(wg :: buffers)
    ~attrs:[ ("n_inputs", Attr.Int (List.length ins)); ("tasklets", Attr.Int tasklets) ]
    ~regions:[ region ] ~result_tys:[ Types.Token ]

let free_dpus b wg = Builder.build0 b "upmem.free_dpus" ~operands:[ wg ]

let tasklet_id b = Builder.build1 b "upmem.tasklet_id" ~result_tys:[ Types.Index ]

let wram_alloc b shape dt =
  Builder.build1 b "upmem.wram_alloc" ~result_tys:[ Types.MemRef (shape, dt) ]

let wram_shared_alloc b shape dt =
  Builder.build1 b "upmem.wram_shared_alloc" ~result_tys:[ Types.MemRef (shape, dt) ]

let alloc b wg ~shape ~dtype ~level =
  Builder.build1 b "upmem.alloc" ~operands:[ wg ]
    ~result_tys:[ Types.Buffer { shape; dtype; level } ]

let mram_read b ~mram ~wram ~mram_off ~wram_off ~count =
  Builder.build0 b "upmem.mram_read" ~operands:[ mram; wram; mram_off; wram_off ]
    ~attrs:[ ("count", Attr.Int count) ]

let mram_write b ~wram ~mram ~mram_off ~wram_off ~count =
  Builder.build0 b "upmem.mram_write" ~operands:[ mram; wram; mram_off; wram_off ]
    ~attrs:[ ("count", Attr.Int count) ]

let barrier_wait b = Builder.build0 b "upmem.barrier_wait"
