(** upmem device dialect (paper §3.2.5): DPU grids, tasklets, explicit
    MRAM<->WRAM DMA, and barriers. Produced by cnm-to-upmem; executed by
    the UPMEM machine simulator. *)

open Cinm_ir

val ensure : unit -> unit
val alloc_dpus : Builder.t -> dimms:int -> dpus:int -> tasklets:int -> Ir.value

val scatter :
  Builder.t -> ?halo:int -> Ir.value -> Ir.value -> Ir.value -> map:string -> Ir.value

val gather : Builder.t -> Ir.value -> Ir.value -> result_shape:int array -> Ir.value * Ir.value

val launch :
  Builder.t ->
  Ir.value ->
  tasklets:int ->
  ins:Ir.value list ->
  outs:Ir.value list ->
  (Builder.t -> Ir.value array -> unit) ->
  Ir.value

val free_dpus : Builder.t -> Ir.value -> unit
val tasklet_id : Builder.t -> Ir.value
val wram_alloc : Builder.t -> int array -> Types.dtype -> Ir.value

(** One WRAM buffer per DPU, shared by its tasklets. *)
val wram_shared_alloc : Builder.t -> int array -> Types.dtype -> Ir.value

val alloc :
  Builder.t -> Ir.value -> shape:int array -> dtype:Types.dtype -> level:int -> Ir.value

(** DMA [count] contiguous elements from mram\[mram_off..\] into
    wram\[wram_off..\]. *)
val mram_read :
  Builder.t -> mram:Ir.value -> wram:Ir.value -> mram_off:Ir.value -> wram_off:Ir.value -> count:int -> unit

val mram_write :
  Builder.t -> wram:Ir.value -> mram:Ir.value -> mram_off:Ir.value -> wram_off:Ir.value -> count:int -> unit

val barrier_wait : Builder.t -> unit
