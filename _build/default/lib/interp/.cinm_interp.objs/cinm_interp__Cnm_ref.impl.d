lib/interp/cnm_ref.ml: Array Attr Cinm_dialects Cinm_ir Cinm_support Distrib Hashtbl Interp Ir List Printf Profile Rtval Tensor Types
