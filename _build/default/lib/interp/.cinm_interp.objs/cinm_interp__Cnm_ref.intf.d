lib/interp/cnm_ref.mli: Interp Profile
