lib/interp/distrib.ml: Array Tensor
