lib/interp/distrib.mli: Cinm_ir Tensor
