lib/interp/interp.ml: Array Attr Cinm_dialects Cinm_ir Cinm_support Func Hashtbl Ir List Printf Profile Rtval Tensor Types
