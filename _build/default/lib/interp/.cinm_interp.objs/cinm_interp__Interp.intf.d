lib/interp/interp.mli: Cinm_ir Func Hashtbl Ir Profile Rtval
