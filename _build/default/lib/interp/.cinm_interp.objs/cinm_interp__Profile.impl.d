lib/interp/profile.ml: Printf
