lib/interp/profile.mli:
