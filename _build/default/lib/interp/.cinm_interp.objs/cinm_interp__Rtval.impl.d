lib/interp/rtval.ml: Printf Tensor
