lib/interp/rtval.mli: Tensor
