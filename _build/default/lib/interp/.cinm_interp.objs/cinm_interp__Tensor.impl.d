lib/interp/tensor.ml: Array Cinm_dialects Cinm_ir Cinm_support Hashtbl List Printf String Types
