lib/interp/tensor.mli: Cinm_ir Types
