(** Reference (functional, untimed) executor for the paradigm-level cnm and
    cim dialects; the correctness oracle for the cinm-to-cnm / cinm-to-cim
    lowerings, independent of any device timing model. *)

type state

val create_state : unit -> state

(** Interpreter hook implementing cnm.* and cim.* semantics. [on_launch]
    receives the per-PU execution profiles of each launch. *)
val hook : ?on_launch:(Profile.t list -> unit) -> state -> Interp.hook
