(* Data distribution between a host tensor and per-PU buffers, shared by
   the reference CNM executor and the UPMEM simulator. The "map" names
   match the cnm.scatter attribute. *)

let scatter ?(halo = 0) ~map (t : Tensor.t) (per_pu : Tensor.t array) =
  let pus = Array.length per_pu in
  if pus = 0 then invalid_arg "Distrib.scatter: no PUs";
  let per_pu_elems = Tensor.num_elements per_pu.(0) in
  match map with
  | "overlap" ->
    (* block distribution with [halo] elements of overlap between
       neighbouring buffers (sliding-window kernels) *)
    let chunk = per_pu_elems - halo in
    for p = 0 to pus - 1 do
      for i = 0 to per_pu_elems - 1 do
        Tensor.set_int per_pu.(p) i (Tensor.get_int t ((p * chunk) + i))
      done
    done
  | "broadcast" ->
    for p = 0 to pus - 1 do
      for i = 0 to per_pu_elems - 1 do
        Tensor.set_int per_pu.(p) i (Tensor.get_int t i)
      done
    done
  | "block" ->
    for p = 0 to pus - 1 do
      for i = 0 to per_pu_elems - 1 do
        Tensor.set_int per_pu.(p) i (Tensor.get_int t ((p * per_pu_elems) + i))
      done
    done
  | "cyclic" ->
    for p = 0 to pus - 1 do
      for i = 0 to per_pu_elems - 1 do
        Tensor.set_int per_pu.(p) i (Tensor.get_int t ((i * pus) + p))
      done
    done
  | m -> invalid_arg ("Distrib.scatter: unknown map " ^ m)

let gather (per_pu : Tensor.t array) ~result_shape ~dtype =
  let pus = Array.length per_pu in
  if pus = 0 then invalid_arg "Distrib.gather: no PUs";
  let per_pu_elems = Tensor.num_elements per_pu.(0) in
  let out = Tensor.zeros result_shape dtype in
  for p = 0 to pus - 1 do
    for i = 0 to per_pu_elems - 1 do
      Tensor.set_int out ((p * per_pu_elems) + i) (Tensor.get_int per_pu.(p) i)
    done
  done;
  out
