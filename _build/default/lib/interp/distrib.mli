(** Data distribution between a host tensor and per-PU buffers; the map
    names match the cnm.scatter attribute. *)

(** [scatter ~map t per_pu] fills each buffer from [t]:
    - ["block"]: contiguous chunks in PU order;
    - ["cyclic"]: element [i] goes to PU [i mod pus];
    - ["broadcast"]: every buffer gets a copy of [t];
    - ["overlap"]: block distribution with [halo] elements shared between
      neighbouring buffers (sliding-window kernels).
    @raise Invalid_argument on an unknown map or empty buffer array. *)
val scatter : ?halo:int -> map:string -> Tensor.t -> Tensor.t array -> unit

(** Concatenate per-PU buffers back into a tensor (inverse of ["block"]). *)
val gather : Tensor.t array -> result_shape:int array -> dtype:Cinm_ir.Types.dtype -> Tensor.t
