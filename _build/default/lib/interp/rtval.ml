(* Runtime values flowing through the interpreter. *)

type t =
  | Int of int  (** scalars of any integer type and index *)
  | Float of float
  | Bool of bool
  | Tensor of Tensor.t  (** immutable (value semantics) *)
  | Memref of Tensor.t  (** shared, mutable *)
  | Token
  | Handle of int  (** workgroup / CIM device handles, simulator-owned *)

let to_string = function
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%g" f
  | Bool b -> string_of_bool b
  | Tensor t -> Tensor.to_string t
  | Memref t -> "memref " ^ Tensor.to_string t
  | Token -> "token"
  | Handle h -> Printf.sprintf "handle#%d" h

let as_int = function
  | Int i -> i
  | Bool b -> if b then 1 else 0
  | v -> invalid_arg ("Rtval.as_int: " ^ to_string v)

let as_float = function
  | Float f -> f
  | Int i -> float_of_int i
  | v -> invalid_arg ("Rtval.as_float: " ^ to_string v)

let as_bool = function
  | Bool b -> b
  | Int i -> i <> 0
  | v -> invalid_arg ("Rtval.as_bool: " ^ to_string v)

let as_tensor = function
  | Tensor t | Memref t -> t
  | v -> invalid_arg ("Rtval.as_tensor: " ^ to_string v)

let as_handle = function
  | Handle h -> h
  | v -> invalid_arg ("Rtval.as_handle: " ^ to_string v)
