(** Runtime values flowing through the interpreter. *)

type t =
  | Int of int  (** scalars of any integer type and index *)
  | Float of float
  | Bool of bool
  | Tensor of Tensor.t  (** immutable (value semantics) *)
  | Memref of Tensor.t  (** shared, mutable *)
  | Token
  | Handle of int  (** workgroup / CIM device handles, simulator-owned *)

val to_string : t -> string

(** Coercing accessors.
    @raise Invalid_argument on a kind mismatch. *)

val as_int : t -> int
val as_float : t -> float
val as_bool : t -> bool
val as_tensor : t -> Tensor.t
val as_handle : t -> int
