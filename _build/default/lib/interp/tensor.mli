(** Runtime tensors: the data compiled programs compute on. Integer tensors
    use wrap-around semantics at their declared bit width (the paper's
    workloads are INT32). This module doubles as the reference host
    implementation of every compute op in the cinm/linalg dialects. *)

open Cinm_ir

type payload = I of int array | F of float array

type t = { shape : int array; dtype : Types.dtype; data : payload }

val num_elements : t -> int
val is_int : t -> bool

(** Wrap an integer to the dtype's width, signed. *)
val wrap : Types.dtype -> int -> int

val zeros : int array -> Types.dtype -> t
val of_int_array : ?dtype:Types.dtype -> int array -> int array -> t
val of_float_array : ?dtype:Types.dtype -> int array -> float array -> t

(** [init shape f] builds an integer tensor with element [i] = [f i]
    (flattened index), wrapped to the dtype. *)
val init : ?dtype:Types.dtype -> int array -> (int -> int) -> t

val copy : t -> t

(** Flat-index element access. *)
val get_int : t -> int -> int

val get_float : t -> int -> float
val set_int : t -> int -> int -> unit
val set_float : t -> int -> float -> unit

(** Multi-dimensional element access. *)
val get : t -> int array -> int

val set : t -> int array -> int -> unit
val to_int_array : t -> int array
val equal : t -> t -> bool
val to_string : ?max_elems:int -> t -> string

(** {1 Element-wise} *)

(** Scalar integer semantics of a named binop ("add", "min", "xor", ...).
    @raise Invalid_argument on unknown names. *)
val int_binop : string -> int -> int -> int

val float_binop : string -> float -> float -> float
val map2 : string -> t -> t -> t
val map_not : t -> t
val fill_scalar : int array -> Types.dtype -> int -> t

(** {1 Linear algebra} *)

val matmul : t -> t -> t
val matvec : t -> t -> t
val dot : t -> t -> int
val conv_2d : t -> t -> t
val transpose : t -> int array -> t

(** {1 Reductions and analytics (cinm Table 1)} *)

val reduce : string -> t -> int
val scan : string -> t -> t
val histogram : bins:int -> t -> t
val pop_count : t -> int

(** Bit-wise majority across all elements (the RTM majority op). *)
val majority : t -> t

(** Top-[k] values and their indices, ties broken towards lower indices. *)
val topk : k:int -> t -> t * t

(** Score every length-|query| window of [db] with the metric ("dot", "l2"
    or "hamming"; larger is more similar) and return the [k] best. *)
val sim_search : metric:string -> k:int -> t -> t -> t * t

(** {1 Shape manipulation} *)

val reshape : t -> int array -> t
val pad : t -> low:int array -> high:int array -> t
val extract_slice : t -> offsets:int array -> sizes:int array -> t

(** Value semantics: a fresh tensor with [src] written at [offsets]. *)
val insert_slice : t -> t -> offsets:int array -> t

val im2col : t -> kh:int -> kw:int -> t

(** Two-operand einsum, e.g. [einsum ~spec:"aebf,dfce->abcd" a b]. *)
val einsum : spec:string -> t -> t -> t
