lib/ir/attr.ml: Array List Printf String Types
