lib/ir/attr.mli: Types
