lib/ir/builder.ml: Func Ir Printf
