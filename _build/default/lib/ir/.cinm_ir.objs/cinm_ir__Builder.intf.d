lib/ir/builder.mli: Attr Func Ir Types
