lib/ir/dialect.ml: Array Hashtbl Ir List Printf String Types
