lib/ir/dialect.mli: Ir Types
