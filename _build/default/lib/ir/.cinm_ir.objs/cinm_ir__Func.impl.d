lib/ir/func.ml: Array Attr Ir List Printf Types
