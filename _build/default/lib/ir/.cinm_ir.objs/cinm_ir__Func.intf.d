lib/ir/func.mli: Attr Ir Types
