lib/ir/ir.ml: Array Attr Int List Map Printf String Types
