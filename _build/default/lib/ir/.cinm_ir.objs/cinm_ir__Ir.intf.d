lib/ir/ir.mli: Attr Map Types
