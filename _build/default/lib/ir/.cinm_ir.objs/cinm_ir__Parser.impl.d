lib/ir/parser.ml: Array Attr Buffer Func Hashtbl Ir List Printf String Types
