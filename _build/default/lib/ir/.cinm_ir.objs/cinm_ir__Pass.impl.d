lib/ir/pass.ml: Func List Printf Rewrite String Verifier
