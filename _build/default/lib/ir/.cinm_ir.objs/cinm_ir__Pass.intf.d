lib/ir/pass.mli: Func Rewrite
