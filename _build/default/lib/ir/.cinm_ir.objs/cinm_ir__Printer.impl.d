lib/ir/printer.ml: Array Attr Func Hashtbl Ir List Printf String Types
