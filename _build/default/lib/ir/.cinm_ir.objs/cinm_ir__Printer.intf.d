lib/ir/printer.mli: Attr Func Ir
