lib/ir/rewrite.ml: Array Builder Func Hashtbl Ir List Printf
