lib/ir/rewrite.mli: Builder Func Hashtbl Ir
