lib/ir/types.ml: Array Cinm_support List Option Printf String
