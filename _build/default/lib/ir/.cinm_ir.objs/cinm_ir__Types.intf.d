lib/ir/types.mli:
