lib/ir/verifier.ml: Array Dialect Func Int Ir List Printf Set String Types
