(* Compile-time attributes attached to operations (MLIR-style). *)

type t =
  | Unit
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Ints of int array
  | Floats of float array
  | Strs of string list
  | Ty of Types.t
  | List of t list

let rec to_string = function
  | Unit -> "unit"
  | Bool b -> string_of_bool b
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%g" f
  | Str s -> Printf.sprintf "%S" s
  | Ints a ->
    Printf.sprintf "[%s]" (String.concat ", " (Array.to_list (Array.map string_of_int a)))
  | Floats a ->
    Printf.sprintf "[%s]"
      (String.concat ", " (Array.to_list (Array.map (Printf.sprintf "%g") a)))
  | Strs l -> Printf.sprintf "[%s]" (String.concat ", " (List.map (Printf.sprintf "%S") l))
  | Ty ty -> Types.to_string ty
  | List l -> Printf.sprintf "<%s>" (String.concat ", " (List.map to_string l))

let equal (a : t) (b : t) = a = b

(* Typed accessors: raise with a useful message on schema violations, which
   surface as verifier/lowering bugs during development. *)

let get_int name = function
  | Int i -> i
  | a -> invalid_arg (Printf.sprintf "attribute %s: expected int, got %s" name (to_string a))

let get_str name = function
  | Str s -> s
  | a -> invalid_arg (Printf.sprintf "attribute %s: expected str, got %s" name (to_string a))

let get_ints name = function
  | Ints a -> a
  | a -> invalid_arg (Printf.sprintf "attribute %s: expected ints, got %s" name (to_string a))

let get_bool name = function
  | Bool b -> b
  | a -> invalid_arg (Printf.sprintf "attribute %s: expected bool, got %s" name (to_string a))

let get_float name = function
  | Float f -> f
  | Int i -> float_of_int i
  | a -> invalid_arg (Printf.sprintf "attribute %s: expected float, got %s" name (to_string a))

let get_ty name = function
  | Ty ty -> ty
  | a -> invalid_arg (Printf.sprintf "attribute %s: expected type, got %s" name (to_string a))
