(** Compile-time attributes attached to operations (MLIR-style). *)

type t =
  | Unit
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Ints of int array
  | Floats of float array
  | Strs of string list
  | Ty of Types.t
  | List of t list

val to_string : t -> string
val equal : t -> t -> bool

(** Typed accessors; the [string] argument is the attribute name, used in
    the error message.
    @raise Invalid_argument on a schema mismatch. *)

val get_int : string -> t -> int
val get_str : string -> t -> string
val get_ints : string -> t -> int array
val get_bool : string -> t -> bool
val get_float : string -> t -> float
val get_ty : string -> t -> Types.t
