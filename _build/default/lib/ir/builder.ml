(* Insertion-point based IR construction, the workhorse of front-ends and
   lowering passes. *)

type t = { mutable block : Ir.block }

let at_end_of block = { block }

let for_func (f : Func.t) = at_end_of (Func.entry_block f)

let set_insertion_point b block = b.block <- block

let insert b op = Ir.append_op b.block op

let build ?operands ?result_tys ?attrs ?regions b name =
  let op = Ir.create_op ?operands ?result_tys ?attrs ?regions name in
  insert b op;
  op

(* Build an op expected to produce exactly one result and return it. *)
let build1 ?operands ?result_tys ?attrs ?regions b name =
  let op = build ?operands ?result_tys ?attrs ?regions b name in
  if Ir.num_results op <> 1 then
    invalid_arg (Printf.sprintf "Builder.build1: %s has %d results" name (Ir.num_results op));
  Ir.result op 0

(* Build an op with no results. *)
let build0 ?operands ?attrs ?regions b name =
  ignore (build ?operands ~result_tys:[] ?attrs ?regions b name)

(* Create a single-block region, populate it via [f] (which receives a
   builder positioned in the new block and the block arguments), and
   return the region. Used for scf.for bodies, cnm.launch bodies, etc. *)
let build_region ?(arg_tys = []) (f : t -> Ir.value array -> unit) =
  let region = Ir.create_region () in
  let block = Ir.create_block ~arg_tys () in
  Ir.add_block region block;
  let b = at_end_of block in
  f b block.Ir.args;
  region
