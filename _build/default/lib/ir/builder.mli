(** Insertion-point based IR construction, the workhorse of front-ends and
    lowering passes. *)

type t = { mutable block : Ir.block }

val at_end_of : Ir.block -> t
val for_func : Func.t -> t
val set_insertion_point : t -> Ir.block -> unit
val insert : t -> Ir.op -> unit

(** Create an op and insert it at the insertion point. *)
val build :
  ?operands:Ir.value list ->
  ?result_tys:Types.t list ->
  ?attrs:(string * Attr.t) list ->
  ?regions:Ir.region list ->
  t ->
  string ->
  Ir.op

(** Like {!build} for ops with exactly one result; returns that result.
    @raise Invalid_argument on a different result arity. *)
val build1 :
  ?operands:Ir.value list ->
  ?result_tys:Types.t list ->
  ?attrs:(string * Attr.t) list ->
  ?regions:Ir.region list ->
  t ->
  string ->
  Ir.value

(** Like {!build} for ops without results. *)
val build0 :
  ?operands:Ir.value list ->
  ?attrs:(string * Attr.t) list ->
  ?regions:Ir.region list ->
  t ->
  string ->
  unit

(** Create a single-block region and populate it via the callback, which
    receives a builder positioned in the new block and the block args. *)
val build_region : ?arg_tys:Types.t list -> (t -> Ir.value array -> unit) -> Ir.region
