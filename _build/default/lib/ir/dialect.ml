(* Dialect registry: dialects are logical groups of operations with
   per-op structural verifiers (cf. paper Section 2.1). The registry backs
   the IR verifier and the documentation/LoC tooling. *)

type op_def = {
  op_name : string;  (** fully qualified, e.g. ["cnm.scatter"] *)
  summary : string;
  verify : Ir.op -> (unit, string) result;
}

type t = { dname : string; description : string; mutable ops : op_def list }

let registry : (string, t) Hashtbl.t = Hashtbl.create 16
let op_index : (string, op_def) Hashtbl.t = Hashtbl.create 64

let register ~name ~description =
  match Hashtbl.find_opt registry name with
  | Some d -> d
  | None ->
    let d = { dname = name; description; ops = [] } in
    Hashtbl.replace registry name d;
    d

let ok = Ok ()

let no_verify (_ : Ir.op) = ok

let add_op ?(verify = no_verify) ~summary dialect op_name =
  let qualified =
    if String.contains op_name '.' then op_name else dialect.dname ^ "." ^ op_name
  in
  let def = { op_name = qualified; summary; verify } in
  dialect.ops <- dialect.ops @ [ def ];
  Hashtbl.replace op_index qualified def;
  def

let find_op name = Hashtbl.find_opt op_index name

let find_dialect name = Hashtbl.find_opt registry name

let all_dialects () =
  Hashtbl.fold (fun _ d acc -> d :: acc) registry []
  |> List.sort (fun a b -> compare a.dname b.dname)

let ops_of d = d.ops

(* ----- verifier helper combinators ----- *)

let expect cond msg = if cond then ok else Error msg

let expect_operands op n =
  expect
    (Ir.num_operands op = n)
    (Printf.sprintf "%s: expected %d operands, got %d" op.Ir.name n (Ir.num_operands op))

let expect_results op n =
  expect
    (Ir.num_results op = n)
    (Printf.sprintf "%s: expected %d results, got %d" op.Ir.name n (Ir.num_results op))

let expect_regions op n =
  expect
    (Array.length op.Ir.regions = n)
    (Printf.sprintf "%s: expected %d regions, got %d" op.Ir.name n
       (Array.length op.Ir.regions))

let ( >>= ) r f = match r with Ok () -> f () | Error _ as e -> e

let expect_attr op name =
  expect (Ir.attr op name <> None) (Printf.sprintf "%s: missing attribute %s" op.Ir.name name)

let expect_operand_type op i ty =
  expect
    (Types.equal (Ir.operand op i).Ir.ty ty)
    (Printf.sprintf "%s: operand %d has type %s, expected %s" op.Ir.name i
       (Types.to_string (Ir.operand op i).Ir.ty)
       (Types.to_string ty))

let expect_shaped_operand op i =
  expect
    (Types.is_shaped (Ir.operand op i).Ir.ty)
    (Printf.sprintf "%s: operand %d must be a shaped type" op.Ir.name i)

let expect_same_type op i j =
  expect
    (Types.equal (Ir.operand op i).Ir.ty (Ir.operand op j).Ir.ty)
    (Printf.sprintf "%s: operands %d and %d must have the same type" op.Ir.name i j)
