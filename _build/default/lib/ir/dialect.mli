(** Dialect registry: dialects are logical groups of operations with per-op
    structural verifiers (paper §2.1). Backs the verifier, the parser's
    sanity checks, and the documentation tooling. *)

type op_def = {
  op_name : string;  (** fully qualified, e.g. ["cnm.scatter"] *)
  summary : string;
  verify : Ir.op -> (unit, string) result;
}

type t = { dname : string; description : string; mutable ops : op_def list }

(** Idempotent: returns the existing dialect when re-registered. *)
val register : name:string -> description:string -> t

val no_verify : Ir.op -> (unit, string) result

(** Register an op in a dialect; [op_name] is qualified with the dialect
    name unless it already contains a ['.']. *)
val add_op :
  ?verify:(Ir.op -> (unit, string) result) -> summary:string -> t -> string -> op_def

val find_op : string -> op_def option
val find_dialect : string -> t option
val all_dialects : unit -> t list
val ops_of : t -> op_def list

(** {1 Verifier combinators} *)

val ok : (unit, string) result
val expect : bool -> string -> (unit, string) result
val expect_operands : Ir.op -> int -> (unit, string) result
val expect_results : Ir.op -> int -> (unit, string) result
val expect_regions : Ir.op -> int -> (unit, string) result
val ( >>= ) : (unit, string) result -> (unit -> (unit, string) result) -> (unit, string) result
val expect_attr : Ir.op -> string -> (unit, string) result
val expect_operand_type : Ir.op -> int -> Types.t -> (unit, string) result
val expect_shaped_operand : Ir.op -> int -> (unit, string) result
val expect_same_type : Ir.op -> int -> int -> (unit, string) result
