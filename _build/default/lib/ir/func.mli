(** Functions and modules: the top-level containers of the IR. A function
    owns a single region whose entry block arguments are its parameters;
    the body ends with [func.return]. *)

type t = {
  fname : string;
  arg_tys : Types.t list;
  result_tys : Types.t list;
  body : Ir.region;
  mutable fattrs : (string * Attr.t) list;
}

type modul = { mutable funcs : t list; mutable mattrs : (string * Attr.t) list }

val create : name:string -> arg_tys:Types.t list -> result_tys:Types.t list -> t
val entry_block : t -> Ir.block
val params : t -> Ir.value list
val param : t -> int -> Ir.value
val fn_type : t -> Types.t
val create_module : unit -> modul
val add_func : modul -> t -> unit
val find_func : modul -> string -> t option

(** @raise Invalid_argument when no function has that name. *)
val find_func_exn : modul -> string -> t

(** Pre-order walk over every op in the function body. *)
val walk : (Ir.op -> unit) -> t -> unit

(** Replace the function's body in place (used by conversions that rebuild
    whole functions). *)
val replace_body : t -> Ir.region -> unit

(** Deep copy; mutating the clone leaves the original untouched. *)
val clone : t -> t
