(* Core IR data structures: SSA values, operations with nested regions,
   blocks. Deliberately mirrors MLIR's structure (cf. paper Section 2.1)
   while staying idiomatic OCaml: ops are generic records identified by a
   dialect-qualified name; dialect modules provide typed constructors and
   accessors on top. *)

type value = { vid : int; ty : Types.t; mutable def : def }

and def =
  | Op_result of op * int
  | Block_arg of block * int

and op = {
  oid : int;
  name : string;  (** dialect-qualified, e.g. ["cinm.gemm"] *)
  mutable operands : value array;
  mutable results : value array;  (** set once at creation *)
  mutable attrs : (string * Attr.t) list;
  regions : region array;
  mutable parent : block option;
}

and block = {
  bid : int;
  mutable args : value array;  (** set once at creation *)
  mutable ops : op list;  (** in execution order *)
  mutable parent_region : region option;
}

and region = { mutable blocks : block list; mutable parent_op : op option }

let value_counter = ref 0
let op_counter = ref 0
let block_counter = ref 0

let fresh_value ty def =
  incr value_counter;
  { vid = !value_counter; ty; def }

(* ----- construction ----- *)

let create_region () = { blocks = []; parent_op = None }

let create_block ?(arg_tys = []) () =
  incr block_counter;
  let block = { bid = !block_counter; args = [||]; ops = []; parent_region = None } in
  block.args <-
    Array.of_list (List.mapi (fun i ty -> fresh_value ty (Block_arg (block, i))) arg_tys);
  block

let add_block region block =
  block.parent_region <- Some region;
  region.blocks <- region.blocks @ [ block ]

let entry_block region =
  match region.blocks with
  | b :: _ -> b
  | [] -> invalid_arg "Ir.entry_block: empty region"

let create_op ?(operands = []) ?(result_tys = []) ?(attrs = []) ?(regions = []) name =
  incr op_counter;
  let op =
    {
      oid = !op_counter;
      name;
      operands = Array.of_list operands;
      results = [||];
      attrs;
      regions = Array.of_list regions;
      parent = None;
    }
  in
  op.results <-
    Array.of_list (List.mapi (fun i ty -> fresh_value ty (Op_result (op, i))) result_tys);
  List.iter (fun r -> r.parent_op <- Some op) regions;
  op

let append_op block op =
  op.parent <- Some block;
  block.ops <- block.ops @ [ op ]

(* ----- accessors ----- *)

let operand op i =
  if i < 0 || i >= Array.length op.operands then
    invalid_arg (Printf.sprintf "Ir.operand %d of %s" i op.name);
  op.operands.(i)

let result op i =
  if i < 0 || i >= Array.length op.results then
    invalid_arg (Printf.sprintf "Ir.result %d of %s" i op.name);
  op.results.(i)

let num_operands op = Array.length op.operands
let num_results op = Array.length op.results

let attr op name = List.assoc_opt name op.attrs

let attr_exn op name =
  match attr op name with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "op %s: missing attribute %s" op.name name)

let int_attr op name = Attr.get_int name (attr_exn op name)
let str_attr op name = Attr.get_str name (attr_exn op name)
let ints_attr op name = Attr.get_ints name (attr_exn op name)
let bool_attr op name = Attr.get_bool name (attr_exn op name)
let float_attr op name = Attr.get_float name (attr_exn op name)

let set_attr op name a = op.attrs <- (name, a) :: List.remove_assoc name op.attrs

let region op i =
  if i < 0 || i >= Array.length op.regions then
    invalid_arg (Printf.sprintf "Ir.region %d of %s" i op.name);
  op.regions.(i)

let dialect_of op =
  match String.index_opt op.name '.' with
  | Some i -> String.sub op.name 0 i
  | None -> op.name

(* ----- traversal ----- *)

let rec walk_op f op =
  f op;
  Array.iter (walk_region f) op.regions

and walk_region f region = List.iter (walk_block f) region.blocks
and walk_block f block = List.iter (walk_op f) block.ops

(* Replace every use of [old_v] by [new_v] in all ops reachable from
   [region] (including nested regions). *)
let replace_uses_in_region region ~old_v ~new_v =
  walk_region
    (fun op ->
      Array.iteri (fun i v -> if v == old_v then op.operands.(i) <- new_v) op.operands)
    region

(* ----- cloning ----- *)

module Vmap = Map.Make (Int)

let map_value vmap v = match Vmap.find_opt v.vid vmap with Some w -> w | None -> v

let rec clone_op ?(vmap = Vmap.empty) op =
  let operands = Array.to_list (Array.map (map_value vmap) op.operands) in
  let result_tys = Array.to_list (Array.map (fun v -> v.ty) op.results) in
  let regions, vmap =
    Array.fold_left
      (fun (acc, vmap) r ->
        let r', vmap = clone_region ~vmap r in
        (acc @ [ r' ], vmap))
      ([], vmap) op.regions
  in
  let cloned = create_op ~operands ~result_tys ~attrs:op.attrs ~regions op.name in
  let vmap =
    Array.to_list op.results
    |> List.mapi (fun i v -> (v, cloned.results.(i)))
    |> List.fold_left (fun m (v, w) -> Vmap.add v.vid w m) vmap
  in
  (cloned, vmap)

and clone_region ?(vmap = Vmap.empty) region =
  let r = create_region () in
  let vmap =
    List.fold_left
      (fun vmap block ->
        let arg_tys = Array.to_list (Array.map (fun v -> v.ty) block.args) in
        let b = create_block ~arg_tys () in
        add_block r b;
        Array.to_list block.args
        |> List.mapi (fun i v -> (v, b.args.(i)))
        |> List.fold_left (fun m (v, w) -> Vmap.add v.vid w m) vmap)
      vmap region.blocks
  in
  (* Second pass: clone ops now that all block args are mapped. *)
  let vmap =
    List.fold_left2
      (fun vmap src dst ->
        List.fold_left
          (fun vmap op ->
            let op', vmap = clone_op ~vmap op in
            append_op dst op';
            vmap)
          vmap src.ops)
      vmap region.blocks r.blocks
  in
  (r, vmap)
