(** Parser for the textual IR emitted by {!Printer}. *)

exception Parse_error of string

(** Parse a module (with or without the surrounding [module { }]).
    @raise Parse_error with position context on malformed input. *)
val parse_module_text : string -> Func.modul

(** Parse a single [func.func]. *)
val parse_func_text : string -> Func.t
