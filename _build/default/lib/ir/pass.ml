(* Pass manager: named module-level transformations with optional
   verification after each pass, mirroring MLIR's pass infrastructure. *)

type t = { pass_name : string; run : Func.modul -> unit }

let create ~name run = { pass_name = name; run }

(* Build a pass from a set of rewrite patterns applied to every function. *)
let of_patterns ~name patterns =
  create ~name (fun m -> Rewrite.apply_to_module ~patterns m)

exception Pass_failed of { pass : string; message : string }

let run_one ?(verify = true) pass m =
  (try pass.run m
   with
   | Verifier.Verification_failed msg ->
     raise (Pass_failed { pass = pass.pass_name; message = msg })
   | Invalid_argument msg ->
     raise (Pass_failed { pass = pass.pass_name; message = msg }));
  if verify then
    match Verifier.verify_module m with
    | [] -> ()
    | errs ->
      raise
        (Pass_failed
           {
             pass = pass.pass_name;
             message =
               "post-pass verification failed:\n"
               ^ String.concat "\n" (List.map Verifier.error_to_string errs);
           })

let run_pipeline ?(verify = true) ?(trace = false) passes m =
  List.iter
    (fun pass ->
      if trace then Printf.eprintf "[cinm] running pass %s\n%!" pass.pass_name;
      run_one ~verify pass m)
    passes
