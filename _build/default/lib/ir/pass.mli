(** Pass manager: named module-level transformations with optional
    verification after each pass. *)

type t = { pass_name : string; run : Func.modul -> unit }

val create : name:string -> (Func.modul -> unit) -> t

(** Build a pass from rewrite patterns applied to every function. *)
val of_patterns : name:string -> Rewrite.pattern list -> t

exception Pass_failed of { pass : string; message : string }

(** Run one pass; with [verify] (default), the module is verified
    afterwards and failures raise {!Pass_failed}. *)
val run_one : ?verify:bool -> t -> Func.modul -> unit

val run_pipeline : ?verify:bool -> ?trace:bool -> t list -> Func.modul -> unit
