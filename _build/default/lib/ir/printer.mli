(** Textual IR printer (MLIR generic operation syntax); round-trips through
    {!Parser}. *)

type namer

val create_namer : unit -> namer
val attr_to_string : Attr.t -> string

(** Print one op (with nested regions); a fresh namer is used unless one is
    supplied. *)
val op_to_string : ?namer:namer -> Ir.op -> string

val func_to_string : Func.t -> string
val module_to_string : Func.modul -> string
