(* The type system of the CINM IR.

   MLIR types are extensible; here we enumerate the closed set of types the
   CINM dialect tower actually uses (builtin shaped types plus the custom
   types of the cnm/cim dialects, cf. paper Tables 2 and 3). *)

type dtype = I1 | I8 | I16 | I32 | I64 | F32 | F64

type t =
  | Index  (** loop induction variables, sizes *)
  | Scalar of dtype
  | Tensor of int array * dtype  (** immutable value-semantics tensor *)
  | MemRef of int array * dtype  (** mutable buffer reference *)
  | Workgroup of int array
      (** [!cnm.workgroup<AxB...>]: logical grid of processing units *)
  | Buffer of { shape : int array; dtype : dtype; level : int }
      (** [!cnm.buffer<shape x dtype, level L>]: opaque per-PU buffer *)
  | Token  (** [!cnm.token] / [!cim.future]: async handle for wait/barrier *)
  | Cim_id  (** [!cim.id]: handle of an acquired CIM accelerator *)
  | Func of t list * t list

let dtype_bits = function
  | I1 -> 1
  | I8 -> 8
  | I16 -> 16
  | I32 -> 32
  | I64 -> 64
  | F32 -> 32
  | F64 -> 64

let dtype_bytes dt = max 1 (dtype_bits dt / 8)

let is_float_dtype = function F32 | F64 -> true | I1 | I8 | I16 | I32 | I64 -> false

let dtype_to_string = function
  | I1 -> "i1"
  | I8 -> "i8"
  | I16 -> "i16"
  | I32 -> "i32"
  | I64 -> "i64"
  | F32 -> "f32"
  | F64 -> "f64"

let dtype_of_string = function
  | "i1" -> Some I1
  | "i8" -> Some I8
  | "i16" -> Some I16
  | "i32" -> Some I32
  | "i64" -> Some I64
  | "f32" -> Some F32
  | "f64" -> Some F64
  | _ -> None

let shaped_to_string prefix shape dt =
  let dims = Array.to_list (Array.map string_of_int shape) in
  Printf.sprintf "%s<%s>" prefix (String.concat "x" (dims @ [ dtype_to_string dt ]))

let rec to_string = function
  | Index -> "index"
  | Scalar dt -> dtype_to_string dt
  | Tensor (shape, dt) -> shaped_to_string "tensor" shape dt
  | MemRef (shape, dt) -> shaped_to_string "memref" shape dt
  | Workgroup shape ->
    Printf.sprintf "!cnm.workgroup<%s>" (Cinm_support.Util.shape_to_string shape)
  | Buffer { shape; dtype; level } ->
    Printf.sprintf "!cnm.buffer<%sx%s, level %d>"
      (Cinm_support.Util.shape_to_string shape)
      (dtype_to_string dtype) level
  | Token -> "!cnm.token"
  | Cim_id -> "!cim.id"
  | Func (args, results) ->
    let list tys = String.concat ", " (List.map to_string tys) in
    Printf.sprintf "(%s) -> (%s)" (list args) (list results)

let equal (a : t) (b : t) = a = b

let num_elements = function
  | Tensor (shape, _) | MemRef (shape, _) -> Cinm_support.Util.product_of_shape shape
  | Buffer { shape; _ } -> Cinm_support.Util.product_of_shape shape
  | Scalar _ | Index -> 1
  | Workgroup shape -> Cinm_support.Util.product_of_shape shape
  | Token | Cim_id | Func _ -> invalid_arg "Types.num_elements"

let size_in_bytes = function
  | Tensor (shape, dt) | MemRef (shape, dt) ->
    Cinm_support.Util.product_of_shape shape * dtype_bytes dt
  | Buffer { shape; dtype; _ } ->
    Cinm_support.Util.product_of_shape shape * dtype_bytes dtype
  | Scalar dt -> dtype_bytes dt
  | Index -> 8
  | Workgroup _ | Token | Cim_id | Func _ -> invalid_arg "Types.size_in_bytes"

let element_dtype = function
  | Tensor (_, dt) | MemRef (_, dt) -> Some dt
  | Buffer { dtype; _ } -> Some dtype
  | Scalar dt -> Some dt
  | Index | Workgroup _ | Token | Cim_id | Func _ -> None

let shape_of = function
  | Tensor (shape, _) | MemRef (shape, _) -> Some shape
  | Buffer { shape; _ } -> Some shape
  | _ -> None

let rank ty = match shape_of ty with Some s -> Array.length s | None -> 0

let is_shaped ty = match shape_of ty with Some _ -> true | None -> false

(* ----- parsing of the printed type syntax ----- *)

let parse_dims_and_dtype body =
  (* "15888x16xi16" -> ([|15888; 16|], I16); "i32" -> ([||], I32) *)
  let parts = String.split_on_char 'x' (String.trim body) in
  match List.rev parts with
  | [] -> None
  | dt_str :: rev_dims -> (
    match dtype_of_string dt_str with
    | None -> None
    | Some dt -> (
      let dims = List.rev rev_dims in
      try Some (Array.of_list (List.map int_of_string dims), dt)
      with Failure _ -> None))

let parse_shape body =
  let parts = String.split_on_char 'x' (String.trim body) in
  try Some (Array.of_list (List.map (fun s -> int_of_string (String.trim s)) parts))
  with Failure _ -> None

let of_string s : t option =
  let s = String.trim s in
  let inner prefix =
    (* extract X from "prefix<X>" *)
    let plen = String.length prefix in
    if
      String.length s > plen + 1
      && String.sub s 0 (plen + 1) = prefix ^ "<"
      && s.[String.length s - 1] = '>'
    then Some (String.sub s (plen + 1) (String.length s - plen - 2))
    else None
  in
  match s with
  | "index" -> Some Index
  | "!cnm.token" -> Some Token
  | "!cim.id" -> Some Cim_id
  | _ -> (
    match dtype_of_string s with
    | Some dt -> Some (Scalar dt)
    | None -> (
      match inner "tensor" with
      | Some body ->
        Option.map (fun (shape, dt) -> Tensor (shape, dt)) (parse_dims_and_dtype body)
      | None -> (
        match inner "memref" with
        | Some body ->
          Option.map (fun (shape, dt) -> MemRef (shape, dt)) (parse_dims_and_dtype body)
        | None -> (
          match inner "!cnm.workgroup" with
          | Some body -> Option.map (fun shape -> Workgroup shape) (parse_shape body)
          | None -> (
            match inner "!cnm.buffer" with
            | Some body -> (
              (* "16x16xi16, level 0" *)
              match String.split_on_char ',' body with
              | [ shaped; level_part ] -> (
                let level_part = String.trim level_part in
                match String.split_on_char ' ' level_part with
                | [ "level"; n ] -> (
                  match (parse_dims_and_dtype shaped, int_of_string_opt n) with
                  | Some (shape, dtype), Some level ->
                    Some (Buffer { shape; dtype; level })
                  | _ -> None)
                | _ -> None)
              | _ -> None)
            | None -> None)))))

(* The tensor/memref duality: lowering from value semantics to buffers. *)
let to_memref = function
  | Tensor (shape, dt) -> MemRef (shape, dt)
  | (MemRef _ as ty) -> ty
  | ty -> invalid_arg ("Types.to_memref: " ^ to_string ty)

let to_tensor = function
  | MemRef (shape, dt) -> Tensor (shape, dt)
  | (Tensor _ as ty) -> ty
  | ty -> invalid_arg ("Types.to_tensor: " ^ to_string ty)
