(** The type system of the CINM IR: MLIR's builtin shaped types plus the
    custom types of the cnm/cim dialects (paper Tables 2 and 3). *)

(** Element types. All of the paper's workloads use [I32]. *)
type dtype = I1 | I8 | I16 | I32 | I64 | F32 | F64

type t =
  | Index  (** loop induction variables, sizes *)
  | Scalar of dtype
  | Tensor of int array * dtype  (** immutable value-semantics tensor *)
  | MemRef of int array * dtype  (** mutable buffer reference *)
  | Workgroup of int array
      (** [!cnm.workgroup<AxB...>]: logical grid of processing units *)
  | Buffer of { shape : int array; dtype : dtype; level : int }
      (** [!cnm.buffer<shape x dtype, level l>]: opaque buffer shared
          across the last [l] workgroup dimensions (paper Fig. 7) *)
  | Token  (** async handle for cnm.wait / cim.barrier *)
  | Cim_id  (** handle of an acquired CIM accelerator *)
  | Func of t list * t list

val dtype_bits : dtype -> int
val dtype_bytes : dtype -> int
val is_float_dtype : dtype -> bool
val dtype_to_string : dtype -> string
val dtype_of_string : string -> dtype option

(** Render in the textual IR syntax, e.g. ["tensor<4x8xi32>"]. *)
val to_string : t -> string

val equal : t -> t -> bool

(** Element count of a shaped (or scalar) type.
    @raise Invalid_argument on tokens/handles. *)
val num_elements : t -> int

(** Storage size of a shaped or scalar type.
    @raise Invalid_argument on workgroups/tokens/handles. *)
val size_in_bytes : t -> int

val element_dtype : t -> dtype option
val shape_of : t -> int array option
val rank : t -> int
val is_shaped : t -> bool

(** Tensor/memref duality used when lowering value semantics to buffers. *)
val to_memref : t -> t

val to_tensor : t -> t

(** Parse the syntax produced by {!to_string}; [None] on malformed input. *)
val of_string : string -> t option
