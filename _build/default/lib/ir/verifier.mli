(** IR verifier: op registration, per-op structural invariants (delegated
    to the dialect op definitions), SSA scoping, and the
    isolated-from-above rule for device kernel bodies (cnm.launch /
    upmem.launch bodies must only reference their block arguments). *)

type error = { in_func : string; message : string }

val error_to_string : error -> string

(** Op names whose regions may not capture outer values. *)
val isolated_from_above : string list

val verify_func : Func.t -> error list
val verify_module : Func.modul -> error list

exception Verification_failed of string

val verify_module_exn : Func.modul -> unit
