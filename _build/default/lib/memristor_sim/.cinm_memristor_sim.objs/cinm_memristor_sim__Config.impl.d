lib/memristor_sim/config.ml:
