lib/memristor_sim/config.mli:
