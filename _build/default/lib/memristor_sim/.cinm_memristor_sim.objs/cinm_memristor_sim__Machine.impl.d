lib/memristor_sim/machine.ml: Array Cinm_interp Cinm_ir Cinm_support Config Float Func Hashtbl Interp Ir Printf Rtval Stats Tensor Types
