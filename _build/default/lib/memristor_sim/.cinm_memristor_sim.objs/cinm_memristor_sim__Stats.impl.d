lib/memristor_sim/stats.ml: Array Printf
