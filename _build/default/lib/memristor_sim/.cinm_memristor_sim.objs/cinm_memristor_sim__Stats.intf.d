lib/memristor_sim/stats.mli:
