(* PCM crossbar accelerator configuration. Defaults model the paper's
   evaluation target (§4.1): a four-tile PCM accelerator with 64x64
   crossbars; read/write latency and energy constants follow ISAAC
   (Shafiee et al. 2016) and Le Gallo et al. 2018, the sources the paper
   extracts its device parameters from. INT32 operands are bit-sliced
   across columns and recombined with a shift-and-add block, which is
   folded into the per-MVM latency/energy. *)

type t = {
  rows : int;
  cols : int;
  tiles : int;
  t_mvm : float;  (** s per input vector through a tile (incl. DAC/ADC) *)
  t_write_row : float;  (** s to program one crossbar row (write-verify) *)
  t_input_stage_per_byte : float;  (** digital staging into DAC registers *)
  t_output_read_per_byte : float;  (** digital read-out behind the ADCs *)
  host_bw : float;  (** host <-> accelerator bytes/s *)
  e_mvm : float;  (** J per tile MVM *)
  e_write_cell : float;  (** J per programmed cell *)
  e_io_byte : float;  (** J per staged/read byte *)
}

let default ?(tiles = 4) () =
  {
    rows = 64;
    cols = 64;
    tiles;
    t_mvm = 250e-9;  (* INT32 bit-sliced through the array + shift-add *)
    t_write_row = 500e-9;
    t_input_stage_per_byte = 0.15e-9;
    t_output_read_per_byte = 0.3e-9;
    host_bw = 6.4e9;
    e_mvm = 1e-6;  (* dominated by the shared ADCs over the bit-sliced op *)
    e_write_cell = 100e-12;
    e_io_byte = 10e-12;
  }
