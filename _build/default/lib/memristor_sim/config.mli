(** PCM crossbar accelerator configuration (paper §4.1: four 64x64 tiles;
    latency/energy constants follow ISAAC and Le Gallo et al., with INT32
    operands bit-sliced across columns). *)

type t = {
  rows : int;
  cols : int;
  tiles : int;
  t_mvm : float;  (** s per input vector through a tile (incl. DAC/ADC) *)
  t_write_row : float;  (** s to program one crossbar row (write-verify) *)
  t_input_stage_per_byte : float;
  t_output_read_per_byte : float;
  host_bw : float;
  e_mvm : float;  (** J per tile MVM (ADC-dominated) *)
  e_write_cell : float;
  e_io_byte : float;
}

val default : ?tiles:int -> unit -> t
