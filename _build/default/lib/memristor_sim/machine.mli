(** Memristive crossbar accelerator simulator: interpreter hooks for the
    memristor dialect. Weights are programmed into tiles (slow,
    endurance-limited NVM writes), staged inputs stream through as analog
    MVMs, results come back through the ADCs.

    Timing is an event-clock model: the digital interface (programming,
    input staging) is serialized on an io clock; each tile has its own
    ready clock, so MVMs on distinct tiles overlap — which is where the
    cim-parallel unrolling gets its speedup. The run's makespan is the
    latest clock at release. *)

open Cinm_ir
open Cinm_interp

type tile
type device

type t = {
  config : Config.t;
  stats : Stats.t;
  devices : (int, device) Hashtbl.t;
  mutable next : int;
  mutable io_clock : float;
}

val create : Config.t -> t

(** The interpreter hook implementing memristor.*. Programs that exceed the
    configured tile count/geometry, or compute on unprogrammed tiles,
    raise [Invalid_argument]. *)
val hook : t -> Interp.hook

val run : t -> Func.t -> Rtval.t list -> Rtval.t list * Stats.t
