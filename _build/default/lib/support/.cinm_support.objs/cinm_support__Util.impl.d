lib/support/util.ml: Array List String
