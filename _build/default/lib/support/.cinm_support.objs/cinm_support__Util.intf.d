lib/support/util.mli:
