lib/support/vec.mli:
