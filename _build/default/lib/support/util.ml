(* Shared helpers for shapes, formatting and arithmetic used across the
   compiler and the simulators. *)

let product_of_shape (shape : int array) = Array.fold_left ( * ) 1 shape

let ceil_div a b =
  if b <= 0 then invalid_arg "Util.ceil_div";
  (a + b - 1) / b

let round_up_to a b = ceil_div a b * b

(* Geometric mean of strictly positive samples; the paper reports all
   aggregate results as geomeans. *)
let geomean xs =
  match xs with
  | [] -> invalid_arg "Util.geomean: empty"
  | _ ->
    let n = List.length xs in
    let log_sum =
      List.fold_left
        (fun acc x ->
          if x <= 0.0 then invalid_arg "Util.geomean: non-positive sample";
          acc +. log x)
        0.0 xs
    in
    exp (log_sum /. float_of_int n)

let shape_to_string shape =
  String.concat "x" (Array.to_list (Array.map string_of_int shape))

(* Int32 wrap-around semantics on top of OCaml's 63-bit ints: all integer
   tensors in the reproduction are INT32, matching the paper's workloads. *)
let wrap32 x =
  let m = x land 0xFFFFFFFF in
  if m >= 0x80000000 then m - 0x100000000 else m

let add32 a b = wrap32 (a + b)
let sub32 a b = wrap32 (a - b)
let mul32 a b = wrap32 (a * b)

let div32 a b = if b = 0 then 0 else wrap32 (a / b)

(* Multi-dimensional index <-> linear offset, row-major. *)
let linearize shape idx =
  let n = Array.length shape in
  if Array.length idx <> n then invalid_arg "Util.linearize";
  let off = ref 0 in
  for d = 0 to n - 1 do
    if idx.(d) < 0 || idx.(d) >= shape.(d) then invalid_arg "Util.linearize: out of bounds";
    off := (!off * shape.(d)) + idx.(d)
  done;
  !off

let delinearize shape off =
  let n = Array.length shape in
  let idx = Array.make n 0 in
  let rem = ref off in
  for d = n - 1 downto 0 do
    idx.(d) <- !rem mod shape.(d);
    rem := !rem / shape.(d)
  done;
  idx

let list_take n l =
  let rec loop n l acc =
    match (n, l) with
    | 0, _ | _, [] -> List.rev acc
    | n, x :: rest -> loop (n - 1) rest (x :: acc)
  in
  loop n l []
