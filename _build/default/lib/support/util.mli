(** Shared helpers for shapes, aggregation and int32 arithmetic. *)

val product_of_shape : int array -> int

(** @raise Invalid_argument on a non-positive divisor. *)
val ceil_div : int -> int -> int

val round_up_to : int -> int -> int

(** Geometric mean; all of the paper's aggregate results use it.
    @raise Invalid_argument on an empty list or non-positive samples. *)
val geomean : float list -> float

val shape_to_string : int array -> string

(** Signed 32-bit wrap-around on OCaml's native ints. *)
val wrap32 : int -> int

val add32 : int -> int -> int
val sub32 : int -> int -> int
val mul32 : int -> int -> int

(** Division with the device convention: x / 0 = 0. *)
val div32 : int -> int -> int

(** Row-major multi-index <-> linear offset.
    @raise Invalid_argument on out-of-bounds indices. *)
val linearize : int array -> int array -> int

val delinearize : int array -> int -> int array
val list_take : int -> 'a list -> 'a list
