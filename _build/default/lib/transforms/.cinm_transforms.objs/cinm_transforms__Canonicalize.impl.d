lib/transforms/canonicalize.ml: Array Attr Cinm_ir Dce Func Hashtbl Ir List Pass Printf String Transform_util Types
