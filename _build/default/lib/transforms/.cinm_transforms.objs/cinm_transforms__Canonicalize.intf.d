lib/transforms/canonicalize.mli: Cinm_ir
