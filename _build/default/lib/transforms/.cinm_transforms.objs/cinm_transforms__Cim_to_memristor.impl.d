lib/transforms/cim_to_memristor.ml: Array Attr Cinm_dialects Cinm_ir Func Ir List Memristor_d Pass Rewrite Transform_util
