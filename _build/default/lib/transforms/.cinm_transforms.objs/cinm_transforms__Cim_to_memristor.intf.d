lib/transforms/cim_to_memristor.mli: Cinm_ir
