lib/transforms/cinm_to_cam.ml: Arith Array Attr Builder Cam_d Cinm_d Cinm_dialects Cinm_ir Ir List Option Pass Rewrite Scf_d Tensor_d Types
