lib/transforms/cinm_to_cim.ml: Arith Array Attr Builder Cim_d Cinm_d Cinm_dialects Cinm_ir Cinm_support Ir List Option Pass Rewrite Scf_d Tensor_d Types
