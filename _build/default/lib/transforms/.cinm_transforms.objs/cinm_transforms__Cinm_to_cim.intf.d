lib/transforms/cinm_to_cim.mli: Cinm_ir Pass
