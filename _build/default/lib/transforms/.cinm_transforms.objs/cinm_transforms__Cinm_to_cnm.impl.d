lib/transforms/cinm_to_cnm.ml: Arith Array Attr Builder Cinm_d Cinm_dialects Cinm_ir Cinm_support Cnm_d Ir List Memref_d Option Pass Rewrite Scf_d String Tensor_d Types
