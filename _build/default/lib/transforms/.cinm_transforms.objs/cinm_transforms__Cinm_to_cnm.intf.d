lib/transforms/cinm_to_cnm.mli: Builder Cinm_ir Ir Pass
