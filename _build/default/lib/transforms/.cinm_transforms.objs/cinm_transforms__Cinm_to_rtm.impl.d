lib/transforms/cinm_to_rtm.ml: Arith Array Attr Cinm_d Cinm_dialects Cinm_ir Cinm_support Ir List Option Pass Rewrite Rtm_d Scf_d Tensor_d Types
