lib/transforms/cinm_to_scf.ml: Arith Array Attr Builder Cinm_d Cinm_dialects Cinm_ir Cinm_support Cinm_to_cnm Ir List Option Pass Rewrite Scf_d String Tensor_d Types
