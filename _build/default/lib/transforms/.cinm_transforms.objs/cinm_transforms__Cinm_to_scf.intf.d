lib/transforms/cinm_to_scf.mli: Cinm_ir
