lib/transforms/cnm_to_upmem.ml: Arith Array Attr Builder Cinm_d Cinm_dialects Cinm_ir Cinm_support Cinm_to_cnm Ir List Memref_d Option Pass Printf Rewrite Scf_d Types Upmem_d
