lib/transforms/cnm_to_upmem.mli: Builder Cinm_ir Ir Pass Types
