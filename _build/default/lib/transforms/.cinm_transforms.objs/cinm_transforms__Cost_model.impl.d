lib/transforms/cost_model.ml: Cinm_ir Cinm_support Hashtbl Ir List Option Types
