lib/transforms/cost_model.mli: Cinm_ir
