lib/transforms/dce.ml: Array Cinm_ir Func Hashtbl Ir List Pass
