lib/transforms/dce.mli: Cinm_ir
