lib/transforms/ew_fusion.ml: Array Attr Cinm_ir Dce Func Hashtbl Ir List Option Pass String Transform_util
