lib/transforms/ew_fusion.mli: Cinm_ir
