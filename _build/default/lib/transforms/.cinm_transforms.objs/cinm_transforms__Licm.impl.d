lib/transforms/licm.ml: Array Builder Cinm_dialects Cinm_ir Hashtbl Ir List Pass Rewrite Transform_util Types
