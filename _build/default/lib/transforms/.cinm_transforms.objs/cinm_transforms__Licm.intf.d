lib/transforms/licm.mli: Cinm_ir
