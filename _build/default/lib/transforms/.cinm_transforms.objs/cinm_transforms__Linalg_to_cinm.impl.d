lib/transforms/linalg_to_cinm.ml: Array Builder Cinm_d Cinm_dialects Cinm_ir Fun Ir Linalg_d List Option Pass Rewrite String Types
