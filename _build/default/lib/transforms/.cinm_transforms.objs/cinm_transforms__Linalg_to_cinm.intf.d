lib/transforms/linalg_to_cinm.mli: Cinm_ir
