lib/transforms/loop_unroll.ml: Arith Array Attr Cinm_dialects Cinm_ir Ir List Pass Rewrite Scf_d Transform_util
