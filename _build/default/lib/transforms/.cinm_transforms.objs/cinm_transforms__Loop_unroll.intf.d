lib/transforms/loop_unroll.mli: Cinm_ir
