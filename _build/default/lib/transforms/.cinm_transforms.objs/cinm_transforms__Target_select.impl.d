lib/transforms/target_select.ml: Array Attr Cinm_d Cinm_dialects Cinm_ir Cost_model Func Ir List Pass Types
