lib/transforms/target_select.mli: Cinm_ir
