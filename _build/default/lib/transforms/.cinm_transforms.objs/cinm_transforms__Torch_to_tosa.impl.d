lib/transforms/torch_to_tosa.ml: Cinm_dialects Cinm_ir Ir Linalg_d Pass Rewrite Tosa_d
