lib/transforms/torch_to_tosa.mli: Cinm_ir
