lib/transforms/tosa_to_linalg.ml: Array Builder Cinm_dialects Cinm_ir Ir Linalg_d List Option Pass Rewrite Types
