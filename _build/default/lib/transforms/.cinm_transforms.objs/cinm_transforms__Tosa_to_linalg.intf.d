lib/transforms/tosa_to_linalg.mli: Cinm_ir
