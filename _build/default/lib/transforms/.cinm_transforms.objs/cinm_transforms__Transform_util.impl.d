lib/transforms/transform_util.ml: Array Attr Builder Cinm_ir Hashtbl Ir List
