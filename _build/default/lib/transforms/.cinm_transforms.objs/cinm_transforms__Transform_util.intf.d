lib/transforms/transform_util.mli: Builder Cinm_ir Hashtbl Ir
