lib/transforms/workgroup_analysis.ml: List Printf String
