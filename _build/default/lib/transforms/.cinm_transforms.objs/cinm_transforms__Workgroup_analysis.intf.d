lib/transforms/workgroup_analysis.mli:
