(** Canonicalization: constant folding of scalar arith ops and per-block
    CSE of pure, region-free ops, followed by DCE. *)

val run_on_func : Cinm_ir.Func.t -> unit
val pass : Cinm_ir.Pass.t
