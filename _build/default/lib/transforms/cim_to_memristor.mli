(** cim -> memristor device lowering (paper §3.2.5): a cim.execute whose
    body is a single cinm.gemm becomes store_tile + copy_tile + gemm_tile
    on the tile chosen by round-robin assignment; other execute bodies are
    inlined as host code. *)

(** Assign round-robin tile hints to cim.execute ops (run after
    loop-unroll so the unrolled copies land on distinct tiles). *)
val assign_tile_hints : tiles:int -> Cinm_ir.Func.modul -> unit

val assign_pass : tiles:int -> Cinm_ir.Pass.t
val pass : Cinm_ir.Pass.t
