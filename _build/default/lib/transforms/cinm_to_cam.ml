(* cinm.sim_search -> cam lowering (paper §3.2.2: CAM-suited search ops are
   detected with C4CAM's algorithm; Table 5's CIM-CAM row). The database's
   windows become CAM entries (an im2col windowing), one parallel search
   returns the best-k indices, and the host recomputes the k match scores
   (the values output) from the returned windows. *)

open Cinm_ir
open Cinm_dialects

let is_cim_target op =
  match Ir.attr op "target" with Some (Attr.Str "cim") -> true | _ -> false

let shape_of (v : Ir.value) = Option.get (Types.shape_of v.Ir.ty)

(* score of one window on the host, mirroring Tensor.sim_search *)
let host_score b ~metric ~m db q w_idx =
  let c0 = Arith.const_index b 0 in
  let c1 = Arith.const_index b 1 in
  let cm = Arith.const_index b m in
  let zero = Arith.constant b 0 in
  let acc =
    Scf_d.for_ b ~lb:c0 ~ub:cm ~step:c1 ~init:[ zero ] (fun bb j iters ->
        let d = Tensor_d.extract bb db [ Arith.addi bb w_idx j ] in
        let qv = Tensor_d.extract bb q [ j ] in
        let contrib =
          match metric with
          | "dot" -> Arith.muli bb d qv
          | "l2" ->
            let diff = Arith.subi bb d qv in
            Arith.subi bb (Arith.constant bb 0) (Arith.muli bb diff diff)
          | "hamming" ->
            (* -popcount(d xor q), folded to bit ops the host executes *)
            let x = Arith.xori bb d qv in
            let count = ref (Arith.constant bb 0) in
            for bit = 0 to 31 do
              let shifted = Arith.shrsi bb x (Arith.constant bb bit) in
              let b1 = Arith.andi bb shifted (Arith.constant bb 1) in
              count := Arith.addi bb !count b1
            done;
            Arith.subi bb (Arith.constant bb 0) !count
          | mname -> invalid_arg ("cinm-to-cam: metric " ^ mname)
        in
        [ Arith.addi bb iters.(0) contrib ])
  in
  List.hd acc

let pattern : Rewrite.pattern =
 fun ctx op ->
  match op.Ir.name with
  | "cinm.sim_search" when is_cim_target op ->
    let b = ctx.Rewrite.b in
    let db = Rewrite.operand ctx op 0 and q = Rewrite.operand ctx op 1 in
    let k = Ir.int_attr op "k" and metric = Ir.str_attr op "metric" in
    let n = (shape_of db).(0) in
    let m = (shape_of q).(0) in
    let windows = n - m + 1 in
    (* database windows -> CAM entries *)
    let db_2d = Cinm_d.expand b db ~shape:[| n; 1 |] in
    let entries = Cinm_d.im2col b db_2d ~kh:m ~kw:1 in
    let id = Cam_d.alloc b ~entries:windows ~width:m in
    Cam_d.write_entries b id entries;
    let indices = Cam_d.search_best b id q ~metric ~k in
    Cam_d.release b id;
    (* host-side: recompute the k winning scores *)
    let dt = Option.get (Types.element_dtype db.Ir.ty) in
    let values0 =
      Builder.build1 b "tensor.empty" ~result_tys:[ Types.Tensor ([| k |], dt) ]
    in
    let c0 = Arith.const_index b 0 in
    let c1 = Arith.const_index b 1 in
    let ck = Arith.const_index b k in
    let values =
      Scf_d.for_ b ~lb:c0 ~ub:ck ~step:c1 ~init:[ values0 ] (fun bb j iters ->
          let w = Tensor_d.extract bb indices [ j ] in
          let w_idx = Arith.index_cast bb w ~to_ty:Types.Index in
          let s = host_score bb ~metric ~m db q w_idx in
          [ Tensor_d.insert bb s iters.(0) [ j ] ])
    in
    Some (Rewrite.Replace [ List.hd values; indices ])
  | _ -> None

let pass = Pass.of_patterns ~name:"cinm-to-cam" [ pattern ]
