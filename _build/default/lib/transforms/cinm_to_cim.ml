(* cinm -> cim lowering (paper §3.2.4, Fig. 6b): rewrite cinm matmul-like
   ops annotated with target = "cim" into device acquisition, compulsory
   tiling to the crossbar geometry, cim.execute regions containing the
   tile-level cinm.gemm, and accumulation of partials with
   cinm.merge_partial.

   Optimization knobs (the paper's cim configurations, §4.1.2):
   - [interchange] (cim-min-writes): emit the loop nest as (k-tile, n-tile,
     m-chunk) instead of (m-chunk, k-tile, n-tile), making the weight tile
     invariant in the innermost loop so LICM can hoist its programming;
   - [parallel] (cim-parallel): mark the n-tile loop with an {unroll}
     attribute; the loop-unroll pass then round-robins the unrolled
     executes across crossbar tiles. *)

open Cinm_ir
open Cinm_dialects

type options = {
  rows : int;
  cols : int;
  tiles : int;
  input_chunk : int;  (** rows of A streamed per execute *)
  interchange : bool;  (** cim-min-writes *)
  parallel : bool;  (** cim-parallel *)
}

let default_options =
  { rows = 64; cols = 64; tiles = 4; input_chunk = 128; interchange = false; parallel = false }

let is_cim_target op =
  match Ir.attr op "target" with Some (Attr.Str "cim") -> true | _ -> false

let shape_of (v : Ir.value) = Option.get (Types.shape_of v.Ir.ty)
let dtype_of (v : Ir.value) = Option.get (Types.element_dtype v.Ir.ty)

let pad2 b v ~target_rows ~target_cols =
  let shape = shape_of v in
  if shape.(0) = target_rows && shape.(1) = target_cols then v
  else
    Tensor_d.pad b v ~low:[| 0; 0 |]
      ~high:[| target_rows - shape.(0); target_cols - shape.(1) |]

let def_op (v : Ir.value) =
  match v.Ir.def with
  | Ir.Op_result (op, _) -> Some op
  | Ir.Block_arg _ -> None

(* Build a 3-deep scf.for nest over chunk counts [counts] in the order
   given by [order] (a permutation of logical axes mi/ki/ni = 0/1/2),
   threading the accumulator tensor. [body] receives (mi, ki, ni) index
   values and the accumulator; returns the new accumulator. [mark_unroll]
   tags the loop of the given logical axis with an unroll attribute. *)
let build_nest b ~counts ~order ~(mark_unroll : (int * int) option) ~acc0 body =
  let c0 = Arith.const_index b 0 in
  let c1 = Arith.const_index b 1 in
  let idx_vals = Array.make 3 c0 in
  let rec nest bb depth acc =
    if depth = 3 then body bb idx_vals.(0) idx_vals.(1) idx_vals.(2) acc
    else begin
      let axis = order.(depth) in
      let ub = Arith.const_index bb counts.(axis) in
      let results =
        Scf_d.for_ bb ~lb:c0 ~ub ~step:c1 ~init:[ acc ] (fun bb iv iters ->
            idx_vals.(axis) <- iv;
            [ nest bb (depth + 1) iters.(0) ])
      in
      (match (mark_unroll, List.hd results) with
      | Some (u_axis, u), res when axis = u_axis -> (
        match def_op res with
        | Some for_op -> Ir.set_attr for_op "unroll" (Attr.Int u)
        | None -> ())
      | _ -> ());
      List.hd results
    end
  in
  nest b 0 acc0

(* GEMM on the crossbar accelerator; returns the [M, N] result value. *)
let lower_gemm opts b a_val b_val =
  let dt = dtype_of a_val in
  let m, k_dim =
    match shape_of a_val with
    | [| m; k |] -> (m, k)
    | _ -> invalid_arg "cim lower_gemm: A must be rank 2"
  in
  let n = (shape_of b_val).(1) in
  let mb = min opts.input_chunk (Cinm_support.Util.round_up_to m 1) in
  let m_pad = Cinm_support.Util.round_up_to m mb in
  let k_pad = Cinm_support.Util.round_up_to k_dim opts.rows in
  let n_pad = Cinm_support.Util.round_up_to n opts.cols in
  let mc = m_pad / mb in
  let kt = k_pad / opts.rows in
  let nt = n_pad / opts.cols in
  let a_pad = pad2 b a_val ~target_rows:m_pad ~target_cols:k_pad in
  let b_pad = pad2 b b_val ~target_rows:k_pad ~target_cols:n_pad in
  let id = Cim_d.acquire b ~rows:opts.rows ~cols:opts.cols ~tiles:opts.tiles in
  let acc0 =
    Builder.build1 b "tensor.empty" ~result_tys:[ Types.Tensor ([| m_pad; n_pad |], dt) ]
  in
  let order = if opts.interchange then [| 1; 2; 0 |] else [| 0; 1; 2 |] in
  (* distribute the n-tile loop across crossbar tiles; when the kernel has
     a single n-tile (e.g. gemv), fall back to the k-tile loop (distinct
     weight tiles, partials still merged) *)
  let mark_unroll =
    if not opts.parallel then None
    else if min opts.tiles nt > 1 then Some (2, min opts.tiles nt)
    else if min opts.tiles kt > 1 then Some (1, min opts.tiles kt)
    else None
  in
  let c_rows = Arith.const_index b opts.rows in
  let c_cols = Arith.const_index b opts.cols in
  let c_mb = Arith.const_index b mb in
  let result =
    build_nest b ~counts:[| mc; kt; nt |] ~order ~mark_unroll ~acc0
      (fun bb mi ki ni acc ->
        let row_off = Arith.muli bb mi c_mb in
        let k_off = Arith.muli bb ki c_rows in
        let n_off = Arith.muli bb ni c_cols in
        let a_tile =
          Tensor_d.extract_slice bb a_pad ~offsets:[| 0; 0 |]
            ~sizes:[| mb; opts.rows |] ~dyn_offsets:[ row_off; k_off ]
        in
        let b_tile =
          Tensor_d.extract_slice bb b_pad ~offsets:[| 0; 0 |]
            ~sizes:[| opts.rows; opts.cols |] ~dyn_offsets:[ k_off; n_off ]
        in
        let partials =
          Cim_d.execute bb id ~inputs:[ a_tile; b_tile ]
            ~result_tys:[ Types.Tensor ([| mb; opts.cols |], dt) ]
            (fun bb args -> [ Cinm_d.gemm bb args.(0) args.(1) ])
        in
        let partial = List.hd partials in
        let c_cur =
          Tensor_d.extract_slice bb acc ~offsets:[| 0; 0 |]
            ~sizes:[| mb; opts.cols |] ~dyn_offsets:[ row_off; n_off ]
        in
        let c_new = Cinm_d.merge_partial bb ~op:"add" c_cur partial in
        Tensor_d.insert_slice bb c_new acc ~offsets:[| 0; 0 |]
          ~dyn_offsets:[ row_off; n_off ])
  in
  Cim_d.barrier b id;
  Cim_d.release b id;
  if m_pad = m && n_pad = n then result
  else
    Tensor_d.extract_slice b result ~offsets:[| 0; 0 |] ~sizes:[| m; n |] ~dyn_offsets:[]

let pattern opts : Rewrite.pattern =
 fun ctx op ->
  if not (is_cim_target op) then None
  else begin
    let b = ctx.Rewrite.b in
    let opd i = Rewrite.operand ctx op i in
    match op.Ir.name with
    | "cinm.gemm" -> Some (Rewrite.Replace [ lower_gemm opts b (opd 0) (opd 1) ])
    | "cinm.gemv" ->
      let a = opd 0 and x = opd 1 in
      let k_dim = (shape_of x).(0) in
      let m = (shape_of a).(0) in
      let x_mat = Cinm_d.expand b x ~shape:[| k_dim; 1 |] in
      let res = lower_gemm opts b a x_mat in
      Some (Rewrite.Replace [ Cinm_d.expand b res ~shape:[| m |] ])
    | _ -> None
  end

let pass ?(options = default_options) () =
  Pass.of_patterns ~name:"cinm-to-cim" [ pattern options ]
