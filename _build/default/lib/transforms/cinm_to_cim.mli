(** cinm -> cim lowering (paper §3.2.4, Fig. 6b): compulsory tiling of
    matmul-like ops to the crossbar geometry, cim.execute regions with the
    tile-level gemm, and partial-result accumulation via
    cinm.merge_partial. [interchange] emits the min-writes loop order
    (LICM then hoists the programming); [parallel] marks the tile loop for
    unrolling across crossbars. *)

open Cinm_ir

type options = {
  rows : int;
  cols : int;
  tiles : int;
  input_chunk : int;  (** rows of A streamed per execute *)
  interchange : bool;  (** cim-min-writes *)
  parallel : bool;  (** cim-parallel *)
}

val default_options : options
val pass : ?options:options -> unit -> Pass.t
