(** cinm -> cnm lowering (paper §3.2.3, Fig. 6a): rewrites cinm compute ops
    annotated target = "cnm" into workgroup allocation and scatter /
    launch / gather sequences with tiling. GEMMs chunk the M dimension
    across the PUs (Fig. 9 rectangular tiling) with the stationary operand
    broadcast once into a DPU-shared buffer; reduce / scan / histogram /
    topk / sim_search get their multi-launch decompositions. The emitted
    cnm.launch carries a kernel descriptor attribute that cnm-to-upmem
    regenerates device-aware kernels from. *)

open Cinm_ir

type options = {
  dpus : int;
  tasklets : int;
  optimize : bool;  (** cinm-opt: WRAM-aware kernel style + interchange *)
  max_rows_per_launch : int;  (** bound on per-PU rows per launch *)
}

val default_options : options

(** Scalar form of a named cinm/arith binop, for kernel generators.
    @raise Invalid_argument on unknown names. *)
val scalar_binop : Builder.t -> string -> Ir.value -> Ir.value -> Ir.value

val pass : ?options:options -> unit -> Pass.t
