(* cinm.pop_count -> rtm lowering (paper §2.3 / Table 1: population count
   is a CIM-only op, served by racetrack memory's transverse reads;
   Table 5's CIM-Logic row). Large inputs are processed in track-capacity
   chunks, zero-padded (zeros contribute nothing to a popcount). *)

open Cinm_ir
open Cinm_dialects

type options = { tracks : int; domains : int }

let default_options = { tracks = 64; domains = 64 }

let is_cim_target op =
  match Ir.attr op "target" with Some (Attr.Str "cim") -> true | _ -> false

let pattern opts : Rewrite.pattern =
 fun ctx op ->
  match op.Ir.name with
  | "cinm.pop_count" when is_cim_target op ->
    let b = ctx.Rewrite.b in
    let data = Rewrite.operand ctx op 0 in
    let shape = Option.get (Types.shape_of data.Ir.ty) in
    let n = Cinm_support.Util.product_of_shape shape in
    let capacity = opts.tracks * opts.domains in
    let chunks = Cinm_support.Util.ceil_div n capacity in
    let n_pad = chunks * capacity in
    let flat = Cinm_d.expand b data ~shape:[| n |] in
    let padded =
      if n_pad = n then flat
      else Tensor_d.pad b flat ~low:[| 0 |] ~high:[| n_pad - n |]
    in
    let c0 = Arith.const_index b 0 in
    let c1 = Arith.const_index b 1 in
    let c_chunks = Arith.const_index b chunks in
    let c_cap = Arith.const_index b capacity in
    let zero = Arith.constant b 0 in
    let total =
      Scf_d.for_ b ~lb:c0 ~ub:c_chunks ~step:c1 ~init:[ zero ] (fun bb ci iters ->
          let off = Arith.muli bb ci c_cap in
          let chunk =
            Tensor_d.extract_slice bb padded ~offsets:[| 0 |] ~sizes:[| capacity |]
              ~dyn_offsets:[ off ]
          in
          let id = Rtm_d.alloc bb ~tracks:opts.tracks ~domains:opts.domains in
          Rtm_d.write bb id chunk;
          let partial = Rtm_d.pop_count bb id in
          Rtm_d.release bb id;
          [ Arith.addi bb iters.(0) partial ])
    in
    Some (Rewrite.Replace [ List.hd total ])
  | _ -> None

let pass ?(options = default_options) () =
  Pass.of_patterns ~name:"cinm-to-rtm" [ pattern options ]
