(** cinm -> scf host lowering (paper §3.2.5 low-level dialects): cinm ops
    with target "host" (or none) become scf loop nests over tensor
    elements. Optional in the driver (the interpreter executes cinm
    directly); used by cinm_opt and the LoC accounting. *)

val pass : Cinm_ir.Pass.t
