(** cnm -> upmem device lowering (paper §3.2.5): maps workgroups to DPU
    grids and regenerates launch bodies as device-aware tasklet kernels
    with explicit MRAM<->WRAM staging. The launch's kernel descriptor
    selects the generator; the "style" attribute selects the optimization
    level ("naive" = cinm-nd, "wram" = cinm-opt-nd with WRAM-budget-sized
    blocks and interchanged loops). Unrecognized launches fall back to a
    generic whole-buffer staging transformation. Kernels that overcommit
    the WRAM budget are rejected at compile time. *)

open Cinm_ir

type options = {
  dpus_per_dimm : int;
  wram_bytes : int;  (** per DPU *)
  naive_block : int;  (** elements per DMA block in naive style *)
}

val default_options : options

(** Largest divisor of [n] that is at most [cap] (block-size selection). *)
val largest_divisor_leq : int -> int -> int

(** Iterate a kernel body over [l / bs] blocks of [bs] elements; the
    callback receives the block's element offset. Shared with the
    hand-written PrIM baselines. *)
val foreach_block :
  Builder.t -> l:int -> bs:int -> (Builder.t -> off:Ir.value -> unit) -> unit

(** The scan-with-offsets kernel, reused by the PrIM sel baseline. *)
val scan_add_kernel :
  options ->
  style:string ->
  tasklets:int ->
  opname:string ->
  l:int ->
  dt:Types.dtype ->
  Builder.t ->
  Ir.value array ->
  unit

val pass : ?options:options -> unit -> Pass.t
