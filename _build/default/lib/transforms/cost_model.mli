(** Device cost-model interface (paper §3.3): device dialects register
    models; target selection queries them to compare candidate devices. *)

type t = {
  device : string;  (** "cim" | "cnm" | "host" *)
  model_name : string;
  estimate : Cinm_ir.Ir.op -> float option;
      (** estimated seconds; [None] when the op is unsupported *)
}

val register : t -> unit
val clear : unit -> unit
val registered : unit -> t list
val lookup : string -> t option

(** The cheapest device that can run the op, if any model covers it. *)
val best_device : Cinm_ir.Ir.op -> string option

(** Reference models derived from the simulator constants. *)
val cim_reference :
  ?rows:int -> ?cols:int -> ?t_mvm:float -> ?t_write_row:float -> unit -> t

val cnm_reference : ?dpus:int -> ?freq:float -> ?host_bw:float -> unit -> t
val host_reference : ?gops:float -> unit -> t
val register_reference_models : unit -> unit
