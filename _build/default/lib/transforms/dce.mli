(** Dead code elimination for pure, region-free ops (to fixpoint). *)

val run_on_func : Cinm_ir.Func.t -> unit
val pass : Cinm_ir.Pass.t
