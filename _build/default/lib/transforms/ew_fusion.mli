(** Elementwise fusion at the cinm level (paper §2.4: compilers can fuse
    operations to reduce data movement, unlike device libraries).
    Single-use cinm elementwise chains fold into one cinm.ew_expr; a chain
    feeding a cnm-targeted scan folds into the scan kernel itself (the
    PrIM sel structure). Runs DCE afterwards. *)

val pass : Cinm_ir.Pass.t
