(** Loop-invariant code motion, specialized for the CIM flow: hoists pure
    ops and loop-invariant memristor.store_tile ops out of scf.for bodies
    — the transformation that realizes the cim-min-writes write reduction
    after the loop interchange (paper §3.2.4). Run once per loop-nest
    depth hoisting should cross. *)

val pass : Cinm_ir.Pass.t
