(* linalg -> cinm conversion (paper §3.2.2): maps linalg named ops onto the
   cinm operation set (Table 1), canonicalizing kernels without a direct
   counterpart:
   - convolutions are rewritten as im2col + gemm + expand (paper Fig. 5);
   - tensor contractions (einsum) are rewritten as transpose + reshape +
     gemm + reshape + transpose, the OCC contraction-to-GEMM algorithm.
   Operators that cannot be converted stay in their original dialect and
   later run on the host. *)

open Cinm_ir
open Cinm_dialects

let elementwise =
  List.map
    (fun n -> ("linalg." ^ n, "cinm." ^ n))
    [ "add"; "sub"; "mul"; "div"; "min"; "max" ]

let elementwise_pattern : Rewrite.pattern =
 fun ctx op ->
  match List.assoc_opt op.Ir.name elementwise with
  | Some cinm_name ->
    let x = Rewrite.operand ctx op 0 and y = Rewrite.operand ctx op 1 in
    Some (Rewrite.Replace [ Builder.build1 ctx.Rewrite.b cinm_name ~operands:[ x; y ] ~result_tys:[ x.Ir.ty ] ])
  | None -> None

let matmul_pattern : Rewrite.pattern =
 fun ctx op ->
  match op.Ir.name with
  | "linalg.matmul" ->
    Some
      (Rewrite.Replace
         [ Cinm_d.gemm ctx.Rewrite.b (Rewrite.operand ctx op 0) (Rewrite.operand ctx op 1) ])
  | "linalg.matvec" ->
    Some
      (Rewrite.Replace
         [ Cinm_d.gemv ctx.Rewrite.b (Rewrite.operand ctx op 0) (Rewrite.operand ctx op 1) ])
  | "linalg.dot" ->
    let b = ctx.Rewrite.b in
    let x = Rewrite.operand ctx op 0 and y = Rewrite.operand ctx op 1 in
    let prod = Cinm_d.mul b x y in
    Some (Rewrite.Replace [ Cinm_d.reduce b ~op:"add" prod ])
  | "linalg.transpose" ->
    Some
      (Rewrite.Replace
         [
           Cinm_d.transpose ctx.Rewrite.b (Rewrite.operand ctx op 0)
             ~perms:(Ir.ints_attr op "perms");
         ])
  | "linalg.reduce" ->
    Some
      (Rewrite.Replace
         [
           Cinm_d.reduce ctx.Rewrite.b ~op:(Ir.str_attr op "op")
             (Rewrite.operand ctx op 0);
         ])
  | _ -> None

(* Convolution -> im2col + gemm + expand (paper Fig. 5). *)
let conv_pattern : Rewrite.pattern =
 fun ctx op ->
  match op.Ir.name with
  | "linalg.conv_2d" -> (
    let b = ctx.Rewrite.b in
    let img = Rewrite.operand ctx op 0 and kernel = Rewrite.operand ctx op 1 in
    match (Types.shape_of img.Ir.ty, Types.shape_of kernel.Ir.ty) with
    | Some [| h; w |], Some [| kh; kw |] ->
      let cols = Cinm_d.im2col b img ~kh ~kw in
      let kvec = Cinm_d.expand b kernel ~shape:[| kh * kw; 1 |] in
      let mm = Cinm_d.gemm b cols kvec in
      let out = Cinm_d.expand b mm ~shape:[| h - kh + 1; w - kw + 1 |] in
      Some (Rewrite.Replace [ out ])
    | _ -> None)
  | _ -> None

(* ----- contraction-to-GEMM rewriting ----- *)

type einsum_plan = {
  m_idx : char list;  (** indices in A and out *)
  n_idx : char list;  (** indices in B and out *)
  k_idx : char list;  (** reduction indices (A and B, not out) *)
}

let chars s = List.init (String.length s) (String.get s)

(* Classify an einsum's indices; [None] if it is not a pure contraction
   (batch dims or free reductions), in which case it stays on the host. *)
let plan_einsum a_idx b_idx out_idx =
  let a = chars a_idx and bs = chars b_idx and out = chars out_idx in
  let in_a c = List.mem c a and in_b c = List.mem c bs and in_out c = List.mem c out in
  let m_idx = List.filter (fun c -> in_out c && not (in_b c)) a in
  let n_idx = List.filter (fun c -> in_out c && not (in_a c)) bs in
  let k_idx = List.filter (fun c -> in_b c && not (in_out c)) a in
  let classified = List.length m_idx + List.length k_idx = List.length a
                   && List.length n_idx + List.length k_idx = List.length bs
                   && List.length m_idx + List.length n_idx = List.length out in
  let no_dups l = List.length (List.sort_uniq compare l) = List.length l in
  if classified && no_dups a && no_dups bs && no_dups out then Some { m_idx; n_idx; k_idx }
  else None

let perm_to target source =
  Array.of_list
    (List.map
       (fun c ->
         match String.index_opt source c with
         | Some i -> i
         | None -> invalid_arg "einsum perm: index not found")
       (chars target))

let is_identity_perm perms = Array.for_all2 ( = ) perms (Array.init (Array.length perms) Fun.id)

let maybe_transpose b v perms =
  if is_identity_perm perms then v else Cinm_d.transpose b v ~perms

let einsum_pattern : Rewrite.pattern =
 fun ctx op ->
  match op.Ir.name with
  | "linalg.einsum" -> (
    let spec = Ir.str_attr op "spec" in
    let a_idx, b_idx, out_idx = Linalg_d.parse_einsum_spec spec in
    match plan_einsum a_idx b_idx out_idx with
    | None -> None (* not a pure contraction: host fallback *)
    | Some { m_idx; n_idx; k_idx } ->
      let b = ctx.Rewrite.b in
      let va = Rewrite.operand ctx op 0 and vb = Rewrite.operand ctx op 1 in
      let a_shape = Option.get (Types.shape_of va.Ir.ty) in
      let b_shape = Option.get (Types.shape_of vb.Ir.ty) in
      let dim_of idx_str shape c =
        match String.index_opt idx_str c with
        | Some i -> shape.(i)
        | None -> invalid_arg "einsum dim"
      in
      let str_of l = String.init (List.length l) (List.nth l) in
      let prod idx_str shape l =
        List.fold_left (fun acc c -> acc * dim_of idx_str shape c) 1 l
      in
      let m = prod a_idx a_shape m_idx in
      let k = prod a_idx a_shape k_idx in
      let n = prod b_idx b_shape n_idx in
      (* A -> (M..., K...) -> [M, K] *)
      let a_t = maybe_transpose b va (perm_to (str_of (m_idx @ k_idx)) a_idx) in
      let a_mat = Cinm_d.expand b a_t ~shape:[| m; k |] in
      (* B -> (K..., N...) -> [K, N] *)
      let b_t = maybe_transpose b vb (perm_to (str_of (k_idx @ n_idx)) b_idx) in
      let b_mat = Cinm_d.expand b b_t ~shape:[| k; n |] in
      let mm = Cinm_d.gemm b a_mat b_mat in
      (* [M, N] -> (M..., N...) -> out order *)
      let mn_idx = str_of (m_idx @ n_idx) in
      let mn_shape =
        Array.of_list
          (List.map (fun c ->
               if List.mem c m_idx then dim_of a_idx a_shape c else dim_of b_idx b_shape c)
             (m_idx @ n_idx))
      in
      let expanded = Cinm_d.expand b mm ~shape:mn_shape in
      let final = maybe_transpose b expanded (perm_to out_idx mn_idx) in
      Some (Rewrite.Replace [ final ]))
  | _ -> None

let patterns = [ elementwise_pattern; matmul_pattern; conv_pattern; einsum_pattern ]

let pass = Pass.of_patterns ~name:"linalg-to-cinm" patterns
