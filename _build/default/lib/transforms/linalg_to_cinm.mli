(** linalg -> cinm conversion (paper §3.2.2): maps linalg named ops onto
    the cinm op set (Table 1); convolutions are rewritten as
    im2col + gemm + expand (Fig. 5) and pure tensor contractions as
    transpose + reshape + gemm (the OCC algorithm). Unconvertible ops stay
    and run on the host. *)

(** Index classification of a two-operand einsum. *)
type einsum_plan = {
  m_idx : char list;  (** indices in A and the output *)
  n_idx : char list;  (** indices in B and the output *)
  k_idx : char list;  (** reduction indices *)
}

(** [None] when the spec is not a pure contraction (batch dims, repeated
    indices or free reductions). *)
val plan_einsum : string -> string -> string -> einsum_plan option

val pass : Cinm_ir.Pass.t
