(* Loop unrolling (paper §3.2.5: "memristor applies the loop unrolling
   transformation on the innermost loop of the matmul kernel ... the pass
   takes an unroll factor and modifies the body and loop variable").

   Unrolls every scf.for carrying an {unroll = u} attribute by factor u,
   provided the bounds are compile-time constants and u divides the trip
   count; otherwise the loop is left untouched. iter_args are threaded
   through the unrolled copies. *)

open Cinm_ir
open Cinm_dialects

let pattern : Rewrite.pattern =
 fun ctx op ->
  match (op.Ir.name, Ir.attr op "unroll") with
  | "scf.for", Some (Attr.Int u) when u > 1 -> (
    let lb_v = Ir.operand op 0 and ub_v = Ir.operand op 1 and step_v = Ir.operand op 2 in
    match
      ( Transform_util.constant_of lb_v,
        Transform_util.constant_of ub_v,
        Transform_util.constant_of step_v )
    with
    | Some lb, Some ub, Some step when step > 0 && (ub - lb) mod (step * u) = 0 ->
      let b = ctx.Rewrite.b in
      let inits = List.map (Rewrite.lookup ctx) (Scf_d.for_inits op) in
      let region = Ir.region op 0 in
      let new_lb = Arith.const_index b lb in
      let new_ub = Arith.const_index b ub in
      let new_step = Arith.const_index b (step * u) in
      let results =
        Scf_d.for_ b ~lb:new_lb ~ub:new_ub ~step:new_step ~init:inits
          (fun bb iv iters ->
            let current = ref (Array.to_list iters) in
            for j = 0 to u - 1 do
              let iv_j =
                if j = 0 then iv
                else Arith.addi bb iv (Arith.const_index bb (j * step))
              in
              current :=
                Transform_util.inline_body ~remap:(Rewrite.lookup ctx) bb region
                  (iv_j :: !current)
            done;
            !current)
      in
      Some (Rewrite.Replace results)
    | _ -> None)
  | _ -> None

let pass = Pass.of_patterns ~name:"loop-unroll" [ pattern ]
