(** Loop unrolling (paper §3.2.5): unrolls every scf.for carrying an
    {unroll = u} attribute by factor u when the bounds are compile-time
    constants and u divides the trip count; iter_args are threaded through
    the unrolled copies. *)

val pass : Cinm_ir.Pass.t
