(* torch -> tosa/linalg lowering (paper §3.2.1: torch enters the flow via
   torch-mlir). aten ops map onto the tosa/linalg ops the rest of the
   pipeline already handles. *)

open Cinm_ir
open Cinm_dialects

let pattern : Rewrite.pattern =
 fun ctx op ->
  let b = ctx.Rewrite.b in
  let opd i = Rewrite.operand ctx op i in
  match op.Ir.name with
  | "torch.aten.mm" -> Some (Rewrite.Replace [ Tosa_d.matmul b (opd 0) (opd 1) ])
  | "torch.aten.linear" ->
    Some (Rewrite.Replace [ Tosa_d.fully_connected b (opd 0) (opd 1) (opd 2) ])
  | "torch.aten.relu" -> Some (Rewrite.Replace [ Tosa_d.relu b (opd 0) ])
  | "torch.aten.add_tensor" -> Some (Rewrite.Replace [ Tosa_d.add b (opd 0) (opd 1) ])
  | "torch.aten.mul_tensor" -> Some (Rewrite.Replace [ Linalg_d.mul b (opd 0) (opd 1) ])
  | "torch.aten.conv2d" -> Some (Rewrite.Replace [ Linalg_d.conv_2d b (opd 0) (opd 1) ])
  | "torch.aten.sum" ->
    Some (Rewrite.Replace [ Linalg_d.reduce b ~op:"add" (opd 0) ])
  | _ -> None

let pass = Pass.of_patterns ~name:"torch-to-tosa" [ pattern ]
