(** torch -> tosa/linalg lowering (paper §3.2.1: the torch front-end
    enters the flow via torch-mlir). *)

val pass : Cinm_ir.Pass.t
