(* tosa -> linalg decomposition (paper §3.2.2): tosa.fully_connected is
   decomposed into transpose + matmul + bias addition, exactly the MLP
   canonicalization the paper describes. *)

open Cinm_ir
open Cinm_dialects

let fully_connected_pattern : Rewrite.pattern =
 fun ctx op ->
  match op.Ir.name with
  | "tosa.fully_connected" ->
    let input = Rewrite.operand ctx op 0 in
    let weight = Rewrite.operand ctx op 1 in
    let bias = Rewrite.operand ctx op 2 in
    let b = ctx.Rewrite.b in
    let wt = Linalg_d.transpose b weight ~perms:[| 1; 0 |] in
    let mm = Linalg_d.matmul b input wt in
    let out_shape = Option.get (Types.shape_of mm.Ir.ty) in
    let bias_mat = Linalg_d.broadcast b bias ~to_shape:out_shape in
    let out = Linalg_d.add b mm bias_mat in
    Some (Rewrite.Replace [ out ])
  | _ -> None

let simple_renames = [ ("tosa.matmul", "linalg.matmul"); ("tosa.add", "linalg.add") ]

let rename_pattern : Rewrite.pattern =
 fun ctx op ->
  match List.assoc_opt op.Ir.name simple_renames with
  | Some new_name ->
    let operands = Rewrite.operands ctx op in
    let result_tys = Array.to_list (Array.map (fun (v : Ir.value) -> v.Ir.ty) op.Ir.results) in
    let new_op = Ir.create_op ~operands ~result_tys ~attrs:op.Ir.attrs new_name in
    Builder.insert ctx.Rewrite.b new_op;
    Some (Rewrite.Replace (Array.to_list new_op.Ir.results))
  | None -> None

(* tosa.clamp has no linalg/cinm counterpart: it stays as-is and later runs
   on the host (paper: "operators that still cannot be converted are run on
   the host CPU"). *)

let pass = Pass.of_patterns ~name:"tosa-to-linalg" [ fully_connected_pattern; rename_pattern ]
