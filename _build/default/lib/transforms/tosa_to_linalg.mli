(** tosa -> linalg decomposition (paper §3.2.2): tosa.fully_connected
    becomes transpose + matmul + bias addition; tosa.matmul/add are
    renamed; tosa.clamp stays and later runs on the host. *)

val pass : Cinm_ir.Pass.t
