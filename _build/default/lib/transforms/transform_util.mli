(** Shared helpers for transformations that splice region bodies around. *)

open Cinm_ir

(** Value ids defined inside a region (block args and op results). *)
val defined_in_region : Ir.region -> (int, unit) Hashtbl.t

(** Clone a region's entry-block ops at the insertion point, substituting
    block args with [args]; free references go through [remap]. Returns
    the mapped terminator operands. *)
val inline_body :
  ?remap:(Ir.value -> Ir.value) ->
  Builder.t ->
  Ir.region ->
  Ir.value list ->
  Ir.value list

(** The integer constant a value is defined by, if any. *)
val constant_of : Ir.value -> int option
