(* Workgroup-transform analysis (paper §3.2.3, Fig. 8): for an Einsteinian
   tensor expression, the parallel workgroup domain can be interchanged,
   coalesced and split freely — the compute is unchanged, but the per-PU
   working-set buffers commute, changing the total device memory required
   and the number of scalars copied.

   Model: the workgroup is a tree over the chosen parallel axes (paper
   Fig. 7). An input tensor's slice is stored at the deepest tree level
   that still pins all of its parallel indices; it is shared across the
   axes below that level (the suffix). So with tree (i, j, k) and
   A indexed only by i, there is one A-slice per i, shared by all (j, k)
   PUs under it — which reproduces the paper's footprint
   M(P + NO(P+1)) for x_ijk = A_ir B_rjk + C_jk exactly. *)

type tensor_term = { term_name : string; indices : string (* one char per dim *) }

type expression = {
  inputs : tensor_term list;
  output_indices : string;
  dims : (char * int) list;  (** extent of each index *)
}

let dim_of expr c =
  match List.assoc_opt c expr.dims with
  | Some d -> d
  | None -> invalid_arg (Printf.sprintf "Workgroup_analysis: unknown index %c" c)

let chars s = List.init (String.length s) (String.get s)

let pus expr axes = List.fold_left (fun acc c -> acc * dim_of expr c) 1 axes

(* Per-slice size of a tensor: parallel axes pin one coordinate each. *)
let slice_elems expr axes (t : tensor_term) =
  List.fold_left
    (fun acc c -> if List.mem c axes then acc else acc * dim_of expr c)
    1 (chars t.indices)

(* Number of distinct slices of [t] in tree order [axes]: the tensor lives
   at the deepest level referencing one of its indices; it is replicated
   across the prefix up to that level and shared across the suffix. *)
let copies expr axes (t : tensor_term) =
  let referenced c = String.contains t.indices c in
  let rec last_ref i best = function
    | [] -> best
    | c :: rest -> last_ref (i + 1) (if referenced c then i else best) rest
  in
  let cut = last_ref 0 (-1) axes in
  List.filteri (fun i _ -> i <= cut) axes
  |> List.fold_left (fun acc c -> acc * dim_of expr c) 1

(* Total device memory for the input working sets (the paper's Fig. 8
   buffer accounting; the output is written back, not resident). *)
let footprint expr axes =
  List.fold_left
    (fun acc t -> acc + (copies expr axes t * slice_elems expr axes t))
    0 expr.inputs

(* Candidate tree orders: all permutations of all non-empty subsets of the
   output indices. *)
let candidate_orders expr =
  let out = chars expr.output_indices in
  let rec subsets = function
    | [] -> [ [] ]
    | x :: rest ->
      let s = subsets rest in
      s @ List.map (fun sub -> x :: sub) s
  in
  let rec perms = function
    | [] -> [ [] ]
    | l ->
      List.concat_map
        (fun x ->
          List.map (fun p -> x :: p) (perms (List.filter (fun y -> y <> x) l)))
        l
  in
  List.filter (fun s -> s <> []) (subsets out) |> List.concat_map perms

(* Rank candidate workgroup tree orders by footprint, cheapest first;
   ties broken towards more parallelism (more PUs). *)
let rank expr =
  candidate_orders expr
  |> List.map (fun axes -> (axes, footprint expr axes, pus expr axes))
  |> List.sort (fun (_, fa, pa) (_, fb, pb) ->
         if fa <> fb then compare fa fb else compare pb pa)

let best expr = match rank expr with r :: _ -> r | [] -> invalid_arg "rank: no axes"

(* The paper's running example, parameterized by M, P, N, O:
   x_ijk = A_ir * B_rjk + C_jk. *)
let paper_example ~m ~p ~n ~o =
  {
    inputs =
      [
        { term_name = "A"; indices = "ir" };
        { term_name = "B"; indices = "rjk" };
        { term_name = "C"; indices = "jk" };
      ];
    output_indices = "ijk";
    dims = [ ('i', m); ('r', p); ('j', n); ('k', o) ];
  }

(* Closed forms from the paper for its two workgroup choices. *)
let paper_ijk_footprint ~m ~p ~n ~o = m * (p + (n * o * (p + 1)))
let paper_jk_footprint ~m ~p ~n ~o = n * o * ((m * p) + p + 1)

let axes_to_string axes = String.init (List.length axes) (List.nth axes)
