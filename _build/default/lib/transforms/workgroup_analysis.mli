(** Workgroup-transform analysis (paper §3.2.3, Fig. 8): footprints of the
    candidate parallel domains of an Einsteinian tensor expression. A
    tensor's slice is stored at the deepest workgroup-tree level that pins
    all its parallel indices and shared across the levels below. *)

type tensor_term = { term_name : string; indices : string }

type expression = {
  inputs : tensor_term list;
  output_indices : string;
  dims : (char * int) list;
}

val pus : expression -> char list -> int
val slice_elems : expression -> char list -> tensor_term -> int
val copies : expression -> char list -> tensor_term -> int

(** Total device memory for the input working sets under a tree order. *)
val footprint : expression -> char list -> int

val candidate_orders : expression -> char list list

(** Candidates ranked by footprint (ascending), ties towards more PUs. *)
val rank : expression -> (char list * int * int) list

val best : expression -> char list * int * int

(** The paper's running example x_ijk = A_ir B_rjk + C_jk. *)
val paper_example : m:int -> p:int -> n:int -> o:int -> expression

val paper_ijk_footprint : m:int -> p:int -> n:int -> o:int -> int
val paper_jk_footprint : m:int -> p:int -> n:int -> o:int -> int
val axes_to_string : char list -> string
