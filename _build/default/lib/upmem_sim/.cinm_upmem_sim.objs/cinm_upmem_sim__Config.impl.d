lib/upmem_sim/config.ml:
