lib/upmem_sim/config.mli:
