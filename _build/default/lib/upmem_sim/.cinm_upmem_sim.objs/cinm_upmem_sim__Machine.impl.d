lib/upmem_sim/machine.ml: Array Attr Cinm_dialects Cinm_interp Cinm_ir Cinm_support Config Distrib Func Hashtbl Interp Ir List Printf Profile Rtval Stats Tensor Types
