lib/upmem_sim/machine.mli: Cinm_interp Cinm_ir Config Func Hashtbl Interp Rtval Stats Tensor
