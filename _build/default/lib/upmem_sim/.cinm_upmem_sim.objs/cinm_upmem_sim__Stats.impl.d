lib/upmem_sim/stats.ml: Printf
