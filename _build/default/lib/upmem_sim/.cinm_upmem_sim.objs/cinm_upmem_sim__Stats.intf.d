lib/upmem_sim/stats.mli:
