test/test_cam_rtm.mli:
