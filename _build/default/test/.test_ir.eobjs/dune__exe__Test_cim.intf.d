test/test_cim.mli:
