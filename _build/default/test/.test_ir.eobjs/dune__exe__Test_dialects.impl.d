test/test_dialects.ml: Alcotest Arith Array Attr Builder Cim_d Cinm_d Cinm_dialects Cinm_ir Cnm_d Func Func_d Ir List Memref_d Memristor_d Registry Scf_d Tensor_d Types Upmem_d Verifier
