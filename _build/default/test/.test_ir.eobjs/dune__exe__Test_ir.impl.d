test/test_ir.ml: Alcotest Arith Array Attr Builder Cinm_d Cinm_dialects Cinm_ir Func Func_d Ir List Parser Printer QCheck QCheck_alcotest Registry Scf_d String Types Verifier
