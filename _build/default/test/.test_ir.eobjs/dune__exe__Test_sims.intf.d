test/test_sims.mli:
