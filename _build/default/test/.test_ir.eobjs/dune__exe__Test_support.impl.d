test/test_support.ml: Alcotest Cinm_support List QCheck QCheck_alcotest Util Vec
