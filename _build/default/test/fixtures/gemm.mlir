// A device-independent GEMM at the linalg level (paper Fig. 3b).
func.func @mm(%arg0: tensor<16x8xi32>, %arg1: tensor<8x12xi32>) -> (tensor<16x12xi32>) {
  %0 = "linalg.matmul"(%arg0, %arg1) : (tensor<16x8xi32>, tensor<8x12xi32>) -> (tensor<16x12xi32>)
  "func.return"(%0) : (tensor<16x12xi32>) -> ()
}
