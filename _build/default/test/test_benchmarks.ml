(* Integration tests: every benchmark compiled through the driver for each
   applicable backend must reproduce the host reference result; the hand-
   written PrIM baselines must agree with the device-independent versions
   of the same workloads. *)

open Cinm_ir
open Cinm_interp
open Cinm_core
open Cinm_benchmarks

let () = Cinm_dialects.Registry.ensure_all ()

(* tiny machine so tests stay fast: 1 DIMM x 4 DPUs x 4 tasklets = 16 PUs *)
let tiny = Backend.default_upmem ~dimms:1 ~dpus_per_dimm:4 ~tasklets:4 ()
let tiny_opt = { tiny with Backend.optimize = true }

let small_sizes =
  {
    Suites.va_n = 1024;
    mv_m = 64;
    mv_n = 16;
    red_n = 1024;
    hst_n = 512;
    hst_bins = 16;
    sel_n = 512;
    ts_n = 135;
    ts_m = 8;
    ts_k = 2;
    bfs_v = 32;
  }

let small_ml () =
  [
    Ml_kernels.mm ~m:32 ~k:8 ~n:8 ();
    Ml_kernels.mm2 ~m:16 ~k:8 ~n:8 ~p:8 ();
    Ml_kernels.mm3 ~m:16 ~k:8 ~n:8 ~p:8 ~q:8 ();
    Ml_kernels.conv ~h:10 ~w:10 ();
    Ml_kernels.contrl ~a:2 ~b:2 ~c:2 ~d:2 ~e:3 ~f:3 ();
    Ml_kernels.contrs1 ~a:4 ~b:4 ~c:3 ~d:3 ();
    Ml_kernels.contrs2 ~a:4 ~b:4 ~c:4 ~d:3 ();
    Ml_kernels.mlp ~batch:8 ~d_in:8 ~d_hidden:8 ~d_out:4 ();
  ]

let check_backend backend (bench : Benchmark.t) =
  let results, _report =
    Driver.compile_and_run backend (bench.Benchmark.build ()) (bench.Benchmark.inputs ())
  in
  if not (Benchmark.results_match bench results) then
    Alcotest.failf "%s on %s: results differ from host reference" bench.Benchmark.name
      (Backend.to_string backend)

let test_ml_on_upmem () = List.iter (check_backend (Backend.Upmem tiny)) (small_ml ())

let test_ml_on_upmem_opt () =
  List.iter (check_backend (Backend.Upmem tiny_opt)) (small_ml ())

let cim_small =
  Backend.Cim
    {
      (Backend.default_cim ~min_writes:true ~parallel:true ()) with
      Backend.rows = 8;
      cols = 8;
      input_chunk = 8;
    }

let test_ml_on_cim () =
  (* matmul-like benchmarks offload to the crossbar; the rest of each
     program runs on the ARM host *)
  List.iter (check_backend cim_small) (small_ml ())

let test_prim_on_upmem () =
  List.iter
    (check_backend (Backend.Upmem tiny_opt))
    (Suites.prim_suite ~sizes:small_sizes ())

let test_prim_baselines_match_reference () =
  List.iter
    (fun (baseline : Benchmark.t) ->
      let reference =
        Suites.find baseline.Benchmark.name (Suites.prim_suite ~sizes:small_sizes ())
      in
      let results, _ =
        Driver.run_upmem_func ~sim_config:(Driver.upmem_sim_config tiny)
          (baseline.Benchmark.build ())
          (baseline.Benchmark.inputs ())
      in
      (* ts indices may tie-break differently: compare values only *)
      let expected = Benchmark.reference reference in
      let ok =
        match baseline.Benchmark.name with
        | "ts" -> (
          match (expected, results) with
          | Rtval.Tensor ev :: _, Rtval.Tensor av :: _ -> Tensor.equal ev av
          | _ -> false)
        | _ -> Benchmark.results_match reference results
      in
      if not ok then
        Alcotest.failf "prim %s baseline: results differ from reference"
          baseline.Benchmark.name)
    (Suites.prim_baselines ~sizes:small_sizes tiny)

let test_fusion_reduces_launches () =
  (* sel has a 3-op elementwise chain feeding a scan; fusion folds the
     chain into the scan kernel: 2 launches total (local scan + add
     offsets) instead of 5 *)
  let bench = Prim_kernels.sel ~n:512 () in
  let compiled = Driver.compile_func (Backend.Upmem tiny) (bench.Benchmark.build ()) in
  let launches = ref 0 in
  List.iter
    (Func.walk (fun op -> if op.Ir.name = "upmem.launch" then incr launches))
    compiled.Driver.modul.Func.funcs;
  Alcotest.(check int) "2 launches after fusion" 2 !launches

let test_reports_sane () =
  let bench = Ml_kernels.mm ~m:32 ~k:8 ~n:8 () in
  let _, host = Driver.compile_and_run Backend.Host_xeon (bench.Benchmark.build ()) (bench.Benchmark.inputs ()) in
  let _, up = Driver.compile_and_run (Backend.Upmem tiny) (bench.Benchmark.build ()) (bench.Benchmark.inputs ()) in
  Alcotest.(check bool) "host time positive" true (host.Report.total_s > 0.0);
  Alcotest.(check bool) "upmem device time positive" true (up.Report.device_s > 0.0);
  Alcotest.(check bool) "upmem energy positive" true (up.Report.energy_j > 0.0);
  Alcotest.(check bool) "launch counter present" true (Report.counter up "launches" > 0)

let test_loc_metrics () =
  let bench = Ml_kernels.mm ~m:32 ~k:8 ~n:8 () in
  let row = Loc_metrics.row ~app:"mm" (bench.Benchmark.build ()) in
  Alcotest.(check bool)
    (Printf.sprintf "upmem loc (%d) > cinm loc (%d)" row.Loc_metrics.upmem_loc
       row.Loc_metrics.cinm_loc)
    true
    (row.Loc_metrics.upmem_loc > row.Loc_metrics.cinm_loc);
  Alcotest.(check bool) "reduction > 2x" true (Loc_metrics.reduction row > 2.0)

let test_related_work_table () =
  let table = Related_work.to_table () in
  Alcotest.(check int) "10 metrics + header" 11 (List.length table);
  (* CINM supports everything (last column all yes) *)
  List.iteri
    (fun i row ->
      if i > 0 then
        Alcotest.(check string)
          ("CINM row " ^ List.hd row)
          "yes"
          (List.nth row (List.length row - 1)))
    table

let () =
  Alcotest.run "benchmarks"
    [
      ( "driver integration",
        [
          Alcotest.test_case "ML suite on upmem" `Quick test_ml_on_upmem;
          Alcotest.test_case "ML suite on upmem-opt" `Quick test_ml_on_upmem_opt;
          Alcotest.test_case "ML suite on cim" `Quick test_ml_on_cim;
          Alcotest.test_case "PrIM suite on upmem" `Quick test_prim_on_upmem;
          Alcotest.test_case "reports sane" `Quick test_reports_sane;
        ] );
      ( "prim baselines",
        [
          Alcotest.test_case "baselines match reference" `Quick
            test_prim_baselines_match_reference;
        ] );
      ( "optimizations",
        [ Alcotest.test_case "ew fusion reduces launches" `Quick test_fusion_reduces_launches ] );
      ( "metrics",
        [
          Alcotest.test_case "loc table" `Quick test_loc_metrics;
          Alcotest.test_case "related work table" `Quick test_related_work_table;
        ] );
    ]
