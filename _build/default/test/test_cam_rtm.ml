(* Tests for the CAM (C4CAM-style search) and RTM (logic-CIM popcount)
   device paths: correctness against the host reference, counter/timing
   sanity, and failure injection. *)

open Cinm_ir
open Cinm_dialects
open Cinm_transforms
open Cinm_interp
open Cinm_core
module Cam = Cinm_cam_sim.Cam_machine
module T = Types

let () = Registry.ensure_all ()

let tensor shape = T.Tensor (shape, T.I32)

let check_tensor msg expected actual =
  if not (Tensor.equal expected actual) then
    Alcotest.failf "%s: expected %s, got %s" msg (Tensor.to_string expected)
      (Tensor.to_string actual)

(* ----- sim_search (hamming) via CAM ----- *)

let build_search ?(n = 71) ?(m = 8) ?(k = 3) ~metric () =
  let f =
    Func.create ~name:"search" ~arg_tys:[ tensor [| n |]; tensor [| m |] ]
      ~result_tys:[ tensor [| k |]; tensor [| k |] ]
  in
  let b = Builder.for_func f in
  let v, i = Cinm_d.sim_search b ~metric ~k (Func.param f 0) (Func.param f 1) in
  Func_d.return b [ v; i ];
  f

let search_args ?(n = 71) ?(m = 8) () =
  [
    Rtval.Tensor (Tensor.init [| n |] (fun i -> (i * 131) mod 251));
    Rtval.Tensor (Tensor.init [| m |] (fun i -> ((i + 3) * 131) mod 251));
  ]

let test_hamming_search_targets_cam () =
  let f = build_search ~metric:"hamming" () in
  Target_select.run_on_func Target_select.default_policy f;
  let target = ref "" in
  Func.walk
    (fun op ->
      if op.Ir.name = "cinm.sim_search" then
        match Ir.attr op "target" with Some (Attr.Str t) -> target := t | _ -> ())
    f;
  Alcotest.(check string) "hamming search -> cim (CAM)" "cim" !target;
  (* l2 searches keep going to the DPUs *)
  let f2 = build_search ~metric:"l2" () in
  Target_select.run_on_func Target_select.default_policy f2;
  Func.walk
    (fun op ->
      if op.Ir.name = "cinm.sim_search" then
        match Ir.attr op "target" with Some (Attr.Str t) -> target := t | _ -> ())
    f2;
  Alcotest.(check string) "l2 search -> cnm" "cnm" !target

let lower_to_cam f =
  let m = Func.create_module () in
  Func.add_func m f;
  Pass.run_pipeline
    [
      Target_select.pass
        ~policy:{ Target_select.default_policy with forced_target = Some "cim" } ();
      Cinm_to_cam.pass;
    ]
    m;
  List.hd m.Func.funcs

let test_cam_search_correct () =
  List.iter
    (fun metric ->
      let args = search_args () in
      let expected, _ = Interp.run_func (build_search ~metric ()) args in
      let f = lower_to_cam (build_search ~metric ()) in
      let machine = Cam.create (Cam.default_config ()) in
      let actual, stats = Cam.run machine f args in
      (match (expected, actual) with
      | [ ev; ei ], [ av; ai ] ->
        check_tensor (metric ^ " values") (Rtval.as_tensor ev) (Rtval.as_tensor av);
        check_tensor (metric ^ " indices") (Rtval.as_tensor ei) (Rtval.as_tensor ai)
      | _ -> Alcotest.fail "arity");
      Alcotest.(check int) "one parallel search" 1 stats.Cam.cam_searches;
      Alcotest.(check int) "entries programmed" 64 stats.Cam.cam_entries_written;
      Alcotest.(check bool) "device time recorded" true (stats.Cam.busy_s > 0.0))
    [ "hamming"; "l2"; "dot" ]

let test_cam_through_driver () =
  (* the full Cim backend pipeline routes the hamming search to the CAM *)
  let args = search_args () in
  let expected, _ = Interp.run_func (build_search ~metric:"hamming" ()) args in
  let results, report =
    Driver.compile_and_run
      (Backend.Cim (Backend.default_cim ()))
      (build_search ~metric:"hamming" ())
      args
  in
  (match (expected, results) with
  | [ ev; _ ], [ av; _ ] ->
    check_tensor "driver cam values" (Rtval.as_tensor ev) (Rtval.as_tensor av)
  | _ -> Alcotest.fail "arity");
  Alcotest.(check bool) "cam search counted" true (Report.counter report "cam_searches" > 0)

let test_cam_capacity_guard () =
  let f = Func.create ~name:"big" ~arg_tys:[] ~result_tys:[] in
  let b = Builder.for_func f in
  let _ = Cam_d.alloc b ~entries:100000 ~width:8 in
  Func_d.return b [];
  let machine = Cam.create (Cam.default_config ()) in
  match Cam.run machine f [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected CAM capacity failure"

let test_cam_search_without_entries () =
  let f = Func.create ~name:"empty" ~arg_tys:[ tensor [| 8 |] ] ~result_tys:[ tensor [| 1 |] ] in
  let b = Builder.for_func f in
  let id = Cam_d.alloc b ~entries:16 ~width:8 in
  let idx = Cam_d.search_best b id (Func.param f 0) ~metric:"hamming" ~k:1 in
  Func_d.return b [ idx ];
  let machine = Cam.create (Cam.default_config ()) in
  match Cam.run machine f [ Rtval.Tensor (Tensor.zeros [| 8 |] T.I32) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected failure: search before programming"

(* ----- pop_count via RTM ----- *)

let build_popcount n () =
  let f = Func.create ~name:"pc" ~arg_tys:[ tensor [| n |] ] ~result_tys:[ T.Scalar T.I32 ] in
  let b = Builder.for_func f in
  Func_d.return b [ Cinm_d.pop_count b (Func.param f 0) ];
  f

let lower_to_rtm f =
  let m = Func.create_module () in
  Func.add_func m f;
  Pass.run_pipeline [ Target_select.pass (); Cinm_to_rtm.pass () ] m;
  List.hd m.Func.funcs

let test_popcount_targets_cim () =
  let f = build_popcount 64 () in
  Target_select.run_on_func Target_select.default_policy f;
  let target = ref "" in
  Func.walk
    (fun op ->
      if op.Ir.name = "cinm.pop_count" then
        match Ir.attr op "target" with Some (Attr.Str t) -> target := t | _ -> ())
    f;
  Alcotest.(check string) "pop_count -> cim (Table 1: no cnm popcount)" "cim" !target

let test_rtm_popcount_correct () =
  (* n = 10000 exercises the chunking + zero-padding path (capacity 4096) *)
  List.iter
    (fun n ->
      let data = Tensor.init [| n |] (fun i -> (i * 2654435761) land 0xFFFF) in
      let expected = Tensor.pop_count data in
      let f = lower_to_rtm (build_popcount n ()) in
      let machine = Cam.create (Cam.default_config ()) in
      let results, stats = Cam.run machine f [ Rtval.Tensor data ] in
      Alcotest.(check int)
        (Printf.sprintf "popcount n=%d" n)
        expected
        (Rtval.as_int (List.hd results));
      Alcotest.(check bool) "transverse reads counted" true (stats.Cam.rtm_reads > 0))
    [ 64; 4096; 10000 ]

let test_rtm_write_capacity () =
  let f = Func.create ~name:"big" ~arg_tys:[ tensor [| 8192 |] ] ~result_tys:[] in
  let b = Builder.for_func f in
  let id = Rtm_d.alloc b ~tracks:64 ~domains:64 in
  Rtm_d.write b id (Func.param f 0);
  Func_d.return b [];
  let machine = Cam.create (Cam.default_config ()) in
  match Cam.run machine f [ Rtval.Tensor (Tensor.zeros [| 8192 |] T.I32) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected RTM capacity failure"

(* qcheck: CAM search agrees with the host for random data *)
let prop_cam_matches_host =
  QCheck.Test.make ~name:"cam hamming search == host sim_search" ~count:25
    QCheck.(pair (10 -- 40) (2 -- 6))
    (fun (n, m) ->
      let k = 2 in
      if n - m + 1 < k then true
      else begin
        let args =
          [
            Rtval.Tensor (Tensor.init [| n |] (fun i -> (i * 97) mod 128));
            Rtval.Tensor (Tensor.init [| m |] (fun i -> (i * 53) mod 128));
          ]
        in
        let expected, _ =
          Interp.run_func (build_search ~n ~m ~k ~metric:"hamming" ()) args
        in
        let f = lower_to_cam (build_search ~n ~m ~k ~metric:"hamming" ()) in
        let machine = Cam.create (Cam.default_config ()) in
        let actual, _ = Cam.run machine f args in
        match (expected, actual) with
        | [ ev; _ ], [ av; _ ] ->
          Tensor.equal (Rtval.as_tensor ev) (Rtval.as_tensor av)
        | _ -> false
      end)

let () =
  Alcotest.run "cam-rtm"
    [
      ( "cam",
        [
          Alcotest.test_case "hamming targets cam" `Quick test_hamming_search_targets_cam;
          Alcotest.test_case "search correct (3 metrics)" `Quick test_cam_search_correct;
          Alcotest.test_case "through the driver" `Quick test_cam_through_driver;
          Alcotest.test_case "capacity guard" `Quick test_cam_capacity_guard;
          Alcotest.test_case "search before programming" `Quick test_cam_search_without_entries;
          QCheck_alcotest.to_alcotest prop_cam_matches_host;
        ] );
      ( "rtm",
        [
          Alcotest.test_case "popcount targets cim" `Quick test_popcount_targets_cim;
          Alcotest.test_case "popcount correct (chunked)" `Quick test_rtm_popcount_correct;
          Alcotest.test_case "write capacity" `Quick test_rtm_write_capacity;
        ] );
    ]
