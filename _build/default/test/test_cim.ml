(* Tests for the CIM path: cinm -> cim (tiling, interchange, unrolling) ->
   memristor, executed on the crossbar simulator. Checks both functional
   correctness against the host reference and the paper's qualitative
   claims: min-writes cuts crossbar programming by the streaming factor;
   parallel unrolling overlaps tiles; cim-opt combines both. *)

open Cinm_ir
open Cinm_dialects
open Cinm_transforms
open Cinm_interp
module T = Types
module Msim = Cinm_memristor_sim

let () = Registry.ensure_all ()

let tensor shape = T.Tensor (shape, T.I32)

let check_tensor msg expected actual =
  if not (Tensor.equal expected actual) then
    Alcotest.failf "%s: expected %s, got %s" msg (Tensor.to_string expected)
      (Tensor.to_string actual)

let iota shape = Tensor.init shape (fun i -> (i mod 13) - 6)

let force_cim =
  Target_select.pass
    ~policy:{ Target_select.default_policy with forced_target = Some "cim" }
    ()

let build_mm ?(name = "mm") m k n () =
  let f =
    Func.create ~name ~arg_tys:[ tensor [| m; k |]; tensor [| k; n |] ]
      ~result_tys:[ tensor [| m; n |] ]
  in
  let b = Builder.for_func f in
  Func_d.return b [ Linalg_d.matmul b (Func.param f 0) (Func.param f 1) ];
  f

let cim_opts ~interchange ~parallel =
  { Cinm_to_cim.rows = 8; cols = 8; tiles = 4; input_chunk = 8; interchange; parallel }

let lower_to_cim ?(opts = cim_opts ~interchange:false ~parallel:false) f =
  let m = Func.create_module () in
  Func.add_func m f;
  Pass.run_pipeline
    [ Linalg_to_cinm.pass; force_cim; Cinm_to_cim.pass ~options:opts () ]
    m;
  (m, List.hd m.Func.funcs)

let lower_to_memristor ?(opts = cim_opts ~interchange:false ~parallel:false) f =
  let m, _ = lower_to_cim ~opts f in
  Pass.run_pipeline
    [ Loop_unroll.pass; Cim_to_memristor.assign_pass ~tiles:opts.Cinm_to_cim.tiles;
      Cim_to_memristor.pass; Licm.pass; Licm.pass ]
    m;
  List.hd m.Func.funcs

let run_on_crossbar f args =
  let machine = Msim.Machine.create (Msim.Config.default ()) in
  Msim.Machine.run machine f args

(* ----- cim level (reference executor) ----- *)

let test_cim_level_gemm () =
  let a = iota [| 16; 12 |] and bt = iota [| 12; 20 |] in
  let args = [ Rtval.Tensor a; Rtval.Tensor bt ] in
  let expected, _ = Interp.run_func (build_mm 16 12 20 ()) args in
  let _, f_cim = lower_to_cim (build_mm 16 12 20 ()) in
  let has_execute = ref false in
  Func.walk (fun op -> if op.Ir.name = "cim.execute" then has_execute := true) f_cim;
  Alcotest.(check bool) "has cim.execute" true !has_execute;
  let st = Cnm_ref.create_state () in
  let actual, _ = Interp.run_func ~hooks:[ Cnm_ref.hook st ] f_cim args in
  check_tensor "gemm at cim level"
    (Rtval.as_tensor (List.hd expected))
    (Rtval.as_tensor (List.hd actual))

let test_cim_level_interchange_semantics () =
  let a = iota [| 16; 12 |] and bt = iota [| 12; 20 |] in
  let args = [ Rtval.Tensor a; Rtval.Tensor bt ] in
  let expected, _ = Interp.run_func (build_mm 16 12 20 ()) args in
  let _, f_cim =
    lower_to_cim ~opts:(cim_opts ~interchange:true ~parallel:false) (build_mm 16 12 20 ())
  in
  let st = Cnm_ref.create_state () in
  let actual, _ = Interp.run_func ~hooks:[ Cnm_ref.hook st ] f_cim args in
  check_tensor "interchanged loop nest computes the same"
    (Rtval.as_tensor (List.hd expected))
    (Rtval.as_tensor (List.hd actual))

(* ----- memristor level ----- *)

let configs =
  [
    ("cim", cim_opts ~interchange:false ~parallel:false);
    ("cim-min-writes", cim_opts ~interchange:true ~parallel:false);
    ("cim-parallel", cim_opts ~interchange:false ~parallel:true);
    ("cim-opt", cim_opts ~interchange:true ~parallel:true);
  ]

let test_memristor_all_configs_correct () =
  let a = iota [| 24; 16 |] and bt = iota [| 16; 32 |] in
  let args = [ Rtval.Tensor a; Rtval.Tensor bt ] in
  let expected, _ = Interp.run_func (build_mm 24 16 32 ()) args in
  List.iter
    (fun (name, opts) ->
      let f = lower_to_memristor ~opts (build_mm 24 16 32 ()) in
      let actual, _ = run_on_crossbar f args in
      check_tensor (name ^ " correct")
        (Rtval.as_tensor (List.hd expected))
        (Rtval.as_tensor (List.hd actual)))
    configs

let stats_for opts mm_args f =
  let f_dev = lower_to_memristor ~opts f in
  let _, stats = run_on_crossbar f_dev mm_args in
  stats

let test_min_writes_reduces_stores () =
  (* M = 64 streamed in chunks of 8 -> 8 chunks; min-writes should program
     each (k,n) tile once instead of once per chunk: 8x fewer stores *)
  let a = iota [| 64; 16 |] and bt = iota [| 16; 16 |] in
  let args = [ Rtval.Tensor a; Rtval.Tensor bt ] in
  let s_base = stats_for (cim_opts ~interchange:false ~parallel:false) args (build_mm 64 16 16 ()) in
  let s_minw = stats_for (cim_opts ~interchange:true ~parallel:false) args (build_mm 64 16 16 ()) in
  Alcotest.(check int) "baseline stores = chunks * kt * nt" (8 * 2 * 2)
    s_base.Msim.Stats.store_ops;
  Alcotest.(check int) "min-writes stores = kt * nt" (2 * 2) s_minw.Msim.Stats.store_ops;
  Alcotest.(check bool) "min-writes faster" true
    (Msim.Stats.total_s s_minw < Msim.Stats.total_s s_base)

let test_parallel_overlaps_tiles () =
  let a = iota [| 16; 16 |] and bt = iota [| 16; 32 |] in
  let args = [ Rtval.Tensor a; Rtval.Tensor bt ] in
  let s_base = stats_for (cim_opts ~interchange:false ~parallel:false) args (build_mm 16 16 32 ()) in
  let s_par = stats_for (cim_opts ~interchange:false ~parallel:true) args (build_mm 16 16 32 ()) in
  (* same MVM work, used tiles > 1, shorter makespan *)
  Alcotest.(check int) "same mvm count" s_base.Msim.Stats.mvms s_par.Msim.Stats.mvms;
  let used = Array.fold_left (fun acc w -> acc + min 1 w) 0 s_par.Msim.Stats.endurance_writes in
  Alcotest.(check bool) "multiple tiles used" true (used > 1);
  Alcotest.(check bool)
    (Printf.sprintf "parallel faster (%.3g < %.3g)" (Msim.Stats.total_s s_par)
       (Msim.Stats.total_s s_base))
    true
    (Msim.Stats.total_s s_par < Msim.Stats.total_s s_base)

let test_opt_is_fastest () =
  let a = iota [| 64; 16 |] and bt = iota [| 16; 32 |] in
  let args = [ Rtval.Tensor a; Rtval.Tensor bt ] in
  let times =
    List.map
      (fun (name, opts) ->
        (name, Msim.Stats.total_s (stats_for opts args (build_mm 64 16 32 ()))))
      configs
  in
  let t name = List.assoc name times in
  Alcotest.(check bool) "opt <= min-writes" true (t "cim-opt" <= t "cim-min-writes");
  Alcotest.(check bool) "opt <= parallel" true (t "cim-opt" <= t "cim-parallel");
  Alcotest.(check bool) "opt < baseline" true (t "cim-opt" < t "cim")

let test_gemv_on_cim () =
  let build () =
    let f =
      Func.create ~name:"mv" ~arg_tys:[ tensor [| 16; 12 |]; tensor [| 12 |] ]
        ~result_tys:[ tensor [| 16 |] ]
    in
    let b = Builder.for_func f in
    Func_d.return b [ Linalg_d.matvec b (Func.param f 0) (Func.param f 1) ];
    f
  in
  let a = iota [| 16; 12 |] and x = iota [| 12 |] in
  let args = [ Rtval.Tensor a; Rtval.Tensor x ] in
  let expected, _ = Interp.run_func (build ()) args in
  let f_dev = lower_to_memristor (build ()) in
  let actual, _ = run_on_crossbar f_dev args in
  check_tensor "gemv on crossbar"
    (Rtval.as_tensor (List.hd expected))
    (Rtval.as_tensor (List.hd actual))

let test_capacity_guard () =
  (* requesting more tiles than the device has must fail *)
  let f = Func.create ~name:"bad" ~arg_tys:[] ~result_tys:[] in
  let b = Builder.for_func f in
  let _ = Memristor_d.alloc b ~rows:64 ~cols:64 ~tiles:99 in
  Func_d.return b [];
  match run_on_crossbar f [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected capacity failure"

let test_oversized_weights_guard () =
  let f = Func.create ~name:"bad" ~arg_tys:[ tensor [| 128; 128 |] ] ~result_tys:[] in
  let b = Builder.for_func f in
  let id = Memristor_d.alloc b ~rows:64 ~cols:64 ~tiles:1 in
  Memristor_d.store_tile b id ~tile:0 (Func.param f 0);
  Func_d.return b [];
  match run_on_crossbar f [ Rtval.Tensor (iota [| 128; 128 |]) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected oversized-weights failure"

(* qcheck: all four configs agree with the host on random shapes *)
let prop_cim_configs_agree =
  QCheck.Test.make ~name:"all cim configs == host (random shapes)" ~count:8
    QCheck.(triple (1 -- 20) (1 -- 20) (1 -- 20))
    (fun (m, k, n) ->
      let a = iota [| m; k |] and bt = iota [| k; n |] in
      let args = [ Rtval.Tensor a; Rtval.Tensor bt ] in
      let expected, _ = Interp.run_func (build_mm m k n ()) args in
      List.for_all
        (fun (_, opts) ->
          let f = lower_to_memristor ~opts (build_mm m k n ()) in
          let actual, _ = run_on_crossbar f args in
          Tensor.equal (Rtval.as_tensor (List.hd expected)) (Rtval.as_tensor (List.hd actual)))
        configs)

let () =
  Alcotest.run "cim"
    [
      ( "cim level",
        [
          Alcotest.test_case "gemm" `Quick test_cim_level_gemm;
          Alcotest.test_case "interchange" `Quick test_cim_level_interchange_semantics;
        ] );
      ( "memristor level",
        [
          Alcotest.test_case "all configs correct" `Quick test_memristor_all_configs_correct;
          Alcotest.test_case "min-writes reduces stores" `Quick test_min_writes_reduces_stores;
          Alcotest.test_case "parallel overlaps tiles" `Quick test_parallel_overlaps_tiles;
          Alcotest.test_case "opt fastest" `Quick test_opt_is_fastest;
          Alcotest.test_case "gemv" `Quick test_gemv_on_cim;
        ] );
      ( "failure injection",
        [
          Alcotest.test_case "tile capacity" `Quick test_capacity_guard;
          Alcotest.test_case "oversized weights" `Quick test_oversized_weights_guard;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_cim_configs_agree ]);
    ]
