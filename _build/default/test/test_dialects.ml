(* Systematic verifier coverage: for each dialect, valid constructions must
   verify and representative invalid ones must be rejected with the right
   structural error. *)

open Cinm_ir
open Cinm_dialects
module T = Types

let () = Registry.ensure_all ()

let tensor shape = T.Tensor (shape, T.I32)

(* Build a function body with [f], then report the number of verifier
   errors. *)
let errors_of ~arg_tys (f : Builder.t -> Ir.value list -> unit) =
  let fn = Func.create ~name:"t" ~arg_tys ~result_tys:[] in
  let b = Builder.for_func fn in
  f b (Func.params fn);
  Func_d.return b [];
  List.length (Verifier.verify_func fn)

let check_valid name ~arg_tys f =
  Alcotest.(check int) (name ^ " verifies") 0 (errors_of ~arg_tys f)

let check_invalid name ~arg_tys f =
  Alcotest.(check bool) (name ^ " rejected") true (errors_of ~arg_tys f > 0)

(* ----- arith ----- *)

let test_arith () =
  check_valid "addi" ~arg_tys:[ T.Scalar T.I32; T.Scalar T.I32 ] (fun b ps ->
      ignore (Arith.addi b (List.nth ps 0) (List.nth ps 1)));
  check_invalid "addi type mismatch" ~arg_tys:[ T.Scalar T.I32; T.Index ] (fun b ps ->
      ignore
        (Builder.build1 b "arith.addi"
           ~operands:[ List.nth ps 0; List.nth ps 1 ]
           ~result_tys:[ T.Scalar T.I32 ]));
  check_invalid "cmpi without predicate" ~arg_tys:[ T.Scalar T.I32; T.Scalar T.I32 ]
    (fun b ps ->
      ignore
        (Builder.build1 b "arith.cmpi"
           ~operands:[ List.nth ps 0; List.nth ps 1 ]
           ~result_tys:[ T.Scalar T.I1 ]));
  check_invalid "cmpi wrong result type" ~arg_tys:[ T.Scalar T.I32; T.Scalar T.I32 ]
    (fun b ps ->
      ignore
        (Builder.build1 b "arith.cmpi"
           ~operands:[ List.nth ps 0; List.nth ps 1 ]
           ~attrs:[ ("predicate", Attr.Str "slt") ]
           ~result_tys:[ T.Scalar T.I32 ]));
  check_invalid "select non-bool condition"
    ~arg_tys:[ T.Scalar T.I32; T.Scalar T.I32; T.Scalar T.I32 ] (fun b ps ->
      ignore
        (Builder.build1 b "arith.select" ~operands:ps ~result_tys:[ T.Scalar T.I32 ]))

(* ----- tensor ----- *)

let test_tensor () =
  check_valid "extract_slice" ~arg_tys:[ tensor [| 8; 8 |] ] (fun b ps ->
      ignore
        (Tensor_d.extract_slice b (List.hd ps) ~offsets:[| 2; 2 |] ~sizes:[| 4; 4 |]
           ~dyn_offsets:[]));
  check_invalid "extract_slice result/sizes mismatch" ~arg_tys:[ tensor [| 8; 8 |] ]
    (fun b ps ->
      ignore
        (Builder.build1 b "tensor.extract_slice" ~operands:[ List.hd ps ]
           ~attrs:[ ("offsets", Attr.Ints [| 0; 0 |]); ("sizes", Attr.Ints [| 4; 4 |]) ]
           ~result_tys:[ tensor [| 4; 5 |] ]));
  check_invalid "reshape element count" ~arg_tys:[ tensor [| 4; 4 |] ] (fun b ps ->
      ignore
        (Builder.build1 b "tensor.reshape" ~operands:[ List.hd ps ]
           ~attrs:[ ("shape", Attr.Ints [| 3; 5 |]) ]
           ~result_tys:[ tensor [| 3; 5 |] ]));
  check_invalid "extract index arity" ~arg_tys:[ tensor [| 4; 4 |] ] (fun b ps ->
      let i = Arith.const_index b 0 in
      ignore
        (Builder.build1 b "tensor.extract"
           ~operands:[ List.hd ps; i ]
           ~result_tys:[ T.Scalar T.I32 ]))

(* ----- memref / scf ----- *)

let test_memref_scf () =
  check_valid "alloc/load/store" ~arg_tys:[] (fun b _ ->
      let m = Memref_d.alloc b [| 4 |] T.I32 in
      let i = Arith.const_index b 1 in
      let v = Arith.constant b 3 in
      Memref_d.store b v m [ i ];
      ignore (Memref_d.load b m [ i ]));
  check_invalid "load wrong index arity" ~arg_tys:[] (fun b _ ->
      let m = Memref_d.alloc b [| 4; 4 |] T.I32 in
      let i = Arith.const_index b 0 in
      ignore (Builder.build1 b "memref.load" ~operands:[ m; i ] ~result_tys:[ T.Scalar T.I32 ]));
  check_valid "scf.for with iter_args" ~arg_tys:[ T.Scalar T.I32 ] (fun b ps ->
      let c0 = Arith.const_index b 0 in
      let c4 = Arith.const_index b 4 in
      let c1 = Arith.const_index b 1 in
      ignore
        (Scf_d.for_ b ~lb:c0 ~ub:c4 ~step:c1 ~init:[ List.hd ps ] (fun bb _ iters ->
             [ Arith.addi bb iters.(0) iters.(0) ])));
  check_invalid "scf.for yield arity" ~arg_tys:[ T.Scalar T.I32 ] (fun b ps ->
      let c0 = Arith.const_index b 0 in
      let region =
        Builder.build_region ~arg_tys:[ T.Index; T.Scalar T.I32 ] (fun bb _ ->
            Scf_d.yield bb [])
      in
      ignore
        (Builder.build b "scf.for"
           ~operands:[ c0; c0; c0; List.hd ps ]
           ~result_tys:[ T.Scalar T.I32 ] ~regions:[ region ]));
  check_invalid "scf.for non-index iv" ~arg_tys:[ T.Scalar T.I32 ] (fun b ps ->
      let c0 = Arith.const_index b 0 in
      let region =
        Builder.build_region ~arg_tys:[ T.Scalar T.I32; T.Scalar T.I32 ] (fun bb args ->
            Scf_d.yield bb [ args.(1) ])
      in
      ignore
        (Builder.build b "scf.for"
           ~operands:[ c0; c0; c0; List.hd ps ]
           ~result_tys:[ T.Scalar T.I32 ] ~regions:[ region ]))

(* ----- linalg / cinm ----- *)

let test_linalg_cinm () =
  check_invalid "matmul inner dim" ~arg_tys:[ tensor [| 4; 5 |]; tensor [| 6; 4 |] ]
    (fun b ps ->
      ignore
        (Builder.build1 b "linalg.matmul"
           ~operands:[ List.nth ps 0; List.nth ps 1 ]
           ~result_tys:[ tensor [| 4; 4 |] ]));
  check_invalid "transpose perms rank" ~arg_tys:[ tensor [| 4; 5 |] ] (fun b ps ->
      ignore
        (Builder.build1 b "linalg.transpose" ~operands:[ List.hd ps ]
           ~attrs:[ ("perms", Attr.Ints [| 0 |]) ]
           ~result_tys:[ tensor [| 5; 4 |] ]));
  check_invalid "einsum bad spec" ~arg_tys:[ tensor [| 2; 2 |]; tensor [| 2; 2 |] ]
    (fun b ps ->
      ignore
        (Builder.build1 b "linalg.einsum"
           ~operands:[ List.nth ps 0; List.nth ps 1 ]
           ~attrs:[ ("spec", Attr.Str "nonsense") ]
           ~result_tys:[ tensor [| 2; 2 |] ]));
  check_invalid "histogram bins mismatch" ~arg_tys:[ tensor [| 16 |] ] (fun b ps ->
      ignore
        (Builder.build1 b "cinm.histogram" ~operands:[ List.hd ps ]
           ~attrs:[ ("bins", Attr.Int 8) ]
           ~result_tys:[ tensor [| 4 |] ]));
  check_invalid "topk result dims" ~arg_tys:[ tensor [| 16 |] ] (fun b ps ->
      ignore
        (Builder.build b "cinm.topk" ~operands:[ List.hd ps ]
           ~attrs:[ ("k", Attr.Int 3) ]
           ~result_tys:[ tensor [| 4 |]; tensor [| 4 |] ]));
  check_invalid "ew_expr operand type mismatch"
    ~arg_tys:[ tensor [| 8 |]; tensor [| 4 |] ] (fun b ps ->
      ignore
        (Builder.build1 b "cinm.ew_expr" ~operands:ps
           ~attrs:[ ("expr", Attr.Strs [ "in0"; "in1"; "add" ]) ]
           ~result_tys:[ tensor [| 8 |] ]))

(* ----- cnm ----- *)

let wg_2x2 b = Cnm_d.workgroup b ~shape:[| 2; 2 |] ~physical_dims:[ "dpu"; "thread" ]

let test_cnm () =
  check_valid "scatter block" ~arg_tys:[ tensor [| 16 |] ] (fun b ps ->
      let wg = wg_2x2 b in
      let buf = Cnm_d.alloc b wg ~shape:[| 4 |] ~dtype:T.I32 ~level:0 in
      ignore (Cnm_d.scatter b (List.hd ps) buf wg ~map:"block"));
  check_invalid "scatter wrong total" ~arg_tys:[ tensor [| 15 |] ] (fun b ps ->
      let wg = wg_2x2 b in
      let buf = Cnm_d.alloc b wg ~shape:[| 4 |] ~dtype:T.I32 ~level:0 in
      ignore (Cnm_d.scatter b (List.hd ps) buf wg ~map:"block"));
  check_invalid "scatter unknown map" ~arg_tys:[ tensor [| 16 |] ] (fun b ps ->
      let wg = wg_2x2 b in
      let buf = Cnm_d.alloc b wg ~shape:[| 4 |] ~dtype:T.I32 ~level:0 in
      ignore (Cnm_d.scatter b (List.hd ps) buf wg ~map:"zigzag"));
  check_valid "scatter broadcast level 1" ~arg_tys:[ tensor [| 4 |] ] (fun b ps ->
      let wg = wg_2x2 b in
      let buf = Cnm_d.alloc b wg ~shape:[| 4 |] ~dtype:T.I32 ~level:1 in
      ignore (Cnm_d.scatter b (List.hd ps) buf wg ~map:"broadcast"));
  check_valid "scatter overlap" ~arg_tys:[ tensor [| 10 |] ] (fun b ps ->
      let wg = wg_2x2 b in
      (* 4 buffers x (4 - 2) + 2 = 10 *)
      let buf = Cnm_d.alloc b wg ~shape:[| 4 |] ~dtype:T.I32 ~level:0 in
      ignore (Cnm_d.scatter b (List.hd ps) buf wg ~halo:2 ~map:"overlap"));
  check_invalid "overlap without halo" ~arg_tys:[ tensor [| 10 |] ] (fun b ps ->
      let wg = wg_2x2 b in
      let buf = Cnm_d.alloc b wg ~shape:[| 4 |] ~dtype:T.I32 ~level:0 in
      ignore (Cnm_d.scatter b (List.hd ps) buf wg ~map:"overlap"));
  check_invalid "gather size mismatch" ~arg_tys:[] (fun b _ ->
      let wg = wg_2x2 b in
      let buf = Cnm_d.alloc b wg ~shape:[| 4 |] ~dtype:T.I32 ~level:0 in
      ignore (Cnm_d.gather b buf wg ~result_shape:[| 15 |]));
  check_valid "launch" ~arg_tys:[] (fun b _ ->
      let wg = wg_2x2 b in
      let buf = Cnm_d.alloc b wg ~shape:[| 4 |] ~dtype:T.I32 ~level:0 in
      ignore (Cnm_d.launch b wg ~ins:[] ~outs:[ buf ] (fun _ _ -> ())));
  check_invalid "launch body arg mismatch" ~arg_tys:[] (fun b _ ->
      let wg = wg_2x2 b in
      let buf = Cnm_d.alloc b wg ~shape:[| 4 |] ~dtype:T.I32 ~level:0 in
      let region =
        Builder.build_region ~arg_tys:[ T.MemRef ([| 5 |], T.I32) ] (fun bb _ ->
            Builder.build0 bb "cnm.terminator")
      in
      ignore
        (Builder.build1 b "cnm.launch" ~operands:[ wg; buf ]
           ~attrs:[ ("n_inputs", Attr.Int 0) ]
           ~regions:[ region ] ~result_tys:[ T.Token ]));
  check_invalid "launch body missing terminator" ~arg_tys:[] (fun b _ ->
      let wg = wg_2x2 b in
      let buf = Cnm_d.alloc b wg ~shape:[| 4 |] ~dtype:T.I32 ~level:0 in
      let region =
        Builder.build_region ~arg_tys:[ T.MemRef ([| 4 |], T.I32) ] (fun _ _ -> ())
      in
      ignore
        (Builder.build1 b "cnm.launch" ~operands:[ wg; buf ]
           ~attrs:[ ("n_inputs", Attr.Int 0) ]
           ~regions:[ region ] ~result_tys:[ T.Token ]))

(* launch bodies are isolated from above: outer values may not leak in *)
let test_launch_isolation () =
  check_invalid "launch captures outer value" ~arg_tys:[] (fun b _ ->
      let wg = wg_2x2 b in
      let buf = Cnm_d.alloc b wg ~shape:[| 4 |] ~dtype:T.I32 ~level:0 in
      let outer = Arith.constant b 42 in
      ignore
        (Cnm_d.launch b wg ~ins:[] ~outs:[ buf ] (fun bb args ->
             let c0 = Arith.const_index bb 0 in
             (* illegal: [outer] is defined outside the launch *)
             Memref_d.store bb outer args.(0) [ c0 ])))

(* ----- cim / memristor / upmem ----- *)

let test_cim () =
  check_valid "acquire/execute/release" ~arg_tys:[ tensor [| 4; 4 |]; tensor [| 4; 4 |] ]
    (fun b ps ->
      let id = Cim_d.acquire b ~rows:4 ~cols:4 ~tiles:1 in
      ignore
        (Cim_d.execute b id ~inputs:ps ~result_tys:[ tensor [| 4; 4 |] ] (fun bb args ->
             [ Cinm_d.gemm bb args.(0) args.(1) ]));
      Cim_d.barrier b id;
      Cim_d.release b id);
  check_invalid "execute yield arity" ~arg_tys:[ tensor [| 4; 4 |] ] (fun b ps ->
      let id = Cim_d.acquire b ~rows:4 ~cols:4 ~tiles:1 in
      let region =
        Builder.build_region ~arg_tys:[ tensor [| 4; 4 |] ] (fun bb _ -> Cim_d.yield bb [])
      in
      ignore
        (Builder.build b "cim.execute"
           ~operands:[ id; List.hd ps ]
           ~result_tys:[ tensor [| 4; 4 |] ]
           ~regions:[ region ]));
  check_invalid "release non-id" ~arg_tys:[ tensor [| 4 |] ] (fun b ps ->
      ignore (Builder.build0 b "cim.release" ~operands:[ List.hd ps ]))

let test_upmem_memristor () =
  check_valid "dma pair" ~arg_tys:[] (fun b _ ->
      let wg = Upmem_d.alloc_dpus b ~dimms:1 ~dpus:2 ~tasklets:2 in
      let buf = Upmem_d.alloc b wg ~shape:[| 8 |] ~dtype:T.I32 ~level:0 in
      ignore
        (Upmem_d.launch b wg ~tasklets:2 ~ins:[] ~outs:[ buf ] (fun bb args ->
             let w = Upmem_d.wram_alloc bb [| 8 |] T.I32 in
             let c0 = Arith.const_index bb 0 in
             Upmem_d.mram_read bb ~mram:args.(0) ~wram:w ~mram_off:c0 ~wram_off:c0 ~count:8;
             Upmem_d.mram_write bb ~wram:w ~mram:args.(0) ~mram_off:c0 ~wram_off:c0
               ~count:8)));
  check_invalid "dma non-index offset" ~arg_tys:[] (fun b _ ->
      let wg = Upmem_d.alloc_dpus b ~dimms:1 ~dpus:2 ~tasklets:2 in
      let buf = Upmem_d.alloc b wg ~shape:[| 8 |] ~dtype:T.I32 ~level:0 in
      ignore
        (Upmem_d.launch b wg ~tasklets:2 ~ins:[] ~outs:[ buf ] (fun bb args ->
             let w = Upmem_d.wram_alloc bb [| 8 |] T.I32 in
             let bad = Arith.constant bb 0 in
             let c0 = Arith.const_index bb 0 in
             Builder.build0 bb "upmem.mram_read"
               ~operands:[ args.(0); w; bad; c0 ]
               ~attrs:[ ("count", Attr.Int 8) ])));
  check_invalid "store_tile without tile attr" ~arg_tys:[ tensor [| 4; 4 |] ] (fun b ps ->
      let id = Memristor_d.alloc b ~rows:4 ~cols:4 ~tiles:1 in
      ignore
        (Builder.build0 b "memristor.store_tile" ~operands:[ id; List.hd ps ]))

let () =
  Alcotest.run "dialects"
    [
      ("arith", [ Alcotest.test_case "verifiers" `Quick test_arith ]);
      ("tensor", [ Alcotest.test_case "verifiers" `Quick test_tensor ]);
      ("memref+scf", [ Alcotest.test_case "verifiers" `Quick test_memref_scf ]);
      ("linalg+cinm", [ Alcotest.test_case "verifiers" `Quick test_linalg_cinm ]);
      ("cnm", [ Alcotest.test_case "verifiers" `Quick test_cnm ]);
      ("isolation", [ Alcotest.test_case "launch isolated from above" `Quick test_launch_isolation ]);
      ("cim", [ Alcotest.test_case "verifiers" `Quick test_cim ]);
      ("upmem+memristor", [ Alcotest.test_case "verifiers" `Quick test_upmem_memristor ]);
    ]
