(* Tests for the runtime tensor library and the reference interpreter. *)

open Cinm_ir
open Cinm_dialects
open Cinm_interp
module T = Types

let () = Registry.ensure_all ()

let tensor shape = T.Tensor (shape, T.I32)

let iota shape = Tensor.init shape (fun i -> i)

let check_tensor msg expected actual =
  if not (Tensor.equal expected actual) then
    Alcotest.failf "%s: expected %s, got %s" msg (Tensor.to_string expected)
      (Tensor.to_string actual)

(* ----- tensor kernel tests ----- *)

let test_matmul () =
  let a = Tensor.of_int_array [| 2; 2 |] [| 1; 2; 3; 4 |] in
  let b = Tensor.of_int_array [| 2; 2 |] [| 5; 6; 7; 8 |] in
  check_tensor "matmul" (Tensor.of_int_array [| 2; 2 |] [| 19; 22; 43; 50 |]) (Tensor.matmul a b)

let test_matvec () =
  let a = Tensor.of_int_array [| 2; 3 |] [| 1; 2; 3; 4; 5; 6 |] in
  let v = Tensor.of_int_array [| 3 |] [| 1; 0; -1 |] in
  check_tensor "matvec" (Tensor.of_int_array [| 2 |] [| -2; -2 |]) (Tensor.matvec a v)

let test_conv2d () =
  let img = iota [| 3; 3 |] in
  let k = Tensor.of_int_array [| 2; 2 |] [| 1; 0; 0; 1 |] in
  (* out[i][j] = img[i][j] + img[i+1][j+1] *)
  check_tensor "conv" (Tensor.of_int_array [| 2; 2 |] [| 4; 6; 10; 12 |]) (Tensor.conv_2d img k)

let test_im2col_gemm_equals_conv () =
  let img = iota [| 6; 5 |] in
  let k = Tensor.of_int_array [| 3; 3 |] [| 1; -1; 2; 0; 3; 1; -2; 1; 1 |] in
  let direct = Tensor.conv_2d img k in
  let cols = Tensor.im2col img ~kh:3 ~kw:3 in
  let kvec = Tensor.reshape k [| 9; 1 |] in
  let gemm = Tensor.matmul cols kvec in
  check_tensor "im2col+gemm == conv" direct (Tensor.reshape gemm [| 4; 3 |])

let test_transpose () =
  let a = iota [| 2; 3 |] in
  check_tensor "transpose"
    (Tensor.of_int_array [| 3; 2 |] [| 0; 3; 1; 4; 2; 5 |])
    (Tensor.transpose a [| 1; 0 |])

let test_wrap32 () =
  let a = Tensor.of_int_array [| 1 |] [| 0x7FFFFFFF |] in
  let b = Tensor.of_int_array [| 1 |] [| 1 |] in
  check_tensor "int32 wraps"
    (Tensor.of_int_array [| 1 |] [| -0x80000000 |])
    (Tensor.map2 "add" a b)

let test_histogram () =
  let a = Tensor.of_int_array [| 6 |] [| 0; 1; 1; 3; 3; 3 |] in
  check_tensor "histogram"
    (Tensor.of_int_array [| 4 |] [| 1; 2; 0; 3 |])
    (Tensor.histogram ~bins:4 a)

let test_scan_reduce () =
  let a = Tensor.of_int_array [| 4 |] [| 1; 2; 3; 4 |] in
  Alcotest.(check int) "reduce add" 10 (Tensor.reduce "add" a);
  Alcotest.(check int) "reduce max" 4 (Tensor.reduce "max" a);
  check_tensor "scan" (Tensor.of_int_array [| 4 |] [| 1; 3; 6; 10 |]) (Tensor.scan "add" a)

let test_topk () =
  let a = Tensor.of_int_array [| 5 |] [| 3; 9; 1; 9; 5 |] in
  let values, indices = Tensor.topk ~k:3 a in
  check_tensor "topk values" (Tensor.of_int_array [| 3 |] [| 9; 9; 5 |]) values;
  check_tensor "topk indices" (Tensor.of_int_array [| 3 |] [| 1; 3; 4 |]) indices

let test_pop_count () =
  let a = Tensor.of_int_array [| 2 |] [| 0b1011; 0b1 |] in
  Alcotest.(check int) "popcount" 4 (Tensor.pop_count a)

let test_majority () =
  let a = Tensor.of_int_array [| 3 |] [| 0b110; 0b011; 0b010 |] in
  (* bit0: 0,1,0 -> 0; bit1: 1,1,1 -> 1; bit2: 1,0,0 -> 0 *)
  check_tensor "majority" (Tensor.of_int_array [| 1 |] [| 0b010 |]) (Tensor.majority a)

let test_einsum_matches_matmul () =
  let a = iota [| 3; 4 |] and b = iota [| 4; 5 |] in
  check_tensor "einsum ik,kj->ij" (Tensor.matmul a b) (Tensor.einsum ~spec:"ik,kj->ij" a b)

let test_einsum_contraction () =
  (* contrs1 from the paper: C_ab = A_acd * B_dbc *)
  let a = iota [| 2; 3; 4 |] and b = iota [| 4; 2; 3 |] in
  let c = Tensor.einsum ~spec:"acd,dbc->ab" a b in
  (* check one element by brute force *)
  let expected =
    let acc = ref 0 in
    for ci = 0 to 2 do
      for d = 0 to 3 do
        acc := !acc + (Tensor.get a [| 1; ci; d |] * Tensor.get b [| d; 0; ci |])
      done
    done;
    !acc
  in
  Alcotest.(check int) "einsum element" expected (Tensor.get c [| 1; 0 |])

let test_slices () =
  let a = iota [| 4; 4 |] in
  let s = Tensor.extract_slice a ~offsets:[| 1; 2 |] ~sizes:[| 2; 2 |] in
  check_tensor "extract" (Tensor.of_int_array [| 2; 2 |] [| 6; 7; 10; 11 |]) s;
  let back = Tensor.insert_slice s (Tensor.zeros [| 4; 4 |] T.I32) ~offsets:[| 0; 0 |] in
  Alcotest.(check int) "insert" 11 (Tensor.get back [| 1; 1 |])

let test_pad () =
  let a = iota [| 2; 2 |] in
  let padded = Tensor.pad a ~low:[| 1; 0 |] ~high:[| 0; 1 |] in
  Alcotest.(check int) "pad shape" 9 (Tensor.num_elements padded);
  Alcotest.(check int) "pad zero" 0 (Tensor.get padded [| 0; 0 |]);
  Alcotest.(check int) "pad value" 0 (Tensor.get padded [| 1; 2 |]);
  Alcotest.(check int) "pad value2" 1 (Tensor.get padded [| 1; 1 |])

(* ----- interpreter tests ----- *)

let run1 f args =
  match Interp.run_func f args with
  | [ v ], _ -> v
  | vs, _ -> Alcotest.failf "expected 1 result, got %d" (List.length vs)

let test_interp_gemm () =
  let f =
    Func.create ~name:"mm" ~arg_tys:[ tensor [| 2; 2 |]; tensor [| 2; 2 |] ]
      ~result_tys:[ tensor [| 2; 2 |] ]
  in
  let b = Builder.for_func f in
  let out = Cinm_d.gemm b (Func.param f 0) (Func.param f 1) in
  Func_d.return b [ out ];
  let a = Tensor.of_int_array [| 2; 2 |] [| 1; 2; 3; 4 |] in
  let bt = Tensor.of_int_array [| 2; 2 |] [| 5; 6; 7; 8 |] in
  let r = run1 f [ Rtval.Tensor a; Rtval.Tensor bt ] in
  check_tensor "interp gemm" (Tensor.matmul a bt) (Rtval.as_tensor r)

let test_interp_loop_sum () =
  (* sum 0..9 via scf.for iter_args *)
  let f = Func.create ~name:"sum" ~arg_tys:[] ~result_tys:[ T.Index ] in
  let b = Builder.for_func f in
  let lb = Arith.const_index b 0 in
  let ub = Arith.const_index b 10 in
  let step = Arith.const_index b 1 in
  let init = Arith.const_index b 0 in
  let results =
    Scf_d.for_ b ~lb ~ub ~step ~init:[ init ] (fun bb iv iters ->
        [ Arith.addi bb iters.(0) iv ])
  in
  Func_d.return b results;
  Alcotest.(check int) "sum" 45 (Rtval.as_int (run1 f []))

let test_interp_if () =
  let f = Func.create ~name:"abs" ~arg_tys:[ T.Scalar T.I32 ] ~result_tys:[ T.Scalar T.I32 ] in
  let b = Builder.for_func f in
  let zero = Arith.constant b 0 in
  let neg = Arith.cmpi b Arith.Slt (Func.param f 0) zero in
  let results =
    Scf_d.if_ b neg
      ~then_:(fun bb -> [ Arith.subi bb zero (Func.param f 0) ])
      ~else_:(fun _ -> [ Func.param f 0 ])
      ~result_tys:[ T.Scalar T.I32 ]
  in
  Func_d.return b results;
  Alcotest.(check int) "abs -5" 5 (Rtval.as_int (run1 f [ Rtval.Int (-5) ]));
  Alcotest.(check int) "abs 7" 7 (Rtval.as_int (run1 f [ Rtval.Int 7 ]))

let test_interp_memref () =
  (* store then load through a memref *)
  let f = Func.create ~name:"mem" ~arg_tys:[] ~result_tys:[ T.Scalar T.I32 ] in
  let b = Builder.for_func f in
  let m = Memref_d.alloc b [| 4 |] T.I32 in
  let i2 = Arith.const_index b 2 in
  let v = Arith.constant b 42 in
  Memref_d.store b v m [ i2 ];
  let out = Memref_d.load b m [ i2 ] in
  Func_d.return b [ out ];
  Alcotest.(check int) "load" 42 (Rtval.as_int (run1 f []))

let test_interp_fully_connected () =
  let f =
    Func.create ~name:"fc"
      ~arg_tys:[ tensor [| 1; 2 |]; tensor [| 2; 2 |]; tensor [| 2 |] ]
      ~result_tys:[ tensor [| 1; 2 |] ]
  in
  let b = Builder.for_func f in
  let out = Tosa_d.fully_connected b (Func.param f 0) (Func.param f 1) (Func.param f 2) in
  Func_d.return b [ out ];
  let x = Tensor.of_int_array [| 1; 2 |] [| 1; 2 |] in
  let w = Tensor.of_int_array [| 2; 2 |] [| 1; 0; 0; 1 |] in
  let bias = Tensor.of_int_array [| 2 |] [| 10; 20 |] in
  let r = run1 f [ Rtval.Tensor x; Rtval.Tensor w; Rtval.Tensor bias ] in
  check_tensor "fc" (Tensor.of_int_array [| 1; 2 |] [| 11; 22 |]) (Rtval.as_tensor r)

let test_interp_profile_counts () =
  let f =
    Func.create ~name:"mm" ~arg_tys:[ tensor [| 4; 4 |]; tensor [| 4; 4 |] ]
      ~result_tys:[ tensor [| 4; 4 |] ]
  in
  let b = Builder.for_func f in
  let out = Cinm_d.gemm b (Func.param f 0) (Func.param f 1) in
  Func_d.return b [ out ];
  let _, profile = Interp.run_func f [ Rtval.Tensor (iota [| 4; 4 |]); Rtval.Tensor (iota [| 4; 4 |]) ] in
  Alcotest.(check int) "muls = m*n*k" 64 profile.Profile.mul_ops

let test_interp_call () =
  let m = Func.create_module () in
  let callee = Func.create ~name:"double" ~arg_tys:[ T.Scalar T.I32 ] ~result_tys:[ T.Scalar T.I32 ] in
  let b = Builder.for_func callee in
  Func_d.return b [ Arith.addi b (Func.param callee 0) (Func.param callee 0) ];
  Func.add_func m callee;
  let main = Func.create ~name:"main" ~arg_tys:[] ~result_tys:[ T.Scalar T.I32 ] in
  let b = Builder.for_func main in
  let c = Arith.constant b 21 in
  let call = Func_d.call b ~callee:"double" ~result_tys:[ T.Scalar T.I32 ] [ c ] in
  Func_d.return b [ Ir.result call 0 ];
  Func.add_func m main;
  let results, _ = Interp.run_in_module m "main" [] in
  Alcotest.(check int) "call" 42 (Rtval.as_int (List.hd results))

(* ----- qcheck properties ----- *)

let arb_tensor_pair =
  QCheck.(
    map
      (fun (n, xs) ->
        let n = max 1 n in
        let arr = Array.init n (fun i -> List.nth_opt xs i |> Option.value ~default:i) in
        (Tensor.of_int_array [| n |] arr, Tensor.of_int_array [| n |] (Array.map (fun x -> x * 3) arr)))
      (pair (1 -- 32) (list int)))

let prop_elementwise_comm =
  QCheck.Test.make ~name:"add is commutative under wrap32" ~count:100 arb_tensor_pair
    (fun (a, b) -> Tensor.equal (Tensor.map2 "add" a b) (Tensor.map2 "add" b a))

let prop_scan_last_is_reduce =
  QCheck.Test.make ~name:"last of scan = reduce" ~count:100 arb_tensor_pair
    (fun (a, _) ->
      let n = Tensor.num_elements a in
      Tensor.get_int (Tensor.scan "add" a) (n - 1) = Tensor.reduce "add" a)

let prop_transpose_involutive =
  QCheck.Test.make ~name:"transpose twice is identity" ~count:50
    QCheck.(pair (1 -- 10) (1 -- 10))
    (fun (m, n) ->
      let a = iota [| m; n |] in
      Tensor.equal a (Tensor.transpose (Tensor.transpose a [| 1; 0 |]) [| 1; 0 |]))

let prop_matmul_assoc_dims =
  QCheck.Test.make ~name:"(AB)C = A(BC) on small dims" ~count:25
    QCheck.(quad (1 -- 5) (1 -- 5) (1 -- 5) (1 -- 5))
    (fun (m, k, n, p) ->
      let a = Tensor.init [| m; k |] (fun i -> (i mod 7) - 3) in
      let b = Tensor.init [| k; n |] (fun i -> (i mod 5) - 2) in
      let c = Tensor.init [| n; p |] (fun i -> (i mod 3) - 1) in
      Tensor.equal (Tensor.matmul (Tensor.matmul a b) c) (Tensor.matmul a (Tensor.matmul b c)))

let prop_histogram_mass =
  QCheck.Test.make ~name:"histogram preserves in-range mass" ~count:100
    QCheck.(list (0 -- 15))
    (fun xs ->
      let xs = if xs = [] then [ 0 ] else xs in
      let a = Tensor.of_int_array [| List.length xs |] (Array.of_list xs) in
      let h = Tensor.histogram ~bins:16 a in
      Tensor.reduce "add" h = List.length xs)

let () =
  Alcotest.run "interp"
    [
      ( "tensor",
        [
          Alcotest.test_case "matmul" `Quick test_matmul;
          Alcotest.test_case "matvec" `Quick test_matvec;
          Alcotest.test_case "conv2d" `Quick test_conv2d;
          Alcotest.test_case "im2col+gemm == conv" `Quick test_im2col_gemm_equals_conv;
          Alcotest.test_case "transpose" `Quick test_transpose;
          Alcotest.test_case "int32 wrap" `Quick test_wrap32;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "scan/reduce" `Quick test_scan_reduce;
          Alcotest.test_case "topk" `Quick test_topk;
          Alcotest.test_case "popcount" `Quick test_pop_count;
          Alcotest.test_case "majority" `Quick test_majority;
          Alcotest.test_case "einsum == matmul" `Quick test_einsum_matches_matmul;
          Alcotest.test_case "einsum contraction" `Quick test_einsum_contraction;
          Alcotest.test_case "slices" `Quick test_slices;
          Alcotest.test_case "pad" `Quick test_pad;
        ] );
      ( "interp",
        [
          Alcotest.test_case "gemm" `Quick test_interp_gemm;
          Alcotest.test_case "loop sum" `Quick test_interp_loop_sum;
          Alcotest.test_case "if/abs" `Quick test_interp_if;
          Alcotest.test_case "memref" `Quick test_interp_memref;
          Alcotest.test_case "fully_connected" `Quick test_interp_fully_connected;
          Alcotest.test_case "profile counts" `Quick test_interp_profile_counts;
          Alcotest.test_case "func.call" `Quick test_interp_call;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_elementwise_comm;
          QCheck_alcotest.to_alcotest prop_scan_last_is_reduce;
          QCheck_alcotest.to_alcotest prop_transpose_involutive;
          QCheck_alcotest.to_alcotest prop_matmul_assoc_dims;
          QCheck_alcotest.to_alcotest prop_histogram_mass;
        ] );
    ]
