(* Unit tests for the individual optimization passes: loop unrolling, LICM,
   DCE, canonicalization (fold + CSE), elementwise fusion, and the
   tosa-to-linalg decomposition — each checked both structurally and for
   semantic preservation against the interpreter. *)

open Cinm_ir
open Cinm_dialects
open Cinm_transforms
open Cinm_interp
module T = Types

let () = Registry.ensure_all ()

let tensor shape = T.Tensor (shape, T.I32)
let i32 = T.Scalar T.I32

let module_of f =
  let m = Func.create_module () in
  Func.add_func m f;
  m

let count_ops name f =
  let n = ref 0 in
  Func.walk (fun op -> if op.Ir.name = name then incr n) f;
  !n

let run1 f args =
  match Interp.run_func f args with
  | [ v ], _ -> v
  | _ -> Alcotest.fail "expected one result"

(* ----- loop unrolling ----- *)

(* sum of iv*coeff over [0, trip), built with an unroll annotation *)
let build_sum_loop ~trip ~unroll () =
  let f = Func.create ~name:"sum" ~arg_tys:[ i32 ] ~result_tys:[ i32 ] in
  let b = Builder.for_func f in
  let lb = Arith.const_index b 0 in
  let ub = Arith.const_index b trip in
  let step = Arith.const_index b 1 in
  let results =
    Scf_d.for_ b ~lb ~ub ~step ~init:[ Func.param f 0 ] (fun bb iv iters ->
        let iv32 = Arith.index_cast bb iv ~to_ty:i32 in
        [ Arith.addi bb iters.(0) (Arith.muli bb iv32 iv32) ])
  in
  (match results with
  | [ r ] -> (
    match r.Ir.def with
    | Ir.Op_result (op, _) -> Ir.set_attr op "unroll" (Attr.Int unroll)
    | _ -> ())
  | _ -> assert false);
  Func_d.return b results;
  f

let test_unroll_divisible () =
  let f = build_sum_loop ~trip:12 ~unroll:4 () in
  let expected = run1 f [ Rtval.Int 100 ] in
  let f2 = build_sum_loop ~trip:12 ~unroll:4 () in
  let m = module_of f2 in
  Pass.run_pipeline [ Loop_unroll.pass ] m;
  let f2 = List.hd m.Func.funcs in
  (* the unrolled loop body has 4x the multiplies *)
  let fors = count_ops "scf.for" f2 in
  Alcotest.(check int) "still one loop" 1 fors;
  Alcotest.(check int) "4 multiplies in the body" 4 (count_ops "arith.muli" f2);
  Alcotest.(check int) "same value"
    (Rtval.as_int expected)
    (Rtval.as_int (run1 f2 [ Rtval.Int 100 ]))

let test_unroll_indivisible_is_noop () =
  let f = build_sum_loop ~trip:10 ~unroll:4 () in
  let m = module_of f in
  Pass.run_pipeline [ Loop_unroll.pass ] m;
  Alcotest.(check int) "one multiply (untouched)" 1
    (count_ops "arith.muli" (List.hd m.Func.funcs))

let prop_unroll_preserves_sum =
  QCheck.Test.make ~name:"unroll preserves loop semantics" ~count:40
    QCheck.(pair (1 -- 6) (1 -- 8))
    (fun (u, blocks) ->
      let trip = u * blocks in
      let f1 = build_sum_loop ~trip ~unroll:u () in
      let expected = Rtval.as_int (run1 f1 [ Rtval.Int 7 ]) in
      let f2 = build_sum_loop ~trip ~unroll:u () in
      let m = module_of f2 in
      Pass.run_pipeline [ Loop_unroll.pass ] m;
      Rtval.as_int (run1 (List.hd m.Func.funcs) [ Rtval.Int 7 ]) = expected)

(* ----- LICM ----- *)

let build_licm_loop () =
  (* for i: acc += (x*x) + i  — x*x is invariant *)
  let f = Func.create ~name:"licm" ~arg_tys:[ i32 ] ~result_tys:[ i32 ] in
  let b = Builder.for_func f in
  let lb = Arith.const_index b 0 in
  let ub = Arith.const_index b 8 in
  let step = Arith.const_index b 1 in
  let zero = Arith.constant b 0 in
  let results =
    Scf_d.for_ b ~lb ~ub ~step ~init:[ zero ] (fun bb iv iters ->
        let sq = Arith.muli bb (Func.param f 0) (Func.param f 0) in
        let iv32 = Arith.index_cast bb iv ~to_ty:i32 in
        [ Arith.addi bb iters.(0) (Arith.addi bb sq iv32) ])
  in
  Func_d.return b results;
  f

let ops_inside_loops f =
  let inside = ref 0 in
  Func.walk
    (fun op ->
      if op.Ir.name = "scf.for" then
        Ir.walk_region (fun o -> if o.Ir.name = "arith.muli" then incr inside) (Ir.region op 0))
    f;
  !inside

let test_licm_hoists_invariant_mul () =
  let f = build_licm_loop () in
  let expected = Rtval.as_int (run1 f [ Rtval.Int 5 ]) in
  let f2 = build_licm_loop () in
  let m = module_of f2 in
  Pass.run_pipeline [ Licm.pass ] m;
  let f2 = List.hd m.Func.funcs in
  Alcotest.(check int) "mul hoisted out of the loop" 0 (ops_inside_loops f2);
  Alcotest.(check int) "semantics preserved" expected
    (Rtval.as_int (run1 f2 [ Rtval.Int 5 ]))

let test_licm_keeps_variant_ops () =
  (* acc += i*i is NOT invariant *)
  let f = build_sum_loop ~trip:8 ~unroll:1 () in
  let m = module_of f in
  Pass.run_pipeline [ Licm.pass ] m;
  Alcotest.(check int) "variant mul stays inside" 1 (ops_inside_loops (List.hd m.Func.funcs))

let test_licm_hoists_store_tile () =
  (* mirror of the min-writes structure: store_tile with loop-invariant
     weights inside a streaming loop *)
  let f = Func.create ~name:"st" ~arg_tys:[ tensor [| 4; 4 |] ] ~result_tys:[] in
  let b = Builder.for_func f in
  let id = Memristor_d.alloc b ~rows:4 ~cols:4 ~tiles:1 in
  let lb = Arith.const_index b 0 in
  let ub = Arith.const_index b 8 in
  let step = Arith.const_index b 1 in
  Scf_d.for0 b ~lb ~ub ~step (fun bb _iv ->
      Memristor_d.store_tile bb id ~tile:0 (Func.param f 0));
  Memristor_d.release b id;
  Func_d.return b [];
  let m = module_of f in
  Pass.run_pipeline [ Licm.pass ] m;
  let f = List.hd m.Func.funcs in
  let inside = ref 0 in
  Func.walk
    (fun op ->
      if op.Ir.name = "scf.for" then
        Ir.walk_region
          (fun o -> if o.Ir.name = "memristor.store_tile" then incr inside)
          (Ir.region op 0))
    f;
  Alcotest.(check int) "store_tile hoisted" 0 !inside;
  Alcotest.(check int) "store_tile still present" 1 (count_ops "memristor.store_tile" f)

let test_licm_does_not_hoist_conflicting_stores () =
  (* two stores to the same tile in one loop: hoisting either would change
     which weights are live, so both must stay *)
  let f =
    Func.create ~name:"st2" ~arg_tys:[ tensor [| 4; 4 |]; tensor [| 4; 4 |] ]
      ~result_tys:[]
  in
  let b = Builder.for_func f in
  let id = Memristor_d.alloc b ~rows:4 ~cols:4 ~tiles:1 in
  let lb = Arith.const_index b 0 in
  let ub = Arith.const_index b 4 in
  let step = Arith.const_index b 1 in
  Scf_d.for0 b ~lb ~ub ~step (fun bb _iv ->
      Memristor_d.store_tile bb id ~tile:0 (Func.param f 0);
      Memristor_d.store_tile bb id ~tile:0 (Func.param f 1));
  Memristor_d.release b id;
  Func_d.return b [];
  let m = module_of f in
  Pass.run_pipeline [ Licm.pass ] m;
  let f = List.hd m.Func.funcs in
  let inside = ref 0 in
  Func.walk
    (fun op ->
      if op.Ir.name = "scf.for" then
        Ir.walk_region
          (fun o -> if o.Ir.name = "memristor.store_tile" then incr inside)
          (Ir.region op 0))
    f;
  Alcotest.(check int) "both stores stay inside" 2 !inside

(* ----- DCE ----- *)

let test_dce_removes_dead_chain () =
  let f = Func.create ~name:"dead" ~arg_tys:[ i32 ] ~result_tys:[ i32 ] in
  let b = Builder.for_func f in
  let dead1 = Arith.muli b (Func.param f 0) (Func.param f 0) in
  let _dead2 = Arith.addi b dead1 dead1 in
  Func_d.return b [ Func.param f 0 ];
  let m = module_of f in
  Pass.run_pipeline [ Dce.pass ] m;
  let f = List.hd m.Func.funcs in
  Alcotest.(check int) "muli removed" 0 (count_ops "arith.muli" f);
  Alcotest.(check int) "addi removed" 0 (count_ops "arith.addi" f)

let test_dce_keeps_side_effects () =
  let f = Func.create ~name:"fx" ~arg_tys:[] ~result_tys:[ i32 ] in
  let b = Builder.for_func f in
  let mem = Memref_d.alloc b [| 4 |] T.I32 in
  let c0 = Arith.const_index b 0 in
  let v = Arith.constant b 7 in
  Memref_d.store b v mem [ c0 ];
  Func_d.return b [ Memref_d.load b mem [ c0 ] ];
  let m = module_of f in
  Pass.run_pipeline [ Dce.pass ] m;
  let f = List.hd m.Func.funcs in
  Alcotest.(check int) "store kept" 1 (count_ops "memref.store" f);
  Alcotest.(check int) "still computes 7" 7 (Rtval.as_int (run1 f []))

(* ----- canonicalize ----- *)

let test_fold_constants () =
  let f = Func.create ~name:"fold" ~arg_tys:[] ~result_tys:[ i32 ] in
  let b = Builder.for_func f in
  let c3 = Arith.constant b 3 in
  let c4 = Arith.constant b 4 in
  let sum = Arith.addi b c3 c4 in
  let prod = Arith.muli b sum sum in
  Func_d.return b [ prod ];
  let m = module_of f in
  Pass.run_pipeline [ Canonicalize.pass; Canonicalize.pass ] m;
  let f = List.hd m.Func.funcs in
  Alcotest.(check int) "all arith folded" 0 (count_ops "arith.addi" f + count_ops "arith.muli" f);
  Alcotest.(check int) "result 49" 49 (Rtval.as_int (run1 f []))

let test_cse_dedups () =
  let f = Func.create ~name:"cse" ~arg_tys:[ i32 ] ~result_tys:[ i32 ] in
  let b = Builder.for_func f in
  let a1 = Arith.muli b (Func.param f 0) (Func.param f 0) in
  let a2 = Arith.muli b (Func.param f 0) (Func.param f 0) in
  Func_d.return b [ Arith.addi b a1 a2 ];
  let m = module_of f in
  Pass.run_pipeline [ Canonicalize.pass ] m;
  let f = List.hd m.Func.funcs in
  Alcotest.(check int) "one multiply after CSE" 1 (count_ops "arith.muli" f);
  Alcotest.(check int) "semantics" 32 (Rtval.as_int (run1 f [ Rtval.Int 4 ]))

let test_cse_respects_types () =
  (* constant 0 : index and 0 : i32 must not merge *)
  let f = Func.create ~name:"ty" ~arg_tys:[] ~result_tys:[ i32 ] in
  let b = Builder.for_func f in
  let ci = Arith.const_index b 0 in
  let c32 = Arith.constant b 0 in
  let mem = Memref_d.alloc b [| 1 |] T.I32 in
  Memref_d.store b c32 mem [ ci ];
  Func_d.return b [ Memref_d.load b mem [ ci ] ];
  let m = module_of f in
  Pass.run_pipeline [ Canonicalize.pass ] m;
  Alcotest.(check int) "both constants kept" 2
    (count_ops "arith.constant" (List.hd m.Func.funcs))

let prop_canonicalize_preserves_semantics =
  (* random scalar DAGs mixing constants and the argument: fold + CSE + DCE
     must not change the computed value *)
  QCheck.Test.make ~name:"canonicalize preserves random DAG semantics" ~count:60
    QCheck.(pair (list_of_size (Gen.int_range 1 12) (0 -- 5)) (list_of_size (Gen.int_range 1 12) (-9 -- 9)))
    (fun (ops, consts) ->
      let names = [| "addi"; "subi"; "muli"; "minsi"; "maxsi"; "xori" |] in
      let build () =
        let f = Func.create ~name:"dag" ~arg_tys:[ i32 ] ~result_tys:[ i32 ] in
        let b = Builder.for_func f in
        (* pool of values to draw operands from *)
        let pool = ref [ Func.param f 0 ] in
        List.iter (fun c -> pool := Arith.constant b c :: !pool) consts;
        List.iteri
          (fun i op_idx ->
            let nth k = List.nth !pool (k mod List.length !pool) in
            let v =
              Builder.build1 b
                ("arith." ^ names.(op_idx))
                ~operands:[ nth i; nth (i + op_idx + 1) ]
                ~result_tys:[ i32 ]
            in
            pool := v :: !pool)
          ops;
        Func_d.return b [ List.hd !pool ];
        f
      in
      let expected = Rtval.as_int (run1 (build ()) [ Rtval.Int 13 ]) in
      let m = module_of (build ()) in
      Pass.run_pipeline [ Canonicalize.pass; Canonicalize.pass ] m;
      Rtval.as_int (run1 (List.hd m.Func.funcs) [ Rtval.Int 13 ]) = expected)

(* ----- elementwise fusion ----- *)

let build_chain () =
  (* max(min(t - x, 1), 0): the sel predicate *)
  let f = Func.create ~name:"chain" ~arg_tys:[ tensor [| 16 |] ] ~result_tys:[ tensor [| 16 |] ] in
  let b = Builder.for_func f in
  let splat v = Builder.build1 b "tensor.splat" ~operands:[ Arith.constant b v ] ~result_tys:[ tensor [| 16 |] ] in
  let diff =
    Builder.build1 b "cinm.sub" ~operands:[ splat 5; Func.param f 0 ] ~result_tys:[ tensor [| 16 |] ]
  in
  let capped = Builder.build1 b "cinm.min" ~operands:[ diff; splat 1 ] ~result_tys:[ tensor [| 16 |] ] in
  let flags = Builder.build1 b "cinm.max" ~operands:[ capped; splat 0 ] ~result_tys:[ tensor [| 16 |] ] in
  Func_d.return b [ flags ];
  f

let test_fusion_builds_ew_expr () =
  let f = build_chain () in
  let input = Tensor.init [| 16 |] (fun i -> i - 8) in
  let expected = run1 f [ Rtval.Tensor input ] in
  let f2 = build_chain () in
  let m = module_of f2 in
  Pass.run_pipeline [ Ew_fusion.pass ] m;
  let f2 = List.hd m.Func.funcs in
  Alcotest.(check int) "one fused op" 1 (count_ops "cinm.ew_expr" f2);
  Alcotest.(check int) "chain ops gone" 0
    (count_ops "cinm.sub" f2 + count_ops "cinm.min" f2 + count_ops "cinm.max" f2);
  let actual = run1 f2 [ Rtval.Tensor input ] in
  Alcotest.(check bool) "same flags" true
    (Tensor.equal (Rtval.as_tensor expected) (Rtval.as_tensor actual))

let test_fusion_keeps_multi_use_values () =
  (* y = a + b; return y * y at tensor level: y has two uses, must not be
     folded into the mul chain twice *)
  let f =
    Func.create ~name:"mu" ~arg_tys:[ tensor [| 8 |]; tensor [| 8 |] ]
      ~result_tys:[ tensor [| 8 |] ]
  in
  let b = Builder.for_func f in
  let y = Builder.build1 b "cinm.add" ~operands:[ Func.param f 0; Func.param f 1 ] ~result_tys:[ tensor [| 8 |] ] in
  let sq = Builder.build1 b "cinm.mul" ~operands:[ y; y ] ~result_tys:[ tensor [| 8 |] ] in
  Func_d.return b [ sq ];
  let a = Tensor.init [| 8 |] (fun i -> i) in
  let bt = Tensor.init [| 8 |] (fun i -> 2 * i) in
  let expected = run1 f [ Rtval.Tensor a; Rtval.Tensor bt ] in
  let m = module_of f in
  Pass.run_pipeline [ Ew_fusion.pass ] m;
  let f = List.hd m.Func.funcs in
  let actual = run1 f [ Rtval.Tensor a; Rtval.Tensor bt ] in
  Alcotest.(check bool) "same result" true
    (Tensor.equal (Rtval.as_tensor expected) (Rtval.as_tensor actual))

let prop_fusion_preserves_chain_semantics =
  QCheck.Test.make ~name:"fusion preserves random chain semantics" ~count:40
    QCheck.(pair (list_of_size (Gen.int_range 1 5) (0 -- 4)) (list_of_size (Gen.return 8) (-20 -- 20)))
    (fun (ops, data) ->
      let names = [| "add"; "sub"; "mul"; "min"; "max" |] in
      let build () =
        let f = Func.create ~name:"c" ~arg_tys:[ tensor [| 8 |] ] ~result_tys:[ tensor [| 8 |] ] in
        let b = Builder.for_func f in
        let splat v =
          Builder.build1 b "tensor.splat" ~operands:[ Arith.constant b v ]
            ~result_tys:[ tensor [| 8 |] ]
        in
        let acc = ref (Func.param f 0) in
        List.iteri
          (fun i op_idx ->
            acc :=
              Builder.build1 b ("cinm." ^ names.(op_idx))
                ~operands:[ !acc; splat (i + 1) ]
                ~result_tys:[ tensor [| 8 |] ])
          ops;
        Func_d.return b [ !acc ];
        f
      in
      let input = Tensor.of_int_array [| 8 |] (Array.of_list data) in
      let expected = run1 (build ()) [ Rtval.Tensor input ] in
      let m = module_of (build ()) in
      Pass.run_pipeline [ Ew_fusion.pass ] m;
      let actual = run1 (List.hd m.Func.funcs) [ Rtval.Tensor input ] in
      Tensor.equal (Rtval.as_tensor expected) (Rtval.as_tensor actual))

(* ----- tosa decomposition ----- *)

let test_tosa_fc_decomposition () =
  let f =
    Func.create ~name:"fc"
      ~arg_tys:[ tensor [| 2; 3 |]; tensor [| 4; 3 |]; tensor [| 4 |] ]
      ~result_tys:[ tensor [| 2; 4 |] ]
  in
  let b = Builder.for_func f in
  Func_d.return b [ Tosa_d.fully_connected b (Func.param f 0) (Func.param f 1) (Func.param f 2) ];
  let inputs =
    [
      Rtval.Tensor (Tensor.init [| 2; 3 |] (fun i -> i));
      Rtval.Tensor (Tensor.init [| 4; 3 |] (fun i -> i - 5));
      Rtval.Tensor (Tensor.init [| 4 |] (fun i -> 10 * i));
    ]
  in
  let expected = run1 f inputs in
  let m = module_of f in
  Pass.run_pipeline [ Tosa_to_linalg.pass ] m;
  let f = List.hd m.Func.funcs in
  Alcotest.(check int) "no tosa.fully_connected" 0 (count_ops "tosa.fully_connected" f);
  Alcotest.(check int) "has transpose" 1 (count_ops "linalg.transpose" f);
  Alcotest.(check int) "has matmul" 1 (count_ops "linalg.matmul" f);
  let actual = run1 f inputs in
  Alcotest.(check bool) "same result" true
    (Tensor.equal (Rtval.as_tensor expected) (Rtval.as_tensor actual))

(* ----- cost model registry ----- *)

let test_cost_model_registry () =
  Cost_model.clear ();
  Alcotest.(check int) "empty" 0 (List.length (Cost_model.registered ()));
  Cost_model.register_reference_models ();
  Alcotest.(check int) "three models" 3 (List.length (Cost_model.registered ()));
  (* a large gemm should prefer an accelerator over the host *)
  let f = Func.create ~name:"g" ~arg_tys:[ tensor [| 256; 256 |]; tensor [| 256; 256 |] ] ~result_tys:[ tensor [| 256; 256 |] ] in
  let b = Builder.for_func f in
  let g = Cinm_d.gemm b (Func.param f 0) (Func.param f 1) in
  Func_d.return b [ g ];
  let gemm_op = match g.Ir.def with Ir.Op_result (op, _) -> op | _ -> assert false in
  (match Cost_model.best_device gemm_op with
  | Some d -> Alcotest.(check bool) "accelerator preferred" true (d = "cim" || d = "cnm")
  | None -> Alcotest.fail "no estimate");
  Cost_model.clear ()

let () =
  Alcotest.run ~and_exit:false "passes"
    [
      ( "loop-unroll",
        [
          Alcotest.test_case "divisible trip" `Quick test_unroll_divisible;
          Alcotest.test_case "indivisible is noop" `Quick test_unroll_indivisible_is_noop;
          QCheck_alcotest.to_alcotest prop_unroll_preserves_sum;
        ] );
      ( "licm",
        [
          Alcotest.test_case "hoists invariant mul" `Quick test_licm_hoists_invariant_mul;
          Alcotest.test_case "keeps variant ops" `Quick test_licm_keeps_variant_ops;
          Alcotest.test_case "hoists store_tile" `Quick test_licm_hoists_store_tile;
          Alcotest.test_case "keeps conflicting stores" `Quick
            test_licm_does_not_hoist_conflicting_stores;
        ] );
      ( "dce",
        [
          Alcotest.test_case "removes dead chain" `Quick test_dce_removes_dead_chain;
          Alcotest.test_case "keeps side effects" `Quick test_dce_keeps_side_effects;
        ] );
      ( "canonicalize",
        [
          Alcotest.test_case "folds constants" `Quick test_fold_constants;
          Alcotest.test_case "cse dedups" `Quick test_cse_dedups;
          Alcotest.test_case "cse respects types" `Quick test_cse_respects_types;
          QCheck_alcotest.to_alcotest prop_canonicalize_preserves_semantics;
        ] );
      ( "ew-fusion",
        [
          Alcotest.test_case "builds ew_expr" `Quick test_fusion_builds_ew_expr;
          Alcotest.test_case "keeps multi-use values" `Quick test_fusion_keeps_multi_use_values;
          QCheck_alcotest.to_alcotest prop_fusion_preserves_chain_semantics;
        ] );
      ( "front-end",
        [ Alcotest.test_case "tosa fc decomposition" `Quick test_tosa_fc_decomposition ] );
      ( "cost-model",
        [ Alcotest.test_case "registry + best device" `Quick test_cost_model_registry ] );
    ]

(* appended: workgroup-transform analysis (paper Fig. 8) *)
let () =
  let open Workgroup_analysis in
  let test_fig8_formula () =
    (* tree (i,j,k) must reproduce the paper's closed form exactly *)
    let m, p, n, o = (8, 5, 3, 4) in
    let expr = paper_example ~m ~p ~n ~o in
    Alcotest.(check int) "paper (i,j,k) footprint"
      (paper_ijk_footprint ~m ~p ~n ~o)
      (footprint expr [ 'i'; 'j'; 'k' ]);
    (* the (j,k) tree shares A at the root; never worse than the paper's
       per-PU accounting for the same axes *)
    Alcotest.(check bool) "jk tree <= paper jk form" true
      (footprint expr [ 'j'; 'k' ] <= paper_jk_footprint ~m ~p ~n ~o)
  in
  let test_fig8_large_m_prefers_jk () =
    (* the paper's conclusion: for large M, parallelizing over (j,k) beats
       (i,j,k) *)
    let expr = paper_example ~m:1000 ~p:8 ~n:4 ~o:4 in
    Alcotest.(check bool) "jk cheaper than ijk for large M" true
      (footprint expr [ 'j'; 'k' ] < footprint expr [ 'i'; 'j'; 'k' ]);
    (* the chosen workgroup is never worse than either of the paper's two
       candidate layouts *)
    let _, best_fp, _ = best expr in
    Alcotest.(check bool) "best <= both paper forms" true
      (best_fp <= paper_ijk_footprint ~m:1000 ~p:8 ~n:4 ~o:4
      && best_fp <= paper_jk_footprint ~m:1000 ~p:8 ~n:4 ~o:4)
  in
  let test_fig8_rank_sorted () =
    let expr = paper_example ~m:16 ~p:4 ~n:4 ~o:4 in
    let ranked = rank expr in
    let footprints = List.map (fun (_, f, _) -> f) ranked in
    Alcotest.(check bool) "ranked ascending" true
      (List.sort compare footprints = footprints)
  in
  Alcotest.run "workgroup-analysis"
    [
      ( "fig8",
        [
          Alcotest.test_case "paper formula" `Quick test_fig8_formula;
          Alcotest.test_case "large M prefers jk" `Quick test_fig8_large_m_prefers_jk;
          Alcotest.test_case "rank sorted" `Quick test_fig8_rank_sorted;
        ] );
    ]
