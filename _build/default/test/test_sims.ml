(* Unit tests for the device simulators and CPU models: data-distribution
   semantics, DMA, buffer levels, the timing/energy models' qualitative
   properties, and failure injection. *)

open Cinm_ir
open Cinm_dialects
open Cinm_interp
module Usim = Cinm_upmem_sim
module Msim = Cinm_memristor_sim
module Cpu = Cinm_cpu_sim
module T = Types

let () = Registry.ensure_all ()

let tensor shape = T.Tensor (shape, T.I32)

(* ----- data distribution ----- *)

let test_scatter_block () =
  let t = Tensor.init [| 8 |] (fun i -> i) in
  let bufs = Array.init 4 (fun _ -> Tensor.zeros [| 2 |] T.I32) in
  Distrib.scatter ~map:"block" t bufs;
  Alcotest.(check int) "pu1[0]" 2 (Tensor.get_int bufs.(1) 0);
  Alcotest.(check int) "pu3[1]" 7 (Tensor.get_int bufs.(3) 1)

let test_scatter_cyclic () =
  let t = Tensor.init [| 8 |] (fun i -> i) in
  let bufs = Array.init 4 (fun _ -> Tensor.zeros [| 2 |] T.I32) in
  Distrib.scatter ~map:"cyclic" t bufs;
  Alcotest.(check int) "pu1[0]" 1 (Tensor.get_int bufs.(1) 0);
  Alcotest.(check int) "pu1[1]" 5 (Tensor.get_int bufs.(1) 1)

let test_scatter_overlap () =
  (* 4 buffers of 4 with halo 2: chunk = 2, total = 4*2+2 = 10 *)
  let t = Tensor.init [| 10 |] (fun i -> i) in
  let bufs = Array.init 4 (fun _ -> Tensor.zeros [| 4 |] T.I32) in
  Distrib.scatter ~halo:2 ~map:"overlap" t bufs;
  Alcotest.(check (array int)) "pu0" [| 0; 1; 2; 3 |] (Tensor.to_int_array bufs.(0));
  Alcotest.(check (array int)) "pu2" [| 4; 5; 6; 7 |] (Tensor.to_int_array bufs.(2))

let prop_scatter_gather_roundtrip =
  QCheck.Test.make ~name:"scatter/gather roundtrip (block & cyclic)" ~count:60
    QCheck.(pair (1 -- 8) (1 -- 8))
    (fun (pus, per) ->
      let n = pus * per in
      let t = Tensor.init [| n |] (fun i -> (i * 31) mod 97) in
      List.for_all
        (fun map ->
          let bufs = Array.init pus (fun _ -> Tensor.zeros [| per |] T.I32) in
          Distrib.scatter ~map t bufs;
          if map = "block" then
            Tensor.equal t (Distrib.gather bufs ~result_shape:[| n |] ~dtype:T.I32)
          else true (* cyclic gather is not the inverse layout; only check block *))
        [ "block"; "cyclic" ])

(* ----- buffer levels (paper Fig. 7) ----- *)

let test_buffers_at_level () =
  Alcotest.(check int) "level 0" 16 (Cnm_d.buffers_at_level [| 8; 2 |] 0);
  Alcotest.(check int) "level 1" 8 (Cnm_d.buffers_at_level [| 8; 2 |] 1);
  Alcotest.(check int) "level 2" 1 (Cnm_d.buffers_at_level [| 8; 2 |] 2);
  Alcotest.(check int) "pu 5 -> buffer 2 at level 1" 2
    (Cnm_d.buffer_index_of_pu [| 8; 2 |] 1 5)

let test_level1_buffer_shared_per_dpu () =
  (* a level-1 buffer written by tasklet 0 must be visible to tasklet 1 of
     the same DPU but not to other DPUs *)
  let f = Func.create ~name:"lvl" ~arg_tys:[ tensor [| 2 |] ] ~result_tys:[ tensor [| 8 |] ] in
  let b = Builder.for_func f in
  let wg = Cnm_d.workgroup b ~shape:[| 2; 2 |] ~physical_dims:[ "dpu"; "thread" ] in
  let shared = Cnm_d.alloc b wg ~shape:[| 1 |] ~dtype:T.I32 ~level:1 in
  let out = Cnm_d.alloc b wg ~shape:[| 2 |] ~dtype:T.I32 ~level:0 in
  let t1 = Cnm_d.scatter b (Func.param f 0) shared wg ~map:"block" in
  let tok =
    Cnm_d.launch b wg ~ins:[ shared ] ~outs:[ out ] (fun bb args ->
        (* every PU copies the shared cell into both of its private slots *)
        let c0 = Arith.const_index bb 0 in
        let c1 = Arith.const_index bb 1 in
        let v = Memref_d.load bb args.(0) [ c0 ] in
        Memref_d.store bb v args.(1) [ c0 ];
        Memref_d.store bb v args.(1) [ c1 ])
  in
  let result, t2 = Cnm_d.gather b out wg ~result_shape:[| 8 |] in
  Cnm_d.wait b [ t1; tok; t2 ];
  Func_d.return b [ result ];
  let input = Tensor.of_int_array [| 2 |] [| 10; 20 |] in
  let st = Cnm_ref.create_state () in
  let results, _ = Interp.run_func ~hooks:[ Cnm_ref.hook st ] f [ Rtval.Tensor input ] in
  Alcotest.(check (array int)) "dpu0 sees 10, dpu1 sees 20"
    [| 10; 10; 10; 10; 20; 20; 20; 20 |]
    (Tensor.to_int_array (Rtval.as_tensor (List.hd results)))

(* ----- upmem machine ----- *)

let run_kernel ?(config = Usim.Config.default ~dimms:1 ()) build_body ~ins ~out_shape args =
  let f =
    Func.create ~name:"k" ~arg_tys:(List.map (fun t -> t.Tensor.shape) ins |> List.map tensor)
      ~result_tys:[ tensor out_shape ]
  in
  ignore args;
  let b = Builder.for_func f in
  let wg = Upmem_d.alloc_dpus b ~dimms:1 ~dpus:2 ~tasklets:2 in
  let in_bufs =
    List.mapi
      (fun i t ->
        let n = Tensor.num_elements t in
        let buf = Upmem_d.alloc b wg ~shape:[| n / 4 |] ~dtype:T.I32 ~level:0 in
        ignore (Upmem_d.scatter b (Func.param f i) buf wg ~map:"block");
        buf)
      ins
  in
  let out_buf =
    Upmem_d.alloc b wg
      ~shape:[| Cinm_support.Util.product_of_shape out_shape / 4 |]
      ~dtype:T.I32 ~level:0
  in
  ignore (Upmem_d.launch b wg ~tasklets:2 ~ins:in_bufs ~outs:[ out_buf ] build_body);
  let out, _ = Upmem_d.gather b out_buf wg ~result_shape:out_shape in
  Func_d.return b [ out ];
  let machine = Usim.Machine.create config in
  let results, stats = Usim.Machine.run machine f (List.map (fun t -> Rtval.Tensor t) ins) in
  (Rtval.as_tensor (List.hd results), stats)

let test_dma_offsets () =
  (* copy the input to the output reversed in 2-element blocks using both
     DMA offsets *)
  let input = Tensor.init [| 8 |] (fun i -> i + 1) in
  let body bb (args : Ir.value array) =
    let wram = Upmem_d.wram_alloc bb [| 2 |] T.I32 in
    let c0 = Arith.const_index bb 0 in
    let c1 = Arith.const_index bb 1 in
    (* read elements [0..2) of mram into wram, write them back swapped *)
    Upmem_d.mram_read bb ~mram:args.(0) ~wram ~mram_off:c0 ~wram_off:c0 ~count:2;
    let a = Memref_d.load bb wram [ c0 ] in
    let b2 = Memref_d.load bb wram [ c1 ] in
    Memref_d.store bb b2 wram [ c0 ];
    Memref_d.store bb a wram [ c1 ];
    Upmem_d.mram_write bb ~wram ~mram:args.(1) ~mram_off:c0 ~wram_off:c0 ~count:2
  in
  let out, stats = run_kernel body ~ins:[ input ] ~out_shape:[| 8 |] [] in
  Alcotest.(check (array int)) "per-PU swap" [| 2; 1; 4; 3; 6; 5; 8; 7 |]
    (Tensor.to_int_array out);
  Alcotest.(check bool) "dma bytes counted" true (stats.Usim.Stats.dma_bytes >= 8 * 4 * 2)

let test_pipeline_stall_factor () =
  (* the same total work with fewer tasklets per DPU must take longer
     (pipeline needs ~11 resident tasklets to saturate) *)
  let kernel_time ~tasklets =
    let dpus = 2 in
    let l = 64 in
    let f = Func.create ~name:"s" ~arg_tys:[] ~result_tys:[] in
    let b = Builder.for_func f in
    let wg = Upmem_d.alloc_dpus b ~dimms:1 ~dpus ~tasklets in
    let buf = Upmem_d.alloc b wg ~shape:[| l |] ~dtype:T.I32 ~level:0 in
    ignore
      (Upmem_d.launch b wg ~tasklets ~ins:[] ~outs:[ buf ] (fun bb args ->
           let c0 = Arith.const_index bb 0 in
           let c1 = Arith.const_index bb 1 in
           let cl = Arith.const_index bb l in
           let v = Arith.constant bb 3 in
           Scf_d.for0 bb ~lb:c0 ~ub:cl ~step:c1 (fun bb i ->
               Memref_d.store bb v args.(0) [ i ])));
    Func_d.return b [];
    let machine = Usim.Machine.create (Usim.Config.default ~dimms:1 ()) in
    let _, stats = Usim.Machine.run machine f [] in
    (* normalize: per-tasklet work is identical, so more tasklets = more
       total work; compare per-work-unit time *)
    stats.Usim.Stats.kernel_s /. float_of_int tasklets
  in
  Alcotest.(check bool) "2 tasklets stall more than 16 per unit of work" true
    (kernel_time ~tasklets:2 > kernel_time ~tasklets:16)

let test_host_transfer_scales_with_dimms () =
  let transfer dimms dpus =
    let f = Func.create ~name:"t" ~arg_tys:[ tensor [| 4096 |] ] ~result_tys:[] in
    let b = Builder.for_func f in
    let wg = Upmem_d.alloc_dpus b ~dimms ~dpus ~tasklets:2 in
    let buf = Upmem_d.alloc b wg ~shape:[| 4096 / (dpus * 2) |] ~dtype:T.I32 ~level:0 in
    ignore (Upmem_d.scatter b (Func.param f 0) buf wg ~map:"block");
    Func_d.return b [];
    let config = { (Usim.Config.default ~dimms ()) with Usim.Config.dpus_per_dimm = dpus / dimms } in
    let machine = Usim.Machine.create config in
    let _, stats = Usim.Machine.run machine f [ Rtval.Tensor (Tensor.zeros [| 4096 |] T.I32) ] in
    stats.Usim.Stats.host_to_device_s
  in
  Alcotest.(check bool) "4 dimms transfer faster than 1" true
    (transfer 4 8 < transfer 1 8)

let test_unknown_handle_fails () =
  let f = Func.create ~name:"bad" ~arg_tys:[] ~result_tys:[] in
  let b = Builder.for_func f in
  (* a token-typed garbage value used as a workgroup *)
  let bogus = Builder.build1 b "upmem.alloc_dpus" ~attrs:[ ("dimms", Attr.Int 1) ] ~result_tys:[ T.Workgroup [| 2; 2 |] ] in
  Upmem_d.free_dpus b bogus;
  (* free twice is fine; but alloc with a non-workgroup result type fails in verify *)
  Func_d.return b [];
  let machine = Usim.Machine.create (Usim.Config.default ~dimms:1 ()) in
  match Usim.Machine.run machine f [] with
  | _ -> () (* structurally fine *)

(* ----- memristor machine ----- *)

let crossbar_prog ~same_tile () =
  let f = Func.create ~name:"xb" ~arg_tys:[ tensor [| 8; 8 |]; tensor [| 8; 8 |] ] ~result_tys:[ tensor [| 8; 8 |] ] in
  let b = Builder.for_func f in
  let id = Memristor_d.alloc b ~rows:8 ~cols:8 ~tiles:2 in
  let t0 = 0 and t1 = if same_tile then 0 else 1 in
  Memristor_d.store_tile b id ~tile:t0 (Func.param f 1);
  Memristor_d.copy_tile b id ~tile:t0 (Func.param f 0);
  let r0 = Memristor_d.gemm_tile b id ~tile:t0 ~result_ty:(tensor [| 8; 8 |]) in
  Memristor_d.store_tile b id ~tile:t1 (Func.param f 1);
  Memristor_d.copy_tile b id ~tile:t1 (Func.param f 0);
  let r1 = Memristor_d.gemm_tile b id ~tile:t1 ~result_ty:(tensor [| 8; 8 |]) in
  Memristor_d.barrier b id;
  Memristor_d.release b id;
  let sum = Cinm_d.add b r0 r1 in
  Func_d.return b [ sum ];
  f

let run_crossbar f args =
  let machine = Msim.Machine.create (Msim.Config.default ()) in
  Msim.Machine.run machine f args

let test_crossbar_compute_and_overlap () =
  let a = Tensor.init [| 8; 8 |] (fun i -> (i mod 5) - 2) in
  let w = Tensor.init [| 8; 8 |] (fun i -> (i mod 3) - 1) in
  let args = [ Rtval.Tensor a; Rtval.Tensor w ] in
  let expected =
    let mm = Tensor.matmul a w in
    Tensor.map2 "add" mm mm
  in
  let r_same, s_same = run_crossbar (crossbar_prog ~same_tile:true ()) args in
  let r_diff, s_diff = run_crossbar (crossbar_prog ~same_tile:false ()) args in
  Alcotest.(check bool) "same-tile result" true
    (Tensor.equal expected (Rtval.as_tensor (List.hd r_same)));
  Alcotest.(check bool) "two-tile result" true
    (Tensor.equal expected (Rtval.as_tensor (List.hd r_diff)));
  Alcotest.(check bool)
    (Printf.sprintf "two tiles faster (%.3g < %.3g)" (Msim.Stats.total_s s_diff)
       (Msim.Stats.total_s s_same))
    true
    (Msim.Stats.total_s s_diff < Msim.Stats.total_s s_same);
  Alcotest.(check int) "endurance: tile0 written twice (same-tile)" 2
    s_same.Msim.Stats.endurance_writes.(0);
  Alcotest.(check int) "endurance: spread (two-tile)" 1 s_diff.Msim.Stats.endurance_writes.(1)

let test_gemm_without_weights_fails () =
  let f = Func.create ~name:"nw" ~arg_tys:[ tensor [| 4; 4 |] ] ~result_tys:[ tensor [| 4; 4 |] ] in
  let b = Builder.for_func f in
  let id = Memristor_d.alloc b ~rows:8 ~cols:8 ~tiles:1 in
  Memristor_d.copy_tile b id ~tile:0 (Func.param f 0);
  let r = Memristor_d.gemm_tile b id ~tile:0 ~result_ty:(tensor [| 4; 4 |]) in
  Func_d.return b [ r ];
  match run_crossbar f [ Rtval.Tensor (Tensor.zeros [| 4; 4 |] T.I32) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected failure: gemm with no programmed weights"

let test_energy_monotonic_in_writes () =
  let prog n_stores () =
    let f = Func.create ~name:"e" ~arg_tys:[ tensor [| 8; 8 |] ] ~result_tys:[] in
    let b = Builder.for_func f in
    let id = Memristor_d.alloc b ~rows:8 ~cols:8 ~tiles:1 in
    for _ = 1 to n_stores do
      Memristor_d.store_tile b id ~tile:0 (Func.param f 0)
    done;
    Memristor_d.release b id;
    Func_d.return b [];
    f
  in
  let energy n =
    let _, s = run_crossbar (prog n ()) [ Rtval.Tensor (Tensor.zeros [| 8; 8 |] T.I32) ] in
    s.Msim.Stats.energy_j
  in
  Alcotest.(check bool) "more writes = more energy" true (energy 5 > energy 1)

(* ----- cpu models ----- *)

let test_cpu_roofline () =
  let p_compute = Profile.create () in
  p_compute.Profile.mul_ops <- 100_000_000;
  let p_memory = Profile.create () in
  p_memory.Profile.loads <- 100_000_000;
  let est_c = Cpu.Model.estimate Cpu.Model.xeon_opt p_compute in
  let est_m = Cpu.Model.estimate Cpu.Model.xeon_opt p_memory in
  Alcotest.(check bool) "compute-bound picks compute side" true
    (est_c.Cpu.Model.time_s = est_c.Cpu.Model.compute_s
    || est_c.Cpu.Model.compute_s > est_c.Cpu.Model.memory_s);
  Alcotest.(check bool) "memory-bound picks memory side" true
    (est_m.Cpu.Model.memory_s >= est_m.Cpu.Model.compute_s)

let test_cpu_scaled () =
  let p = Profile.create () in
  p.Profile.alu_ops <- 10_000_000;
  p.Profile.loads <- 10_000_000;
  let full = Cpu.Model.estimate Cpu.Model.xeon_opt p in
  let half = Cpu.Model.estimate (Cpu.Model.scaled 0.5 Cpu.Model.xeon_opt) p in
  Alcotest.(check bool) "half-scale is ~2x slower" true
    (half.Cpu.Model.time_s > 1.8 *. full.Cpu.Model.time_s
    && half.Cpu.Model.time_s < 2.2 *. full.Cpu.Model.time_s)

let test_arm_slower_than_xeon () =
  let p = Profile.create () in
  p.Profile.mul_ops <- 1_000_000;
  p.Profile.loads <- 2_000_000;
  let arm = Cpu.Model.estimate Cpu.Model.arm_inorder p in
  let xeon = Cpu.Model.estimate Cpu.Model.xeon_opt p in
  Alcotest.(check bool) "arm slower" true (arm.Cpu.Model.time_s > xeon.Cpu.Model.time_s)

let () =
  Alcotest.run "sims"
    [
      ( "distribution",
        [
          Alcotest.test_case "block" `Quick test_scatter_block;
          Alcotest.test_case "cyclic" `Quick test_scatter_cyclic;
          Alcotest.test_case "overlap (halo)" `Quick test_scatter_overlap;
          QCheck_alcotest.to_alcotest prop_scatter_gather_roundtrip;
        ] );
      ( "buffer levels",
        [
          Alcotest.test_case "counts and indexing" `Quick test_buffers_at_level;
          Alcotest.test_case "level-1 shared per DPU" `Quick test_level1_buffer_shared_per_dpu;
        ] );
      ( "upmem machine",
        [
          Alcotest.test_case "dma offsets" `Quick test_dma_offsets;
          Alcotest.test_case "pipeline stall factor" `Quick test_pipeline_stall_factor;
          Alcotest.test_case "host transfer scales with dimms" `Quick
            test_host_transfer_scales_with_dimms;
          Alcotest.test_case "structural edge" `Quick test_unknown_handle_fails;
        ] );
      ( "memristor machine",
        [
          Alcotest.test_case "compute + tile overlap + endurance" `Quick
            test_crossbar_compute_and_overlap;
          Alcotest.test_case "gemm without weights fails" `Quick test_gemm_without_weights_fails;
          Alcotest.test_case "energy monotonic in writes" `Quick test_energy_monotonic_in_writes;
        ] );
      ( "cpu models",
        [
          Alcotest.test_case "roofline" `Quick test_cpu_roofline;
          Alcotest.test_case "scaling" `Quick test_cpu_scaled;
          Alcotest.test_case "arm slower than xeon" `Quick test_arm_slower_than_xeon;
        ] );
    ]
