(* Tests for the support library: the growable array and the shape/
   arithmetic helpers everything else builds on. *)

open Cinm_support

let test_vec_basics () =
  let v = Vec.create () in
  Alcotest.(check bool) "empty" true (Vec.is_empty v);
  for i = 0 to 99 do
    Vec.push v i
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get" 42 (Vec.get v 42);
  Vec.set v 42 (-1);
  Alcotest.(check int) "set" (-1) (Vec.get v 42);
  Alcotest.(check int) "pop" 99 (Vec.pop v);
  Alcotest.(check int) "length after pop" 99 (Vec.length v);
  Alcotest.(check int) "fold" (List.fold_left ( + ) 0 (Vec.to_list v))
    (Vec.fold_left ( + ) 0 v);
  (match Vec.get v 1000 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected out-of-bounds failure");
  Vec.clear v;
  Alcotest.(check bool) "cleared" true (Vec.is_empty v)

let test_vec_of_list_map () =
  let v = Vec.of_list [ 1; 2; 3 ] in
  let doubled = Vec.map (fun x -> 2 * x) v in
  Alcotest.(check (list int)) "map" [ 2; 4; 6 ] (Vec.to_list doubled);
  Alcotest.(check bool) "exists" true (Vec.exists (fun x -> x = 2) v);
  Alcotest.(check (array int)) "to_array" [| 1; 2; 3 |] (Vec.to_array v)

let prop_vec_push_pop =
  QCheck.Test.make ~name:"push then pop returns the same elements" ~count:100
    QCheck.(list int)
    (fun xs ->
      let v = Vec.create () in
      List.iter (Vec.push v) xs;
      (* pops come out in reverse insertion order *)
      let popped = List.map (fun _ -> Vec.pop v) xs in
      popped = List.rev xs && Vec.is_empty v)

let test_util_div_round () =
  Alcotest.(check int) "ceil_div exact" 4 (Util.ceil_div 16 4);
  Alcotest.(check int) "ceil_div up" 5 (Util.ceil_div 17 4);
  Alcotest.(check int) "round_up_to" 20 (Util.round_up_to 17 4);
  (match Util.ceil_div 1 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected failure on zero divisor")

let test_util_geomean () =
  Alcotest.(check (float 1e-9)) "geomean of powers" 4.0 (Util.geomean [ 2.0; 8.0 ]);
  (match Util.geomean [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected failure on empty");
  match Util.geomean [ 1.0; -2.0 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected failure on non-positive"

let test_util_wrap32 () =
  Alcotest.(check int) "positive overflow" (-0x80000000) (Util.add32 0x7FFFFFFF 1);
  Alcotest.(check int) "negative overflow" 0x7FFFFFFF (Util.sub32 (-0x80000000) 1);
  Alcotest.(check int) "div by zero convention" 0 (Util.div32 5 0);
  Alcotest.(check int) "mul wraps" (Util.wrap32 (0x10000 * 0x10000)) (Util.mul32 0x10000 0x10000)

let prop_linearize_roundtrip =
  QCheck.Test.make ~name:"linearize/delinearize roundtrip" ~count:100
    QCheck.(triple (1 -- 6) (1 -- 6) (1 -- 6))
    (fun (a, b, c) ->
      let shape = [| a; b; c |] in
      let n = a * b * c in
      let ok = ref true in
      for off = 0 to n - 1 do
        let idx = Util.delinearize shape off in
        if Util.linearize shape idx <> off then ok := false
      done;
      !ok)

let test_linearize_bounds () =
  match Util.linearize [| 2; 3 |] [| 1; 3 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected out-of-bounds failure"

let () =
  Alcotest.run "support"
    [
      ( "vec",
        [
          Alcotest.test_case "basics" `Quick test_vec_basics;
          Alcotest.test_case "of_list/map" `Quick test_vec_of_list_map;
          QCheck_alcotest.to_alcotest prop_vec_push_pop;
        ] );
      ( "util",
        [
          Alcotest.test_case "ceil/round" `Quick test_util_div_round;
          Alcotest.test_case "geomean" `Quick test_util_geomean;
          Alcotest.test_case "wrap32" `Quick test_util_wrap32;
          QCheck_alcotest.to_alcotest prop_linearize_roundtrip;
          Alcotest.test_case "linearize bounds" `Quick test_linearize_bounds;
        ] );
    ]
