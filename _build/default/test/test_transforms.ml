(* Differential tests for the lowering pipeline: every lowering must
   preserve the semantics of the host-level program. *)

open Cinm_ir
open Cinm_dialects
open Cinm_transforms
open Cinm_interp
module T = Types

let () = Registry.ensure_all ()

let tensor shape = T.Tensor (shape, T.I32)

let check_tensor msg expected actual =
  if not (Tensor.equal expected actual) then
    Alcotest.failf "%s: expected %s, got %s" msg (Tensor.to_string expected)
      (Tensor.to_string actual)

(* Build a single-op function, run the given passes, execute both the
   original and the transformed function and compare. *)
let module_of f =
  let m = Func.create_module () in
  Func.add_func m f;
  m

let run_with_cnm_ref f args =
  let st = Cnm_ref.create_state () in
  let results, _ = Interp.run_func ~hooks:[ Cnm_ref.hook st ] f args in
  results

let force_target target =
  Target_select.pass
    ~policy:{ Target_select.default_policy with forced_target = Some target }
    ()

let small_opts =
  { Cinm_to_cnm.dpus = 4; tasklets = 4; optimize = false; max_rows_per_launch = 4 }

let lower_to_cnm ?(opts = small_opts) f =
  let m = module_of f in
  Pass.run_pipeline
    [ Torch_to_tosa.pass; Tosa_to_linalg.pass; Linalg_to_cinm.pass; force_target "cnm";
      Cinm_to_cnm.pass ~options:opts () ]
    m;
  List.hd m.Func.funcs

let differential ?(opts = small_opts) build args =
  let f_host = build () in
  let expected, _ = Interp.run_func f_host args in
  let f_dev = lower_to_cnm ~opts (build ()) in
  let actual = run_with_cnm_ref f_dev args in
  (expected, actual, f_dev)

let iota shape = Tensor.init shape (fun i -> (i mod 23) - 11)

(* ----- linalg -> cinm ----- *)

let test_linalg_to_cinm_matmul () =
  let f =
    Func.create ~name:"mm" ~arg_tys:[ tensor [| 4; 4 |]; tensor [| 4; 4 |] ]
      ~result_tys:[ tensor [| 4; 4 |] ]
  in
  let b = Builder.for_func f in
  Func_d.return b [ Linalg_d.matmul b (Func.param f 0) (Func.param f 1) ];
  let m = module_of f in
  Pass.run_pipeline [ Linalg_to_cinm.pass ] m;
  let names = ref [] in
  Func.walk (fun op -> names := op.Ir.name :: !names) (List.hd m.Func.funcs);
  Alcotest.(check bool) "has cinm.gemm" true (List.mem "cinm.gemm" !names);
  Alcotest.(check bool) "no linalg.matmul" false (List.mem "linalg.matmul" !names)

let test_conv_rewrite_preserves_semantics () =
  let build () =
    let f =
      Func.create ~name:"conv" ~arg_tys:[ tensor [| 8; 8 |]; tensor [| 3; 3 |] ]
        ~result_tys:[ tensor [| 6; 6 |] ]
    in
    let b = Builder.for_func f in
    Func_d.return b [ Linalg_d.conv_2d b (Func.param f 0) (Func.param f 1) ];
    f
  in
  let img = iota [| 8; 8 |] and k = iota [| 3; 3 |] in
  let f_host = build () in
  let expected, _ = Interp.run_func f_host [ Rtval.Tensor img; Rtval.Tensor k ] in
  (* rewrite conv -> im2col + gemm and run on the host interpreter *)
  let f2 = build () in
  let m = module_of f2 in
  Pass.run_pipeline [ Linalg_to_cinm.pass ] m;
  let actual, _ = Interp.run_func (List.hd m.Func.funcs) [ Rtval.Tensor img; Rtval.Tensor k ] in
  check_tensor "conv == im2col+gemm"
    (Rtval.as_tensor (List.hd expected))
    (Rtval.as_tensor (List.hd actual))

let test_einsum_rewrite_contrs1 () =
  (* contrs1: C_ab = A_acd B_dbc *)
  let build () =
    let f =
      Func.create ~name:"contrs1" ~arg_tys:[ tensor [| 3; 4; 5 |]; tensor [| 5; 2; 4 |] ]
        ~result_tys:[ tensor [| 3; 2 |] ]
    in
    let b = Builder.for_func f in
    Func_d.return b [ Linalg_d.einsum b ~spec:"acd,dbc->ab" (Func.param f 0) (Func.param f 1) ];
    f
  in
  let a = iota [| 3; 4; 5 |] and bt = iota [| 5; 2; 4 |] in
  let f_host = build () in
  let expected, _ = Interp.run_func f_host [ Rtval.Tensor a; Rtval.Tensor bt ] in
  let f2 = build () in
  let m = module_of f2 in
  Pass.run_pipeline [ Linalg_to_cinm.pass ] m;
  let has_gemm = ref false in
  Func.walk (fun op -> if op.Ir.name = "cinm.gemm" then has_gemm := true) (List.hd m.Func.funcs);
  Alcotest.(check bool) "einsum became gemm" true !has_gemm;
  let actual, _ = Interp.run_func (List.hd m.Func.funcs) [ Rtval.Tensor a; Rtval.Tensor bt ] in
  check_tensor "contrs1"
    (Rtval.as_tensor (List.hd expected))
    (Rtval.as_tensor (List.hd actual))

let test_einsum_rewrite_contrl () =
  (* contrl: C_abcd = A_aebf B_dfce (two reductions e, f) *)
  let build () =
    let f =
      Func.create ~name:"contrl"
        ~arg_tys:[ tensor [| 2; 3; 2; 4 |]; tensor [| 3; 4; 2; 3 |] ]
        ~result_tys:[ tensor [| 2; 2; 2; 3 |] ]
    in
    let b = Builder.for_func f in
    Func_d.return b
      [ Linalg_d.einsum b ~spec:"aebf,dfce->abcd" (Func.param f 0) (Func.param f 1) ];
    f
  in
  let a = iota [| 2; 3; 2; 4 |] and bt = iota [| 3; 4; 2; 3 |] in
  let expected, _ = Interp.run_func (build ()) [ Rtval.Tensor a; Rtval.Tensor bt ] in
  let m = module_of (build ()) in
  Pass.run_pipeline [ Linalg_to_cinm.pass ] m;
  let actual, _ = Interp.run_func (List.hd m.Func.funcs) [ Rtval.Tensor a; Rtval.Tensor bt ] in
  check_tensor "contrl"
    (Rtval.as_tensor (List.hd expected))
    (Rtval.as_tensor (List.hd actual))

let test_torch_frontend () =
  (* torch.aten.linear + relu through torch-to-tosa + tosa-to-linalg *)
  let build () =
    let f =
      Func.create ~name:"torch_mlp"
        ~arg_tys:[ tensor [| 4; 8 |]; tensor [| 6; 8 |]; tensor [| 6 |] ]
        ~result_tys:[ tensor [| 4; 6 |] ]
    in
    let b = Builder.for_func f in
    let l = Torch_d.linear b (Func.param f 0) (Func.param f 1) (Func.param f 2) in
    Func_d.return b [ Torch_d.relu b l ];
    f
  in
  let args =
    [
      Rtval.Tensor (iota [| 4; 8 |]);
      Rtval.Tensor (iota [| 6; 8 |]);
      Rtval.Tensor (iota [| 6 |]);
    ]
  in
  (* reference: interp directly executes... torch ops have no interp
     semantics, so the reference is the lowered-but-host form *)
  let m = module_of (build ()) in
  Pass.run_pipeline [ Torch_to_tosa.pass; Tosa_to_linalg.pass ] m;
  let lowered = List.hd m.Func.funcs in
  let no_torch = ref true in
  Func.walk (fun op -> if Ir.dialect_of op = "torch" then no_torch := false) lowered;
  Alcotest.(check bool) "no torch ops left" true !no_torch;
  let expected, _ = Interp.run_func lowered args in
  (* and the same program through the full cnm pipeline *)
  let f_dev = lower_to_cnm (build ()) in
  let actual = run_with_cnm_ref f_dev args in
  check_tensor "torch mlp on cnm"
    (Rtval.as_tensor (List.hd expected))
    (Rtval.as_tensor (List.hd actual))

let test_cinm_to_scf_host_lowering () =
  (* gemm + elementwise + reduce lowered to scf loops must match direct
     cinm interpretation *)
  let build () =
    let f =
      Func.create ~name:"host" ~arg_tys:[ tensor [| 6; 4 |]; tensor [| 4; 5 |] ]
        ~result_tys:[ T.Scalar T.I32 ]
    in
    let b = Builder.for_func f in
    let mm = Cinm_d.gemm b (Func.param f 0) (Func.param f 1) in
    let sq = Cinm_d.mul b mm mm in
    Func_d.return b [ Cinm_d.reduce b ~op:"add" sq ];
    f
  in
  let args = [ Rtval.Tensor (iota [| 6; 4 |]); Rtval.Tensor (iota [| 4; 5 |]) ] in
  let expected, _ = Interp.run_func (build ()) args in
  let m = module_of (build ()) in
  Pass.run_pipeline [ Cinm_to_scf.pass ] m;
  let f = List.hd m.Func.funcs in
  let no_cinm = ref true in
  Func.walk
    (fun op -> if Ir.dialect_of op = "cinm" && op.Ir.name <> "cinm.expand" then no_cinm := false)
    f;
  Alcotest.(check bool) "no cinm compute ops left" true !no_cinm;
  let actual, _ = Interp.run_func f args in
  Alcotest.(check int) "scf lowering matches"
    (Rtval.as_int (List.hd expected))
    (Rtval.as_int (List.hd actual))

(* ----- target selection ----- *)

let test_target_select_greedy () =
  let f =
    Func.create ~name:"mm" ~arg_tys:[ tensor [| 64; 64 |]; tensor [| 64; 64 |] ]
      ~result_tys:[ tensor [| 64; 64 |] ]
  in
  let b = Builder.for_func f in
  let big = Cinm_d.gemm b (Func.param f 0) (Func.param f 1) in
  let r = Cinm_d.reduce b ~op:"add" big in
  let t = Builder.build1 b "tensor.splat" ~operands:[ r ] ~result_tys:[ tensor [| 4 |] ] in
  Func_d.return b [ t ];
  Target_select.run_on_func Target_select.default_policy f;
  let targets = Hashtbl.create 4 in
  Func.walk
    (fun op ->
      match Ir.attr op "target" with
      | Some (Attr.Str t) -> Hashtbl.replace targets op.Ir.name t
      | _ -> ())
    f;
  Alcotest.(check (option string)) "gemm -> cim" (Some "cim") (Hashtbl.find_opt targets "cinm.gemm");
  Alcotest.(check (option string)) "reduce -> cnm (Table 1: no cim reduce)" (Some "cnm")
    (Hashtbl.find_opt targets "cinm.reduce")

let test_target_select_cost_models () =
  Cost_model.clear ();
  Cost_model.register_reference_models ();
  let f =
    Func.create ~name:"mm" ~arg_tys:[ tensor [| 64; 64 |]; tensor [| 64; 64 |] ]
      ~result_tys:[ tensor [| 64; 64 |] ]
  in
  let b = Builder.for_func f in
  Func_d.return b [ Cinm_d.gemm b (Func.param f 0) (Func.param f 1) ];
  Target_select.run_on_func
    { Target_select.default_policy with use_cost_models = true }
    f;
  let target = ref None in
  Func.walk
    (fun op ->
      if op.Ir.name = "cinm.gemm" then
        match Ir.attr op "target" with Some (Attr.Str t) -> target := Some t | _ -> ())
    f;
  Cost_model.clear ();
  Alcotest.(check bool) "a target was selected" true (!target <> None)

(* ----- cinm -> cnm differential tests ----- *)

let test_cnm_gemm () =
  let build () =
    let f =
      Func.create ~name:"mm" ~arg_tys:[ tensor [| 32; 8 |]; tensor [| 8; 6 |] ]
        ~result_tys:[ tensor [| 32; 6 |] ]
    in
    let b = Builder.for_func f in
    Func_d.return b [ Linalg_d.matmul b (Func.param f 0) (Func.param f 1) ];
    f
  in
  let a = iota [| 32; 8 |] and bt = iota [| 8; 6 |] in
  let expected, actual, f_dev = differential build [ Rtval.Tensor a; Rtval.Tensor bt ] in
  let has_launch = ref false in
  Func.walk (fun op -> if op.Ir.name = "cnm.launch" then has_launch := true) f_dev;
  Alcotest.(check bool) "uses cnm.launch" true !has_launch;
  check_tensor "gemm on cnm"
    (Rtval.as_tensor (List.hd expected))
    (Rtval.as_tensor (List.hd actual))

let test_cnm_gemm_with_padding () =
  (* M = 30 does not divide the 16-PU chunk: exercises the pad path *)
  let build () =
    let f =
      Func.create ~name:"mm" ~arg_tys:[ tensor [| 30; 8 |]; tensor [| 8; 5 |] ]
        ~result_tys:[ tensor [| 30; 5 |] ]
    in
    let b = Builder.for_func f in
    Func_d.return b [ Linalg_d.matmul b (Func.param f 0) (Func.param f 1) ];
    f
  in
  let a = iota [| 30; 8 |] and bt = iota [| 8; 5 |] in
  let expected, actual, _ = differential build [ Rtval.Tensor a; Rtval.Tensor bt ] in
  check_tensor "gemm with padding"
    (Rtval.as_tensor (List.hd expected))
    (Rtval.as_tensor (List.hd actual))

let test_cnm_gemm_multi_chunk () =
  (* max_rows_per_launch 1 with 16 PUs -> several scf.for chunks *)
  let opts =
    { Cinm_to_cnm.dpus = 4; tasklets = 4; optimize = false; max_rows_per_launch = 1 }
  in
  let build () =
    let f =
      Func.create ~name:"mm" ~arg_tys:[ tensor [| 64; 4 |]; tensor [| 4; 3 |] ]
        ~result_tys:[ tensor [| 64; 3 |] ]
    in
    let b = Builder.for_func f in
    Func_d.return b [ Linalg_d.matmul b (Func.param f 0) (Func.param f 1) ];
    f
  in
  let a = iota [| 64; 4 |] and bt = iota [| 4; 3 |] in
  let expected, actual, _ = differential ~opts build [ Rtval.Tensor a; Rtval.Tensor bt ] in
  check_tensor "gemm multi-chunk"
    (Rtval.as_tensor (List.hd expected))
    (Rtval.as_tensor (List.hd actual))

let test_cnm_gemm_optimized_matches () =
  let opts = { small_opts with Cinm_to_cnm.optimize = true } in
  let build () =
    let f =
      Func.create ~name:"mm" ~arg_tys:[ tensor [| 16; 8 |]; tensor [| 8; 8 |] ]
        ~result_tys:[ tensor [| 16; 8 |] ]
    in
    let b = Builder.for_func f in
    Func_d.return b [ Linalg_d.matmul b (Func.param f 0) (Func.param f 1) ];
    f
  in
  let a = iota [| 16; 8 |] and bt = iota [| 8; 8 |] in
  let expected, actual, _ = differential ~opts build [ Rtval.Tensor a; Rtval.Tensor bt ] in
  check_tensor "interchanged kernel computes the same"
    (Rtval.as_tensor (List.hd expected))
    (Rtval.as_tensor (List.hd actual))

let test_cnm_gemv () =
  let build () =
    let f =
      Func.create ~name:"mv" ~arg_tys:[ tensor [| 32; 8 |]; tensor [| 8 |] ]
        ~result_tys:[ tensor [| 32 |] ]
    in
    let b = Builder.for_func f in
    Func_d.return b [ Linalg_d.matvec b (Func.param f 0) (Func.param f 1) ];
    f
  in
  let a = iota [| 32; 8 |] and x = iota [| 8 |] in
  let expected, actual, _ = differential build [ Rtval.Tensor a; Rtval.Tensor x ] in
  check_tensor "gemv on cnm"
    (Rtval.as_tensor (List.hd expected))
    (Rtval.as_tensor (List.hd actual))

let test_cnm_elementwise () =
  List.iter
    (fun opname ->
      let build () =
        let f =
          Func.create ~name:opname ~arg_tys:[ tensor [| 37 |]; tensor [| 37 |] ]
            ~result_tys:[ tensor [| 37 |] ]
        in
        let b = Builder.for_func f in
        Func_d.return b
          [
            Builder.build1 b ("linalg." ^ opname)
              ~operands:[ Func.param f 0; Func.param f 1 ]
              ~result_tys:[ tensor [| 37 |] ];
          ];
        f
      in
      let a = iota [| 37 |] in
      let bt = Tensor.init [| 37 |] (fun i -> (i mod 7) + 1) in
      let expected, actual, _ = differential build [ Rtval.Tensor a; Rtval.Tensor bt ] in
      check_tensor (opname ^ " on cnm")
        (Rtval.as_tensor (List.hd expected))
        (Rtval.as_tensor (List.hd actual)))
    [ "add"; "sub"; "mul"; "div"; "min"; "max" ]

let test_cnm_reduce () =
  let build () =
    let f = Func.create ~name:"red" ~arg_tys:[ tensor [| 64 |] ] ~result_tys:[ T.Scalar T.I32 ] in
    let b = Builder.for_func f in
    Func_d.return b [ Linalg_d.reduce b ~op:"add" (Func.param f 0) ];
    f
  in
  let a = iota [| 64 |] in
  let expected, actual, _ = differential build [ Rtval.Tensor a ] in
  Alcotest.(check int) "reduce on cnm"
    (Rtval.as_int (List.hd expected))
    (Rtval.as_int (List.hd actual))

let cinm_only build =
 fun () ->
  let f = build () in
  f

let test_cnm_histogram () =
  let build () =
    let f =
      Func.create ~name:"hst" ~arg_tys:[ tensor [| 64 |] ] ~result_tys:[ tensor [| 8 |] ]
    in
    let b = Builder.for_func f in
    Func_d.return b [ Cinm_d.histogram b (Func.param f 0) ~bins:8 ];
    f
  in
  let a = Tensor.init [| 64 |] (fun i -> i * 5 mod 8) in
  let expected, actual, _ = differential (cinm_only build) [ Rtval.Tensor a ] in
  check_tensor "histogram on cnm"
    (Rtval.as_tensor (List.hd expected))
    (Rtval.as_tensor (List.hd actual))

let test_cnm_scan () =
  let build () =
    let f =
      Func.create ~name:"scan" ~arg_tys:[ tensor [| 64 |] ] ~result_tys:[ tensor [| 64 |] ]
    in
    let b = Builder.for_func f in
    Func_d.return b [ Cinm_d.scan b ~op:"add" (Func.param f 0) ];
    f
  in
  let a = iota [| 64 |] in
  let expected, actual, _ = differential (cinm_only build) [ Rtval.Tensor a ] in
  check_tensor "scan on cnm"
    (Rtval.as_tensor (List.hd expected))
    (Rtval.as_tensor (List.hd actual))

let test_cnm_simsearch () =
  let build () =
    let f =
      Func.create ~name:"ts" ~arg_tys:[ tensor [| 71 |]; tensor [| 8 |] ]
        ~result_tys:[ tensor [| 2 |]; tensor [| 2 |] ]
    in
    let b = Builder.for_func f in
    let v, i = Cinm_d.sim_search b ~metric:"l2" ~k:2 (Func.param f 0) (Func.param f 1) in
    Func_d.return b [ v; i ];
    f
  in
  (* windows = 71 - 8 + 1 = 64 = 16 PUs x 4 *)
  let db = Tensor.init [| 71 |] (fun i -> i * 7 mod 41) in
  let q = Tensor.init [| 8 |] (fun i -> (i * 7 mod 41) + 1) in
  let expected, actual, _ = differential (cinm_only build) [ Rtval.Tensor db; Rtval.Tensor q ] in
  (match (expected, actual) with
  | [ ev; _ei ], [ av; ai ] ->
    check_tensor "simsearch values" (Rtval.as_tensor ev) (Rtval.as_tensor av);
    (* indices may tie-break differently; check scores at returned indices *)
    let scores_at idx_t =
      Array.init 2 (fun j ->
          let w = Tensor.get_int (Rtval.as_tensor idx_t) j in
          let acc = ref 0 in
          for jj = 0 to 7 do
            let d = Tensor.get_int db (w + jj) - Tensor.get_int q jj in
            acc := !acc - (d * d)
          done;
          !acc)
    in
    let av_arr = Tensor.to_int_array (Rtval.as_tensor av) in
    Alcotest.(check (array int)) "indices consistent with values" av_arr (scores_at ai)
  | _ -> Alcotest.fail "wrong arity")

let test_cnm_topk () =
  let build () =
    let f =
      Func.create ~name:"topk" ~arg_tys:[ tensor [| 64 |] ]
        ~result_tys:[ tensor [| 3 |]; tensor [| 3 |] ]
    in
    let b = Builder.for_func f in
    let v, i = Cinm_d.topk b (Func.param f 0) ~k:3 in
    Func_d.return b [ v; i ];
    f
  in
  (* distinct values so indices are deterministic *)
  let a = Tensor.init [| 64 |] (fun i -> (i * 37) mod 64) in
  let expected, actual, _ = differential (cinm_only build) [ Rtval.Tensor a ] in
  (match (expected, actual) with
  | [ ev; ei ], [ av; ai ] ->
    check_tensor "topk values" (Rtval.as_tensor ev) (Rtval.as_tensor av);
    check_tensor "topk indices" (Rtval.as_tensor ei) (Rtval.as_tensor ai)
  | _ -> Alcotest.fail "arity")

let test_cnm_not () =
  let build () =
    let f = Func.create ~name:"not" ~arg_tys:[ tensor [| 32 |] ] ~result_tys:[ tensor [| 32 |] ] in
    let b = Builder.for_func f in
    Func_d.return b [ Cinm_d.not_ b (Func.param f 0) ];
    f
  in
  let a = iota [| 32 |] in
  let expected, actual, _ = differential (cinm_only build) [ Rtval.Tensor a ] in
  check_tensor "not on cnm"
    (Rtval.as_tensor (List.hd expected))
    (Rtval.as_tensor (List.hd actual))

(* qcheck: gemm on cnm == host for random shapes *)
let prop_cnm_gemm =
  QCheck.Test.make ~name:"cnm gemm == host gemm (random shapes)" ~count:15
    QCheck.(triple (1 -- 24) (1 -- 8) (1 -- 8))
    (fun (m, k, n) ->
      let build () =
        let f =
          Func.create ~name:"mm" ~arg_tys:[ tensor [| m; k |]; tensor [| k; n |] ]
            ~result_tys:[ tensor [| m; n |] ]
        in
        let b = Builder.for_func f in
        Func_d.return b [ Linalg_d.matmul b (Func.param f 0) (Func.param f 1) ];
        f
      in
      let a = iota [| m; k |] and bt = iota [| k; n |] in
      let expected, actual, _ = differential build [ Rtval.Tensor a; Rtval.Tensor bt ] in
      Tensor.equal (Rtval.as_tensor (List.hd expected)) (Rtval.as_tensor (List.hd actual)))

let () =
  Alcotest.run "transforms"
    [
      ( "linalg-to-cinm",
        [
          Alcotest.test_case "matmul -> gemm" `Quick test_linalg_to_cinm_matmul;
          Alcotest.test_case "conv rewrite" `Quick test_conv_rewrite_preserves_semantics;
          Alcotest.test_case "einsum contrs1" `Quick test_einsum_rewrite_contrs1;
          Alcotest.test_case "einsum contrl" `Quick test_einsum_rewrite_contrl;
          Alcotest.test_case "torch front-end" `Quick test_torch_frontend;
          Alcotest.test_case "cinm-to-scf host lowering" `Quick test_cinm_to_scf_host_lowering;
        ] );
      ( "target-select",
        [
          Alcotest.test_case "greedy policy" `Quick test_target_select_greedy;
          Alcotest.test_case "cost models" `Quick test_target_select_cost_models;
        ] );
      ( "cinm-to-cnm",
        [
          Alcotest.test_case "gemm" `Quick test_cnm_gemm;
          Alcotest.test_case "gemm padding" `Quick test_cnm_gemm_with_padding;
          Alcotest.test_case "gemm multi-chunk" `Quick test_cnm_gemm_multi_chunk;
          Alcotest.test_case "gemm interchanged" `Quick test_cnm_gemm_optimized_matches;
          Alcotest.test_case "gemv" `Quick test_cnm_gemv;
          Alcotest.test_case "elementwise" `Quick test_cnm_elementwise;
          Alcotest.test_case "reduce" `Quick test_cnm_reduce;
          Alcotest.test_case "histogram" `Quick test_cnm_histogram;
          Alcotest.test_case "scan" `Quick test_cnm_scan;
          Alcotest.test_case "simsearch" `Quick test_cnm_simsearch;
          Alcotest.test_case "topk" `Quick test_cnm_topk;
          Alcotest.test_case "not" `Quick test_cnm_not;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_cnm_gemm ]);
    ]
