(* End-to-end tests for the UPMEM path: linalg -> cinm -> cnm -> upmem,
   executed on the machine simulator, compared against the host reference.
   Also checks the timing model's qualitative properties (more DPUs =>
   faster kernels; WRAM-optimized kernels move fewer DMA bytes). *)

open Cinm_ir
open Cinm_dialects
open Cinm_transforms
open Cinm_interp
module T = Types
module Usim = Cinm_upmem_sim

let () = Registry.ensure_all ()

let tensor shape = T.Tensor (shape, T.I32)

let check_tensor msg expected actual =
  if not (Tensor.equal expected actual) then
    Alcotest.failf "%s: expected %s, got %s" msg (Tensor.to_string expected)
      (Tensor.to_string actual)

let iota shape = Tensor.init shape (fun i -> (i mod 23) - 11)

let force_cnm =
  Target_select.pass
    ~policy:{ Target_select.default_policy with forced_target = Some "cnm" }
    ()

let lower_to_upmem ?(cnm_opts = { Cinm_to_cnm.dpus = 4; tasklets = 4; optimize = false; max_rows_per_launch = 8 })
    ?(up_opts = Cnm_to_upmem.default_options) f =
  let m = Func.create_module () in
  Func.add_func m f;
  Pass.run_pipeline
    [ Tosa_to_linalg.pass; Linalg_to_cinm.pass; force_cnm;
      Cinm_to_cnm.pass ~options:cnm_opts (); Cnm_to_upmem.pass ~options:up_opts () ]
    m;
  List.hd m.Func.funcs

let run_on_machine ?(config = Usim.Config.default ~dimms:1 ()) f args =
  let machine = Usim.Machine.create config in
  Usim.Machine.run machine f args

let differential ?cnm_opts build args =
  let expected, _ = Interp.run_func (build ()) args in
  let f_dev = lower_to_upmem ?cnm_opts (build ()) in
  let actual, stats = run_on_machine f_dev args in
  (expected, actual, stats)

let build_mm m k n () =
  let f =
    Func.create ~name:"mm" ~arg_tys:[ tensor [| m; k |]; tensor [| k; n |] ]
      ~result_tys:[ tensor [| m; n |] ]
  in
  let b = Builder.for_func f in
  Func_d.return b [ Linalg_d.matmul b (Func.param f 0) (Func.param f 1) ];
  f

let test_upmem_gemm () =
  let a = iota [| 32; 8 |] and bt = iota [| 8; 6 |] in
  let expected, actual, stats =
    differential (build_mm 32 8 6) [ Rtval.Tensor a; Rtval.Tensor bt ]
  in
  check_tensor "gemm on upmem sim"
    (Rtval.as_tensor (List.hd expected))
    (Rtval.as_tensor (List.hd actual));
  Alcotest.(check bool) "kernel time positive" true (stats.Usim.Stats.kernel_s > 0.0);
  Alcotest.(check bool) "transfers recorded" true (stats.Usim.Stats.transferred_bytes > 0)

let test_upmem_gemm_opt_matches_and_moves_less () =
  let a = iota [| 32; 8 |] and bt = iota [| 8; 8 |] in
  let args = [ Rtval.Tensor a; Rtval.Tensor bt ] in
  let expected, _ = Interp.run_func (build_mm 32 8 8 ()) args in
  let base_opts = { Cinm_to_cnm.dpus = 2; tasklets = 2; optimize = false; max_rows_per_launch = 8 } in
  let opt_opts = { base_opts with Cinm_to_cnm.optimize = true } in
  let f_base = lower_to_upmem ~cnm_opts:base_opts (build_mm 32 8 8 ()) in
  let f_opt = lower_to_upmem ~cnm_opts:opt_opts (build_mm 32 8 8 ()) in
  let r_base, s_base = run_on_machine f_base args in
  let r_opt, s_opt = run_on_machine f_opt args in
  check_tensor "naive kernel correct"
    (Rtval.as_tensor (List.hd expected))
    (Rtval.as_tensor (List.hd r_base));
  check_tensor "wram kernel correct"
    (Rtval.as_tensor (List.hd expected))
    (Rtval.as_tensor (List.hd r_opt));
  Alcotest.(check bool)
    (Printf.sprintf "opt DMA (%d) < naive DMA (%d)" s_opt.Usim.Stats.dma_bytes
       s_base.Usim.Stats.dma_bytes)
    true
    (s_opt.Usim.Stats.dma_bytes < s_base.Usim.Stats.dma_bytes);
  Alcotest.(check bool) "opt kernel faster" true
    (s_opt.Usim.Stats.kernel_s < s_base.Usim.Stats.kernel_s)

let test_upmem_elementwise () =
  let build () =
    let f =
      Func.create ~name:"va" ~arg_tys:[ tensor [| 128 |]; tensor [| 128 |] ]
        ~result_tys:[ tensor [| 128 |] ]
    in
    let b = Builder.for_func f in
    Func_d.return b [ Linalg_d.add b (Func.param f 0) (Func.param f 1) ];
    f
  in
  let a = iota [| 128 |] and bt = iota [| 128 |] in
  let expected, actual, _ = differential build [ Rtval.Tensor a; Rtval.Tensor bt ] in
  check_tensor "va on upmem"
    (Rtval.as_tensor (List.hd expected))
    (Rtval.as_tensor (List.hd actual))

let test_upmem_reduce () =
  let build () =
    let f = Func.create ~name:"red" ~arg_tys:[ tensor [| 128 |] ] ~result_tys:[ T.Scalar T.I32 ] in
    let b = Builder.for_func f in
    Func_d.return b [ Linalg_d.reduce b ~op:"max" (Func.param f 0) ];
    f
  in
  let a = iota [| 128 |] in
  let expected, actual, _ = differential build [ Rtval.Tensor a ] in
  Alcotest.(check int) "reduce max on upmem"
    (Rtval.as_int (List.hd expected))
    (Rtval.as_int (List.hd actual))

let test_upmem_histogram () =
  let build () =
    let f = Func.create ~name:"hst" ~arg_tys:[ tensor [| 128 |] ] ~result_tys:[ tensor [| 16 |] ] in
    let b = Builder.for_func f in
    Func_d.return b [ Cinm_d.histogram b (Func.param f 0) ~bins:16 ];
    f
  in
  let a = Tensor.init [| 128 |] (fun i -> i * 11 mod 16) in
  let expected, actual, _ = differential build [ Rtval.Tensor a ] in
  check_tensor "hst on upmem"
    (Rtval.as_tensor (List.hd expected))
    (Rtval.as_tensor (List.hd actual))

let test_upmem_scan () =
  let build () =
    let f = Func.create ~name:"scan" ~arg_tys:[ tensor [| 128 |] ] ~result_tys:[ tensor [| 128 |] ] in
    let b = Builder.for_func f in
    Func_d.return b [ Cinm_d.scan b ~op:"add" (Func.param f 0) ];
    f
  in
  let a = iota [| 128 |] in
  let expected, actual, _ = differential build [ Rtval.Tensor a ] in
  check_tensor "scan on upmem"
    (Rtval.as_tensor (List.hd expected))
    (Rtval.as_tensor (List.hd actual))

let test_upmem_simsearch () =
  let build () =
    let f =
      Func.create ~name:"ts" ~arg_tys:[ tensor [| 71 |]; tensor [| 8 |] ]
        ~result_tys:[ tensor [| 2 |]; tensor [| 2 |] ]
    in
    let b = Builder.for_func f in
    let v, i = Cinm_d.sim_search b ~metric:"l2" ~k:2 (Func.param f 0) (Func.param f 1) in
    Func_d.return b [ v; i ];
    f
  in
  let db = Tensor.init [| 71 |] (fun i -> i * 7 mod 41) in
  let q = Tensor.init [| 8 |] (fun i -> (i * 7 mod 41) + 1) in
  let expected, actual, _ = differential build [ Rtval.Tensor db; Rtval.Tensor q ] in
  (match (expected, actual) with
  | [ ev; _ ], [ av; _ ] ->
    check_tensor "simsearch values on upmem" (Rtval.as_tensor ev) (Rtval.as_tensor av)
  | _ -> Alcotest.fail "arity")

let test_upmem_topk () =
  let build () =
    let f =
      Func.create ~name:"topk" ~arg_tys:[ tensor [| 128 |] ]
        ~result_tys:[ tensor [| 4 |]; tensor [| 4 |] ]
    in
    let b = Builder.for_func f in
    let v, i = Cinm_d.topk b (Func.param f 0) ~k:4 in
    Func_d.return b [ v; i ];
    f
  in
  let a = Tensor.init [| 128 |] (fun i -> (i * 67) mod 128) in
  let expected, actual, _ = differential build [ Rtval.Tensor a ] in
  (match (expected, actual) with
  | [ ev; ei ], [ av; ai ] ->
    check_tensor "topk values on upmem" (Rtval.as_tensor ev) (Rtval.as_tensor av);
    check_tensor "topk indices on upmem" (Rtval.as_tensor ei) (Rtval.as_tensor ai)
  | _ -> Alcotest.fail "arity")

let test_more_dpus_is_faster () =
  let a = iota [| 64; 8 |] and bt = iota [| 8; 8 |] in
  let args = [ Rtval.Tensor a; Rtval.Tensor bt ] in
  let run dpus =
    let opts = { Cinm_to_cnm.dpus; tasklets = 4; optimize = true; max_rows_per_launch = 64 } in
    let f = lower_to_upmem ~cnm_opts:opts (build_mm 64 8 8 ()) in
    let _, stats = run_on_machine f args in
    stats.Usim.Stats.kernel_s
  in
  let t2 = run 2 and t8 = run 8 in
  Alcotest.(check bool)
    (Printf.sprintf "8 dpus (%.2e s) faster than 2 (%.2e s)" t8 t2)
    true (t8 < t2)

let test_lowered_module_roundtrips_through_text () =
  (* print the fully lowered upmem module, parse it back, and run both on
     the simulator: identical results and identical device statistics *)
  let a = iota [| 16; 4 |] and bt = iota [| 4; 4 |] in
  let args = [ Rtval.Tensor a; Rtval.Tensor bt ] in
  let f = lower_to_upmem (build_mm 16 4 4 ()) in
  let text = Printer.func_to_string f in
  let f' = Parser.parse_func_text text in
  Alcotest.(check int) "parsed module verifies" 0 (List.length (Verifier.verify_func f'));
  Alcotest.(check string) "print is a fixpoint" text (Printer.func_to_string f');
  let r1, s1 = run_on_machine f args in
  let r2, s2 = run_on_machine f' args in
  check_tensor "same results"
    (Rtval.as_tensor (List.hd r1))
    (Rtval.as_tensor (List.hd r2));
  Alcotest.(check int) "same instruction count" s1.Usim.Stats.dpu_instructions
    s2.Usim.Stats.dpu_instructions;
  Alcotest.(check int) "same dma bytes" s1.Usim.Stats.dma_bytes s2.Usim.Stats.dma_bytes

let test_generic_fallback_kernel () =
  (* hand-written cnm program with an unrecognized kernel body: the
     fallback must stage buffers, inline the body and write back *)
  let f = Func.create ~name:"custom" ~arg_tys:[ tensor [| 16 |] ] ~result_tys:[ tensor [| 16 |] ] in
  let b = Builder.for_func f in
  let wg = Cnm_d.workgroup b ~shape:[| 2; 2 |] ~physical_dims:[ "dpu"; "thread" ] in
  let in_buf = Cnm_d.alloc b wg ~shape:[| 4 |] ~dtype:T.I32 ~level:0 in
  let out_buf = Cnm_d.alloc b wg ~shape:[| 4 |] ~dtype:T.I32 ~level:0 in
  let t1 = Cnm_d.scatter b (Func.param f 0) in_buf wg ~map:"block" in
  let tok =
    Cnm_d.launch b wg ~ins:[ in_buf ] ~outs:[ out_buf ] (fun bb args ->
        let c0 = Arith.const_index bb 0 in
        let c1 = Arith.const_index bb 1 in
        let c4 = Arith.const_index bb 4 in
        Scf_d.for0 bb ~lb:c0 ~ub:c4 ~step:c1 (fun bb i ->
            let v = Memref_d.load bb args.(0) [ i ] in
            Memref_d.store bb (Arith.muli bb v v) args.(1) [ i ]))
  in
  let out, t2 = Cnm_d.gather b out_buf wg ~result_shape:[| 16 |] in
  Cnm_d.wait b [ t1; tok; t2 ];
  Func_d.return b [ out ];
  let m = Func.create_module () in
  Func.add_func m f;
  Pass.run_pipeline [ Cnm_to_upmem.pass () ] m;
  let a = iota [| 16 |] in
  let actual, _ = run_on_machine (List.hd m.Func.funcs) [ Rtval.Tensor a ] in
  let expected = Tensor.init [| 16 |] (fun i -> let v = Tensor.get_int a i in v * v) in
  check_tensor "generic fallback" expected (Rtval.as_tensor (List.hd actual))

let () =
  Alcotest.run "upmem"
    [
      ( "end-to-end",
        [
          Alcotest.test_case "gemm" `Quick test_upmem_gemm;
          Alcotest.test_case "gemm opt: correct + less DMA" `Quick
            test_upmem_gemm_opt_matches_and_moves_less;
          Alcotest.test_case "elementwise" `Quick test_upmem_elementwise;
          Alcotest.test_case "reduce" `Quick test_upmem_reduce;
          Alcotest.test_case "histogram" `Quick test_upmem_histogram;
          Alcotest.test_case "scan" `Quick test_upmem_scan;
          Alcotest.test_case "simsearch" `Quick test_upmem_simsearch;
          Alcotest.test_case "topk" `Quick test_upmem_topk;
          Alcotest.test_case "generic fallback kernel" `Quick test_generic_fallback_kernel;
          Alcotest.test_case "lowered module text roundtrip" `Quick
            test_lowered_module_roundtrips_through_text;
        ] );
      ( "timing model",
        [ Alcotest.test_case "more dpus => faster" `Quick test_more_dpus_is_faster ] );
    ]
