(* loadgen: a load generator + torture harness for the cinm_serve daemon.

   Two modes:

   - the default latency sweep starts an in-process daemon, drives it
     with well-formed run/compile/health requests at several concurrency
     levels, and reports p50/p95/p99 latency and request throughput per
     level (--json writes the pinned BENCH_pr8.json). After the sweep it
     scrapes the daemon's own telemetry — the "metrics" protocol op and
     the Prometheus text exposition over HTTP — validates the exposition
     format, and cross-checks the server-side latency histogram against
     the client-observed percentiles: the populations are identical (all
     admitted requests, warm-up included), so the server quantiles must
     bracket the client ones within the histogram's ~4.4% bucket
     resolution plus transport overhead. Both views are pinned in the
     JSON output.

   - --smoke is the robustness torture test: a fixed mixed stream of
     good, malformed, oversized, over-budget, deadline-doomed and
     fault-injected requests (>= 1000 by default). It asserts that every
     request gets exactly one well-formed JSON response (ok or a
     structured error with a known code), that the daemon never dies
     mid-stream, that the by-code outcome counters in the exposition sum
     to exactly the number of responses, and that shutdown is clean;
     exit status reports the verdict, so CI can run it directly.

   The daemon runs in-process on a background thread (the event loop
   blocks in select, workers are pool domains) and clients are plain
   blocking threads — the harness measures the service, not the harness. *)

module Server = Cinm_serve_lib.Server
module Client = Cinm_serve_lib.Client
module Json = Cinm_serve_lib.Json
module Config = Cinm_support.Config

let known_codes =
  [
    "parse_error"; "oversized"; "bad_request"; "unknown_benchmark";
    "pass_failed"; "watchdog"; "deadline_exceeded"; "cancelled";
    "overloaded"; "shutting_down"; "internal";
  ]

(* ----- request mix ----- *)

let benchmarks = [| "va"; "red"; "mm"; "mv"; "sel"; "hst-l" |]

(* Every 11th request is a health ping (inline op, no latency contract);
   the rest are heavy (admitted) ops. The server's request histogram
   only sees admitted ops, so the client must pool exactly these. *)
let is_health i = i mod 11 = 10

(* Deterministic per-index request line. In sweep mode every request is
   well-formed; in torture mode every 5th request is hostile (malformed
   JSON, oversized line, watchdog bait, micro-deadline, unknown
   benchmark) and every 7th runs under an injected fault plan. *)
let request_line ~torture i =
  let bench = benchmarks.(i mod Array.length benchmarks) in
  let id = Printf.sprintf "r%d" i in
  if torture && i mod 5 = 3 then
    match i mod 25 with
    | 3 -> "{\"op\": run, oops"
    | 8 -> String.make 5000 'x'
    | 13 ->
      Json.to_string
        (Client.make_request ~id ~benchmark:bench ~max_steps:7 "run")
    | 18 ->
      Json.to_string
        (Client.make_request ~id ~benchmark:bench ~deadline_s:1e-6 "run")
    | _ -> Json.to_string (Client.make_request ~id ~benchmark:"no-such" "run")
  else if torture && i mod 7 = 0 then
    Json.to_string
      (Client.make_request ~id ~benchmark:bench ~faults:"dpu_fail=0.05" "run")
  else if is_health i then Json.to_string (Client.make_request ~id "health")
  else if i mod 13 = 12 then
    Json.to_string (Client.make_request ~id ~benchmark:bench "compile")
  else Json.to_string (Client.make_request ~id ~benchmark:bench "run")

(* ----- one client worker ----- *)

type outcome = {
  mutable n_ok : int;
  mutable n_error : int;
  mutable n_degraded : int;
  mutable n_bad : int;  (* responses violating the protocol contract *)
  mutable latencies : float list;  (* seconds, admitted well-formed ops only *)
}

let new_outcome () =
  { n_ok = 0; n_error = 0; n_degraded = 0; n_bad = 0; latencies = [] }

let check_response out line =
  match Json.parse line with
  | exception Json.Parse_error _ -> out.n_bad <- out.n_bad + 1
  | j -> (
    match Json.bool_field j "ok" with
    | Some true ->
      out.n_ok <- out.n_ok + 1;
      if Json.bool_field j "degraded" = Some true then
        out.n_degraded <- out.n_degraded + 1
    | Some false -> (
      let code =
        match Json.member "error" j with
        | Some err -> Json.string_field err "code"
        | None -> None
      in
      match code with
      | Some c when List.mem c known_codes -> out.n_error <- out.n_error + 1
      | _ -> out.n_bad <- out.n_bad + 1)
    | None -> out.n_bad <- out.n_bad + 1)

let client_worker ~torture ~socket ~first ~count out =
  let c = Client.connect ~attempts:40 socket in
  Fun.protect
    ~finally:(fun () -> Client.close c)
    (fun () ->
      for i = first to first + count - 1 do
        let line = request_line ~torture i in
        let t0 = Unix.gettimeofday () in
        match Client.request_raw c line with
        | resp ->
          let dt = Unix.gettimeofday () -. t0 in
          check_response out resp;
          (* hostile requests have no latency contract, and health pings
             are inline (the server's request histogram never sees them);
             measure the admitted well-formed rest *)
          if
            (not (torture && (i mod 5 = 3 || i mod 7 = 0)))
            && not (is_health i)
          then out.latencies <- dt :: out.latencies
        | exception Client.Server_gone _ -> out.n_bad <- out.n_bad + 1
      done)

(* ----- percentiles ----- *)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1))

(* ----- telemetry scraping ----- *)

(* Ask the kernel for a free localhost port; the daemon binds it moments
   later (the tiny race is acceptable for a test harness). *)
let free_port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, port) -> port
      | _ -> 0)

(* index of the first occurrence of [needle] in [hay], if any *)
let find_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then None
    else if String.sub hay i nn = needle then Some i
    else go (i + 1)
  in
  go 0

(* Minimal blocking HTTP GET against the daemon's exposition listener;
   returns (status code, body). *)
let http_get ~port path =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let req =
        Printf.sprintf
          "GET %s HTTP/1.1\r\nHost: 127.0.0.1\r\nConnection: close\r\n\r\n"
          path
      in
      let b = Bytes.of_string req in
      let n = Bytes.length b in
      let off = ref 0 in
      while !off < n do
        let w = Unix.write fd b !off (n - !off) in
        if w <= 0 then failwith "http_get: write failed";
        off := !off + w
      done;
      let buf = Buffer.create 4096 in
      let chunk = Bytes.create 4096 in
      let rec slurp () =
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | k ->
          Buffer.add_subbytes buf chunk 0 k;
          slurp ()
      in
      slurp ();
      let raw = Buffer.contents buf in
      let status =
        match String.split_on_char ' ' raw with
        | _ :: code :: _ -> ( try int_of_string code with Failure _ -> 0)
        | _ -> 0
      in
      let body =
        match find_sub raw "\r\n\r\n" with
        | Some i -> String.sub raw (i + 4) (String.length raw - i - 4)
        | None -> ""
      in
      (status, body))

(* ----- Prometheus text-format checker -----

   A deliberately small validator for the subset the daemon emits:
   - every line is blank, "# HELP ...", "# TYPE <name> <type>", or a
     sample "<name>[{labels}] <float>";
   - metric names are [a-zA-Z_:][a-zA-Z0-9_:]*;
   - for every family typed "histogram": its _bucket series appear with
     non-decreasing cumulative counts, end in le="+Inf", and the +Inf
     count equals the _count sample; _sum exists. *)

module Promcheck = struct
  let is_name_char c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_' || c = ':'

  let valid_name s =
    s <> ""
    && (not (s.[0] >= '0' && s.[0] <= '9'))
    && String.for_all is_name_char s

  (* "name{labels} value" or "name value" -> (name-with-labels, value) *)
  let parse_sample line =
    match String.rindex_opt line ' ' with
    | None -> None
    | Some sp -> (
      let name = String.sub line 0 sp in
      let value = String.sub line (sp + 1) (String.length line - sp - 1) in
      match float_of_string_opt value with
      | None -> None
      | Some v ->
        let bare =
          match String.index_opt name '{' with
          | Some br ->
            if name.[String.length name - 1] = '}' then
              String.sub name 0 br
            else ""
          | None -> name
        in
        if valid_name bare then Some (name, bare, v) else None)

  type result = {
    families : int;
    series : int;
    problems : string list;  (* empty = valid *)
  }

  let check body =
    let problems = ref [] in
    let err fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
    let types = ref [] in
    (* (name-with-labels, bare family, value), emission order *)
    let samples = ref [] in
    List.iter
      (fun line ->
        if line = "" then ()
        else if String.starts_with ~prefix:"# HELP " line then ()
        else if String.starts_with ~prefix:"# TYPE " line then (
          match
            String.split_on_char ' '
              (String.sub line 7 (String.length line - 7))
          with
          | [ name; ty ]
            when valid_name name
                 && List.mem ty [ "counter"; "gauge"; "histogram" ] ->
            if List.mem_assoc name !types then
              err "duplicate TYPE for %s" name
            else types := (name, ty) :: !types
          | _ -> err "malformed TYPE line: %s" line)
        else if line.[0] = '#' then err "unknown comment: %s" line
        else
          match parse_sample line with
          | Some s -> samples := s :: !samples
          | None -> err "malformed sample line: %s" line)
      (String.split_on_char '\n' body);
    let samples = List.rev !samples in
    let value_of full =
      List.find_map
        (fun (n, _, v) -> if n = full then Some v else None)
        samples
    in
    List.iter
      (fun (fam, ty) ->
        if ty = "histogram" then begin
          let buckets =
            List.filter
              (fun (n, _, _) ->
                String.starts_with ~prefix:(fam ^ "_bucket{") n)
              samples
          in
          (match List.rev buckets with
          | [] -> err "histogram %s has no _bucket series" fam
          | (last, _, inf_count) :: _ ->
            let contains hay needle =
              let nh = String.length hay and nn = String.length needle in
              let rec go i =
                i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
              in
              nn = 0 || go 0
            in
            if not (contains last "le=\"+Inf\"") then
              err "histogram %s: last bucket is not le=\"+Inf\"" fam;
            (match value_of (fam ^ "_count") with
            | Some c when c = inf_count -> ()
            | Some c ->
              err "histogram %s: +Inf bucket %g <> _count %g" fam inf_count c
            | None -> err "histogram %s has no _count" fam);
            if value_of (fam ^ "_sum") = None then
              err "histogram %s has no _sum" fam;
            ignore
              (List.fold_left
                 (fun prev (_, _, v) ->
                   if v < prev then
                     err "histogram %s: bucket counts decrease" fam;
                   v)
                 0.0 buckets))
        end)
      !types;
    {
      families = List.length !types;
      series = List.length samples;
      problems = List.rev !problems;
    }
end

(* ----- daemon lifecycle ----- *)

let start_daemon ~socket ~jobs ~max_inflight ~metrics_port =
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  let opts =
    {
      (Server.default_opts ~socket_path:socket ()) with
      Server.jobs;
      max_inflight;
      drain_grace_s = 30.0;
      metrics_port;
    }
  in
  let srv = Server.create opts in
  (srv, Thread.create Server.run srv)

let stop_daemon ~socket thread =
  let c = Client.connect socket in
  let resp = Client.request c (Client.make_request "shutdown") in
  Client.close c;
  Thread.join thread;
  Json.bool_field resp "ok" = Some true

(* Scrape the "metrics" op; returns the parsed response. *)
let scrape_metrics ~socket =
  let c = Client.connect socket in
  Fun.protect
    ~finally:(fun () -> Client.close c)
    (fun () -> Client.request c (Client.make_request "metrics"))

(* Server-side view of one histogram from the metrics op, in ms. *)
type hist_view = {
  hv_count : int;
  hv_p50_ms : float;
  hv_p95_ms : float;
  hv_p99_ms : float;
  hv_max_ms : float;
}

let hist_view mresp name =
  match Json.member "histograms" mresp with
  | None -> None
  | Some hs -> (
    match Json.member name hs with
    | None -> None
    | Some h ->
      let f k = Option.value (Json.float_field h k) ~default:0.0 in
      Some
        {
          hv_count = Option.value (Json.int_field h "count") ~default:0;
          hv_p50_ms = 1e3 *. f "p50";
          hv_p95_ms = 1e3 *. f "p95";
          hv_p99_ms = 1e3 *. f "p99";
          hv_max_ms = 1e3 *. f "max";
        })

(* ----- modes ----- *)

let run_level ~torture ~socket ~concurrency ~requests =
  let per = requests / concurrency in
  let outs = Array.init concurrency (fun _ -> new_outcome ()) in
  let t0 = Unix.gettimeofday () in
  let threads =
    List.init concurrency (fun k ->
        Thread.create
          (fun () ->
            client_worker ~torture ~socket ~first:(k * per) ~count:per outs.(k))
          ())
  in
  List.iter Thread.join threads;
  let wall = Unix.gettimeofday () -. t0 in
  let total = new_outcome () in
  Array.iter
    (fun o ->
      total.n_ok <- total.n_ok + o.n_ok;
      total.n_error <- total.n_error + o.n_error;
      total.n_degraded <- total.n_degraded + o.n_degraded;
      total.n_bad <- total.n_bad + o.n_bad;
      total.latencies <- o.latencies @ total.latencies)
    outs;
  (total, wall, concurrency * per)

(* Cross-validate the server's latency histogram against the pooled
   client-observed latencies. Both cover the identical population (every
   admitted request, warm-up included; the server clock starts at
   admission, the client clock at write — both include queue wait), so:
   - the server quantile is an upper bound of a bucket that contains the
     true value, at most ~4.6% above it (16 sub-buckets/octave), and the
     client adds only localhost transport on top: server_p <= client_p *
     1.06 + 1 ms;
   - conversely the client latency exceeds the server's span by
     transport + event-loop parse only: client_p <= server_p * 1.25 +
     5 ms (the server quantile already over-reports by its bucket). *)
let cross_check ~client_count (lat : float array) (sv : hist_view) =
  let ms p = percentile lat p *. 1e3 in
  let pass = ref true in
  let fail fmt =
    Printf.ksprintf
      (fun s ->
        pass := false;
        Printf.printf "CROSS-CHECK FAIL: %s\n%!" s)
      fmt
  in
  if sv.hv_count <> client_count then
    fail "server saw %d requests, clients measured %d" sv.hv_count
      client_count;
  List.iter
    (fun (name, p, server_ms) ->
      let client_ms = ms p in
      Printf.printf
        "  %-4s  client %8.2f ms   server %8.2f ms (histogram)\n%!" name
        client_ms server_ms;
      if server_ms > (client_ms *. 1.06) +. 1.0 then
        fail "server %s %.2f ms above client %.2f ms + tolerance" name
          server_ms client_ms;
      if client_ms > (server_ms *. 1.25) +. 5.0 then
        fail "client %s %.2f ms above server %.2f ms + tolerance" name
          client_ms server_ms)
    [
      ("p50", 0.50, sv.hv_p50_ms);
      ("p95", 0.95, sv.hv_p95_ms);
      ("p99", 0.99, sv.hv_p99_ms);
    ];
  !pass

let sweep ~socket ~jobs ~levels ~requests ~json_out =
  let metrics_port = free_port () in
  let _srv, thread =
    start_daemon ~socket ~jobs ~metrics_port
      ~max_inflight:(16 * List.length levels * 8)
  in
  (* warm: first connection compiles the hot benchmarks once; these are
     admitted requests, so they count in both latency populations *)
  let warm_lat = ref [] in
  let c = Client.connect ~attempts:40 socket in
  Array.iter
    (fun b ->
      let t0 = Unix.gettimeofday () in
      ignore (Client.request c (Client.make_request ~benchmark:b "run"));
      warm_lat := (Unix.gettimeofday () -. t0) :: !warm_lat)
    benchmarks;
  Client.close c;
  let rows =
    List.map
      (fun concurrency ->
        let total, wall, sent =
          run_level ~torture:false ~socket ~concurrency ~requests
        in
        let lat = Array.of_list (List.sort compare total.latencies) in
        let ms p = percentile lat p *. 1e3 in
        Printf.printf
          "c=%-3d  %6d req  %8.1f req/s  p50 %6.2f ms  p95 %6.2f ms  p99 %6.2f ms%s\n%!"
          concurrency sent
          (float_of_int sent /. wall)
          (ms 0.50) (ms 0.95) (ms 0.99)
          (if total.n_bad > 0 then Printf.sprintf "  [%d BAD]" total.n_bad else "");
        (concurrency, sent, wall, ms 0.50, ms 0.95, ms 0.99, total))
      levels
  in
  (* pooled client population = warm-up + every level's admitted ops *)
  let pooled =
    List.fold_left
      (fun acc (_, _, _, _, _, _, t) -> t.latencies @ acc)
      !warm_lat rows
  in
  let lat = Array.of_list (List.sort compare pooled) in
  let cms p = percentile lat p *. 1e3 in
  (* scrape the daemon's own telemetry before shutting it down *)
  let mresp = scrape_metrics ~socket in
  let server_req = hist_view mresp "cinm_serve_request_seconds" in
  let server_queue = hist_view mresp "cinm_serve_queue_wait_seconds" in
  let expo_status, expo_body =
    try http_get ~port:metrics_port "/metrics"
    with e -> (0, Printexc.to_string e)
  in
  let expo = Promcheck.check expo_body in
  let expo_ok = expo_status = 200 && expo.Promcheck.problems = [] in
  Printf.printf "exposition: HTTP %d, %d families, %d series%s\n%!"
    expo_status expo.Promcheck.families expo.Promcheck.series
    (if expo_ok then ""
     else
       Printf.sprintf "  INVALID: %s"
         (String.concat "; " expo.Promcheck.problems));
  let crossed =
    match server_req with
    | None ->
      Printf.printf
        "CROSS-CHECK FAIL: no cinm_serve_request_seconds histogram\n%!";
      false
    | Some sv ->
      Printf.printf "cross-check over %d pooled requests:\n%!"
        (Array.length lat);
      cross_check ~client_count:(Array.length lat) lat sv
  in
  let ok = stop_daemon ~socket thread in
  if not ok then prerr_endline "loadgen: shutdown response was not ok";
  (match json_out with
  | None -> ()
  | Some path ->
    let buf = Buffer.create 2048 in
    Buffer.add_string buf "{\n  \"schema\": \"cinm-loadgen-2\",\n  \"levels\": [\n";
    List.iteri
      (fun i (c, sent, wall, p50, p95, p99, total) ->
        Buffer.add_string buf
          (Printf.sprintf
             "    {\"concurrency\": %d, \"requests\": %d, \"req_per_s\": %.1f, \
              \"p50_ms\": %.3f, \"p95_ms\": %.3f, \"p99_ms\": %.3f, \
              \"errors\": %d}%s\n"
             c sent
             (float_of_int sent /. wall)
             p50 p95 p99 total.n_error
             (if i = List.length rows - 1 then "" else ","));
        ignore total)
      rows;
    Buffer.add_string buf "  ],\n";
    Buffer.add_string buf
      (Printf.sprintf
         "  \"client\": {\"count\": %d, \"p50_ms\": %.3f, \"p95_ms\": %.3f, \
          \"p99_ms\": %.3f, \"max_ms\": %.3f},\n"
         (Array.length lat) (cms 0.50) (cms 0.95) (cms 0.99)
         (if Array.length lat = 0 then 0.0
          else 1e3 *. lat.(Array.length lat - 1)));
    (match (server_req, server_queue) with
    | Some sv, q ->
      Buffer.add_string buf
        (Printf.sprintf
           "  \"server\": {\"count\": %d, \"p50_ms\": %.3f, \"p95_ms\": \
            %.3f, \"p99_ms\": %.3f, \"max_ms\": %.3f, \"queue_p95_ms\": \
            %.3f},\n"
           sv.hv_count sv.hv_p50_ms sv.hv_p95_ms sv.hv_p99_ms sv.hv_max_ms
           (match q with Some q -> q.hv_p95_ms | None -> 0.0))
    | None, _ -> Buffer.add_string buf "  \"server\": null,\n");
    Buffer.add_string buf
      (Printf.sprintf
         "  \"exposition\": {\"valid\": %b, \"families\": %d, \"series\": \
          %d},\n"
         expo_ok expo.Promcheck.families expo.Promcheck.series);
    Buffer.add_string buf
      (Printf.sprintf "  \"cross_check\": %b\n}\n" crossed);
    let oc = open_out path in
    output_string oc (Buffer.contents buf);
    close_out oc;
    Printf.printf "wrote %s\n%!" path);
  let bad = List.fold_left (fun a (_, _, _, _, _, _, t) -> a + t.n_bad) 0 rows in
  if bad > 0 || (not crossed) || not expo_ok then 1 else 0

let smoke ~socket ~jobs ~requests ~concurrency =
  Printf.printf
    "loadgen --smoke: %d mixed requests at concurrency %d (faults + \
     watchdog + deadlines + malformed + oversized)\n%!"
    requests concurrency;
  let metrics_port = free_port () in
  let _srv, thread =
    start_daemon ~socket ~jobs ~max_inflight:256 ~metrics_port
  in
  let total, wall, sent = run_level ~torture:true ~socket ~concurrency ~requests in
  (* the outcome counters must already account for every response the
     clients read (counters commit before the response write), and the
     exposition must be well-formed under load *)
  let mresp = scrape_metrics ~socket in
  let by_code_total =
    match Json.member "counters" mresp with
    | Some (Json.Obj fields) ->
      List.fold_left
        (fun acc (name, v) ->
          if
            String.starts_with ~prefix:"cinm_serve_responses_total{" name
          then acc + Option.value (Json.get_int v) ~default:0
          else acc)
        0 fields
    | _ -> -1
  in
  let expo_status, expo_body =
    try http_get ~port:metrics_port "/metrics"
    with e -> (0, Printexc.to_string e)
  in
  let expo = Promcheck.check expo_body in
  let expo_ok = expo_status = 200 && expo.Promcheck.problems = [] in
  let clean = stop_daemon ~socket thread in
  Printf.printf
    "served %d requests in %.2f s: %d ok (%d degraded), %d structured \
     errors, %d protocol violations; shutdown %s\n%!"
    sent wall total.n_ok total.n_degraded total.n_error total.n_bad
    (if clean then "clean" else "DIRTY");
  Printf.printf
    "telemetry: responses_total=%d (sent %d), exposition HTTP %d with %d \
     families%s\n%!"
    by_code_total sent expo_status expo.Promcheck.families
    (if expo_ok then ""
     else
       Printf.sprintf "  INVALID: %s"
         (String.concat "; " expo.Promcheck.problems));
  let pass =
    total.n_bad = 0 && clean
    && total.n_ok + total.n_error = sent
    && total.n_error > 0 (* the hostile mix must actually exercise errors *)
    && total.n_ok > 0
    && by_code_total = sent
    && expo_ok
  in
  Printf.printf "SMOKE %s\n%!" (if pass then "PASS" else "FAIL");
  if pass then 0 else 1

(* ----- argv ----- *)

let () =
  let smoke_mode = ref false in
  let json_out = ref "" in
  let requests = ref 0 in
  let jobs = ref 4 in
  let concurrency = ref 8 in
  let socket = ref "" in
  let spec =
    [
      ("--smoke", Arg.Set smoke_mode, " torture mode: mixed hostile stream, exit 0 iff clean");
      ("--json", Arg.Set_string json_out, "FILE write the latency sweep as JSON");
      ("--requests", Arg.Set_int requests, "N per-level requests (default: 480 sweep / 1200 smoke)");
      ("--jobs", Arg.Set_int jobs, "N daemon worker domains (default 4)");
      ("--concurrency", Arg.Set_int concurrency, "N smoke-mode client threads (default 8)");
      ("--socket", Arg.Set_string socket, "PATH socket path (default: a fresh one in TMPDIR)");
    ]
  in
  Arg.parse (Arg.align spec)
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "loadgen [--smoke] [--json FILE] [--requests N] [--jobs N]";
  let socket =
    if !socket <> "" then !socket
    else
      Filename.concat
        (try Sys.getenv "TMPDIR" with Not_found -> "/tmp")
        (Printf.sprintf "cinm-loadgen-%d.sock" (Unix.getpid ()))
  in
  let code =
    if !smoke_mode then
      smoke ~socket ~jobs:!jobs
        ~requests:(if !requests > 0 then !requests else 1200)
        ~concurrency:!concurrency
    else
      sweep ~socket ~jobs:!jobs
        ~levels:[ 1; 4; 8 ]
        ~requests:(if !requests > 0 then !requests else 480)
        ~json_out:(if !json_out = "" then None else Some !json_out)
  in
  exit code
