(* loadgen: a load generator + torture harness for the cinm_serve daemon.

   Two modes:

   - the default latency sweep starts an in-process daemon, drives it
     with well-formed run/compile/health requests at several concurrency
     levels, and reports p50/p95/p99 latency and request throughput per
     level (--json writes the pinned BENCH_pr7.json);

   - --smoke is the robustness torture test: a fixed mixed stream of
     good, malformed, oversized, over-budget, deadline-doomed and
     fault-injected requests (>= 1000 by default). It asserts that every
     request gets exactly one well-formed JSON response (ok or a
     structured error with a known code), that the daemon never dies
     mid-stream, and that shutdown is clean; exit status reports the
     verdict, so CI can run it directly.

   The daemon runs in-process on a background thread (the event loop
   blocks in select, workers are pool domains) and clients are plain
   blocking threads — the harness measures the service, not the harness. *)

module Server = Cinm_serve_lib.Server
module Client = Cinm_serve_lib.Client
module Json = Cinm_serve_lib.Json
module Config = Cinm_support.Config

let known_codes =
  [
    "parse_error"; "oversized"; "bad_request"; "unknown_benchmark";
    "pass_failed"; "watchdog"; "deadline_exceeded"; "cancelled";
    "overloaded"; "shutting_down"; "internal";
  ]

(* ----- request mix ----- *)

let benchmarks = [| "va"; "red"; "mm"; "mv"; "sel"; "hst-l" |]

(* Deterministic per-index request line. In sweep mode every request is
   well-formed; in torture mode every 5th request is hostile (malformed
   JSON, oversized line, watchdog bait, micro-deadline, unknown
   benchmark) and every 7th runs under an injected fault plan. *)
let request_line ~torture i =
  let bench = benchmarks.(i mod Array.length benchmarks) in
  let id = Printf.sprintf "r%d" i in
  if torture && i mod 5 = 3 then
    match i mod 25 with
    | 3 -> "{\"op\": run, oops"
    | 8 -> String.make 5000 'x'
    | 13 ->
      Json.to_string
        (Client.make_request ~id ~benchmark:bench ~max_steps:7 "run")
    | 18 ->
      Json.to_string
        (Client.make_request ~id ~benchmark:bench ~deadline_s:1e-6 "run")
    | _ -> Json.to_string (Client.make_request ~id ~benchmark:"no-such" "run")
  else if torture && i mod 7 = 0 then
    Json.to_string
      (Client.make_request ~id ~benchmark:bench ~faults:"dpu_fail=0.05" "run")
  else if i mod 11 = 10 then Json.to_string (Client.make_request ~id "health")
  else if i mod 13 = 12 then
    Json.to_string (Client.make_request ~id ~benchmark:bench "compile")
  else Json.to_string (Client.make_request ~id ~benchmark:bench "run")

(* ----- one client worker ----- *)

type outcome = {
  mutable n_ok : int;
  mutable n_error : int;
  mutable n_degraded : int;
  mutable n_bad : int;  (* responses violating the protocol contract *)
  mutable latencies : float list;  (* seconds, well-formed requests only *)
}

let new_outcome () =
  { n_ok = 0; n_error = 0; n_degraded = 0; n_bad = 0; latencies = [] }

let check_response out line =
  match Json.parse line with
  | exception Json.Parse_error _ -> out.n_bad <- out.n_bad + 1
  | j -> (
    match Json.bool_field j "ok" with
    | Some true ->
      out.n_ok <- out.n_ok + 1;
      if Json.bool_field j "degraded" = Some true then
        out.n_degraded <- out.n_degraded + 1
    | Some false -> (
      let code =
        match Json.member "error" j with
        | Some err -> Json.string_field err "code"
        | None -> None
      in
      match code with
      | Some c when List.mem c known_codes -> out.n_error <- out.n_error + 1
      | _ -> out.n_bad <- out.n_bad + 1)
    | None -> out.n_bad <- out.n_bad + 1)

let client_worker ~torture ~socket ~first ~count out =
  let c = Client.connect ~attempts:40 socket in
  Fun.protect
    ~finally:(fun () -> Client.close c)
    (fun () ->
      for i = first to first + count - 1 do
        let line = request_line ~torture i in
        let t0 = Unix.gettimeofday () in
        match Client.request_raw c line with
        | resp ->
          let dt = Unix.gettimeofday () -. t0 in
          check_response out resp;
          (* hostile requests have no latency contract; measure the rest *)
          if not (torture && (i mod 5 = 3 || i mod 7 = 0)) then
            out.latencies <- dt :: out.latencies
        | exception Client.Server_gone _ -> out.n_bad <- out.n_bad + 1
      done)

(* ----- percentiles ----- *)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1))

(* ----- daemon lifecycle ----- *)

let start_daemon ~socket ~jobs ~max_inflight =
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  let opts =
    {
      (Server.default_opts ~socket_path:socket ()) with
      Server.jobs;
      max_inflight;
      drain_grace_s = 30.0;
    }
  in
  let srv = Server.create opts in
  (srv, Thread.create Server.run srv)

let stop_daemon ~socket thread =
  let c = Client.connect socket in
  let resp = Client.request c (Client.make_request "shutdown") in
  Client.close c;
  Thread.join thread;
  Json.bool_field resp "ok" = Some true

(* ----- modes ----- *)

let run_level ~torture ~socket ~concurrency ~requests =
  let per = requests / concurrency in
  let outs = Array.init concurrency (fun _ -> new_outcome ()) in
  let t0 = Unix.gettimeofday () in
  let threads =
    List.init concurrency (fun k ->
        Thread.create
          (fun () ->
            client_worker ~torture ~socket ~first:(k * per) ~count:per outs.(k))
          ())
  in
  List.iter Thread.join threads;
  let wall = Unix.gettimeofday () -. t0 in
  let total = new_outcome () in
  Array.iter
    (fun o ->
      total.n_ok <- total.n_ok + o.n_ok;
      total.n_error <- total.n_error + o.n_error;
      total.n_degraded <- total.n_degraded + o.n_degraded;
      total.n_bad <- total.n_bad + o.n_bad;
      total.latencies <- o.latencies @ total.latencies)
    outs;
  (total, wall, concurrency * per)

let sweep ~socket ~jobs ~levels ~requests ~json_out =
  let srv_jobs = jobs in
  let _srv, thread =
    start_daemon ~socket ~jobs:srv_jobs ~max_inflight:(16 * List.length levels * 8)
  in
  (* warm: first connection compiles the hot benchmarks once *)
  let c = Client.connect ~attempts:40 socket in
  Array.iter
    (fun b ->
      ignore (Client.request c (Client.make_request ~benchmark:b "run")))
    benchmarks;
  Client.close c;
  let rows =
    List.map
      (fun concurrency ->
        let total, wall, sent =
          run_level ~torture:false ~socket ~concurrency ~requests
        in
        let lat =
          Array.of_list (List.sort compare total.latencies)
        in
        let ms p = percentile lat p *. 1e3 in
        Printf.printf
          "c=%-3d  %6d req  %8.1f req/s  p50 %6.2f ms  p95 %6.2f ms  p99 %6.2f ms%s\n%!"
          concurrency sent
          (float_of_int sent /. wall)
          (ms 0.50) (ms 0.95) (ms 0.99)
          (if total.n_bad > 0 then Printf.sprintf "  [%d BAD]" total.n_bad else "");
        (concurrency, sent, wall, ms 0.50, ms 0.95, ms 0.99, total))
      levels
  in
  let ok = stop_daemon ~socket thread in
  if not ok then prerr_endline "loadgen: shutdown response was not ok";
  (match json_out with
  | None -> ()
  | Some path ->
    let buf = Buffer.create 1024 in
    Buffer.add_string buf "{\n  \"schema\": \"cinm-loadgen-1\",\n  \"levels\": [\n";
    List.iteri
      (fun i (c, sent, wall, p50, p95, p99, total) ->
        Buffer.add_string buf
          (Printf.sprintf
             "    {\"concurrency\": %d, \"requests\": %d, \"req_per_s\": %.1f, \
              \"p50_ms\": %.3f, \"p95_ms\": %.3f, \"p99_ms\": %.3f, \
              \"errors\": %d}%s\n"
             c sent
             (float_of_int sent /. wall)
             p50 p95 p99 total.n_error
             (if i = List.length rows - 1 then "" else ","));
        ignore total)
      rows;
    Buffer.add_string buf "  ]\n}\n";
    let oc = open_out path in
    output_string oc (Buffer.contents buf);
    close_out oc;
    Printf.printf "wrote %s\n%!" path);
  let bad = List.fold_left (fun a (_, _, _, _, _, _, t) -> a + t.n_bad) 0 rows in
  if bad > 0 then 1 else 0

let smoke ~socket ~jobs ~requests ~concurrency =
  Printf.printf
    "loadgen --smoke: %d mixed requests at concurrency %d (faults + \
     watchdog + deadlines + malformed + oversized)\n%!"
    requests concurrency;
  let _srv, thread = start_daemon ~socket ~jobs ~max_inflight:256 in
  let total, wall, sent = run_level ~torture:true ~socket ~concurrency ~requests in
  let clean = stop_daemon ~socket thread in
  Printf.printf
    "served %d requests in %.2f s: %d ok (%d degraded), %d structured \
     errors, %d protocol violations; shutdown %s\n%!"
    sent wall total.n_ok total.n_degraded total.n_error total.n_bad
    (if clean then "clean" else "DIRTY");
  let pass =
    total.n_bad = 0 && clean
    && total.n_ok + total.n_error = sent
    && total.n_error > 0 (* the hostile mix must actually exercise errors *)
    && total.n_ok > 0
  in
  Printf.printf "SMOKE %s\n%!" (if pass then "PASS" else "FAIL");
  if pass then 0 else 1

(* ----- argv ----- *)

let () =
  let smoke_mode = ref false in
  let json_out = ref "" in
  let requests = ref 0 in
  let jobs = ref 4 in
  let concurrency = ref 8 in
  let socket = ref "" in
  let spec =
    [
      ("--smoke", Arg.Set smoke_mode, " torture mode: mixed hostile stream, exit 0 iff clean");
      ("--json", Arg.Set_string json_out, "FILE write the latency sweep as JSON");
      ("--requests", Arg.Set_int requests, "N per-level requests (default: 480 sweep / 1200 smoke)");
      ("--jobs", Arg.Set_int jobs, "N daemon worker domains (default 4)");
      ("--concurrency", Arg.Set_int concurrency, "N smoke-mode client threads (default 8)");
      ("--socket", Arg.Set_string socket, "PATH socket path (default: a fresh one in TMPDIR)");
    ]
  in
  Arg.parse (Arg.align spec)
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "loadgen [--smoke] [--json FILE] [--requests N] [--jobs N]";
  let socket =
    if !socket <> "" then !socket
    else
      Filename.concat
        (try Sys.getenv "TMPDIR" with Not_found -> "/tmp")
        (Printf.sprintf "cinm-loadgen-%d.sock" (Unix.getpid ()))
  in
  let code =
    if !smoke_mode then
      smoke ~socket ~jobs:!jobs
        ~requests:(if !requests > 0 then !requests else 1200)
        ~concurrency:!concurrency
    else
      sweep ~socket ~jobs:!jobs
        ~levels:[ 1; 4; 8 ]
        ~requests:(if !requests > 0 then !requests else 480)
        ~json_out:(if !json_out = "" then None else Some !json_out)
  in
  exit code
