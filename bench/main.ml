(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 4). Each experiment prints the series the paper
   reports together with the paper's own numbers so the shape comparison
   is immediate.

   UPMEM experiments run on a 1/16-scale machine model (8 instead of 128
   DPUs per DIMM, with host bandwidth, dispatch overhead and the competing
   CPU scaled identically), so that the functional simulation of every DPU
   stays tractable while all speedup ratios match the full-size
   comparison. The CIM experiments run the accelerator at full scale (it
   has only 4 tiles). See EXPERIMENTS.md.

   Usage: main.exe [fig10|fig10-energy|fig11|fig12|tab4|tab5|dialects|bechamel|all]
          main.exe [hetero|scaling] (heterogeneous partitioning across
                                     cpu+upmem+memristor+cam with
                                     DMA/compute overlap, and the
                                     multi-rank UPMEM scaling sweep; not
                                     part of "all" — the single-device
                                     baselines above pin their own
                                     benchmark lists)
          main.exe --quick ...      (smaller inputs, for CI)
          main.exe --jobs N ...     (simulation domains; default CINM_JOBS
                                     or the machine's core count; 0 =
                                     auto-detect, same as unset)
          main.exe --json FILE ...  (write per-experiment wall-clock and
                                     simulated seconds for regression
                                     tracking; experiments that run the
                                     multi-stream executor also record
                                     per-machine compute/dma/idle tracks)
          main.exe --interp NAME .. (interpreter backend, tree|compiled;
                                     default CINM_INTERP or tree)
          main.exe --strict ...     (verify + print->parse->print fixpoint
                                     after every pass, CINM_STRICT=1
                                     equivalent; --json output unchanged)
          main.exe --trace FILE ... (Chrome trace-event JSON: compile
                                     passes and per-device simulated
                                     timelines; open in ui.perfetto.dev)
          main.exe --metrics ...    (collect the telemetry registry and
                                     dump it to stderr at exit; report
                                     and --json minus wall_s are
                                     byte-identical either way)
          main.exe --batch ...      (run the selected experiments
                                     concurrently on the domain pool,
                                     buffering output per experiment;
                                     printed report and --json minus
                                     wall_s are byte-identical to a
                                     sequential run. CINM_BENCH_BATCH=1
                                     equivalent; --trace forces
                                     sequential)
          main.exe --faults SPEC --seed N
                                    (seeded fault injection, e.g.
                                     dpu_fail=0.05; the retry/remap runtime
                                     must still reproduce fault-free
                                     results, and every benchmark checks
                                     its output against the host)
*)

open Cinm_ir
open Cinm_core
open Cinm_benchmarks
module Usim = Cinm_upmem_sim
module Cpu = Cinm_cpu_sim

let () = Cinm_dialects.Registry.ensure_all ()

let machine_scale = 1.0 /. 16.0
let scaled_dpus_per_dimm = 8

let quick = ref false

(* ----- output routing (--batch) -----

   All experiment printing flows through these shims. Sequentially (the
   default) they write straight to stdout. Under --batch each experiment
   runs on a pool domain with a per-domain buffer installed; the buffers
   are flushed in canonical experiment order once the batch completes, so
   batched output is byte-identical to a sequential run. *)

let out_buf : Buffer.t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let print_string s =
  match Domain.DLS.get out_buf with
  | Some b -> Buffer.add_string b s
  | None -> Stdlib.print_string s

let print_endline s =
  print_string s;
  print_string "\n"

let print_newline () = print_string "\n"

module Printf = struct
  include Printf

  let printf fmt = Printf.ksprintf print_string fmt
end

(* ----- measurement accounting (--json) ----- *)

(* Simulated seconds and run counts accumulate while an experiment
   executes; [timed] snapshots them per experiment and --json dumps the
   records for regression tracking across PRs. The accumulators are
   per-domain so batched experiments (each pinned to one pool domain for
   its whole duration) never race. *)
let sim_acc : (float ref * int ref) Domain.DLS.key =
  Domain.DLS.new_key (fun () -> (ref 0.0, ref 0))

(* Per-machine simulated-time tracks (multi-stream executor runs only),
   summed across the runs of one experiment in first-appearance order.
   Empty for the single-device experiments, whose --json records are
   byte-identical to before the field existed. *)
let tracks_acc : (string * (float * float * float)) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

(* Named per-benchmark scalars an experiment wants pinned in --json (the
   hetero overlap ratios, the per-rank scaling curve). Experiments that
   never call [note_series] keep their records byte-identical. *)
let series_acc : (string * float) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let note_series name v =
  let s = Domain.DLS.get series_acc in
  s := !s @ [ (name, v) ]

let note_report (r : Report.t) =
  let sim_s_acc, sim_runs_acc = Domain.DLS.get sim_acc in
  sim_s_acc := !sim_s_acc +. r.Report.total_s;
  incr sim_runs_acc;
  let module Sched = Cinm_support.Schedule in
  let tracks = Domain.DLS.get tracks_acc in
  List.iter
    (fun (t : Sched.track) ->
      let m = t.Sched.tr_machine in
      let c, d, i =
        Option.value ~default:(0.0, 0.0, 0.0) (List.assoc_opt m !tracks)
      in
      let entry =
        ( m,
          ( c +. t.Sched.tr_compute_s,
            d +. t.Sched.tr_dma_s,
            i +. t.Sched.tr_idle_s ) )
      in
      tracks :=
        if List.mem_assoc m !tracks then
          List.map (fun (m', v) -> if m' = m then entry else (m', v)) !tracks
        else !tracks @ [ entry ])
    r.Report.tracks

(* Every simulated run flows through these shims, so the accounting covers
   all experiments without touching each call site. *)
module Driver = struct
  include Driver

  let run_upmem_func ?backend_name ?host_model ?modul ~sim_config f args =
    let results, report =
      Driver.run_upmem_func ?backend_name ?host_model ?modul ~sim_config f args
    in
    note_report report;
    (results, report)

  let compile_and_run ?verify ?host_model backend f args =
    let results, report =
      Driver.compile_and_run ?verify ?host_model backend f args
    in
    note_report report;
    (results, report)

  let run ?fname ?host_model compiled args =
    let results, report = Driver.run ?fname ?host_model compiled args in
    note_report report;
    (results, report)
end

type json_record = {
  exp : string;
  wall_s : float;
  sim_s : float;
  runs : int;
  tracks : (string * (float * float * float)) list;
      (** machine -> summed (compute_s, dma_s, idle_s); empty unless the
          experiment ran the multi-stream executor *)
  series : (string * float) list;
      (** named per-benchmark scalars (overlap ratios, scaling curves) *)
}

let timed name f =
  let sim_s_acc, sim_runs_acc = Domain.DLS.get sim_acc in
  sim_s_acc := 0.0;
  sim_runs_acc := 0;
  (Domain.DLS.get tracks_acc) := [];
  (Domain.DLS.get series_acc) := [];
  let module Trace = Cinm_support.Trace in
  let span_t0 = if Trace.enabled () then Trace.now_host () else 0.0 in
  let t0 = Unix.gettimeofday () in
  f ();
  let wall_s = Unix.gettimeofday () -. t0 in
  if Trace.enabled () then
    Trace.complete ~cat:"experiment"
      ~args:
        [ ("sim_s", Trace.Float !sim_s_acc); ("runs", Trace.Int !sim_runs_acc) ]
      ~clock:Trace.Host ~pid:Trace.host_pid ~track:"bench" ~ts:span_t0
      ~dur:(Trace.now_host () -. span_t0)
      ("exp:" ^ name);
  {
    exp = name;
    wall_s;
    sim_s = !sim_s_acc;
    runs = !sim_runs_acc;
    tracks = !(Domain.DLS.get tracks_acc);
    series = !(Domain.DLS.get series_acc);
  }

let write_json path recs =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Printf.bprintf b "  \"schema\": \"cinm-bench-1\",\n";
  Printf.bprintf b "  \"quick\": %b,\n" !quick;
  Printf.bprintf b "  \"jobs\": %d,\n" (Cinm_support.Pool.default_jobs ());
  Buffer.add_string b "  \"experiments\": [\n";
  let n = List.length recs in
  List.iteri
    (fun i r ->
      (* tracks render only when present so records of the single-device
         experiments stay byte-identical to the pinned baselines *)
      let tracks =
        match r.tracks with
        | [] -> ""
        | ts ->
          Printf.sprintf ", \"tracks\": [%s]"
            (String.concat ", "
               (List.map
                  (fun (m, (c, d, idle)) ->
                    Printf.sprintf
                      "{ \"machine\": %S, \"compute_s\": %.9f, \"dma_s\": %.9f, \"idle_s\": %.9f }"
                      m c d idle)
                  ts))
      in
      let series =
        match r.series with
        | [] -> ""
        | ss ->
          Printf.sprintf ", \"series\": { %s }"
            (String.concat ", "
               (List.map (fun (k, v) -> Printf.sprintf "%S: %.9f" k v) ss))
      in
      Printf.bprintf b
        "    { \"name\": %S, \"wall_s\": %.6f, \"sim_s\": %.9f, \"runs\": %d%s%s }%s\n"
        r.exp r.wall_s r.sim_s r.runs tracks series
        (if i = n - 1 then "" else ","))
    recs;
  Buffer.add_string b "  ]\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents b);
  close_out oc

(* ----- printing helpers ----- *)

let header title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let row_format widths cells =
  String.concat "  "
    (List.map2 (fun w c -> Printf.sprintf "%-*s" w c) widths cells)

let print_table rows =
  match rows with
  | [] -> ()
  | first :: _ ->
    let n = List.length first in
    let widths =
      List.init n (fun i ->
          List.fold_left (fun acc row -> max acc (String.length (List.nth row i))) 0 rows)
    in
    List.iteri
      (fun i row ->
        print_endline (row_format widths row);
        if i = 0 then
          print_endline (String.concat "  " (List.map (fun w -> String.make w '-') widths)))
      rows

let ms v = Printf.sprintf "%.4g" (1e3 *. v)
let x v = Printf.sprintf "%.2fx" v

let geomean = Cinm_support.Util.geomean

(* ----- configurations ----- *)

let scaled_host = Cpu.Model.scaled machine_scale Cpu.Model.xeon_opt

let upmem_backend ~dimms ~optimize =
  Backend.default_upmem ~dimms ~dpus_per_dimm:scaled_dpus_per_dimm ~tasklets:16 ~optimize ()

let scaled_sim_config (c : Backend.upmem_config) =
  let base = Driver.upmem_sim_config c in
  {
    base with
    Usim.Config.host_to_mram_bw = base.Usim.Config.host_to_mram_bw *. machine_scale;
    mram_to_host_bw = base.Usim.Config.mram_to_host_bw *. machine_scale;
    launch_overhead_s = base.Usim.Config.launch_overhead_s *. machine_scale;
  }

(* Run a device-independent benchmark through the CINM flow on UPMEM,
   reporting kernel+transfer time (the PrIM methodology) and host time. *)
let run_cinm_upmem ~config (bench : Benchmark.t) =
  let compiled = Driver.compile_func (Backend.Upmem config) (bench.Benchmark.build ()) in
  let f = List.hd compiled.Driver.modul.Func.funcs in
  let results, report =
    Driver.run_upmem_func ~backend_name:"cinm" ~host_model:scaled_host
      ~modul:compiled.Driver.modul ~sim_config:(scaled_sim_config config) f
      (bench.Benchmark.inputs ())
  in
  if not (Benchmark.results_match bench results) then
    failwith (bench.Benchmark.name ^ ": device results differ from host reference!");
  report

let run_prim_upmem ~config (baseline : Benchmark.t) =
  let results, report =
    Driver.run_upmem_func ~backend_name:"prim" ~host_model:scaled_host
      ~sim_config:(scaled_sim_config config)
      (baseline.Benchmark.build ())
      (baseline.Benchmark.inputs ())
  in
  ignore results;
  report

let run_cpu (bench : Benchmark.t) =
  let _, report =
    Driver.compile_and_run ~host_model:scaled_host Backend.Host_xeon
      (bench.Benchmark.build ()) (bench.Benchmark.inputs ())
  in
  report

(* DPU time, PrIM methodology: kernel time dominates the reported numbers;
   we use device time (kernel + on-device DMA) plus the scaled dispatch. *)
let dpu_time (r : Report.t) = List.assoc "kernel" r.Report.breakdown

(* ----- Figure 10: CIM configurations vs the ARM host ----- *)

let cim_variants =
  [
    ("cim", false, false);
    ("cim-min-writes", true, false);
    ("cim-parallel", false, true);
    ("cim-opt", true, true);
  ]

let fig10_suite () =
  let s = if !quick then 1 else 4 in
  [
    (* sized so the M dimension streams in several chunks (the min-writes
       interchange matters) and K/N tiles fill the 64x64 crossbars *)
    Ml_kernels.mm ~m:(224 * s) ~k:256 ~n:256 ();
    Ml_kernels.mm2 ~m:(112 * s) ~k:256 ~n:256 ~p:256 ();
    Ml_kernels.mm3 ~m:(112 * s) ~k:256 ~n:256 ~p:256 ~q:256 ();
    Ml_kernels.conv_multi ~h:(32 * s) ~w:64 ~kh:8 ~kw:8 ~filters:256 ();
    Prim_kernels.mv ~m:(256 * s) ~n:256 ();
    Ml_kernels.contrl ~a:16 ~b:16 ~c:16 ~d:(4 * s) ~e:8 ~f:8 ();
    Ml_kernels.contrs1 ~a:(112 * s) ~b:256 ~c:8 ~d:8 ();
    Ml_kernels.contrs2 ~a:32 ~b:256 ~c:(8 * s) ~d:64 ();
    Ml_kernels.mlp ~batch:(112 * s) ~d_in:256 ~d_hidden:256 ~d_out:128 ();
  ]

let run_cim ~min_writes ~parallel (bench : Benchmark.t) =
  let backend = Backend.Cim (Backend.default_cim ~min_writes ~parallel ()) in
  let results, report =
    Driver.compile_and_run backend (bench.Benchmark.build ()) (bench.Benchmark.inputs ())
  in
  if not (Benchmark.results_match bench results) then
    failwith (bench.Benchmark.name ^ ": cim results differ from host reference!");
  report

let fig10 () =
  header "Figure 10: CIM configurations, speedup over the ARM host (higher is better)";
  let suite = fig10_suite () in
  let arm_time (b : Benchmark.t) =
    let _, r =
      Driver.compile_and_run Backend.Host_arm (b.Benchmark.build ()) (b.Benchmark.inputs ())
    in
    r.Report.total_s
  in
  let rows = ref [] in
  let speedups = Hashtbl.create 8 in
  let writes = Hashtbl.create 8 in
  List.iter
    (fun (b : Benchmark.t) ->
      let t_arm = arm_time b in
      let cells =
        List.map
          (fun (vname, mw, par) ->
            let r = run_cim ~min_writes:mw ~parallel:par b in
            let sp = t_arm /. r.Report.total_s in
            Hashtbl.replace speedups vname
              (sp :: Option.value ~default:[] (Hashtbl.find_opt speedups vname));
            Hashtbl.replace writes vname
              (Report.counter r "crossbar_writes"
              :: Option.value ~default:[] (Hashtbl.find_opt writes vname));
            x sp)
          cim_variants
      in
      rows := (b.Benchmark.name :: cells) :: !rows)
    suite;
  print_table
    (("benchmark" :: List.map (fun (n, _, _) -> n) cim_variants) :: List.rev !rows);
  let gm name = geomean (Hashtbl.find speedups name) in
  Printf.printf "\ngeomean speedup vs arm: cim=%.1fx  min-writes=%.1fx  parallel=%.1fx  opt=%.1fx\n"
    (gm "cim") (gm "cim-min-writes") (gm "cim-parallel") (gm "cim-opt");
  let write_reduction =
    geomean
      (List.map2
         (fun base opt -> float_of_int base /. float_of_int (max 1 opt))
         (Hashtbl.find writes "cim")
         (Hashtbl.find writes "cim-min-writes"))
  in
  Printf.printf "crossbar write ops: %d (cim) vs %d (min-writes); geomean reduction %.1fx\n"
    (List.fold_left ( + ) 0 (Hashtbl.find writes "cim"))
    (List.fold_left ( + ) 0 (Hashtbl.find writes "cim-min-writes"))
    write_reduction;
  print_endline
    "paper: cim ~10x, min-writes 12.4x, opt 30x (geomean); writes reduced 7x"

let fig10_energy () =
  header "Figure 10 (energy): cim-opt energy vs the ARM host (ratio > 1 = cim better)";
  let suite = fig10_suite () in
  let ratios = ref [] in
  let rows =
    List.map
      (fun (b : Benchmark.t) ->
        let _, arm =
          Driver.compile_and_run Backend.Host_arm (b.Benchmark.build ())
            (b.Benchmark.inputs ())
        in
        let r = run_cim ~min_writes:true ~parallel:true b in
        let ratio = arm.Report.energy_j /. r.Report.energy_j in
        ratios := ratio :: !ratios;
        [
          b.Benchmark.name;
          Printf.sprintf "%.3g mJ" (1e3 *. arm.Report.energy_j);
          Printf.sprintf "%.3g mJ" (1e3 *. r.Report.energy_j);
          x ratio;
        ])
      suite
  in
  print_table ([ "benchmark"; "arm energy"; "cim-opt energy"; "arm/cim" ] :: rows);
  Printf.printf "\ngeomean energy reduction: %.1fx\n" (geomean !ratios);
  print_endline "paper: cim-opt ~5x less energy (geomean); mv/conv 30-40% worse than cpu"

(* ----- Figure 11: impact of the CINM device-aware optimizations ----- *)

let fig11_suite () =
  let s = if !quick then 4 else 16 in
  [
    (* M sized to span the PU grid of the largest DIMM configuration *)
    Ml_kernels.mm ~m:(128 * s) ~k:16 ~n:16 ();
    Ml_kernels.mm2 ~m:(128 * s) ~k:16 ~n:16 ~p:16 ();
    Ml_kernels.mm3 ~m:(128 * s) ~k:16 ~n:16 ~p:16 ~q:16 ();
    Ml_kernels.conv ~h:(32 * s) ~w:66 ();
    Ml_kernels.contrs1 ~a:(128 * s) ~b:16 ~c:4 ~d:4 ();
    Ml_kernels.mlp ~batch:(128 * s) ~d_in:16 ~d_hidden:16 ~d_out:16 ();
  ]

let fig11 () =
  header "Figure 11: cinm vs cinm-opt kernel time (ms) on UPMEM";
  let dimm_configs = [ 4; 8; 16 ] in
  let gains = Hashtbl.create 4 in
  let rows =
    List.map
      (fun (b : Benchmark.t) ->
        b.Benchmark.name
        :: List.concat_map
             (fun dimms ->
               let base = run_cinm_upmem ~config:(upmem_backend ~dimms ~optimize:false) b in
               let opt = run_cinm_upmem ~config:(upmem_backend ~dimms ~optimize:true) b in
               let t_base = dpu_time base and t_opt = dpu_time opt in
               Hashtbl.replace gains dimms
                 ((t_base /. t_opt)
                 :: Option.value ~default:[] (Hashtbl.find_opt gains dimms));
               [ ms t_base; ms t_opt ])
             dimm_configs)
      (fig11_suite ())
  in
  print_table
    (("benchmark"
     :: List.concat_map
          (fun d -> [ Printf.sprintf "cinm-%dd" d; Printf.sprintf "opt-%dd" d ])
          dimm_configs)
    :: rows);
  Printf.printf "\ngeomean cinm-opt speedup over cinm: ";
  List.iter
    (fun d ->
      let g = geomean (Hashtbl.find gains d) in
      Printf.printf "%dd: %.0f%% faster  " d ((1.0 -. (1.0 /. g)) *. 100.0))
    dimm_configs;
  print_newline ();
  print_endline "paper: cinm-opt is 47% (4d), 42% (8d), 40% (16d) faster than cinm"

(* ----- Figure 12: CPU vs cinm vs PrIM ----- *)

let fig12_sizes () =
  if !quick then
    { Suites.default_prim_sizes with Suites.va_n = 16384; red_n = 16384; hst_n = 16384;
      sel_n = 16384; ts_n = 16384 + 7 }
  else Suites.default_prim_sizes

let fig12 () =
  header "Figure 12: cpu-opt vs cinm vs prim, PrIM workloads (time in ms)";
  let sizes = fig12_sizes () in
  let dimm_configs = [ 4; 8; 16 ] in
  let cinm_vs_prim = Hashtbl.create 4 in
  let prim_vs_cpu = Hashtbl.create 4 in
  let suite = Suites.prim_suite ~sizes () in
  let rows =
    List.map
      (fun (b : Benchmark.t) ->
        let cpu_r = run_cpu b in
        let t_cpu = cpu_r.Report.total_s in
        b.Benchmark.name :: ms t_cpu
        :: List.concat_map
             (fun dimms ->
               let config = upmem_backend ~dimms ~optimize:true in
               let cinm_r = run_cinm_upmem ~config b in
               let t_cinm = dpu_time cinm_r in
               let prim_cells =
                 match
                   List.find_opt
                     (fun (p : Benchmark.t) -> p.Benchmark.name = b.Benchmark.name)
                     (Suites.prim_baselines ~sizes config)
                 with
                 | Some baseline ->
                   let prim_r = run_prim_upmem ~config baseline in
                   let t_prim = dpu_time prim_r in
                   Hashtbl.replace cinm_vs_prim dimms
                     ((t_prim /. t_cinm)
                     :: Option.value ~default:[] (Hashtbl.find_opt cinm_vs_prim dimms));
                   Hashtbl.replace prim_vs_cpu dimms
                     ((t_cpu /. t_prim)
                     :: Option.value ~default:[] (Hashtbl.find_opt prim_vs_cpu dimms));
                   [ ms t_prim ]
                 | None -> [ "-" ]
               in
               [ ms t_cinm ] @ prim_cells)
             dimm_configs)
      suite
  in
  print_table
    (("benchmark" :: "cpu-opt"
     :: List.concat_map
          (fun d -> [ Printf.sprintf "cinm-%dd" d; Printf.sprintf "prim-%dd" d ])
          dimm_configs)
    :: rows);
  Printf.printf "\ngeomean prim speedup vs cpu-opt: ";
  List.iter
    (fun d -> Printf.printf "%dd: %.1fx  " d (geomean (Hashtbl.find prim_vs_cpu d)))
    dimm_configs;
  Printf.printf "\ngeomean cinm speedup vs prim:    ";
  List.iter
    (fun d -> Printf.printf "%dd: %.1fx  " d (geomean (Hashtbl.find cinm_vs_prim d)))
    dimm_configs;
  print_newline ();
  print_endline "paper: prim 1.9x/3.1x/5.1x vs cpu; cinm 1.6x/1.9x/2.0x vs prim (4d/8d/16d)";
  print_endline "paper per-benchmark: va ~1.23x, hst-l ~3.7x, mv comparable, ts prim ahead"

(* ----- Table 4: lines of code ----- *)

let tab4 () =
  header "Table 4: application representation size, CINM (cinm-level IR) vs UPMEM level";
  let apps =
    [
      ("mm", (Ml_kernels.mm ~m:32 ~k:8 ~n:8 ()).Benchmark.build);
      ("2mm", (Ml_kernels.mm2 ~m:16 ~k:8 ~n:8 ~p:8 ()).Benchmark.build);
      ("3mm", (Ml_kernels.mm3 ~m:16 ~k:8 ~n:8 ~p:8 ~q:8 ()).Benchmark.build);
      ("conv", (Ml_kernels.conv ~h:10 ~w:10 ()).Benchmark.build);
      ("contrl", (Ml_kernels.contrl ~a:2 ~b:2 ~c:2 ~d:2 ~e:3 ~f:3 ()).Benchmark.build);
      ("contrs1", (Ml_kernels.contrs1 ~a:4 ~b:4 ~c:3 ~d:3 ()).Benchmark.build);
      ("contrs2", (Ml_kernels.contrs2 ~a:4 ~b:4 ~c:4 ~d:3 ()).Benchmark.build);
      ("mlp", (Ml_kernels.mlp ~batch:8 ~d_in:8 ~d_hidden:8 ~d_out:4 ()).Benchmark.build);
      ("va", (Prim_kernels.va ~n:1024 ()).Benchmark.build);
      ("mv", (Prim_kernels.mv ~m:64 ~n:16 ()).Benchmark.build);
      ("red", (Prim_kernels.red ~n:1024 ()).Benchmark.build);
      ("hst-l", (Prim_kernels.hst_l ~n:512 ~bins:16 ()).Benchmark.build);
      ("sel", (Prim_kernels.sel ~n:512 ()).Benchmark.build);
      ("ts", (Prim_kernels.ts ~n:135 ~m:8 ~k:2 ()).Benchmark.build);
      ("bfs", (Prim_kernels.bfs ~v:32 ()).Benchmark.build);
    ]
  in
  let reductions = ref [] in
  let rows =
    List.map
      (fun (app, build) ->
        let row = Loc_metrics.row ~app (build ()) in
        reductions := Loc_metrics.reduction row :: !reductions;
        [
          app;
          string_of_int row.Loc_metrics.cinm_loc;
          string_of_int row.Loc_metrics.upmem_loc;
          Printf.sprintf "%.0f" (Loc_metrics.reduction row);
        ])
      apps
  in
  print_table ([ "application"; "CINM (IR)"; "UPMEM level"; "reduction" ] :: rows);
  Printf.printf "\ngeomean reduction: %.0fx (paper: ~15x geomean, 4-40x range)\n"
    (geomean !reductions)

(* ----- Table 5 + dialect inventories ----- *)

let tab5 () =
  header "Table 5: comparison of CI/NM compilers and software frameworks";
  print_table (Related_work.to_table ())

let dialects () =
  header "Dialect inventories (paper Tables 1-3)";
  List.iter
    (fun d ->
      Printf.printf "\n[%s] %s\n" d.Dialect.dname d.Dialect.description;
      List.iter
        (fun (o : Dialect.op_def) ->
          Printf.printf "  %-28s %s\n" o.Dialect.op_name o.Dialect.summary)
        (Dialect.ops_of d))
    (Dialect.all_dialects ())

(* ----- ablations: design-choice sweeps (DESIGN.md) ----- *)

let ablation () =
  header "Ablation 1: tasklets per DPU (pipeline saturation, PrIM ~11 needed)";
  let bench_for_tasklets t =
    let config = Backend.default_upmem ~dimms:1 ~dpus_per_dimm:8 ~tasklets:t ~optimize:true () in
    let b = Prim_kernels.va ~n:16384 () in
    let r = run_cinm_upmem ~config b in
    (t, dpu_time r)
  in
  print_table
    ([ "tasklets"; "va kernel (ms)" ]
    :: List.map
         (fun t ->
           let t', s = bench_for_tasklets t in
           [ string_of_int t'; ms s ])
         [ 1; 2; 4; 8; 11; 16 ]);
  print_endline "expected: time drops steeply until ~11 tasklets, then flattens";

  header "Ablation 2: DMA block size in the naive kernels (cinm-nd)";
  let bench_block naive_block =
    let bench = Prim_kernels.va ~n:16384 () in
    let m = Func.create_module () in
    Func.add_func m (bench.Cinm_benchmarks.Benchmark.build ());
    Cinm_ir.Pass.run_pipeline
      [
        Cinm_transforms.Linalg_to_cinm.pass;
        Cinm_transforms.Target_select.pass
          ~policy:
            { Cinm_transforms.Target_select.default_policy with forced_target = Some "cnm" }
          ();
        Cinm_transforms.Cinm_to_cnm.pass
          ~options:
            { Cinm_transforms.Cinm_to_cnm.dpus = 8; tasklets = 16; optimize = false;
              max_rows_per_launch = 64 } ();
        Cinm_transforms.Cnm_to_upmem.pass
          ~options:{ Cinm_transforms.Cnm_to_upmem.default_options with naive_block } ();
      ]
      m;
    let _, report =
      Driver.run_upmem_func ~host_model:scaled_host
        ~sim_config:(scaled_sim_config (upmem_backend ~dimms:1 ~optimize:false))
        (List.hd m.Func.funcs)
        (bench.Cinm_benchmarks.Benchmark.inputs ())
    in
    dpu_time report
  in
  print_table
    ([ "block (elems)"; "va kernel (ms)" ]
    :: List.map (fun bsz -> [ string_of_int bsz; ms (bench_block bsz) ]) [ 8; 32; 64; 128 ]);
  print_endline "expected: larger blocks amortize the fixed DMA setup cost";

  header "Ablation 3: elementwise fusion on/off (bfs, 4 levels x 2 chains)";
  let bfs_time ~fuse =
    let config = upmem_backend ~dimms:1 ~optimize:true in
    let bench = Prim_kernels.bfs ~v:64 () in
    let m = Func.create_module () in
    Func.add_func m (bench.Cinm_benchmarks.Benchmark.build ());
    let passes =
      [ Cinm_transforms.Tosa_to_linalg.pass; Cinm_transforms.Linalg_to_cinm.pass;
        Cinm_transforms.Target_select.pass
          ~policy:
            { Cinm_transforms.Target_select.default_policy with forced_target = Some "cnm" }
          () ]
      @ (if fuse then [ Cinm_transforms.Ew_fusion.pass ] else [])
      @ [
          Cinm_transforms.Cinm_to_cnm.pass
            ~options:
              { Cinm_transforms.Cinm_to_cnm.dpus = config.Backend.dimms * config.Backend.dpus_per_dimm;
                tasklets = config.Backend.tasklets; optimize = true; max_rows_per_launch = 64 } ();
          Cinm_transforms.Cnm_to_upmem.pass ();
        ]
    in
    Cinm_ir.Pass.run_pipeline passes m;
    let launches = ref 0 in
    List.iter
      (Func.walk (fun op -> if op.Ir.name = "upmem.launch" then incr launches))
      m.Func.funcs;
    let _, report =
      Driver.run_upmem_func ~host_model:scaled_host ~sim_config:(scaled_sim_config config)
        (List.hd m.Func.funcs)
        (bench.Cinm_benchmarks.Benchmark.inputs ())
    in
    (!launches, dpu_time report, report.Report.device_s)
  in
  let l_on, k_on, d_on = bfs_time ~fuse:true in
  let l_off, k_off, d_off = bfs_time ~fuse:false in
  print_table
    [
      [ "config"; "launches"; "kernel (ms)"; "device total (ms)" ];
      [ "fusion on"; string_of_int l_on; ms k_on; ms d_on ];
      [ "fusion off"; string_of_int l_off; ms k_off; ms d_off ];
    ];
  print_endline "expected: fusion cuts launches and transfer traffic (paper section 2.4)";

  header "Ablation 4: workgroup transform footprints (paper Fig. 8)";
  let open Cinm_transforms.Workgroup_analysis in
  let m_, p_, n_, o_ = (64, 8, 4, 4) in
  let expr = paper_example ~m:m_ ~p:p_ ~n:n_ ~o:o_ in
  Printf.printf "x_ijk = A_ir B_rjk + C_jk with M=%d P=%d N=%d O=%d\n" m_ p_ n_ o_;
  Printf.printf "paper (i,j,k) form: %d elements; measured: %d\n"
    (paper_ijk_footprint ~m:m_ ~p:p_ ~n:n_ ~o:o_)
    (footprint expr [ 'i'; 'j'; 'k' ]);
  Printf.printf "paper (h=jk,i) form: %d elements; measured (j,k,i): %d\n"
    (paper_jk_footprint ~m:m_ ~p:p_ ~n:n_ ~o:o_)
    (footprint expr [ 'j'; 'k'; 'i' ]);
  print_endline "cheapest five tree orders:";
  Cinm_support.Util.list_take 5 (rank expr)
  |> List.iter (fun (axes, fp, pu) ->
         Printf.printf "  axes=%-4s footprint=%6d elements  PUs=%d\n"
           (axes_to_string axes) fp pu);

  header "Ablation 5: tiling chunk size (Fig. 9 shapes: rows per PU per launch)";
  let chunk_time rows =
    let config = { (upmem_backend ~dimms:1 ~optimize:true) with Backend.max_rows_per_launch = rows } in
    let b = Ml_kernels.mm ~m:1024 ~k:16 ~n:16 () in
    let r = run_cinm_upmem ~config b in
    (List.assoc "cpu->dpu" r.Report.breakdown, dpu_time r, Report.counter r "launches")
  in
  print_table
    ([ "rows/PU/launch"; "launches"; "cpu->dpu (ms)"; "kernel (ms)" ]
    :: List.map
         (fun rows ->
           let xfer, k, l = chunk_time rows in
           [ string_of_int rows; string_of_int l; ms xfer; ms k ])
         [ 1; 2; 4; 8 ]);
  print_endline "expected: bigger chunks = fewer launches, same total kernel work"

(* ----- bechamel microbenchmarks of the compiler itself ----- *)

let bechamel () =
  header "Bechamel: real cost of the compile+simulate pipeline per experiment";
  let module Bch = Bechamel in
  let mk_test name f = Bch.Test.make ~name (Bch.Staged.stage f) in
  let tiny = Backend.default_upmem ~dimms:1 ~dpus_per_dimm:4 ~tasklets:4 () in
  let bench_mm = Ml_kernels.mm ~m:32 ~k:8 ~n:8 () in
  let bench_va = Prim_kernels.va ~n:1024 () in
  let tests =
    [
      mk_test "fig10:cim compile+sim (mm)" (fun () ->
          ignore
            (Driver.compile_and_run
               (Backend.Cim (Backend.default_cim ~min_writes:true ~parallel:true ()))
               (bench_mm.Benchmark.build ()) (bench_mm.Benchmark.inputs ())));
      mk_test "fig11:upmem compile+sim (mm)" (fun () ->
          ignore
            (Driver.compile_and_run (Backend.Upmem tiny) (bench_mm.Benchmark.build ())
               (bench_mm.Benchmark.inputs ())));
      mk_test "fig12:upmem compile+sim (va)" (fun () ->
          ignore
            (Driver.compile_and_run (Backend.Upmem tiny) (bench_va.Benchmark.build ())
               (bench_va.Benchmark.inputs ())));
      mk_test "tab4:loc metric (mm)" (fun () ->
          ignore (Loc_metrics.row ~app:"mm" (bench_mm.Benchmark.build ())));
      mk_test "tab5:related-work table" (fun () -> ignore (Related_work.to_table ()));
    ]
  in
  let benchmark test =
    let instance = Bch.Toolkit.Instance.monotonic_clock in
    let cfg = Bch.Benchmark.cfg ~limit:200 ~quota:(Bch.Time.second 0.5) () in
    Bch.Benchmark.all cfg [ instance ] test
  in
  List.iter
    (fun test ->
      let results = benchmark (Bch.Test.make_grouped ~name:"g" [ test ]) in
      Hashtbl.iter
        (fun name raw ->
          let stats =
            Bch.Analyze.one
              (Bch.Analyze.ols ~bootstrap:0 ~r_square:false
                 ~predictors:[| Bch.Measure.run |])
              Bch.Toolkit.Instance.monotonic_clock raw
          in
          match Bch.Analyze.OLS.estimates stats with
          | Some [ est ] -> Printf.printf "  %-40s %10.3f us/run\n" name (est /. 1e3)
          | _ -> Printf.printf "  %-40s (no estimate)\n" name)
        results)
    tests

(* ----- heterogeneous partitioning + async DMA/compute overlap ----- *)

(* One module split across cpu + upmem + memristor + cam by the
   dependency-aware partitioner, executed on the multi-stream runtime.
   The e2e columns come from the same event logs replayed under the two
   disciplines (Schedule.summarize), so "overlap" is a pure simulated
   ratio, independent of host job count. *)

let hetero_backend ~ranks =
  Backend.default_hetero ~ranks ~dimms:2 ~dpus_per_dimm:scaled_dpus_per_dimm ()

let hetero_suite () =
  let het =
    if !quick then
      [
        Hetero_kernels.mix ~m:256 ~ew:16384 ~db:1024 ~q:64 ();
        Hetero_kernels.batch ~n:4096 ();
      ]
    else Hetero_kernels.all ()
  in
  let ml = Suites.ml_suite () in
  het @ [ Suites.find "mm" ml; Suites.find "3mm" ml; Suites.find "mlp" ml ]

let run_hetero ~backend (bench : Benchmark.t) =
  let compiled = Driver.compile_func backend (bench.Benchmark.build ()) in
  let plan =
    match compiled.Driver.modul.Func.funcs with
    | f :: _ -> (
      match List.assoc_opt "partition" f.Func.fattrs with
      | Some (Attr.Str s) -> s
      | _ -> "-")
    | [] -> "-"
  in
  let results, report = Driver.run compiled (bench.Benchmark.inputs ()) in
  if not (Benchmark.results_match bench results) then
    failwith (bench.Benchmark.name ^ ": hetero results differ from host reference!");
  (plan, report)

let hetero () =
  header
    "Heterogeneous partitioning: one module on cpu+upmem+memristor+cam, \
     DMA/compute overlapped";
  let backend = hetero_backend ~ranks:4 in
  let overlaps = ref [] in
  let rows =
    List.map
      (fun (b : Benchmark.t) ->
        let plan, r = run_hetero ~backend b in
        let ovl = List.assoc "e2e_overlapped" r.Report.breakdown in
        let seq = List.assoc "e2e_sequential" r.Report.breakdown in
        let busy = List.assoc "max_channel_busy" r.Report.breakdown in
        note_series (b.Benchmark.name ^ ".e2e_overlapped_s") ovl;
        note_series (b.Benchmark.name ^ ".e2e_sequential_s") seq;
        note_series (b.Benchmark.name ^ ".overlap_speedup") (seq /. ovl);
        overlaps := (seq /. ovl) :: !overlaps;
        [ b.Benchmark.name; plan; ms ovl; ms seq; x (seq /. ovl); ms busy ])
      (hetero_suite ())
  in
  print_table
    ([
       "benchmark"; "partition"; "e2e-ovl (ms)"; "e2e-seq (ms)"; "overlap";
       "busiest engine (ms)";
     ]
    :: rows);
  Printf.printf "\ngeomean overlap speedup (sequential sum / overlapped critical path): %.2fx\n"
    (geomean !overlaps);
  print_endline
    "expected: het-* split across all four machines and overlap >= 1.5x; the\n\
     single-kernel ml benchmarks stay on their best device (overlap ~1x)"

(* ----- multi-rank UPMEM scaling ----- *)

let scaling () =
  header "Multi-rank UPMEM scaling: kernel time vs ranks (1 DIMM, 8 DPUs/rank)";
  let ranks_list = if !quick then [ 1; 4; 16 ] else [ 1; 4; 16; 64 ] in
  let n = if !quick then 65536 else 262144 in
  let suite = [ Prim_kernels.va ~n (); Prim_kernels.red ~n () ] in
  let rows =
    List.map
      (fun (b : Benchmark.t) ->
        let times =
          List.map
            (fun ranks ->
              let config =
                Backend.default_upmem ~ranks ~dimms:1
                  ~dpus_per_dimm:scaled_dpus_per_dimm ~tasklets:16
                  ~optimize:true ()
              in
              let t = dpu_time (run_cinm_upmem ~config b) in
              note_series
                (Printf.sprintf "%s.kernel_s@%dr" b.Benchmark.name ranks)
                t;
              t)
            ranks_list
        in
        let t1 = List.hd times in
        b.Benchmark.name
        :: List.concat
             (List.map2
                (fun ranks t ->
                  [ Printf.sprintf "%dr: %s" ranks (ms t); x (t1 /. t) ])
                ranks_list times))
      suite
  in
  print_table
    (("benchmark"
     :: List.concat_map
          (fun r -> [ Printf.sprintf "kernel @%dr (ms)" r; "speedup" ])
          ranks_list)
    :: rows);
  print_endline
    "expected: near-linear until the rows run out, then the extra ranks idle;\n\
     every configuration checks its tensors against the host reference"

(* ----- entry point ----- *)

let run_experiment name =
  let f =
    match name with
    | "fig10" -> fig10
    | "fig10-energy" -> fig10_energy
    | "fig11" -> fig11
    | "fig12" -> fig12
    | "tab4" -> tab4
    | "tab5" -> tab5
    | "dialects" -> dialects
    | "bechamel" -> bechamel
    | "ablation" -> ablation
    | "hetero" -> hetero
    | "scaling" -> scaling
    | cmd ->
      Printf.eprintf
        "unknown experiment %S (expected fig10|fig10-energy|fig11|fig12|tab4|tab5|dialects|ablation|bechamel|hetero|scaling|all)\n"
        cmd;
      exit 1
  in
  timed name f

let all_experiments =
  [ "fig10"; "fig10-energy"; "fig11"; "fig12"; "tab4"; "tab5"; "dialects"; "ablation" ]

(* Batched execution: experiments are independent (each builds its own
   benchmark descriptors and machines), so they can share the domain
   pool. Nested machine-level [Pool.run] calls inside an experiment fall
   back to sequential execution via the pool's re-entrancy guard, and
   sim stats are host-order-deterministic by construction, so the --json
   records (minus wall_s) and the printed report are byte-identical to a
   sequential run. Output is buffered per experiment (see [out_buf]) and
   flushed in canonical order. *)
let run_batch cmds =
  let arr = Array.of_list cmds in
  let n = Array.length arr in
  let outputs = Array.make n "" in
  let recs : json_record option array = Array.make n None in
  let pool = Cinm_support.Pool.default () in
  Fun.protect
    ~finally:(fun () -> Array.iter Stdlib.print_string outputs)
    (fun () ->
      Cinm_support.Pool.run pool n (fun i ->
          let b = Buffer.create 65536 in
          Domain.DLS.set out_buf (Some b);
          Fun.protect
            ~finally:(fun () ->
              Domain.DLS.set out_buf None;
              outputs.(i) <- Buffer.contents b)
            (fun () -> recs.(i) <- Some (run_experiment arr.(i)))));
  Array.to_list recs |> List.filter_map Fun.id

let () =
  let json_out = ref None in
  let trace_out = ref None in
  let fault_rates = ref None in
  let fault_seed = ref None in
  let batch = ref (Sys.getenv_opt "CINM_BENCH_BATCH" <> None) in
  let rec parse acc = function
    | [] -> List.rev acc
    | "--quick" :: rest ->
      quick := true;
      parse acc rest
    | "--batch" :: rest ->
      batch := true;
      parse acc rest
    | "--faults" :: spec :: rest -> (
      match Cinm_support.Fault.parse spec with
      | Ok plan ->
        fault_rates := Some plan;
        parse acc rest
      | Error msg ->
        Printf.eprintf "--faults: %s\n" msg;
        exit 1)
    | [ "--faults" ] ->
      Printf.eprintf "--faults expects a spec like dpu_fail=0.05,bitflip=1e-7\n";
      exit 1
    | "--seed" :: n :: rest -> (
      match int_of_string_opt n with
      | Some s ->
        fault_seed := Some s;
        parse acc rest
      | _ ->
        Printf.eprintf "--seed expects an integer, got %S\n" n;
        exit 1)
    | [ "--seed" ] ->
      Printf.eprintf "--seed expects an integer\n";
      exit 1
    | "--jobs" :: n :: rest -> (
      match int_of_string_opt n with
      | Some j when j >= 0 ->
        (* 0 = auto-detect (Domain.recommended_domain_count), same as an
           unset CINM_JOBS; the pool resolves it *)
        Cinm_support.Pool.set_default_jobs j;
        parse acc rest
      | _ ->
        Printf.eprintf "--jobs expects a non-negative integer (0 = auto), got %S\n" n;
        exit 1)
    | [ "--jobs" ] ->
      Printf.eprintf "--jobs expects a non-negative integer (0 = auto)\n";
      exit 1
    | "--strict" :: rest ->
      (* verify + print->parse->print fixpoint after every pass; the
         compile stage gets slower but --json output is unchanged *)
      Cinm_ir.Pass.set_strict true;
      parse acc rest
    | "--interp" :: b :: rest -> (
      match Cinm_interp.Compile.backend_of_string b with
      | Some backend ->
        Cinm_interp.Compile.set_backend backend;
        parse acc rest
      | None ->
        Printf.eprintf "--interp expects tree|compiled, got %S\n" b;
        exit 1)
    | [ "--interp" ] ->
      Printf.eprintf "--interp expects tree|compiled\n";
      exit 1
    | "--json" :: file :: rest ->
      json_out := Some file;
      parse acc rest
    | [ "--json" ] ->
      Printf.eprintf "--json expects a file name\n";
      exit 1
    | "--trace" :: file :: rest ->
      trace_out := Some file;
      Cinm_support.Trace.enable ();
      parse acc rest
    | [ "--trace" ] ->
      Printf.eprintf "--trace expects a file name\n";
      exit 1
    | "--metrics" :: rest ->
      (* collect the telemetry registry (histograms per pass, codegen
         counters, ...) and dump it to stderr at exit; the printed
         report and --json minus wall_s must be byte-identical with or
         without this flag — CI asserts that *)
      Cinm_support.Trace.Metrics.enable ();
      at_exit (fun () ->
          Printf.eprintf "%s%!" (Cinm_support.Trace.Metrics.dump ()));
      parse acc rest
    | cmd :: rest -> parse (cmd :: acc) rest
  in
  let cmds = parse [] (List.tl (Array.to_list Sys.argv)) in
  (match (!fault_rates, !fault_seed) with
  | Some plan, seed ->
    (* --seed overrides a seed= key in the spec *)
    let plan =
      match seed with
      | Some s -> { plan with Cinm_support.Fault.seed = s }
      | None -> plan
    in
    Cinm_support.Fault.set_default (Some plan);
    Printf.eprintf "[bench] fault injection enabled: %s\n%!"
      (Cinm_support.Fault.to_string plan)
  | None, Some _ ->
    Printf.eprintf "--seed has no effect without --faults\n";
    exit 1
  | None, None -> ());
  let cmds =
    match cmds with
    | [] | [ "all" ] -> all_experiments
    | cmds -> cmds
  in
  let records =
    (* tracing needs the sequential host timeline, so --trace wins *)
    if !batch && List.length cmds > 1 && not (Cinm_support.Trace.enabled ())
    then run_batch cmds
    else List.map run_experiment cmds
  in
  Option.iter (fun path -> write_json path records) !json_out;
  Option.iter
    (fun file ->
      Cinm_support.Trace.write file;
      Printf.eprintf "[bench] trace written to %s (open in ui.perfetto.dev)\n%!" file)
    !trace_out
