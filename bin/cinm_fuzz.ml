(* cinm-fuzz: differential fuzzing + chaos harness.

   Default mode generates one verifier-valid module per seed and runs it
   through the full differential oracle matrix (tree vs compiled
   interpreter, every device backend vs the CPU reference, jobs 1 vs N,
   strict mode, deterministic faults vs fault-free). Any mismatch is
   auto-shrunk with the cinm_reduce pipeline under a backend-differential
   predicate and lands in the corpus as a seeded reproducer plus a
   one-line triage record.

   Examples:
     cinm_fuzz --seed-range 0..200
     cinm_fuzz --seed-range 0..50 --corpus-dir fuzz-corpus
     cinm_fuzz --demo-shrink --corpus-dir fuzz-corpus
     cinm_fuzz --chaos --requests 400 --clients 8
     cinm_fuzz --chaos --socket /tmp/cinm.sock
*)

open Cmdliner
module Fuzz = Cinm_fuzz_lib

let () = Cinm_dialects.Registry.ensure_all ()

let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else if String.sub hay i nn = needle then true
    else go (i + 1)
  in
  go 0

let parse_range s =
  match String.index_opt s '.' with
  | Some i
    when i + 1 < String.length s
         && s.[i + 1] = '.'
         && i > 0 ->
    let a = int_of_string_opt (String.sub s 0 i) in
    let b = int_of_string_opt (String.sub s (i + 2) (String.length s - i - 2)) in
    (match (a, b) with
    | Some a, Some b when b > a -> Ok (a, b)
    | _ -> Error (`Msg (Printf.sprintf "bad seed range %S (want A..B with B > A)" s)))
  | _ -> Error (`Msg (Printf.sprintf "bad seed range %S (want A..B)" s))

let campaign ~range ~corpus_dir ~jobs_alt ~inject =
  let first, last = range in
  let corpus_dir = if corpus_dir = "" then None else Some corpus_dir in
  Printf.printf "cinm-fuzz: seeds %d..%d through the oracle matrix (%s)\n%!"
    first last
    (String.concat ", " Fuzz.Oracle.axes);
  let progress seed mism =
    if (seed - first + 1) mod 25 = 0 || seed = last - 1 then
      Printf.printf "  seed %d/%d, %d mismatching seed(s)\n%!" (seed + 1) last mism
  in
  let s = Fuzz.Campaign.run_range ~inject ~jobs_alt ~corpus_dir ~progress ~first ~last () in
  List.iter
    (fun (r : Fuzz.Campaign.shrink_record) ->
      Printf.printf
        "MISMATCH seed=%d axis=%s: shrunk %d -> %d ops%s\n  detail: %s\n%!"
        r.Fuzz.Campaign.seed r.axis r.ops_before r.ops_after
        (match r.repro_path with Some p -> ", reproducer " ^ p | None -> "")
        r.detail)
    s.Fuzz.Campaign.shrinks;
  Printf.printf "cinm-fuzz: %d seeds, %d mismatching\n%!" s.Fuzz.Campaign.seeds_run
    s.Fuzz.Campaign.mismatch_seeds;
  if s.Fuzz.Campaign.mismatch_seeds = 0 then 0 else 1

(* The known-bug fixture: inject a synthetic compiled-backend bug on any
   module containing cinm.gemm, then prove the shrink pipeline takes a
   large generated module down by >= 80% and records the seed. *)
let demo_shrink ~corpus_dir =
  let corpus_dir = if corpus_dir = "" then "fuzz-corpus" else corpus_dir in
  let rec find_gemm_seed seed =
    if seed > 64 then failwith "no gemm-bearing seed in 0..64?!"
    else
      let m = Cinm_ir.Printer.module_to_string (Fuzz.Gen.generate ~ops:60 ~seed ()) in
      if contains_sub m "cinm.gemm" then (seed, m) else find_gemm_seed (seed + 1)
  in
  let seed, text = find_gemm_seed 0 in
  let m = Cinm_ir.Parser.parse_module_text text in
  match Fuzz.Oracle.check_axis ~inject:true ~axis:"compiled" ~seed text with
  | None -> Printf.printf "demo-shrink: injected bug did not trigger\n"; 1
  | Some { Fuzz.Oracle.detail; _ } ->
    let r =
      Fuzz.Campaign.shrink_and_record ~inject:true ~corpus_dir:(Some corpus_dir)
        ~seed ~axis:"compiled" ~detail m
    in
    let pct =
      100.
      *. float_of_int (r.Fuzz.Campaign.ops_before - r.ops_after)
      /. float_of_int (max 1 r.ops_before)
    in
    Printf.printf "demo-shrink: seed %d, ops %d -> %d (%.0f%% reduction), repro %s\n%!"
      seed r.ops_before r.ops_after pct
      (Option.value r.repro_path ~default:"-");
    let seed_recorded =
      match r.repro_path with
      | None -> false
      | Some p ->
        let text = In_channel.with_open_text p In_channel.input_all in
        Fuzz.Campaign.fuzz_seed_of_text text = Some seed
    in
    if pct >= 80.0 && seed_recorded then 0
    else begin
      if not seed_recorded then
        Printf.printf "demo-shrink: FAIL — seed not recorded in reproducer header\n";
      if pct < 80.0 then
        Printf.printf "demo-shrink: FAIL — only %.0f%% reduction (need >= 80%%)\n" pct;
      1
    end

let chaos ~socket ~requests ~clients ~seed =
  let socket = if socket = "" then None else Some socket in
  Printf.printf "cinm-fuzz --chaos: %d requests over %d clients (seed %d)%s\n%!"
    requests clients seed
    (match socket with Some s -> " against " ^ s | None -> ", in-process daemon");
  let r = Fuzz.Chaos.run ?socket ~requests ~clients ~seed () in
  Printf.printf
    "chaos: sent %d (%d disconnects): %d ok, %d structured errors, \
     responses_total=%d, drain %s\n%!"
    r.Fuzz.Chaos.sent r.disconnects r.ok r.errors r.counters_total
    (if r.clean_drain then "clean" else "DIRTY");
  match r.Fuzz.Chaos.violations with
  | [] ->
    Printf.printf "chaos: all protocol invariants held\n%!";
    0
  | vs ->
    List.iter (fun v -> Printf.printf "VIOLATION: %s\n" v) vs;
    Printf.printf "chaos: %d protocol-invariant violation(s)\n%!" (List.length vs);
    1

let run range_s corpus_dir jobs_alt inject demo chaos_mode socket requests
    clients seed dump_seed =
  if dump_seed >= 0 then begin
    (* triage helper: print the exact module a seed generates, so a log
       line like "seed 12: pass X failed" turns into IR on stdout *)
    print_string
      (Cinm_ir.Printer.module_to_string (Fuzz.Gen.generate ~seed:dump_seed ()));
    0
  end
  else if demo then demo_shrink ~corpus_dir
  else if chaos_mode then chaos ~socket ~requests ~clients ~seed
  else
    match parse_range range_s with
    | Error (`Msg m) ->
      prerr_endline m;
      2
    | Ok range -> campaign ~range ~corpus_dir ~jobs_alt ~inject

let range_arg =
  Arg.(value & opt string "0..50"
       & info [ "seed-range" ] ~docv:"A..B"
           ~doc:"Seeds to fuzz, half-open: A..B runs B-A modules.")

let corpus_arg =
  Arg.(value & opt string ""
       & info [ "corpus-dir" ] ~docv:"DIR"
           ~doc:"Where shrunk reproducers and triage.log land (default: \
                 report only, write nothing).")

let jobs_alt_arg =
  Arg.(value & opt int 4
       & info [ "jobs-alt" ] ~docv:"N" ~doc:"The N of the jobs-1-vs-N oracle axis.")

let inject_arg =
  Arg.(value & flag
       & info [ "inject-bug" ]
           ~doc:"Treat any cinm.gemm-bearing module as a compiled-backend \
                 mismatch (synthetic bug for exercising the shrink path).")

let demo_arg =
  Arg.(value & flag
       & info [ "demo-shrink" ]
           ~doc:"Run the known-bug fixture: generate a large module, inject \
                 a compiled-backend bug, and require the reducer to shrink \
                 it by >= 80% with the seed recorded in the reproducer.")

let chaos_arg =
  Arg.(value & flag
       & info [ "chaos" ]
           ~doc:"Drive a live cinm_serve with a seeded hostile concurrent \
                 mix and assert the protocol invariants.")

let socket_arg =
  Arg.(value & opt string ""
       & info [ "socket" ] ~docv:"PATH"
           ~doc:"Chaos: target an external daemon instead of an in-process one.")

let requests_arg =
  Arg.(value & opt int 400 & info [ "requests" ] ~docv:"N" ~doc:"Chaos: request count.")

let clients_arg =
  Arg.(value & opt int 8 & info [ "clients" ] ~docv:"N" ~doc:"Chaos: concurrent clients.")

let seed_arg =
  Arg.(value & opt int 0 & info [ "seed" ] ~docv:"N" ~doc:"Chaos: mix seed.")

let dump_seed_arg =
  Arg.(value & opt int (-1)
       & info [ "dump-seed" ] ~docv:"N"
           ~doc:"Print the module seed N generates and exit (triage helper).")

let cmd =
  let doc = "differential fuzzing and chaos harness for the CINM stack" in
  Cmd.v (Cmd.info "cinm_fuzz" ~doc)
    Term.(const run $ range_arg $ corpus_arg $ jobs_alt_arg $ inject_arg
          $ demo_arg $ chaos_arg $ socket_arg $ requests_arg $ clients_arg
          $ seed_arg $ dump_seed_arg)

let () = exit (Cmd.eval' cmd)
