(* cinm-opt: the mlir-opt equivalent of this repository. Reads textual IR,
   applies a named pass pipeline, prints the result.

   Example:
     cinm_opt --passes linalg-to-cinm,cinm-target-select input.mlir
     echo '...' | cinm_opt --passes tosa-to-linalg -
     cinm_opt --passes ... --trace trace.json --pass-stats input.mlir
     cinm_opt --verify-each --reproducer-dir repro/ --passes ... input.mlir
     cinm_opt --run-reproducer repro/<pass>-1.reproducer.mlir
*)

open Cinm_ir
open Cinm_transforms
open Cmdliner
module Trace = Cinm_support.Trace

let () = Cinm_dialects.Registry.ensure_all ()

let read_input = function
  | "-" -> In_channel.input_all stdin
  | path -> In_channel.with_open_text path In_channel.input_all

let resolve_pipeline spec =
  match Pass_registry.resolve_spec spec with
  | Ok passes -> passes
  | Error name ->
    Printf.eprintf "unknown pass %S (use --list-passes)\n" name;
    exit 1

let run_pipeline_and_print m passes finish =
  match Pass.run_pipeline_result passes m with
  | Ok () ->
    print_endline (Printer.module_to_string m);
    finish 0
  | Error diag ->
    Printf.eprintf "%s\n" (Pass.diag_to_string diag);
    (match Pass.last_reproducer () with
    | Some r -> Printf.eprintf "reproducer written to %s\n" r.Pass.path
    | None -> ());
    finish 1

let run passes_arg verify_only verify_each reproducer_dir run_reproducer
    list_passes trace_out pass_stats print_ir_after_change print_ir_after_all
    input =
  if list_passes then begin
    List.iter (fun (name, _) -> print_endline name) (Pass_registry.all ());
    0
  end
  else begin
    if trace_out <> "" then Trace.enable ();
    if pass_stats then Trace.Metrics.enable ();
    if verify_each then Pass.set_strict true;
    if reproducer_dir <> "" then Pass.set_reproducer_dir (Some reproducer_dir);
    if print_ir_after_all then Pass.set_ir_dump Pass.Dump_after_all
    else if print_ir_after_change then Pass.set_ir_dump Pass.Dump_after_change;
    let finish code =
      if trace_out <> "" then Trace.write trace_out;
      if pass_stats then prerr_string (Trace.Metrics.dump ());
      code
    in
    if run_reproducer <> "" then begin
      (* replay mode: the pipeline comes from the reproducer's own header *)
      let text = read_input run_reproducer in
      match Pass.reproducer_pipeline_of_text text with
      | None ->
        Printf.eprintf
          "%s: no '// cinm-opt --passes ...' reproducer header found\n"
          run_reproducer;
        1
      | Some names -> (
        let passes =
          match Pass_registry.resolve names with
          | Ok passes -> passes
          | Error name ->
            Printf.eprintf "reproducer names unknown pass %S\n" name;
            exit 1
        in
        match Parser.parse_module_text text with
        | exception Parser.Parse_error e ->
          Printf.eprintf "parse error: %s\n" (Parser.error_to_string e);
          1
        | m -> run_pipeline_and_print m passes finish)
    end
    else begin
      let text = read_input input in
      match Parser.parse_module_text text with
      | exception Parser.Parse_error e ->
        Printf.eprintf "parse error: %s\n" (Parser.error_to_string e);
        1
      | m -> (
        match Verifier.verify_module m with
        | (_ :: _) as errs ->
          List.iter
            (fun e -> Printf.eprintf "error: %s\n" (Verifier.error_to_string e))
            errs;
          1
        | [] ->
          if verify_only then begin
            print_endline "module verified";
            0
          end
          else
            run_pipeline_and_print m (resolve_pipeline passes_arg) finish)
    end
  end

let passes_arg =
  Arg.(value & opt string "" & info [ "passes"; "p" ] ~docv:"P1,P2,..."
         ~doc:"Comma-separated pass pipeline to apply.")

let verify_only =
  Arg.(value & flag & info [ "verify" ] ~doc:"Only verify the input module.")

let verify_each =
  Arg.(value & flag & info [ "verify-each" ]
         ~doc:"Strict checking: after every pass, verify the module and \
               assert the print->parse->print round-trip is a fixpoint \
               (also enabled by CINM_STRICT=1).")

let reproducer_dir =
  Arg.(value & opt string "" & info [ "reproducer-dir" ] ~docv:"DIR"
         ~doc:"On a pass failure, write a standalone .reproducer.mlir \
               (pre-failure IR plus a replay header) into $(docv) (also \
               settable via CINM_REPRODUCER_DIR).")

let run_reproducer =
  Arg.(value & opt string "" & info [ "run-reproducer" ] ~docv:"FILE"
         ~doc:"Replay a crash reproducer: parse the '// cinm-opt --passes \
               ...' header of $(docv) and re-run that pipeline on the IR \
               it contains.")

let list_passes =
  Arg.(value & flag & info [ "list-passes" ] ~doc:"List available passes and exit.")

let trace_out =
  Arg.(value & opt string "" & info [ "trace" ] ~docv:"FILE"
         ~doc:"Write a Chrome trace-event JSON of the pass pipeline \
               (one span per pass, with op-count deltas and per-pattern \
               rewrite hits); open in ui.perfetto.dev.")

let pass_stats =
  Arg.(value & flag & info [ "pass-stats" ]
         ~doc:"Print pass/rewrite metrics (runs, wall time, pattern hit \
               counts) to stderr after the pipeline.")

let print_ir_after_change =
  Arg.(value & flag & info [ "print-ir-after-change" ]
         ~doc:"Dump the IR to stderr after every pass that changed it.")

let print_ir_after_all =
  Arg.(value & flag & info [ "print-ir-after-all" ]
         ~doc:"Dump the IR to stderr after every pass.")

let input =
  Arg.(value & pos 0 string "-" & info [] ~docv:"FILE" ~doc:"Input IR file ('-' for stdin).")

let cmd =
  let doc = "apply CINM compiler passes to textual IR" in
  Cmd.v (Cmd.info "cinm_opt" ~doc)
    Term.(const run $ passes_arg $ verify_only $ verify_each $ reproducer_dir
          $ run_reproducer $ list_passes $ trace_out $ pass_stats
          $ print_ir_after_change $ print_ir_after_all $ input)

let () = exit (Cmd.eval' cmd)
