(* cinm-opt: the mlir-opt equivalent of this repository. Reads textual IR,
   applies a named pass pipeline, prints the result.

   Example:
     cinm_opt --passes linalg-to-cinm,cinm-target-select input.mlir
     echo '...' | cinm_opt --passes tosa-to-linalg -
     cinm_opt --passes ... --trace trace.json --pass-stats input.mlir
*)

open Cinm_ir
open Cinm_transforms
open Cmdliner
module Trace = Cinm_support.Trace

let () = Cinm_dialects.Registry.ensure_all ()

let available_passes () : (string * Pass.t) list =
  [
    ("torch-to-tosa", Torch_to_tosa.pass);
    ("tosa-to-linalg", Tosa_to_linalg.pass);
    ("canonicalize", Canonicalize.pass);
    ("linalg-to-cinm", Linalg_to_cinm.pass);
    ("cinm-target-select", Target_select.pass ());
    ("cinm-target-cnm",
     Target_select.pass
       ~policy:{ Target_select.default_policy with forced_target = Some "cnm" } ());
    ("cinm-target-cim",
     Target_select.pass
       ~policy:{ Target_select.default_policy with forced_target = Some "cim" } ());
    ("cinm-ew-fusion", Ew_fusion.pass);
    ("cinm-to-cnm", Cinm_to_cnm.pass ());
    ("cinm-to-scf", Cinm_to_scf.pass);
    ("cinm-to-cim", Cinm_to_cim.pass ());
    ("cinm-to-cam", Cinm_to_cam.pass);
    ("cinm-to-rtm", Cinm_to_rtm.pass ());
    ("cnm-to-upmem", Cnm_to_upmem.pass ());
    ("loop-unroll", Loop_unroll.pass);
    ("cim-assign-tiles", Cim_to_memristor.assign_pass ~tiles:4);
    ("cim-to-memristor", Cim_to_memristor.pass);
    ("licm", Licm.pass);
    ("dce", Dce.pass);
  ]

let read_input = function
  | "-" -> In_channel.input_all stdin
  | path -> In_channel.with_open_text path In_channel.input_all

let run passes_arg verify_only list_passes trace_out pass_stats print_ir_after_change
    print_ir_after_all input =
  if list_passes then begin
    List.iter (fun (name, _) -> print_endline name) (available_passes ());
    0
  end
  else begin
    if trace_out <> "" then Trace.enable ();
    if pass_stats then Trace.Metrics.enable ();
    if print_ir_after_all then Pass.set_ir_dump Pass.Dump_after_all
    else if print_ir_after_change then Pass.set_ir_dump Pass.Dump_after_change;
    let finish code =
      if trace_out <> "" then Trace.write trace_out;
      if pass_stats then prerr_string (Trace.Metrics.dump ());
      code
    in
    let text = read_input input in
    match Parser.parse_module_text text with
    | exception Parser.Parse_error msg ->
      Printf.eprintf "parse error: %s\n" msg;
      1
    | m -> (
      match Verifier.verify_module m with
      | (_ :: _) as errs ->
        List.iter (fun e -> Printf.eprintf "error: %s\n" (Verifier.error_to_string e)) errs;
        1
      | [] ->
        if verify_only then begin
          print_endline "module verified";
          0
        end
        else begin
          let passes =
            List.filter_map
              (fun name ->
                match List.assoc_opt name (available_passes ()) with
                | Some p -> Some p
                | None ->
                  Printf.eprintf "unknown pass %S (use --list-passes)\n" name;
                  exit 1)
              (if passes_arg = "" then []
               else String.split_on_char ',' passes_arg)
          in
          match Pass.run_pipeline passes m with
          | () ->
            print_endline (Printer.module_to_string m);
            finish 0
          | exception Pass.Pass_failed diag ->
            Printf.eprintf "%s\n" (Pass.diag_to_string diag);
            finish 1
        end)
  end

let passes_arg =
  Arg.(value & opt string "" & info [ "passes"; "p" ] ~docv:"P1,P2,..."
         ~doc:"Comma-separated pass pipeline to apply.")

let verify_only =
  Arg.(value & flag & info [ "verify" ] ~doc:"Only verify the input module.")

let list_passes =
  Arg.(value & flag & info [ "list-passes" ] ~doc:"List available passes and exit.")

let trace_out =
  Arg.(value & opt string "" & info [ "trace" ] ~docv:"FILE"
         ~doc:"Write a Chrome trace-event JSON of the pass pipeline \
               (one span per pass, with op-count deltas and per-pattern \
               rewrite hits); open in ui.perfetto.dev.")

let pass_stats =
  Arg.(value & flag & info [ "pass-stats" ]
         ~doc:"Print pass/rewrite metrics (runs, wall time, pattern hit \
               counts) to stderr after the pipeline.")

let print_ir_after_change =
  Arg.(value & flag & info [ "print-ir-after-change" ]
         ~doc:"Dump the IR to stderr after every pass that changed it.")

let print_ir_after_all =
  Arg.(value & flag & info [ "print-ir-after-all" ]
         ~doc:"Dump the IR to stderr after every pass.")

let input =
  Arg.(value & pos 0 string "-" & info [] ~docv:"FILE" ~doc:"Input IR file ('-' for stdin).")

let cmd =
  let doc = "apply CINM compiler passes to textual IR" in
  Cmd.v (Cmd.info "cinm_opt" ~doc)
    Term.(const run $ passes_arg $ verify_only $ list_passes $ trace_out
          $ pass_stats $ print_ir_after_change $ print_ir_after_all $ input)

let () = exit (Cmd.eval' cmd)
