(* cinm-reduce: the mlir-reduce equivalent. Takes a crash reproducer (or
   any module) and delta-debugs it down to the smallest IR that is still
   "interesting":

     - pipeline mode (default): the pass pipeline — from the file's
       '// cinm-opt --passes ...' reproducer header, or --passes — still
       fails with the same diagnostic class (pass + op);
     - --exec mode: the two interpreter backends (tree walker vs closure
       compiler) disagree on the module's output;
     - --exec-backend B: a device backend (arm | upmem | cim | hetero)
       disagrees with the CPU reference on the module's output;
     - --exec-faults: the upmem backend under a deterministic fault plan
       disagrees with its fault-free run (fault-masking bug).

   Example:
     cinm_reduce repro/cinm-to-cnm-1.reproducer.mlir -o small.mlir
     cinm_reduce --passes debug-fail-on-gemm big.mlir
     cinm_reduce --exec miscompile.mlir
     cinm_reduce --exec-backend hetero miscompile.mlir
     cinm_reduce --exec-faults --fault-seed 54 masking-bug.mlir
*)

open Cinm_ir
open Cinm_transforms
open Cinm_interp
open Cmdliner
module Reduce = Cinm_reduce_lib.Reduce

let () = Cinm_dialects.Registry.ensure_all ()

let read_input = function
  | "-" -> In_channel.input_all stdin
  | path -> In_channel.with_open_text path In_channel.input_all

let diag_class (d : Pass.diag) =
  d.Pass.pass ^ ":" ^ Option.value d.Pass.op ~default:"-"

(* Pipeline outcome on a scratch clone: None = pipeline succeeds. *)
let pipeline_outcome passes m =
  let c = Reduce.clone_module m in
  match Pass.run_pipeline_result passes c with
  | Ok () -> None
  | Error d -> Some (diag_class d)

(* ----- --exec mode: backend-differential interestingness ----- *)

let synth_arg (ty : Types.t) : Rtval.t option =
  match ty with
  | Types.Index | Types.Scalar _ -> Some (Rtval.Int 1)
  | Types.Tensor (shape, dt) -> Some (Rtval.Tensor (Tensor.zeros shape dt))
  | Types.MemRef (shape, dt) -> Some (Rtval.Memref (Tensor.zeros shape dt))
  | _ -> None

(* Run the module's first function under one backend; any failure is part
   of the observable outcome. The step budget keeps reduced candidates
   that loop forever from hanging the reducer. *)
let exec_outcome backend m : string =
  match m.Func.funcs with
  | [] -> "<empty module>"
  | f :: _ -> (
    let args = List.map synth_arg f.Func.arg_tys in
    if List.exists Option.is_none args then "<unsynthesizable arguments>"
    else begin
      Compile.set_backend backend;
      match
        Compile.run_in_module ~max_steps:20_000_000 m f.Func.fname
          (List.map Option.get args)
      with
      | results, _ -> String.concat "; " (List.map Rtval.to_string results)
      | exception e -> "raised: " ^ Printexc.to_string e
    end)

let backends_disagree m =
  let saved = Compile.backend () in
  Fun.protect
    ~finally:(fun () -> Compile.set_backend saved)
    (fun () ->
      exec_outcome Compile.Tree m <> exec_outcome Compile.Compiled m)

(* --exec-backend: the oracle's device-vs-reference differential, through
   the full driver (lowering pipeline + simulator), not just the two host
   interpreters. Arguments are the oracle's seeded generator values so a
   fuzz reproducer reduces under the same inputs that found it. *)
module Oracle = Cinm_fuzz_lib.Oracle

let device_disagrees ~backend ~seed m =
  Oracle.exec_outcome ~backend:Cinm_core.Backend.Host_xeon ~seed m
  <> Oracle.exec_outcome ~backend ~seed m

(* --exec-faults: fault-plan-vs-fault-free differential on the upmem
   backend; interesting = the fault-tolerance machinery fails to mask the
   plan (different values, or only one side failing). *)
let faults_disagree ~seed m =
  match Oracle.backend_of_name "upmem" with
  | Error _ -> false
  | Ok upmem ->
    Oracle.exec_outcome ~backend:upmem ~seed m
    <> Oracle.exec_outcome ~backend:upmem
         ~faults:(Some (Oracle.fault_plan seed)) ~seed m

(* ----- entry point ----- *)

let run input passes_arg exec_mode exec_backend exec_faults fault_seed out
    max_rounds =
  let text = read_input input in
  let header_pipeline = Pass.reproducer_pipeline_of_text text in
  let m =
    match Parser.parse_module_text text with
    | exception Parser.Parse_error e ->
      Printf.eprintf "parse error: %s\n" (Parser.error_to_string e);
      exit 1
    | m -> m
  in
  (* predicate runs must not litter the reproducer dir with their own
     failures *)
  Pass.set_reproducer_dir None;
  let exec_differential =
    if exec_faults then
      Some ("fault-plan vs fault-free", fun c -> faults_disagree ~seed:fault_seed c)
    else
      match exec_backend with
      | "" -> if exec_mode then Some ("tree vs compiled", backends_disagree) else None
      | name -> (
        match Oracle.backend_of_name name with
        | Error e ->
          Printf.eprintf "%s\n" e;
          exit 1
        | Ok backend ->
          Some
            ( name ^ " vs reference",
              fun c -> device_disagrees ~backend ~seed:fault_seed c ))
  in
  let interesting, pipeline_names =
    match exec_differential with
    | Some (_, disagree) ->
      ((fun c -> Verifier.verify_module c = [] && disagree c), [])
    | None ->
      begin
      let names =
        if passes_arg <> "" then
          String.split_on_char ',' passes_arg |> List.filter (fun s -> s <> "")
        else
          match header_pipeline with
          | Some names -> names
          | None ->
            Printf.eprintf
              "%s has no '// cinm-opt --passes ...' reproducer header; pass \
               --passes or --exec\n"
              input;
            exit 1
      in
      let passes =
        match Pass_registry.resolve names with
        | Ok passes -> passes
        | Error name ->
          Printf.eprintf "unknown pass %S (use cinm_opt --list-passes)\n" name;
          exit 1
      in
      match pipeline_outcome passes m with
      | None ->
        Printf.eprintf
          "input is not interesting: pipeline %s succeeds on it\n"
          (String.concat "," names);
        exit 1
      | Some cls ->
        Printf.eprintf "reducing while preserving failure class %S\n%!" cls;
        ( (fun c ->
            Verifier.verify_module c = []
            && pipeline_outcome passes c = Some cls),
          names )
    end
  in
  (match exec_differential with
  | Some (label, _) when not (interesting m) ->
    Printf.eprintf
      "input is not interesting: %s agree on its output\n" label;
    exit 1
  | Some (label, _) ->
    Printf.eprintf "reducing while preserving a %s mismatch\n%!" label
  | None -> ());
  let reduced, stats = Reduce.reduce ~max_rounds ~interesting m in
  let body =
    let s = Printer.module_to_string reduced in
    if s <> "" && s.[String.length s - 1] <> '\n' then s ^ "\n" else s
  in
  let out_text =
    match pipeline_names with
    | [] -> body
    | names ->
      (* keep the reduced artifact replayable with --run-reproducer *)
      Printf.sprintf "// cinm-opt --passes %s\n%s" (String.concat "," names) body
  in
  (match out with
  | "" -> print_string out_text
  | path -> Out_channel.with_open_text path (fun oc -> output_string oc out_text));
  Printf.eprintf "reduce: ops %d -> %d (%.0f%% reduction) in %d rounds, %d/%d candidates accepted\n"
    stats.Reduce.ops_before stats.Reduce.ops_after
    (100.
    *. float_of_int (stats.Reduce.ops_before - stats.Reduce.ops_after)
    /. float_of_int (max 1 stats.Reduce.ops_before))
    stats.Reduce.rounds stats.Reduce.accepted stats.Reduce.candidates;
  0

let input =
  Arg.(value & pos 0 string "-" & info [] ~docv:"FILE"
         ~doc:"Input reproducer or module ('-' for stdin).")

let passes_arg =
  Arg.(value & opt string "" & info [ "passes"; "p" ] ~docv:"P1,P2,..."
         ~doc:"Pipeline defining the failure (defaults to the input's \
               reproducer header).")

let exec_mode =
  Arg.(value & flag & info [ "exec" ]
         ~doc:"Interestingness = the tree and compiled interpreter \
               backends disagree on the module's output (with synthesized \
               zero/one inputs), instead of a failing pipeline.")

let exec_backend =
  Arg.(value & opt string "" & info [ "exec-backend" ] ~docv:"B"
         ~doc:"Interestingness = device backend $(docv) (arm | upmem | \
               cim | hetero) disagrees with the CPU reference, through \
               the full lowering pipeline and simulator.")

let exec_faults =
  Arg.(value & flag & info [ "exec-faults" ]
         ~doc:"Interestingness = the upmem backend under the \
               deterministic fault plan (see --fault-seed) disagrees \
               with its fault-free run.")

let fault_seed =
  Arg.(value & opt int 0 & info [ "fault-seed" ] ~docv:"N"
         ~doc:"Seed for --exec-faults' fault plan and for the generated \
               arguments of the execution differentials (use the \
               'fuzz-seed' recorded in a fuzz reproducer header).")

let out =
  Arg.(value & opt string "" & info [ "o"; "output" ] ~docv:"FILE"
         ~doc:"Write the reduced IR to $(docv) (default: stdout).")

let max_rounds =
  Arg.(value & opt int 16 & info [ "max-rounds" ] ~docv:"N"
         ~doc:"Bound on the outer reduction fixpoint loop.")

let cmd =
  let doc = "delta-debug CINM IR down to a minimal still-failing module" in
  Cmd.v (Cmd.info "cinm_reduce" ~doc)
    Term.(const run $ input $ passes_arg $ exec_mode $ exec_backend
          $ exec_faults $ fault_seed $ out $ max_rounds)

let () = exit (Cmd.eval' cmd)
