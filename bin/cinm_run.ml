(* cinm-run: compile one of the built-in benchmarks for a backend, execute
   it on the corresponding simulator, check the result against the host
   reference, and print the report.

   Example:
     cinm_run --benchmark mm --backend upmem --dimms 4 --optimize
     cinm_run --benchmark conv --backend cim --min-writes --parallel
     cinm_run --list
*)

open Cinm_core
open Cinm_benchmarks
open Cmdliner

let () = Cinm_dialects.Registry.ensure_all ()

let benchmarks () : (string * Benchmark.t) list =
  let ml = Suites.ml_suite () in
  let prim = Suites.prim_suite () in
  List.map (fun (b : Benchmark.t) -> (b.Benchmark.name, b)) (ml @ prim)

let run list_benchmarks bench_name backend_name dimms dpus_per_dimm tasklets optimize
    min_writes parallel show_ir trace_out interp strict max_steps =
  if strict then Cinm_ir.Pass.set_strict true;
  if max_steps > 0 then Cinm_interp.Interp.set_default_max_steps max_steps;
  (match interp with
  | "" -> ()
  | s -> (
    match Cinm_interp.Compile.backend_of_string s with
    | Some b -> Cinm_interp.Compile.set_backend b
    | None ->
      Printf.eprintf "unknown interpreter backend %S (tree|compiled)\n" s;
      exit 1));
  if list_benchmarks then begin
    List.iter
      (fun (name, (b : Benchmark.t)) ->
        Printf.printf "%-10s %-20s %s\n" name b.Benchmark.category b.Benchmark.description)
      (benchmarks ());
    0
  end
  else begin
    match List.assoc_opt bench_name (benchmarks ()) with
    | None ->
      Printf.eprintf "unknown benchmark %S (use --list)\n" bench_name;
      1
    | Some bench ->
      let backend =
        match backend_name with
        | "cpu" -> Backend.Host_xeon
        | "arm" -> Backend.Host_arm
        | "upmem" ->
          Backend.Upmem
            (Backend.default_upmem ~dimms ~dpus_per_dimm ~tasklets ~optimize ())
        | "cim" -> Backend.Cim (Backend.default_cim ~min_writes ~parallel ())
        | other ->
          Printf.eprintf "unknown backend %S (cpu|arm|upmem|cim)\n" other;
          exit 1
      in
      if trace_out <> "" then Cinm_support.Trace.enable ();
      let compiled = Driver.compile_func backend (bench.Benchmark.build ()) in
      if show_ir then
        print_endline
          (Cinm_ir.Printer.module_to_string compiled.Driver.modul);
      let results, report = Driver.run compiled (bench.Benchmark.inputs ()) in
      if trace_out <> "" then Cinm_support.Trace.write trace_out;
      let ok = Benchmark.results_match bench results in
      Printf.printf "%s\n" (Report.to_string report);
      Printf.printf "result check vs host reference: %s\n" (if ok then "OK" else "MISMATCH");
      if ok then 0 else 1
  end

let cmd =
  let doc = "compile and simulate a CINM benchmark" in
  Cmd.v (Cmd.info "cinm_run" ~doc)
    Term.(
      const run
      $ Arg.(value & flag & info [ "list" ] ~doc:"List benchmarks.")
      $ Arg.(value & opt string "mm" & info [ "benchmark"; "b" ] ~docv:"NAME")
      $ Arg.(value & opt string "upmem" & info [ "backend" ] ~docv:"cpu|arm|upmem|cim")
      $ Arg.(value & opt int 1 & info [ "dimms" ] ~docv:"N")
      $ Arg.(value & opt int 8 & info [ "dpus-per-dimm" ] ~docv:"N")
      $ Arg.(value & opt int 16 & info [ "tasklets" ] ~docv:"N")
      $ Arg.(value & flag & info [ "optimize" ] ~doc:"cinm-opt (WRAM-aware) codegen.")
      $ Arg.(value & flag & info [ "min-writes" ] ~doc:"CIM loop interchange.")
      $ Arg.(value & flag & info [ "parallel" ] ~doc:"CIM tile-parallel unrolling.")
      $ Arg.(value & flag & info [ "show-ir" ] ~doc:"Print the lowered IR.")
      $ Arg.(value & opt string "" & info [ "trace" ] ~docv:"FILE"
               ~doc:"Write a Chrome trace-event JSON (compile passes + \
                     simulated device timeline); open in ui.perfetto.dev.")
      $ Arg.(value & opt string "" & info [ "interp" ] ~docv:"tree|compiled"
               ~doc:"Interpreter backend: tree-walking reference or \
                     closure-compiling executor (default: CINM_INTERP or \
                     tree).")
      $ Arg.(value & flag & info [ "strict" ]
               ~doc:"Strict checking: verify the module and assert the \
                     print->parse->print fixpoint after every pass (also \
                     CINM_STRICT=1).")
      $ Arg.(value & opt int 0 & info [ "max-steps" ] ~docv:"N"
               ~doc:"Interpreter watchdog: abort any execution after N \
                     launched ops (also CINM_MAX_STEPS; 0 = unlimited)."))

let () = exit (Cmd.eval' cmd)
