(* cinm_serve: run the compile-and-run daemon on a Unix-domain socket.

   Example:
     cinm_serve --socket /tmp/cinm.sock --jobs 4 --max-inflight 32 \
       --deadline-s 5 --warm

   Talk to it with newline-delimited JSON:
     {"op":"health"}
     {"op":"run","benchmark":"mm","backend":"upmem","id":"r1"}
     {"op":"shutdown"}

   Environment variables (CINM_STRICT, CINM_MAX_STEPS, CINM_INTERP,
   CINM_PASS_BUDGET_S, CINM_REPRODUCER_DIR) seed the base config exactly
   as they seed the one-shot CLI; per-request fields override it. *)

open Cmdliner
module Config = Cinm_support.Config

let () = Cinm_dialects.Registry.ensure_all ()

let serve socket jobs max_inflight max_request_bytes deadline_s cache_capacity
    drain_grace_s metrics_port trace_dir slow_request_s strict interp max_steps
    pass_budget_s reproducer_dir warm trace_out =
  (match interp with
  | "" | "tree" | "compiled" -> ()
  | s ->
    Printf.eprintf "unknown interpreter backend %S (tree|compiled)\n" s;
    exit 1);
  if trace_out <> "" then begin
    Cinm_support.Trace.enable ();
    at_exit (fun () -> Cinm_support.Trace.write trace_out)
  end;
  (* base config: process env defaults, overridden by CLI flags; every
     request snapshots from this *)
  let base = Config.default () in
  let base =
    {
      base with
      Config.strict = strict || base.Config.strict;
      interp = (if interp <> "" then interp else base.Config.interp);
      max_steps = (if max_steps > 0 then max_steps else base.Config.max_steps);
      pass_budget_s =
        (if pass_budget_s > 0.0 then Some pass_budget_s
         else base.Config.pass_budget_s);
      reproducer_dir =
        (if reproducer_dir <> "" then Some reproducer_dir
         else base.Config.reproducer_dir);
    }
  in
  if warm then Cinm_serve_lib.Catalog.warm_references ();
  let opts =
    {
      Cinm_serve_lib.Server.socket_path = socket;
      jobs;
      max_inflight;
      max_request_bytes;
      default_deadline_s = deadline_s;
      cache_capacity;
      drain_grace_s;
      metrics_port;
      trace_dir = (if trace_dir = "" then None else Some trace_dir);
      slow_request_s;
      base_config = base;
    }
  in
  Printf.printf "cinm_serve: listening on %s (jobs=%d, max-inflight=%d)\n%!"
    socket
    (if jobs > 0 then jobs else Cinm_support.Pool.default_jobs ())
    max_inflight;
  Cinm_serve_lib.Server.serve opts;
  Printf.printf "cinm_serve: shut down cleanly\n%!";
  0

let cmd =
  let doc = "serve CINM compile-and-run requests over a Unix socket" in
  Cmd.v
    (Cmd.info "cinm_serve" ~doc)
    Term.(
      const serve
      $ Arg.(
          value
          & opt string "cinm-serve.sock"
          & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")
      $ Arg.(
          value & opt int 0
          & info [ "jobs" ] ~docv:"N"
              ~doc:
                "Worker-domain count (0 = the default pool, sized by \
                 CINM_JOBS or the machine).")
      $ Arg.(
          value & opt int 64
          & info [ "max-inflight" ] ~docv:"N"
              ~doc:
                "Admission-control cap on queued + executing requests; \
                 beyond it requests are shed with an `overloaded' error.")
      $ Arg.(
          value & opt int 65536
          & info [ "max-request-bytes" ] ~docv:"N"
              ~doc:
                "Largest accepted request line; longer lines get an \
                 `oversized' error and the stream resyncs at the next \
                 newline.")
      $ Arg.(
          value & opt float 0.0
          & info [ "deadline-s" ] ~docv:"SECONDS"
              ~doc:
                "Default per-request deadline (0 = none); requests may \
                 override with their own deadline_s.")
      $ Arg.(
          value & opt int 256
          & info [ "cache-capacity" ] ~docv:"N"
              ~doc:"Pipeline-cache entries (compiled modules).")
      $ Arg.(
          value & opt float 10.0
          & info [ "drain-grace-s" ] ~docv:"SECONDS"
              ~doc:
                "On shutdown, how long in-flight requests may run before \
                 being cooperatively cancelled.")
      $ Arg.(
          value & opt int 0
          & info [ "metrics-port" ] ~docv:"PORT"
              ~doc:
                "Serve Prometheus text exposition on \
                 http://127.0.0.1:PORT/metrics (0 = off; the `metrics' \
                 protocol op works either way).")
      $ Arg.(
          value & opt string ""
          & info [ "trace-dir" ] ~docv:"DIR"
              ~doc:
                "Write per-request traces (requests with \"trace\": true) \
                 to DIR/<req_id>.trace.json instead of inlining the JSON \
                 in the response.")
      $ Arg.(
          value & opt float 0.0
          & info [ "slow-request-s" ] ~docv:"SECONDS"
              ~doc:
                "Warn (with the request's phase breakdown) about requests \
                 slower than this, admission to response (0 = off).")
      $ Arg.(
          value & flag
          & info [ "strict" ]
              ~doc:"Strict pass checking by default (also CINM_STRICT=1).")
      $ Arg.(
          value & opt string ""
          & info [ "interp" ] ~docv:"tree|compiled"
              ~doc:"Default interpreter backend (also CINM_INTERP).")
      $ Arg.(
          value & opt int 0
          & info [ "max-steps" ] ~docv:"N"
              ~doc:
                "Default interpreter watchdog step budget (also \
                 CINM_MAX_STEPS; 0 = unlimited).")
      $ Arg.(
          value & opt float 0.0
          & info [ "pass-budget-s" ] ~docv:"SECONDS"
              ~doc:
                "Default per-pass wall-clock budget (also \
                 CINM_PASS_BUDGET_S; 0 = none).")
      $ Arg.(
          value & opt string ""
          & info [ "reproducer-dir" ] ~docv:"DIR"
              ~doc:
                "Where pass failures write crash reproducers (also \
                 CINM_REPRODUCER_DIR).")
      $ Arg.(
          value & flag
          & info [ "warm" ]
              ~doc:
                "Precompute every benchmark's host reference before \
                 accepting connections.")
      $ Arg.(
          value & opt string ""
          & info [ "trace" ] ~docv:"FILE"
              ~doc:
                "Write a Chrome trace-event JSON with per-request serve \
                 spans at exit."))

let () = exit (Cmd.eval' cmd)
