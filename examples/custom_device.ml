(* Extensibility example (paper §3.2.5 "Adding new devices"): add a new
   CNM device — a FIMDRAM-like DRAM with bank-level MAC units — without
   touching the cinm or cnm abstractions. Three ingredients:

   1. a device dialect of fimdram ops capturing the device intrinsics;
   2. a cnm -> fimdram conversion (reusing the generic rewrite engine);
   3. an interpreter hook giving the new ops semantics + a timing model.

   The same device-independent program then runs on the new target.

   Run with:  dune exec examples/custom_device.exe *)

open Cinm_ir
open Cinm_dialects
open Cinm_transforms
open Cinm_interp

let () = Registry.ensure_all ()

let tensor shape = Types.Tensor (shape, Types.I32)

(* ----- 1. the device dialect ----- *)

let fimdram = Dialect.register ~name:"fimdram" ~description:"FIMDRAM-like bank-MAC device"

let _ =
  Dialect.add_op fimdram "alloc_banks" ~summary:"allocate a group of PIM banks"
    ~verify:(fun op -> Dialect.expect_results op 1)

let _ =
  Dialect.add_op fimdram "bank_write" ~summary:"write a tensor into a bank row range"
    ~verify:(fun op -> Dialect.expect_operands op 3)

let _ =
  Dialect.add_op fimdram "bank_mac" ~summary:"bank-level multiply-accumulate sweep"
    ~verify:(fun op ->
      let open Dialect in
      expect_operands op 2 >>= fun () -> expect_results op 1)

let _ =
  Dialect.add_op fimdram "bank_read" ~summary:"read back a result row"
    ~verify:(fun op -> Dialect.expect_results op 1)

(* ----- 2. the conversion: cnm-targeted gemv -> fimdram ops ----- *)

(* FIMDRAM-like devices accelerate GEMV with per-bank MAC units: the
   matrix rows live in banks; the vector is broadcast; one bank_mac op
   sweeps all banks. *)
let gemv_pattern : Rewrite.pattern =
 fun ctx op ->
  match op.Ir.name with
  | "cinm.gemv" ->
    let b = ctx.Rewrite.b in
    let a = Rewrite.operand ctx op 0 and x = Rewrite.operand ctx op 1 in
    let result_ty = (Ir.result op 0).Ir.ty in
    let banks =
      Builder.build1 b "fimdram.alloc_banks"
        ~attrs:[ ("banks", Attr.Int 16) ]
        ~result_tys:[ Types.Cim_id ]
    in
    let zero = Arith.const_index b 0 in
    Builder.build0 b "fimdram.bank_write" ~operands:[ banks; a; zero ];
    Some (Rewrite.Replace [
      Builder.build1 b "fimdram.bank_mac" ~operands:[ banks; x ] ~result_tys:[ result_ty ]
    ])
  | _ -> None

let to_fimdram = Pass.of_patterns ~name:"cnm-to-fimdram" [ gemv_pattern ]

(* ----- 3. semantics + timing for the new device ----- *)

type fim_state = {
  mutable matrices : (int * Tensor.t) list;
  mutable next : int;
  mutable busy_s : float;
  mutable macs : int;
}

let fim_hook (st : fim_state) : Interp.hook =
 fun _ctx op ops ->
  let operand i = ops.(i) in
  match op.Ir.name with
  | "fimdram.alloc_banks" ->
    st.next <- st.next + 1;
    Some [ Rtval.Handle st.next ]
  | "fimdram.bank_write" ->
    let id = Rtval.as_handle (operand 0) in
    let t = Rtval.as_tensor (operand 1) in
    st.matrices <- (id, t) :: st.matrices;
    (* HBM2 bank write bandwidth *)
    st.busy_s <- st.busy_s +. (float_of_int (Tensor.num_elements t * 4) /. 300e9);
    Some []
  | "fimdram.bank_mac" ->
    let id = Rtval.as_handle (operand 0) in
    let x = Rtval.as_tensor (operand 1) in
    let a = List.assoc id st.matrices in
    let out = Tensor.matvec a x in
    let macs = Tensor.num_elements a in
    st.macs <- st.macs + macs;
    (* 16 banks x 1 MAC/cycle @ 300 MHz *)
    st.busy_s <- st.busy_s +. (float_of_int macs /. (16.0 *. 300e6));
    Some [ Rtval.Tensor out ]
  | _ -> None

(* ----- putting it together ----- *)

let () =
  let f =
    Func.create ~name:"mv" ~arg_tys:[ tensor [| 128; 64 |]; tensor [| 64 |] ]
      ~result_tys:[ tensor [| 128 |] ]
  in
  let b = Builder.for_func f in
  Func_d.return b [ Linalg_d.matvec b (Func.param f 0) (Func.param f 1) ];
  let m = Func.create_module () in
  Func.add_func m f;
  (* note: cinm and cnm are reused untouched — only the last hop changes *)
  Pass.run_pipeline [ Linalg_to_cinm.pass; to_fimdram ] m;
  print_endline "== lowered to the new device dialect ==";
  print_endline (Printer.module_to_string m);

  let a = Tensor.init [| 128; 64 |] (fun i -> (i mod 13) - 6) in
  let x = Tensor.init [| 64 |] (fun i -> (i mod 7) - 3) in
  let st = { matrices = []; next = 0; busy_s = 0.0; macs = 0 } in
  let results, _ =
    Interp.run_func ~hooks:[ fim_hook st ] (List.hd m.Func.funcs)
      [ Rtval.Tensor a; Rtval.Tensor x ]
  in
  assert (Tensor.equal (Tensor.matvec a x) (Rtval.as_tensor (List.hd results)));
  Printf.printf "\nfimdram run: %d MACs in %.2f us (simulated), result verified.\n" st.macs
    (1e6 *. st.busy_s)
