(* Benchmark descriptor: a device-independent program (built fresh for
   each compilation so pipelines can mutate it) plus deterministic input
   data. *)

open Cinm_ir
open Cinm_interp

type t = {
  name : string;
  category : string;  (** paper benchmark-suite category *)
  description : string;
  build : unit -> Func.t;
  inputs : unit -> Rtval.t list;
  mutable ref_cache : Rtval.t list option;
}

let make ~name ~category ~description ~build ~inputs =
  (* Input data is deterministic and treated as read-only by every backend
     (device paths copy into device buffers, host tensor ops are pure), so
     one generation serves the reference and all backend variants of the
     descriptor — experiments that sweep variants would otherwise pay the
     element-by-element init once per run. *)
  let cache = ref None in
  let inputs () =
    match !cache with
    | Some i -> i
    | None ->
      let i = inputs () in
      cache := Some i;
      i
  in
  { name; category; description; build; inputs; ref_cache = None }

(* Reference output, computed on the host interpreter. Benchmarks are
   deterministic (fresh build, fixed inputs), so the reference is computed
   once per descriptor and memoized — experiments that check several
   backend variants of the same benchmark would otherwise re-run it per
   variant. *)
let reference (b : t) =
  match b.ref_cache with
  | Some results -> results
  | None ->
    let results, _ = Interp.run_func (b.build ()) (b.inputs ()) in
    b.ref_cache <- Some results;
    results

(* Check a backend's results against the host reference. *)
let results_match (b : t) (actual : Rtval.t list) =
  let expected = reference b in
  List.length expected = List.length actual
  && List.for_all2
       (fun e a ->
         match (e, a) with
         | Rtval.Tensor te, Rtval.Tensor ta -> Tensor.equal te ta
         | Rtval.Int ie, Rtval.Int ia -> ie = ia
         | _ -> e = a)
       expected actual
