(** Benchmark descriptor: a device-independent program (built fresh per
    compilation, since pipelines mutate it) plus deterministic inputs. *)

open Cinm_ir
open Cinm_interp

type t = {
  name : string;
  category : string;  (** paper benchmark-suite category *)
  description : string;
  build : unit -> Func.t;
  inputs : unit -> Rtval.t list;
  mutable ref_cache : Rtval.t list option;
      (** memoized host-reference output: benchmarks are deterministic, so
          checking several backend variants of one descriptor must not
          re-run the reference each time *)
}

val make :
  name:string ->
  category:string ->
  description:string ->
  build:(unit -> Func.t) ->
  inputs:(unit -> Rtval.t list) ->
  t

(** Host-interpreter reference output. *)
val reference : t -> Rtval.t list

val results_match : t -> Rtval.t list -> bool
