(* Heterogeneous-partitioning benchmarks (paper §3.4): programs whose
   independent kernels suit *different* machines, so the partitioner
   splits one module across the crossbar (gemm), the DPU grid
   (elementwise/reduction) and the CAM (similarity search) at once and
   the async executor overlaps their DMA and compute. Kept out of the
   default suites: the single-device baselines pin their own benchmark
   lists. *)

open Cinm_ir
open Cinm_dialects
open Cinm_interp

let tensor shape = Types.Tensor (shape, Types.I32)

(* One kernel class per machine, all independent: the gemm prefers the
   crossbar, the hamming search the CAM, and the elementwise adds load
   the host until the earliest-finish rule spills onto the DPU grid.
   Sequential execution pays the sum, overlapped execution only the
   slowest device. db/q sized to the CAM array (4096 entries, width 64). *)
let mix ?(m = 1024) ?(k = 32) ?(n = 32) ?(ew = 65536) ?(db = 4096) ?(q = 64)
    ?(topk = 4) () =
  Benchmark.make ~name:"het-mix" ~category:"heterogeneous"
    ~description:"independent gemm + elementwise adds + hamming search"
    ~build:(fun () ->
      let f =
        Func.create ~name:"het_mix"
          ~arg_tys:
            [
              tensor [| m; k |]; tensor [| k; n |]; tensor [| ew |];
              tensor [| ew |]; tensor [| ew |]; tensor [| db |]; tensor [| q |];
            ]
          ~result_tys:
            [
              tensor [| m; n |]; tensor [| ew |]; tensor [| ew |];
              tensor [| ew |]; tensor [| topk |];
            ]
      in
      let b = Builder.for_func f in
      let mm = Linalg_d.matmul b (Func.param f 0) (Func.param f 1) in
      let x = Func.param f 2 and y = Func.param f 3 and z = Func.param f 4 in
      let s1 = Linalg_d.add b x y in
      let s2 = Linalg_d.add b y z in
      let s3 = Linalg_d.add b x z in
      let _values, idx =
        Cinm_d.sim_search b ~metric:"hamming" ~k:topk (Func.param f 5)
          (Func.param f 6)
      in
      Func_d.return b [ mm; s1; s2; s3; idx ];
      f)
    ~inputs:(fun () ->
      [
        Rtval.Tensor (Workloads.tensor ~seed:91 [| m; k |]);
        Rtval.Tensor (Workloads.tensor ~seed:92 [| k; n |]);
        Rtval.Tensor (Workloads.tensor ~seed:93 [| ew |]);
        Rtval.Tensor (Workloads.tensor ~seed:94 [| ew |]);
        Rtval.Tensor (Workloads.tensor ~seed:95 [| ew |]);
        Rtval.Tensor (Workloads.tensor ~seed:96 [| db |]);
        Rtval.Tensor (Workloads.tensor ~seed:97 [| q |]);
      ])

(* A batch of independent vector adds plus one gemm: the adds queue on
   the DPU grid, where the h2d stage of add i+1 overlaps the kernel of
   add i (double-buffered DMA), while the crossbar runs the gemm
   concurrently. *)
let batch ?(lanes = 4) ?(n = 16384) ?(m = 256) ?(k = 32) ?(nn = 32) () =
  Benchmark.make ~name:"het-batch" ~category:"heterogeneous"
    ~description:"independent vector-add batch + gemm"
    ~build:(fun () ->
      let vec_args = List.init (2 * lanes) (fun _ -> tensor [| n |]) in
      let f =
        Func.create ~name:"het_batch"
          ~arg_tys:(vec_args @ [ tensor [| m; k |]; tensor [| k; nn |] ])
          ~result_tys:
            (List.init lanes (fun _ -> tensor [| n |]) @ [ tensor [| m; nn |] ])
      in
      let b = Builder.for_func f in
      let sums =
        List.init lanes (fun i ->
            Linalg_d.add b (Func.param f (2 * i)) (Func.param f ((2 * i) + 1)))
      in
      let mm =
        Linalg_d.matmul b (Func.param f (2 * lanes)) (Func.param f ((2 * lanes) + 1))
      in
      Func_d.return b (sums @ [ mm ]);
      f)
    ~inputs:(fun () ->
      List.init (2 * lanes) (fun i ->
          Rtval.Tensor (Workloads.tensor ~seed:(101 + i) [| n |]))
      @ [
          Rtval.Tensor (Workloads.tensor ~seed:121 [| m; k |]);
          Rtval.Tensor (Workloads.tensor ~seed:122 [| k; nn |]);
        ])

let all () = [ mix (); batch () ]
