(* CAM and RTM logic-CIM simulators: the remaining CIM device classes of
   the paper's taxonomy (Fig. 1: CAM-based CIM, logic CIM). Both are small
   fixed-function engines, so one module hosts both machines.

   CAM timing (C4CAM/X-TIME-class TCAM/ACAM): programming costs one write
   per entry row; a search evaluates all match lines in parallel in one
   cycle-ish latency regardless of entry count; the priority encoder
   returns the best matches.

   RTM timing (PIRM-class): data shifts into nanowire tracks; a transverse
   read senses [tr_distance] domains of every track at once, so a
   population count takes domains/tr_distance reads. *)

open Cinm_ir
open Cinm_interp
module Schedule = Cinm_support.Schedule
module Vec = Cinm_support.Vec

type config = {
  (* CAM *)
  cam_entries : int;
  cam_width : int;
  t_search : float;  (** s per parallel search (match + priority encode) *)
  t_write_entry : float;  (** s per programmed entry row *)
  e_search : float;  (** J per search (all match lines switch) *)
  e_write_entry : float;
  (* RTM *)
  rtm_tracks : int;
  rtm_domains : int;  (** per track *)
  tr_distance : float;  (** domains sensed per transverse read *)
  t_shift : float;  (** s per domain shifted during writes *)
  t_transverse_read : float;
  e_transverse_read : float;
}

let default_config () =
  {
    cam_entries = 4096;
    cam_width = 64;
    t_search = 10e-9;
    t_write_entry = 200e-9;
    e_search = 5e-9;
    e_write_entry = 50e-12;
    rtm_tracks = 64;
    rtm_domains = 64;
    tr_distance = 8.0;
    t_shift = 1e-9;
    t_transverse_read = 2e-9;
    e_transverse_read = 10e-12;
  }

type stats = {
  mutable cam_searches : int;
  mutable cam_entries_written : int;
  mutable rtm_reads : int;
  mutable busy_s : float;
  mutable energy_j : float;
}

type cam_device = { mutable cam_data : Tensor.t option; d_entries : int; d_width : int }

type rtm_device = { mutable rtm_data : Tensor.t option; d_tracks : int; d_domains : int }

type entry = Cam of cam_device | Rtm of rtm_device

type t = {
  config : config;
  stats : stats;
  devices : (int, entry) Hashtbl.t;
  mutable next : int;
  events : Schedule.ev Vec.t;
}

let create config =
  {
    config;
    stats = { cam_searches = 0; cam_entries_written = 0; rtm_reads = 0; busy_s = 0.0; energy_j = 0.0 };
    devices = Hashtbl.create 4;
    next = 0;
    events = Vec.create ();
  }

let register m e =
  let id = m.next in
  m.next <- m.next + 1;
  Hashtbl.replace m.devices id e;
  Rtval.Handle id

let find_cam m rv =
  match Hashtbl.find_opt m.devices (Rtval.as_handle rv) with
  | Some (Cam d) -> d
  | _ -> invalid_arg "CAM machine: expected CAM handle"

let find_rtm m rv =
  match Hashtbl.find_opt m.devices (Rtval.as_handle rv) with
  | Some (Rtm d) -> d
  | _ -> invalid_arg "CAM machine: expected RTM handle"

(* match scores: larger is better, mirroring Tensor.sim_search *)
let score ~metric entry_row query width =
  let acc = ref 0 in
  for j = 0 to width - 1 do
    let e = Tensor.get_int entry_row j and q = Tensor.get_int query j in
    match metric with
    | "hamming" ->
      let x = (e lxor q) land 0xFFFFFFFF in
      let rec bits v a = if v = 0 then a else bits (v lsr 1) (a + (v land 1)) in
      acc := !acc - bits x 0
    | "l2" ->
      let d = e - q in
      acc := !acc - (d * d)
    | "dot" -> acc := !acc + (e * q)
    | m -> invalid_arg ("cam.search_best: metric " ^ m)
  done;
  !acc

let hook_impl (m : t) : Interp.hook =
 fun _ctx op ops ->
  let operand i = ops.(i) in
  let c = m.config in
  match op.Ir.name with
  (* ----- CAM ----- *)
  | "cam.alloc" ->
    let entries = Ir.int_attr op "entries" and width = Ir.int_attr op "width" in
    if entries > c.cam_entries || width > c.cam_width then
      invalid_arg
        (Printf.sprintf "cam.alloc: %dx%d exceeds the %dx%d array" entries width
           c.cam_entries c.cam_width);
    Some [ register m (Cam { cam_data = None; d_entries = entries; d_width = width }) ]
  | "cam.write_entries" ->
    let d = find_cam m (operand 0) in
    let data = Rtval.as_tensor (operand 1) in
    (match data.Tensor.shape with
    | [| e; w |] when e <= d.d_entries && w = d.d_width -> ()
    | _ -> invalid_arg "cam.write_entries: shape does not match the allocated array");
    d.cam_data <- Some (Tensor.copy data);
    let rows = data.Tensor.shape.(0) in
    m.stats.cam_entries_written <- m.stats.cam_entries_written + rows;
    m.stats.busy_s <- m.stats.busy_s +. (float_of_int rows *. c.t_write_entry);
    m.stats.energy_j <- m.stats.energy_j +. (float_of_int rows *. c.e_write_entry);
    Some []
  | "cam.search_best" -> (
    let d = find_cam m (operand 0) in
    let query = Rtval.as_tensor (operand 1) in
    let k = Ir.int_attr op "k" and metric = Ir.str_attr op "metric" in
    match d.cam_data with
    | None -> invalid_arg "cam.search_best: no entries programmed"
    | Some data ->
      let entries = data.Tensor.shape.(0) and width = data.Tensor.shape.(1) in
      let scores =
        Tensor.init [| entries |] (fun i ->
            score ~metric (Tensor.extract_slice data ~offsets:[| i; 0 |] ~sizes:[| 1; width |])
              query width)
      in
      let _, indices = Tensor.topk ~k scores in
      (* one parallel search per query; the priority encoder walks k deep *)
      m.stats.cam_searches <- m.stats.cam_searches + 1;
      m.stats.busy_s <- m.stats.busy_s +. (float_of_int k *. c.t_search);
      m.stats.energy_j <- m.stats.energy_j +. (float_of_int k *. c.e_search);
      Some [ Rtval.Tensor indices ])
  | "cam.release" ->
    Hashtbl.remove m.devices (Rtval.as_handle (operand 0));
    Some []
  (* ----- RTM ----- *)
  | "rtm.alloc" ->
    let tracks = Ir.int_attr op "tracks" and domains = Ir.int_attr op "domains" in
    if tracks > c.rtm_tracks || domains > c.rtm_domains then
      invalid_arg "rtm.alloc: exceeds the available tracks/domains";
    Some [ register m (Rtm { rtm_data = None; d_tracks = tracks; d_domains = domains }) ]
  | "rtm.write" ->
    let d = find_rtm m (operand 0) in
    let data = Rtval.as_tensor (operand 1) in
    let n = Tensor.num_elements data in
    if n > d.d_tracks * d.d_domains then invalid_arg "rtm.write: data exceeds track capacity";
    d.rtm_data <- Some (Tensor.copy data);
    (* shifting dominates RTM writes *)
    m.stats.busy_s <-
      m.stats.busy_s +. (float_of_int (32 * n / max 1 d.d_tracks) *. c.t_shift);
    Some []
  | "rtm.pop_count" -> (
    let d = find_rtm m (operand 0) in
    match d.rtm_data with
    | None -> invalid_arg "rtm.pop_count: no data written"
    | Some data ->
      let result = Tensor.pop_count data in
      (* 32 bit-planes, domains/tr_distance transverse reads each *)
      let reads =
        int_of_float
          (ceil (32.0 *. float_of_int d.d_domains /. m.config.tr_distance))
      in
      m.stats.rtm_reads <- m.stats.rtm_reads + reads;
      m.stats.busy_s <- m.stats.busy_s +. (float_of_int reads *. c.t_transverse_read);
      m.stats.energy_j <- m.stats.energy_j +. (float_of_int reads *. c.e_transverse_read);
      Some [ Rtval.Int result ])
  | "rtm.release" ->
    Hashtbl.remove m.devices (Rtval.as_handle (operand 0));
    Some []
  | _ -> None

(* The public hook: dispatch to [hook_impl], logging one schedule event
   per timed op (duration = the busy_s increment). Both engines are
   fixed-function and serial, so all events share one "dev" channel;
   programming writes count as host->device DMA, searches and transverse
   reads as device compute. *)
let hook (m : t) : Interp.hook =
  let impl = hook_impl m in
  fun ctx op ops ->
    match op.Ir.name with
    | "cam.write_entries" | "cam.search_best" | "rtm.write" | "rtm.pop_count" ->
      let t0 = m.stats.busy_s in
      let r = impl ctx op ops in
      let dur_s = m.stats.busy_s -. t0 in
      let kind =
        match op.Ir.name with
        | "cam.write_entries" | "rtm.write" -> Schedule.Dma_in
        | _ -> Schedule.Compute
      in
      Vec.push m.events
        { Schedule.chan = "dev"; kind; dur_s; bufs = []; label = op.Ir.name };
      r
    | _ -> impl ctx op ops

let run m (f : Func.t) args =
  let results, _ = Compile.run_func ~hooks:[ hook m ] f args in
  (results, m.stats)
