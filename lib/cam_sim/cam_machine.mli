(** CAM (C4CAM/X-TIME-class parallel search) and RTM (PIRM-class
    transverse-read popcount) simulators — the CIM device classes of the
    paper's taxonomy beyond crossbars. *)

open Cinm_ir
open Cinm_interp

type config = {
  cam_entries : int;
  cam_width : int;
  t_search : float;  (** s per parallel search (match + priority encode) *)
  t_write_entry : float;
  e_search : float;
  e_write_entry : float;
  rtm_tracks : int;
  rtm_domains : int;
  tr_distance : float;  (** domains sensed per transverse read *)
  t_shift : float;
  t_transverse_read : float;
  e_transverse_read : float;
}

val default_config : unit -> config

type stats = {
  mutable cam_searches : int;
  mutable cam_entries_written : int;
  mutable rtm_reads : int;
  mutable busy_s : float;
  mutable energy_j : float;
}

type t = {
  config : config;
  stats : stats;
  devices : (int, entry) Hashtbl.t;
  mutable next : int;
  events : Cinm_support.Schedule.ev Cinm_support.Vec.t;
      (** schedule-event log: one entry per timed op, duration = the
          [busy_s] increment; sliced by the async executor *)
}

and entry

val create : config -> t

(** Interpreter hook implementing cam.* and rtm.*. Capacity violations and
    compute-before-program raise [Invalid_argument]. *)
val hook : t -> Interp.hook

val run : t -> Func.t -> Rtval.t list -> Rtval.t list * stats
