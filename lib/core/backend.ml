(* Compilation targets of the CINM flow (paper §4.1.2's configurations). *)

type upmem_config = {
  ranks : int;  (** DIMM ranks; DPUs scale as ranks * dimms * dpus_per_dimm *)
  dimms : int;
  dpus_per_dimm : int;
      (** 128 on the real machine; benchmarks may scale this down so the
          functional simulation stays tractable — ratios are preserved *)
  tasklets : int;
  optimize : bool;  (** cinm-opt-nd: WRAM-aware tiling + loop interchange *)
  max_rows_per_launch : int;
}

type cim_config = {
  rows : int;
  cols : int;
  tiles : int;
  input_chunk : int;
  min_writes : bool;  (** cim-min-writes: loop interchange *)
  parallel : bool;  (** cim-parallel: tile-level loop unrolling *)
}

type t =
  | Host_xeon  (** cpu-opt: vectorized/parallel host baseline *)
  | Host_arm  (** the in-order ARM baseline of the OCC/gem5 setup *)
  | Upmem of upmem_config
  | Cim of cim_config
  | Hetero of upmem_config * cim_config
      (** partitioned across UPMEM + memristor + CAM + host simultaneously,
          run on the async multi-stream executor *)

let default_upmem ?(ranks = 1) ?(dimms = 16) ?(dpus_per_dimm = 128) ?(tasklets = 16)
    ?(optimize = false) ?(max_rows_per_launch = 64) () =
  { ranks; dimms; dpus_per_dimm; tasklets; optimize; max_rows_per_launch }

let default_cim ?(rows = 64) ?(cols = 64) ?(tiles = 4) ?(input_chunk = 128)
    ?(min_writes = false) ?(parallel = false) () =
  { rows; cols; tiles; input_chunk; min_writes; parallel }

let default_hetero ?ranks ?dimms ?dpus_per_dimm () =
  Hetero (default_upmem ?ranks ?dimms ?dpus_per_dimm (), default_cim ())

let to_string = function
  | Host_xeon -> "cpu-opt"
  | Host_arm -> "arm"
  | Upmem c ->
    Printf.sprintf "upmem-%dd%s%s" c.dimms
      (if c.ranks > 1 then Printf.sprintf "-%dr" c.ranks else "")
      (if c.optimize then "-opt" else "")
  | Cim c ->
    Printf.sprintf "cim%s%s"
      (if c.min_writes then "-min-writes" else "")
      (if c.parallel then "-parallel" else "")
  | Hetero (u, _) ->
    if u.ranks > 1 then Printf.sprintf "hetero-%dr" u.ranks else "hetero"
