(** Compilation targets of the CINM flow (the paper's §4.1.2
    configurations). *)

type upmem_config = {
  ranks : int;  (** DIMM ranks; DPUs scale as ranks * dimms * dpus_per_dimm *)
  dimms : int;
  dpus_per_dimm : int;
      (** 128 on the real machine; benchmarks may scale this down so the
          functional simulation stays tractable — ratios are preserved *)
  tasklets : int;
  optimize : bool;  (** cinm-opt-nd: WRAM-aware tiling + loop interchange *)
  max_rows_per_launch : int;
}

type cim_config = {
  rows : int;
  cols : int;
  tiles : int;
  input_chunk : int;  (** rows of A streamed per cim.execute *)
  min_writes : bool;  (** cim-min-writes: loop interchange *)
  parallel : bool;  (** cim-parallel: tile-level loop unrolling *)
}

type t =
  | Host_xeon  (** cpu-opt: vectorized/parallel host baseline *)
  | Host_arm  (** the in-order ARM baseline of the OCC/gem5 setup *)
  | Upmem of upmem_config
  | Cim of cim_config
  | Hetero of upmem_config * cim_config
      (** partitioned across UPMEM + memristor + CAM + host simultaneously,
          run on the async multi-stream executor *)

val default_upmem :
  ?ranks:int ->
  ?dimms:int ->
  ?dpus_per_dimm:int ->
  ?tasklets:int ->
  ?optimize:bool ->
  ?max_rows_per_launch:int ->
  unit ->
  upmem_config

val default_cim :
  ?rows:int ->
  ?cols:int ->
  ?tiles:int ->
  ?input_chunk:int ->
  ?min_writes:bool ->
  ?parallel:bool ->
  unit ->
  cim_config

(** [Hetero] with default device configs; [ranks]/[dimms]/[dpus_per_dimm]
    size the UPMEM side. *)
val default_hetero :
  ?ranks:int -> ?dimms:int -> ?dpus_per_dimm:int -> unit -> t

val to_string : t -> string
