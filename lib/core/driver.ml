(* The end-to-end CINM compiler driver: assembles the progressive-lowering
   pipeline of paper Fig. 4 for a chosen backend, compiles a module, and
   executes it on the corresponding simulator, producing a Report.

   Pipelines:
     host:   tosa -> linalg                     (reference interpreter)
     upmem:  tosa -> linalg -> cinm -> cnm -> upmem   (machine simulator)
     cim:    tosa -> linalg -> cinm -> cim [-> unroll] -> memristor -> licm
*)

open Cinm_ir
open Cinm_transforms
open Cinm_interp
module Usim = Cinm_upmem_sim
module Msim = Cinm_memristor_sim
module Camsim = Cinm_cam_sim
module Cpu = Cinm_cpu_sim
module Trace = Cinm_support.Trace
module Log = Cinm_support.Log
module Config = Cinm_support.Config

let () = Cinm_dialects.Registry.ensure_all ()

(* ----- pipeline construction ----- *)

let force_target t =
  Target_select.pass
    ~policy:{ Target_select.default_policy with forced_target = Some t }
    ()

let cim_target =
  (* greedy policy with a low threshold: every matmul-like op offloads to
     the crossbar, everything else is host-orchestrated (as in OCC) *)
  Target_select.pass
    ~policy:{ Target_select.default_policy with cim_gemm_threshold = 2 }
    ()

let pipeline (backend : Backend.t) : Pass.t list =
  match backend with
  | Backend.Host_xeon | Backend.Host_arm -> [ Torch_to_tosa.pass; Tosa_to_linalg.pass ]
  | Backend.Upmem c ->
    let cnm_opts =
      {
        (* ranks scale the DPU grid like extra DIMMs (per-rank fault
           domains live in the simulator, not the lowering) *)
        Cinm_to_cnm.dpus =
          c.Backend.ranks * c.Backend.dimms * c.Backend.dpus_per_dimm;
        tasklets = c.Backend.tasklets;
        optimize = c.Backend.optimize;
        max_rows_per_launch = c.Backend.max_rows_per_launch;
      }
    in
    let up_opts =
      { Cnm_to_upmem.default_options with dpus_per_dimm = c.Backend.dpus_per_dimm }
    in
    [
      Torch_to_tosa.pass; Tosa_to_linalg.pass; Linalg_to_cinm.pass;
      force_target "cnm"; Ew_fusion.pass;
      Cinm_to_cnm.pass ~options:cnm_opts (); Cnm_to_upmem.pass ~options:up_opts ();
      Canonicalize.pass;
    ]
  | Backend.Cim c ->
    let cim_opts =
      {
        Cinm_to_cim.rows = c.Backend.rows;
        cols = c.Backend.cols;
        tiles = c.Backend.tiles;
        input_chunk = c.Backend.input_chunk;
        interchange = c.Backend.min_writes;
        parallel = c.Backend.parallel;
      }
    in
    [
      Torch_to_tosa.pass; Tosa_to_linalg.pass; Linalg_to_cinm.pass; cim_target;
      Cinm_to_cam.pass; Cinm_to_rtm.pass ();
      Cinm_to_cim.pass ~options:cim_opts (); Loop_unroll.pass;
      Cim_to_memristor.assign_pass ~tiles:c.Backend.tiles; Cim_to_memristor.pass;
      Licm.pass; Licm.pass; Canonicalize.pass;
    ]
  | Backend.Hetero (u, ci) ->
    (* one module partitioned across all devices: the dependency-aware
       partitioner replaces forced target selection, then *every* device
       lowering runs — each claims the ops whose "target" the partitioner
       assigned to it, everything left runs natively on the host *)
    let total_dpus = u.Backend.ranks * u.Backend.dimms * u.Backend.dpus_per_dimm in
    let cnm_opts =
      {
        Cinm_to_cnm.dpus = total_dpus;
        tasklets = u.Backend.tasklets;
        optimize = u.Backend.optimize;
        max_rows_per_launch = u.Backend.max_rows_per_launch;
      }
    in
    let up_opts =
      { Cnm_to_upmem.default_options with dpus_per_dimm = u.Backend.dpus_per_dimm }
    in
    let cim_opts =
      {
        Cinm_to_cim.rows = ci.Backend.rows;
        cols = ci.Backend.cols;
        tiles = ci.Backend.tiles;
        input_chunk = ci.Backend.input_chunk;
        interchange = ci.Backend.min_writes;
        parallel = ci.Backend.parallel;
      }
    in
    let part_policy =
      {
        Partition.default_policy with
        Partition.upmem_dpus = total_dpus;
        cim_rows = ci.Backend.rows;
        cim_cols = ci.Backend.cols;
      }
    in
    [
      Torch_to_tosa.pass; Tosa_to_linalg.pass; Linalg_to_cinm.pass;
      Partition.pass ~policy:part_policy (); Ew_fusion.pass;
      Cinm_to_cam.pass; Cinm_to_rtm.pass ();
      Cinm_to_cim.pass ~options:cim_opts (); Loop_unroll.pass;
      Cim_to_memristor.assign_pass ~tiles:ci.Backend.tiles; Cim_to_memristor.pass;
      Licm.pass; Licm.pass;
      Cinm_to_cnm.pass ~options:cnm_opts (); Cnm_to_upmem.pass ~options:up_opts ();
      Canonicalize.pass;
    ]

(* One host-clock driver span (compile / execute), emitted even when [f]
   raises so the trace shows where a failing run died. The same timing
   feeds the phase histograms (cinm_driver_compile_seconds /
   cinm_driver_execute_seconds) when metrics are collected; with both
   tracing and metrics off this is a single branch around [f]. *)
let with_span ?config name f =
  let tracing = Trace.enabled () and metrics = Trace.Metrics.enabled () in
  if not (tracing || metrics) then f ()
  else begin
    let t0 = Trace.now_host () in
    Fun.protect
      ~finally:(fun () ->
        let dur = Trace.now_host () -. t0 in
        if tracing then begin
          let args =
            match config with
            | Some c when c.Config.req_id <> "" ->
              [ ("req_id", Trace.Str c.Config.req_id) ]
            | _ -> []
          in
          Trace.complete ~cat:"driver" ~args ~clock:Trace.Host
            ~pid:Trace.host_pid ~track:"driver" ~ts:t0 ~dur name
        end;
        if metrics then begin
          let phase =
            match String.index_opt name ':' with
            | Some i -> String.sub name 0 i
            | None -> name
          in
          Trace.Metrics.observe
            (Printf.sprintf "cinm_driver_%s_seconds" phase)
            dur
        end)
      f
  end

type compiled = {
  modul : Func.modul;
  backend : Backend.t;
  fallback : Pass.diag option;
      (** set when device lowering failed and the module was re-lowered
          for the CPU instead *)
}

let clone_module (m : Func.modul) =
  let m' = Func.create_module () in
  List.iter (fun f -> Func.add_func m' (Func.clone f)) m.Func.funcs;
  m'

(* The degradation path when a device lowering fails: lower the pristine
   module to scf loops for the host interpreter (cinm→scf applies to ops
   without a device target, which a fresh front-end run leaves unset). *)
let cpu_fallback_pipeline =
  [
    Torch_to_tosa.pass; Tosa_to_linalg.pass; Linalg_to_cinm.pass;
    Cinm_to_scf.pass; Canonicalize.pass;
  ]

let compile ?(verify = true) ?(fallback = true) ?config backend (m : Func.modul)
    : compiled =
  with_span ?config ("compile:" ^ Backend.to_string backend) @@ fun () ->
  match backend with
  | Backend.Host_xeon | Backend.Host_arm ->
    Pass.run_pipeline ~verify ?config (pipeline backend) m;
    { modul = m; backend; fallback = None }
  | Backend.Upmem _ | Backend.Cim _ | Backend.Hetero _ -> (
    (* device lowerings can fail on capacity/config limits; keep a pristine
       snapshot so the failed (possibly half-transformed) module can be
       abandoned and re-lowered for the CPU *)
    let snapshot = if fallback then Some (clone_module m) else None in
    match Pass.run_pipeline_result ~verify ?config (pipeline backend) m with
    | Ok () -> { modul = m; backend; fallback = None }
    | Error diag -> (
      match snapshot with
      | None -> raise (Pass.Pass_failed diag)
      | Some snap ->
        Log.warn "%s; degrading to CPU lowering" (Pass.diag_to_string diag);
        (match Pass.last_reproducer () with
        | Some r when r.Pass.diag = diag ->
          Log.warn "crash reproducer for the failed lowering: %s" r.Pass.path
        | _ -> ());
        Pass.run_pipeline ~verify ?config cpu_fallback_pipeline snap;
        { modul = snap; backend; fallback = Some diag }))

let compile_func ?verify ?fallback ?config backend (f : Func.t) : compiled =
  let m = Func.create_module () in
  Func.add_func m f;
  compile ?verify ?fallback ?config backend m

(* ----- execution ----- *)

let upmem_sim_config (c : Backend.upmem_config) =
  {
    (Usim.Config.default ~ranks:c.Backend.ranks ~dimms:c.Backend.dimms ()) with
    Usim.Config.dpus_per_dimm = c.Backend.dpus_per_dimm;
  }

(* The machine fault plan a request's config asks for: an explicit plan
   overrides the process default (CINM_FAULTS via Fault.default), which
   machines apply when the argument is omitted. *)
let machine_faults config =
  match config with Some { Config.faults = Some p; _ } -> Some (Some p) | _ -> None

(* Run an already-lowered upmem-level function on the machine simulator
   (used both by the driver and by the hand-written PrIM baselines). *)
let run_upmem_func ?(backend_name = "upmem") ?host_model ?modul ?config
    ~sim_config f args =
  let machine = Usim.Machine.create ?faults:(machine_faults config) sim_config in
  let profile = Profile.create () in
  let results, _ =
    with_span ?config ("execute:" ^ backend_name) @@ fun () ->
    Compile.run_func
      ~hooks:[ Usim.Machine.hook machine ]
      ~profile ?modul ?config f args
  in
  let stats = machine.Usim.Machine.stats in
  let host_model = Option.value host_model ~default:Cpu.Model.xeon_opt in
  let host = Cpu.Model.estimate host_model profile in
  let device_s = Usim.Stats.total_s stats in
  (* With tracing live, the report's time breakdown is *derived from the
     trace* rather than read off the stats in parallel: the machine emits
     one span per bucket increment, in increment order, so the folded
     span durations reproduce the stats fields bit for bit (asserted by
     test_trace). With tracing off, trace_pid stays 0 and the stats are
     used directly — identical values either way. *)
  let breakdown =
    let pid = machine.Usim.Machine.trace_pid in
    if pid > 0 then
      [
        ("cpu->dpu", Trace.device_total ~pid "cpu->dpu");
        ("kernel", Trace.device_total ~pid "kernel");
        ("dpu->cpu", Trace.device_total ~pid "dpu->cpu");
      ]
    else
      [
        ("cpu->dpu", stats.Usim.Stats.host_to_device_s);
        ("kernel", stats.Usim.Stats.kernel_s);
        ("dpu->cpu", stats.Usim.Stats.device_to_host_s);
      ]
  in
  (* the machine dies with this run and gathers copy out of device
     buffers, so their storage can recycle through the arena now *)
  Usim.Machine.recycle machine;
  ( results,
    {
      Report.backend = backend_name;
      total_s = host.Cpu.Model.time_s +. device_s;
      host_s = host.Cpu.Model.time_s;
      device_s;
      breakdown;
      energy_j = stats.Usim.Stats.energy_j +. host.Cpu.Model.energy_j;
      counters =
        ([
           ("launches", stats.Usim.Stats.launches);
           ("dpu_instructions", stats.Usim.Stats.dpu_instructions);
           ("dma_bytes", stats.Usim.Stats.dma_bytes);
           ("transferred_bytes", stats.Usim.Stats.transferred_bytes);
         ]
        @
        (* only surfaced under an active fault plan, keeping fault-free
           reports byte-identical to the pre-fault-model ones *)
        if stats.Usim.Stats.retries = 0 && stats.Usim.Stats.failed_dpus = 0 then
          []
        else
          [
            ("retries", stats.Usim.Stats.retries);
            ("failed_dpus", stats.Usim.Stats.failed_dpus);
          ]);
      tracks = [];
    } )

let run ?(fname = "") ?host_model ?config (compiled : compiled)
    (args : Rtval.t list) : Rtval.t list * Report.t =
  let f =
    match fname with
    | "" -> List.hd compiled.modul.Func.funcs
    | name -> Func.find_func_exn compiled.modul name
  in
  let backend_name = Backend.to_string compiled.backend in
  let run_on_host ~backend_name model =
    let results, profile =
      with_span ?config ("execute:" ^ backend_name) @@ fun () ->
      Compile.run_func ~modul:compiled.modul ?config f args
    in
    let est = Cpu.Model.estimate model profile in
    ( results,
      {
        Report.backend = backend_name;
        total_s = est.Cpu.Model.time_s;
        host_s = est.Cpu.Model.time_s;
        device_s = 0.0;
        breakdown =
          [ ("compute", est.Cpu.Model.compute_s); ("memory", est.Cpu.Model.memory_s) ];
        energy_j = est.Cpu.Model.energy_j;
        counters = [ ("ops", Profile.total_scalar_ops profile) ];
        tracks = [];
      } )
  in
  match compiled.backend with
  | _ when compiled.fallback <> None ->
    (* device lowering failed at compile time: the module holds the scf
       CPU lowering; run it on the host interpreter *)
    run_on_host
      ~backend_name:(backend_name ^ "+cpu-fallback")
      (Option.value host_model ~default:Cpu.Model.xeon_opt)
  | Backend.Host_xeon | Backend.Host_arm ->
    let model =
      match (host_model, compiled.backend) with
      | Some m, _ -> m
      | None, Backend.Host_xeon -> Cpu.Model.xeon_opt
      | None, _ -> Cpu.Model.arm_inorder
    in
    run_on_host ~backend_name model
  | Backend.Upmem c ->
    run_upmem_func ~backend_name ?host_model ~modul:compiled.modul ?config
      ~sim_config:(upmem_sim_config c) f args
  | Backend.Cim c ->
    let machine =
      Msim.Machine.create
        ?faults:(machine_faults config)
        {
          (Msim.Config.default ~tiles:c.Backend.tiles ()) with
          Msim.Config.rows = c.Backend.rows;
          cols = c.Backend.cols;
        }
    in
    let cam = Camsim.Cam_machine.create (Camsim.Cam_machine.default_config ()) in
    let profile = Profile.create () in
    let results, _ =
      with_span ?config ("execute:" ^ backend_name) @@ fun () ->
      Compile.run_func
        ~hooks:[ Msim.Machine.hook machine; Camsim.Cam_machine.hook cam ]
        ~profile ~modul:compiled.modul ?config f args
    in
    let stats = machine.Msim.Machine.stats in
    let cam_stats = cam.Camsim.Cam_machine.stats in
    (* the ARM core orchestrates the accelerator and runs everything that
       is not matmul-like (paper §4.1) *)
    let host = Cpu.Model.estimate Cpu.Model.arm_inorder profile in
    let device_s = Msim.Stats.total_s stats +. cam_stats.Camsim.Cam_machine.busy_s in
    (* trace-derived when live, stats-derived when off; see run_upmem_func *)
    let breakdown =
      let pid = machine.Msim.Machine.trace_pid in
      if pid > 0 then
        [
          ("program", Trace.device_total ~pid "program");
          ("mvm", Trace.device_total ~pid "mvm");
          ("io", Trace.device_total ~pid "io");
        ]
      else
        [
          ("program", stats.Msim.Stats.program_s);
          ("mvm", stats.Msim.Stats.compute_s);
          ("io", stats.Msim.Stats.io_s);
        ]
    in
    (* tile staging copies die with the machine; MVM results were fresh *)
    Msim.Machine.recycle machine;
    ( results,
      {
        Report.backend = backend_name;
        total_s = host.Cpu.Model.time_s +. device_s;
        host_s = host.Cpu.Model.time_s;
        device_s;
        breakdown;
        energy_j =
          stats.Msim.Stats.energy_j +. cam_stats.Camsim.Cam_machine.energy_j
          +. host.Cpu.Model.energy_j;
        counters =
          [
            ("crossbar_writes", stats.Msim.Stats.store_ops);
            ("cells_written", stats.Msim.Stats.cells_written);
            ("mvms", stats.Msim.Stats.mvms);
            ("cam_searches", cam_stats.Camsim.Cam_machine.cam_searches);
            ("rtm_reads", cam_stats.Camsim.Cam_machine.rtm_reads);
          ];
        tracks = [];
      } )
  | Backend.Hetero (u, ci) ->
    let machines =
      {
        Stream_exec.upmem =
          Usim.Machine.create ?faults:(machine_faults config) (upmem_sim_config u);
        memristor =
          Msim.Machine.create
            ?faults:(machine_faults config)
            {
              (Msim.Config.default ~tiles:ci.Backend.tiles ()) with
              Msim.Config.rows = ci.Backend.rows;
              cols = ci.Backend.cols;
            };
        cam = Camsim.Cam_machine.create (Camsim.Cam_machine.default_config ());
      }
    in
    (* as on the cim path, the in-order ARM core orchestrates the
       accelerators and runs whatever the partitioner kept on the host *)
    let host_model = Option.value host_model ~default:Cpu.Model.arm_inorder in
    let host_cost p = (Cpu.Model.estimate host_model p).Cpu.Model.time_s in
    let outcome =
      with_span ?config ("execute:" ^ backend_name) @@ fun () ->
      Stream_exec.run ?config ~modul:compiled.modul ~host_cost ~machines f args
    in
    let s = outcome.Stream_exec.summary in
    let ustats = machines.Stream_exec.upmem.Usim.Machine.stats in
    let mstats = machines.Stream_exec.memristor.Msim.Machine.stats in
    let cstats = machines.Stream_exec.cam.Camsim.Cam_machine.stats in
    Usim.Machine.recycle machines.Stream_exec.upmem;
    Msim.Machine.recycle machines.Stream_exec.memristor;
    let module Sched = Cinm_support.Schedule in
    let track_busy pred =
      List.fold_left
        (fun acc (t : Sched.track) ->
          if pred t.Sched.tr_machine then
            acc +. t.Sched.tr_compute_s +. t.Sched.tr_dma_s
          else acc)
        0.0 s.Sched.tracks
    in
    let host_energy = (Cpu.Model.estimate host_model outcome.Stream_exec.profile).Cpu.Model.energy_j in
    ( outcome.Stream_exec.results,
      {
        (* e2e is the overlapped critical path: >= the busiest engine,
           <= host_s + device_s (the single-stream sum) *)
        Report.backend = backend_name;
        total_s = s.Sched.e2e_s;
        host_s = track_busy (String.equal Sched.host_machine);
        device_s = track_busy (fun m -> not (String.equal Sched.host_machine m));
        breakdown =
          [
            ("e2e_overlapped", s.Sched.e2e_s);
            ("e2e_sequential", s.Sched.seq_s);
            ("max_channel_busy", s.Sched.max_channel_busy_s);
          ]
          @ List.concat_map
              (fun (t : Sched.track) ->
                [
                  (t.Sched.tr_machine ^ ".compute", t.Sched.tr_compute_s);
                  (t.Sched.tr_machine ^ ".dma", t.Sched.tr_dma_s);
                  (t.Sched.tr_machine ^ ".idle", t.Sched.tr_idle_s);
                ])
              s.Sched.tracks;
        energy_j =
          Usim.Stats.(ustats.energy_j)
          +. mstats.Msim.Stats.energy_j
          +. cstats.Camsim.Cam_machine.energy_j +. host_energy;
        counters =
          [
            ("launches", ustats.Usim.Stats.launches);
            ("dma_bytes", ustats.Usim.Stats.dma_bytes);
            ("transferred_bytes", ustats.Usim.Stats.transferred_bytes);
            ("mvms", mstats.Msim.Stats.mvms);
            ("cells_written", mstats.Msim.Stats.cells_written);
            ("cam_searches", cstats.Camsim.Cam_machine.cam_searches);
            ("rtm_reads", cstats.Camsim.Cam_machine.rtm_reads);
          ]
          @
          if ustats.Usim.Stats.retries = 0 && ustats.Usim.Stats.failed_dpus = 0
          then []
          else
            [
              ("retries", ustats.Usim.Stats.retries);
              ("failed_dpus", ustats.Usim.Stats.failed_dpus);
            ];
        tracks = s.Sched.tracks;
      } )

(* Compile and run in one step (used by examples and the bench harness). *)
let compile_and_run ?verify ?fallback ?host_model ?config backend f args =
  let compiled = compile_func ?verify ?fallback ?config backend (Func.clone f) in
  match run ?host_model ?config compiled args with
  | result -> result
  | exception Usim.Machine.Insufficient_capacity msg
    when fallback <> Some false ->
    (* a fault plan failed more DPUs than the allocation can absorb:
       like a compile-time lowering failure, degrade the request to the
       host rather than losing it — only this typed capacity error is
       caught, so genuine kernel bugs still surface *)
    Log.warn "%s; degrading to host execution" msg;
    let m = Func.create_module () in
    Func.add_func m (Func.clone f);
    Pass.run_pipeline ?verify ?config cpu_fallback_pipeline m;
    let diag = { Pass.pass = "execute"; op = None; message = msg } in
    run ?host_model ?config { modul = m; backend; fallback = Some diag } args
