(** The end-to-end CINM compiler driver: assembles the progressive-lowering
    pipeline of paper Fig. 4 for a chosen backend, compiles modules, and
    executes them on the corresponding simulator. *)

open Cinm_ir
open Cinm_interp
module Usim = Cinm_upmem_sim
module Cpu = Cinm_cpu_sim

(** The pass pipeline for a backend (host: front-end only; upmem:
    tosa→linalg→cinm→cnm→upmem; cim: …→cim→memristor with unroll/LICM). *)
val pipeline : Backend.t -> Pass.t list

type compiled = {
  modul : Func.modul;
  backend : Backend.t;
  fallback : Pass.diag option;
      (** set when the device lowering failed and the module was
          re-lowered to scf loops for the host instead *)
}

(** Lower a module for the backend. With [fallback] (default on), a device
    lowering failure degrades gracefully: the diagnostic is reported on
    stderr and a pristine clone of the module is lowered via cinm→scf for
    the CPU (so [compiled.modul] is then that clone, and {!run} executes
    it on the host interpreter). With [~fallback:false] — or when
    verification fails on a host backend — {!Pass.Pass_failed} is
    raised.

    [config] is a per-request {!Cinm_support.Config} snapshot threaded
    through the pass pipelines (strict/budget/reproducers) and, in the
    run entry points below, the interpreter (watchdog/deadline/cancel/
    backend) and the machine simulators (fault plan). Omitted, process
    defaults apply — the one-shot CLI behavior. *)
val compile :
  ?verify:bool -> ?fallback:bool -> ?config:Cinm_support.Config.t -> Backend.t ->
  Func.modul -> compiled

val compile_func :
  ?verify:bool -> ?fallback:bool -> ?config:Cinm_support.Config.t -> Backend.t ->
  Func.t -> compiled

(** UPMEM simulator configuration corresponding to a backend config. *)
val upmem_sim_config : Backend.upmem_config -> Usim.Config.t

(** Run an already-lowered upmem-level function on the machine simulator
    (also used directly by the hand-written PrIM baselines). *)
val run_upmem_func :
  ?backend_name:string ->
  ?host_model:Cpu.Model.t ->
  ?modul:Func.modul ->
  ?config:Cinm_support.Config.t ->
  sim_config:Usim.Config.t ->
  Func.t ->
  Rtval.t list ->
  Rtval.t list * Report.t

(** Execute a compiled module's function ([fname] defaults to the first)
    on the backend's simulator; returns results and the report. *)
val run :
  ?fname:string ->
  ?host_model:Cpu.Model.t ->
  ?config:Cinm_support.Config.t ->
  compiled ->
  Rtval.t list ->
  Rtval.t list * Report.t

(** Compile a clone of the function and run it in one step. *)
val compile_and_run :
  ?verify:bool ->
  ?fallback:bool ->
  ?host_model:Cpu.Model.t ->
  ?config:Cinm_support.Config.t ->
  Backend.t ->
  Func.t ->
  Rtval.t list ->
  Rtval.t list * Report.t
