(* Execution report of one compiled benchmark run: simulated time split by
   phase, energy, and the device counters the evaluation tracks. *)

type t = {
  backend : string;
  total_s : float;
  host_s : float;  (** host-side orchestration (interpreted profile) *)
  device_s : float;
  breakdown : (string * float) list;  (** named sub-phases, seconds *)
  energy_j : float;
  counters : (string * int) list;  (** e.g. crossbar writes, DPU launches *)
  tracks : Cinm_support.Schedule.track list;
      (** per-machine simulated-time tracks (compute/dma busy and idle
          under the overlapped schedule); non-empty only for backends run
          on the multi-stream executor *)
}

let total_ms r = 1e3 *. r.total_s

let counter r name = List.assoc_opt name r.counters |> Option.value ~default:0

let to_string r =
  let breakdown =
    String.concat ", "
      (List.map (fun (k, v) -> Printf.sprintf "%s=%.4gms" k (1e3 *. v)) r.breakdown)
  in
  let counters =
    String.concat ", " (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) r.counters)
  in
  Printf.sprintf "%-18s total=%.4gms (host=%.4g dev=%.4g) energy=%.4gmJ [%s] {%s}"
    r.backend (total_ms r) (1e3 *. r.host_s) (1e3 *. r.device_s) (1e3 *. r.energy_j)
    breakdown counters
