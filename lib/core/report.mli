(** Execution report of one compiled benchmark run. *)

type t = {
  backend : string;
  total_s : float;
  host_s : float;  (** host-side orchestration (interpreted profile) *)
  device_s : float;
  breakdown : (string * float) list;  (** named sub-phases, seconds *)
  energy_j : float;
  counters : (string * int) list;  (** e.g. crossbar writes, DPU launches *)
  tracks : Cinm_support.Schedule.track list;
      (** per-machine simulated-time tracks (compute/dma busy and idle
          under the overlapped schedule); non-empty only for backends run
          on the multi-stream executor *)
}

val total_ms : t -> float

(** A named counter's value, 0 when absent. *)
val counter : t -> string -> int

val to_string : t -> string
