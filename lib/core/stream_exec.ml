(* Async multi-stream executor for the Hetero backend: runs one lowered
   module across the UPMEM, memristor and CAM/RTM simulators plus the
   host interpreter *simultaneously*, overlapping each device's
   scatter/gather DMA with compute through the schedule model.

   Execution model
   - Nodes are the function's top-level ops (the terminator excluded).
     Dependencies are (a) SSA: every free value of the op — operands plus
     values its nested regions capture — points at its producing node;
     (b) memory: nodes touching the same memref storage (chased through
     view/cast aliases to the allocation) are chained in program order,
     since memref mutation is invisible to SSA; (c) machine exclusivity:
     nodes driving the same simulator are chained in program order — the
     chain is what makes its stats and event log deterministic under any
     host job count. The exclusivity chains govern *execution* only; the
     schedule merge sees just the data/memory DAG, so queued same-machine
     ops still overlap across the machine's h2d/kernel/d2h engines
     (double-buffered DMA), while per-channel serialization keeps each
     engine's events in program order.
   - Ready nodes execute on the shared {!Cinm_support.Pool} (submitted
     worker tasks plus the calling domain, so progress never depends on a
     worker being free). Every node evaluates in a private context whose
     environment is staged from a mutex-protected results table, with a
     private profile; profiles are merged in program order afterwards, so
     the merged profile is independent of the interleaving.
   - Simulated time: each machine appends schedule events (duration = its
     stats increment) while a node runs; the executor slices the logs per
     node and feeds them, with the dependency DAG, to
     {!Cinm_support.Schedule.summarize} — producing the overlapped
     (critical-path) end-to-end time, the sequential single-stream sum of
     the very same events, and per-machine busy/idle tracks. Host-side
     work becomes one event per node on the shared "cpu" channel, costed
     by the caller's host model over the node's private profile (the
     model's max(compute, memory) is applied per node, and device issue
     is asynchronous: a node's device events do not wait for its own host
     event).

   Because both the parallel and the sequential walk execute the same
   per-node contexts with machine chains forcing the same per-machine op
   order, results, machine stats and schedule events are bit-identical at
   any job count — overlapped execution changes wall-clock and the
   *reported* overlapped makespan, never the data (asserted by
   test_partition). *)

open Cinm_ir
open Cinm_interp
module Usim = Cinm_upmem_sim
module Msim = Cinm_memristor_sim
module Camsim = Cinm_cam_sim
module Schedule = Cinm_support.Schedule
module Vec = Cinm_support.Vec
module Pool = Cinm_support.Pool

type machines = {
  upmem : Usim.Machine.t;
  memristor : Msim.Machine.t;
  cam : Camsim.Cam_machine.t;
}

let hooks_of ms =
  [
    Usim.Machine.hook ms.upmem;
    Msim.Machine.hook ms.memristor;
    Camsim.Cam_machine.hook ms.cam;
  ]

let events_of ms = function
  | "upmem" -> ms.upmem.Usim.Machine.events
  | "memristor" -> ms.memristor.Msim.Machine.events
  | "cam" -> ms.cam.Camsim.Cam_machine.events
  | m -> invalid_arg ("Stream_exec: unknown machine " ^ m)

(* Which simulator a dialect's ops land on. cnm/cim ops that survive to
   execution are handled by the upmem/memristor hooks respectively. *)
let machine_of_dialect = function
  | "upmem" | "cnm" -> Some "upmem"
  | "memristor" | "cim" -> Some "memristor"
  | "cam" | "rtm" -> Some "cam"
  | _ -> None

(* ----- node extraction ----- *)

type node = {
  id : int;
  op : Ir.op;
  free : Ir.value list;  (** operands + values captured by nested regions *)
  machs : string list;  (** simulators driven, fixed order *)
  mutable deps : int list;
      (** execution deps: data + memory + machine chains — what must have
          *run* before this node may run *)
  mutable sdeps : int list;
      (** schedule deps: data + memory only. The machine chains are
          deliberately absent: in the modelled timeline a machine is a set
          of engines (h2d / kernel / d2h channels), and ops queued on the
          same machine overlap across channels — that is the
          double-buffering the schedule measures. Per-channel
          serialization in {!Schedule.makespan} still orders same-channel
          events by program order. *)
}

(* Operands of [op] plus everything its nested regions reference but do
   not define (same notion as the compiled backend's capture set). *)
let free_values (op : Ir.op) : Ir.value list =
  let defined = Hashtbl.create 16 in
  let seen = Hashtbl.create 16 in
  let acc = ref [] in
  let add (v : Ir.value) =
    if (not (Hashtbl.mem defined v.Ir.vid)) && not (Hashtbl.mem seen v.Ir.vid)
    then begin
      Hashtbl.add seen v.Ir.vid ();
      acc := v :: !acc
    end
  in
  Array.iter add op.Ir.operands;
  let rec go_region r =
    Ir.iter_blocks
      (fun b ->
        Array.iter
          (fun (v : Ir.value) -> Hashtbl.replace defined v.Ir.vid ())
          b.Ir.args;
        Ir.iter_ops
          (fun o ->
            Array.iter
              (fun (v : Ir.value) -> Hashtbl.replace defined v.Ir.vid ())
              o.Ir.results)
          b;
        Ir.iter_ops
          (fun o ->
            Array.iter add o.Ir.operands;
            Array.iter go_region o.Ir.regions)
          b)
      r
  in
  Array.iter go_region op.Ir.regions;
  List.rev !acc

let is_mem (ty : Types.t) =
  match ty with Types.MemRef _ | Types.Buffer _ -> true | _ -> false

(* Chase memref views/casts back to the allocation they alias, so the
   memory chain orders accesses by storage rather than by SSA name. *)
let rec mem_root (v : Ir.value) =
  match v.Ir.def with
  | Ir.Op_result (op, _)
    when Ir.dialect_of op = "memref"
         && op.Ir.name <> "memref.alloc"
         && Ir.num_operands op > 0
         && is_mem (Ir.operand op 0).Ir.ty ->
    mem_root (Ir.operand op 0)
  | _ -> v

let machines_of_op (op : Ir.op) =
  let found = ref [] in
  Ir.walk_op
    (fun o ->
      match machine_of_dialect (Ir.dialect_of o) with
      | Some m when not (List.mem m !found) -> found := m :: !found
      | _ -> ())
    op;
  (* fixed order, so chains and event slices are reproducible *)
  List.filter (fun m -> List.mem m !found) [ "upmem"; "memristor"; "cam" ]

let build_nodes (f : Func.t) =
  let block = Func.entry_block f in
  let producer : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let last_mem : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let last_mach : (string, int) Hashtbl.t = Hashtbl.create 4 in
  let acc = ref [] and idx = ref 0 in
  Ir.iter_ops
    (fun op ->
      if not (Interp.is_terminator op) then begin
        let id = !idx in
        incr idx;
        let free = free_values op in
        let machs = machines_of_op op in
        let deps = ref [] and sdeps = ref [] in
        let add d =
          if d <> id then begin
            deps := d :: !deps;
            sdeps := d :: !sdeps
          end
        in
        List.iter
          (fun (v : Ir.value) ->
            match Hashtbl.find_opt producer v.Ir.vid with
            | Some p -> add p
            | None -> ())
          free;
        let touch_mem (v : Ir.value) =
          if is_mem v.Ir.ty then begin
            let r = (mem_root v).Ir.vid in
            (match Hashtbl.find_opt last_mem r with
            | Some p -> add p
            | None -> ());
            Hashtbl.replace last_mem r id
          end
        in
        List.iter touch_mem free;
        Array.iter touch_mem op.Ir.results;
        List.iter
          (fun m ->
            (match Hashtbl.find_opt last_mach m with
            | Some p -> if p <> id then deps := p :: !deps
            | None -> ());
            Hashtbl.replace last_mach m id)
          machs;
        Array.iter
          (fun (v : Ir.value) -> Hashtbl.replace producer v.Ir.vid id)
          op.Ir.results;
        acc :=
          {
            id;
            op;
            free;
            machs;
            deps = List.sort_uniq compare !deps;
            sdeps = List.sort_uniq compare !sdeps;
          }
          :: !acc
      end)
    block;
  Array.of_list (List.rev !acc)

(* ----- execution ----- *)

type outcome = {
  results : Rtval.t list;
  profile : Profile.t;  (** merged per-node profiles, in program order *)
  summary : Schedule.summary;
  schedule : Schedule.node list;  (** the merged event DAG, for tracing *)
}

let run ?config ?modul ?(sequential = false) ?(dma_depth = 2)
    ~(host_cost : Profile.t -> float) ~(machines : machines) (f : Func.t)
    (args : Rtval.t list) : outcome =
  let nodes = build_nodes f in
  let n = Array.length nodes in
  let hooks = hooks_of machines in
  let glock = Mutex.create () in
  let genv : (int, Rtval.t) Hashtbl.t = Hashtbl.create (4 * (n + 1)) in
  List.iter2
    (fun (p : Ir.value) a -> Hashtbl.replace genv p.Ir.vid a)
    (Func.params f) args;
  let profiles = Array.init n (fun _ -> Profile.create ()) in
  let sched_events : (string * Schedule.ev) list array = Array.make n [] in
  let exec_node i =
    let node = nodes.(i) in
    let profile = profiles.(i) in
    let ctx =
      Interp.create_ctx ~hooks ~profile ?modul ~fname:f.Func.fname ?config ()
    in
    Mutex.lock glock;
    List.iter
      (fun (v : Ir.value) ->
        match Hashtbl.find_opt genv v.Ir.vid with
        | Some rv -> Interp.bind ctx v rv
        | None -> ())
      node.free;
    Mutex.unlock glock;
    (* the machine chains guarantee this node is the only one driving its
       machines, so the log lengths delimit exactly its events *)
    let marks =
      List.map (fun m -> (m, Vec.length (events_of machines m))) node.machs
    in
    Interp.eval_op ctx node.op;
    let host_s = host_cost profile in
    let device_evs =
      List.concat_map
        (fun (m, start) ->
          let log = events_of machines m in
          List.init (Vec.length log - start) (fun k -> (m, Vec.get log (start + k))))
        marks
    in
    sched_events.(i) <-
      (if host_s > 0.0 then [ Schedule.host_event host_s ] else []) @ device_evs;
    Mutex.lock glock;
    Array.iter
      (fun (v : Ir.value) -> Hashtbl.replace genv v.Ir.vid (Interp.lookup ctx v))
      node.op.Ir.results;
    Mutex.unlock glock
  in
  let pool = Pool.default () in
  if sequential || n <= 1 || Pool.jobs pool <= 1 then
    (* program order is a topological order: every dep points backwards *)
    Array.iter (fun node -> exec_node node.id) nodes
  else begin
    let succs = Array.make n [] in
    let indeg = Array.make n 0 in
    Array.iter
      (fun node ->
        indeg.(node.id) <- List.length node.deps;
        List.iter
          (fun d -> succs.(d) <- node.id :: succs.(d))
          node.deps)
      nodes;
    let slock = Mutex.create () in
    let cond = Condition.create () in
    let ready = Queue.create () in
    Array.iter (fun node -> if indeg.(node.id) = 0 then Queue.push node.id ready) nodes;
    let remaining = ref n and executing = ref 0 in
    let failure = ref None in
    (* Worker loop: claim a ready node, run it, release its successors.
       Exits once everything ran or a node failed; the calling domain runs
       the same loop, so completion never depends on pool workers being
       free (the pool may be busy serving the node's own DPU lanes). *)
    let worker () =
      Mutex.lock slock;
      let continue_ = ref true in
      while !continue_ do
        if !remaining = 0 || !failure <> None then continue_ := false
        else
          match Queue.take_opt ready with
          | None -> Condition.wait cond slock
          | Some i ->
            incr executing;
            Mutex.unlock slock;
            let res =
              try
                exec_node i;
                None
              with e -> Some (e, Printexc.get_raw_backtrace ())
            in
            Mutex.lock slock;
            decr executing;
            (match res with
            | Some _ when !failure = None -> failure := res
            | _ -> ());
            decr remaining;
            List.iter
              (fun s ->
                indeg.(s) <- indeg.(s) - 1;
                if indeg.(s) = 0 then Queue.push s ready)
              succs.(i);
            Condition.broadcast cond
      done;
      Condition.broadcast cond;
      Mutex.unlock slock
    in
    let extra = min (Pool.jobs pool - 1) (max 1 (n / 2)) in
    for _ = 1 to extra do
      ignore (Pool.submit pool worker)
    done;
    worker ();
    (* wait for in-flight workers so machines and tables are quiescent *)
    Mutex.lock slock;
    while !executing > 0 do
      Condition.wait cond slock
    done;
    let fail = !failure in
    Mutex.unlock slock;
    match fail with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end;
  let results =
    let term_operands = ref [] in
    Ir.iter_ops
      (fun op -> if Interp.is_terminator op then term_operands := Array.to_list op.Ir.operands)
      (Func.entry_block f);
    List.map
      (fun (v : Ir.value) ->
        match Hashtbl.find_opt genv v.Ir.vid with
        | Some rv -> rv
        | None -> Interp.err "hetero executor: result value v%d unbound" v.Ir.vid)
      !term_operands
  in
  let profile = Profile.create () in
  Array.iter (fun p -> Profile.add ~into:profile p) profiles;
  let sched =
    Array.to_list
      (Array.map
         (fun node ->
           {
             Schedule.n_id = node.id;
             n_deps = node.sdeps;
             n_events = sched_events.(node.id);
           })
         nodes)
  in
  {
    results;
    profile;
    summary = Schedule.summarize ~dma_depth sched;
    schedule = sched;
  }
