(** Async multi-stream executor for the {!Backend.Hetero} backend: runs a
    lowered module across the UPMEM, memristor and CAM/RTM simulators plus
    the host interpreter simultaneously, on the shared
    {!Cinm_support.Pool}, and merges the machines' simulated-time event
    logs into one coherent overlapped schedule.

    Nodes are the function's top-level ops; dependencies are SSA values
    (including region captures), shared memref storage (chased through
    view aliases), and per-machine program-order chains — the chains are
    what make machine stats, event logs and therefore the schedule
    bit-identical at any job count. [sequential] executes the same
    per-node contexts in program order on the calling domain only; it
    changes wall-clock behavior, never results or simulated numbers. *)

open Cinm_ir
open Cinm_interp

type machines = {
  upmem : Cinm_upmem_sim.Machine.t;
  memristor : Cinm_memristor_sim.Machine.t;
  cam : Cinm_cam_sim.Cam_machine.t;
}

(** The three machine hooks, in dispatch order. *)
val hooks_of : machines -> Interp.hook list

type outcome = {
  results : Rtval.t list;
  profile : Profile.t;  (** merged per-node profiles, in program order *)
  summary : Cinm_support.Schedule.summary;
      (** overlapped + sequential makespans and per-machine tracks of this
          run's device events, host work included as "cpu" events costed
          by [host_cost] *)
  schedule : Cinm_support.Schedule.node list;
      (** the merged event DAG the summary was computed from, in program
          order — feed to {!Cinm_support.Schedule.timeline} for a placed
          per-event trace *)
}

val run :
  ?config:Cinm_support.Config.t ->
  ?modul:Func.modul ->
  ?sequential:bool ->
  ?dma_depth:int ->
  host_cost:(Profile.t -> float) ->
  machines:machines ->
  Func.t ->
  Rtval.t list ->
  outcome
