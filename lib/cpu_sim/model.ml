(* Analytic host-CPU timing models, driven by the interpreter's execution
   profile (so CPU "time" reflects work the program actually performed).

   Two baselines, matching the paper's evaluation (§4.1):
   - [xeon_opt]: the Intel Xeon E5-2630 v2 `cpu-opt` configuration
     (12 cores x 2.6 GHz, vectorized and parallelized). PrIM-class
     workloads are memory-bound on CPUs, so time is a roofline:
     max(compute, memory traffic / bandwidth).
   - [arm_inorder]: the in-order ARMv8 host of the OCC/gem5 setup used as
     the CIM baseline: single issue, no SIMD. *)

open Cinm_interp

type t = {
  model_name : string;
  freq_hz : float;
  cores : float;
  simd_width : float;  (** 32-bit lanes per op *)
  ipc : float;  (** sustained scalar-op issue rate per core *)
  cycles_mul : float;
  cycles_div : float;
  mem_bandwidth : float;  (** bytes/s, shared across cores *)
  cache_reuse : float;  (** fraction of accesses served by caches *)
  power_w : float;  (** package power while active *)
}

(* Scale a CPU model's throughput (cores/bandwidth/power) by [s]. Used by
   the benchmark harness, which simulates a 1/s-scale UPMEM machine and
   must scale the competing CPU identically so speedup ratios match the
   full-size comparison. *)
let scaled s m =
  {
    m with
    model_name = Printf.sprintf "%s (x%.3g scale)" m.model_name s;
    cores = m.cores *. s;
    mem_bandwidth = m.mem_bandwidth *. s;
    power_w = m.power_w *. s;
  }

let xeon_opt =
  {
    model_name = "cpu-opt (Xeon E5-2630v2, icx -O3)";
    freq_hz = 2.6e9;
    cores = 12.0;
    simd_width = 4.0;
    ipc = 2.0;
    cycles_mul = 1.0;
    cycles_div = 8.0;
    (* effective streaming bandwidth of the 2013 Ivy Bridge EP part on
       PrIM-class access patterns (NUMA- and pattern-limited), not the
       theoretical channel peak *)
    mem_bandwidth = 40e9;
    (* PrIM-class workloads stream their data: no cache reuse *)
    cache_reuse = 0.0;
    power_w = 95.0;
  }

let arm_inorder =
  {
    model_name = "arm (in-order ARMv8, gem5 baseline)";
    freq_hz = 2.0e9;
    cores = 1.0;
    simd_width = 1.0;
    ipc = 1.0;
    cycles_mul = 3.0;
    cycles_div = 12.0;
    mem_bandwidth = 12.8e9;
    cache_reuse = 0.7;
    power_w = 2.5;
  }

type result = { time_s : float; energy_j : float; compute_s : float; memory_s : float }

let estimate (m : t) (p : Profile.t) : result =
  let fl = float_of_int in
  let op_cycles =
    fl p.Profile.alu_ops
    +. (fl p.Profile.mul_ops *. m.cycles_mul)
    +. (fl p.Profile.div_ops *. m.cycles_div)
  in
  let compute_s = op_cycles /. (m.freq_hz *. m.cores *. m.simd_width *. m.ipc) in
  let dram_bytes = fl ((p.Profile.loads + p.Profile.stores) * 4) *. (1.0 -. m.cache_reuse) in
  let memory_s = dram_bytes /. m.mem_bandwidth in
  let time_s = Float.max compute_s memory_s in
  { time_s; energy_j = time_s *. m.power_w; compute_s; memory_s }

(* Convenience: run a host-level function on the reference interpreter and
   estimate its time on this CPU model. *)
let run_and_estimate (m : t) f args =
  let results, profile = Compile.run_func f args in
  (results, estimate m profile)
