(* arith dialect: scalar integer/float arithmetic and comparisons.
   Mirrors MLIR's arith; the subset used by the CINM lowering pipeline. *)

open Cinm_ir

let same_operands_and_result op =
  let open Dialect in
  expect_operands op 2 >>= fun () ->
  expect_results op 1 >>= fun () ->
  expect_same_type op 0 1 >>= fun () ->
  expect
    (Types.equal (Ir.operand op 0).Ir.ty (Ir.result op 0).Ir.ty)
    (op.Ir.name ^ ": result type must match operand type")

let dialect = Dialect.register ~name:"arith" ~description:"scalar arithmetic"

let binary_ops =
  [ "addi"; "subi"; "muli"; "divsi"; "remsi"; "minsi"; "maxsi"; "andi"; "ori"; "xori";
    "shli"; "shrsi"; "addf"; "subf"; "mulf"; "divf"; "minf"; "maxf" ]

let () =
  List.iter
    (fun name ->
      ignore
        (Dialect.add_op dialect name ~summary:("scalar " ^ name)
           ~verify:same_operands_and_result))
    binary_ops

let _ =
  Dialect.add_op dialect "constant" ~summary:"compile-time scalar constant"
    ~verify:(fun op ->
      let open Dialect in
      expect_operands op 0 >>= fun () ->
      expect_results op 1 >>= fun () ->
      expect_attr op "value")

let _ =
  Dialect.add_op dialect "cmpi" ~summary:"integer comparison"
    ~verify:(fun op ->
      let open Dialect in
      expect_operands op 2 >>= fun () ->
      expect_results op 1 >>= fun () ->
      expect_attr op "predicate" >>= fun () ->
      expect_same_type op 0 1 >>= fun () ->
      expect
        (Types.equal (Ir.result op 0).Ir.ty (Types.Scalar Types.I1))
        "arith.cmpi: result must be i1")

let _ =
  Dialect.add_op dialect "select" ~summary:"ternary select"
    ~verify:(fun op ->
      let open Dialect in
      expect_operands op 3 >>= fun () ->
      expect_results op 1 >>= fun () ->
      expect_operand_type op 0 (Types.Scalar Types.I1) >>= fun () ->
      expect_same_type op 1 2)

let _ =
  Dialect.add_op dialect "index_cast" ~summary:"cast between index and integer"
    ~verify:(fun op ->
      let open Dialect in
      expect_operands op 1 >>= fun () -> expect_results op 1)

let ensure () = ignore dialect

(* ----- constructors ----- *)

let constant b ?(ty = Types.Scalar Types.I32) v =
  Builder.build1 b "arith.constant" ~attrs:[ ("value", Attr.Int v) ] ~result_tys:[ ty ]

let constant_f b ?(ty = Types.Scalar Types.F32) v =
  Builder.build1 b "arith.constant" ~attrs:[ ("value", Attr.Float v) ] ~result_tys:[ ty ]

let const_index b v = constant b ~ty:Types.Index v

let binop b name x y =
  Builder.build1 b ("arith." ^ name) ~operands:[ x; y ] ~result_tys:[ x.Ir.ty ]

let addi b x y = binop b "addi" x y
let subi b x y = binop b "subi" x y
let muli b x y = binop b "muli" x y
let divsi b x y = binop b "divsi" x y
let remsi b x y = binop b "remsi" x y
let minsi b x y = binop b "minsi" x y
let maxsi b x y = binop b "maxsi" x y
let andi b x y = binop b "andi" x y
let ori b x y = binop b "ori" x y
let xori b x y = binop b "xori" x y
let shli b x y = binop b "shli" x y
let shrsi b x y = binop b "shrsi" x y
let addf b x y = binop b "addf" x y
let subf b x y = binop b "subf" x y
let mulf b x y = binop b "mulf" x y
let divf b x y = binop b "divf" x y
let minf b x y = binop b "minf" x y
let maxf b x y = binop b "maxf" x y

type cmp_pred = Eq | Ne | Slt | Sle | Sgt | Sge

let pred_to_string = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Slt -> "slt"
  | Sle -> "sle"
  | Sgt -> "sgt"
  | Sge -> "sge"

let pred_of_string = function
  | "eq" -> Eq
  | "ne" -> Ne
  | "slt" -> Slt
  | "sle" -> Sle
  | "sgt" -> Sgt
  | "sge" -> Sge
  | s -> invalid_arg ("arith.cmpi: unknown predicate " ^ s)

let cmpi b pred x y =
  Builder.build1 b "arith.cmpi" ~operands:[ x; y ]
    ~attrs:[ ("predicate", Attr.Str (pred_to_string pred)) ]
    ~result_tys:[ Types.Scalar Types.I1 ]

let select b c x y =
  Builder.build1 b "arith.select" ~operands:[ c; x; y ] ~result_tys:[ x.Ir.ty ]

let index_cast b v ~to_ty =
  Builder.build1 b "arith.index_cast" ~operands:[ v ] ~result_tys:[ to_ty ]
