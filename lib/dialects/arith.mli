(** arith dialect: scalar integer/float arithmetic and comparisons (the
    MLIR arith subset the CINM pipeline uses). *)

open Cinm_ir

(** Shared verifier: two same-typed operands, result of the same type. *)
val same_operands_and_result : Ir.op -> (unit, string) result

val binary_ops : string list
val ensure : unit -> unit

val constant : Builder.t -> ?ty:Types.t -> int -> Ir.value
val constant_f : Builder.t -> ?ty:Types.t -> float -> Ir.value
val const_index : Builder.t -> int -> Ir.value
val addi : Builder.t -> Ir.value -> Ir.value -> Ir.value
val subi : Builder.t -> Ir.value -> Ir.value -> Ir.value
val muli : Builder.t -> Ir.value -> Ir.value -> Ir.value
val divsi : Builder.t -> Ir.value -> Ir.value -> Ir.value
val remsi : Builder.t -> Ir.value -> Ir.value -> Ir.value
val minsi : Builder.t -> Ir.value -> Ir.value -> Ir.value
val maxsi : Builder.t -> Ir.value -> Ir.value -> Ir.value
val andi : Builder.t -> Ir.value -> Ir.value -> Ir.value
val ori : Builder.t -> Ir.value -> Ir.value -> Ir.value
val xori : Builder.t -> Ir.value -> Ir.value -> Ir.value
val shli : Builder.t -> Ir.value -> Ir.value -> Ir.value
val shrsi : Builder.t -> Ir.value -> Ir.value -> Ir.value
val addf : Builder.t -> Ir.value -> Ir.value -> Ir.value
val subf : Builder.t -> Ir.value -> Ir.value -> Ir.value
val mulf : Builder.t -> Ir.value -> Ir.value -> Ir.value
val divf : Builder.t -> Ir.value -> Ir.value -> Ir.value
val minf : Builder.t -> Ir.value -> Ir.value -> Ir.value
val maxf : Builder.t -> Ir.value -> Ir.value -> Ir.value

type cmp_pred = Eq | Ne | Slt | Sle | Sgt | Sge

val pred_to_string : cmp_pred -> string
val pred_of_string : string -> cmp_pred
val cmpi : Builder.t -> cmp_pred -> Ir.value -> Ir.value -> Ir.value
val select : Builder.t -> Ir.value -> Ir.value -> Ir.value -> Ir.value
val index_cast : Builder.t -> Ir.value -> to_ty:Types.t -> Ir.value
