(* cim dialect: abstraction over compute-in-memory accelerators (paper
   §3.2.4, Table 3). Device handles are acquired/released explicitly
   because most CIM devices are non-volatile and need locking. *)

open Cinm_ir

let dialect =
  Dialect.register ~name:"cim" ~description:"compute-in-memory paradigm abstraction"

let is_cim_id (v : Ir.value) = Types.equal v.Ir.ty Types.Cim_id

let _ =
  Dialect.add_op dialect "acquire" ~summary:"acquire + set up a CIM device (Table 3)"
    ~verify:(fun op ->
      let open Dialect in
      expect_operands op 0 >>= fun () ->
      expect_results op 1 >>= fun () ->
      expect (is_cim_id (Ir.result op 0)) "cim.acquire: result must be !cim.id")

let _ =
  Dialect.add_op dialect "write" ~summary:"program tensor into the device (Table 3)"
    ~verify:(fun op ->
      let open Dialect in
      expect_operands op 2 >>= fun () ->
      expect_results op 0 >>= fun () ->
      expect (is_cim_id (Ir.operand op 0)) "cim.write: operand 0 must be !cim.id")

let _ =
  Dialect.add_op dialect "execute" ~summary:"launch execution on the device (Table 3)"
    ~verify:(fun op ->
      let open Dialect in
      expect_regions op 1 >>= fun () ->
      expect (Ir.num_operands op >= 1) "cim.execute: missing device id" >>= fun () ->
      expect (is_cim_id (Ir.operand op 0)) "cim.execute: operand 0 must be !cim.id"
      >>= fun () ->
      let body = Ir.entry_block (Ir.region op 0) in
      expect
        (Array.length body.Ir.args = Ir.num_operands op - 1)
        "cim.execute: body takes one arg per tensor operand"
      >>= fun () ->
      match Ir.last_op body with
      | Some last when last.Ir.name = "cim.yield" ->
        expect
          (Ir.num_operands last = Ir.num_results op)
          "cim.execute: yield arity must match results"
      | _ -> Error "cim.execute: body must end with cim.yield")

let _ =
  Dialect.add_op dialect "yield" ~summary:"execute body terminator" ~verify:(fun op ->
      Dialect.expect_results op 0)

let _ =
  Dialect.add_op dialect "read" ~summary:"read results from the device (Table 3)"
    ~verify:(fun op ->
      let open Dialect in
      expect_operands op 1 >>= fun () ->
      expect_results op 1 >>= fun () ->
      expect (is_cim_id (Ir.operand op 0)) "cim.read: operand 0 must be !cim.id")

let _ =
  Dialect.add_op dialect "barrier" ~summary:"wait for device completion (Table 3)"
    ~verify:(fun op ->
      let open Dialect in
      expect_operands op 1 >>= fun () ->
      expect (is_cim_id (Ir.operand op 0)) "cim.barrier: operand 0 must be !cim.id")

let _ =
  Dialect.add_op dialect "release" ~summary:"release the device (Table 3)"
    ~verify:(fun op ->
      let open Dialect in
      expect_operands op 1 >>= fun () ->
      expect_results op 0 >>= fun () ->
      expect (is_cim_id (Ir.operand op 0)) "cim.release: operand 0 must be !cim.id")

let ensure () = ignore dialect

(* ----- constructors ----- *)

(* Device setup parameters (paper §3.2.4: crossbar size, #tiles, ADC
   sharing, write mode are fixed at acquire time). *)
let acquire b ~rows ~cols ~tiles =
  Builder.build1 b "cim.acquire"
    ~attrs:
      [ ("rows", Attr.Int rows); ("cols", Attr.Int cols); ("tiles", Attr.Int tiles) ]
    ~result_tys:[ Types.Cim_id ]

let write b id tensor = Builder.build0 b "cim.write" ~operands:[ id; tensor ]

let yield b values = Builder.build0 b "cim.yield" ~operands:values

(* [body] receives a builder and the region views of [inputs]; it must
   return the values to yield. *)
let execute b id ~inputs ~result_tys (body : Builder.t -> Ir.value array -> Ir.value list) =
  let arg_tys = List.map (fun (v : Ir.value) -> v.Ir.ty) inputs in
  let region =
    Builder.build_region ~arg_tys (fun bb args -> yield bb (body bb args))
  in
  let op =
    Builder.build b "cim.execute" ~operands:(id :: inputs) ~result_tys ~regions:[ region ]
  in
  Array.to_list op.Ir.results

let read b id ~result_ty =
  Builder.build1 b "cim.read" ~operands:[ id ] ~result_tys:[ result_ty ]

let barrier b id = Builder.build0 b "cim.barrier" ~operands:[ id ]

let release b id = Builder.build0 b "cim.release" ~operands:[ id ]
