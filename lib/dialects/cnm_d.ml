(* cnm dialect: abstraction over compute-near-memory architectures (paper
   §3.2.3, Table 2). A workgroup is a logical grid of processing units with
   tree-shaped memory; buffers are opaque and only materialize as memrefs
   inside the launch body. *)

open Cinm_ir

let dialect =
  Dialect.register ~name:"cnm" ~description:"compute-near-memory paradigm abstraction"

let _ =
  Dialect.add_op dialect "workgroup" ~summary:"allocate a workgroup grid (Table 2)"
    ~verify:(fun op ->
      let open Dialect in
      expect_operands op 0 >>= fun () ->
      expect_results op 1 >>= fun () ->
      match (Ir.result op 0).Ir.ty with
      | Types.Workgroup _ -> Ok ()
      | _ -> Error "cnm.workgroup: result must be !cnm.workgroup")

let _ =
  Dialect.add_op dialect "alloc" ~summary:"allocate an opaque per-PU buffer (Table 2)"
    ~verify:(fun op ->
      let open Dialect in
      expect_operands op 1 >>= fun () ->
      expect_results op 1 >>= fun () ->
      match ((Ir.operand op 0).Ir.ty, (Ir.result op 0).Ir.ty) with
      | Types.Workgroup _, Types.Buffer _ -> Ok ()
      | _ -> Error "cnm.alloc: (workgroup) -> buffer")

let scatter_maps = [ "block"; "broadcast"; "cyclic"; "overlap" ]

(* Buffer level semantics (paper Fig. 7): a level-l buffer is shared across
   the last l dimensions of the workgroup. For !cnm.workgroup<DxT>,
   level 0 = one buffer per (dpu, tasklet) PU; level 1 = one per DPU. *)
let buffers_at_level wg_shape level =
  let rank = Array.length wg_shape in
  if level < 0 || level > rank then
    invalid_arg (Printf.sprintf "cnm: buffer level %d out of range for rank %d" level rank);
  let n = ref 1 in
  for d = 0 to rank - 1 - level do
    n := !n * wg_shape.(d)
  done;
  !n

(* PU linear index -> buffer index for a given level. *)
let buffer_index_of_pu wg_shape level pu =
  let rank = Array.length wg_shape in
  let shared = ref 1 in
  for d = rank - level to rank - 1 do
    shared := !shared * wg_shape.(d)
  done;
  pu / !shared

let _ =
  Dialect.add_op dialect "scatter"
    ~summary:"distribute a tensor into per-PU buffers (Table 2)" ~verify:(fun op ->
      let open Dialect in
      expect_operands op 3 >>= fun () ->
      expect_results op 1 >>= fun () ->
      expect_attr op "map" >>= fun () ->
      expect (List.mem (Ir.str_attr op "map") scatter_maps) "cnm.scatter: unknown map"
      >>= fun () ->
      match
        ((Ir.operand op 0).Ir.ty, (Ir.operand op 1).Ir.ty, (Ir.operand op 2).Ir.ty)
      with
      | Types.Tensor (tshape, tdt), Types.Buffer { shape; dtype; level }, Types.Workgroup wg
        ->
        expect (tdt = dtype) "cnm.scatter: dtype mismatch" >>= fun () ->
        let per_buf = Cinm_support.Util.product_of_shape shape in
        let total = Cinm_support.Util.product_of_shape tshape in
        let bufs = buffers_at_level wg level in
        (match Ir.str_attr op "map" with
        | "broadcast" ->
          expect (total = per_buf) "cnm.scatter broadcast: tensor must equal buffer size"
        | "overlap" ->
          expect_attr op "halo" >>= fun () ->
          let halo = Ir.int_attr op "halo" in
          expect
            (total = ((per_buf - halo) * bufs) + halo)
            "cnm.scatter overlap: tensor size must be bufs*(per_buf-halo)+halo"
        | _ ->
          expect (total = per_buf * bufs)
            (Printf.sprintf
               "cnm.scatter: tensor elements (%d) must equal buffers (%d) x buffer (%d)"
               total bufs per_buf))
      | _ -> Error "cnm.scatter: (tensor, buffer, workgroup) -> token")

let _ =
  Dialect.add_op dialect "gather" ~summary:"copy per-PU buffers back to a tensor (Table 2)"
    ~verify:(fun op ->
      let open Dialect in
      expect_operands op 2 >>= fun () ->
      expect_results op 2 >>= fun () ->
      match ((Ir.operand op 0).Ir.ty, (Ir.operand op 1).Ir.ty, (Ir.result op 0).Ir.ty) with
      | Types.Buffer { shape; dtype; level }, Types.Workgroup wg, Types.Tensor (tshape, tdt)
        ->
        expect (tdt = dtype) "cnm.gather: dtype mismatch" >>= fun () ->
        expect
          (Cinm_support.Util.product_of_shape tshape
          = Cinm_support.Util.product_of_shape shape * buffers_at_level wg level)
          "cnm.gather: tensor size must equal buffers x buffer size"
      | _ -> Error "cnm.gather: (buffer, workgroup) -> (tensor, token)")

let _ =
  Dialect.add_op dialect "launch" ~summary:"launch workgroup execution (Table 2)"
    ~verify:(fun op ->
      let open Dialect in
      expect_regions op 1 >>= fun () ->
      expect_results op 1 >>= fun () ->
      expect_attr op "n_inputs" >>= fun () ->
      expect (Ir.num_operands op >= 1) "cnm.launch: missing workgroup" >>= fun () ->
      (match (Ir.operand op 0).Ir.ty with
      | Types.Workgroup _ -> Ok ()
      | _ -> Error "cnm.launch: operand 0 must be a workgroup")
      >>= fun () ->
      let n_buffers = Ir.num_operands op - 1 in
      let body = Ir.entry_block (Ir.region op 0) in
      expect
        (Array.length body.Ir.args = n_buffers)
        "cnm.launch: body must take one memref per buffer"
      >>= fun () ->
      let ok = ref (Ok ()) in
      Array.iteri
        (fun i (arg : Ir.value) ->
          match ((Ir.operand op (i + 1)).Ir.ty, arg.Ir.ty) with
          | Types.Buffer { shape; dtype; _ }, Types.MemRef (mshape, mdt)
            when shape = mshape && dtype = mdt ->
            ()
          | _ ->
            ok :=
              Error
                (Printf.sprintf
                   "cnm.launch: body arg %d must be the memref form of buffer operand" i))
        body.Ir.args;
      !ok >>= fun () ->
      match Ir.last_op body with
      | Some last when last.Ir.name = "cnm.terminator" -> Ok ()
      | _ -> Error "cnm.launch: body must end with cnm.terminator")

let _ =
  Dialect.add_op dialect "wait" ~summary:"synchronize on tokens (Table 2)"
    ~verify:(fun op ->
      let open Dialect in
      expect_results op 0 >>= fun () ->
      let ok = ref (Ok ()) in
      Array.iter
        (fun (v : Ir.value) ->
          if not (Types.equal v.Ir.ty Types.Token) then
            ok := Error "cnm.wait: operands must be tokens")
        op.Ir.operands;
      !ok)

let _ =
  Dialect.add_op dialect "terminator" ~summary:"launch body terminator"
    ~verify:(fun op -> Dialect.expect_results op 0)

let ensure () = ignore dialect

(* ----- constructors ----- *)

let workgroup b ~shape ~physical_dims =
  Builder.build1 b "cnm.workgroup"
    ~attrs:[ ("physical_dims", Attr.Strs physical_dims) ]
    ~result_tys:[ Types.Workgroup shape ]

let alloc b wg ~shape ~dtype ~level =
  Builder.build1 b "cnm.alloc" ~operands:[ wg ]
    ~result_tys:[ Types.Buffer { shape; dtype; level } ]

let scatter b ?halo tensor buffer wg ~map =
  let attrs =
    ("map", Attr.Str map)
    :: (match halo with Some h -> [ ("halo", Attr.Int h) ] | None -> [])
  in
  Builder.build1 b "cnm.scatter" ~operands:[ tensor; buffer; wg ] ~attrs
    ~result_tys:[ Types.Token ]

let gather b buffer wg ~result_shape =
  let dtype =
    match buffer.Ir.ty with
    | Types.Buffer { dtype; _ } -> dtype
    | _ -> invalid_arg "Cnm_d.gather: not a buffer"
  in
  let op =
    Builder.build b "cnm.gather" ~operands:[ buffer; wg ]
      ~result_tys:[ Types.Tensor (result_shape, dtype); Types.Token ]
  in
  (Ir.result op 0, Ir.result op 1)

let terminator b = Builder.build0 b "cnm.terminator"

(* [body] receives a builder and the memref views of [ins @ outs]. *)
let launch b wg ~ins ~outs (body : Builder.t -> Ir.value array -> unit) =
  let buffers = ins @ outs in
  let memref_ty (v : Ir.value) =
    match v.Ir.ty with
    | Types.Buffer { shape; dtype; _ } -> Types.MemRef (shape, dtype)
    | _ -> invalid_arg "Cnm_d.launch: operand is not a buffer"
  in
  let region =
    Builder.build_region ~arg_tys:(List.map memref_ty buffers) (fun bb args ->
        body bb args;
        terminator bb)
  in
  Builder.build1 b "cnm.launch"
    ~operands:(wg :: buffers)
    ~attrs:[ ("n_inputs", Attr.Int (List.length ins)) ]
    ~regions:[ region ] ~result_tys:[ Types.Token ]

let wait b tokens = Builder.build0 b "cnm.wait" ~operands:tokens
