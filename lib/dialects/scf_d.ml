(* scf dialect: structured control flow. scf.for carries loop-carried
   values (iter_args) exactly like MLIR; the CIM/CNM tiling passes emit
   these loops (cf. the IR in paper Fig. 6). *)

open Cinm_ir

let dialect = Dialect.register ~name:"scf" ~description:"structured control flow"

let _ =
  Dialect.add_op dialect "for" ~summary:"counted loop with iter_args"
    ~verify:(fun op ->
      let open Dialect in
      expect_regions op 1 >>= fun () ->
      expect (Ir.num_operands op >= 3) "scf.for: needs lb, ub, step" >>= fun () ->
      let n_iter = Ir.num_operands op - 3 in
      expect (Ir.num_results op = n_iter) "scf.for: one result per iter_arg"
      >>= fun () ->
      let body = Ir.entry_block (Ir.region op 0) in
      expect
        (Array.length body.Ir.args = 1 + n_iter)
        "scf.for: body must take induction variable plus iter_args"
      >>= fun () ->
      expect
        (Types.equal body.Ir.args.(0).Ir.ty Types.Index)
        "scf.for: induction variable must be index"
      >>= fun () ->
      match Ir.last_op body with
      | Some last when last.Ir.name = "scf.yield" ->
        expect (Ir.num_operands last = n_iter) "scf.for: yield arity must match iter_args"
      | _ -> Error "scf.for: body must end with scf.yield")

let _ =
  Dialect.add_op dialect "yield" ~summary:"region terminator" ~verify:(fun op ->
      Dialect.expect_results op 0)

let _ =
  Dialect.add_op dialect "if" ~summary:"conditional with optional results"
    ~verify:(fun op ->
      let open Dialect in
      expect_operand_type op 0 (Types.Scalar Types.I1) >>= fun () ->
      expect
        (Array.length op.Ir.regions = 1 || Array.length op.Ir.regions = 2)
        "scf.if: one or two regions")

let _ =
  Dialect.add_op dialect "parallel" ~summary:"parallel loop nest (no iter_args)"
    ~verify:(fun op ->
      let open Dialect in
      expect_regions op 1 >>= fun () ->
      expect (Ir.num_operands op mod 3 = 0) "scf.parallel: operands are (lb, ub, step)*")

let ensure () = ignore dialect

(* ----- constructors ----- *)

let yield b values = Builder.build0 b "scf.yield" ~operands:values

(* Counted loop. [body] receives a builder, the induction variable and the
   iter_args; it must return the values to yield. *)
let for_ b ~lb ~ub ~step ~init (body : Builder.t -> Ir.value -> Ir.value array -> Ir.value list) =
  let iter_tys = List.map (fun (v : Ir.value) -> v.Ir.ty) init in
  let region =
    Builder.build_region ~arg_tys:(Types.Index :: iter_tys) (fun bb args ->
        let iv = args.(0) in
        let iters = Array.sub args 1 (Array.length args - 1) in
        let results = body bb iv iters in
        yield bb results)
  in
  let op =
    Builder.build b "scf.for"
      ~operands:([ lb; ub; step ] @ init)
      ~result_tys:iter_tys ~regions:[ region ]
  in
  Array.to_list op.Ir.results

(* Simple loop without iter_args. *)
let for0 b ~lb ~ub ~step (body : Builder.t -> Ir.value -> unit) =
  ignore
    (for_ b ~lb ~ub ~step ~init:[] (fun bb iv _ ->
         body bb iv;
         []))

let if_ b cond ~then_ ~else_ ~result_tys =
  let then_region = Builder.build_region (fun bb _ -> yield bb (then_ bb)) in
  let else_region = Builder.build_region (fun bb _ -> yield bb (else_ bb)) in
  let op =
    Builder.build b "scf.if" ~operands:[ cond ] ~result_tys
      ~regions:[ then_region; else_region ]
  in
  Array.to_list op.Ir.results

(* Multi-dimensional parallel loop; bounds given as (lb, ub, step) triples. *)
let parallel b ~bounds (body : Builder.t -> Ir.value array -> unit) =
  let operands = List.concat_map (fun (lb, ub, step) -> [ lb; ub; step ]) bounds in
  let arg_tys = List.map (fun _ -> Types.Index) bounds in
  let region =
    Builder.build_region ~arg_tys (fun bb args ->
        body bb args;
        yield bb [])
  in
  ignore (Builder.build b "scf.parallel" ~operands ~regions:[ region ])

(* ----- accessors used by lowerings and the interpreter ----- *)

let for_lb op = Ir.operand op 0
let for_ub op = Ir.operand op 1
let for_step op = Ir.operand op 2

let for_inits op =
  Array.to_list (Array.sub op.Ir.operands 3 (Ir.num_operands op - 3))

let for_body op = Ir.entry_block (Ir.region op 0)
