open Cinm_ir
module Reduce = Cinm_reduce_lib.Reduce
module Log = Cinm_support.Log

type shrink_record = {
  seed : int;
  axis : string;
  detail : string;
  ops_before : int;
  ops_after : int;
  repro_path : string option;
}

type summary = {
  seeds_run : int;
  mismatch_seeds : int;
  shrinks : shrink_record list;
}

(* O_EXCL-create "<stem>.mlir" (or "<stem>-2.mlir", ...) under [dir]:
   atomic against concurrent campaign processes sharing one corpus. *)
let create_fresh ~dir ~stem =
  (try if not (Sys.file_exists dir) then Sys.mkdir dir 0o755
   with Sys_error _ -> ());
  let rec go n =
    if n > 64 then None
    else
      let name =
        if n = 1 then stem ^ ".mlir" else Printf.sprintf "%s-%d.mlir" stem n
      in
      let path = Filename.concat dir name in
      match open_out_gen [ Open_wronly; Open_creat; Open_excl ] 0o644 path with
      | oc -> Some (path, oc)
      | exception Sys_error _ -> go (n + 1)
  in
  go 1

let one_line s =
  String.map (function '\n' | '\r' -> ' ' | c -> c) s

let append_triage ~dir line =
  try
    let oc =
      open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644
        (Filename.concat dir "triage.log")
    in
    output_string oc (line ^ "\n");
    close_out oc
  with Sys_error _ -> ()

let fuzz_seed_of_text text =
  let prefix = "// fuzz-seed:" in
  String.split_on_char '\n' text
  |> List.find_map (fun l ->
         let l = String.trim l in
         if String.starts_with ~prefix l then
           int_of_string_opt
             (String.trim
                (String.sub l (String.length prefix)
                   (String.length l - String.length prefix)))
         else None)

let shrink_and_record ?(inject = false) ?jobs_alt ?(max_rounds = 12) ~corpus_dir
    ~seed ~axis ~detail m =
  (* the reducer re-prints candidates, so any pass-crash reproducer its
     predicate runs produce would name this seed *)
  Pass.set_fuzz_seed (Some seed);
  Fun.protect
    ~finally:(fun () -> Pass.set_fuzz_seed None)
    (fun () ->
      let interesting c =
        match Verifier.verify_module c with
        | [] ->
          let r =
            Oracle.check_axis ~inject ?jobs_alt ~axis ~seed
              (Printer.module_to_string c)
          in
          Log.debug "shrink candidate (%d ops): oracle %s" (Pass.count_ops c)
            (match r with Some m -> "MISMATCH " ^ m.Oracle.detail | None -> "agrees");
          r <> None
        | e :: _ ->
          Log.debug "shrink candidate rejected by verifier: %s"
            (Verifier.error_to_string e);
          false
      in
      let reduced, stats = Reduce.reduce ~max_rounds ~interesting m in
      let repro_path =
        match corpus_dir with
        | None -> None
        | Some dir -> (
          match create_fresh ~dir ~stem:(Printf.sprintf "fuzz-seed%d-%s" seed axis) with
          | None ->
            Log.warn "fuzz: no creatable reproducer name for seed %d in %s" seed dir;
            None
          | Some (path, oc) ->
            output_string oc (Printf.sprintf "// cinm-fuzz --seed-range %d..%d\n" seed (seed + 1));
            output_string oc (Printf.sprintf "// fuzz-seed: %d\n" seed);
            output_string oc (Printf.sprintf "// axis: %s\n" axis);
            output_string oc (Printf.sprintf "// detail: %s\n" (one_line detail));
            let body = Printer.module_to_string reduced in
            output_string oc body;
            if body = "" || body.[String.length body - 1] <> '\n' then
              output_char oc '\n';
            close_out oc;
            Some path)
      in
      let rec_ =
        {
          seed;
          axis;
          detail;
          ops_before = stats.Reduce.ops_before;
          ops_after = stats.Reduce.ops_after;
          repro_path;
        }
      in
      (match corpus_dir with
      | Some dir ->
        append_triage ~dir
          (Printf.sprintf "seed=%d axis=%s ops=%d->%d (%.0f%% shrunk) repro=%s detail=%s"
             seed axis rec_.ops_before rec_.ops_after
             (100.
             *. float_of_int (rec_.ops_before - rec_.ops_after)
             /. float_of_int (max 1 rec_.ops_before))
             (Option.value repro_path ~default:"-")
             (one_line detail))
      | None -> ());
      rec_)

let run_range ?(inject = false) ?jobs_alt ?(corpus_dir = None)
    ?(progress = fun _ _ -> ()) ~first ~last () =
  let shrinks = ref [] in
  let mismatch_seeds = ref 0 in
  for seed = first to last - 1 do
    Pass.set_fuzz_seed (Some seed);
    let m = Gen.generate ~seed () in
    let text = Printer.module_to_string m in
    Pass.set_fuzz_seed None;
    (match Oracle.check_seed ~inject ?jobs_alt ~seed text with
    | [] -> ()
    | { Oracle.axis; detail } :: _ as all ->
      incr mismatch_seeds;
      let r =
        shrink_and_record ~inject ?jobs_alt ~corpus_dir ~seed ~axis ~detail m
      in
      shrinks := r :: !shrinks;
      (* mismatches past the first are triaged but not shrunk: one
         reproducer per seed keeps the corpus readable *)
      (match corpus_dir with
      | Some dir ->
        List.iteri
          (fun i { Oracle.axis; detail } ->
            if i > 0 then
              append_triage ~dir
                (Printf.sprintf "seed=%d axis=%s (unshrunk) detail=%s" seed axis
                   (one_line detail)))
          all
      | None -> ()));
    progress seed !mismatch_seeds
  done;
  { seeds_run = last - first; mismatch_seeds = !mismatch_seeds; shrinks = List.rev !shrinks }
