(** The fuzz campaign loop: generate → oracle matrix → auto-shrink →
    reproducer + triage record.

    On a mismatch the PR-5 reducer runs with a backend-differential
    interestingness predicate (the failing oracle axis must keep
    failing), the shrunk module lands in the corpus directory as
    [fuzz-seed<N>-<axis>.mlir] — created O_EXCL so concurrent campaigns
    sharing a corpus never clobber each other — and one line is appended
    to [triage.log]. *)

open Cinm_ir

type shrink_record = {
  seed : int;
  axis : string;
  detail : string;
  ops_before : int;
  ops_after : int;
  repro_path : string option;  (** None: no corpus dir, or write failed *)
}

type summary = {
  seeds_run : int;
  mismatch_seeds : int;  (** seeds with >= 1 surviving mismatch *)
  shrinks : shrink_record list;
}

(** Shrink one mismatching module and record it. *)
val shrink_and_record :
  ?inject:bool ->
  ?jobs_alt:int ->
  ?max_rounds:int ->
  corpus_dir:string option ->
  seed:int ->
  axis:string ->
  detail:string ->
  Func.modul ->
  shrink_record

(** Run seeds [first .. last-1] through the full matrix. [progress] is
    called after every seed with (seed, mismatches so far). *)
val run_range :
  ?inject:bool ->
  ?jobs_alt:int ->
  ?corpus_dir:string option ->
  ?progress:(int -> int -> unit) ->
  first:int ->
  last:int ->
  unit ->
  summary

(** The seed recorded in a corpus file's [// fuzz-seed: N] header. *)
val fuzz_seed_of_text : string -> int option
