module Server = Cinm_serve_lib.Server
module Client = Cinm_serve_lib.Client
module Json = Cinm_serve_lib.Json

type report = {
  sent : int;
  disconnects : int;
  ok : int;
  errors : int;
  counters_total : int;
  clean_drain : bool;
  violations : string list;
}

let known_codes =
  [
    "parse_error"; "oversized"; "bad_request"; "unknown_benchmark";
    "pass_failed"; "watchdog"; "deadline_exceeded"; "cancelled"; "overloaded";
    "shutting_down"; "internal";
  ]

let benchmarks = [| "va"; "red"; "mm"; "mv" |]
let max_line = 4096

(* Deterministic request line for (seed, i); [None] id = no echo check. *)
let request_line ~seed i : string * string option =
  let rng = Rng.make ((seed * 1_000_003) + i) in
  let id = Printf.sprintf "c%d-%d" seed i in
  let bench () = Rng.pick rng benchmarks in
  match Rng.int rng 16 with
  | 0 | 1 | 2 | 3 | 4 | 5 ->
    (Json.to_string (Client.make_request ~id ~benchmark:(bench ()) "run"), Some id)
  | 6 ->
    ( Json.to_string
        (Client.make_request ~id ~benchmark:(bench ()) ~strict:true "run"),
      Some id )
  | 7 ->
    (Json.to_string (Client.make_request ~id ~benchmark:(bench ()) "compile"), Some id)
  | 8 -> (Json.to_string (Client.make_request ~id "health"), Some id)
  | 9 -> ("{\"op\": run, oops", None) (* malformed JSON *)
  | 10 -> (String.make (max_line + 904) 'x', None) (* oversized line *)
  | 11 ->
    ( Json.to_string (Client.make_request ~id ~benchmark:(bench ()) ~max_steps:5 "run"),
      Some id ) (* watchdog bait *)
  | 12 ->
    ( Json.to_string
        (Client.make_request ~id ~benchmark:(bench ()) ~deadline_s:1e-6 "run"),
      Some id ) (* already past its deadline at admission *)
  | 13 ->
    (Json.to_string (Client.make_request ~id ~benchmark:"no-such-kernel" "run"), Some id)
  | 14 ->
    ( Json.to_string
        (Client.make_request ~id ~benchmark:(bench ())
           ~faults:(Printf.sprintf "dpu_fail=0.3,dpu_transient=0.2,seed=%d" i)
           "run"),
      Some id ) (* fault storm: must still answer ok or a structured error *)
  | _ ->
    ( Json.to_string
        (Client.make_request ~id ~benchmark:(bench ()) ~interp:"compiled" "run"),
      Some id )

type tally = {
  mutable ok : int;
  mutable errors : int;
  mutable violations : string list;
}

let violate t fmt =
  Printf.ksprintf (fun s -> t.violations <- s :: t.violations) fmt

let check_response t ~sent_id line =
  match Json.parse line with
  | exception Json.Parse_error _ -> violate t "unparsable response: %s" line
  | j -> (
    (match (sent_id, Json.string_field j "id") with
    | Some want, Some got when want <> got ->
      violate t "id echo mismatch: sent %s, got %s" want got
    | Some want, None -> violate t "response dropped id %s" want
    | _ -> ());
    match Json.bool_field j "ok" with
    | Some true -> t.ok <- t.ok + 1
    | Some false -> (
      let code =
        match Json.member "error" j with
        | Some e -> Json.string_field e "code"
        | None -> None
      in
      match code with
      | Some c when List.mem c known_codes -> t.errors <- t.errors + 1
      | Some c -> violate t "unknown error code %S" c
      | None -> violate t "error response without code: %s" line)
    | None -> violate t "response without ok field: %s" line)

let client_worker ~seed ~socket ~first ~count t =
  let c = Client.connect ~attempts:40 socket in
  Fun.protect
    ~finally:(fun () -> Client.close c)
    (fun () ->
      for i = first to first + count - 1 do
        let line, sent_id = request_line ~seed i in
        match Client.request_raw c line with
        | resp -> check_response t ~sent_id resp
        | exception Client.Server_gone msg ->
          violate t "server gone on request %d: %s" i msg
      done)

(* A complete request line whose connection dies before the response is
   read: the server must process (and count) the request and absorb the
   failed write. *)
let disconnecting_send ~socket line =
  let c = Client.connect ~attempts:40 socket in
  (try
     match Client.request_raw c line with
     | _ -> () (* response won the race; also fine *)
     | exception Client.Server_gone _ -> ()
   with _ -> ());
  Client.close c

let disconnect_line ~seed i =
  let id = Printf.sprintf "disc%d-%d" seed i in
  if i mod 2 = 0 then Json.to_string (Client.make_request ~id "health")
  else Json.to_string (Client.make_request ~id ~benchmark:"va" "run")

(* Disconnects that really do abandon the response: write the line raw,
   then close immediately. *)
let raw_disconnect ~socket line =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX socket) with
  | () ->
    let payload = Bytes.of_string (line ^ "\n") in
    ignore (Unix.write fd payload 0 (Bytes.length payload));
    Unix.close fd
  | exception Unix.Unix_error _ -> Unix.close fd

let scrape_counters_total ~socket =
  match
    let c = Client.connect socket in
    Fun.protect
      ~finally:(fun () -> Client.close c)
      (fun () -> Client.request c (Client.make_request "metrics"))
  with
  | exception _ -> -1
  | mresp -> (
    match Json.member "counters" mresp with
    | Some (Json.Obj fields) ->
      List.fold_left
        (fun acc (name, v) ->
          if String.starts_with ~prefix:"cinm_serve_responses_total{" name then
            acc + Option.value (Json.get_int v) ~default:0
          else acc)
        0 fields
    | _ -> -1)

let run ?socket ?(requests = 400) ?(clients = 8) ?(seed = 0) () =
  let external_daemon = socket <> None in
  let sock =
    match socket with
    | Some s -> s
    | None -> Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "cinm-chaos-%d.sock" (Unix.getpid ()))
  in
  let daemon =
    if external_daemon then None
    else begin
      (try Unix.unlink sock with Unix.Unix_error _ -> ());
      let opts =
        {
          (Server.default_opts ~socket_path:sock ()) with
          Server.jobs = 2;
          max_inflight = 64;
          max_request_bytes = max_line;
          drain_grace_s = 30.0;
        }
      in
      let srv = Server.create opts in
      Some (Thread.create Server.run srv)
    end
  in
  let per = max 1 (requests / clients) in
  let tallies = Array.init clients (fun _ -> { ok = 0; errors = 0; violations = [] }) in
  let threads =
    List.init clients (fun k ->
        Thread.create
          (fun () ->
            client_worker ~seed ~socket:sock ~first:(k * per) ~count:per
              tallies.(k))
          ())
  in
  (* mid-stream disconnects ride alongside the normal clients *)
  let disconnects = max 4 (requests / 40) in
  let disc_thread =
    Thread.create
      (fun () ->
        for i = 0 to disconnects - 1 do
          let line = disconnect_line ~seed i in
          if i mod 2 = 0 then raw_disconnect ~socket:sock line
          else disconnecting_send ~socket:sock line
        done)
      ()
  in
  List.iter Thread.join threads;
  Thread.join disc_thread;
  let sent = (clients * per) + disconnects in
  let counters_total = if external_daemon then -1 else scrape_counters_total ~socket:sock in
  let clean_drain =
    if external_daemon then true
    else
      match daemon with
      | None -> true
      | Some thread -> (
        match
          let c = Client.connect sock in
          let resp = Client.request c (Client.make_request "shutdown") in
          Client.close c;
          Thread.join thread;
          resp
        with
        | resp -> Json.bool_field resp "ok" = Some true
        | exception _ -> false)
  in
  let ok = Array.fold_left (fun a x -> a + x.ok) 0 tallies in
  let errors = Array.fold_left (fun a x -> a + x.errors) 0 tallies in
  let violations =
    ref (Array.fold_left (fun a x -> x.violations @ a) [] tallies)
  in
  let answered = clients * per in
  if ok + errors <> answered then
    violations :=
      Printf.sprintf "responses read (%d ok + %d err) != requests answered (%d)"
        ok errors answered
      :: !violations;
  if errors = 0 then
    violations := "hostile mix produced no structured errors" :: !violations;
  if ok = 0 then violations := "no request succeeded at all" :: !violations;
  (* counters commit before the response write, so the sum covers every
     processed request; disconnected lines may legally lose the race
     between EOF teardown and the read of an already-buffered line *)
  if (not external_daemon)
     && not (counters_total >= answered && counters_total <= sent)
  then
    violations :=
      Printf.sprintf "responses_total=%d outside [%d, %d]" counters_total
        answered sent
      :: !violations;
  if not clean_drain then violations := "shutdown drain was not clean" :: !violations;
  { sent; disconnects; ok; errors; counters_total; clean_drain; violations = !violations }
