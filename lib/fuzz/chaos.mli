(** Chaos mode: a seeded hostile client mix against a live [cinm_serve],
    asserting the protocol invariants (structured error taxonomy, id
    echo, outcome counters summing to requests, clean drain).

    The mix interleaves well-formed run/compile/health requests with
    malformed JSON, oversized lines, watchdog bait, microscopic
    deadlines, unknown benchmarks, fault storms, strict-mode runs and
    mid-stream disconnects (a complete request line whose connection
    closes before the response is read — the server must still process
    and count it without wobbling). *)

type report = {
  sent : int;  (** complete request lines written, disconnects included *)
  disconnects : int;
  ok : int;
  errors : int;  (** structured errors with known codes *)
  counters_total : int;  (** server-side responses_total sum; -1 if unscraped *)
  clean_drain : bool;
  violations : string list;  (** empty = all protocol invariants held *)
}

(** Drive the chaos mix. With [socket] the harness targets an external
    daemon (and skips the counter-sum and drain checks, which assume
    exclusive use of an in-process server); without, it starts its own. *)
val run :
  ?socket:string ->
  ?requests:int ->
  ?clients:int ->
  ?seed:int ->
  unit ->
  report
