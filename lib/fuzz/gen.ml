(* Seeded random-module generator.

   Design rules:

   - every op goes through the typed dialect constructors, which compute
     result types from operand types, so modules are verifier-valid by
     construction (the test suite still re-verifies 500 of them);
   - the grammar sticks to ops the host interpreter executes natively —
     device pipelines lower what they support and leave the rest to the
     interpreter, so every backend can run every generated module (at
     worst via the driver's CPU fallback, which the oracle records);
   - shapes stay tiny (dims 1..5) so a full oracle matrix over hundreds
     of seeds runs in CI time;
   - one sequential SplitMix64 stream per seed and no global state, so
     the printed module text is a pure function of the seed. *)

open Cinm_ir
open Cinm_interp
module Arith = Cinm_dialects.Arith
module Scf = Cinm_dialects.Scf_d
module TensorD = Cinm_dialects.Tensor_d
module Linalg = Cinm_dialects.Linalg_d
module Cinm = Cinm_dialects.Cinm_d
module FuncD = Cinm_dialects.Func_d

let grammar =
  [
    "arith.constant"; "arith.addi"; "arith.muli"; "arith.subi";
    "tensor.splat"; "tensor.pad"; "tensor.extract_slice"; "tensor.insert_slice";
    "linalg.add"; "linalg.sub"; "linalg.mul"; "linalg.matmul"; "linalg.matvec";
    "linalg.transpose"; "linalg.reduce"; "linalg.einsum";
    "cinm.add"; "cinm.sub"; "cinm.mul"; "cinm.min"; "cinm.max"; "cinm.and";
    "cinm.or"; "cinm.xor"; "cinm.gemm"; "cinm.gemv"; "cinm.transpose";
    "cinm.reduce"; "cinm.scan"; "scf.for"; "func.return";
  ]

let is_float = Types.is_float_dtype

(* dtype weights: INT32 is the paper's workload dtype, but the narrow
   widths are where wrap bugs live *)
let dtypes =
  [|
    Types.I32; Types.I32; Types.I32; Types.F64; Types.F64; Types.I8; Types.I8;
    Types.I16; Types.F32; Types.I64;
  |]

(* boundary-heavy constant pools *)
let int_consts = function
  | Types.I8 -> [| 0; 1; -1; 2; 127; -128; 100; -101 |]
  | Types.I16 -> [| 0; 1; -1; 3; 32767; -32768; 255; -256 |]
  | _ -> [| 0; 1; -1; 2; 7; 100; 65536; -4096 |]

let float_consts = [| 0.0; -0.0; 1.0; -1.5; 0.25; 3.5; -2.0; 0.125 |]
let weird_floats = [| nan; infinity; neg_infinity |]

type st = {
  rng : Rng.t;
  b : Builder.t;
  dt : Types.dtype;
  mutable tensors : Ir.value list;  (* in-scope tensor values, newest first *)
  mutable scalars : Ir.value list;  (* in-scope scalars of dtype [dt] *)
}

let push st v = st.tensors <- v :: st.tensors

let rand_shape st =
  let rank = Rng.range st.rng 1 2 in
  Array.init rank (fun _ -> Rng.range st.rng 1 5)

let const_scalar st =
  if is_float st.dt then
    let v =
      if Rng.chance st.rng 1 12 then Rng.pick st.rng weird_floats
      else Rng.pick st.rng float_consts
    in
    Arith.constant_f st.b ~ty:(Types.Scalar st.dt) v
  else Arith.constant st.b ~ty:(Types.Scalar st.dt) (Rng.pick st.rng (int_consts st.dt))

let fresh_tensor st shape =
  let t = TensorD.splat st.b (const_scalar st) shape st.dt in
  push st t;
  t

let pick_tensor st = Rng.pick st.rng (Array.of_list st.tensors)

(* A second operand of exactly [t]'s type: an existing same-typed value
   (possibly [t] itself), or a fresh splat. *)
let partner st (t : Ir.value) =
  let same = List.filter (fun (v : Ir.value) -> Types.equal v.Ir.ty t.Ir.ty) st.tensors in
  if same = [] || Rng.chance st.rng 1 4 then
    fresh_tensor st (Option.get (Types.shape_of t.Ir.ty))
  else Rng.pick st.rng (Array.of_list same)

let rank2 st =
  let r2 =
    List.filter (fun (v : Ir.value) -> Types.rank v.Ir.ty = 2) st.tensors
  in
  if r2 = [] then
    fresh_tensor st [| Rng.range st.rng 1 5; Rng.range st.rng 1 5 |]
  else Rng.pick st.rng (Array.of_list r2)

(* ----- productions ----- *)

(* an elementwise builder appropriate for the dtype, usable in any block *)
let ew_op st : Builder.t -> Ir.value -> Ir.value -> Ir.value =
  let cinm_f = [| Cinm.add; Cinm.sub; Cinm.mul; Cinm.min_; Cinm.max_ |] in
  let cinm_i =
    [| Cinm.add; Cinm.sub; Cinm.mul; Cinm.min_; Cinm.max_; Cinm.and_; Cinm.or_; Cinm.xor |]
  in
  let linalg = [| Linalg.add; Linalg.sub; Linalg.mul |] in
  if Rng.chance st.rng 1 3 then Rng.pick st.rng linalg
  else Rng.pick st.rng (if is_float st.dt then cinm_f else cinm_i)

let prod_elementwise st =
  let t = pick_tensor st in
  let u = partner st t in
  let op = ew_op st in
  push st (op st.b t u)

let prod_matmul st =
  let a = rank2 st in
  let shape = Option.get (Types.shape_of a.Ir.ty) in
  let bt = fresh_tensor st [| shape.(1); Rng.range st.rng 1 5 |] in
  let r =
    if Rng.bool st.rng then Cinm.gemm st.b a bt else Linalg.matmul st.b a bt
  in
  push st r

let prod_matvec st =
  let a = rank2 st in
  let shape = Option.get (Types.shape_of a.Ir.ty) in
  let v = fresh_tensor st [| shape.(1) |] in
  let r = if Rng.bool st.rng then Cinm.gemv st.b a v else Linalg.matvec st.b a v in
  push st r

let prod_transpose st =
  let a = rank2 st in
  let r =
    if Rng.bool st.rng then Cinm.transpose st.b a ~perms:[| 1; 0 |]
    else Linalg.transpose st.b a ~perms:[| 1; 0 |]
  in
  push st r

let reduce_ops = [| "add"; "min"; "max" |]

let prod_reduce st =
  let t = pick_tensor st in
  let op = Rng.pick st.rng reduce_ops in
  let s =
    if Rng.bool st.rng then Cinm.reduce st.b ~op t else Linalg.reduce st.b ~op t
  in
  st.scalars <- s :: st.scalars

let prod_scan st =
  let t = pick_tensor st in
  push st (Cinm.scan st.b ~op:(Rng.pick st.rng reduce_ops) t)

let prod_pad st =
  let t = pick_tensor st in
  let shape = Option.get (Types.shape_of t.Ir.ty) in
  let low = Array.map (fun _ -> Rng.range st.rng 0 2) shape in
  let high = Array.map (fun _ -> Rng.range st.rng 0 2) shape in
  push st (TensorD.pad st.b t ~low ~high)

let prod_extract_slice st =
  let t = pick_tensor st in
  let shape = Option.get (Types.shape_of t.Ir.ty) in
  let sizes = Array.map (fun d -> Rng.range st.rng 1 d) shape in
  let offsets = Array.mapi (fun i d -> Rng.range st.rng 0 (d - sizes.(i))) shape in
  push st (TensorD.extract_slice st.b t ~offsets ~sizes ~dyn_offsets:[])

let prod_insert_slice st =
  let dst = pick_tensor st in
  let shape = Option.get (Types.shape_of dst.Ir.ty) in
  let sizes = Array.map (fun d -> Rng.range st.rng 1 d) shape in
  let offsets = Array.mapi (fun i d -> Rng.range st.rng 0 (d - sizes.(i))) shape in
  let src = fresh_tensor st sizes in
  push st (TensorD.insert_slice st.b src dst ~offsets ~dyn_offsets:[])

let prod_einsum st =
  let a = rank2 st in
  let shape = Option.get (Types.shape_of a.Ir.ty) in
  match Rng.int st.rng 3 with
  | 0 ->
    let bt = fresh_tensor st [| shape.(1); Rng.range st.rng 1 4 |] in
    push st (Linalg.einsum st.b ~spec:"ij,jk->ik" a bt)
  | 1 ->
    let bt = partner st a in
    push st (Linalg.einsum st.b ~spec:"ij,ij->ij" a bt)
  | _ ->
    let v = fresh_tensor st [| shape.(1) |] in
    push st (Linalg.einsum st.b ~spec:"ij,j->i" a v)

(* scf.for with a loop-carried tensor: acc' = acc <op> u, where u is an
   outer value (regions are not isolated, so the reference is legal). *)
let prod_loop st =
  let t = pick_tensor st in
  let u = partner st t in
  let op = ew_op st in
  let lb = Arith.const_index st.b 0 in
  let ub = Arith.const_index st.b (Rng.range st.rng 2 4) in
  let step = Arith.const_index st.b 1 in
  let results =
    Scf.for_ st.b ~lb ~ub ~step ~init:[ t ] (fun bb _iv iters ->
        [ op bb iters.(0) u ])
  in
  List.iter (push st) results

(* scalar arithmetic at the dtype's boundaries (i8/i16 wrap cases), fed
   back into the tensor world via splat *)
let prod_scalar_chain st =
  let s =
    if is_float st.dt then const_scalar st
    else begin
      let c1 = const_scalar st in
      let c2 = const_scalar st in
      let op = Rng.pick st.rng [| Arith.addi; Arith.muli; Arith.subi |] in
      op st.b c1 c2
    end
  in
  st.scalars <- s :: st.scalars;
  ignore (fresh_tensor st (rand_shape st))

let prod_splat_scalar st =
  match st.scalars with
  | [] -> prod_scalar_chain st
  | scalars ->
    let s = Rng.pick st.rng (Array.of_list scalars) in
    push st (TensorD.splat st.b s (rand_shape st) st.dt)

let productions =
  [|
    prod_elementwise; prod_elementwise; prod_elementwise; prod_matmul;
    prod_matmul; prod_matvec; prod_transpose; prod_reduce; prod_scan; prod_pad;
    prod_extract_slice; prod_insert_slice; prod_einsum; prod_loop;
    prod_scalar_chain; prod_splat_scalar;
  |]

let generate ?ops ~seed () =
  Cinm_dialects.Registry.ensure_all ();
  let rng = Rng.make seed in
  let dt = Rng.pick rng dtypes in
  let nargs = Rng.range rng 1 3 in
  let f0 = Func.create ~name:"main" ~result_tys:[]
      ~arg_tys:
        (List.init nargs (fun _ ->
             let rank = Rng.range rng 1 2 in
             Types.Tensor (Array.init rank (fun _ -> Rng.range rng 1 5), dt)))
  in
  let st =
    { rng; b = Builder.for_func f0; dt; tensors = Func.params f0; scalars = [] }
  in
  let n = match ops with Some n -> n | None -> 3 + Rng.int rng 10 in
  for _ = 1 to n do
    (Rng.pick st.rng productions) st
  done;
  (* A value differential only sees what func.return carries, so any op
     whose result never reaches the return is fuzzing nothing (and a
     reducer's dead-code sweep may legally delete it). Return the newest
     tensor as a shaped result, then fold every other live tensor
     (sum-reduced to a scalar) and every scalar into one checksum value:
     each generated op now influences an observable output. *)
  let rets =
    let first = List.hd st.tensors in
    let add = if is_float dt then Arith.addf else Arith.addi in
    let tensor_digests =
      List.filter_map
        (fun (v : Ir.value) ->
          if v.Ir.vid = first.Ir.vid then None
          else Some (Cinm.reduce st.b ~op:"add" v))
        st.tensors
    in
    let checksum =
      match tensor_digests @ st.scalars with
      | [] -> []
      | s :: rest -> [ List.fold_left (fun acc v -> add st.b acc v) s rest ]
    in
    first :: checksum
  in
  FuncD.return st.b rets;
  let f = { f0 with Func.result_tys = List.map (fun (v : Ir.value) -> v.Ir.ty) rets } in
  let m = Func.create_module () in
  Func.add_func m f;
  m

let arg_values ~seed (f : Func.t) =
  let rng = Rng.make (seed lxor 0x5eedfeed) in
  List.map
    (fun ty ->
      match ty with
      | Types.Tensor (shape, dt) | Types.MemRef (shape, dt) ->
        let n = Array.fold_left ( * ) 1 shape in
        let t =
          if is_float dt then
            Tensor.of_float_array ~dtype:dt shape
              (Array.init n (fun _ -> float_of_int (Rng.range rng (-64) 64) /. 8.0))
          else
            (* magnitudes past the i8/i16 ranges, so narrow tensors wrap *)
            Tensor.init ~dtype:dt shape (fun _ -> Rng.range rng (-300) 300)
        in
        if Types.is_shaped ty && match ty with Types.MemRef _ -> true | _ -> false
        then Rtval.Memref t
        else Rtval.Tensor t
      | Types.Scalar dt when is_float dt ->
        Rtval.Float (float_of_int (Rng.range rng (-8) 8) /. 2.0)
      | Types.Scalar _ | Types.Index -> Rtval.Int (Rng.range rng 0 4)
      | _ -> Rtval.Int 0)
    f.Func.arg_tys
