(** Seeded random-module generator over the front-end dialect tower.

    Every emitted module is verifier-valid {e by construction} — ops are
    built through the typed dialect constructors, so shapes, dtypes and
    region structure always agree — and executable by the host
    interpreter (the grammar sticks to the op subset every backend can
    at least CPU-fall-back on). Generation is a pure function of the
    seed: one sequential SplitMix64 stream, no global state, so the
    printed text is byte-identical across runs, platforms and [--jobs]
    settings. *)

open Cinm_ir
open Cinm_interp

(** Generate the module for [seed]. [ops] scales the body length
    (default: 3–12 random ops; the shrink demo passes a large count). *)
val generate : ?ops:int -> seed:int -> unit -> Func.modul

(** Deterministic argument values for a generated (or reduced) function,
    synthesized from its signature and the seed — data patterns include
    negatives and i8/i16-boundary magnitudes so wrap semantics are
    exercised. *)
val arg_values : seed:int -> Func.t -> Rtval.t list

(** The op names the grammar can emit (distribution-sanity tests). *)
val grammar : string list
