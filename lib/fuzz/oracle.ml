open Cinm_ir
open Cinm_interp
module Backend = Cinm_core.Backend
module Report = Cinm_core.Report
module Driver = Cinm_core.Driver
module Config = Cinm_support.Config
module Fault = Cinm_support.Fault
module Pool = Cinm_support.Pool

type outcome = Vals of Rtval.t list | Fail of string

let truncate_s n s = if String.length s <= n then s else String.sub s 0 n ^ "..."

let outcome_to_string = function
  | Vals vs -> String.concat "; " (List.map Rtval.to_string vs)
  | Fail e -> "raised: " ^ e

let rt_equal a b =
  match (a, b) with
  | Rtval.Tensor x, Rtval.Tensor y | Rtval.Memref x, Rtval.Memref y ->
    Tensor.equal x y
  | Rtval.Int x, Rtval.Int y -> x = y
  | Rtval.Bool x, Rtval.Bool y -> x = y
  | Rtval.Float x, Rtval.Float y -> (x <> x && y <> y) || x = y
  | Rtval.Token, Rtval.Token -> true
  | _ -> false

let outcomes_equal a b =
  match (a, b) with
  | Vals x, Vals y ->
    List.length x = List.length y && List.for_all2 rt_equal x y
  | Fail _, Fail _ -> true (* both sides failing identically enough *)
  | _ -> false

(* Small simulator configurations: full oracle matrices run over
   hundreds of seeds, so the DPU grid stays tiny. *)
let small_upmem () =
  Backend.Upmem (Backend.default_upmem ~dimms:2 ~dpus_per_dimm:8 ~tasklets:4 ())

let small_cim () = Backend.Cim (Backend.default_cim ())
let small_hetero () = Backend.default_hetero ~dimms:2 ~dpus_per_dimm:8 ()

let backend_of_name = function
  | "host" | "cpu" | "xeon" -> Ok Backend.Host_xeon
  | "arm" -> Ok Backend.Host_arm
  | "upmem" -> Ok (small_upmem ())
  | "cim" -> Ok (small_cim ())
  | "hetero" -> Ok (small_hetero ())
  | s -> Error (Printf.sprintf "unknown backend %S (host|arm|upmem|cim|hetero)" s)

let with_jobs jobs f =
  match jobs with
  | None -> f ()
  | Some j ->
    let saved = Pool.default_jobs () in
    Fun.protect
      ~finally:(fun () -> Pool.set_default_jobs saved)
      (fun () ->
        Pool.set_default_jobs j;
        f ())

let run_module ~backend ?(interp = "tree") ?(strict = false) ?(faults = None)
    ?jobs ~seed m =
  match m.Func.funcs with
  | [] -> (Fail "empty module", None)
  | f :: _ ->
    let args = Gen.arg_values ~seed f in
    let config =
      {
        (Config.default ()) with
        Config.strict;
        interp;
        max_steps = 20_000_000;
        faults;
        (* predicate runs must not litter the reproducer dir *)
        reproducer_dir = None;
      }
    in
    with_jobs jobs (fun () ->
        match Driver.compile_and_run ~config backend f args with
        | results, report -> (Vals results, Some report)
        | exception e ->
          let bt = Printexc.get_backtrace () in
          let detail =
            if Printexc.backtrace_status () && bt <> "" then
              Printexc.to_string e ^ " @ "
              ^ (String.concat " | "
                   (List.filteri (fun i _ -> i < 4)
                      (List.filter (fun l -> l <> "")
                         (String.split_on_char '\n' bt))))
            else Printexc.to_string e
          in
          (Fail detail, None))

let exec_outcome ~backend ?(interp = "tree") ?(faults = None) ?(seed = 0) m =
  let out, _ = run_module ~backend ~interp ~faults ~seed m in
  outcome_to_string out

(* ----- the matrix ----- *)

type mismatch = { axis : string; detail : string }

let axes = [ "compiled"; "arm"; "upmem"; "cim"; "hetero"; "jobs"; "strict"; "faults" ]

let fault_plan seed =
  Fault.make ~seed:(seed + 7919)
    { Fault.no_rates with Fault.dpu_fail = 0.08; dpu_transient = 0.08 }

let describe ref_out out =
  Printf.sprintf "reference: %s | axis: %s"
    (truncate_s 160 (outcome_to_string ref_out))
    (truncate_s 160 (outcome_to_string out))

let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else if String.sub hay i nn = needle then true
    else go (i + 1)
  in
  go 0

(* Compare deterministic report counters (the jobs axis: the same fault-
   free simulation at different pool widths must count identically). *)
let counters_equal a b =
  let norm (r : Report.t) = List.sort compare r.Report.counters in
  match (a, b) with
  | Some ra, Some rb -> norm ra = norm rb
  | None, None -> true
  | _ -> false

let check_axis_on ?(inject = false) ?(jobs_alt = 4) ~axis ~seed text m =
  let run = run_module ~seed in
  let vs_ref axis_out =
    let ref_out, _ = run ~backend:Backend.Host_xeon m in
    match ref_out with
    | Fail e ->
      Some { axis = "reference"; detail = "reference run failed: " ^ truncate_s 200 e }
    | Vals _ ->
      let out, _ = axis_out () in
      if outcomes_equal ref_out out then None
      else Some { axis; detail = describe ref_out out }
  in
  match axis with
  | "reference" -> (
    (* not a differential axis: interesting iff the CPU reference itself
       fails, so shrinking a reference crash preserves the crash *)
    match run ~backend:Backend.Host_xeon m with
    | Fail e, _ ->
      Some { axis = "reference"; detail = "reference run failed: " ^ truncate_s 200 e }
    | Vals _, _ -> None)
  | "compiled" ->
    if inject && contains_sub text "cinm.gemm" then
      Some { axis; detail = "injected compiled-backend bug (shrink demo)" }
    else vs_ref (fun () -> run ~backend:Backend.Host_xeon ~interp:"compiled" m)
  | "arm" -> vs_ref (fun () -> run ~backend:Backend.Host_arm m)
  | "upmem" -> vs_ref (fun () -> run ~backend:(small_upmem ()) m)
  | "cim" -> vs_ref (fun () -> run ~backend:(small_cim ()) m)
  | "hetero" -> vs_ref (fun () -> run ~backend:(small_hetero ()) m)
  | "jobs" ->
    let o1, r1 = run ~backend:(small_upmem ()) ~jobs:1 m in
    let oN, rN = run ~backend:(small_upmem ()) ~jobs:jobs_alt m in
    if not (outcomes_equal o1 oN) then Some { axis; detail = describe o1 oN }
    else if not (counters_equal r1 rN) then
      Some { axis; detail = "report counters differ between jobs=1 and jobs=N" }
    else None
  | "strict" -> vs_ref (fun () -> run ~backend:Backend.Host_xeon ~strict:true m)
  | "faults" ->
    let plain, _ = run ~backend:(small_upmem ()) m in
    let faulted, _ =
      run ~backend:(small_upmem ()) ~faults:(Some (fault_plan seed)) m
    in
    if outcomes_equal plain faulted then None
    else Some { axis; detail = describe plain faulted }
  | a -> Some { axis = a; detail = "unknown oracle axis" }

let check_axis ?inject ?jobs_alt ~axis ~seed text =
  match Parser.parse_module_text text with
  | exception e ->
    Some { axis; detail = "parse failed: " ^ truncate_s 200 (Printexc.to_string e) }
  | m -> check_axis_on ?inject ?jobs_alt ~axis ~seed text m

let check_seed ?(inject = false) ?jobs_alt ~seed text =
  match Parser.parse_module_text text with
  | exception e ->
    [ { axis = "parse"; detail = truncate_s 200 (Printexc.to_string e) } ]
  | m ->
    (* the reference must run at all before any differential makes sense *)
    let ref_out, _ = run_module ~backend:Backend.Host_xeon ~seed m in
    (match ref_out with
    | Fail e ->
      [ { axis = "reference"; detail = "reference run failed: " ^ truncate_s 200 e } ]
    | Vals _ ->
      List.filter_map
        (fun axis -> check_axis_on ~inject ?jobs_alt ~axis ~seed text m)
        axes)
