(** The differential oracle matrix.

    One generated module, one seed, many executions that must agree:

    - [compiled]: closure-compiling interpreter vs the tree walker;
    - [arm] / [upmem] / [cim] / [hetero]: each device backend vs the
      CPU reference (the driver's CPU fallback is legal and invisible
      here — it must still produce the reference answer);
    - [jobs]: the UPMEM simulation at [--jobs 1] vs [--jobs N], results
      {e and} deterministic report counters;
    - [strict]: verify + print→parse→print fixpoint after every pass
      must not change the answer (or crash);
    - [faults]: a deterministic fault plan vs fault-free — retry/remap
      must make injected faults result-transparent.

    Any divergence — differing tensors, one side raising, counter drift —
    is a mismatch. *)

open Cinm_ir
open Cinm_interp
module Backend = Cinm_core.Backend
module Report = Cinm_core.Report

type outcome = Vals of Rtval.t list | Fail of string

val outcome_to_string : outcome -> string

(** NaN-aware runtime-value equality ([0.0] = [-0.0], NaNs equal). *)
val rt_equal : Rtval.t -> Rtval.t -> bool

(** Run [m]'s first function under one configuration; all failures fold
    into the outcome. [seed] drives the synthesized argument values. *)
val run_module :
  backend:Backend.t ->
  ?interp:string ->
  ?strict:bool ->
  ?faults:Cinm_support.Fault.plan option ->
  ?jobs:int ->
  seed:int ->
  Func.modul ->
  outcome * Report.t option

(** [exec_outcome] as a stable string — the interestingness currency of
    [cinm_reduce --exec] (two configurations are "interesting" when
    their outcome strings differ). *)
val exec_outcome :
  backend:Backend.t ->
  ?interp:string ->
  ?faults:Cinm_support.Fault.plan option ->
  ?seed:int ->
  Func.modul ->
  string

(** Backends by CLI name: host | arm | upmem | cim | hetero (small
    simulator configurations, sized for reduction loops). *)
val backend_of_name : string -> (Backend.t, string) result

(** The deterministic per-seed fault plan the [faults] axis injects
    (permanent + transient DPU failures at the campaign rates). *)
val fault_plan : int -> Cinm_support.Fault.plan

type mismatch = { axis : string; detail : string }

(** The axes [check_seed] runs, in order. *)
val axes : string list

(** Re-check a single axis on module text (the shrink predicate). When
    [inject] is set, the [compiled] axis reports a synthetic mismatch on
    any module containing [cinm.gemm] — the known-bug fixture for
    exercising the shrink pipeline end to end. *)
val check_axis :
  ?inject:bool -> ?jobs_alt:int -> axis:string -> seed:int -> string ->
  mismatch option

(** The full matrix on one generated module's text. *)
val check_seed :
  ?inject:bool -> ?jobs_alt:int -> seed:int -> string -> mismatch list
