(* SplitMix64 (Steele/Lea/Flood), the same mix as Fault's site hash. *)

let golden = 0x9E3779B97F4A7C15L

let mix64 z =
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

type t = { mutable state : int64 }

let make seed = { state = mix64 (Int64.of_int seed) }

let next t =
  t.state <- Int64.add t.state golden;
  mix64 t.state

let split t = { state = mix64 (Int64.logxor (next t) 0x5851F42D4C957F2DL) }

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* 62 uniform bits — bias for any realistic n is negligible *)
  Int64.to_int (Int64.shift_right_logical (next t) 2) mod n

let bool t = Int64.logand (next t) 1L = 1L
let range t lo hi = lo + int t (hi - lo + 1)
let pick t arr = arr.(int t (Array.length arr))
let chance t num den = int t den < num
