(** Deterministic SplitMix64 stream for the fuzzer. Same chain as
    {!Cinm_support.Fault}'s site hash, but stateful: the generator wants a
    cheap sequential stream, not a pure site function. Two streams made
    from the same seed produce identical draws on every platform, so a
    seed fully names a generated module. *)

type t

val make : int -> t

(** An independent child stream (for sub-structures generated out of
    order), derived from the parent's current position. *)
val split : t -> t

(** Uniform draw in [\[0, n)]. [n] must be positive. *)
val int : t -> int -> int

val bool : t -> bool

(** Uniform draw in [\[lo, hi\]] inclusive. *)
val range : t -> int -> int -> int

val pick : t -> 'a array -> 'a

(** [chance rng num den] is true with probability [num/den]. *)
val chance : t -> int -> int -> bool
