(* Reference (functional, untimed) executor for the paradigm-level cnm and
   cim dialects. Used as interpreter hooks to check that the cinm-to-cnm /
   cinm-to-cim lowerings preserve program semantics, independently of any
   device timing model. The device simulators provide their own hooks with
   the same data semantics plus time/energy accounting. *)

open Cinm_ir

type workgroup = { wg_shape : int array }

type buffer = {
  per_pu : Tensor.t array;  (** one tensor per buffer at this level *)
  buf_shape : int array;
  dtype : Types.dtype;
  level : int;
}

type cim_device = { mutable written : Tensor.t option; mutable last_result : Tensor.t option }

type entry = Wg of workgroup | Buf of buffer | Cim of cim_device

type state = { entries : (int, entry) Hashtbl.t; mutable next : int }

let create_state () = { entries = Hashtbl.create 32; next = 0 }

let register st e =
  let id = st.next in
  st.next <- st.next + 1;
  Hashtbl.replace st.entries id e;
  Rtval.Handle id

let find st id =
  match Hashtbl.find_opt st.entries id with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "Cnm_ref: unknown handle %d" id)

let find_wg st rv =
  match find st (Rtval.as_handle rv) with
  | Wg wg -> wg
  | _ -> invalid_arg "Cnm_ref: expected workgroup handle"

let find_buf st rv =
  match find st (Rtval.as_handle rv) with
  | Buf b -> b
  | _ -> invalid_arg "Cnm_ref: expected buffer handle"

let find_cim st rv =
  match find st (Rtval.as_handle rv) with
  | Cim d -> d
  | _ -> invalid_arg "Cnm_ref: expected CIM device handle"

let n_pus wg = Cinm_support.Util.product_of_shape wg.wg_shape

let gather_tensor (buf : buffer) (_wg : workgroup) ~result_shape =
  Distrib.gather buf.per_pu ~result_shape ~dtype:buf.dtype

(* The hook. [on_launch] is called once per launch with the per-PU profile
   list; the default ignores it (reference semantics are untimed). *)
let hook ?(on_launch = fun (_ : Profile.t list) -> ()) (st : state) : Interp.hook =
 fun ctx op ops ->
  let operand i = ops.(i) in
  match op.Ir.name with
  | "cnm.workgroup" -> (
    match (Ir.result op 0).Ir.ty with
    | Types.Workgroup shape -> Some [ register st (Wg { wg_shape = shape }) ]
    | _ -> invalid_arg "cnm.workgroup: bad result type")
  | "cnm.alloc" -> (
    let wg = find_wg st (operand 0) in
    match (Ir.result op 0).Ir.ty with
    | Types.Buffer { shape; dtype; level } ->
      let n = Cinm_dialects.Cnm_d.buffers_at_level wg.wg_shape level in
      let per_pu = Array.init n (fun _ -> Tensor.zeros shape dtype) in
      Some [ register st (Buf { per_pu; buf_shape = shape; dtype; level }) ]
    | _ -> invalid_arg "cnm.alloc: bad result type")
  | "cnm.scatter" ->
    let t = Rtval.as_tensor (operand 0) in
    let buf = find_buf st (operand 1) in
    let halo = match Ir.attr op "halo" with Some (Attr.Int h) -> h | _ -> 0 in
    Distrib.scatter ~halo ~map:(Ir.str_attr op "map") t buf.per_pu;
    Some [ Rtval.Token ]
  | "cnm.gather" -> (
    let buf = find_buf st (operand 0) in
    let wg = find_wg st (operand 1) in
    match Types.shape_of (Ir.result op 0).Ir.ty with
    | Some result_shape ->
      Some [ Rtval.Tensor (gather_tensor buf wg ~result_shape); Rtval.Token ]
    | None -> invalid_arg "cnm.gather: unshaped result")
  | "cnm.launch" ->
    let wg = find_wg st (operand 0) in
    let n_buffers = Ir.num_operands op - 1 in
    let bufs = List.init n_buffers (fun i -> find_buf st (operand (i + 1))) in
    let region = Ir.region op 0 in
    (* compile once, execute per PU (PUs are sequential here, so they can
       share the context's environment and predicate cache) *)
    let prep = Compile.prepare ctx region in
    let profiles = ref [] in
    (* kernel-local allocations cannot escape the launch (results are
       discarded, stores copy elements), so they recycle via the arena *)
    let scratch = ref [] in
    for p = 0 to n_pus wg - 1 do
      let args =
        List.map
          (fun b ->
            let idx = Cinm_dialects.Cnm_d.buffer_index_of_pu wg.wg_shape b.level p in
            Rtval.Memref b.per_pu.(idx))
          bufs
      in
      let profile = Profile.create () in
      (* fresh watchdog counter per PU, matching the per-lane budget the
         UPMEM machine gives its tasklets *)
      let inner =
        { ctx with Interp.profile = profile; steps = ref 0; scratch = Some scratch }
      in
      ignore (Compile.run prep inner args);
      profiles := profile :: !profiles
    done;
    List.iter Tensor.Arena.release !scratch;
    on_launch (List.rev !profiles);
    Some [ Rtval.Token ]
  | "cnm.wait" -> Some []
  (* ----- cim reference semantics ----- *)
  | "cim.acquire" -> Some [ register st (Cim { written = None; last_result = None }) ]
  | "cim.write" ->
    let d = find_cim st (operand 0) in
    d.written <- Some (Rtval.as_tensor (operand 1));
    Some []
  | "cim.execute" ->
    let d = find_cim st (operand 0) in
    let inputs = List.init (Ir.num_operands op - 1) (fun i -> operand (i + 1)) in
    let results = Compile.run_region ctx (Ir.region op 0) inputs in
    (match results with
    | [ Rtval.Tensor t ] -> d.last_result <- Some t
    | _ -> ());
    Some results
  | "cim.read" -> (
    let d = find_cim st (operand 0) in
    match d.last_result with
    | Some t -> Some [ Rtval.Tensor t ]
    | None -> invalid_arg "cim.read: no result available")
  | "cim.barrier" -> Some []
  | "cim.release" ->
    Hashtbl.remove st.entries (Rtval.as_handle (operand 0));
    Some []
  | _ -> None
