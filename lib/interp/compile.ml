(* Closure-compiling executor: a one-shot pass over a kernel's IR that
   resolves every SSA value to a fixed integer slot in a flat register
   file (an [Rtval.t array]) and specializes each op into an OCaml
   closure — name dispatch, binop selection, cmpi predicate decode and
   attribute decoding all happen once at compile time instead of once per
   evaluated op. The resulting closure tree is cached per kernel and
   shared read-only across DPU-lane domains; every lane executes it on a
   private register file, so the parallel launch path needs no
   per-lane copy of the interpreter environment.

   Parity contract: compiled execution must be *bit-identical* to the
   tree-walking interpreter — same results, same [Profile] increments
   (the timing models are pure folds over the profile, so identical
   counters mean identical stats, reports and traces). Two mechanisms
   enforce this:

   - every natively compiled op replays the exact accounting of its
     [Interp.eval_op] case (one [launched_ops] per dispatched op, the
     same bucket increments in the same places);
   - any op the native compiler does not fully understand — unknown
     names, bulk tensor ops, device ops handled by machine hooks, or any
     op whose attribute/shape decoding fails — falls back to a generic
     closure that routes the single op through [Interp.eval_op]
     unchanged (operands and nested-region free values are staged from
     the register file into the context environment first, results are
     read back after). The fallback also preserves the tree-walker's
     runtime errors: a malformed op only fails when executed, not at
     compile time.

   The unit of compilation is one region (a function body or a launch
   kernel). Structured control flow ([scf.for] / [scf.if] /
   [scf.parallel]) is compiled inline into the same register file — the
   SSA dominance rules make slot aliasing safe, with the one exception of
   loop-carried values, which go through scratch slots on yield because a
   yield operand may itself be an iteration argument. *)

open Cinm_ir

(* ----- backend selection ----- *)

type backend = Tree | Compiled

let backend_of_string s =
  match String.lowercase_ascii s with
  | "tree" -> Some Tree
  | "compiled" -> Some Compiled
  | _ -> None

let backend_name = function Tree -> "tree" | Compiled -> "compiled"

let initial_backend () =
  match Sys.getenv_opt "CINM_INTERP" with
  | None | Some "" -> Tree
  | Some s -> (
    match backend_of_string s with
    | Some b -> b
    | None ->
      invalid_arg
        (Printf.sprintf "CINM_INTERP=%s: unknown interpreter backend (tree|compiled)" s))

let backend_ref = ref (initial_backend ())
let backend () = !backend_ref
let set_backend b = backend_ref := b

(* ----- compiled code ----- *)

(* One compiled op: reads/writes the register file, accounts into the
   context's profile, and may call hooks through the context. *)
type instr = Interp.ctx -> Rtval.t array -> unit

type code = {
  nslots : int;
  arg_slots : int array;  (** slots of the entry block's parameters *)
  cap_values : Ir.value array;
      (** free values of the unit (defined outside the compiled region);
          resolved from the launching context once per launch *)
  cap_slots : int array;
  body : instr array;
  term_slots : int array;  (** slots of the terminator's operands *)
}

(* Raised by native op compilers to hand the op to the generic fallback.
   Must be raised before the op's structure has been committed to slots in
   any way the fallback could not reproduce (slot allocation itself is
   idempotent, so partial [use_slot]/[def_slot] calls are harmless). *)
exception Punt

type cstate = {
  mutable nslots : int;
  slots : (int, int) Hashtbl.t;  (** vid -> slot *)
  mutable caps : (Ir.value * int) list;  (** reverse order of first use *)
}

let new_slot st =
  let s = st.nslots in
  st.nslots <- s + 1;
  s

(* Slot of a value being read. A value never defined inside the unit is a
   capture: it gets a slot filled from the host environment at launch. *)
let use_slot st (v : Ir.value) =
  match Hashtbl.find_opt st.slots v.Ir.vid with
  | Some s -> s
  | None ->
    let s = new_slot st in
    Hashtbl.add st.slots v.Ir.vid s;
    st.caps <- (v, s) :: st.caps;
    s

(* Slot of a value being defined. Ops are compiled in program order, so in
   well-formed SSA the definition is the first sighting and gets a fresh
   slot. *)
let def_slot st (v : Ir.value) =
  match Hashtbl.find_opt st.slots v.Ir.vid with
  | Some s -> s
  | None ->
    let s = new_slot st in
    Hashtbl.add st.slots v.Ir.vid s;
    s

(* Bind a value to an existing slot (scf.for results alias the iteration
   argument slots, which hold the final loop-carried values on exit). *)
let alias_slot st (v : Ir.value) slot = Hashtbl.replace st.slots v.Ir.vid slot

let nop_instr : instr = fun _ _ -> ()
let rt_true = Rtval.Bool true
let rt_false = Rtval.Bool false

(* Free values of [op]'s nested regions: operands used under the op's
   entry blocks (the only blocks the interpreter ever evaluates) that are
   not defined inside the op. The generic fallback stages these into the
   context environment so hooks can tree-walk the op's regions. *)
let free_values (op : Ir.op) : Ir.value list =
  if Array.length op.Ir.regions = 0 then []
  else begin
    let defined = Hashtbl.create 64 in
    let seen = Hashtbl.create 16 in
    let acc = ref [] in
    let rec go_region r =
      if Ir.num_blocks r > 0 then begin
        let b = Ir.entry_block r in
        Array.iter (fun (v : Ir.value) -> Hashtbl.replace defined v.Ir.vid ()) b.Ir.args;
        for i = 0 to Ir.num_ops b - 1 do
          Array.iter
            (fun (v : Ir.value) -> Hashtbl.replace defined v.Ir.vid ())
            (Ir.op_at b i).Ir.results
        done;
        for i = 0 to Ir.num_ops b - 1 do
          let o = Ir.op_at b i in
          Array.iter
            (fun (v : Ir.value) ->
              if (not (Hashtbl.mem defined v.Ir.vid)) && not (Hashtbl.mem seen v.Ir.vid)
              then begin
                Hashtbl.add seen v.Ir.vid ();
                acc := v :: !acc
              end)
            o.Ir.operands;
          Array.iter go_region o.Ir.regions
        done
      end
    in
    Array.iter go_region op.Ir.regions;
    List.rev !acc
  end

(* ----- the generic fallback ----- *)

(* Route one op through [Interp.eval_op]: stage its operands (and the free
   values of its nested regions) from the register file into the context
   environment, evaluate, read the results back into their slots. This is
   bit-identical to the tree-walker by construction — the same code runs,
   including all profile accounting, hook dispatch and error behavior. *)
let compile_generic st (op : Ir.op) : instr =
  let operand_binds =
    Array.map (fun (v : Ir.value) -> (v.Ir.vid, use_slot st v)) op.Ir.operands
  in
  let free_binds =
    Array.of_list
      (List.map (fun (v : Ir.value) -> (v.Ir.vid, use_slot st v)) (free_values op))
  in
  let result_binds =
    Array.map (fun (v : Ir.value) -> (v.Ir.vid, def_slot st v)) op.Ir.results
  in
  fun ctx frame ->
    let env = ctx.Interp.env in
    Array.iter (fun (vid, s) -> Hashtbl.replace env vid frame.(s)) operand_binds;
    Array.iter (fun (vid, s) -> Hashtbl.replace env vid frame.(s)) free_binds;
    Interp.eval_op ctx op;
    Array.iter
      (fun (vid, s) ->
        match Hashtbl.find_opt env vid with
        | Some rv -> frame.(s) <- rv
        | None -> Interp.err "%s: result %%%d not bound" op.Ir.name vid)
      result_binds

(* ----- native op compilers ----- *)

(* Same table as the literal dispatch cases of [Interp.eval_op]. *)
let int_binop_spec : string -> (int * (int -> int -> int)) option = function
  | "arith.addi" -> Some (Interp.bucket_alu, ( + ))
  | "arith.subi" -> Some (Interp.bucket_alu, ( - ))
  | "arith.muli" -> Some (Interp.bucket_mul, ( * ))
  | "arith.divsi" -> Some (Interp.bucket_div, Tensor.int_binop "div")
  | "arith.remsi" -> Some (Interp.bucket_div, Tensor.int_binop "rem")
  | "arith.minsi" -> Some (Interp.bucket_alu, min)
  | "arith.maxsi" -> Some (Interp.bucket_alu, max)
  | "arith.andi" -> Some (Interp.bucket_alu, ( land ))
  | "arith.ori" -> Some (Interp.bucket_alu, ( lor ))
  | "arith.xori" -> Some (Interp.bucket_alu, ( lxor ))
  | "arith.shli" -> Some (Interp.bucket_alu, ( lsl ))
  | "arith.shrsi" -> Some (Interp.bucket_alu, ( asr ))
  | _ -> None

let float_binop_fn : string -> (float -> float -> float) option = function
  | "arith.addf" -> Some ( +. )
  | "arith.subf" -> Some ( -. )
  | "arith.mulf" -> Some ( *. )
  | "arith.divf" -> Some ( /. )
  | _ -> None

let rec compile_op st (op : Ir.op) : instr =
  match compile_native st op with
  | Some i -> i
  | None -> compile_generic st op
  | exception (Punt | Interp.Interp_error _ | Invalid_argument _ | Not_found | Failure _)
    ->
    (* decode failed: let the tree-walker raise (or not) at runtime *)
    compile_generic st op

and compile_native st (op : Ir.op) : instr option =
  match op.Ir.name with
  | "arith.constant" -> Some (compile_constant st op)
  | "arith.cmpi" -> Some (compile_cmpi st op)
  | "arith.select" -> Some (compile_select st op)
  | "arith.index_cast" -> Some (compile_index_cast st op)
  | "scf.for" -> Some (compile_for st op)
  | "scf.if" -> Some (compile_if st op)
  | "scf.parallel" -> Some (compile_parallel st op)
  | "memref.alloc" | "upmem.wram_alloc" -> Some (compile_alloc st op)
  | "memref.load" | "tensor.extract" -> Some (compile_indexed_load st op)
  | "memref.store" -> Some (compile_store st op)
  | name -> (
    match int_binop_spec name with
    | Some (bucket, f) -> Some (compile_int_bin st op bucket f)
    | None -> (
      match float_binop_fn name with
      | Some f -> Some (compile_float_bin st op f)
      | None -> None))

and compile_constant st op =
  let rv =
    match Ir.attr_exn op "value" with
    | Attr.Int i -> Rtval.Int (Tensor.wrap (Interp.scalar_result_dtype op) i)
    | Attr.Float f -> Rtval.Float f
    | _ -> raise Punt
  in
  let r = def_slot st op.Ir.results.(0) in
  fun ctx frame ->
    let p = ctx.Interp.profile in
    p.Profile.launched_ops <- p.Profile.launched_ops + 1;
    frame.(r) <- rv

and compile_int_bin st op bucket f =
  let dt = Interp.scalar_result_dtype op in
  let a = use_slot st op.Ir.operands.(0) in
  let b = use_slot st op.Ir.operands.(1) in
  let r = def_slot st op.Ir.results.(0) in
  fun ctx frame ->
    let p = ctx.Interp.profile in
    p.Profile.launched_ops <- p.Profile.launched_ops + 1;
    Interp.account_int_binop p bucket;
    frame.(r) <-
      Rtval.Int (Tensor.wrap dt (f (Rtval.as_int frame.(a)) (Rtval.as_int frame.(b))))

and compile_float_bin st op f =
  let a = use_slot st op.Ir.operands.(0) in
  let b = use_slot st op.Ir.operands.(1) in
  let r = def_slot st op.Ir.results.(0) in
  fun ctx frame ->
    let p = ctx.Interp.profile in
    p.Profile.launched_ops <- p.Profile.launched_ops + 1;
    p.Profile.alu_ops <- p.Profile.alu_ops + 1;
    frame.(r) <- Rtval.Float (f (Rtval.as_float frame.(a)) (Rtval.as_float frame.(b)))

and compile_cmpi st op =
  let pred = Interp.decode_cmpi_predicate op in
  let a = use_slot st op.Ir.operands.(0) in
  let b = use_slot st op.Ir.operands.(1) in
  let r = def_slot st op.Ir.results.(0) in
  fun ctx frame ->
    let p = ctx.Interp.profile in
    p.Profile.launched_ops <- p.Profile.launched_ops + 1;
    let av = Rtval.as_int frame.(a) and bv = Rtval.as_int frame.(b) in
    p.Profile.alu_ops <- p.Profile.alu_ops + 1;
    frame.(r) <- (if pred av bv then rt_true else rt_false)

and compile_select st op =
  let c = use_slot st op.Ir.operands.(0) in
  let t = use_slot st op.Ir.operands.(1) in
  let e = use_slot st op.Ir.operands.(2) in
  let r = def_slot st op.Ir.results.(0) in
  fun ctx frame ->
    let p = ctx.Interp.profile in
    p.Profile.launched_ops <- p.Profile.launched_ops + 1;
    p.Profile.alu_ops <- p.Profile.alu_ops + 1;
    frame.(r) <- (if Rtval.as_bool frame.(c) then frame.(t) else frame.(e))

and compile_index_cast st op =
  let a = use_slot st op.Ir.operands.(0) in
  let r = def_slot st op.Ir.results.(0) in
  fun ctx frame ->
    let p = ctx.Interp.profile in
    p.Profile.launched_ops <- p.Profile.launched_ops + 1;
    frame.(r) <- Rtval.Int (Rtval.as_int frame.(a))

and compile_alloc st op =
  match (Ir.result op 0).Ir.ty with
  | Types.MemRef (shape, dt) ->
    let r = def_slot st op.Ir.results.(0) in
    fun ctx frame ->
      let p = ctx.Interp.profile in
      p.Profile.launched_ops <- p.Profile.launched_ops + 1;
      frame.(r) <- Rtval.Memref (Tensor.zeros shape dt)
  | _ -> raise Punt

(* memref.load / tensor.extract. Ranks 1 and 2 are specialized to flat
   indexing with the bounds checks of [Util.linearize] inlined (same
   failure message); other ranks build the index array per access like the
   tree-walker does. *)
and compile_indexed_load st op =
  let n_idx = Ir.num_operands op - 1 in
  if n_idx < 0 then raise Punt;
  let m_s = use_slot st op.Ir.operands.(0) in
  let idx_s = Array.init n_idx (fun i -> use_slot st op.Ir.operands.(i + 1)) in
  let r = def_slot st op.Ir.results.(0) in
  match idx_s with
  | [| i0 |] ->
    fun ctx frame ->
      let p = ctx.Interp.profile in
      p.Profile.launched_ops <- p.Profile.launched_ops + 1;
      let m = Rtval.as_tensor frame.(m_s) in
      let i = Rtval.as_int frame.(i0) in
      p.Profile.loads <- p.Profile.loads + 1;
      frame.(r) <-
        Rtval.Int
          (if Array.length m.Tensor.shape = 1 then begin
             if i < 0 || i >= m.Tensor.shape.(0) then
               invalid_arg "Util.linearize: out of bounds";
             Tensor.get_int m i
           end
           else Tensor.get m [| i |])
  | [| i0; i1 |] ->
    fun ctx frame ->
      let p = ctx.Interp.profile in
      p.Profile.launched_ops <- p.Profile.launched_ops + 1;
      let m = Rtval.as_tensor frame.(m_s) in
      let a = Rtval.as_int frame.(i0) in
      let b = Rtval.as_int frame.(i1) in
      p.Profile.loads <- p.Profile.loads + 1;
      frame.(r) <-
        Rtval.Int
          (let shape = m.Tensor.shape in
           if Array.length shape = 2 then begin
             if a < 0 || a >= shape.(0) || b < 0 || b >= shape.(1) then
               invalid_arg "Util.linearize: out of bounds";
             Tensor.get_int m ((a * shape.(1)) + b)
           end
           else Tensor.get m [| a; b |])
  | _ ->
    fun ctx frame ->
      let p = ctx.Interp.profile in
      p.Profile.launched_ops <- p.Profile.launched_ops + 1;
      let m = Rtval.as_tensor frame.(m_s) in
      let idx = Array.map (fun s -> Rtval.as_int frame.(s)) idx_s in
      p.Profile.loads <- p.Profile.loads + 1;
      frame.(r) <- Rtval.Int (Tensor.get m idx)

and compile_store st op =
  let n_idx = Ir.num_operands op - 2 in
  if n_idx < 0 then raise Punt;
  let v_s = use_slot st op.Ir.operands.(0) in
  let m_s = use_slot st op.Ir.operands.(1) in
  let idx_s = Array.init n_idx (fun i -> use_slot st op.Ir.operands.(i + 2)) in
  match idx_s with
  | [| i0 |] ->
    fun ctx frame ->
      let p = ctx.Interp.profile in
      p.Profile.launched_ops <- p.Profile.launched_ops + 1;
      let v = Rtval.as_int frame.(v_s) in
      let m = Rtval.as_tensor frame.(m_s) in
      let i = Rtval.as_int frame.(i0) in
      p.Profile.stores <- p.Profile.stores + 1;
      if Array.length m.Tensor.shape = 1 then begin
        if i < 0 || i >= m.Tensor.shape.(0) then
          invalid_arg "Util.linearize: out of bounds";
        Tensor.set_int m i v
      end
      else Tensor.set m [| i |] v
  | [| i0; i1 |] ->
    fun ctx frame ->
      let p = ctx.Interp.profile in
      p.Profile.launched_ops <- p.Profile.launched_ops + 1;
      let v = Rtval.as_int frame.(v_s) in
      let m = Rtval.as_tensor frame.(m_s) in
      let a = Rtval.as_int frame.(i0) in
      let b = Rtval.as_int frame.(i1) in
      p.Profile.stores <- p.Profile.stores + 1;
      let shape = m.Tensor.shape in
      if Array.length shape = 2 then begin
        if a < 0 || a >= shape.(0) || b < 0 || b >= shape.(1) then
          invalid_arg "Util.linearize: out of bounds";
        Tensor.set_int m ((a * shape.(1)) + b) v
      end
      else Tensor.set m [| a; b |] v
  | _ ->
    fun ctx frame ->
      let p = ctx.Interp.profile in
      p.Profile.launched_ops <- p.Profile.launched_ops + 1;
      let v = Rtval.as_int frame.(v_s) in
      let m = Rtval.as_tensor frame.(m_s) in
      let idx = Array.map (fun s -> Rtval.as_int frame.(s)) idx_s in
      p.Profile.stores <- p.Profile.stores + 1;
      Tensor.set m idx v

(* Compile a block's ops in program order (order matters: a definition
   must claim its slot before any use, otherwise the use would be
   misclassified as a capture). Returns the instruction sequence and, when
   the block ends in a terminator, the slots of the terminator's operands
   (the block's results). Terminators are not instructions — exactly like
   [Interp.eval_block], they are never dispatched or accounted. *)
and compile_block st (block : Ir.block) : instr array * int array option =
  let n = Ir.num_ops block in
  if n = 0 then ([||], None)
  else begin
    let last = Ir.op_at block (n - 1) in
    if Interp.is_terminator last then begin
      let body = Array.make (n - 1) nop_instr in
      for i = 0 to n - 2 do
        body.(i) <- compile_op st (Ir.op_at block i)
      done;
      let ts = Array.map (fun v -> use_slot st v) last.Ir.operands in
      (body, Some ts)
    end
    else begin
      let body = Array.make n nop_instr in
      for i = 0 to n - 1 do
        body.(i) <- compile_op st (Ir.op_at block i)
      done;
      (body, None)
    end
  end

and compile_for st op =
  if Ir.num_operands op < 3 || Array.length op.Ir.regions <> 1 then raise Punt;
  let n_res = Array.length op.Ir.results in
  if Ir.num_operands op <> n_res + 3 then raise Punt;
  let block = Ir.entry_block op.Ir.regions.(0) in
  if Array.length block.Ir.args <> n_res + 1 then raise Punt;
  (* the loop-carried arity must be consistent, else the tree-walker's
     per-iteration region evaluation raises — let it *)
  let nops = Ir.num_ops block in
  (if nops = 0 then begin if n_res <> 0 then raise Punt end
   else
     let last = Ir.op_at block (nops - 1) in
     if Interp.is_terminator last then begin
       if Array.length last.Ir.operands <> n_res then raise Punt
     end
     else if n_res <> 0 then raise Punt);
  let lb_s = use_slot st op.Ir.operands.(0) in
  let ub_s = use_slot st op.Ir.operands.(1) in
  let step_s = use_slot st op.Ir.operands.(2) in
  let init_s = Array.init n_res (fun i -> use_slot st op.Ir.operands.(i + 3)) in
  let iv_s = def_slot st block.Ir.args.(0) in
  let iter_s = Array.init n_res (fun i -> def_slot st block.Ir.args.(i + 1)) in
  let body, term = compile_block st block in
  let yield_s = match term with Some a -> a | None -> [||] in
  (* a yield operand may be an iteration argument (slot permutation), so
     loop-carried values go through scratch slots *)
  let scratch = Array.init (Array.length yield_s) (fun _ -> new_slot st) in
  Array.iteri (fun i v -> alias_slot st v iter_s.(i)) op.Ir.results;
  let nb = Array.length body in
  let ny = Array.length yield_s in
  fun ctx frame ->
    let p = ctx.Interp.profile in
    p.Profile.launched_ops <- p.Profile.launched_ops + 1;
    let lb = Rtval.as_int frame.(lb_s)
    and ub = Rtval.as_int frame.(ub_s)
    and step = Rtval.as_int frame.(step_s) in
    if step <= 0 then Interp.err "scf.for: non-positive step %d" step;
    for k = 0 to n_res - 1 do
      frame.(iter_s.(k)) <- frame.(init_s.(k))
    done;
    let i = ref lb in
    while !i < ub do
      p.Profile.alu_ops <- p.Profile.alu_ops + 1 (* induction update/compare *);
      Interp.check_steps ctx "scf.for";
      frame.(iv_s) <- Rtval.Int !i;
      for j = 0 to nb - 1 do
        body.(j) ctx frame
      done;
      for k = 0 to ny - 1 do
        frame.(scratch.(k)) <- frame.(yield_s.(k))
      done;
      for k = 0 to ny - 1 do
        frame.(iter_s.(k)) <- frame.(scratch.(k))
      done;
      i := !i + step
    done

and compile_if st op =
  if Ir.num_operands op < 1 then raise Punt;
  let n_res = Array.length op.Ir.results in
  let nregions = Array.length op.Ir.regions in
  (* a missing branch yields no values; fine only for a result-less op *)
  if n_res > 0 && nregions < 2 then raise Punt;
  let check_branch ri =
    if ri < nregions then begin
      let block = Ir.entry_block op.Ir.regions.(ri) in
      if Array.length block.Ir.args <> 0 then raise Punt;
      let nops = Ir.num_ops block in
      if nops = 0 then begin if n_res <> 0 then raise Punt end
      else
        let last = Ir.op_at block (nops - 1) in
        if Interp.is_terminator last then begin
          if Array.length last.Ir.operands <> n_res then raise Punt
        end
        else if n_res <> 0 then raise Punt
    end
  in
  check_branch 0;
  check_branch 1;
  let c_s = use_slot st op.Ir.operands.(0) in
  let compile_branch ri =
    if ri >= nregions then None
    else begin
      let body, term = compile_block st (Ir.entry_block op.Ir.regions.(ri)) in
      let ys = match term with Some a -> a | None -> [||] in
      Some (body, ys)
    end
  in
  let then_b = compile_branch 0 in
  let else_b = compile_branch 1 in
  let res_s = Array.map (fun v -> def_slot st v) op.Ir.results in
  fun ctx frame ->
    let p = ctx.Interp.profile in
    p.Profile.launched_ops <- p.Profile.launched_ops + 1;
    let c = Rtval.as_bool frame.(c_s) in
    match if c then then_b else else_b with
    | None -> ()
    | Some (body, ys) ->
      for j = 0 to Array.length body - 1 do
        body.(j) ctx frame
      done;
      for k = 0 to Array.length ys - 1 do
        frame.(res_s.(k)) <- frame.(ys.(k))
      done

and compile_parallel st op =
  if Array.length op.Ir.results <> 0 then raise Punt;
  if Array.length op.Ir.regions <> 1 then raise Punt;
  let n_dims = Ir.num_operands op / 3 in
  let block = Ir.entry_block op.Ir.regions.(0) in
  if Array.length block.Ir.args <> n_dims then raise Punt;
  let lb_s = Array.init n_dims (fun d -> use_slot st op.Ir.operands.(3 * d)) in
  let ub_s = Array.init n_dims (fun d -> use_slot st op.Ir.operands.((3 * d) + 1)) in
  let st_s = Array.init n_dims (fun d -> use_slot st op.Ir.operands.((3 * d) + 2)) in
  let arg_s = Array.map (fun v -> def_slot st v) block.Ir.args in
  let body, _term = compile_block st block in
  let nb = Array.length body in
  fun ctx frame ->
    let p = ctx.Interp.profile in
    p.Profile.launched_ops <- p.Profile.launched_ops + 1;
    let lb = Array.map (fun s -> Rtval.as_int frame.(s)) lb_s in
    let ub = Array.map (fun s -> Rtval.as_int frame.(s)) ub_s in
    let step = Array.map (fun s -> Rtval.as_int frame.(s)) st_s in
    (* no per-iteration accounting, exactly like the tree-walker *)
    let rec go d =
      if d = n_dims then begin
        Interp.check_steps ctx "scf.parallel";
        for j = 0 to nb - 1 do
          body.(j) ctx frame
        done
      end
      else begin
        let i = ref lb.(d) in
        while !i < ub.(d) do
          frame.(arg_s.(d)) <- Rtval.Int !i;
          go (d + 1);
          i := !i + step.(d)
        done
      end
    in
    go 0

(* ----- unit compilation, cache, execution ----- *)

let compile_unit (region : Ir.region) : code =
  let st = { nslots = 0; slots = Hashtbl.create 64; caps = [] } in
  let block = Ir.entry_block region in
  let arg_slots = Array.map (fun v -> def_slot st v) block.Ir.args in
  let body, term = compile_block st block in
  let term_slots = match term with Some a -> a | None -> [||] in
  let caps = Array.of_list (List.rev st.caps) in
  {
    nslots = st.nslots;
    arg_slots;
    cap_values = Array.map fst caps;
    cap_slots = Array.map snd caps;
    body;
    term_slots;
  }

(* Compiled units cached by the entry block's identity. Hooks are not part
   of the key: compiled closures resolve hooks through the executing
   context at runtime, so the same code serves any hook stack. The cache
   is append-only and mutex-protected — kernels are compiled once and then
   shared read-only across all DPU-lane domains. *)
let cache : (int, code) Hashtbl.t = Hashtbl.create 64
let cache_mutex = Mutex.create ()

let clear_cache () =
  Mutex.lock cache_mutex;
  Hashtbl.reset cache;
  Mutex.unlock cache_mutex

let get_code (region : Ir.region) : code =
  let key = (Ir.entry_block region).Ir.bid in
  Mutex.lock cache_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock cache_mutex)
    (fun () ->
      match Hashtbl.find_opt cache key with
      | Some c -> c
      | None ->
        let c = compile_unit region in
        Hashtbl.add cache key c;
        c)

let exec (code : code) ctx (caps : Rtval.t array) (args : Rtval.t list) : Rtval.t list =
  let n_args = List.length args in
  if Array.length code.arg_slots <> n_args then
    Interp.err "region arity mismatch: %d args for %d params" n_args
      (Array.length code.arg_slots);
  let frame = Array.make code.nslots Rtval.Token in
  Array.iteri (fun i rv -> frame.(code.cap_slots.(i)) <- rv) caps;
  List.iteri (fun i rv -> frame.(code.arg_slots.(i)) <- rv) args;
  let body = code.body in
  for j = 0 to Array.length body - 1 do
    body.(j) ctx frame
  done;
  Array.to_list (Array.map (fun s -> frame.(s)) code.term_slots)

(* ----- launch API ----- *)

type prepared =
  | Tree_region of Ir.region
  | Compiled_code of code * Rtval.t array

(* Resolve a region to something executable under the selected backend.
   For the compiled backend this compiles (or fetches) the unit and
   resolves its captured values from the launching context once — the
   result is shared read-only across lanes, each of which executes on its
   own register file. *)
let prepare ctx (region : Ir.region) : prepared =
  match backend () with
  | Tree -> Tree_region region
  | Compiled ->
    let code = get_code region in
    Compiled_code (code, Array.map (fun v -> Interp.lookup ctx v) code.cap_values)

let is_compiled = function Compiled_code _ -> true | Tree_region _ -> false

let run prep ctx args =
  match prep with
  | Tree_region region -> Interp.eval_region ctx region args
  | Compiled_code (code, caps) -> exec code ctx caps args

let run_region ctx region args = run (prepare ctx region) ctx args

(* ----- entry points (drop-in for Interp.run_func / run_in_module) ----- *)

let run_func ?(hooks = []) ?profile ?modul ?max_steps (f : Func.t)
    (args : Rtval.t list) : Rtval.t list * Profile.t =
  match backend () with
  | Tree -> Interp.run_func ~hooks ?profile ?modul ?max_steps f args
  | Compiled ->
    let ctx =
      Interp.create_ctx ~hooks ?profile ?modul ~fname:f.Func.fname ?max_steps ()
    in
    let code = get_code f.Func.body in
    let caps = Array.map (fun v -> Interp.lookup ctx v) code.cap_values in
    let results = exec code ctx caps args in
    (results, ctx.Interp.profile)

let run_in_module ?(hooks = []) ?profile ?max_steps (m : Func.modul) name args =
  let f = Func.find_func_exn m name in
  run_func ~hooks ?profile ~modul:m ?max_steps f args
