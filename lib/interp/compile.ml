(* Closure-compiling executor: a one-shot pass over a kernel's IR that
   resolves every SSA value to a fixed slot in a register file and
   specializes each op into an OCaml closure — name dispatch, binop
   selection, cmpi predicate decode and attribute decoding all happen once
   at compile time instead of once per evaluated op. The resulting closure
   tree is cached per kernel and shared read-only across DPU-lane domains;
   every lane executes it on a private register file, so the parallel
   launch path needs no per-lane copy of the interpreter environment.

   The register file is *split by static type*: values whose IR type is
   [index] or a non-i1 integer scalar live in a flat [int array] (the
   "int frame"); everything else — tensors, memrefs, handles, floats,
   i1 (whose runtime representation may be [Rtval.Bool]) — lives in an
   [Rtval.t array] (the "gen frame"). A slot id encodes its frame in its
   sign: [s >= 0] indexes the gen frame, [s < 0] indexes the int frame at
   [-1 - s]. Integer arithmetic, comparisons, loop induction and the
   rank-1/2 load/store fast paths then run *monomorphic*: unboxed ints in,
   unboxed ints out, no [Rtval.Int] allocation, no payload-variant
   dispatch (integer tensors are accessed through their raw [int array]
   payload after one explicit bounds check), and wrap-at-width
   specialized per result dtype at compile time.

   Parity contract: compiled execution must be *bit-identical* to the
   tree-walking interpreter — same results, same [Profile] increments
   (the timing models are pure folds over the profile, so identical
   counters mean identical stats, reports and traces). Two mechanisms
   enforce this:

   - every natively compiled op replays the exact accounting of its
     [Interp.eval_op] case (one [launched_ops] per dispatched op, the
     same bucket increments in the same places);
   - any op the native compiler does not fully understand — unknown
     names, bulk tensor ops, device ops handled by machine hooks, or any
     op whose attribute/shape decoding fails — falls back to a generic
     closure that routes the single op through [Interp.eval_op]
     unchanged (operands and nested-region free values are staged from
     the register file into the context environment first, results are
     read back after). The fallback also preserves the tree-walker's
     runtime errors: a malformed op only fails when executed, not at
     compile time.

   The unit of compilation is one region (a function body or a launch
   kernel). Structured control flow ([scf.for] / [scf.if] /
   [scf.parallel]) is compiled inline into the same register file — the
   SSA dominance rules make slot aliasing safe, with the one exception of
   loop-carried values, which go through scratch slots on yield because a
   yield operand may itself be an iteration argument. *)

open Cinm_ir
module Config = Cinm_support.Config
module Trace = Cinm_support.Trace

(* ----- backend selection ----- *)

type backend = Tree | Compiled

let backend_of_string s =
  match String.lowercase_ascii s with
  | "tree" -> Some Tree
  | "compiled" -> Some Compiled
  | _ -> None

let backend_name = function Tree -> "tree" | Compiled -> "compiled"

let backend_of_string_exn s =
  match backend_of_string s with
  | Some b -> b
  | None ->
    invalid_arg
      (Printf.sprintf "CINM_INTERP=%s: unknown interpreter backend (tree|compiled)" s)

(* The process default comes from the Config snapshot (CINM_INTERP). *)
let initial_backend () =
  match (Config.default ()).Config.interp with
  | "" -> Tree
  | s -> backend_of_string_exn s

let backend_ref = ref (initial_backend ())
let backend () = !backend_ref

let set_backend b =
  backend_ref := b;
  Config.update_default (fun c -> { c with Config.interp = backend_name b })

(* The backend a given execution context asked for: its [interp] field
   when set (per-request choice carried on the context, so even machine
   hooks deep inside a launch honor it), else the process default. *)
let backend_of_ctx (ctx : Interp.ctx) =
  match ctx.Interp.interp with "" -> backend () | s -> backend_of_string_exn s

(* ----- compiled code ----- *)

(* One compiled op: reads/writes the two frames, accounts into the
   context's profile, and may call hooks through the context. *)
type instr = Interp.ctx -> Rtval.t array -> int array -> unit

type code = {
  ngen : int;  (** gen-frame ([Rtval.t]) slot count *)
  nint : int;  (** int-frame (unboxed [int]) slot count *)
  arg_slots : int array;  (** slots of the entry block's parameters *)
  cap_values : Ir.value array;
      (** free values of the unit (defined outside the compiled region);
          resolved from the launching context once per launch *)
  cap_slots : int array;
  body : instr array;
  term_slots : int array;  (** slots of the terminator's operands *)
}

(* Raised by native op compilers to hand the op to the generic fallback.
   Must be raised before the op's structure has been committed to slots in
   any way the fallback could not reproduce (slot allocation itself is
   idempotent, so partial [use_slot]/[def_slot] calls are harmless). *)
exception Punt

type cstate = {
  mutable ngen : int;
  mutable nint : int;
  slots : (int, int) Hashtbl.t;  (** vid -> encoded slot *)
  mutable caps : (Ir.value * int) list;  (** reverse order of first use *)
}

(* A value lives in the int frame iff its static type guarantees its
   runtime representation is [Rtval.Int]. i1 stays in the gen frame: the
   tree-walker represents cmpi results as [Rtval.Bool], and that identity
   must survive pass-through ops (select, yields, returns). *)
let int_class (v : Ir.value) =
  match v.Ir.ty with
  | Types.Index | Types.Scalar (Types.I8 | Types.I16 | Types.I32 | Types.I64) -> true
  | _ -> false

let new_gen st =
  let s = st.ngen in
  st.ngen <- s + 1;
  s

let new_int st =
  let k = st.nint in
  st.nint <- k + 1;
  -1 - k

let new_slot st (v : Ir.value) = if int_class v then new_int st else new_gen st

(* Slot of a value being read. A value never defined inside the unit is a
   capture: it gets a slot filled from the host environment at launch. *)
let use_slot st (v : Ir.value) =
  match Hashtbl.find_opt st.slots v.Ir.vid with
  | Some s -> s
  | None ->
    let s = new_slot st v in
    Hashtbl.add st.slots v.Ir.vid s;
    st.caps <- (v, s) :: st.caps;
    s

(* Slot of a value being defined. Ops are compiled in program order, so in
   well-formed SSA the definition is the first sighting and gets a fresh
   slot. *)
let def_slot st (v : Ir.value) =
  match Hashtbl.find_opt st.slots v.Ir.vid with
  | Some s -> s
  | None ->
    let s = new_slot st v in
    Hashtbl.add st.slots v.Ir.vid s;
    s

(* Bind a value to an existing slot (scf.for results alias the iteration
   argument slots, which hold the final loop-carried values on exit). *)
let alias_slot st (v : Ir.value) slot = Hashtbl.replace st.slots v.Ir.vid slot

let nop_instr : instr = fun _ _ _ -> ()
let rt_true = Rtval.Bool true
let rt_false = Rtval.Bool false

(* ----- frame access (slot ids are compile-time constants, bounds are
   guaranteed by construction, so accesses are unsafe) ----- *)

let geti (gf : Rtval.t array) (iframe : int array) s =
  if s >= 0 then Rtval.as_int (Array.unsafe_get gf s)
  else Array.unsafe_get iframe (-1 - s)

let getf (gf : Rtval.t array) (iframe : int array) s =
  if s >= 0 then Rtval.as_float (Array.unsafe_get gf s)
  else float_of_int (Array.unsafe_get iframe (-1 - s))

let getb (gf : Rtval.t array) (iframe : int array) s =
  if s >= 0 then Rtval.as_bool (Array.unsafe_get gf s)
  else Array.unsafe_get iframe (-1 - s) <> 0

(* Read a slot as an [Rtval.t]; int slots materialize as [Rtval.Int] (the
   representation the tree-walker binds for every int-class value). *)
let get_rt (gf : Rtval.t array) (iframe : int array) s =
  if s >= 0 then Array.unsafe_get gf s else Rtval.Int (Array.unsafe_get iframe (-1 - s))

let set_rt (gf : Rtval.t array) (iframe : int array) s rv =
  if s >= 0 then Array.unsafe_set gf s rv
  else Array.unsafe_set iframe (-1 - s) (Rtval.as_int rv)

(* Store an int result: unboxed into an int slot, boxed into a gen slot. *)
let seti (gf : Rtval.t array) (iframe : int array) s v =
  if s >= 0 then Array.unsafe_set gf s (Rtval.Int v)
  else Array.unsafe_set iframe (-1 - s) v

(* Slot-to-slot copy (loop-carried values, branch yields, select). *)
let move (gf : Rtval.t array) (iframe : int array) dst src =
  if dst >= 0 then Array.unsafe_set gf dst (get_rt gf iframe src)
  else Array.unsafe_set iframe (-1 - dst) (geti gf iframe src)

(* Free values of [op]'s nested regions: operands used under the op's
   entry blocks (the only blocks the interpreter ever evaluates) that are
   not defined inside the op. The generic fallback stages these into the
   context environment so hooks can tree-walk the op's regions. *)
let free_values (op : Ir.op) : Ir.value list =
  if Array.length op.Ir.regions = 0 then []
  else begin
    let defined = Hashtbl.create 64 in
    let seen = Hashtbl.create 16 in
    let acc = ref [] in
    let rec go_region r =
      if Ir.num_blocks r > 0 then begin
        let b = Ir.entry_block r in
        Array.iter (fun (v : Ir.value) -> Hashtbl.replace defined v.Ir.vid ()) b.Ir.args;
        for i = 0 to Ir.num_ops b - 1 do
          Array.iter
            (fun (v : Ir.value) -> Hashtbl.replace defined v.Ir.vid ())
            (Ir.op_at b i).Ir.results
        done;
        for i = 0 to Ir.num_ops b - 1 do
          let o = Ir.op_at b i in
          Array.iter
            (fun (v : Ir.value) ->
              if (not (Hashtbl.mem defined v.Ir.vid)) && not (Hashtbl.mem seen v.Ir.vid)
              then begin
                Hashtbl.add seen v.Ir.vid ();
                acc := v :: !acc
              end)
            o.Ir.operands;
          Array.iter go_region o.Ir.regions
        done
      end
    in
    Array.iter go_region op.Ir.regions;
    List.rev !acc
  end

(* ----- the generic fallback ----- *)

(* Route one op through [Interp.eval_op]: stage its operands (and the free
   values of its nested regions) from the register file into the context
   environment, evaluate, read the results back into their slots. This is
   bit-identical to the tree-walker by construction — the same code runs,
   including all profile accounting, hook dispatch and error behavior. *)
let compile_generic st (op : Ir.op) : instr =
  let operand_binds =
    Array.map (fun (v : Ir.value) -> (v.Ir.vid, use_slot st v)) op.Ir.operands
  in
  let free_binds =
    Array.of_list
      (List.map (fun (v : Ir.value) -> (v.Ir.vid, use_slot st v)) (free_values op))
  in
  let result_binds =
    Array.map (fun (v : Ir.value) -> (v.Ir.vid, def_slot st v)) op.Ir.results
  in
  (* Tree-walk through [Interp.eval_op]: stage operands and free values
     into the environment, evaluate, read the results back into slots. *)
  let slow ctx gf iframe =
    let env = ctx.Interp.env in
    Array.iter (fun (vid, s) -> Hashtbl.replace env vid (get_rt gf iframe s)) operand_binds;
    Array.iter (fun (vid, s) -> Hashtbl.replace env vid (get_rt gf iframe s)) free_binds;
    Interp.eval_op ctx op;
    Array.iter
      (fun (vid, s) ->
        match Hashtbl.find_opt env vid with
        | Some rv -> set_rt gf iframe s rv
        | None -> Interp.err "%s: result %%%d not bound" op.Ir.name vid)
      result_binds
  in
  if Array.length op.Ir.regions > 0 then slow
  else begin
    (* Region-free op: hooks only need the operand values, so try them
       straight off the register file — no environment staging, which is
       the dominant cost of the per-element device ops (mram_read/write)
       kernels execute by the million. Builtin ops never reach hooks
       ([Interp.eval_op] dispatches them by name first), so a [None] here
       means the op is either builtin-generic or an error — both handled
       by the slow path. The [launched_ops] bookkeeping mirrors [eval_op]:
       counted before dispatch, uncounted again if we fall through (the
       slow path's [eval_op] re-counts). *)
    let operand_slots = Array.map snd operand_binds in
    let result_slots = Array.map snd result_binds in
    let n_operands = Array.length operand_slots in
    fun ctx gf iframe ->
      match ctx.Interp.hooks with
      | [] -> slow ctx gf iframe
      | _ -> (
        let ops = Array.make n_operands Rtval.Token in
        for i = 0 to n_operands - 1 do
          Array.unsafe_set ops i
            (get_rt gf iframe (Array.unsafe_get operand_slots i))
        done;
        let p = ctx.Interp.profile in
        p.Profile.launched_ops <- p.Profile.launched_ops + 1;
        match Interp.dispatch_hooks ctx op ops with
        | Some [] ->
          (* the common per-element device ops (DMA, barriers) produce no
             results: return without touching the register file *)
          if Array.length result_slots <> 0 then
            Interp.err "%s: produced 0 values for %d results" op.Ir.name
              (Array.length result_slots)
        | Some vals ->
          let n = List.length vals in
          if n <> Array.length result_slots then
            Interp.err "%s: produced %d values for %d results" op.Ir.name n
              (Array.length result_slots);
          List.iteri
            (fun i rv -> set_rt gf iframe (Array.unsafe_get result_slots i) rv)
            vals
        | None ->
          p.Profile.launched_ops <- p.Profile.launched_ops - 1;
          slow ctx gf iframe)
  end

(* ----- native op compilers ----- *)

(* Same table as the literal dispatch cases of [Interp.eval_op]. *)
let int_binop_spec : string -> (int * (int -> int -> int)) option = function
  | "arith.addi" -> Some (Interp.bucket_alu, ( + ))
  | "arith.subi" -> Some (Interp.bucket_alu, ( - ))
  | "arith.muli" -> Some (Interp.bucket_mul, ( * ))
  | "arith.divsi" -> Some (Interp.bucket_div, Tensor.int_binop "div")
  | "arith.remsi" -> Some (Interp.bucket_div, Tensor.int_binop "rem")
  | "arith.minsi" -> Some (Interp.bucket_alu, min)
  | "arith.maxsi" -> Some (Interp.bucket_alu, max)
  | "arith.andi" -> Some (Interp.bucket_alu, ( land ))
  | "arith.ori" -> Some (Interp.bucket_alu, ( lor ))
  | "arith.xori" -> Some (Interp.bucket_alu, ( lxor ))
  | "arith.shli" -> Some (Interp.bucket_alu, ( lsl ))
  | "arith.shrsi" -> Some (Interp.bucket_alu, ( asr ))
  | _ -> None

let float_binop_fn : string -> (float -> float -> float) option = function
  | "arith.addf" -> Some ( +. )
  | "arith.subf" -> Some ( -. )
  | "arith.mulf" -> Some ( *. )
  | "arith.divf" -> Some ( /. )
  | "arith.minf" -> Some Float.min
  | "arith.maxf" -> Some Float.max
  | _ -> None

let rec compile_op st (op : Ir.op) : instr =
  match compile_native st op with
  | Some i -> i
  | None -> compile_generic st op
  | exception (Punt | Interp.Interp_error _ | Invalid_argument _ | Not_found | Failure _)
    ->
    (* decode failed: let the tree-walker raise (or not) at runtime *)
    compile_generic st op

and compile_native st (op : Ir.op) : instr option =
  match op.Ir.name with
  | "arith.constant" -> Some (compile_constant st op)
  | "arith.cmpi" -> Some (compile_cmpi st op)
  | "arith.select" -> Some (compile_select st op)
  | "arith.index_cast" -> Some (compile_index_cast st op)
  | "scf.for" -> Some (compile_for st op)
  | "scf.if" -> Some (compile_if st op)
  | "scf.parallel" -> Some (compile_parallel st op)
  | "memref.alloc" | "upmem.wram_alloc" -> Some (compile_alloc st op)
  | "memref.load" | "tensor.extract" -> Some (compile_indexed_load st op)
  | "memref.store" -> Some (compile_store st op)
  | name -> (
    match int_binop_spec name with
    | Some (bucket, f) -> Some (compile_int_bin st op bucket f)
    | None -> (
      match float_binop_fn name with
      | Some f -> Some (compile_float_bin st op f)
      | None -> None))

and compile_constant st op =
  match Ir.attr_exn op "value" with
  | Attr.Int i ->
    let n = Tensor.wrap (Interp.scalar_result_dtype op) i in
    let r = def_slot st op.Ir.results.(0) in
    if r < 0 then begin
      let ri = -1 - r in
      fun ctx _gf iframe ->
        let p = ctx.Interp.profile in
        p.Profile.launched_ops <- p.Profile.launched_ops + 1;
        Array.unsafe_set iframe ri n
    end
    else begin
      (* i1 constants stay in the gen frame as the shared [Rtval.Int] the
         tree-walker would bind *)
      let rv = Rtval.Int n in
      fun ctx gf _iframe ->
        let p = ctx.Interp.profile in
        p.Profile.launched_ops <- p.Profile.launched_ops + 1;
        Array.unsafe_set gf r rv
    end
  | Attr.Float f ->
    let rv = Rtval.Float f in
    let r = def_slot st op.Ir.results.(0) in
    fun ctx gf iframe ->
      let p = ctx.Interp.profile in
      p.Profile.launched_ops <- p.Profile.launched_ops + 1;
      set_rt gf iframe r rv
  | _ -> raise Punt

and compile_int_bin st op bucket f =
  let dt = Interp.scalar_result_dtype op in
  let a = use_slot st op.Ir.operands.(0) in
  let b = use_slot st op.Ir.operands.(1) in
  let r = def_slot st op.Ir.results.(0) in
  if a < 0 && b < 0 && r < 0 then begin
    (* fully monomorphic: unboxed operands, unboxed result, wrap
       specialized on the result dtype — zero allocation *)
    let ai = -1 - a and bi = -1 - b and ri = -1 - r in
    match dt with
    | Types.I64 ->
      fun ctx _gf iframe ->
        let p = ctx.Interp.profile in
        p.Profile.launched_ops <- p.Profile.launched_ops + 1;
        Interp.account_int_binop p bucket;
        Array.unsafe_set iframe ri
          (f (Array.unsafe_get iframe ai) (Array.unsafe_get iframe bi))
    | _ ->
      let bits = Types.dtype_bits dt in
      let mask = (1 lsl bits) - 1
      and half = 1 lsl (bits - 1)
      and full = 1 lsl bits in
      fun ctx _gf iframe ->
        let p = ctx.Interp.profile in
        p.Profile.launched_ops <- p.Profile.launched_ops + 1;
        Interp.account_int_binop p bucket;
        let v = f (Array.unsafe_get iframe ai) (Array.unsafe_get iframe bi) land mask in
        Array.unsafe_set iframe ri (if v >= half then v - full else v)
  end
  else
    fun ctx gf iframe ->
      let p = ctx.Interp.profile in
      p.Profile.launched_ops <- p.Profile.launched_ops + 1;
      Interp.account_int_binop p bucket;
      seti gf iframe r (Tensor.wrap dt (f (geti gf iframe a) (geti gf iframe b)))

and compile_float_bin st op f =
  let a = use_slot st op.Ir.operands.(0) in
  let b = use_slot st op.Ir.operands.(1) in
  let r = def_slot st op.Ir.results.(0) in
  fun ctx gf iframe ->
    let p = ctx.Interp.profile in
    p.Profile.launched_ops <- p.Profile.launched_ops + 1;
    p.Profile.alu_ops <- p.Profile.alu_ops + 1;
    set_rt gf iframe r (Rtval.Float (f (getf gf iframe a) (getf gf iframe b)))

and compile_cmpi st op =
  let pred = Interp.decode_cmpi_predicate op in
  let a = use_slot st op.Ir.operands.(0) in
  let b = use_slot st op.Ir.operands.(1) in
  let r = def_slot st op.Ir.results.(0) in
  if a < 0 && b < 0 && r >= 0 then begin
    let ai = -1 - a and bi = -1 - b in
    fun ctx gf iframe ->
      let p = ctx.Interp.profile in
      p.Profile.launched_ops <- p.Profile.launched_ops + 1;
      let av = Array.unsafe_get iframe ai and bv = Array.unsafe_get iframe bi in
      p.Profile.alu_ops <- p.Profile.alu_ops + 1;
      Array.unsafe_set gf r (if pred av bv then rt_true else rt_false)
  end
  else
    fun ctx gf iframe ->
      let p = ctx.Interp.profile in
      p.Profile.launched_ops <- p.Profile.launched_ops + 1;
      let av = geti gf iframe a and bv = geti gf iframe b in
      p.Profile.alu_ops <- p.Profile.alu_ops + 1;
      set_rt gf iframe r (if pred av bv then rt_true else rt_false)

and compile_select st op =
  let c = use_slot st op.Ir.operands.(0) in
  let t = use_slot st op.Ir.operands.(1) in
  let e = use_slot st op.Ir.operands.(2) in
  let r = def_slot st op.Ir.results.(0) in
  fun ctx gf iframe ->
    let p = ctx.Interp.profile in
    p.Profile.launched_ops <- p.Profile.launched_ops + 1;
    p.Profile.alu_ops <- p.Profile.alu_ops + 1;
    move gf iframe r (if getb gf iframe c then t else e)

and compile_index_cast st op =
  let a = use_slot st op.Ir.operands.(0) in
  let r = def_slot st op.Ir.results.(0) in
  fun ctx gf iframe ->
    let p = ctx.Interp.profile in
    p.Profile.launched_ops <- p.Profile.launched_ops + 1;
    seti gf iframe r (geti gf iframe a)

and compile_alloc st op =
  match (Ir.result op 0).Ir.ty with
  | Types.MemRef (shape, dt) ->
    let r = def_slot st op.Ir.results.(0) in
    fun ctx gf _iframe ->
      let p = ctx.Interp.profile in
      p.Profile.launched_ops <- p.Profile.launched_ops + 1;
      Array.unsafe_set gf r (Rtval.Memref (Interp.alloc_tensor ctx shape dt))
  | _ -> raise Punt

(* memref.load / tensor.extract. Ranks 1 and 2 are specialized to flat
   indexing with the bounds checks of [Util.linearize] inlined (same
   failure message) and, when every scalar involved is int-class, direct
   unboxed access to integer payloads — no [Rtval] boxing, no payload
   dispatch on the fast path. Other ranks build the index array per access
   like the tree-walker does. *)
and compile_indexed_load st op =
  let n_idx = Ir.num_operands op - 1 in
  if n_idx < 0 then raise Punt;
  (* float elements take the generic path: the specializations below are
     unboxed-int throughout *)
  (match (Ir.result op 0).Ir.ty with
  | Types.Scalar dt when Types.is_float_dtype dt -> raise Punt
  | _ -> ());
  let m_s = use_slot st op.Ir.operands.(0) in
  let idx_s = Array.init n_idx (fun i -> use_slot st op.Ir.operands.(i + 1)) in
  let r = def_slot st op.Ir.results.(0) in
  match idx_s with
  | [| i0 |] when m_s >= 0 && i0 < 0 && r < 0 ->
    let i0i = -1 - i0 and ri = -1 - r in
    fun ctx gf iframe ->
      let p = ctx.Interp.profile in
      p.Profile.launched_ops <- p.Profile.launched_ops + 1;
      let m = Rtval.as_tensor (Array.unsafe_get gf m_s) in
      let i = Array.unsafe_get iframe i0i in
      p.Profile.loads <- p.Profile.loads + 1;
      Array.unsafe_set iframe ri
        (let shape = m.Tensor.shape in
         if Array.length shape = 1 then begin
           if i < 0 || i >= Array.unsafe_get shape 0 then
             invalid_arg "Util.linearize: out of bounds";
           match m.Tensor.data with
           | Tensor.I a -> Array.unsafe_get a i
           | _ -> Tensor.get_int m i
         end
         else Tensor.get m [| i |])
  | [| i0 |] ->
    fun ctx gf iframe ->
      let p = ctx.Interp.profile in
      p.Profile.launched_ops <- p.Profile.launched_ops + 1;
      let m = Rtval.as_tensor (get_rt gf iframe m_s) in
      let i = geti gf iframe i0 in
      p.Profile.loads <- p.Profile.loads + 1;
      seti gf iframe r
        (if Array.length m.Tensor.shape = 1 then begin
           if i < 0 || i >= m.Tensor.shape.(0) then
             invalid_arg "Util.linearize: out of bounds";
           Tensor.get_int m i
         end
         else Tensor.get m [| i |])
  | [| i0; i1 |] when m_s >= 0 && i0 < 0 && i1 < 0 && r < 0 ->
    let i0i = -1 - i0 and i1i = -1 - i1 and ri = -1 - r in
    fun ctx gf iframe ->
      let p = ctx.Interp.profile in
      p.Profile.launched_ops <- p.Profile.launched_ops + 1;
      let m = Rtval.as_tensor (Array.unsafe_get gf m_s) in
      let a = Array.unsafe_get iframe i0i in
      let b = Array.unsafe_get iframe i1i in
      p.Profile.loads <- p.Profile.loads + 1;
      Array.unsafe_set iframe ri
        (let shape = m.Tensor.shape in
         if Array.length shape = 2 then begin
           if
             a < 0
             || a >= Array.unsafe_get shape 0
             || b < 0
             || b >= Array.unsafe_get shape 1
           then invalid_arg "Util.linearize: out of bounds";
           let flat = (a * Array.unsafe_get shape 1) + b in
           match m.Tensor.data with
           | Tensor.I arr -> Array.unsafe_get arr flat
           | _ -> Tensor.get_int m flat
         end
         else Tensor.get m [| a; b |])
  | [| i0; i1 |] ->
    fun ctx gf iframe ->
      let p = ctx.Interp.profile in
      p.Profile.launched_ops <- p.Profile.launched_ops + 1;
      let m = Rtval.as_tensor (get_rt gf iframe m_s) in
      let a = geti gf iframe i0 in
      let b = geti gf iframe i1 in
      p.Profile.loads <- p.Profile.loads + 1;
      seti gf iframe r
        (let shape = m.Tensor.shape in
         if Array.length shape = 2 then begin
           if a < 0 || a >= shape.(0) || b < 0 || b >= shape.(1) then
             invalid_arg "Util.linearize: out of bounds";
           Tensor.get_int m ((a * shape.(1)) + b)
         end
         else Tensor.get m [| a; b |])
  | _ ->
    fun ctx gf iframe ->
      let p = ctx.Interp.profile in
      p.Profile.launched_ops <- p.Profile.launched_ops + 1;
      let m = Rtval.as_tensor (get_rt gf iframe m_s) in
      let idx = Array.map (fun s -> geti gf iframe s) idx_s in
      p.Profile.loads <- p.Profile.loads + 1;
      seti gf iframe r (Tensor.get m idx)

and compile_store st op =
  let n_idx = Ir.num_operands op - 2 in
  if n_idx < 0 then raise Punt;
  (match op.Ir.operands.(0).Ir.ty with
  | Types.Scalar dt when Types.is_float_dtype dt -> raise Punt
  | _ -> ());
  let v_s = use_slot st op.Ir.operands.(0) in
  let m_s = use_slot st op.Ir.operands.(1) in
  let idx_s = Array.init n_idx (fun i -> use_slot st op.Ir.operands.(i + 2)) in
  match idx_s with
  | [| i0 |] when m_s >= 0 && v_s < 0 && i0 < 0 ->
    let vi = -1 - v_s and i0i = -1 - i0 in
    fun ctx gf iframe ->
      let p = ctx.Interp.profile in
      p.Profile.launched_ops <- p.Profile.launched_ops + 1;
      let v = Array.unsafe_get iframe vi in
      let m = Rtval.as_tensor (Array.unsafe_get gf m_s) in
      let i = Array.unsafe_get iframe i0i in
      p.Profile.stores <- p.Profile.stores + 1;
      let shape = m.Tensor.shape in
      if Array.length shape = 1 then begin
        if i < 0 || i >= Array.unsafe_get shape 0 then
          invalid_arg "Util.linearize: out of bounds";
        match m.Tensor.data with
        | Tensor.I a -> Array.unsafe_set a i (Tensor.wrap m.Tensor.dtype v)
        | _ -> Tensor.set_int m i v
      end
      else Tensor.set m [| i |] v
  | [| i0 |] ->
    fun ctx gf iframe ->
      let p = ctx.Interp.profile in
      p.Profile.launched_ops <- p.Profile.launched_ops + 1;
      let v = geti gf iframe v_s in
      let m = Rtval.as_tensor (get_rt gf iframe m_s) in
      let i = geti gf iframe i0 in
      p.Profile.stores <- p.Profile.stores + 1;
      if Array.length m.Tensor.shape = 1 then begin
        if i < 0 || i >= m.Tensor.shape.(0) then
          invalid_arg "Util.linearize: out of bounds";
        Tensor.set_int m i v
      end
      else Tensor.set m [| i |] v
  | [| i0; i1 |] when m_s >= 0 && v_s < 0 && i0 < 0 && i1 < 0 ->
    let vi = -1 - v_s and i0i = -1 - i0 and i1i = -1 - i1 in
    fun ctx gf iframe ->
      let p = ctx.Interp.profile in
      p.Profile.launched_ops <- p.Profile.launched_ops + 1;
      let v = Array.unsafe_get iframe vi in
      let m = Rtval.as_tensor (Array.unsafe_get gf m_s) in
      let a = Array.unsafe_get iframe i0i in
      let b = Array.unsafe_get iframe i1i in
      p.Profile.stores <- p.Profile.stores + 1;
      let shape = m.Tensor.shape in
      if Array.length shape = 2 then begin
        if
          a < 0
          || a >= Array.unsafe_get shape 0
          || b < 0
          || b >= Array.unsafe_get shape 1
        then invalid_arg "Util.linearize: out of bounds";
        let flat = (a * Array.unsafe_get shape 1) + b in
        match m.Tensor.data with
        | Tensor.I arr -> Array.unsafe_set arr flat (Tensor.wrap m.Tensor.dtype v)
        | _ -> Tensor.set_int m flat v
      end
      else Tensor.set m [| a; b |] v
  | [| i0; i1 |] ->
    fun ctx gf iframe ->
      let p = ctx.Interp.profile in
      p.Profile.launched_ops <- p.Profile.launched_ops + 1;
      let v = geti gf iframe v_s in
      let m = Rtval.as_tensor (get_rt gf iframe m_s) in
      let a = geti gf iframe i0 in
      let b = geti gf iframe i1 in
      p.Profile.stores <- p.Profile.stores + 1;
      let shape = m.Tensor.shape in
      if Array.length shape = 2 then begin
        if a < 0 || a >= shape.(0) || b < 0 || b >= shape.(1) then
          invalid_arg "Util.linearize: out of bounds";
        Tensor.set_int m ((a * shape.(1)) + b) v
      end
      else Tensor.set m [| a; b |] v
  | _ ->
    fun ctx gf iframe ->
      let p = ctx.Interp.profile in
      p.Profile.launched_ops <- p.Profile.launched_ops + 1;
      let v = geti gf iframe v_s in
      let m = Rtval.as_tensor (get_rt gf iframe m_s) in
      let idx = Array.map (fun s -> geti gf iframe s) idx_s in
      p.Profile.stores <- p.Profile.stores + 1;
      Tensor.set m idx v

(* Compile a block's ops in program order (order matters: a definition
   must claim its slot before any use, otherwise the use would be
   misclassified as a capture). Returns the instruction sequence and, when
   the block ends in a terminator, the slots of the terminator's operands
   (the block's results). Terminators are not instructions — exactly like
   [Interp.eval_block], they are never dispatched or accounted. *)
and compile_block st (block : Ir.block) : instr array * int array option =
  let n = Ir.num_ops block in
  if n = 0 then ([||], None)
  else begin
    let last = Ir.op_at block (n - 1) in
    if Interp.is_terminator last then begin
      let body = Array.make (n - 1) nop_instr in
      for i = 0 to n - 2 do
        body.(i) <- compile_op st (Ir.op_at block i)
      done;
      let ts = Array.map (fun v -> use_slot st v) last.Ir.operands in
      (body, Some ts)
    end
    else begin
      let body = Array.make n nop_instr in
      for i = 0 to n - 1 do
        body.(i) <- compile_op st (Ir.op_at block i)
      done;
      (body, None)
    end
  end

and compile_for st op =
  if Ir.num_operands op < 3 || Array.length op.Ir.regions <> 1 then raise Punt;
  let n_res = Array.length op.Ir.results in
  if Ir.num_operands op <> n_res + 3 then raise Punt;
  let block = Ir.entry_block op.Ir.regions.(0) in
  if Array.length block.Ir.args <> n_res + 1 then raise Punt;
  (* the loop-carried arity must be consistent, else the tree-walker's
     per-iteration region evaluation raises — let it *)
  let nops = Ir.num_ops block in
  (if nops = 0 then begin if n_res <> 0 then raise Punt end
   else
     let last = Ir.op_at block (nops - 1) in
     if Interp.is_terminator last then begin
       if Array.length last.Ir.operands <> n_res then raise Punt
     end
     else if n_res <> 0 then raise Punt);
  let lb_s = use_slot st op.Ir.operands.(0) in
  let ub_s = use_slot st op.Ir.operands.(1) in
  let step_s = use_slot st op.Ir.operands.(2) in
  let init_s = Array.init n_res (fun i -> use_slot st op.Ir.operands.(i + 3)) in
  let iv_s = def_slot st block.Ir.args.(0) in
  let iter_s = Array.init n_res (fun i -> def_slot st block.Ir.args.(i + 1)) in
  let body, term = compile_block st block in
  let yield_s = match term with Some a -> a | None -> [||] in
  (* a yield operand may be an iteration argument (slot permutation), so
     loop-carried values go through scratch slots of the matching class *)
  let scratch =
    Array.map (fun y -> if y >= 0 then new_gen st else new_int st) yield_s
  in
  Array.iteri (fun i v -> alias_slot st v iter_s.(i)) op.Ir.results;
  let nb = Array.length body in
  let ny = Array.length yield_s in
  fun ctx gf iframe ->
    let p = ctx.Interp.profile in
    p.Profile.launched_ops <- p.Profile.launched_ops + 1;
    let lb = geti gf iframe lb_s
    and ub = geti gf iframe ub_s
    and step = geti gf iframe step_s in
    if step <= 0 then Interp.err "scf.for: non-positive step %d" step;
    for k = 0 to n_res - 1 do
      move gf iframe iter_s.(k) init_s.(k)
    done;
    let i = ref lb in
    while !i < ub do
      p.Profile.alu_ops <- p.Profile.alu_ops + 1 (* induction update/compare *);
      Interp.check_steps ctx "scf.for";
      seti gf iframe iv_s !i;
      for j = 0 to nb - 1 do
        body.(j) ctx gf iframe
      done;
      for k = 0 to ny - 1 do
        move gf iframe scratch.(k) yield_s.(k)
      done;
      for k = 0 to ny - 1 do
        move gf iframe iter_s.(k) scratch.(k)
      done;
      i := !i + step
    done

and compile_if st op =
  if Ir.num_operands op < 1 then raise Punt;
  let n_res = Array.length op.Ir.results in
  let nregions = Array.length op.Ir.regions in
  (* a missing branch yields no values; fine only for a result-less op *)
  if n_res > 0 && nregions < 2 then raise Punt;
  let check_branch ri =
    if ri < nregions then begin
      let block = Ir.entry_block op.Ir.regions.(ri) in
      if Array.length block.Ir.args <> 0 then raise Punt;
      let nops = Ir.num_ops block in
      if nops = 0 then begin if n_res <> 0 then raise Punt end
      else
        let last = Ir.op_at block (nops - 1) in
        if Interp.is_terminator last then begin
          if Array.length last.Ir.operands <> n_res then raise Punt
        end
        else if n_res <> 0 then raise Punt
    end
  in
  check_branch 0;
  check_branch 1;
  let c_s = use_slot st op.Ir.operands.(0) in
  let compile_branch ri =
    if ri >= nregions then None
    else begin
      let body, term = compile_block st (Ir.entry_block op.Ir.regions.(ri)) in
      let ys = match term with Some a -> a | None -> [||] in
      Some (body, ys)
    end
  in
  let then_b = compile_branch 0 in
  let else_b = compile_branch 1 in
  let res_s = Array.map (fun v -> def_slot st v) op.Ir.results in
  fun ctx gf iframe ->
    let p = ctx.Interp.profile in
    p.Profile.launched_ops <- p.Profile.launched_ops + 1;
    let c = getb gf iframe c_s in
    match if c then then_b else else_b with
    | None -> ()
    | Some (body, ys) ->
      for j = 0 to Array.length body - 1 do
        body.(j) ctx gf iframe
      done;
      for k = 0 to Array.length ys - 1 do
        move gf iframe res_s.(k) ys.(k)
      done

and compile_parallel st op =
  if Array.length op.Ir.results <> 0 then raise Punt;
  if Array.length op.Ir.regions <> 1 then raise Punt;
  let n_dims = Ir.num_operands op / 3 in
  let block = Ir.entry_block op.Ir.regions.(0) in
  if Array.length block.Ir.args <> n_dims then raise Punt;
  let lb_s = Array.init n_dims (fun d -> use_slot st op.Ir.operands.(3 * d)) in
  let ub_s = Array.init n_dims (fun d -> use_slot st op.Ir.operands.((3 * d) + 1)) in
  let st_s = Array.init n_dims (fun d -> use_slot st op.Ir.operands.((3 * d) + 2)) in
  let arg_s = Array.map (fun v -> def_slot st v) block.Ir.args in
  let body, _term = compile_block st block in
  let nb = Array.length body in
  fun ctx gf iframe ->
    let p = ctx.Interp.profile in
    p.Profile.launched_ops <- p.Profile.launched_ops + 1;
    let lb = Array.map (fun s -> geti gf iframe s) lb_s in
    let ub = Array.map (fun s -> geti gf iframe s) ub_s in
    let step = Array.map (fun s -> geti gf iframe s) st_s in
    (* no per-iteration accounting, exactly like the tree-walker *)
    let rec go d =
      if d = n_dims then begin
        Interp.check_steps ctx "scf.parallel";
        for j = 0 to nb - 1 do
          body.(j) ctx gf iframe
        done
      end
      else begin
        let i = ref lb.(d) in
        while !i < ub.(d) do
          seti gf iframe arg_s.(d) !i;
          go (d + 1);
          i := !i + step.(d)
        done
      end
    in
    go 0

(* ----- unit compilation, cache, execution ----- *)

let compile_unit (region : Ir.region) : code =
  let st = { ngen = 0; nint = 0; slots = Hashtbl.create 64; caps = [] } in
  let block = Ir.entry_block region in
  let arg_slots = Array.map (fun v -> def_slot st v) block.Ir.args in
  let body, term = compile_block st block in
  let term_slots = match term with Some a -> a | None -> [||] in
  let caps = Array.of_list (List.rev st.caps) in
  {
    ngen = st.ngen;
    nint = st.nint;
    arg_slots;
    cap_values = Array.map fst caps;
    cap_slots = Array.map snd caps;
    body;
    term_slots;
  }

(* Compiled units cached by the entry block's identity. Hooks are not part
   of the key: compiled closures resolve hooks through the executing
   context at runtime, so the same code serves any hook stack. The cache
   is mutex-protected — kernels are compiled once and then shared
   read-only across all DPU-lane domains. In a long-lived server the cache
   is cross-request state (a request re-running a cached module hits it),
   so it carries hit/miss/eviction counters and a size cap: at
   [max_cache_entries] the table is bulk-reset (block ids are dense and
   never reused, so there is no better victim order than "everything";
   re-compilation is cheap relative to execution). *)
let cache : (int, code) Hashtbl.t = Hashtbl.create 64
let cache_mutex = Mutex.create ()
let max_cache_entries = ref 1024

type cache_stats = { hits : int; misses : int; evictions : int; entries : int }

let stats_hits = ref 0
let stats_misses = ref 0
let stats_evictions = ref 0

let cache_stats () =
  Mutex.lock cache_mutex;
  let s =
    {
      hits = !stats_hits;
      misses = !stats_misses;
      evictions = !stats_evictions;
      entries = Hashtbl.length cache;
    }
  in
  Mutex.unlock cache_mutex;
  s

let set_max_cache_entries n = max_cache_entries := max 1 n

let clear_cache () =
  Mutex.lock cache_mutex;
  Hashtbl.reset cache;
  Mutex.unlock cache_mutex

let get_code (region : Ir.region) : code =
  let key = (Ir.entry_block region).Ir.bid in
  (* codegen wall time on a miss, observed after the mutex is released
     so the metrics registry is never entered with the cache lock held *)
  let miss_s = ref (-1.0) in
  let code =
    Mutex.lock cache_mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock cache_mutex)
      (fun () ->
        match Hashtbl.find_opt cache key with
        | Some c ->
          incr stats_hits;
          c
        | None ->
          incr stats_misses;
          if Hashtbl.length cache >= !max_cache_entries then begin
            stats_evictions := !stats_evictions + Hashtbl.length cache;
            Hashtbl.reset cache
          end;
          let t0 = if Trace.Metrics.enabled () then Unix.gettimeofday () else 0.0 in
          let c = compile_unit region in
          if t0 > 0.0 then miss_s := Unix.gettimeofday () -. t0;
          Hashtbl.add cache key c;
          c)
  in
  if !miss_s >= 0.0 && Trace.Metrics.enabled () then begin
    Trace.Metrics.incr "cinm_codegen_regions_total";
    Trace.Metrics.observe "cinm_codegen_seconds" !miss_s
  end;
  code

let exec (code : code) ctx (caps : Rtval.t array) (args : Rtval.t list) : Rtval.t list =
  let n_args = List.length args in
  if Array.length code.arg_slots <> n_args then
    Interp.err "region arity mismatch: %d args for %d params" n_args
      (Array.length code.arg_slots);
  let gf = Array.make code.ngen Rtval.Token in
  let iframe = Array.make code.nint 0 in
  Array.iteri (fun i rv -> set_rt gf iframe code.cap_slots.(i) rv) caps;
  List.iteri (fun i rv -> set_rt gf iframe code.arg_slots.(i) rv) args;
  let body = code.body in
  for j = 0 to Array.length body - 1 do
    body.(j) ctx gf iframe
  done;
  Array.to_list (Array.map (fun s -> get_rt gf iframe s) code.term_slots)

(* ----- launch API ----- *)

type prepared =
  | Tree_region of Ir.region
  | Compiled_code of code * Rtval.t array

(* Resolve a region to something executable under the selected backend.
   For the compiled backend this compiles (or fetches) the unit and
   resolves its captured values from the launching context once — the
   result is shared read-only across lanes, each of which executes on its
   own register file. *)
let prepare ctx (region : Ir.region) : prepared =
  match backend_of_ctx ctx with
  | Tree -> Tree_region region
  | Compiled ->
    let code = get_code region in
    Compiled_code (code, Array.map (fun v -> Interp.lookup ctx v) code.cap_values)

let is_compiled = function Compiled_code _ -> true | Tree_region _ -> false

let run prep ctx args =
  match prep with
  | Tree_region region -> Interp.eval_region ctx region args
  | Compiled_code (code, caps) -> exec code ctx caps args

let run_region ctx region args = run (prepare ctx region) ctx args

(* ----- entry points (drop-in for Interp.run_func / run_in_module) ----- *)

let run_func ?(hooks = []) ?profile ?modul ?max_steps ?config (f : Func.t)
    (args : Rtval.t list) : Rtval.t list * Profile.t =
  let chosen =
    match config with
    | Some c when c.Config.interp <> "" -> backend_of_string_exn c.Config.interp
    | _ -> backend ()
  in
  match chosen with
  | Tree -> Interp.run_func ~hooks ?profile ?modul ?max_steps ?config f args
  | Compiled ->
    let ctx =
      Interp.create_ctx ~hooks ?profile ?modul ~fname:f.Func.fname ?max_steps
        ?config ()
    in
    let code = get_code f.Func.body in
    let caps = Array.map (fun v -> Interp.lookup ctx v) code.cap_values in
    let results = exec code ctx caps args in
    (results, ctx.Interp.profile)

let run_in_module ?(hooks = []) ?profile ?max_steps ?config (m : Func.modul)
    name args =
  let f = Func.find_func_exn m name in
  run_func ~hooks ?profile ~modul:m ?max_steps ?config f args
