(** Closure-compiling executor for the CINM IR.

    Compiles a region once into a tree of OCaml closures over a flat
    register file — every SSA value resolved to a fixed integer slot, op
    dispatch / binop selection / [arith.cmpi] predicate decode / attribute
    decoding all done at compile time — and executes it per launch with no
    hashtable on the hot path. Compiled units are cached and shared
    read-only across DPU-lane domains; each lane executes on a private
    register file.

    Profile accounting is bit-identical to {!Interp}: natively compiled
    ops replay the exact increments of their [Interp.eval_op] case, and
    every op the compiler does not fully understand (bulk tensor ops,
    device ops handled by machine hooks, malformed ops) falls back to a
    closure that routes that single op through [Interp.eval_op]. The
    tree-walking interpreter remains the reference backend, selectable via
    [CINM_INTERP=tree|compiled] (default [tree]) or {!set_backend}. *)

open Cinm_ir

type backend = Tree | Compiled

val backend : unit -> backend
val set_backend : backend -> unit
val backend_of_string : string -> backend option
val backend_name : backend -> string

(** The backend an execution context asked for: its [interp] field when
    set (per-request choice, see {!Cinm_support.Config}), else the
    process default. @raise Invalid_argument on an unknown name. *)
val backend_of_ctx : Interp.ctx -> backend

(** A region resolved for execution under the currently selected backend:
    either the region itself (tree) or cached compiled code with its
    captured values resolved from the preparing context. *)
type prepared

(** Resolve [region] for execution. Under the compiled backend this
    compiles the unit (or fetches it from the cache) and resolves its
    captured values from [ctx] once; the result may then be executed many
    times, concurrently, each call on its own register file.
    @raise Interp.Interp_error if a captured value is unbound in [ctx]. *)
val prepare : Interp.ctx -> Ir.region -> prepared

val is_compiled : prepared -> bool

(** Execute a prepared region with the given block-argument values;
    returns the operands of the terminator, like {!Interp.eval_region}. *)
val run : prepared -> Interp.ctx -> Rtval.t list -> Rtval.t list

(** [prepare] + [run] in one step, for single-shot region execution. *)
val run_region : Interp.ctx -> Ir.region -> Rtval.t list -> Rtval.t list

(** Drop all cached compiled units. Needed only if IR blocks are mutated
    after having been executed (block identity is the cache key). *)
val clear_cache : unit -> unit

(** Cumulative counters of the compiled-unit cache since process start
    (or the last {!clear_cache}, for [entries]). In a long-lived server
    the cache is cross-request state: these are exported through the
    daemon's [stats] endpoint. *)
type cache_stats = { hits : int; misses : int; evictions : int; entries : int }

val cache_stats : unit -> cache_stats

(** Cap on cached compiled units; at the cap the cache is bulk-reset
    (counted under [evictions]). Default 1024. *)
val set_max_cache_entries : int -> unit

(** Backend-dispatching drop-in for {!Interp.run_func}. [max_steps]
    bounds the watchdog budget for this run (default: the
    [CINM_MAX_STEPS] setting); the diagnostic is identical under both
    backends. [config] supplies the per-request backend choice (its
    [interp] field, when non-empty, overrides the process default),
    watchdog budget, deadline and cancellation flag. *)
val run_func :
  ?hooks:Interp.hook list ->
  ?profile:Profile.t ->
  ?modul:Func.modul ->
  ?max_steps:int ->
  ?config:Cinm_support.Config.t ->
  Func.t ->
  Rtval.t list ->
  Rtval.t list * Profile.t

(** Backend-dispatching drop-in for {!Interp.run_in_module}. *)
val run_in_module :
  ?hooks:Interp.hook list ->
  ?profile:Profile.t ->
  ?max_steps:int ->
  ?config:Cinm_support.Config.t ->
  Func.modul ->
  string ->
  Rtval.t list ->
  Rtval.t list * Profile.t
