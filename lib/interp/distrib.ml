(* Data distribution between a host tensor and per-PU buffers, shared by
   the reference CNM executor and the UPMEM simulator. The "map" names
   match the cnm.scatter attribute. All four maps and the gather reduce to
   {!Tensor.blit}/{!Tensor.blit_strided}, whose fallback loop preserves the
   exact elementwise [set_int dst (get_int src)] semantics (and bounds
   errors) of the original per-element copies. *)

let scatter ?(halo = 0) ~map (t : Tensor.t) (per_pu : Tensor.t array) =
  let pus = Array.length per_pu in
  if pus = 0 then invalid_arg "Distrib.scatter: no PUs";
  let per_pu_elems = Tensor.num_elements per_pu.(0) in
  match map with
  | "overlap" ->
    (* block distribution with [halo] elements of overlap between
       neighbouring buffers (sliding-window kernels) *)
    let chunk = per_pu_elems - halo in
    for p = 0 to pus - 1 do
      Tensor.blit t (p * chunk) per_pu.(p) 0 per_pu_elems
    done
  | "broadcast" ->
    for p = 0 to pus - 1 do
      Tensor.blit t 0 per_pu.(p) 0 per_pu_elems
    done
  | "block" ->
    for p = 0 to pus - 1 do
      Tensor.blit t (p * per_pu_elems) per_pu.(p) 0 per_pu_elems
    done
  | "cyclic" ->
    for p = 0 to pus - 1 do
      Tensor.blit_strided t p pus per_pu.(p) 0 per_pu_elems
    done
  | m -> invalid_arg ("Distrib.scatter: unknown map " ^ m)

let gather (per_pu : Tensor.t array) ~result_shape ~dtype =
  let pus = Array.length per_pu in
  if pus = 0 then invalid_arg "Distrib.gather: no PUs";
  let per_pu_elems = Tensor.num_elements per_pu.(0) in
  let out = Tensor.zeros result_shape dtype in
  for p = 0 to pus - 1 do
    Tensor.blit per_pu.(p) 0 out (p * per_pu_elems) per_pu_elems
  done;
  out
