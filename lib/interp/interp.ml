(* Reference interpreter for the CINM IR. Executes host-level dialects
   (arith, scf, tensor, memref, linalg, tosa, cinm) directly; device
   dialects (cnm, cim, upmem, memristor) are delegated to hooks installed
   by the simulators. Every executed operation is accounted in a
   [Profile.t], from which the timing models derive simulated time. *)

open Cinm_ir
module Util = Cinm_support.Util
module Config = Cinm_support.Config

(* Execution identity: which processing element the interpreter is
   currently simulating. [Host] is ordinary host execution; device
   simulators extend this type with their own per-PU state (e.g. the
   UPMEM machine adds a per-(DPU, tasklet) lane) and install it on the
   context they evaluate kernel regions with. Keeping the identity in the
   context — instead of mutable fields on the machine — is what lets the
   simulators evaluate many PUs concurrently on OCaml 5 domains. *)
type device_state = ..

type device_state += Host

type ctx = {
  env : (int, Rtval.t) Hashtbl.t;
  profile : Profile.t;
  hooks : hook list;
  modul : Func.modul option;  (** for func.call *)
  device : device_state;
  cmpi_preds : (int, int -> int -> bool) Hashtbl.t;
      (** per-op [arith.cmpi] predicate decode cache, keyed by [oid]. Kept
          on the context (not a global) so concurrent device lanes never
          share a table; lane contexts must install a fresh one. *)
  fname : string;  (** function being executed, for watchdog diagnostics *)
  max_steps : int;
      (** watchdog: abort once [steps] exceeds this (0 = unlimited).
          Checked on loop back-edges and calls only, so straight-line
          code pays nothing. *)
  steps : int ref;
      (** back-edges and calls taken so far; a [ref] (not a mutable
          field) so [{ctx with fname}] copies for callees share it *)
  deadline : float;
      (** absolute host time after which execution aborts (0. = none);
          checked every 1024 watchdog steps so the hot path never calls
          the clock *)
  cancel : bool Atomic.t;
      (** cooperative cancellation, set by a server to tear the request
          down; device-lane copies share the flag, so cancelling the
          request cancels every lane *)
  interp : string;
      (** per-request interpreter backend ("tree" | "compiled"); ""
          defers to the process default ({!Compile.backend}). Carried on
          the context so machine hooks evaluating kernel regions honor
          the request's choice without a global *)
  scratch : Tensor.t list ref option;
      (** when set (device lanes executing a launch region), tensors
          allocated by [memref.alloc]/[upmem.wram_alloc] come from the
          {!Tensor.Arena} and are recorded here; the machine releases
          them after the launch. Kernel-local allocations cannot escape
          a launch region (regions yield tokens, stores copy elements),
          so the recycling is invisible to program semantics. [None]
          (host execution) allocates normally — host allocations can
          escape through [func.return]. *)
}

and hook = ctx -> Ir.op -> Rtval.t array -> Rtval.t list option

exception Interp_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Interp_error s)) fmt

(* Default step budget; the process-level Config snapshot owns the
   CINM_MAX_STEPS parse (0 = unlimited). *)
let default_max_steps = ref (Config.default ()).Config.max_steps

let set_default_max_steps n =
  default_max_steps := max 0 n;
  Config.update_default (fun c -> { c with Config.max_steps = max 0 n })

(* Watchdog check, shared verbatim by the tree-walker and the closure
   compiler. It counts its own invocations (loop back-edges and calls)
   rather than consulting the profile, so even a loop whose body is pure
   control flow trips it; both backends place the check at the same
   sites, so the count — and therefore this message — is identical in
   both.

   The same sites double as deadline/cancellation points for server
   requests: the cancel flag is a single atomic load per back-edge, and
   the deadline consults the clock only every 1024 steps. Both raise
   {!Config.Cancelled}, which is not an [Interp_error] — callers that
   convert interpreter failures into diagnostics must let it escape. With
   no budget, no deadline and the shared never-cancelled flag, the whole
   check is one branch, preserving the uninstrumented fast path. *)
let check_steps ctx (op_name : string) =
  if
    ctx.max_steps > 0 || ctx.deadline > 0.
    || ctx.cancel != Config.never_cancelled
  then begin
    incr ctx.steps;
    if ctx.max_steps > 0 && !(ctx.steps) > ctx.max_steps then
      err
        "watchdog: function @%s exceeded the step budget at %s: %d steps (max %d); raise CINM_MAX_STEPS / ?max_steps"
        ctx.fname op_name !(ctx.steps) ctx.max_steps;
    if Atomic.get ctx.cancel then
      raise
        (Config.Cancelled
           (Printf.sprintf "request cancelled in @%s at %s" ctx.fname op_name));
    if
      ctx.deadline > 0.
      && !(ctx.steps) land 1023 = 0
      && Unix.gettimeofday () > ctx.deadline
    then
      raise
        (Config.Cancelled
           (Printf.sprintf "deadline exceeded in @%s at %s (%d steps)"
              ctx.fname op_name !(ctx.steps)))
  end

let lookup ctx (v : Ir.value) =
  match Hashtbl.find_opt ctx.env v.Ir.vid with
  | Some rv -> rv
  | None -> err "use of unbound value %%%d : %s" v.Ir.vid (Types.to_string v.Ir.ty)

let bind ctx (v : Ir.value) rv = Hashtbl.replace ctx.env v.Ir.vid rv

(* First hook that implements [op] wins; [ops] are the op's operand
   values, pre-fetched by the calling backend. Shared by both backends so
   hook dispatch order (and therefore behavior) is identical. *)
let dispatch_hooks ctx op ops =
  let rec go = function
    | [] -> None
    | h :: rest -> ( match h ctx op ops with Some _ as r -> r | None -> go rest)
  in
  go ctx.hooks

(* Allocation point of [memref.alloc]/[upmem.wram_alloc] under both
   backends: arena-recycled (and recorded for release) inside a launch,
   fresh on the host. Arena tensors are zero-filled, so the two sources
   are indistinguishable to the program. *)
let alloc_tensor ctx shape dt =
  match ctx.scratch with
  | Some l ->
    let t = Tensor.Arena.alloc shape dt in
    l := t :: !l;
    t
  | None -> Tensor.zeros shape dt

let operand ctx op i = lookup ctx (Ir.operand op i)
let t_operand ctx op i = Rtval.as_tensor (operand ctx op i)
let i_operand ctx op i = Rtval.as_int (operand ctx op i)

(* Direct match instead of a string-list scan: [eval_block] asks this once
   per block execution, i.e. once per loop iteration of interpreted code. *)
let is_terminator (op : Ir.op) =
  match op.Ir.name with
  | "scf.yield" | "func.return" | "cim.yield" | "cnm.terminator" -> true
  | _ -> false

(* ----- profile accounting for bulk (tensor-level) ops ----- *)

let account_elementwise p n =
  p.Profile.alu_ops <- p.Profile.alu_ops + n;
  p.Profile.loads <- p.Profile.loads + (2 * n);
  p.Profile.stores <- p.Profile.stores + n

let account_matmul p m n k =
  p.Profile.mul_ops <- p.Profile.mul_ops + (m * n * k);
  p.Profile.alu_ops <- p.Profile.alu_ops + (m * n * k);
  p.Profile.loads <- p.Profile.loads + (2 * m * n * k);
  p.Profile.stores <- p.Profile.stores + (m * n)

let account_move p n =
  p.Profile.loads <- p.Profile.loads + n;
  p.Profile.stores <- p.Profile.stores + n

(* ----- evaluation ----- *)

(* Profile buckets for scalar int binops, see [account_int_binop]. *)
let bucket_alu = 0
let bucket_mul = 1
let bucket_div = 2

let account_int_binop (p : Profile.t) bucket =
  if bucket = bucket_mul then p.Profile.mul_ops <- p.Profile.mul_ops + 1
  else if bucket = bucket_div then p.Profile.div_ops <- p.Profile.div_ops + 1
  else p.Profile.alu_ops <- p.Profile.alu_ops + 1

(* [arith.cmpi] predicates as shared top-level closures, so the decode of
   the "predicate" string attribute happens once per op (cached in
   [ctx.cmpi_preds]) instead of once per evaluation. *)
let pred_eq (a : int) b = a = b
let pred_ne (a : int) b = a <> b
let pred_slt (a : int) b = a < b
let pred_sle (a : int) b = a <= b
let pred_sgt (a : int) b = a > b
let pred_sge (a : int) b = a >= b

let decode_cmpi_predicate (op : Ir.op) =
  match Ir.str_attr op "predicate" with
  | "eq" -> pred_eq
  | "ne" -> pred_ne
  | "slt" -> pred_slt
  | "sle" -> pred_sle
  | "sgt" -> pred_sgt
  | "sge" -> pred_sge
  | s -> err "arith.cmpi: predicate %s" s

let cmpi_predicate ctx (op : Ir.op) =
  match Hashtbl.find_opt ctx.cmpi_preds op.Ir.oid with
  | Some f -> f
  | None ->
    let f = decode_cmpi_predicate op in
    Hashtbl.add ctx.cmpi_preds op.Ir.oid f;
    f

let elementwise_names prefix =
  List.map
    (fun n -> (prefix ^ "." ^ n, n))
    [ "add"; "sub"; "mul"; "div"; "min"; "max"; "and"; "or"; "xor" ]

let cinm_elementwise = elementwise_names "cinm"
let linalg_elementwise = elementwise_names "linalg"

let scalar_result_dtype (op : Ir.op) =
  match (Ir.result op 0).Ir.ty with
  | Types.Scalar dt -> dt
  | Types.Index -> Types.I64
  | ty -> err "expected scalar result, got %s" (Types.to_string ty)

(* Scalar binop evaluation, shared by the literal dispatch cases below.
   Writes its single result directly (no intermediate list). *)
let int_bin ctx (op : Ir.op) p bucket (f : int -> int -> int) =
  account_int_binop p bucket;
  let dt = scalar_result_dtype op in
  bind ctx op.Ir.results.(0)
    (Rtval.Int (Tensor.wrap dt (f (i_operand ctx op 0) (i_operand ctx op 1))))

let float_bin ctx (op : Ir.op) (p : Profile.t) (f : float -> float -> float) =
  p.Profile.alu_ops <- p.Profile.alu_ops + 1;
  bind ctx op.Ir.results.(0)
    (Rtval.Float
       (f (Rtval.as_float (operand ctx op 0)) (Rtval.as_float (operand ctx op 1))))

(* Hot path: called once per loop iteration of interpreted code, so it
   must not allocate beyond its result list. *)
let rec eval_block ctx (block : Ir.block) : Rtval.t list =
  let n = Ir.num_ops block in
  if n = 0 then []
  else begin
    for i = 0 to n - 2 do
      eval_op ctx (Ir.op_at block i)
    done;
    let last = Ir.op_at block (n - 1) in
    if is_terminator last then
      List.map (lookup ctx) (Array.to_list last.Ir.operands)
    else begin
      eval_op ctx last;
      []
    end
  end

and eval_region ctx (region : Ir.region) args : Rtval.t list =
  let block = Ir.entry_block region in
  if Array.length block.Ir.args <> List.length args then
    err "region arity mismatch: %d args for %d params" (List.length args)
      (Array.length block.Ir.args);
  List.iteri (fun i rv -> bind ctx block.Ir.args.(i) rv) args;
  eval_block ctx block

and eval_op ctx (op : Ir.op) : unit =
  let p = ctx.profile in
  p.Profile.launched_ops <- p.Profile.launched_ops + 1;
  let set_results vals =
    if List.length vals <> Array.length op.Ir.results then
      err "%s: produced %d values for %d results" op.Ir.name (List.length vals)
        (Array.length op.Ir.results);
    List.iteri (fun i rv -> bind ctx op.Ir.results.(i) rv) vals
  in
  let name = op.Ir.name in
  match name with
  (* ----- arith ----- *)
  | "arith.constant" -> (
    match Ir.attr_exn op "value" with
    | Attr.Int i -> set_results [ Rtval.Int (Tensor.wrap (scalar_result_dtype op) i) ]
    | Attr.Float f -> set_results [ Rtval.Float f ]
    | a -> err "arith.constant: bad value %s" (Attr.to_string a))
  (* The scalar binops are the hottest ops of interpreted kernels: literal
     cases compile to a string dispatch tree, with no guard-list scans on
     the hot path. *)
  | "arith.addi" -> int_bin ctx op p bucket_alu ( + )
  | "arith.subi" -> int_bin ctx op p bucket_alu ( - )
  | "arith.muli" -> int_bin ctx op p bucket_mul ( * )
  | "arith.divsi" -> int_bin ctx op p bucket_div (Tensor.int_binop "div")
  | "arith.remsi" -> int_bin ctx op p bucket_div (Tensor.int_binop "rem")
  | "arith.minsi" -> int_bin ctx op p bucket_alu min
  | "arith.maxsi" -> int_bin ctx op p bucket_alu max
  | "arith.andi" -> int_bin ctx op p bucket_alu ( land )
  | "arith.ori" -> int_bin ctx op p bucket_alu ( lor )
  | "arith.xori" -> int_bin ctx op p bucket_alu ( lxor )
  | "arith.shli" -> int_bin ctx op p bucket_alu ( lsl )
  | "arith.shrsi" -> int_bin ctx op p bucket_alu ( asr )
  | "arith.addf" -> float_bin ctx op p ( +. )
  | "arith.subf" -> float_bin ctx op p ( -. )
  | "arith.mulf" -> float_bin ctx op p ( *. )
  | "arith.divf" -> float_bin ctx op p ( /. )
  | "arith.minf" -> float_bin ctx op p Float.min
  | "arith.maxf" -> float_bin ctx op p Float.max
  | "arith.cmpi" ->
    let a = i_operand ctx op 0 and b = i_operand ctx op 1 in
    p.Profile.alu_ops <- p.Profile.alu_ops + 1;
    set_results [ Rtval.Bool (cmpi_predicate ctx op a b) ]
  | "arith.select" ->
    p.Profile.alu_ops <- p.Profile.alu_ops + 1;
    let c = Rtval.as_bool (operand ctx op 0) in
    set_results [ (if c then operand ctx op 1 else operand ctx op 2) ]
  | "arith.index_cast" -> set_results [ Rtval.Int (i_operand ctx op 0) ]
  (* ----- scf ----- *)
  | "scf.for" ->
    let lb = i_operand ctx op 0 and ub = i_operand ctx op 1 and step = i_operand ctx op 2 in
    if step <= 0 then err "scf.for: non-positive step %d" step;
    let inits = List.map (lookup ctx) (Cinm_dialects.Scf_d.for_inits op) in
    let region = Ir.region op 0 in
    let rec iterate i acc =
      if i >= ub then acc
      else begin
        p.Profile.alu_ops <- p.Profile.alu_ops + 1 (* induction update/compare *);
        check_steps ctx "scf.for";
        let out = eval_region ctx region (Rtval.Int i :: acc) in
        iterate (i + step) out
      end
    in
    set_results (iterate lb inits)
  | "scf.if" ->
    let c = Rtval.as_bool (operand ctx op 0) in
    let region_idx = if c then 0 else 1 in
    if region_idx >= Array.length op.Ir.regions then set_results []
    else set_results (eval_region ctx (Ir.region op region_idx) [])
  | "scf.parallel" ->
    let n_dims = Ir.num_operands op / 3 in
    let bounds =
      List.init n_dims (fun d ->
          (i_operand ctx op (3 * d), i_operand ctx op ((3 * d) + 1),
           i_operand ctx op ((3 * d) + 2)))
    in
    let region = Ir.region op 0 in
    let rec loop_dims acc = function
      | [] ->
        check_steps ctx "scf.parallel";
        ignore (eval_region ctx region (List.rev_map (fun i -> Rtval.Int i) acc))
      | (lb, ub, step) :: rest ->
        let i = ref lb in
        while !i < ub do
          loop_dims (!i :: acc) rest;
          i := !i + step
        done
    in
    loop_dims [] bounds;
    set_results []
  (* ----- func ----- *)
  | "func.call" -> (
    match ctx.modul with
    | None -> err "func.call outside a module context"
    | Some m ->
      let callee = Ir.str_attr op "callee" in
      check_steps ctx "func.call";
      let f = Func.find_func_exn m callee in
      let args = List.map (lookup ctx) (Array.to_list op.Ir.operands) in
      (* same mutable env/profile, but watchdog messages from inside the
         callee name the callee *)
      set_results (eval_region { ctx with fname = callee } f.Func.body args))
  (* ----- tensor ----- *)
  | "tensor.empty" -> (
    match (Ir.result op 0).Ir.ty with
    | Types.Tensor (shape, dt) -> set_results [ Rtval.Tensor (Tensor.zeros shape dt) ]
    | ty -> err "tensor.empty: %s" (Types.to_string ty))
  | "tensor.splat" | "linalg.fill" -> (
    match (Ir.result op 0).Ir.ty with
    | Types.Tensor (shape, dt) ->
      account_move p (Util.product_of_shape shape);
      let t =
        if Types.is_float_dtype dt then
          Tensor.fill_float shape dt (Rtval.as_float (operand ctx op 0))
        else Tensor.fill_scalar shape dt (i_operand ctx op 0)
      in
      set_results [ Rtval.Tensor t ]
    | ty -> err "%s: %s" name (Types.to_string ty))
  | "tensor.extract_slice" ->
    let src = t_operand ctx op 0 in
    let offsets = Ir.ints_attr op "offsets" in
    let sizes = Ir.ints_attr op "sizes" in
    let offsets = add_dyn_offsets ctx op ~skip:1 offsets in
    account_move p (Util.product_of_shape sizes);
    set_results [ Rtval.Tensor (Tensor.extract_slice src ~offsets ~sizes) ]
  | "tensor.insert_slice" ->
    let src = t_operand ctx op 0 and dst = t_operand ctx op 1 in
    let offsets = Ir.ints_attr op "offsets" in
    let offsets = add_dyn_offsets ctx op ~skip:2 offsets in
    account_move p (Tensor.num_elements src);
    set_results [ Rtval.Tensor (Tensor.insert_slice src dst ~offsets) ]
  | "tensor.extract" ->
    let src = t_operand ctx op 0 in
    let idx = Array.init (Ir.num_operands op - 1) (fun i -> i_operand ctx op (i + 1)) in
    p.Profile.loads <- p.Profile.loads + 1;
    set_results
      [ (if Types.is_float_dtype src.Tensor.dtype then
           Rtval.Float (Tensor.get_f src idx)
         else Rtval.Int (Tensor.get src idx)) ]
  | "tensor.insert" ->
    let dst = t_operand ctx op 1 in
    let idx = Array.init (Ir.num_operands op - 2) (fun i -> i_operand ctx op (i + 2)) in
    p.Profile.stores <- p.Profile.stores + 1;
    let out = Tensor.copy dst in
    if Types.is_float_dtype out.Tensor.dtype then
      Tensor.set_f out idx (Rtval.as_float (operand ctx op 0))
    else Tensor.set out idx (i_operand ctx op 0);
    set_results [ Rtval.Tensor out ]
  | "tensor.reshape" | "cinm.expand" -> (
    let src = t_operand ctx op 0 in
    match Types.shape_of (Ir.result op 0).Ir.ty with
    | Some shape -> set_results [ Rtval.Tensor (Tensor.reshape src shape) ]
    | None -> err "%s: unshaped result" name)
  | "tensor.pad" ->
    let src = t_operand ctx op 0 in
    let low = Ir.ints_attr op "low" and high = Ir.ints_attr op "high" in
    account_move p (Tensor.num_elements src);
    set_results [ Rtval.Tensor (Tensor.pad src ~low ~high) ]
  (* ----- memref ----- *)
  | "memref.alloc" | "upmem.wram_alloc" -> (
    match (Ir.result op 0).Ir.ty with
    | Types.MemRef (shape, dt) -> set_results [ Rtval.Memref (alloc_tensor ctx shape dt) ]
    | ty -> err "%s: %s" name (Types.to_string ty))
  | "memref.load" ->
    let m = t_operand ctx op 0 in
    let idx = Array.init (Ir.num_operands op - 1) (fun i -> i_operand ctx op (i + 1)) in
    p.Profile.loads <- p.Profile.loads + 1;
    set_results
      [ (if Types.is_float_dtype m.Tensor.dtype then Rtval.Float (Tensor.get_f m idx)
         else Rtval.Int (Tensor.get m idx)) ]
  | "memref.store" ->
    let m = t_operand ctx op 1 in
    let idx = Array.init (Ir.num_operands op - 2) (fun i -> i_operand ctx op (i + 2)) in
    p.Profile.stores <- p.Profile.stores + 1;
    if Types.is_float_dtype m.Tensor.dtype then
      Tensor.set_f m idx (Rtval.as_float (operand ctx op 0))
    else Tensor.set m idx (i_operand ctx op 0);
    set_results []
  | "memref.copy" ->
    let src = t_operand ctx op 0 and dst = t_operand ctx op 1 in
    let n = Tensor.num_elements src in
    account_move p n;
    Tensor.blit src 0 dst 0 n;
    set_results []
  | "memref.dealloc" -> set_results []
  (* ----- elementwise cinm / linalg / tosa ----- *)
  | _ when List.mem_assoc name cinm_elementwise ->
    eval_elementwise ctx op (List.assoc name cinm_elementwise)
  | _ when List.mem_assoc name linalg_elementwise ->
    eval_elementwise ctx op (List.assoc name linalg_elementwise)
  | "tosa.add" -> eval_elementwise ctx op "add"
  | "cinm.not" ->
    let a = t_operand ctx op 0 in
    account_elementwise p (Tensor.num_elements a);
    set_results [ Rtval.Tensor (Tensor.map_not a) ]
  (* ----- matmul family ----- *)
  | "cinm.gemm" | "linalg.matmul" | "tosa.matmul" ->
    let a = t_operand ctx op 0 and bt = t_operand ctx op 1 in
    (match (a.Tensor.shape, bt.Tensor.shape) with
    | [| m; k |], [| _; n |] -> account_matmul p m n k
    | _ -> ());
    set_results [ Rtval.Tensor (Tensor.matmul a bt) ]
  | "cinm.gemv" | "linalg.matvec" ->
    let a = t_operand ctx op 0 and v = t_operand ctx op 1 in
    (match a.Tensor.shape with [| m; n |] -> account_matmul p m 1 n | _ -> ());
    set_results [ Rtval.Tensor (Tensor.matvec a v) ]
  | "linalg.dot" ->
    let a = t_operand ctx op 0 and bt = t_operand ctx op 1 in
    account_matmul p 1 1 (Tensor.num_elements a);
    if Types.is_float_dtype a.Tensor.dtype then
      set_results [ Rtval.Float (Tensor.dot_f a bt) ]
    else set_results [ Rtval.Int (Tensor.dot a bt) ]
  | "linalg.conv_2d" ->
    let img = t_operand ctx op 0 and k = t_operand ctx op 1 in
    (match (img.Tensor.shape, k.Tensor.shape) with
    | [| h; w |], [| kh; kw |] ->
      account_matmul p ((h - kh + 1) * (w - kw + 1)) 1 (kh * kw)
    | _ -> ());
    set_results [ Rtval.Tensor (Tensor.conv_2d img k) ]
  | "linalg.einsum" ->
    let a = t_operand ctx op 0 and bt = t_operand ctx op 1 in
    let spec = Ir.str_attr op "spec" in
    let out = Tensor.einsum ~spec a bt in
    (* MACs = |out| * K where, for a pure contraction with M/N/K index
       groups, |A|*|B| = M*K * K*N = |out| * K^2 *)
    let red =
      let n_a = Tensor.num_elements a
      and n_b = Tensor.num_elements bt
      and n_out = Tensor.num_elements out in
      max 1 (int_of_float (sqrt (float_of_int n_a *. float_of_int n_b /. float_of_int (max 1 n_out))))
    in
    account_matmul p (Tensor.num_elements out) 1 red;
    set_results [ Rtval.Tensor out ]
  | "linalg.broadcast" -> (
    let src = t_operand ctx op 0 in
    match Types.shape_of (Ir.result op 0).Ir.ty with
    | Some dst_shape ->
      let out = Tensor.zeros dst_shape src.Tensor.dtype in
      let n = Tensor.num_elements out and m = Tensor.num_elements src in
      account_move p n;
      if Types.is_float_dtype src.Tensor.dtype then
        for i = 0 to n - 1 do
          Tensor.set_float out i (Tensor.get_float src (i mod m))
        done
      else
        for i = 0 to n - 1 do
          Tensor.set_int out i (Tensor.get_int src (i mod m))
        done;
      set_results [ Rtval.Tensor out ]
    | None -> err "linalg.broadcast: unshaped result")
  (* ----- shape ops ----- *)
  | "cinm.transpose" | "linalg.transpose" ->
    let a = t_operand ctx op 0 in
    let perms = Ir.ints_attr op "perms" in
    account_move p (Tensor.num_elements a);
    set_results [ Rtval.Tensor (Tensor.transpose a perms) ]
  | "cinm.im2col" ->
    let img = t_operand ctx op 0 in
    let kernel = Ir.ints_attr op "kernel" in
    let out = Tensor.im2col img ~kh:kernel.(0) ~kw:kernel.(1) in
    account_move p (Tensor.num_elements out);
    set_results [ Rtval.Tensor out ]
  (* ----- reductions / analytics ----- *)
  | "cinm.reduce" | "linalg.reduce" ->
    let a = t_operand ctx op 0 in
    let red = Ir.str_attr op "op" in
    account_elementwise p (Tensor.num_elements a);
    if Types.is_float_dtype a.Tensor.dtype then
      set_results [ Rtval.Float (Tensor.reduce_f red a) ]
    else set_results [ Rtval.Int (Tensor.reduce red a) ]
  | "cinm.scan" ->
    let a =
      match Ir.attr op "pre_expr" with
      | None -> t_operand ctx op 0
      | Some (Attr.Strs tokens) ->
        (* fused elementwise chain evaluated on the fly *)
        let inputs = Array.init (Ir.num_operands op) (fun i -> t_operand ctx op i) in
        let n = Tensor.num_elements inputs.(0) in
        let out = Tensor.zeros inputs.(0).Tensor.shape inputs.(0).Tensor.dtype in
        p.Profile.alu_ops <- p.Profile.alu_ops + (n * List.length tokens / 2);
        if Types.is_float_dtype out.Tensor.dtype then
          for i = 0 to n - 1 do
            Tensor.set_float out i
              (Cinm_dialects.Cinm_d.eval_rpn ~tokens
                 ~input:(fun k -> Tensor.get_float inputs.(k) i)
                 ~const:float_of_int ~apply:Tensor.float_binop)
          done
        else
          for i = 0 to n - 1 do
            Tensor.set_int out i
              (Cinm_dialects.Cinm_d.eval_rpn ~tokens
                 ~input:(fun k -> Tensor.get_int inputs.(k) i)
                 ~const:(fun c -> c)
                 ~apply:(fun name x y ->
                   Tensor.wrap out.Tensor.dtype (Tensor.int_binop name x y)))
          done;
        out
      | Some a -> err "cinm.scan: bad pre_expr %s" (Attr.to_string a)
    in
    account_elementwise p (Tensor.num_elements a);
    set_results [ Rtval.Tensor (Tensor.scan (Ir.str_attr op "op") a) ]
  | "cinm.histogram" ->
    let a = t_operand ctx op 0 in
    account_elementwise p (Tensor.num_elements a);
    set_results [ Rtval.Tensor (Tensor.histogram ~bins:(Ir.int_attr op "bins") a) ]
  | "cinm.pop_count" ->
    let a = t_operand ctx op 0 in
    account_elementwise p (Tensor.num_elements a);
    set_results [ Rtval.Int (Tensor.pop_count a) ]
  | "cinm.majority" ->
    let a = t_operand ctx op 0 in
    account_elementwise p (Tensor.num_elements a);
    set_results [ Rtval.Tensor (Tensor.majority a) ]
  | "cinm.topk" ->
    let a = t_operand ctx op 0 in
    let n = Tensor.num_elements a in
    (* comparison-sort cost model *)
    p.Profile.alu_ops <-
      p.Profile.alu_ops + (n * max 1 (int_of_float (log (float_of_int (max 2 n)))));
    let values, indices = Tensor.topk ~k:(Ir.int_attr op "k") a in
    set_results [ Rtval.Tensor values; Rtval.Tensor indices ]
  | "cinm.sim_search" ->
    let db = t_operand ctx op 0 and q = t_operand ctx op 1 in
    let k = Ir.int_attr op "k" and metric = Ir.str_attr op "metric" in
    let n = Tensor.num_elements db and m = Tensor.num_elements q in
    let windows = max 1 (n - m + 1) in
    (if metric = "hamming" then begin
       (* per element: xor plus a ~5-step SWAR popcount with mask
          constants and an accumulate — pure ALU work, no multiplies *)
       p.Profile.alu_ops <- p.Profile.alu_ops + (windows * m * 12);
       p.Profile.loads <- p.Profile.loads + (2 * windows * m);
       p.Profile.stores <- p.Profile.stores + windows
     end
     else account_matmul p windows 1 m);
    let values, indices = Tensor.sim_search ~metric ~k db q in
    set_results [ Rtval.Tensor values; Rtval.Tensor indices ]
  | "cinm.merge_partial" ->
    eval_elementwise ctx op (Ir.str_attr op "op")
  | "cinm.ew_expr" ->
    let tokens =
      match Ir.attr_exn op "expr" with
      | Attr.Strs l -> l
      | a -> err "cinm.ew_expr: bad expr attr %s" (Attr.to_string a)
    in
    let inputs = Array.init (Ir.num_operands op) (fun i -> t_operand ctx op i) in
    let n = Tensor.num_elements inputs.(0) in
    let out = Tensor.zeros inputs.(0).Tensor.shape inputs.(0).Tensor.dtype in
    p.Profile.alu_ops <- p.Profile.alu_ops + (n * List.length tokens / 2);
    p.Profile.loads <- p.Profile.loads + (n * Array.length inputs);
    p.Profile.stores <- p.Profile.stores + n;
    if Types.is_float_dtype out.Tensor.dtype then
      for i = 0 to n - 1 do
        Tensor.set_float out i
          (Cinm_dialects.Cinm_d.eval_rpn ~tokens
             ~input:(fun k -> Tensor.get_float inputs.(k) i)
             ~const:float_of_int ~apply:Tensor.float_binop)
      done
    else
      for i = 0 to n - 1 do
        let v =
          Cinm_dialects.Cinm_d.eval_rpn ~tokens
            ~input:(fun k -> Tensor.get_int inputs.(k) i)
            ~const:(fun c -> c)
            ~apply:(fun name a bv ->
              Tensor.wrap out.Tensor.dtype (Tensor.int_binop name a bv))
        in
        Tensor.set_int out i v
      done;
    set_results [ Rtval.Tensor out ]
  (* ----- tosa ----- *)
  | "tosa.fully_connected" ->
    let input = t_operand ctx op 0
    and weight = t_operand ctx op 1
    and bias = t_operand ctx op 2 in
    let wt = Tensor.transpose weight [| 1; 0 |] in
    let mm = Tensor.matmul input wt in
    (match (input.Tensor.shape, wt.Tensor.shape) with
    | [| m; k |], [| _; n |] -> account_matmul p m n k
    | _ -> ());
    let out = Tensor.copy mm in
    (match out.Tensor.shape with
    | [| n; f |] ->
      for i = 0 to n - 1 do
        for j = 0 to f - 1 do
          Tensor.set_int out ((i * f) + j) (Tensor.get_int out ((i * f) + j) + Tensor.get_int bias j)
        done
      done
    | _ -> err "tosa.fully_connected: bad output shape");
    set_results [ Rtval.Tensor out ]
  | "tosa.clamp" ->
    let a = t_operand ctx op 0 in
    let min_v = Ir.int_attr op "min" and max_v = Ir.int_attr op "max" in
    account_elementwise p (Tensor.num_elements a);
    let out = Tensor.copy a in
    for i = 0 to Tensor.num_elements out - 1 do
      Tensor.set_int out i (min max_v (max min_v (Tensor.get_int out i)))
    done;
    set_results [ Rtval.Tensor out ]
  (* ----- device ops: delegate to hooks ----- *)
  | _ -> (
    let ops = Array.map (fun v -> lookup ctx v) op.Ir.operands in
    match dispatch_hooks ctx op ops with
    | Some vals -> set_results vals
    | None -> err "no interpreter semantics for %s" name)

and add_dyn_offsets ctx op ~skip offsets =
  let n_dyn = Ir.num_operands op - skip in
  if n_dyn = 0 then offsets
  else begin
    if n_dyn <> Array.length offsets then
      err "%s: %d dynamic offsets for rank %d" op.Ir.name n_dyn (Array.length offsets);
    Array.mapi (fun i off -> off + i_operand ctx op (skip + i)) offsets
  end

and eval_elementwise ctx op opname =
  let a = t_operand ctx op 0 and b = t_operand ctx op 1 in
  account_elementwise ctx.profile (Tensor.num_elements a);
  List.iteri
    (fun i rv -> bind ctx op.Ir.results.(i) rv)
    [ Rtval.Tensor (Tensor.map2 opname a b) ]

(* ----- entry points ----- *)

let create_ctx ?(hooks = []) ?profile ?modul ?(fname = "<main>") ?max_steps
    ?config () =
  let profile = match profile with Some p -> p | None -> Profile.create () in
  (* explicit argument > request config > process default *)
  let max_steps =
    match (max_steps, config) with
    | Some n, _ -> max 0 n
    | None, Some c -> c.Config.max_steps
    | None, None -> !default_max_steps
  in
  let deadline, cancel, interp =
    match config with
    | Some c -> (c.Config.deadline, c.Config.cancel, c.Config.interp)
    | None -> (0., Config.never_cancelled, "")
  in
  { env = Hashtbl.create 256; profile; hooks; modul; device = Host;
    cmpi_preds = Hashtbl.create 8; fname; max_steps; steps = ref 0;
    deadline; cancel; interp; scratch = None }

let run_func ?(hooks = []) ?profile ?modul ?max_steps ?config (f : Func.t)
    (args : Rtval.t list) : Rtval.t list * Profile.t =
  let ctx =
    create_ctx ~hooks ?profile ?modul ~fname:f.Func.fname ?max_steps ?config ()
  in
  let results = eval_region ctx f.Func.body args in
  (results, ctx.profile)

let run_in_module ?(hooks = []) ?profile ?max_steps ?config (m : Func.modul)
    name args =
  let f = Func.find_func_exn m name in
  run_func ~hooks ?profile ~modul:m ?max_steps ?config f args
