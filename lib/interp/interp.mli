(** Reference interpreter for the CINM IR. Executes host-level dialects
    directly; device dialects are delegated to hooks installed by the
    simulators. Every executed op is accounted in a {!Profile.t}, from
    which the timing models derive simulated time. *)

open Cinm_ir

(** Execution identity: which processing element the interpreter is
    currently simulating. [Host] is ordinary host execution; device
    simulators extend this type with their own per-PU state (the UPMEM
    machine adds a per-(DPU, tasklet) lane) and install it on the context
    they evaluate kernel regions with. Carrying the identity in the
    context — instead of mutable machine fields — is what lets simulators
    evaluate many PUs concurrently on OCaml 5 domains. *)
type device_state = ..

type device_state += Host

type ctx = {
  env : (int, Rtval.t) Hashtbl.t;
  profile : Profile.t;
  hooks : hook list;
  modul : Func.modul option;  (** for func.call *)
  device : device_state;
  cmpi_preds : (int, int -> int -> bool) Hashtbl.t;
      (** per-op [arith.cmpi] predicate decode cache, keyed by [oid]. Kept
          on the context (not a global) so concurrent device lanes never
          share a table; lane contexts must install a fresh one. *)
  fname : string;  (** function being executed, for watchdog diagnostics *)
  max_steps : int;
      (** watchdog: abort once [steps] exceeds this (0 = unlimited);
          checked on loop back-edges and calls only *)
  steps : int ref;
      (** back-edges and calls taken so far; shared by [{ctx with ...}]
          copies, so give parallel device lanes a fresh ref *)
  deadline : float;
      (** absolute host time after which execution aborts with
          {!Cinm_support.Config.Cancelled} (0. = none); the clock is
          consulted only every 1024 watchdog steps *)
  cancel : bool Atomic.t;
      (** cooperative cancellation flag, polled at every watchdog site;
          [{ctx with ...}] lane copies share it, so cancelling a request
          cancels all its device lanes *)
  interp : string;
      (** per-request interpreter backend ("tree" | "compiled", "" =
          process default); consulted by [Compile.prepare] so machine
          hooks honor the request's choice without a global *)
  scratch : Tensor.t list ref option;
      (** when set, [memref.alloc]/[upmem.wram_alloc] allocate from the
          {!Tensor.Arena} and record here for release after the launch;
          [None] (host execution) allocates normally *)
}

and hook = ctx -> Ir.op -> Rtval.t array -> Rtval.t list option
(** A hook receives the op's operand values — pre-fetched by the executing
    backend, so the compiled backend feeds them straight from its register
    file without staging an environment — and returns [Some results] when
    it implements the op, [None] to let the next hook (or the error path)
    handle it. Hooks that evaluate the op's regions resolve free values
    through the context environment, which both backends populate before
    dispatching a region-carrying op. *)

exception Interp_error of string

(** Default watchdog step budget for new contexts, initialised from
    [CINM_MAX_STEPS] (0 = unlimited). *)
val set_default_max_steps : int -> unit

(** Count one watchdog step (a loop back-edge or call) and raise
    {!Interp_error} when the context's budget is exhausted, naming the
    executing function, the op at which the budget tripped and the step
    count. Shared verbatim by both interpreter backends, which place it
    at the same sites — so the message is identical in both. The same
    sites enforce the context's deadline and cancellation flag, raising
    {!Cinm_support.Config.Cancelled} (not an {!Interp_error}) so server
    aborts are distinguishable from program failures. *)
val check_steps : ctx -> string -> unit

(** Raise {!Interp_error} with a formatted message. *)
val err : ('a, unit, string, 'b) format4 -> 'a

(** Whether [op] is a block terminator ([scf.yield], [func.return],
    [cim.yield], [cnm.terminator]); its operands are the block's results. *)
val is_terminator : Ir.op -> bool

(** Decode the "predicate" attribute of an [arith.cmpi] into a shared
    comparison closure (raises {!Interp_error} on unknown predicates). *)
val decode_cmpi_predicate : Ir.op -> int -> int -> bool

(** Integer dtype of a scalar-typed op result (Index widens to I64). *)
val scalar_result_dtype : Ir.op -> Types.dtype

(** Profile buckets for scalar integer binops, see {!account_int_binop}. *)
val bucket_alu : int

val bucket_mul : int
val bucket_div : int

(** Count one scalar integer binop in the given bucket. *)
val account_int_binop : Profile.t -> int -> unit

(** Allocation point of [memref.alloc]/[upmem.wram_alloc] under both
    backends: arena-recycled and recorded when the context has a
    [scratch] list, fresh {!Tensor.zeros} otherwise. *)
val alloc_tensor : ctx -> int array -> Types.dtype -> Tensor.t

(** Look up an SSA value's runtime binding.
    @raise Interp_error when unbound. *)
val lookup : ctx -> Ir.value -> Rtval.t

(** Dispatch [op] (with its operand values) to the context's hooks, first
    match wins; [None] when no hook implements it. Shared by both backends
    so hook dispatch order is identical. *)
val dispatch_hooks : ctx -> Ir.op -> Rtval.t array -> Rtval.t list option

val bind : ctx -> Ir.value -> Rtval.t -> unit

(** Evaluate a block; returns the operands of its terminator. *)
val eval_block : ctx -> Ir.block -> Rtval.t list

(** Evaluate a single-entry region with the given block-argument values. *)
val eval_region : ctx -> Ir.region -> Rtval.t list -> Rtval.t list

val eval_op : ctx -> Ir.op -> unit

val create_ctx :
  ?hooks:hook list ->
  ?profile:Profile.t ->
  ?modul:Func.modul ->
  ?fname:string ->
  ?max_steps:int ->
  ?config:Cinm_support.Config.t ->
  unit ->
  ctx

(** Run a function; returns its results and the accumulated profile.
    [max_steps] bounds the watchdog budget for this run (default: the
    [CINM_MAX_STEPS] setting). [config] is a per-request snapshot
    supplying max-steps (unless given explicitly), deadline, cancellation
    flag and interpreter backend. *)
val run_func :
  ?hooks:hook list ->
  ?profile:Profile.t ->
  ?modul:Func.modul ->
  ?max_steps:int ->
  ?config:Cinm_support.Config.t ->
  Func.t ->
  Rtval.t list ->
  Rtval.t list * Profile.t

(** Run a named function of a module (callees resolvable via func.call). *)
val run_in_module :
  ?hooks:hook list ->
  ?profile:Profile.t ->
  ?max_steps:int ->
  ?config:Cinm_support.Config.t ->
  Func.modul ->
  string ->
  Rtval.t list ->
  Rtval.t list * Profile.t
