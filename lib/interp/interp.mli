(** Reference interpreter for the CINM IR. Executes host-level dialects
    directly; device dialects are delegated to hooks installed by the
    simulators. Every executed op is accounted in a {!Profile.t}, from
    which the timing models derive simulated time. *)

open Cinm_ir

(** Execution identity: which processing element the interpreter is
    currently simulating. [Host] is ordinary host execution; device
    simulators extend this type with their own per-PU state (the UPMEM
    machine adds a per-(DPU, tasklet) lane) and install it on the context
    they evaluate kernel regions with. Carrying the identity in the
    context — instead of mutable machine fields — is what lets simulators
    evaluate many PUs concurrently on OCaml 5 domains. *)
type device_state = ..

type device_state += Host

type ctx = {
  env : (int, Rtval.t) Hashtbl.t;
  profile : Profile.t;
  hooks : hook list;
  modul : Func.modul option;  (** for func.call *)
  device : device_state;
  cmpi_preds : (int, int -> int -> bool) Hashtbl.t;
      (** per-op [arith.cmpi] predicate decode cache, keyed by [oid]. Kept
          on the context (not a global) so concurrent device lanes never
          share a table; lane contexts must install a fresh one. *)
}

and hook = ctx -> Ir.op -> Rtval.t list option
(** A hook returns [Some results] when it implements the op, [None] to let
    the next hook (or the error path) handle it. *)

exception Interp_error of string

(** Raise {!Interp_error} with a formatted message. *)
val err : ('a, unit, string, 'b) format4 -> 'a

(** Whether [op] is a block terminator ([scf.yield], [func.return],
    [cim.yield], [cnm.terminator]); its operands are the block's results. *)
val is_terminator : Ir.op -> bool

(** Decode the "predicate" attribute of an [arith.cmpi] into a shared
    comparison closure (raises {!Interp_error} on unknown predicates). *)
val decode_cmpi_predicate : Ir.op -> int -> int -> bool

(** Integer dtype of a scalar-typed op result (Index widens to I64). *)
val scalar_result_dtype : Ir.op -> Types.dtype

(** Profile buckets for scalar integer binops, see {!account_int_binop}. *)
val bucket_alu : int

val bucket_mul : int
val bucket_div : int

(** Count one scalar integer binop in the given bucket. *)
val account_int_binop : Profile.t -> int -> unit

(** Look up an SSA value's runtime binding.
    @raise Interp_error when unbound. *)
val lookup : ctx -> Ir.value -> Rtval.t

val bind : ctx -> Ir.value -> Rtval.t -> unit

(** Evaluate a block; returns the operands of its terminator. *)
val eval_block : ctx -> Ir.block -> Rtval.t list

(** Evaluate a single-entry region with the given block-argument values. *)
val eval_region : ctx -> Ir.region -> Rtval.t list -> Rtval.t list

val eval_op : ctx -> Ir.op -> unit

val create_ctx :
  ?hooks:hook list -> ?profile:Profile.t -> ?modul:Func.modul -> unit -> ctx

(** Run a function; returns its results and the accumulated profile. *)
val run_func :
  ?hooks:hook list ->
  ?profile:Profile.t ->
  ?modul:Func.modul ->
  Func.t ->
  Rtval.t list ->
  Rtval.t list * Profile.t

(** Run a named function of a module (callees resolvable via func.call). *)
val run_in_module :
  ?hooks:hook list ->
  ?profile:Profile.t ->
  Func.modul ->
  string ->
  Rtval.t list ->
  Rtval.t list * Profile.t
