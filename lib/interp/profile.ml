(* Execution profile: dynamic operation counts accumulated by the
   interpreter. The timing models of the CPU and device simulators are
   functions of these counts, so "time" is always derived from work the
   generated code actually performed. *)

type t = {
  mutable alu_ops : int;  (** adds, subs, logic, compares, selects *)
  mutable mul_ops : int;
  mutable div_ops : int;
  mutable loads : int;  (** scalar element reads *)
  mutable stores : int;  (** scalar element writes *)
  mutable dma_bytes : int;  (** explicit DMA'd bytes (MRAM<->WRAM) *)
  mutable dma_transfers : int;
  mutable barriers : int;
  mutable launched_ops : int;  (** total ops dispatched (control overhead) *)
}

let create () =
  {
    alu_ops = 0;
    mul_ops = 0;
    div_ops = 0;
    loads = 0;
    stores = 0;
    dma_bytes = 0;
    dma_transfers = 0;
    barriers = 0;
    launched_ops = 0;
  }

let copy p = { p with alu_ops = p.alu_ops }

let add ~into p =
  into.alu_ops <- into.alu_ops + p.alu_ops;
  into.mul_ops <- into.mul_ops + p.mul_ops;
  into.div_ops <- into.div_ops + p.div_ops;
  into.loads <- into.loads + p.loads;
  into.stores <- into.stores + p.stores;
  into.dma_bytes <- into.dma_bytes + p.dma_bytes;
  into.dma_transfers <- into.dma_transfers + p.dma_transfers;
  into.barriers <- into.barriers + p.barriers;
  into.launched_ops <- into.launched_ops + p.launched_ops

let total_scalar_ops p = p.alu_ops + p.mul_ops + p.div_ops

(* Exact (field-wise) equality; all counters are ints, so this is the
   right notion for checking that parallel and sequential simulation of
   the same program performed identical work. *)
let equal a b =
  a.alu_ops = b.alu_ops && a.mul_ops = b.mul_ops && a.div_ops = b.div_ops
  && a.loads = b.loads && a.stores = b.stores && a.dma_bytes = b.dma_bytes
  && a.dma_transfers = b.dma_transfers && a.barriers = b.barriers
  && a.launched_ops = b.launched_ops

let to_string p =
  Printf.sprintf
    "alu=%d mul=%d div=%d loads=%d stores=%d dma=%dB/%d barriers=%d ops=%d" p.alu_ops
    p.mul_ops p.div_ops p.loads p.stores p.dma_bytes p.dma_transfers p.barriers
    p.launched_ops
