(** Execution profile: dynamic operation counts accumulated by the
    interpreter. The CPU and device timing models are functions of these
    counts, so simulated time always reflects work the generated code
    actually performed. *)

type t = {
  mutable alu_ops : int;  (** adds, subs, logic, compares, selects *)
  mutable mul_ops : int;
  mutable div_ops : int;
  mutable loads : int;  (** scalar element reads *)
  mutable stores : int;  (** scalar element writes *)
  mutable dma_bytes : int;  (** explicit DMA'd bytes (MRAM<->WRAM) *)
  mutable dma_transfers : int;
  mutable barriers : int;
  mutable launched_ops : int;  (** ops dispatched (control overhead) *)
}

val create : unit -> t
val copy : t -> t
val add : into:t -> t -> unit
val total_scalar_ops : t -> int

(** Exact field-wise equality (all counters are ints); used to check that
    parallel and sequential simulations performed identical work. *)
val equal : t -> t -> bool

val to_string : t -> string
