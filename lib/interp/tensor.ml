(* Runtime tensors: the data the compiled programs compute on. Integer
   tensors use wrap-around semantics at their declared bit width (the
   paper's workloads are all INT32); float tensors are supported for
   completeness. This module doubles as the reference ("host CPU")
   implementation of every compute op in the cinm/linalg dialects. *)

open Cinm_ir
module Util = Cinm_support.Util

(* Storage is selected by dtype: i8/i16 tensors pack into [Bytes] (one and
   two bytes per element; [Bytes.set_int8]/[set_int16_le] truncate on store
   and [get_int8]/[get_int16_le] sign-extend on load, which is exactly the
   signed wrap-at-width semantics of [wrap]), i1/i32/i64 use a flat
   [int array] with explicit wrap on store, floats a flat [float array].
   All four layouts are unboxed. *)
type payload = I of int array | I8 of Bytes.t | I16 of Bytes.t | F of float array

type t = { shape : int array; dtype : Types.dtype; data : payload }

let num_elements t = Util.product_of_shape t.shape

let is_int t = not (Types.is_float_dtype t.dtype)

(* wrap an integer to the dtype's width, signed *)
let wrap dtype x =
  match dtype with
  | Types.I64 -> x
  | Types.I1 -> x land 1
  | dt ->
    let bits = Types.dtype_bits dt in
    let m = x land ((1 lsl bits) - 1) in
    if m >= 1 lsl (bits - 1) then m - (1 lsl bits) else m

let alloc_payload dtype n =
  match dtype with
  | Types.F32 | Types.F64 -> F (Array.make n 0.0)
  | Types.I8 -> I8 (Bytes.make n '\000')
  | Types.I16 -> I16 (Bytes.make (2 * n) '\000')
  | _ -> I (Array.make n 0)

let zeros shape dtype =
  { shape; dtype; data = alloc_payload dtype (Util.product_of_shape shape) }

let get_int t i =
  match t.data with
  | I a -> a.(i)
  | I8 b -> Bytes.get_int8 b i
  | I16 b -> Bytes.get_int16_le b (2 * i)
  | F a -> int_of_float a.(i)

let get_float t i =
  match t.data with
  | F a -> a.(i)
  | _ -> float_of_int (get_int t i)

let set_int t i v =
  match t.data with
  | I a -> a.(i) <- wrap t.dtype v
  | I8 b -> Bytes.set_int8 b i v
  | I16 b -> Bytes.set_int16_le b (2 * i) v
  | F a -> a.(i) <- float_of_int v

let set_float t i v =
  match t.data with F a -> a.(i) <- v | _ -> set_int t i (int_of_float v)

let of_int_array ?(dtype = Types.I32) shape arr =
  if Array.length arr <> Util.product_of_shape shape then
    invalid_arg "Tensor.of_int_array: size mismatch";
  match dtype with
  | Types.I8 | Types.I16 ->
    let t = zeros shape dtype in
    Array.iteri (fun i v -> set_int t i v) arr;
    t
  | _ -> { shape; dtype; data = I (Array.map (wrap dtype) arr) }

let of_float_array ?(dtype = Types.F32) shape arr =
  if Array.length arr <> Util.product_of_shape shape then
    invalid_arg "Tensor.of_float_array: size mismatch";
  { shape; dtype; data = F arr }

let init ?(dtype = Types.I32) shape f =
  match dtype with
  | Types.I8 | Types.I16 ->
    let t = zeros shape dtype in
    for i = 0 to num_elements t - 1 do
      set_int t i (f i)
    done;
    t
  | _ ->
    let n = Util.product_of_shape shape in
    { shape; dtype; data = I (Array.init n (fun i -> wrap dtype (f i))) }

let copy t =
  let data =
    match t.data with
    | I a -> I (Array.copy a)
    | I8 b -> I8 (Bytes.copy b)
    | I16 b -> I16 (Bytes.copy b)
    | F a -> F (Array.copy a)
  in
  { t with data }

let get t idx = get_int t (Util.linearize t.shape idx)
let set t idx v = set_int t (Util.linearize t.shape idx) v
let get_f t idx = get_float t (Util.linearize t.shape idx)
let set_f t idx v = set_float t (Util.linearize t.shape idx) v

let to_int_array t =
  match t.data with
  | I a -> Array.copy a
  | F a -> Array.map int_of_float a
  | I8 _ | I16 _ -> Array.init (num_elements t) (fun i -> get_int t i)

(* Dtype and shape are compared before the payload: same-data tensors of
   different dtypes are *not* equal. Float comparison is NaN-aware (NaN
   equals NaN positionally; 0.0 still equals -0.0). *)
let float_eq (x : float) (y : float) = x = y || (x <> x && y <> y)

let equal a b =
  a.dtype = b.dtype
  && a.shape = b.shape
  &&
  match (a.data, b.data) with
  | I x, I y -> x = y
  | I8 x, I8 y | I16 x, I16 y -> Bytes.equal x y
  | F x, F y ->
    let n = Array.length x in
    let ok = ref (Array.length y = n) in
    let i = ref 0 in
    while !ok && !i < n do
      if not (float_eq x.(!i) y.(!i)) then ok := false;
      incr i
    done;
    !ok
  | _ -> false

let to_string ?(max_elems = 16) t =
  let n = num_elements t in
  let shown = min n max_elems in
  let elems =
    List.init shown (fun i ->
        match t.data with
        | I _ | I8 _ | I16 _ -> string_of_int (get_int t i)
        | F a -> Printf.sprintf "%g" a.(i))
  in
  Printf.sprintf "tensor<%s>[%s%s]"
    (Util.shape_to_string t.shape)
    (String.concat ", " elems)
    (if n > shown then ", ..." else "")

(* ----- element-wise operations ----- *)

let int_binop name : int -> int -> int =
  match name with
  | "add" -> ( + )
  | "sub" -> ( - )
  | "mul" -> ( * )
  | "div" -> fun a b -> if b = 0 then 0 else a / b
  | "rem" -> fun a b -> if b = 0 then 0 else a mod b
  | "min" -> min
  | "max" -> max
  | "and" -> ( land )
  | "or" -> ( lor )
  | "xor" -> ( lxor )
  | "shl" -> ( lsl )
  | "shr" -> ( asr )
  | _ -> invalid_arg ("Tensor.int_binop: " ^ name)

let float_binop name : float -> float -> float =
  match name with
  | "add" -> ( +. )
  | "sub" -> ( -. )
  | "mul" -> ( *. )
  | "div" -> ( /. )
  | "min" -> min
  | "max" -> max
  | _ -> invalid_arg ("Tensor.float_binop: " ^ name)

let map2 name a b =
  if a.shape <> b.shape then invalid_arg "Tensor.map2: shape mismatch";
  match (a.data, b.data) with
  | I x, I y ->
    (* binop and dtype resolved once, not per element; every index is in
       range (x and y have equal shapes) *)
    let f = int_binop name in
    let n = Array.length x in
    let out = Array.make n 0 in
    (match a.dtype with
    | Types.I64 ->
      for i = 0 to n - 1 do
        Array.unsafe_set out i
          (f (Array.unsafe_get x i) (Array.unsafe_get y i))
      done
    | dt ->
      for i = 0 to n - 1 do
        Array.unsafe_set out i
          (wrap dt (f (Array.unsafe_get x i) (Array.unsafe_get y i)))
      done);
    { a with data = I out }
  | F x, F y ->
    { a with data = F (Array.init (Array.length x) (fun i -> float_binop name x.(i) y.(i))) }
  | (I _ | I8 _ | I16 _), (I _ | I8 _ | I16 _) ->
    let f = int_binop name in
    let out = zeros a.shape a.dtype in
    for i = 0 to num_elements a - 1 do
      set_int out i (f (get_int a i) (get_int b i))
    done;
    out
  | _ -> invalid_arg "Tensor.map2: mixed payloads"

let map_not a =
  match a.data with
  | I x -> { a with data = I (Array.map (fun v -> wrap a.dtype (lnot v)) x) }
  | I8 _ | I16 _ ->
    let out = zeros a.shape a.dtype in
    for i = 0 to num_elements a - 1 do
      set_int out i (lnot (get_int a i))
    done;
    out
  | F _ -> invalid_arg "Tensor.map_not: float tensor"

let fill_scalar shape dtype v =
  let t = zeros shape dtype in
  (match t.data with
  | I a -> Array.fill a 0 (Array.length a) (wrap dtype v)
  | F a -> Array.fill a 0 (Array.length a) (float_of_int v)
  | I8 _ | I16 _ ->
    for i = 0 to num_elements t - 1 do
      set_int t i v
    done);
  t

let fill_float shape dtype v =
  let t = zeros shape dtype in
  (match t.data with
  | F a -> Array.fill a 0 (Array.length a) v
  | I _ | I8 _ | I16 _ -> invalid_arg "Tensor.fill_float: integer dtype");
  t

(* ----- linear algebra ----- *)

let matmul a b =
  match (a.shape, b.shape) with
  | [| m; k |], [| k'; n |] when k = k' ->
    let out = zeros [| m; n |] a.dtype in
    (* i-p-j loop order: both the B row [y.(p*n + _)] and the accumulator
       row are walked with stride 1 (the j-inner order strides B by n and
       thrashes the cache for the 256-wide paper shapes). Each output
       element still accumulates over p in ascending order, so results are
       bit-identical to the naive order. *)
    if is_int a then begin
      match (a.data, b.data, out.data) with
      | I x, I y, I z ->
        (* every index below is in range by construction (x: m*k, y: k*n,
           z: m*n, row: n), so the checks are elided in the hot loop *)
        let row = Array.make n 0 in
        for i = 0 to m - 1 do
          Array.fill row 0 n 0;
          (* p unrolled by 4: native ints add exactly (mod 2^63), so
             combining four products before the accumulator add is
             bit-identical to the scalar order while quartering the
             accumulator-row load/store traffic *)
          let xoff = i * k in
          let p = ref 0 in
          while !p + 3 < k do
            let p0 = !p in
            let xv0 = Array.unsafe_get x (xoff + p0)
            and xv1 = Array.unsafe_get x (xoff + p0 + 1)
            and xv2 = Array.unsafe_get x (xoff + p0 + 2)
            and xv3 = Array.unsafe_get x (xoff + p0 + 3) in
            if xv0 lor xv1 lor xv2 lor xv3 <> 0 then begin
              let y0 = p0 * n in
              let y1 = y0 + n in
              let y2 = y1 + n in
              let y3 = y2 + n in
              for j = 0 to n - 1 do
                Array.unsafe_set row j
                  (Array.unsafe_get row j
                  + (xv0 * Array.unsafe_get y (y0 + j))
                  + (xv1 * Array.unsafe_get y (y1 + j))
                  + (xv2 * Array.unsafe_get y (y2 + j))
                  + (xv3 * Array.unsafe_get y (y3 + j)))
              done
            end;
            p := p0 + 4
          done;
          while !p < k do
            let xv = Array.unsafe_get x (xoff + !p) in
            if xv <> 0 then begin
              let yoff = !p * n in
              for j = 0 to n - 1 do
                Array.unsafe_set row j
                  (Array.unsafe_get row j + (xv * Array.unsafe_get y (yoff + j)))
              done
            end;
            incr p
          done;
          let zoff = i * n in
          for j = 0 to n - 1 do
            Array.unsafe_set z (zoff + j) (wrap a.dtype (Array.unsafe_get row j))
          done
        done
      | _ ->
        (* narrow (Bytes-backed) payloads: same loop order and row
           accumulator, element access through the generic getters *)
        let row = Array.make n 0 in
        for i = 0 to m - 1 do
          Array.fill row 0 n 0;
          for p = 0 to k - 1 do
            let xv = get_int a ((i * k) + p) in
            if xv <> 0 then begin
              let yoff = p * n in
              for j = 0 to n - 1 do
                row.(j) <- row.(j) + (xv * get_int b (yoff + j))
              done
            end
          done;
          let zoff = i * n in
          for j = 0 to n - 1 do
            set_int out (zoff + j) row.(j)
          done
        done
    end
    else begin
      let row = Array.make n 0.0 in
      for i = 0 to m - 1 do
        Array.fill row 0 n 0.0;
        for p = 0 to k - 1 do
          let xv = get_float a ((i * k) + p) in
          let yoff = p * n in
          for j = 0 to n - 1 do
            row.(j) <- row.(j) +. (xv *. get_float b (yoff + j))
          done
        done;
        let zoff = i * n in
        for j = 0 to n - 1 do
          set_float out (zoff + j) row.(j)
        done
      done
    end;
    out
  | _ -> invalid_arg "Tensor.matmul: shape mismatch"

let matvec a v =
  match (a.shape, v.shape) with
  | [| m; n |], [| n' |] when n = n' ->
    let out = zeros [| m |] a.dtype in
    (match out.data with
    | F _ ->
      for i = 0 to m - 1 do
        let acc = ref 0.0 in
        for j = 0 to n - 1 do
          acc := !acc +. (get_float a ((i * n) + j) *. get_float v j)
        done;
        set_float out i !acc
      done
    | I _ | I8 _ | I16 _ ->
      for i = 0 to m - 1 do
        let acc = ref 0 in
        for j = 0 to n - 1 do
          acc := !acc + (get_int a ((i * n) + j) * get_int v j)
        done;
        set_int out i !acc
      done);
    out
  | _ -> invalid_arg "Tensor.matvec: shape mismatch"

let dot a b =
  if a.shape <> b.shape then invalid_arg "Tensor.dot: shape mismatch";
  let acc = ref 0 in
  for i = 0 to num_elements a - 1 do
    acc := !acc + (get_int a i * get_int b i)
  done;
  wrap a.dtype !acc

let dot_f a b =
  if a.shape <> b.shape then invalid_arg "Tensor.dot_f: shape mismatch";
  let acc = ref 0.0 in
  for i = 0 to num_elements a - 1 do
    acc := !acc +. (get_float a i *. get_float b i)
  done;
  !acc

let conv_2d img kernel =
  match (img.shape, kernel.shape) with
  | [| h; w |], [| kh; kw |] ->
    let oh = h - kh + 1 and ow = w - kw + 1 in
    let out = zeros [| oh; ow |] img.dtype in
    (match out.data with
    | F _ ->
      for i = 0 to oh - 1 do
        for j = 0 to ow - 1 do
          let acc = ref 0.0 in
          for di = 0 to kh - 1 do
            for dj = 0 to kw - 1 do
              acc :=
                !acc
                +. (get_float img (((i + di) * w) + j + dj)
                   *. get_float kernel ((di * kw) + dj))
            done
          done;
          set_float out ((i * ow) + j) !acc
        done
      done
    | I _ | I8 _ | I16 _ ->
      for i = 0 to oh - 1 do
        for j = 0 to ow - 1 do
          let acc = ref 0 in
          for di = 0 to kh - 1 do
            for dj = 0 to kw - 1 do
              acc := !acc + (get_int img (((i + di) * w) + j + dj) * get_int kernel ((di * kw) + dj))
            done
          done;
          set_int out ((i * ow) + j) !acc
        done
      done);
    out
  | _ -> invalid_arg "Tensor.conv_2d: rank-2 required"

let transpose t perms =
  let rank = Array.length t.shape in
  if Array.length perms <> rank then invalid_arg "Tensor.transpose: perms rank";
  let out_shape = Array.map (fun p -> t.shape.(p)) perms in
  let out = zeros out_shape t.dtype in
  (* Walk the input sequentially and maintain the permuted output offset
     incrementally with an odometer over the input index — no per-element
     index array allocations. [w.(j)] is the output stride contributed by
     input dimension [j]. *)
  let ostrides = Array.make rank 1 in
  for i = rank - 2 downto 0 do
    ostrides.(i) <- ostrides.(i + 1) * out_shape.(i + 1)
  done;
  let w = Array.make rank 0 in
  Array.iteri (fun i p -> w.(p) <- ostrides.(i)) perms;
  let copy_elt =
    match out.data with
    | F _ -> fun src dst -> set_float out dst (get_float t src)
    | I _ | I8 _ | I16 _ -> fun src dst -> set_int out dst (get_int t src)
  in
  let idx = Array.make rank 0 in
  let ooff = ref 0 in
  let n = num_elements t in
  for off = 0 to n - 1 do
    copy_elt off !ooff;
    let j = ref (rank - 1) in
    let carry = ref true in
    while !carry && !j >= 0 do
      idx.(!j) <- idx.(!j) + 1;
      ooff := !ooff + w.(!j);
      if idx.(!j) = t.shape.(!j) then begin
        idx.(!j) <- 0;
        ooff := !ooff - (w.(!j) * t.shape.(!j));
        decr j
      end
      else carry := false
    done
  done;
  out

(* ----- reductions and data analytics ops (cinm Table 1) ----- *)

let reduce op t =
  let n = num_elements t in
  if n = 0 then 0
  else begin
    let acc = ref (get_int t 0) in
    for i = 1 to n - 1 do
      acc := int_binop op !acc (get_int t i)
    done;
    wrap t.dtype !acc
  end

let reduce_f op t =
  let n = num_elements t in
  if n = 0 then 0.0
  else begin
    let f = float_binop op in
    let acc = ref (get_float t 0) in
    for i = 1 to n - 1 do
      acc := f !acc (get_float t i)
    done;
    !acc
  end

let scan op t =
  let out = copy t in
  let n = num_elements t in
  (match out.data with
  | F a ->
    let f = float_binop op in
    for i = 1 to n - 1 do
      a.(i) <- f a.(i - 1) a.(i)
    done
  | I _ | I8 _ | I16 _ ->
    for i = 1 to n - 1 do
      set_int out i (int_binop op (get_int out (i - 1)) (get_int out i))
    done);
  out

let histogram ~bins t =
  let out = zeros [| bins |] t.dtype in
  for i = 0 to num_elements t - 1 do
    let v = get_int t i in
    if v >= 0 && v < bins then set_int out v (get_int out v + 1)
  done;
  out

let pop_count t =
  let count = ref 0 in
  for i = 0 to num_elements t - 1 do
    let v = get_int t i land 0xFFFFFFFF in
    let rec bits x acc = if x = 0 then acc else bits (x lsr 1) (acc + (x land 1)) in
    count := !count + bits v 0
  done;
  !count

(* Bit-wise majority across all elements: bit b of the result is 1 iff a
   strict majority of elements have bit b set (the RTM majority op). *)
let majority t =
  let n = num_elements t in
  let out = zeros [| 1 |] t.dtype in
  let bits = Types.dtype_bits t.dtype in
  let result = ref 0 in
  for b = 0 to min 31 (bits - 1) do
    let ones = ref 0 in
    for i = 0 to n - 1 do
      if (get_int t i lsr b) land 1 = 1 then incr ones
    done;
    if 2 * !ones > n then result := !result lor (1 lsl b)
  done;
  set_int out 0 !result;
  out

let topk ~k t =
  let n = num_elements t in
  if k > n then invalid_arg "Tensor.topk: k > size";
  let indexed = Array.init n (fun i -> (get_int t i, i)) in
  Array.sort (fun (a, ia) (b, ib) -> if b <> a then compare b a else compare ia ib) indexed;
  let values = zeros [| k |] t.dtype in
  let indices = zeros [| k |] Types.I32 in
  for i = 0 to k - 1 do
    let v, idx = indexed.(i) in
    set_int values i v;
    set_int indices i idx
  done;
  (values, indices)

(* Similarity search: score each window of [db] (len = |query|) against the
   query with the metric, return k best (values = scores). *)
let sim_search ~metric ~k db query =
  let n = num_elements db and m = num_elements query in
  if m = 0 || m > n then invalid_arg "Tensor.sim_search";
  let windows = n - m + 1 in
  let score w =
    let acc = ref 0 in
    for i = 0 to m - 1 do
      let d = get_int db (w + i) and q = get_int query i in
      (match metric with
      | "dot" -> acc := !acc + (d * q)
      | "l2" -> acc := !acc - ((d - q) * (d - q))
      | "hamming" ->
        let x = (d lxor q) land 0xFFFFFFFF in
        let rec bits v a = if v = 0 then a else bits (v lsr 1) (a + (v land 1)) in
        acc := !acc - bits x 0
      | _ -> invalid_arg ("Tensor.sim_search: metric " ^ metric))
    done;
    !acc
  in
  let scores = Array.init windows (fun w -> (score w, w)) in
  Array.sort (fun (a, ia) (b, ib) -> if b <> a then compare b a else compare ia ib) scores;
  let values = zeros [| k |] db.dtype in
  let indices = zeros [| k |] Types.I32 in
  for i = 0 to k - 1 do
    let v, idx = scores.(i) in
    set_int values i v;
    set_int indices i idx
  done;
  (values, indices)

(* ----- shape manipulation ----- *)

let reshape t new_shape =
  if Util.product_of_shape new_shape <> num_elements t then
    invalid_arg "Tensor.reshape: element count mismatch";
  { t with shape = new_shape }

(* Copy a [sizes]-shaped region between two integer payloads, one
   innermost-dimension row per [Array.blit]. The callers' slow paths pay a
   [delinearize] (and its allocations) per *element*; these staging moves
   run once per tile per loop iteration in the lowered CIM/CNM programs,
   so they are squarely on the hot path. Caller has validated bounds and
   that both tensors share a dtype (values are already wrapped, so a raw
   copy is bit-identical to the get/set round-trip). *)
let blit_region (s : int array) src_shape src_off (d : int array) dst_shape dst_off
    sizes =
  let rank = Array.length sizes in
  let row = sizes.(rank - 1) in
  let outer = ref 1 in
  for i = 0 to rank - 2 do
    outer := !outer * sizes.(i)
  done;
  let idx = Array.make (max (rank - 1) 0) 0 in
  for _r = 0 to !outer - 1 do
    let sbase = ref 0 and dbase = ref 0 in
    for i = 0 to rank - 1 do
      let c = if i < rank - 1 then idx.(i) else 0 in
      sbase := (!sbase * src_shape.(i)) + c + src_off.(i);
      dbase := (!dbase * dst_shape.(i)) + c + dst_off.(i)
    done;
    Array.blit s !sbase d !dbase row;
    let j = ref (rank - 2) in
    let carry = ref true in
    while !carry && !j >= 0 do
      idx.(!j) <- idx.(!j) + 1;
      if idx.(!j) = sizes.(!j) then begin
        idx.(!j) <- 0;
        decr j
      end
      else carry := false
    done
  done

let region_in_bounds shape off sizes =
  let rank = Array.length shape in
  Array.length off = rank
  && Array.length sizes = rank
  &&
  let ok = ref true in
  for i = 0 to rank - 1 do
    if off.(i) < 0 || off.(i) + sizes.(i) > shape.(i) then ok := false
  done;
  !ok

let pad t ~low ~high =
  let rank = Array.length t.shape in
  let out_shape = Array.mapi (fun i d -> d + low.(i) + high.(i)) t.shape in
  let out = zeros out_shape t.dtype in
  (match (t.data, out.data) with
  | I s, I d when rank > 0 && region_in_bounds out_shape low t.shape ->
    blit_region s t.shape (Array.make rank 0) d out_shape low t.shape
  | F _, F _ when rank > 0 && region_in_bounds out_shape low t.shape ->
    let n = num_elements t in
    for off = 0 to n - 1 do
      let idx = Util.delinearize t.shape off in
      let out_idx = Array.init rank (fun i -> idx.(i) + low.(i)) in
      set_float out (Util.linearize out_shape out_idx) (get_float t off)
    done
  | _ ->
    let n = num_elements t in
    for off = 0 to n - 1 do
      let idx = Util.delinearize t.shape off in
      let out_idx = Array.init rank (fun i -> idx.(i) + low.(i)) in
      set_int out (Util.linearize out_shape out_idx) (get_int t off)
    done);
  out

let extract_slice t ~offsets ~sizes =
  let rank = Array.length t.shape in
  let out = zeros sizes t.dtype in
  (match (t.data, out.data) with
  | I s, I d when rank > 0 && region_in_bounds t.shape offsets sizes ->
    blit_region s t.shape offsets d sizes (Array.make rank 0) sizes
  | F _, F _ when rank > 0 && region_in_bounds t.shape offsets sizes ->
    let n = Util.product_of_shape sizes in
    for off = 0 to n - 1 do
      let idx = Util.delinearize sizes off in
      let src_idx = Array.init rank (fun i -> idx.(i) + offsets.(i)) in
      set_float out off (get_float t (Util.linearize t.shape src_idx))
    done
  | _ ->
    let n = Util.product_of_shape sizes in
    for off = 0 to n - 1 do
      let idx = Util.delinearize sizes off in
      let src_idx = Array.init rank (fun i -> idx.(i) + offsets.(i)) in
      set_int out off (get_int t (Util.linearize t.shape src_idx))
    done);
  out

(* Value semantics: returns a fresh tensor with [src] written at [offsets]. *)
let insert_slice src dst ~offsets =
  let out = copy dst in
  let rank = Array.length dst.shape in
  (match (src.data, out.data) with
  | I s, I d
    when rank > 0
         && src.dtype = dst.dtype
         && region_in_bounds dst.shape offsets src.shape ->
    blit_region s src.shape (Array.make rank 0) d dst.shape offsets src.shape
  | F _, F _
    when rank > 0
         && src.dtype = dst.dtype
         && region_in_bounds dst.shape offsets src.shape ->
    let n = num_elements src in
    for off = 0 to n - 1 do
      let idx = Util.delinearize src.shape off in
      let dst_idx = Array.init rank (fun i -> idx.(i) + offsets.(i)) in
      set_float out (Util.linearize dst.shape dst_idx) (get_float src off)
    done
  | _ ->
    let n = num_elements src in
    for off = 0 to n - 1 do
      let idx = Util.delinearize src.shape off in
      let dst_idx = Array.init rank (fun i -> idx.(i) + offsets.(i)) in
      set_int out (Util.linearize dst.shape dst_idx) (get_int src off)
    done);
  out

let im2col img ~kh ~kw =
  match img.shape with
  | [| h; w |] ->
    let oh = h - kh + 1 and ow = w - kw + 1 in
    let out = zeros [| oh * ow; kh * kw |] img.dtype in
    let copy_elt =
      match out.data with
      | F _ -> fun src dst -> set_float out dst (get_float img src)
      | I _ | I8 _ | I16 _ -> fun src dst -> set_int out dst (get_int img src)
    in
    for i = 0 to oh - 1 do
      for j = 0 to ow - 1 do
        for di = 0 to kh - 1 do
          for dj = 0 to kw - 1 do
            copy_elt
              (((i + di) * w) + j + dj)
              ((((i * ow) + j) * kh * kw) + (di * kw) + dj)
          done
        done
      done
    done;
    out
  | _ -> invalid_arg "Tensor.im2col: rank-2 required"

(* ----- einsum (two-operand contraction) ----- *)

let einsum ~spec a b =
  let a_idx, b_idx, out_idx = Cinm_dialects.Linalg_d.parse_einsum_spec spec in
  let dims = Hashtbl.create 8 in
  String.iteri (fun i c -> Hashtbl.replace dims c a.shape.(i)) a_idx;
  String.iteri
    (fun i c ->
      match Hashtbl.find_opt dims c with
      | Some d when d <> b.shape.(i) -> invalid_arg "Tensor.einsum: dim mismatch"
      | _ -> Hashtbl.replace dims c b.shape.(i))
    b_idx;
  let out_shape = Array.init (String.length out_idx) (fun i -> Hashtbl.find dims out_idx.[i]) in
  (* reduction indices: appear in inputs but not in output *)
  let red_idx =
    let seen = Hashtbl.create 8 in
    let add c =
      if (not (String.contains out_idx c)) && not (Hashtbl.mem seen c) then
        Hashtbl.replace seen c ()
    in
    String.iter add a_idx;
    String.iter add b_idx;
    Hashtbl.fold (fun c () acc -> c :: acc) seen [] |> List.sort compare
  in
  let red_shape = Array.of_list (List.map (Hashtbl.find dims) red_idx) in
  let out = zeros out_shape a.dtype in
  let n_out = Util.product_of_shape out_shape in
  let n_red = Util.product_of_shape red_shape in
  (* Flat-offset evaluation: each input's offset is a linear function of
     the output position and the reduction position, so precompute the
     stride weight each (out dim, red dim) contributes to each input and
     walk the reduction space with an incremental odometer. Accumulation
     order per output element (ascending reduction offset) is unchanged,
     so results are bit-identical to index-tuple evaluation. *)
  let rank_out = Array.length out_shape in
  let rank_red = Array.length red_shape in
  let strides shape =
    let rank = Array.length shape in
    let s = Array.make rank 1 in
    for i = rank - 2 downto 0 do
      s.(i) <- s.(i + 1) * shape.(i + 1)
    done;
    s
  in
  let weights idx_str shape =
    let s = strides shape in
    let w_out = Array.make rank_out 0 in
    let w_red = Array.make rank_red 0 in
    String.iteri
      (fun i c ->
        match String.index_opt out_idx c with
        | Some k -> w_out.(k) <- w_out.(k) + s.(i)
        | None ->
          let k = ref 0 in
          List.iteri (fun j c' -> if c' = c then k := j) red_idx;
          w_red.(!k) <- w_red.(!k) + s.(i))
      idx_str;
    (w_out, w_red)
  in
  let wa_out, wa_red = weights a_idx a.shape in
  let wb_out, wb_red = weights b_idx b.shape in
  let red_pos = Array.make rank_red 0 in
  (* The reduction odometer is shared between the int and float engines:
     it advances [off_a]/[off_b] by the precomputed stride weights and
     wraps each exhausted reduction dimension. *)
  let step off_a off_b =
    let j = ref (rank_red - 1) in
    let carry = ref true in
    while !carry && !j >= 0 do
      red_pos.(!j) <- red_pos.(!j) + 1;
      off_a := !off_a + wa_red.(!j);
      off_b := !off_b + wb_red.(!j);
      if red_pos.(!j) = red_shape.(!j) then begin
        red_pos.(!j) <- 0;
        off_a := !off_a - (wa_red.(!j) * red_shape.(!j));
        off_b := !off_b - (wb_red.(!j) * red_shape.(!j));
        decr j
      end
      else carry := false
    done
  in
  let bases o =
    let out_pos = Util.delinearize out_shape o in
    let base_a = ref 0 and base_b = ref 0 in
    for i = 0 to rank_out - 1 do
      base_a := !base_a + (wa_out.(i) * out_pos.(i));
      base_b := !base_b + (wb_out.(i) * out_pos.(i))
    done;
    (!base_a, !base_b)
  in
  (match out.data with
  | F _ ->
    for o = 0 to n_out - 1 do
      let base_a, base_b = bases o in
      Array.fill red_pos 0 rank_red 0;
      let off_a = ref base_a and off_b = ref base_b in
      let acc = ref 0.0 in
      for _r = 0 to n_red - 1 do
        acc := !acc +. (get_float a !off_a *. get_float b !off_b);
        step off_a off_b
      done;
      set_float out o !acc
    done
  | I _ | I8 _ | I16 _ ->
    (* int-array payloads skip the per-element payload dispatch; the
       offsets are in range by construction of the stride weights *)
    let ga, gb =
      match (a.data, b.data) with
      | I xa, I xb ->
        ((fun i -> Array.unsafe_get xa i), fun i -> Array.unsafe_get xb i)
      | _ -> ((fun i -> get_int a i), fun i -> get_int b i)
    in
    for o = 0 to n_out - 1 do
      let base_a, base_b = bases o in
      Array.fill red_pos 0 rank_red 0;
      let off_a = ref base_a and off_b = ref base_b in
      let acc = ref 0 in
      for _r = 0 to n_red - 1 do
        acc := !acc + (ga !off_a * gb !off_b);
        step off_a off_b
      done;
      set_int out o !acc
    done);
  out

(* ----- flat copies (scatter / gather / DMA fast paths) ----- *)

(* Contiguous flat-range copy with the exact semantics of the elementwise
   loop [set_int dst (doff+i) (get_int src (soff+i))]. Same-dtype integer
   payloads take a raw blit (already-wrapped values, so bit-identical);
   everything else — float payloads, dtype or payload mismatches, and
   out-of-range arguments — falls back to the loop so error behavior and
   the int<->float truncating round-trip are unchanged. *)
let blit src soff dst doff len =
  let slow () =
    for i = 0 to len - 1 do
      set_int dst (doff + i) (get_int src (soff + i))
    done
  in
  let fits =
    len >= 0 && soff >= 0 && doff >= 0
    && soff + len <= num_elements src
    && doff + len <= num_elements dst
  in
  if fits && src.dtype = dst.dtype then
    match (src.data, dst.data) with
    | I a, I b -> Array.blit a soff b doff len
    | I8 a, I8 b -> Bytes.blit a soff b doff len
    | I16 a, I16 b -> Bytes.blit a (2 * soff) b (2 * doff) (2 * len)
    | F a, F b -> Array.blit a soff b doff len
    | _ -> slow ()
  else slow ()

(* Strided gather into a contiguous range: copies
   [src.(soff + i*sstride)] to [dst.(doff + i)] for [i < len], with the
   same fallback rules as {!blit}. Serves the cyclic distribution map. *)
let blit_strided src soff sstride dst doff len =
  let slow () =
    for i = 0 to len - 1 do
      set_int dst (doff + i) (get_int src (soff + (i * sstride)))
    done
  in
  let fits =
    len >= 0 && soff >= 0 && doff >= 0 && sstride >= 0
    && soff + ((len - 1) * sstride) < num_elements src
    && doff + len <= num_elements dst
  in
  if len > 0 then
    if fits && src.dtype = dst.dtype then
      match (src.data, dst.data) with
      | I a, I b ->
        for i = 0 to len - 1 do
          Array.unsafe_set b (doff + i) (Array.unsafe_get a (soff + (i * sstride)))
        done
      | F a, F b ->
        for i = 0 to len - 1 do
          Array.unsafe_set b (doff + i) (Array.unsafe_get a (soff + (i * sstride)))
        done
      | _ -> slow ()
    else slow ()

(* ----- arena: recycled tensor storage ----- *)

(* The simulators allocate short-lived tensors at a high rate: per-PU MRAM
   buffers per run, WRAM scratch per launch, staging copies per crossbar
   program. The arena keeps free lists of released storage keyed by
   (layout class, element count) so those allocations recycle instead of
   churning the major heap. [alloc] zero-fills recycled storage, so an
   arena tensor is indistinguishable from [zeros]. Callers own the
   lifetime discipline: release only tensors that can no longer be
   reached (and at most once). *)
module Arena = struct
  let lock = Mutex.create ()
  let pools : (int * int, payload list ref) Hashtbl.t = Hashtbl.create 64

  (* cap per free list: bounds arena growth when sizes never repeat *)
  let max_per_key = 64

  let class_of_dtype = function
    | Types.F32 | Types.F64 -> 3
    | Types.I8 -> 1
    | Types.I16 -> 2
    | _ -> 0

  let alloc shape dtype =
    let n = Util.product_of_shape shape in
    let recycled =
      Mutex.lock lock;
      let r =
        match Hashtbl.find_opt pools (class_of_dtype dtype, n) with
        | Some ({ contents = p :: tl } as r) ->
          r := tl;
          Some p
        | _ -> None
      in
      Mutex.unlock lock;
      r
    in
    match recycled with
    | None -> zeros shape dtype
    | Some p ->
      (match p with
      | I a -> Array.fill a 0 n 0
      | I8 b -> Bytes.fill b 0 n '\000'
      | I16 b -> Bytes.fill b 0 (2 * n) '\000'
      | F a -> Array.fill a 0 n 0.0);
      { shape; dtype; data = p }

  let release t =
    let key = (class_of_dtype t.dtype, num_elements t) in
    Mutex.lock lock;
    (match Hashtbl.find_opt pools key with
    | Some r -> if List.length !r < max_per_key then r := t.data :: !r
    | None -> Hashtbl.replace pools key (ref [ t.data ]));
    Mutex.unlock lock

  let clear () =
    Mutex.lock lock;
    Hashtbl.reset pools;
    Mutex.unlock lock

  type stats = { keys : int; pooled : int; largest_pool : int }

  (* Snapshot for tests and the serve daemon's stats endpoint; also the
     observable contract of [max_per_key] (largest_pool never exceeds
     it), which the churn test asserts under concurrent load. *)
  let stats () =
    Mutex.lock lock;
    let s =
      Hashtbl.fold
        (fun _ r acc ->
          let n = List.length !r in
          {
            keys = acc.keys + 1;
            pooled = acc.pooled + n;
            largest_pool = max acc.largest_pool n;
          })
        pools
        { keys = 0; pooled = 0; largest_pool = 0 }
    in
    Mutex.unlock lock;
    s

  let max_per_key () = max_per_key
end
