(** Runtime tensors: the data compiled programs compute on. Integer tensors
    use wrap-around semantics at their declared bit width (the paper's
    workloads are INT32). This module doubles as the reference host
    implementation of every compute op in the cinm/linalg dialects. *)

open Cinm_ir

(** Unboxed storage selected by dtype: [I] for i1/i32/i64 (explicit wrap on
    store), [I8]/[I16] for the narrow widths ([Bytes] accessors truncate on
    store and sign-extend on load — the wrap semantics for free), [F] for
    floats. *)
type payload = I of int array | I8 of Bytes.t | I16 of Bytes.t | F of float array

type t = { shape : int array; dtype : Types.dtype; data : payload }

val num_elements : t -> int
val is_int : t -> bool

(** Wrap an integer to the dtype's width, signed. *)
val wrap : Types.dtype -> int -> int

val zeros : int array -> Types.dtype -> t
val of_int_array : ?dtype:Types.dtype -> int array -> int array -> t
val of_float_array : ?dtype:Types.dtype -> int array -> float array -> t

(** [init shape f] builds an integer tensor with element [i] = [f i]
    (flattened index), wrapped to the dtype. *)
val init : ?dtype:Types.dtype -> int array -> (int -> int) -> t

val copy : t -> t

(** Flat-index element access. *)
val get_int : t -> int -> int

val get_float : t -> int -> float
val set_int : t -> int -> int -> unit
val set_float : t -> int -> float -> unit

(** Multi-dimensional element access. *)
val get : t -> int array -> int

val set : t -> int array -> int -> unit
val get_f : t -> int array -> float
val set_f : t -> int array -> float -> unit
val to_int_array : t -> int array

(** Structural equality, dtype and shape first: same-data tensors of
    different dtypes are not equal. Float comparison is NaN-aware (NaNs
    compare equal positionally; [0.0] = [-0.0]). *)
val equal : t -> t -> bool

val to_string : ?max_elems:int -> t -> string

(** [blit src soff dst doff len] copies a contiguous flat range with the
    exact semantics of [set_int dst (doff+i) (get_int src (soff+i))];
    same-dtype integer payloads take a raw blit, everything else (floats,
    mismatches, out-of-range) falls back to that elementwise loop. *)
val blit : t -> int -> t -> int -> int -> unit

(** [blit_strided src soff sstride dst doff len] copies
    [src.(soff + i*sstride)] to [dst.(doff + i)], same fallback rules as
    {!blit}. *)
val blit_strided : t -> int -> int -> t -> int -> int -> unit

(** {1 Element-wise} *)

(** Scalar integer semantics of a named binop ("add", "min", "xor", ...).
    @raise Invalid_argument on unknown names. *)
val int_binop : string -> int -> int -> int

val float_binop : string -> float -> float -> float
val map2 : string -> t -> t -> t
val map_not : t -> t
val fill_scalar : int array -> Types.dtype -> int -> t

(** [fill_float shape dtype v] is a float tensor with every element [v].
    @raise Invalid_argument on integer dtypes (use {!fill_scalar}). *)
val fill_float : int array -> Types.dtype -> float -> t

(** {1 Linear algebra} *)

val matmul : t -> t -> t
val matvec : t -> t -> t

(** Integer dot product (wrapped to the dtype). For float tensors use
    {!dot_f} — this one truncates every element. *)
val dot : t -> t -> int

val dot_f : t -> t -> float
val conv_2d : t -> t -> t
val transpose : t -> int array -> t

(** {1 Reductions and analytics (cinm Table 1)} *)

(** Integer reduction (wrapped). For float tensors use {!reduce_f}. *)
val reduce : string -> t -> int

val reduce_f : string -> t -> float
val scan : string -> t -> t
val histogram : bins:int -> t -> t
val pop_count : t -> int

(** Bit-wise majority across all elements (the RTM majority op). *)
val majority : t -> t

(** Top-[k] values and their indices, ties broken towards lower indices. *)
val topk : k:int -> t -> t * t

(** Score every length-|query| window of [db] with the metric ("dot", "l2"
    or "hamming"; larger is more similar) and return the [k] best. *)
val sim_search : metric:string -> k:int -> t -> t -> t * t

(** {1 Shape manipulation} *)

val reshape : t -> int array -> t
val pad : t -> low:int array -> high:int array -> t
val extract_slice : t -> offsets:int array -> sizes:int array -> t

(** Value semantics: a fresh tensor with [src] written at [offsets]. *)
val insert_slice : t -> t -> offsets:int array -> t

val im2col : t -> kh:int -> kw:int -> t

(** Two-operand einsum, e.g. [einsum ~spec:"aebf,dfce->abcd" a b]. *)
val einsum : spec:string -> t -> t -> t

(** {1 Arena}

    Free lists of recycled tensor storage, keyed by layout class and
    element count, shared process-wide (thread-safe). [alloc] is a drop-in
    for {!zeros} (recycled storage is zero-filled); [release] returns a
    tensor's storage to the arena — callers must guarantee the tensor is
    unreachable afterwards and release it at most once. *)
module Arena : sig
  val alloc : int array -> Types.dtype -> t
  val release : t -> unit

  (** Drop all pooled storage (tests). *)
  val clear : unit -> unit

  (** Free-list snapshot: number of (class, size) keys holding storage,
      total pooled payloads, and the largest single free list — the
      latter is bounded by {!max_per_key} at all times, which the
      concurrent churn test asserts. *)
  type stats = { keys : int; pooled : int; largest_pool : int }

  val stats : unit -> stats

  (** The per-key free-list cap. *)
  val max_per_key : unit -> int
end
