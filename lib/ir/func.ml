(* Functions and modules: the top-level containers of the IR.

   A function owns a single region whose entry block's arguments are the
   function parameters; the body is terminated by [func.return]. A module
   is a named collection of functions (MLIR's builtin.module). *)

type t = {
  fname : string;
  arg_tys : Types.t list;
  result_tys : Types.t list;
  body : Ir.region;
  mutable fattrs : (string * Attr.t) list;
}

type modul = { mutable funcs : t list; mutable mattrs : (string * Attr.t) list }

let create ~name ~arg_tys ~result_tys =
  let body = Ir.create_region () in
  let entry = Ir.create_block ~arg_tys () in
  Ir.add_block body entry;
  { fname = name; arg_tys; result_tys; body; fattrs = [] }

let entry_block f = Ir.entry_block f.body

let params f = Array.to_list (entry_block f).Ir.args

let param f i = (entry_block f).Ir.args.(i)

let fn_type f = Types.Func (f.arg_tys, f.result_tys)

let create_module () = { funcs = []; mattrs = [] }

let add_func m f = m.funcs <- m.funcs @ [ f ]

let find_func m name = List.find_opt (fun f -> f.fname = name) m.funcs

let find_func_exn m name =
  match find_func m name with
  | Some f -> f
  | None -> invalid_arg (Printf.sprintf "Func.find_func_exn: no function @%s" name)

let walk fn func = Ir.walk_region fn func.body

(* Replace a function's body in place (used by conversion passes that
   rebuild whole functions). *)
let replace_body f (new_body : Ir.region) =
  Ir.set_region_blocks f.body (Ir.blocks new_body)

let clone f =
  let body, _ = Ir.clone_region f.body in
  { f with body; fattrs = f.fattrs }
