(* Core IR data structures: SSA values, operations with nested regions,
   blocks. Deliberately mirrors MLIR's structure (cf. paper Section 2.1)
   while staying idiomatic OCaml: ops are generic records identified by a
   dialect-qualified name; dialect modules provide typed constructors and
   accessors on top.

   Blocks store their ops in a growable array ([Vec]) so that appending —
   the hot operation of every builder and conversion pass — is amortized
   O(1); building a block of k ops is O(k). Prefer the accessors below
   ([block_ops], [iter_ops], [set_block_ops], ...) over touching the
   backing vector directly. *)

module Vec = Cinm_support.Vec

type value = { vid : int; ty : Types.t; mutable def : def }

and def =
  | Op_result of op * int
  | Block_arg of block * int

and op = {
  oid : int;
  name : string;  (** dialect-qualified, e.g. ["cinm.gemm"] *)
  mutable operands : value array;
  mutable results : value array;  (** set once at creation *)
  mutable attrs : (string * Attr.t) list;
  regions : region array;
  mutable parent : block option;
}

and block = {
  bid : int;
  mutable args : value array;  (** set once at creation *)
  ops : op Vec.t;  (** in execution order *)
  mutable parent_region : region option;
}

and region = { blocks : block Vec.t; mutable parent_op : op option }

(* Id counters are atomic so IR can be *built* from parallel domains
   (e.g. batched bench experiments compiling concurrently); individual
   funcs/modules still belong to one domain at a time. *)
let value_counter = Atomic.make 0
let op_counter = Atomic.make 0
let block_counter = Atomic.make 0

let fresh_value ty def = { vid = Atomic.fetch_and_add value_counter 1 + 1; ty; def }

(* ----- construction ----- *)

let create_region () = { blocks = Vec.create (); parent_op = None }

let create_block ?(arg_tys = []) () =
  let block =
    { bid = Atomic.fetch_and_add block_counter 1 + 1;
      args = [||]; ops = Vec.create (); parent_region = None }
  in
  block.args <-
    Array.of_list (List.mapi (fun i ty -> fresh_value ty (Block_arg (block, i))) arg_tys);
  block

let add_block region block =
  block.parent_region <- Some region;
  Vec.push region.blocks block

let num_blocks region = Vec.length region.blocks

let block_at region i = Vec.get region.blocks i

let blocks region = Vec.to_list region.blocks

let iter_blocks f region = Vec.iter f region.blocks

let entry_block region =
  if Vec.is_empty region.blocks then invalid_arg "Ir.entry_block: empty region"
  else Vec.get region.blocks 0

(* Replace a region's blocks wholesale (conversion passes rebuild whole
   function bodies and then swap them in). *)
let set_region_blocks region bs =
  Vec.clear region.blocks;
  List.iter (fun b -> add_block region b) bs

let create_op ?(operands = []) ?(result_tys = []) ?(attrs = []) ?(regions = []) name =
  let op =
    {
      oid = Atomic.fetch_and_add op_counter 1 + 1;
      name;
      operands = Array.of_list operands;
      results = [||];
      attrs;
      regions = Array.of_list regions;
      parent = None;
    }
  in
  op.results <-
    Array.of_list (List.mapi (fun i ty -> fresh_value ty (Op_result (op, i))) result_tys);
  List.iter (fun r -> r.parent_op <- Some op) regions;
  op

let append_op block op =
  op.parent <- Some block;
  Vec.push block.ops op

(* ----- block op accessors ----- *)

let num_ops block = Vec.length block.ops

let op_at block i = Vec.get block.ops i

let block_ops block = Vec.to_list block.ops

let iter_ops f block = Vec.iter f block.ops

let last_op block = Vec.last block.ops

let clear_ops block = Vec.clear block.ops

let set_block_ops block l =
  Vec.clear block.ops;
  List.iter (fun op -> append_op block op) l

let map_ops_in_place f block =
  Vec.map_in_place
    (fun op ->
      let op' = f op in
      op'.parent <- Some block;
      op')
    block.ops

(* Keep only the ops satisfying [p]; returns whether anything was removed. *)
let filter_ops_in_place p block =
  let before = Vec.length block.ops in
  Vec.filter_in_place p block.ops;
  Vec.length block.ops <> before

(* ----- accessors ----- *)

let operand op i =
  if i < 0 || i >= Array.length op.operands then
    invalid_arg (Printf.sprintf "Ir.operand %d of %s" i op.name);
  op.operands.(i)

let result op i =
  if i < 0 || i >= Array.length op.results then
    invalid_arg (Printf.sprintf "Ir.result %d of %s" i op.name);
  op.results.(i)

let num_operands op = Array.length op.operands
let num_results op = Array.length op.results

let attr op name = List.assoc_opt name op.attrs

let attr_exn op name =
  match attr op name with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "op %s: missing attribute %s" op.name name)

let int_attr op name = Attr.get_int name (attr_exn op name)
let str_attr op name = Attr.get_str name (attr_exn op name)
let ints_attr op name = Attr.get_ints name (attr_exn op name)
let bool_attr op name = Attr.get_bool name (attr_exn op name)
let float_attr op name = Attr.get_float name (attr_exn op name)

let set_attr op name a = op.attrs <- (name, a) :: List.remove_assoc name op.attrs

let region op i =
  if i < 0 || i >= Array.length op.regions then
    invalid_arg (Printf.sprintf "Ir.region %d of %s" i op.name);
  op.regions.(i)

let dialect_of op =
  match String.index_opt op.name '.' with
  | Some i -> String.sub op.name 0 i
  | None -> op.name

(* ----- traversal ----- *)

let rec walk_op f op =
  f op;
  Array.iter (walk_region f) op.regions

and walk_region f region = Vec.iter (walk_block f) region.blocks
and walk_block f block = Vec.iter (walk_op f) block.ops

(* Replace every use of [old_v] by [new_v] in all ops reachable from
   [region] (including nested regions). *)
let replace_uses_in_region region ~old_v ~new_v =
  walk_region
    (fun op ->
      Array.iteri (fun i v -> if v == old_v then op.operands.(i) <- new_v) op.operands)
    region

(* ----- cloning ----- *)

module Vmap = Map.Make (Int)

let map_value vmap v = match Vmap.find_opt v.vid vmap with Some w -> w | None -> v

let rec clone_op ?(vmap = Vmap.empty) op =
  let operands = Array.to_list (Array.map (map_value vmap) op.operands) in
  let result_tys = Array.to_list (Array.map (fun v -> v.ty) op.results) in
  let vmap_acc = ref vmap in
  let regions =
    Array.to_list op.regions
    |> List.map (fun r ->
           let r', vmap = clone_region ~vmap:!vmap_acc r in
           vmap_acc := vmap;
           r')
  in
  let cloned = create_op ~operands ~result_tys ~attrs:op.attrs ~regions op.name in
  let vmap =
    Array.to_list op.results
    |> List.mapi (fun i v -> (v, cloned.results.(i)))
    |> List.fold_left (fun m (v, w) -> Vmap.add v.vid w m) !vmap_acc
  in
  (cloned, vmap)

and clone_region ?(vmap = Vmap.empty) region =
  let r = create_region () in
  let vmap =
    Vec.fold_left
      (fun vmap block ->
        let arg_tys = Array.to_list (Array.map (fun v -> v.ty) block.args) in
        let b = create_block ~arg_tys () in
        add_block r b;
        Array.to_list block.args
        |> List.mapi (fun i v -> (v, b.args.(i)))
        |> List.fold_left (fun m (v, w) -> Vmap.add v.vid w m) vmap)
      vmap region.blocks
  in
  (* Second pass: clone ops now that all block args are mapped. *)
  let vmap_acc = ref vmap in
  Vec.iteri
    (fun i src ->
      let dst = Vec.get r.blocks i in
      Vec.iter
        (fun op ->
          let op', vmap = clone_op ~vmap:!vmap_acc op in
          append_op dst op';
          vmap_acc := vmap)
        src.ops)
    region.blocks;
  (r, !vmap_acc)
