(** Core IR data structures: SSA values and operations with nested regions,
    mirroring MLIR's structure (paper §2.1). Ops are generic records
    identified by a dialect-qualified name; the dialect modules in
    [cinm_dialects] provide typed constructors on top.

    Blocks and regions store their contents in growable arrays so that
    appending — the hot operation of builders and conversion passes — is
    amortized O(1). Use the accessors ([block_ops], [iter_ops],
    [set_block_ops], [blocks], ...) rather than the backing vectors. *)

module Vec = Cinm_support.Vec

type value = { vid : int; ty : Types.t; mutable def : def }

and def =
  | Op_result of op * int
  | Block_arg of block * int

and op = {
  oid : int;
  name : string;  (** dialect-qualified, e.g. ["cinm.gemm"] *)
  mutable operands : value array;
  mutable results : value array;  (** set once at creation *)
  mutable attrs : (string * Attr.t) list;
  regions : region array;
  mutable parent : block option;
}

and block = {
  bid : int;
  mutable args : value array;  (** set once at creation *)
  ops : op Vec.t;  (** in execution order *)
  mutable parent_region : region option;
}

and region = { blocks : block Vec.t; mutable parent_op : op option }

(** {1 Construction} *)

val create_region : unit -> region
val create_block : ?arg_tys:Types.t list -> unit -> block
val add_block : region -> block -> unit

(** @raise Invalid_argument on an empty region. *)
val entry_block : region -> block

val num_blocks : region -> int

(** @raise Invalid_argument when the index is out of bounds. *)
val block_at : region -> int -> block

(** The blocks as a fresh list (O(n)); prefer [iter_blocks] on hot paths. *)
val blocks : region -> block list

val iter_blocks : (block -> unit) -> region -> unit

(** Replace a region's blocks wholesale, reparenting them. *)
val set_region_blocks : region -> block list -> unit

(** Create an op; one fresh result value is created per entry of
    [result_tys], and the regions' parent pointers are set. *)
val create_op :
  ?operands:value list ->
  ?result_tys:Types.t list ->
  ?attrs:(string * Attr.t) list ->
  ?regions:region list ->
  string ->
  op

(** Append to the end of a block; amortized O(1). *)
val append_op : block -> op -> unit

(** {1 Block contents} *)

val num_ops : block -> int

(** @raise Invalid_argument when the index is out of bounds. *)
val op_at : block -> int -> op

(** The ops as a fresh list (O(n)); prefer [iter_ops]/[op_at] on hot paths. *)
val block_ops : block -> op list

val iter_ops : (op -> unit) -> block -> unit
val last_op : block -> op option
val clear_ops : block -> unit

(** Replace a block's ops wholesale, reparenting them. *)
val set_block_ops : block -> op list -> unit

(** Rewrite each op in place (the replacement is reparented). *)
val map_ops_in_place : (op -> op) -> block -> unit

(** Keep only the ops satisfying the predicate; returns [true] when
    anything was removed. *)
val filter_ops_in_place : (op -> bool) -> block -> bool

(** {1 Accessors} *)

val operand : op -> int -> value
val result : op -> int -> value
val num_operands : op -> int
val num_results : op -> int
val attr : op -> string -> Attr.t option

(** @raise Invalid_argument when the attribute is missing. *)
val attr_exn : op -> string -> Attr.t

val int_attr : op -> string -> int
val str_attr : op -> string -> string
val ints_attr : op -> string -> int array
val bool_attr : op -> string -> bool
val float_attr : op -> string -> float
val set_attr : op -> string -> Attr.t -> unit
val region : op -> int -> region

(** The dialect prefix of an op name (["cinm.gemm"] -> ["cinm"]). *)
val dialect_of : op -> string

(** {1 Traversal} *)

(** Pre-order walk over an op and everything nested inside it. *)
val walk_op : (op -> unit) -> op -> unit

val walk_region : (op -> unit) -> region -> unit
val walk_block : (op -> unit) -> block -> unit

(** Replace every use of [old_v] with [new_v] in all ops reachable from the
    region, including nested regions. *)
val replace_uses_in_region : region -> old_v:value -> new_v:value -> unit

(** {1 Cloning} *)

module Vmap : Map.S with type key = int

(** Look a value up in a clone map, defaulting to the value itself. *)
val map_value : value Vmap.t -> value -> value

(** Deep-clone an op (operands remapped through the map); returns the clone
    and the map extended with original-result -> clone-result entries. *)
val clone_op : ?vmap:value Vmap.t -> op -> op * value Vmap.t

val clone_region : ?vmap:value Vmap.t -> region -> region * value Vmap.t
