(* Parser for the textual IR emitted by [Printer] (MLIR generic op form).
   Hand-rolled scanner + recursive descent; used by the cinm_opt tool and
   by the printer/parser round-trip property tests. *)

type error = { message : string; line : int; col : int; context : string }

exception Parse_error of error

(* Render the source line the error points at, with a caret under the
   offending column. Long lines are windowed around the caret so the
   snippet stays readable. *)
let caret_snippet line_text col =
  let width = 72 in
  let n = String.length line_text in
  let start = if col - 1 > width / 2 then min (col - 1 - (width / 2)) (max 0 (n - width)) else 0 in
  let len = min width (n - start) in
  let shown = String.sub line_text start len in
  let prefix = if start > 0 then "... " else "" in
  let caret_pos = String.length prefix + (col - 1 - start) in
  Printf.sprintf "  %s%s\n  %s^" prefix shown (String.make (max 0 caret_pos) ' ')

let error_at src pos message =
  let pos = min pos (String.length src) in
  let line = ref 1 and bol = ref 0 in
  for i = 0 to pos - 1 do
    if src.[i] = '\n' then begin
      incr line;
      bol := i + 1
    end
  done;
  let eol =
    match String.index_from_opt src !bol '\n' with
    | Some e -> e
    | None -> String.length src
  in
  let col = pos - !bol + 1 in
  let context = caret_snippet (String.sub src !bol (eol - !bol)) col in
  { message; line = !line; col; context }

let error_to_string e =
  Printf.sprintf "%s at line %d, column %d\n%s" e.message e.line e.col e.context

let () =
  Printexc.register_printer (function
    | Parse_error e -> Some ("parse error: " ^ error_to_string e)
    | _ -> None)

type state = { src : string; mutable pos : int; values : (string, Ir.value) Hashtbl.t }

let fail st msg = raise (Parse_error (error_at st.src st.pos msg))

let eof st = st.pos >= String.length st.src

let peek_char st = if eof st then '\255' else st.src.[st.pos]

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  if not (eof st) then
    match peek_char st with
    | ' ' | '\t' | '\n' | '\r' ->
      advance st;
      skip_ws st
    | '/' when st.pos + 1 < String.length st.src && st.src.[st.pos + 1] = '/' ->
      while (not (eof st)) && peek_char st <> '\n' do
        advance st
      done;
      skip_ws st
    | _ -> ()

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '.' || c = '-'

let lex_ident st =
  skip_ws st;
  let start = st.pos in
  while (not (eof st)) && is_ident_char (peek_char st) do
    advance st
  done;
  if st.pos = start then fail st "expected identifier";
  String.sub st.src start (st.pos - start)

let try_char st c =
  skip_ws st;
  if peek_char st = c then begin
    advance st;
    true
  end
  else false

let expect_char st c =
  if not (try_char st c) then fail st (Printf.sprintf "expected %C" c)

let expect_str st s =
  skip_ws st;
  let n = String.length s in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = s then
    st.pos <- st.pos + n
  else fail st (Printf.sprintf "expected %S" s)

let looking_at st s =
  skip_ws st;
  let n = String.length s in
  st.pos + n <= String.length st.src && String.sub st.src st.pos n = s

let lex_quoted st =
  skip_ws st;
  expect_char st '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    if eof st then fail st "unterminated string";
    match peek_char st with
    | '"' -> advance st
    | '\\' ->
      advance st;
      let c = peek_char st in
      advance st;
      (* the full escape set OCaml's [%S] emits, so any string attribute
         the printer writes re-parses to the same bytes *)
      (match c with
      | 'n' -> Buffer.add_char buf '\n'
      | 't' -> Buffer.add_char buf '\t'
      | 'r' -> Buffer.add_char buf '\r'
      | 'b' -> Buffer.add_char buf '\b'
      | '\\' -> Buffer.add_char buf '\\'
      | '"' -> Buffer.add_char buf '"'
      | '\'' -> Buffer.add_char buf '\''
      | '0' .. '9' ->
        (* decimal escape \ddd *)
        let d2 = peek_char st in
        advance st;
        let d3 = peek_char st in
        advance st;
        if
          not
            ((d2 >= '0' && d2 <= '9') && d3 >= '0' && d3 <= '9')
        then fail st "malformed decimal escape in string"
        else
          let code =
            ((Char.code c - Char.code '0') * 100)
            + ((Char.code d2 - Char.code '0') * 10)
            + (Char.code d3 - Char.code '0')
          in
          if code > 255 then fail st "decimal escape out of range in string"
          else Buffer.add_char buf (Char.chr code)
      | c -> Buffer.add_char buf c);
      loop ()
    | c ->
      advance st;
      Buffer.add_char buf c;
      loop ()
  in
  loop ();
  Buffer.contents buf

(* A type is an identifier (possibly starting with '!') optionally followed
   by a balanced <...> group. *)
let lex_type_text st =
  skip_ws st;
  let start = st.pos in
  if peek_char st = '!' then advance st;
  let _ = lex_ident st in
  skip_ws st;
  if peek_char st = '<' then begin
    let depth = ref 0 in
    let continue = ref true in
    while !continue do
      if eof st then fail st "unterminated type";
      (match peek_char st with
      | '<' -> incr depth
      | '>' ->
        decr depth;
        if !depth = 0 then continue := false
      | _ -> ());
      advance st
    done
  end;
  String.sub st.src start (st.pos - start)

let parse_type st =
  let text = lex_type_text st in
  match Types.of_string text with
  | Some ty -> ty
  | None -> fail st (Printf.sprintf "invalid type %S" text)

let parse_type_list st =
  (* comma separated types, terminated by ')' which is not consumed *)
  let rec loop acc =
    skip_ws st;
    if peek_char st = ')' then List.rev acc
    else
      let ty = parse_type st in
      if try_char st ',' then loop (ty :: acc) else List.rev (ty :: acc)
  in
  loop []

let lex_value_name st =
  skip_ws st;
  expect_char st '%';
  lex_ident st

let lookup_value st name =
  match Hashtbl.find_opt st.values name with
  | Some v -> v
  | None -> fail st (Printf.sprintf "use of undefined value %%%s" name)

let define_value st name (v : Ir.value) = Hashtbl.replace st.values name v

(* ----- attributes ----- *)

let lex_number st =
  skip_ws st;
  let start = st.pos in
  if peek_char st = '-' then advance st;
  (* signed non-finite keywords: the printer emits nan / inf / -inf for
     the values %.17g cannot otherwise round-trip *)
  if (not (eof st)) && (peek_char st = 'i' || peek_char st = 'n') then begin
    let kw_start = st.pos in
    while (not (eof st)) && peek_char st >= 'a' && peek_char st <= 'z' do
      advance st
    done;
    let neg = st.src.[start] = '-' in
    match String.sub st.src kw_start (st.pos - kw_start) with
    | "inf" -> Attr.Float (if neg then neg_infinity else infinity)
    | "nan" -> Attr.Float nan
    | kw -> fail st ("bad numeric literal: " ^ kw)
  end
  else begin
    let is_num_char c =
      (c >= '0' && c <= '9') || c = '.' || c = 'e' || c = 'E' || c = '+' || c = '-'
    in
    while (not (eof st)) && is_num_char (peek_char st) do
      advance st
    done;
    let text = String.sub st.src start (st.pos - start) in
    if String.contains text '.' || String.contains text 'e' || String.contains text 'E'
    then
      match float_of_string_opt text with
      | Some f -> Attr.Float f
      | None -> fail st ("bad float literal: " ^ text)
    else
      match int_of_string_opt text with
      | Some i -> Attr.Int i
      | None -> fail st ("bad integer literal: " ^ text)
  end

let rec parse_attr_value st : Attr.t =
  skip_ws st;
  match peek_char st with
  | '"' -> Attr.Str (lex_quoted st)
  | '[' ->
    advance st;
    skip_ws st;
    if peek_char st = ']' then begin
      advance st;
      Attr.Ints [||]
    end
    else begin
      let items =
        let rec loop acc =
          let item = parse_attr_value st in
          if try_char st ',' then loop (item :: acc)
          else begin
            expect_char st ']';
            List.rev (item :: acc)
          end
        in
        loop []
      in
      match items with
      | Attr.Int _ :: _ ->
        Attr.Ints
          (Array.of_list
             (List.map (function Attr.Int i -> i | _ -> fail st "mixed attribute list") items))
      | Attr.Float _ :: _ ->
        Attr.Floats
          (Array.of_list
             (List.map
                (function
                  | Attr.Float f -> f
                  | Attr.Int i -> float_of_int i
                  | _ -> fail st "mixed attribute list")
                items))
      | Attr.Str _ :: _ ->
        Attr.Strs
          (List.map (function Attr.Str s -> s | _ -> fail st "mixed attribute list") items)
      | _ -> fail st "unsupported attribute list"
    end
  | '<' ->
    advance st;
    let rec loop acc =
      let item = parse_attr_value st in
      if try_char st ',' then loop (item :: acc)
      else begin
        expect_char st '>';
        Attr.List (List.rev (item :: acc))
      end
    in
    loop []
  | c when c = '-' || (c >= '0' && c <= '9') -> lex_number st
  | '!' -> Attr.Ty (parse_type st)
  | _ -> (
    (* bare word: bool, unit, or a type like tensor<...>/i32/index *)
    let save = st.pos in
    let word = lex_ident st in
    match word with
    | "true" -> Attr.Bool true
    | "false" -> Attr.Bool false
    | "unit" -> Attr.Unit
    (* unsigned non-finite floats land here (the '-'-prefixed forms go
       through lex_number) *)
    | "nan" -> Attr.Float nan
    | "inf" -> Attr.Float infinity
    | _ ->
      st.pos <- save;
      Attr.Ty (parse_type st))

let parse_attr_dict st : (string * Attr.t) list =
  if not (try_char st '{') then []
  else if try_char st '}' then []
  else begin
    let rec loop acc =
      let key = lex_ident st in
      expect_char st '=';
      let v = parse_attr_value st in
      if try_char st ',' then loop ((key, v) :: acc)
      else begin
        expect_char st '}';
        List.rev ((key, v) :: acc)
      end
    in
    loop []
  end

(* ----- operations / blocks / regions ----- *)

let rec parse_op st : Ir.op =
  skip_ws st;
  (* optional result list *)
  let result_names =
    if peek_char st = '%' then begin
      let rec loop acc =
        let n = lex_value_name st in
        if try_char st ',' then loop (n :: acc) else List.rev (n :: acc)
      in
      let names = loop [] in
      expect_char st '=';
      names
    end
    else []
  in
  let name = lex_quoted st in
  expect_char st '(';
  let operand_names =
    let rec loop acc =
      skip_ws st;
      if peek_char st = ')' then List.rev acc
      else
        let n = lex_value_name st in
        if try_char st ',' then loop (n :: acc) else List.rev (n :: acc)
    in
    loop []
  in
  expect_char st ')';
  let operands = List.map (lookup_value st) operand_names in
  (* regions *)
  let regions =
    let rec loop acc =
      if looking_at st "({" then begin
        expect_str st "({";
        let r = parse_region st in
        expect_str st "})";
        loop (r :: acc)
      end
      else List.rev acc
    in
    loop []
  in
  let attrs = parse_attr_dict st in
  expect_char st ':';
  expect_char st '(';
  let _operand_tys = parse_type_list st in
  expect_char st ')';
  expect_str st "->";
  expect_char st '(';
  let result_tys = parse_type_list st in
  expect_char st ')';
  if List.length result_tys <> List.length result_names then
    fail st (Printf.sprintf "op %s: %d result names but %d result types" name
               (List.length result_names) (List.length result_tys));
  let op = Ir.create_op ~operands ~result_tys ~attrs ~regions name in
  List.iteri (fun i n -> define_value st n op.Ir.results.(i)) result_names;
  op

and parse_region st : Ir.region =
  let region = Ir.create_region () in
  let rec blocks () =
    skip_ws st;
    if peek_char st = '^' then begin
      let block = parse_block st in
      Ir.add_block region block;
      blocks ()
    end
  in
  blocks ();
  (* A region printed with no ^ header cannot occur (printer always emits
     headers), but accept an op list as a single anonymous block. *)
  if Ir.num_blocks region = 0 then begin
    let block = Ir.create_block () in
    Ir.add_block region block;
    parse_ops_into st block
  end;
  region

and parse_block st : Ir.block =
  expect_char st '^';
  let _label = lex_ident st in
  expect_char st '(';
  let args =
    let rec loop acc =
      skip_ws st;
      if peek_char st = ')' then List.rev acc
      else begin
        let n = lex_value_name st in
        expect_char st ':';
        let ty = parse_type st in
        if try_char st ',' then loop ((n, ty) :: acc) else List.rev ((n, ty) :: acc)
      end
    in
    loop []
  in
  expect_char st ')';
  expect_char st ':';
  let block = Ir.create_block ~arg_tys:(List.map snd args) () in
  List.iteri (fun i (n, _) -> define_value st n block.Ir.args.(i)) args;
  parse_ops_into st block;
  block

and parse_ops_into st block =
  let rec loop () =
    skip_ws st;
    match peek_char st with
    | '%' | '"' ->
      let op = parse_op st in
      Ir.append_op block op;
      loop ()
    | _ -> ()
  in
  loop ()

let parse_func st : Func.t =
  expect_str st "func.func";
  skip_ws st;
  expect_char st '@';
  let name = lex_ident st in
  expect_char st '(';
  let params =
    let rec loop acc =
      skip_ws st;
      if peek_char st = ')' then List.rev acc
      else begin
        let n = lex_value_name st in
        expect_char st ':';
        let ty = parse_type st in
        if try_char st ',' then loop ((n, ty) :: acc) else List.rev ((n, ty) :: acc)
      end
    in
    loop []
  in
  expect_char st ')';
  expect_str st "->";
  expect_char st '(';
  let result_tys = parse_type_list st in
  expect_char st ')';
  let fattrs =
    if looking_at st "attributes" then begin
      expect_str st "attributes";
      parse_attr_dict st
    end
    else []
  in
  let f = Func.create ~name ~arg_tys:(List.map snd params) ~result_tys in
  f.Func.fattrs <- fattrs;
  let entry = Func.entry_block f in
  List.iteri (fun i (n, _) -> define_value st n entry.Ir.args.(i)) params;
  expect_char st '{';
  parse_ops_into st entry;
  expect_char st '}';
  f

let parse_module_text text : Func.modul =
  let st = { src = text; pos = 0; values = Hashtbl.create 64 } in
  let m = Func.create_module () in
  skip_ws st;
  let wrapped = looking_at st "module" in
  if wrapped then begin
    expect_str st "module";
    expect_char st '{'
  end;
  let rec funcs () =
    skip_ws st;
    if looking_at st "func.func" then begin
      (* fresh value scope per function *)
      Hashtbl.reset st.values;
      Func.add_func m (parse_func st);
      funcs ()
    end
  in
  funcs ();
  if wrapped then expect_char st '}';
  skip_ws st;
  if not (eof st) then fail st "trailing input";
  m

let parse_func_text text : Func.t =
  let st = { src = text; pos = 0; values = Hashtbl.create 64 } in
  skip_ws st;
  let f = parse_func st in
  skip_ws st;
  if not (eof st) then fail st "trailing input";
  f
