(** Parser for the textual IR emitted by {!Printer}. *)

(** Structured parse diagnostic: the message plus the 1-based source
    position and a rendered caret snippet of the offending line. *)
type error = { message : string; line : int; col : int; context : string }

exception Parse_error of error

(** ["<message> at line L, column C"] followed by the caret snippet. A
    {!Printexc} printer rendering uncaught {!Parse_error}s the same way is
    registered as a side effect of linking this module. *)
val error_to_string : error -> string

(** Parse a module (with or without the surrounding [module { }]).
    @raise Parse_error with position context on malformed input. *)
val parse_module_text : string -> Func.modul

(** Parse a single [func.func]. *)
val parse_func_text : string -> Func.t
