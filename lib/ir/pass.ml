(* Pass manager: named module-level transformations with optional
   verification after each pass, mirroring MLIR's pass infrastructure.

   Observability (see Cinm_support.Trace): when tracing or metrics
   collection is live, every pass run emits one host-clock span carrying
   its wall time, the op-count delta it caused, its per-pattern rewrite
   hit counts, and — when it failed — an [error] attribute with the
   structured diagnostic. The fast path with everything disabled is the
   bare pre-instrumentation code: no timing calls, no allocation. *)

module Trace = Cinm_support.Trace
module Log = Cinm_support.Log
module Config = Cinm_support.Config

type t = {
  pass_name : string;
  run : Func.modul -> unit;
  patterns : Rewrite.pattern list;
      (* non-empty for [of_patterns] passes: lets the instrumented runner
         count per-pattern hits without changing the pass body *)
}

let create ~name run = { pass_name = name; run; patterns = [] }

(* Build a pass from a set of rewrite patterns applied to every function. *)
let of_patterns ~name patterns =
  {
    pass_name = name;
    run = (fun m -> Rewrite.apply_to_module ~patterns m);
    patterns;
  }

(* Structured failure diagnostic: which pass failed, on which op (when
   known), and why. Pass bodies signal failure with the exceptions below;
   the [_result] runners capture them as a value so a driver can degrade
   (e.g. fall back to a CPU lowering) instead of dying. *)
type diag = { pass : string; op : string option; message : string }

let diag_to_string d =
  match d.op with
  | Some op -> Printf.sprintf "pass %s failed on %s: %s" d.pass op d.message
  | None -> Printf.sprintf "pass %s failed: %s" d.pass d.message

exception Pass_failed of diag

let () =
  Printexc.register_printer (function
    | Pass_failed d -> Some (diag_to_string d)
    | _ -> None)

(* The op an "op: message"-shaped diagnostic names, when the message came
   from a context (verifier, interpreter hook) that prefixed the op name. *)
let split_op message =
  match String.index_opt message ':' with
  | Some i
    when i > 0
         && String.length message > i + 1
         && String.for_all
              (fun c ->
                (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '.'
                || c = '_')
              (String.sub message 0 i)
         && String.contains (String.sub message 0 i) '.' ->
    (Some (String.sub message 0 i),
     String.trim (String.sub message (i + 1) (String.length message - i - 1)))
  | _ -> (None, message)

(* ----- strict checking mode (mlir's -verify-each equivalent, plus a
   print->parse->print fixpoint assertion catching printer/parser drift
   and unprintable attributes). Off by default: the uninstrumented fast
   path and byte-stable bench output are untouched. ----- *)

(* The process defaults live in {!Cinm_support.Config} (parsed from the
   environment exactly once); the setters below are the CLI-facing
   mutators and delegate there. Runners take an optional per-request
   [?config] snapshot that overrides the process default wholesale —
   that is what lets a server run concurrent pipelines with different
   strictness/budgets without racing on process state. *)

let strict_mode = ref (Config.default ()).Config.strict

let set_strict b =
  strict_mode := b;
  Config.update_default (fun c -> { c with Config.strict = b })

let strict_enabled () = !strict_mode

(* ----- per-pass wall-time budget ----- *)

let pass_budget_s = ref (Config.default ()).Config.pass_budget_s

let set_pass_budget_s b =
  pass_budget_s := b;
  Config.update_default (fun c -> { c with Config.pass_budget_s = b })

(* ----- crash reproducers (mlir's --mlir-pass-pipeline-crash-reproducer).

   When a reproducer directory is configured, [run_pipeline_result]
   snapshots the IR before each pass; on failure it writes a standalone
   .reproducer.mlir holding that snapshot plus a header naming the
   failing-and-remaining pipeline, so the exact failure replays with one
   [cinm_opt --run-reproducer] invocation. ----- *)

type reproducer = { path : string; pipeline : string list; diag : diag }

let reproducer_dir = ref (Config.default ()).Config.reproducer_dir

let set_reproducer_dir d =
  reproducer_dir := d;
  Config.update_default (fun c -> { c with Config.reproducer_dir = d })

(* Domain-local: a server runs each request's pipeline on one pool
   domain, so concurrent requests never observe each other's reproducer
   (the CLI runs everything on one domain and is unaffected). *)
let last_repro : reproducer option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let last_reproducer () = Domain.DLS.get last_repro

(* distinguishes several failures written by one process; atomic so
   concurrent requests never reuse a filename *)
let repro_seq = Atomic.make 0

(* When the fuzzer drives a pipeline it records the generating seed here
   so crash reproducers name the exact cinm_fuzz invocation that replays
   them; None outside a fuzzing run. *)
let fuzz_seed : int option Atomic.t = Atomic.make None
let set_fuzz_seed s = Atomic.set fuzz_seed s
let current_fuzz_seed () = Atomic.get fuzz_seed

let reproducer_header ~strict ~pipeline =
  let flags = if strict then "--verify-each " else "" in
  Printf.sprintf "// cinm-opt %s--passes %s" flags (String.concat "," pipeline)

(* The replay pipeline named by a reproducer's header comment, scanning
   only the leading [//] lines (the parser skips them as comments). *)
let reproducer_pipeline_of_text text =
  let header_line line =
    let toks =
      String.split_on_char ' ' line |> List.filter (fun s -> s <> "")
    in
    if List.exists (fun t -> t = "cinm-opt" || t = "cinm_opt") toks then
      let rec go = function
        | "--passes" :: spec :: _ ->
          Some (String.split_on_char ',' spec |> List.filter (fun s -> s <> ""))
        | _ :: rest -> go rest
        | [] -> None
      in
      go toks
    else None
  in
  let rec scan = function
    | [] -> None
    | line :: rest ->
      let line = String.trim line in
      if line = "" then scan rest
      else if String.length line >= 2 && String.sub line 0 2 = "//" then (
        match header_line line with Some p -> Some p | None -> scan rest)
      else None (* reached the IR without finding a header *)
  in
  scan (String.split_on_char '\n' text)

let write_reproducer ?(req_id = "") ~dir ~strict ~pipeline ~(diag : diag) ir_text =
  (try if not (Sys.file_exists dir) then Sys.mkdir dir 0o755
   with Sys_error _ -> ());
  (* The sequence number is unique within this process, but several
     processes sharing one reproducer dir (fuzzer workers, parallel CI
     shards) can race to the same name — O_EXCL makes creation atomic,
     and a collision just advances the sequence and retries. *)
  let rec open_fresh attempts =
    if attempts = 0 then None
    else
      let path =
        Filename.concat dir
          (Printf.sprintf "%s-%d.reproducer.mlir" diag.pass
             (Atomic.fetch_and_add repro_seq 1 + 1))
      in
      match open_out_gen [ Open_wronly; Open_creat; Open_excl ] 0o644 path with
      | oc -> Some (path, oc)
      | exception Sys_error _ -> open_fresh (attempts - 1)
  in
  match open_fresh 64 with
  | None ->
    Log.warn "could not write crash reproducer in %s: no creatable unique name"
      dir;
    None
  | Some (path, oc) -> (
    try
      output_string oc (reproducer_header ~strict ~pipeline);
      output_char oc '\n';
      (* correlate the artifact with the server request that produced it;
         a leading comment line, so the replay parser is unaffected *)
      if req_id <> "" then output_string oc ("// req-id: " ^ req_id ^ "\n");
      (match Atomic.get fuzz_seed with
      | Some s -> output_string oc (Printf.sprintf "// fuzz-seed: %d\n" s)
      | None -> ());
      List.iter
        (fun l -> output_string oc ("// failure: " ^ l ^ "\n"))
        (String.split_on_char '\n' (diag_to_string diag));
      output_string oc ir_text;
      close_out oc;
      let r = { path; pipeline; diag } in
      Domain.DLS.set last_repro (Some r);
      Log.warn "wrote crash reproducer %s (replay: cinm_opt --run-reproducer %s)"
        path path;
      Some r
    with Sys_error msg ->
      (try close_out_noerr oc with _ -> ());
      Log.warn "could not write crash reproducer in %s: %s" dir msg;
      None)

(* ----- opt-in IR snapshots (mlir's -print-ir-after-* equivalent) ----- *)

type ir_dump = Dump_never | Dump_after_change | Dump_after_all

let ir_dump_mode = ref Dump_never
let set_ir_dump m = ir_dump_mode := m

let () =
  match Option.map String.lowercase_ascii (Sys.getenv_opt "CINM_PRINT_IR") with
  | Some ("change" | "after-change") -> ir_dump_mode := Dump_after_change
  | Some ("all" | "after-all") -> ir_dump_mode := Dump_after_all
  | _ -> ()

let dump_ir ~pass_name m =
  prerr_endline (Printf.sprintf "// ----- IR after %s ----- //" pass_name);
  prerr_string (Printer.module_to_string m);
  flush stderr

let count_ops (m : Func.modul) =
  let n = ref 0 in
  List.iter (Func.walk (fun _ -> incr n)) m.Func.funcs;
  !n

(* ----- runners ----- *)

(* 1-based first differing line of two texts, for round-trip diagnostics. *)
let first_diff_line a b =
  let la = String.split_on_char '\n' a and lb = String.split_on_char '\n' b in
  let rec go i = function
    | x :: xs, y :: ys -> if x <> y then Some (i, x, y) else go (i + 1) (xs, ys)
    | [], [] -> None
    | x :: _, [] -> Some (i, x, "<end of reprint>")
    | [], y :: _ -> Some (i, "<end of print>", y)
  in
  go 1 (la, lb)

(* Effective per-run settings: the request snapshot when given, else the
   process defaults the CLI setters mutate. *)
let eff_strict config =
  match config with Some c -> c.Config.strict | None -> !strict_mode

let eff_budget config =
  match config with Some c -> c.Config.pass_budget_s | None -> !pass_budget_s

let eff_reproducer_dir config =
  match config with Some c -> c.Config.reproducer_dir | None -> !reproducer_dir

(* Strict mode's print->parse->print fixpoint assertion. *)
let strict_roundtrip pass_name m =
  let txt = Printer.module_to_string m in
  match Parser.parse_module_text txt with
  | exception Parser.Parse_error e ->
    Error
      (Printf.sprintf "strict round-trip after %s: printed IR failed to re-parse: %s"
         pass_name (Parser.error_to_string e))
  | m2 ->
    let txt2 = Printer.module_to_string m2 in
    if String.equal txt txt2 then Ok ()
    else
      let detail =
        match first_diff_line txt txt2 with
        | Some (i, a, b) ->
          Printf.sprintf " (first difference at line %d: %S vs %S)" i a b
        | None -> ""
      in
      Error
        (Printf.sprintf
           "strict round-trip after %s: print->parse->print is not a fixpoint%s"
           pass_name detail)

let run_one_result ?(verify = true) ?config pass m =
  let strict = eff_strict config in
  let budget = eff_budget config in
  let fail message =
    let op, message = split_op message in
    Error { pass = pass.pass_name; op; message }
  in
  let verified () =
    if (not verify) && not strict then Ok ()
    else (
      match Verifier.verify_module m with
      | [] ->
        if not strict then Ok ()
        else (
          match strict_roundtrip pass.pass_name m with
          | Ok () -> Ok ()
          | Error msg -> fail msg)
      | errs ->
        fail
          ("post-pass verification failed:\n"
          ^ String.concat "\n" (List.map Verifier.error_to_string errs)))
  in
  let instrumented = Trace.enabled () || Trace.Metrics.enabled () in
  if (not instrumented) && !ir_dump_mode = Dump_never && budget = None
  then (
    match pass.run m with
    | exception Verifier.Verification_failed msg -> fail msg
    | exception Invalid_argument msg -> fail msg
    | exception Failure msg -> fail msg
    | () -> verified ())
  else begin
    let before_txt =
      if !ir_dump_mode = Dump_after_change then Printer.module_to_string m
      else ""
    in
    let ops_before = count_ops m in
    let hits =
      if pass.patterns = [] then [||]
      else Array.make (List.length pass.patterns) 0
    in
    let t0 = Trace.now_host () in
    (* the wall time and the span below cover the failing case too: a pass
       that dies mid-flight still shows up in the timeline, with the diag
       attached *)
    let result =
      match
        if Array.length hits > 0 then
          Rewrite.apply_to_module ~hits ~patterns:pass.patterns m
        else pass.run m
      with
      | exception Verifier.Verification_failed msg -> fail msg
      | exception Invalid_argument msg -> fail msg
      | exception Failure msg -> fail msg
      | () -> verified ()
    in
    let wall_s = Trace.now_host () -. t0 in
    (* over-budget completion converts to a failure: the pipeline stops and
       the reproducer path captures the input that blew the budget *)
    let result =
      match (result, budget) with
      | Ok (), Some b when wall_s > b ->
        fail
          (Printf.sprintf
             "exceeded the per-pass wall-time budget: %.3fs > %.3fs (CINM_PASS_BUDGET_S)"
             wall_s b)
      | _ -> result
    in
    let ops_after = count_ops m in
    if Trace.Metrics.enabled () then begin
      Trace.Metrics.incr (Printf.sprintf "pass.%s.runs" pass.pass_name);
      Trace.Metrics.observe
        (Printf.sprintf "pass.%s.wall_ms" pass.pass_name)
        (1e3 *. wall_s);
      Array.iteri
        (fun i h ->
          if h > 0 then
            Trace.Metrics.incr ~by:h
              (Printf.sprintf "rewrite.%s.pattern%d" pass.pass_name i))
        hits
    end;
    if Trace.enabled () then begin
      let hit_args =
        Array.to_list
          (Array.mapi
             (fun i h -> (Printf.sprintf "pattern%d_hits" i, Trace.Int h))
             hits)
      in
      let err =
        match result with
        | Ok () -> []
        | Error d -> [ ("error", Trace.Str (diag_to_string d)) ]
      in
      let rid =
        match config with
        | Some c when c.Config.req_id <> "" ->
          [ ("req_id", Trace.Str c.Config.req_id) ]
        | _ -> []
      in
      Trace.complete ~cat:"pass"
        ~args:
          ([
             ("ops_before", Trace.Int ops_before);
             ("ops_after", Trace.Int ops_after);
             ("ops_delta", Trace.Int (ops_after - ops_before));
           ]
          @ hit_args @ err @ rid)
        ~clock:Trace.Host ~pid:Trace.host_pid ~track:"passes" ~ts:t0
        ~dur:wall_s
        ("pass:" ^ pass.pass_name)
    end;
    (match (!ir_dump_mode, result) with
    | Dump_after_all, _ -> dump_ir ~pass_name:pass.pass_name m
    | Dump_after_change, Ok () when Printer.module_to_string m <> before_txt ->
      dump_ir ~pass_name:pass.pass_name m
    | _ -> ());
    result
  end

let run_one ?verify ?config pass m =
  match run_one_result ?verify ?config pass m with
  | Ok () -> ()
  | Error d -> raise (Pass_failed d)

let run_pipeline_result ?verify ?(trace = false) ?config passes m =
  let repro_dir = eff_reproducer_dir config in
  let rec go pipeline =
    match pipeline with
    | [] -> Ok ()
    | pass :: rest -> (
      (* the inter-pass cancellation point: a request past its deadline
         (or cancelled by the server) aborts before the next pass starts;
         Config.Cancelled propagates — it is not a pass failure and must
         not trigger degradation paths like the CPU fallback *)
      (match config with Some c -> Config.check c | None -> ());
      if trace then Log.info "running pass %s" pass.pass_name
      else Log.debug "running pass %s" pass.pass_name;
      (* pre-pass snapshot, taken only when reproducers are live: the
         normal path pays nothing *)
      let snapshot =
        if repro_dir = None then None else Some (Printer.module_to_string m)
      in
      match run_one_result ?verify ?config pass m with
      | Ok () -> go rest
      | Error d ->
        (match (snapshot, repro_dir) with
        | Some txt, Some dir ->
          let req_id =
            match config with Some c -> c.Config.req_id | None -> ""
          in
          ignore
            (write_reproducer ~req_id ~dir ~strict:(eff_strict config)
               ~pipeline:(List.map (fun p -> p.pass_name) pipeline)
               ~diag:d txt)
        | _ -> ());
        Error d)
  in
  go passes

let run_pipeline ?verify ?trace ?config passes m =
  match run_pipeline_result ?verify ?trace ?config passes m with
  | Ok () -> ()
  | Error d -> raise (Pass_failed d)
