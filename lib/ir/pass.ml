(* Pass manager: named module-level transformations with optional
   verification after each pass, mirroring MLIR's pass infrastructure.

   Observability (see Cinm_support.Trace): when tracing or metrics
   collection is live, every pass run emits one host-clock span carrying
   its wall time, the op-count delta it caused, its per-pattern rewrite
   hit counts, and — when it failed — an [error] attribute with the
   structured diagnostic. The fast path with everything disabled is the
   bare pre-instrumentation code: no timing calls, no allocation. *)

module Trace = Cinm_support.Trace
module Log = Cinm_support.Log

type t = {
  pass_name : string;
  run : Func.modul -> unit;
  patterns : Rewrite.pattern list;
      (* non-empty for [of_patterns] passes: lets the instrumented runner
         count per-pattern hits without changing the pass body *)
}

let create ~name run = { pass_name = name; run; patterns = [] }

(* Build a pass from a set of rewrite patterns applied to every function. *)
let of_patterns ~name patterns =
  {
    pass_name = name;
    run = (fun m -> Rewrite.apply_to_module ~patterns m);
    patterns;
  }

(* Structured failure diagnostic: which pass failed, on which op (when
   known), and why. Pass bodies signal failure with the exceptions below;
   the [_result] runners capture them as a value so a driver can degrade
   (e.g. fall back to a CPU lowering) instead of dying. *)
type diag = { pass : string; op : string option; message : string }

let diag_to_string d =
  match d.op with
  | Some op -> Printf.sprintf "pass %s failed on %s: %s" d.pass op d.message
  | None -> Printf.sprintf "pass %s failed: %s" d.pass d.message

exception Pass_failed of diag

let () =
  Printexc.register_printer (function
    | Pass_failed d -> Some (diag_to_string d)
    | _ -> None)

(* The op an "op: message"-shaped diagnostic names, when the message came
   from a context (verifier, interpreter hook) that prefixed the op name. *)
let split_op message =
  match String.index_opt message ':' with
  | Some i
    when i > 0
         && String.length message > i + 1
         && String.for_all
              (fun c ->
                (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '.'
                || c = '_')
              (String.sub message 0 i)
         && String.contains (String.sub message 0 i) '.' ->
    (Some (String.sub message 0 i),
     String.trim (String.sub message (i + 1) (String.length message - i - 1)))
  | _ -> (None, message)

(* ----- opt-in IR snapshots (mlir's -print-ir-after-* equivalent) ----- *)

type ir_dump = Dump_never | Dump_after_change | Dump_after_all

let ir_dump_mode = ref Dump_never
let set_ir_dump m = ir_dump_mode := m

let () =
  match Option.map String.lowercase_ascii (Sys.getenv_opt "CINM_PRINT_IR") with
  | Some ("change" | "after-change") -> ir_dump_mode := Dump_after_change
  | Some ("all" | "after-all") -> ir_dump_mode := Dump_after_all
  | _ -> ()

let dump_ir ~pass_name m =
  prerr_endline (Printf.sprintf "// ----- IR after %s ----- //" pass_name);
  prerr_string (Printer.module_to_string m);
  flush stderr

let count_ops (m : Func.modul) =
  let n = ref 0 in
  List.iter (Func.walk (fun _ -> incr n)) m.Func.funcs;
  !n

(* ----- runners ----- *)

let run_one_result ?(verify = true) pass m =
  let fail message =
    let op, message = split_op message in
    Error { pass = pass.pass_name; op; message }
  in
  let verified () =
    if not verify then Ok ()
    else (
      match Verifier.verify_module m with
      | [] -> Ok ()
      | errs ->
        fail
          ("post-pass verification failed:\n"
          ^ String.concat "\n" (List.map Verifier.error_to_string errs)))
  in
  let instrumented = Trace.enabled () || Trace.Metrics.enabled () in
  if (not instrumented) && !ir_dump_mode = Dump_never then (
    match pass.run m with
    | exception Verifier.Verification_failed msg -> fail msg
    | exception Invalid_argument msg -> fail msg
    | () -> verified ())
  else begin
    let before_txt =
      if !ir_dump_mode = Dump_after_change then Printer.module_to_string m
      else ""
    in
    let ops_before = count_ops m in
    let hits =
      if pass.patterns = [] then [||]
      else Array.make (List.length pass.patterns) 0
    in
    let t0 = Trace.now_host () in
    (* the wall time and the span below cover the failing case too: a pass
       that dies mid-flight still shows up in the timeline, with the diag
       attached *)
    let result =
      match
        if Array.length hits > 0 then
          Rewrite.apply_to_module ~hits ~patterns:pass.patterns m
        else pass.run m
      with
      | exception Verifier.Verification_failed msg -> fail msg
      | exception Invalid_argument msg -> fail msg
      | () -> verified ()
    in
    let wall_s = Trace.now_host () -. t0 in
    let ops_after = count_ops m in
    if Trace.Metrics.enabled () then begin
      Trace.Metrics.incr (Printf.sprintf "pass.%s.runs" pass.pass_name);
      Trace.Metrics.observe
        (Printf.sprintf "pass.%s.wall_ms" pass.pass_name)
        (1e3 *. wall_s);
      Array.iteri
        (fun i h ->
          if h > 0 then
            Trace.Metrics.incr ~by:h
              (Printf.sprintf "rewrite.%s.pattern%d" pass.pass_name i))
        hits
    end;
    if Trace.enabled () then begin
      let hit_args =
        Array.to_list
          (Array.mapi
             (fun i h -> (Printf.sprintf "pattern%d_hits" i, Trace.Int h))
             hits)
      in
      let err =
        match result with
        | Ok () -> []
        | Error d -> [ ("error", Trace.Str (diag_to_string d)) ]
      in
      Trace.complete ~cat:"pass"
        ~args:
          ([
             ("ops_before", Trace.Int ops_before);
             ("ops_after", Trace.Int ops_after);
             ("ops_delta", Trace.Int (ops_after - ops_before));
           ]
          @ hit_args @ err)
        ~clock:Trace.Host ~pid:Trace.host_pid ~track:"passes" ~ts:t0
        ~dur:wall_s
        ("pass:" ^ pass.pass_name)
    end;
    (match (!ir_dump_mode, result) with
    | Dump_after_all, _ -> dump_ir ~pass_name:pass.pass_name m
    | Dump_after_change, Ok () when Printer.module_to_string m <> before_txt ->
      dump_ir ~pass_name:pass.pass_name m
    | _ -> ());
    result
  end

let run_one ?verify pass m =
  match run_one_result ?verify pass m with
  | Ok () -> ()
  | Error d -> raise (Pass_failed d)

let run_pipeline_result ?verify ?(trace = false) passes m =
  let rec go = function
    | [] -> Ok ()
    | pass :: rest -> (
      if trace then Log.info "running pass %s" pass.pass_name
      else Log.debug "running pass %s" pass.pass_name;
      match run_one_result ?verify pass m with
      | Ok () -> go rest
      | Error d -> Error d)
  in
  go passes

let run_pipeline ?verify ?trace passes m =
  match run_pipeline_result ?verify ?trace passes m with
  | Ok () -> ()
  | Error d -> raise (Pass_failed d)
