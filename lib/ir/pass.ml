(* Pass manager: named module-level transformations with optional
   verification after each pass, mirroring MLIR's pass infrastructure. *)

type t = { pass_name : string; run : Func.modul -> unit }

let create ~name run = { pass_name = name; run }

(* Build a pass from a set of rewrite patterns applied to every function. *)
let of_patterns ~name patterns =
  create ~name (fun m -> Rewrite.apply_to_module ~patterns m)

(* Structured failure diagnostic: which pass failed, on which op (when
   known), and why. Pass bodies signal failure with the exceptions below;
   the [_result] runners capture them as a value so a driver can degrade
   (e.g. fall back to a CPU lowering) instead of dying. *)
type diag = { pass : string; op : string option; message : string }

let diag_to_string d =
  match d.op with
  | Some op -> Printf.sprintf "pass %s failed on %s: %s" d.pass op d.message
  | None -> Printf.sprintf "pass %s failed: %s" d.pass d.message

exception Pass_failed of diag

let () =
  Printexc.register_printer (function
    | Pass_failed d -> Some (diag_to_string d)
    | _ -> None)

(* The op an "op: message"-shaped diagnostic names, when the message came
   from a context (verifier, interpreter hook) that prefixed the op name. *)
let split_op message =
  match String.index_opt message ':' with
  | Some i
    when i > 0
         && String.length message > i + 1
         && String.for_all
              (fun c ->
                (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '.'
                || c = '_')
              (String.sub message 0 i)
         && String.contains (String.sub message 0 i) '.' ->
    (Some (String.sub message 0 i),
     String.trim (String.sub message (i + 1) (String.length message - i - 1)))
  | _ -> (None, message)

let run_one_result ?(verify = true) pass m =
  let fail message =
    let op, message = split_op message in
    Error { pass = pass.pass_name; op; message }
  in
  match pass.run m with
  | exception Verifier.Verification_failed msg -> fail msg
  | exception Invalid_argument msg -> fail msg
  | () ->
    if not verify then Ok ()
    else (
      match Verifier.verify_module m with
      | [] -> Ok ()
      | errs ->
        fail
          ("post-pass verification failed:\n"
          ^ String.concat "\n" (List.map Verifier.error_to_string errs)))

let run_one ?verify pass m =
  match run_one_result ?verify pass m with
  | Ok () -> ()
  | Error d -> raise (Pass_failed d)

let run_pipeline_result ?verify ?(trace = false) passes m =
  let rec go = function
    | [] -> Ok ()
    | pass :: rest ->
      if trace then Printf.eprintf "[cinm] running pass %s\n%!" pass.pass_name;
      (match run_one_result ?verify pass m with
      | Ok () -> go rest
      | Error d -> Error d)
  in
  go passes

let run_pipeline ?verify ?trace passes m =
  match run_pipeline_result ?verify ?trace passes m with
  | Ok () -> ()
  | Error d -> raise (Pass_failed d)
