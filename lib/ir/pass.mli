(** Pass manager: named module-level transformations with optional
    verification after each pass.

    When tracing or metrics collection is enabled (see
    {!Cinm_support.Trace}), each pass run emits one host-clock span on the
    ["passes"] track carrying its wall time, op-count delta, per-pattern
    rewrite hit counts and, on failure, the diagnostic. With both
    disabled and IR dumping off, the runners take an uninstrumented fast
    path (no timing, no allocation). *)

type t = {
  pass_name : string;
  run : Func.modul -> unit;
  patterns : Rewrite.pattern list;
      (** non-empty for {!of_patterns} passes; used by the instrumented
          runner to count per-pattern hits *)
}

val create : name:string -> (Func.modul -> unit) -> t

(** Build a pass from rewrite patterns applied to every function. *)
val of_patterns : name:string -> Rewrite.pattern list -> t

(** Structured failure diagnostic: the failing pass, the op it failed on
    (when the message identified one), and the message itself. *)
type diag = { pass : string; op : string option; message : string }

val diag_to_string : diag -> string

exception Pass_failed of diag

(** Opt-in IR snapshots after passes, printed to stderr (the equivalent of
    MLIR's [-print-ir-after-*]). Also settable via the [CINM_PRINT_IR]
    environment variable ([change] or [all]). *)
type ir_dump = Dump_never | Dump_after_change | Dump_after_all

val set_ir_dump : ir_dump -> unit

(** Total op count of a module (all functions, nested regions included). *)
val count_ops : Func.modul -> int

(** Run one pass; with [verify] (default), the module is verified
    afterwards. Failures are returned as a {!diag} — the module may have
    been left partially transformed, so on [Error] the caller should
    discard it (drivers re-lower a pristine clone). A failing pass still
    gets its span, with an [error] attribute holding the diagnostic. *)
val run_one_result : ?verify:bool -> t -> Func.modul -> (unit, diag) result

(** Like {!run_one_result} but raising {!Pass_failed}. *)
val run_one : ?verify:bool -> t -> Func.modul -> unit

(** Run passes in order, stopping at the first failure. [trace] promotes
    the per-pass progress line from debug to info level (see
    {!Cinm_support.Log}). *)
val run_pipeline_result :
  ?verify:bool -> ?trace:bool -> t list -> Func.modul -> (unit, diag) result

val run_pipeline : ?verify:bool -> ?trace:bool -> t list -> Func.modul -> unit
