(** Pass manager: named module-level transformations with optional
    verification after each pass. *)

type t = { pass_name : string; run : Func.modul -> unit }

val create : name:string -> (Func.modul -> unit) -> t

(** Build a pass from rewrite patterns applied to every function. *)
val of_patterns : name:string -> Rewrite.pattern list -> t

(** Structured failure diagnostic: the failing pass, the op it failed on
    (when the message identified one), and the message itself. *)
type diag = { pass : string; op : string option; message : string }

val diag_to_string : diag -> string

exception Pass_failed of diag

(** Run one pass; with [verify] (default), the module is verified
    afterwards. Failures are returned as a {!diag} — the module may have
    been left partially transformed, so on [Error] the caller should
    discard it (drivers re-lower a pristine clone). *)
val run_one_result : ?verify:bool -> t -> Func.modul -> (unit, diag) result

(** Like {!run_one_result} but raising {!Pass_failed}. *)
val run_one : ?verify:bool -> t -> Func.modul -> unit

(** Run passes in order, stopping at the first failure. *)
val run_pipeline_result :
  ?verify:bool -> ?trace:bool -> t list -> Func.modul -> (unit, diag) result

val run_pipeline : ?verify:bool -> ?trace:bool -> t list -> Func.modul -> unit
