(** Pass manager: named module-level transformations with optional
    verification after each pass.

    When tracing or metrics collection is enabled (see
    {!Cinm_support.Trace}), each pass run emits one host-clock span on the
    ["passes"] track carrying its wall time, op-count delta, per-pattern
    rewrite hit counts and, on failure, the diagnostic. With both
    disabled and IR dumping off, the runners take an uninstrumented fast
    path (no timing, no allocation). *)

type t = {
  pass_name : string;
  run : Func.modul -> unit;
  patterns : Rewrite.pattern list;
      (** non-empty for {!of_patterns} passes; used by the instrumented
          runner to count per-pattern hits *)
}

val create : name:string -> (Func.modul -> unit) -> t

(** Build a pass from rewrite patterns applied to every function. *)
val of_patterns : name:string -> Rewrite.pattern list -> t

(** Structured failure diagnostic: the failing pass, the op it failed on
    (when the message identified one), and the message itself. *)
type diag = { pass : string; op : string option; message : string }

val diag_to_string : diag -> string

exception Pass_failed of diag

(** {2 Strict checking}

    With strict mode on (MLIR's [-verify-each] plus a textual round-trip
    assertion), every pass run verifies the module {e and} asserts that
    print→parse→print reaches a fixpoint, converting printer/parser drift
    into a structured pass failure. Off by default so the uninstrumented
    fast path and byte-stable bench output are untouched; also enabled by
    [CINM_STRICT=1]. *)

val set_strict : bool -> unit

val strict_enabled : unit -> bool

(** {2 Per-pass wall-time budget}

    With a budget set (seconds; also via [CINM_PASS_BUDGET_S]), a pass
    that completes over budget is converted into a pass failure, which
    stops the pipeline and routes through the reproducer path. [None]
    (the default) disables the check and keeps the fast path. *)

val set_pass_budget_s : float option -> unit

(** {2 Crash reproducers}

    With a reproducer directory configured (also via
    [CINM_REPRODUCER_DIR]), {!run_pipeline_result} snapshots the IR before
    each pass and, when one fails, writes a standalone
    [<pass>-<n>.reproducer.mlir] file holding the pre-failure IR plus a
    [// cinm-opt --passes <failing,and,remaining>] header, so the exact
    failure replays with one [cinm_opt --run-reproducer] invocation
    (MLIR's pass-pipeline crash reproducers). *)

type reproducer = { path : string; pipeline : string list; diag : diag }

val set_reproducer_dir : string option -> unit

(** The fuzzing seed to record in reproducer headers ([// fuzz-seed: N]),
    so an artifact names the exact [cinm_fuzz] invocation that replays
    it; [None] (the default) outside a fuzzing run. Process-global —
    set it around a whole campaign, not per concurrent request. *)
val set_fuzz_seed : int option -> unit

val current_fuzz_seed : unit -> int option

(** The most recent reproducer written {e by the calling domain}
    (domain-local, so a server's concurrent requests — each pinned to one
    pool domain — never observe each other's failures). *)
val last_reproducer : unit -> reproducer option

(** The replay pipeline named by a reproducer file's header comment, or
    [None] when the leading [//] lines carry no [cinm-opt --passes]
    header. *)
val reproducer_pipeline_of_text : string -> string list option

(** Opt-in IR snapshots after passes, printed to stderr (the equivalent of
    MLIR's [-print-ir-after-*]). Also settable via the [CINM_PRINT_IR]
    environment variable ([change] or [all]). *)
type ir_dump = Dump_never | Dump_after_change | Dump_after_all

val set_ir_dump : ir_dump -> unit

(** Total op count of a module (all functions, nested regions included). *)
val count_ops : Func.modul -> int

(** Run one pass; with [verify] (default), the module is verified
    afterwards. Failures are returned as a {!diag} — the module may have
    been left partially transformed, so on [Error] the caller should
    discard it (drivers re-lower a pristine clone). A failing pass still
    gets its span, with an [error] attribute holding the diagnostic.

    [config] is a per-request {!Cinm_support.Config} snapshot; when given
    it overrides the process-level strict/budget/reproducer settings
    wholesale, so concurrent pipelines never race on process state. *)
val run_one_result :
  ?verify:bool -> ?config:Cinm_support.Config.t -> t -> Func.modul ->
  (unit, diag) result

(** Like {!run_one_result} but raising {!Pass_failed}. *)
val run_one : ?verify:bool -> ?config:Cinm_support.Config.t -> t -> Func.modul -> unit

(** Run passes in order, stopping at the first failure. [trace] promotes
    the per-pass progress line from debug to info level (see
    {!Cinm_support.Log}). With [config], the runner checks the request's
    deadline/cancel flag between passes and raises
    {!Cinm_support.Config.Cancelled} — deliberately not a pass failure,
    so cancellation aborts outright instead of triggering fallbacks. *)
val run_pipeline_result :
  ?verify:bool -> ?trace:bool -> ?config:Cinm_support.Config.t -> t list ->
  Func.modul -> (unit, diag) result

val run_pipeline :
  ?verify:bool -> ?trace:bool -> ?config:Cinm_support.Config.t -> t list ->
  Func.modul -> unit
