(* Textual IR printer. Uses MLIR's *generic* operation syntax, which is
   uniform across dialects and round-trips through [Parser]:

     %0, %1 = "dialect.op"(%a, %b) ({
     ^bb0(%x: i32):
       "scf.yield"(%x) : (i32) -> ()
     }) {attr = 3} : (i32, i32) -> (i32, i32)
*)

type namer = { names : (int, string) Hashtbl.t; mutable next : int }

let create_namer () = { names = Hashtbl.create 64; next = 0 }

let name_value namer (v : Ir.value) =
  match Hashtbl.find_opt namer.names v.Ir.vid with
  | Some n -> n
  | None ->
    let n = Printf.sprintf "%%%d" namer.next in
    namer.next <- namer.next + 1;
    Hashtbl.replace namer.names v.Ir.vid n;
    n

let name_param namer i (v : Ir.value) =
  let n = Printf.sprintf "%%arg%d" i in
  Hashtbl.replace namer.names v.Ir.vid n;
  n

let float_literal f =
  (* Non-finite values get explicit keywords: %.17g prints "nan"/"inf",
     which the lexer must treat as literals, not identifiers — and the
     sign of -inf must survive. NaN payloads are not preserved (the IR
     has a single canonical NaN). *)
  if f <> f then "nan"
  else if f = infinity then "inf"
  else if f = neg_infinity then "-inf"
  else
    let s = Printf.sprintf "%.17g" f in
    if String.contains s '.' || String.contains s 'e' then s else s ^ ".0"

let rec attr_to_string = function
  | Attr.Unit -> "unit"
  | Attr.Bool b -> string_of_bool b
  | Attr.Int i -> string_of_int i
  | Attr.Float f -> float_literal f
  | Attr.Str s -> Printf.sprintf "%S" s
  | Attr.Ints a ->
    Printf.sprintf "[%s]" (String.concat ", " (Array.to_list (Array.map string_of_int a)))
  | Attr.Floats a ->
    Printf.sprintf "[%s]" (String.concat ", " (Array.to_list (Array.map float_literal a)))
  | Attr.Strs l ->
    Printf.sprintf "[%s]" (String.concat ", " (List.map (Printf.sprintf "%S") l))
  | Attr.Ty ty -> Types.to_string ty
  | Attr.List l -> Printf.sprintf "<%s>" (String.concat ", " (List.map attr_to_string l))

let attrs_to_string attrs =
  match attrs with
  | [] -> ""
  | _ ->
    let sorted = List.sort (fun (a, _) (b, _) -> compare a b) attrs in
    let body =
      String.concat ", "
        (List.map (fun (k, v) -> Printf.sprintf "%s = %s" k (attr_to_string v)) sorted)
    in
    Printf.sprintf " {%s}" body

let indent n = String.make (2 * n) ' '

let rec op_lines namer depth (op : Ir.op) : string list =
  let results =
    Array.to_list op.Ir.results |> List.map (name_value namer) |> String.concat ", "
  in
  let lhs = if Array.length op.Ir.results = 0 then "" else results ^ " = " in
  let operand_names =
    Array.to_list op.Ir.operands |> List.map (name_value namer) |> String.concat ", "
  in
  let operand_tys =
    Array.to_list op.Ir.operands
    |> List.map (fun (v : Ir.value) -> Types.to_string v.Ir.ty)
    |> String.concat ", "
  in
  let result_tys =
    Array.to_list op.Ir.results
    |> List.map (fun (v : Ir.value) -> Types.to_string v.Ir.ty)
    |> String.concat ", "
  in
  let region_parts =
    Array.to_list op.Ir.regions |> List.map (region_lines namer (depth + 1))
  in
  let regions_str =
    match region_parts with
    | [] -> ""
    | parts ->
      let one part =
        "({\n" ^ String.concat "\n" part ^ "\n" ^ indent depth ^ "})"
      in
      " " ^ String.concat " " (List.map one parts)
  in
  let line =
    Printf.sprintf "%s%s\"%s\"(%s)%s%s : (%s) -> (%s)" (indent depth) lhs op.Ir.name
      operand_names regions_str
      (attrs_to_string op.Ir.attrs)
      operand_tys result_tys
  in
  [ line ]

and block_lines namer depth idx (block : Ir.block) : string list =
  let args =
    Array.to_list block.Ir.args
    |> List.map (fun (v : Ir.value) ->
           Printf.sprintf "%s: %s" (name_value namer v) (Types.to_string v.Ir.ty))
    |> String.concat ", "
  in
  let header = Printf.sprintf "%s^bb%d(%s):" (indent (max 0 (depth - 1))) idx args in
  let body = List.concat_map (op_lines namer depth) (Ir.block_ops block) in
  header :: body

and region_lines namer depth (region : Ir.region) : string list =
  List.concat (List.mapi (fun i b -> block_lines namer depth i b) (Ir.blocks region))

let op_to_string ?namer op =
  let namer = match namer with Some n -> n | None -> create_namer () in
  String.concat "\n" (op_lines namer 0 op)

let func_to_string (f : Func.t) =
  let namer = create_namer () in
  let entry = Func.entry_block f in
  let params =
    Array.to_list entry.Ir.args
    |> List.mapi (fun i (v : Ir.value) ->
           Printf.sprintf "%s: %s" (name_param namer i v) (Types.to_string v.Ir.ty))
    |> String.concat ", "
  in
  let result_tys = String.concat ", " (List.map Types.to_string f.Func.result_tys) in
  let fattrs =
    match f.Func.fattrs with [] -> "" | attrs -> " attributes" ^ attrs_to_string attrs
  in
  let header =
    Printf.sprintf "func.func @%s(%s) -> (%s)%s {" f.Func.fname params result_tys fattrs
  in
  let body = List.concat_map (op_lines namer 1) (Ir.block_ops entry) in
  String.concat "\n" ((header :: body) @ [ "}" ])

let module_to_string (m : Func.modul) =
  let funcs = List.map func_to_string m.Func.funcs in
  "module {\n"
  ^ String.concat "\n" (List.map (fun s -> "  " ^ String.concat "\n  " (String.split_on_char '\n' s)) funcs)
  ^ "\n}"
