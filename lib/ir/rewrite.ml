(* Pattern-based dialect conversion: the rewriting engine behind every
   lowering in the CINM pipeline (paper Section 3.2). A conversion rebuilds
   function bodies op by op; each op is offered to the patterns in order,
   and unmatched ops are cloned with remapped operands (their nested
   regions are converted recursively). *)

type env = (int, Ir.value) Hashtbl.t

type ctx = {
  b : Builder.t;
  env : env;
  patterns : pattern list;
  hits : int array;
      (* per-pattern match counts ([||] when nobody is counting); slot i
         belongs to the i-th pattern of [patterns] *)
}

and action =
  | Replace of Ir.value list
      (** op was rewritten; these values replace its results (same arity) *)
  | Erase  (** drop the op entirely (must have no used results) *)

and pattern = ctx -> Ir.op -> action option

let lookup ctx (v : Ir.value) =
  match Hashtbl.find_opt ctx.env v.Ir.vid with Some w -> w | None -> v

let operand ctx op i = lookup ctx (Ir.operand op i)

let operands ctx op = Array.to_list op.Ir.operands |> List.map (lookup ctx)

let bind ctx (old_v : Ir.value) new_v = Hashtbl.replace ctx.env old_v.Ir.vid new_v

let bind_results ctx (op : Ir.op) values =
  if List.length values <> Array.length op.Ir.results then
    invalid_arg
      (Printf.sprintf "Rewrite: %s replaced with %d values, has %d results" op.Ir.name
         (List.length values) (Array.length op.Ir.results));
  List.iteri (fun i v -> bind ctx op.Ir.results.(i) v) values

(* Clone [op] into the current insertion point with remapped operands and
   recursively converted regions. Results of the clone are bound to the
   original results. *)
let rec clone_converted ctx (op : Ir.op) =
  let operands = operands ctx op in
  let result_tys = Array.to_list (Array.map (fun (v : Ir.value) -> v.Ir.ty) op.Ir.results) in
  let regions =
    Array.to_list op.Ir.regions |> List.map (fun r -> convert_region ctx r)
  in
  let cloned =
    Ir.create_op ~operands ~result_tys ~attrs:op.Ir.attrs ~regions op.Ir.name
  in
  Builder.insert ctx.b cloned;
  bind_results ctx op (Array.to_list cloned.Ir.results);
  cloned

and convert_region ctx (region : Ir.region) : Ir.region =
  let out = Ir.create_region () in
  Ir.iter_blocks
    (fun (src : Ir.block) ->
      let arg_tys = Array.to_list (Array.map (fun (v : Ir.value) -> v.Ir.ty) src.Ir.args) in
      let dst = Ir.create_block ~arg_tys () in
      Ir.add_block out dst;
      Array.iteri (fun i v -> bind ctx v dst.Ir.args.(i)) src.Ir.args;
      let inner = { ctx with b = Builder.at_end_of dst } in
      Ir.iter_ops (fun op -> convert_op inner op) src)
    region;
  out

and convert_op ctx (op : Ir.op) =
  let note_hit i = if Array.length ctx.hits > 0 then ctx.hits.(i) <- ctx.hits.(i) + 1 in
  let rec try_patterns i = function
    | [] -> ignore (clone_converted ctx op)
    | p :: rest -> (
      match p ctx op with
      | Some (Replace values) ->
        note_hit i;
        bind_results ctx op values
      | Some Erase -> note_hit i
      | None -> try_patterns (i + 1) rest)
  in
  try_patterns 0 ctx.patterns

(* Convert a whole function in place. Every block of the body is
   converted ([convert_region] handles multi-block regions); the entry
   block's new arguments take over the function's parameters. *)
let apply_to_func ?(hits = [||]) ~patterns (f : Func.t) =
  if Ir.num_blocks f.Func.body = 0 then
    invalid_arg
      (Printf.sprintf "Rewrite.apply_to_func: @%s has an empty body" f.Func.fname);
  let env = Hashtbl.create 64 in
  (* The per-block builders are installed by [convert_region]; the initial
     insertion point is a scratch block that must stay empty. *)
  let scratch = Ir.create_block () in
  let ctx = { b = Builder.at_end_of scratch; env; patterns; hits } in
  let new_body = convert_region ctx f.Func.body in
  if Ir.num_ops scratch <> 0 then
    invalid_arg
      (Printf.sprintf
         "Rewrite.apply_to_func: a pattern inserted %d ops outside any block of @%s"
         (Ir.num_ops scratch) f.Func.fname);
  Func.replace_body f new_body

let apply_to_module ?hits ~patterns (m : Func.modul) =
  List.iter (apply_to_func ?hits ~patterns) m.Func.funcs
