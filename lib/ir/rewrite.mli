(** Pattern-based dialect conversion: the rewriting engine behind every
    lowering in the CINM pipeline (paper §3.2). A conversion rebuilds
    function bodies op by op; each op is offered to the patterns in order,
    and unmatched ops are cloned with remapped operands (their nested
    regions converted recursively). *)

type env = (int, Ir.value) Hashtbl.t

type ctx = {
  b : Builder.t;
  env : env;
  patterns : pattern list;
  hits : int array;
      (** per-pattern match counts ([[||]] when nobody is counting) *)
}

and action =
  | Replace of Ir.value list
      (** the op was rewritten; these values replace its results *)
  | Erase  (** drop the op (it must have no used results) *)

and pattern = ctx -> Ir.op -> action option

(** Map an original value to its converted counterpart (identity if none). *)
val lookup : ctx -> Ir.value -> Ir.value

(** Converted operand [i] of an original op. *)
val operand : ctx -> Ir.op -> int -> Ir.value

val operands : ctx -> Ir.op -> Ir.value list
val bind : ctx -> Ir.value -> Ir.value -> unit

(** Record the replacement values for an op's results.
    @raise Invalid_argument on an arity mismatch. *)
val bind_results : ctx -> Ir.op -> Ir.value list -> unit

(** Clone an unmatched op into the output with remapped operands and
    recursively converted regions. *)
val clone_converted : ctx -> Ir.op -> Ir.op

val convert_region : ctx -> Ir.region -> Ir.region
val convert_op : ctx -> Ir.op -> unit

(** Convert a function (module) in place. When [hits] is given (one slot
    per pattern), slot [i] is incremented every time pattern [i] fires —
    the pass manager uses this for per-pattern rewrite statistics. *)
val apply_to_func : ?hits:int array -> patterns:pattern list -> Func.t -> unit
val apply_to_module : ?hits:int array -> patterns:pattern list -> Func.modul -> unit
