(* IR verifier: op registration, per-op structural invariants (delegated to
   dialect op definitions), and SSA scoping/dominance within the single
   block-per-region structure the CINM pipeline uses. *)

module Iset = Set.Make (Int)

type error = { in_func : string; message : string }

let error_to_string e = Printf.sprintf "in @%s: %s" e.in_func e.message

let verify_op_registered (op : Ir.op) =
  match Dialect.find_op op.Ir.name with
  | Some def -> def.Dialect.verify op
  | None -> Error (Printf.sprintf "unregistered operation %S" op.Ir.name)

(* Walk a region with a scope of visible value ids. Regions may capture
   values that dominate their parent op (MLIR semantics), except for ops
   that are [isolated_from_above] (cnm.launch bodies must only reference
   their block arguments, cf. paper Section 3.2.3). *)
let isolated_from_above = [ "cnm.launch"; "upmem.launch" ]

let rec verify_region ~fname ~scope (region : Ir.region) : error list =
  List.concat_map (verify_block ~fname ~scope) (Ir.blocks region)

and verify_block ~fname ~scope (block : Ir.block) : error list =
  let scope =
    Array.fold_left (fun s (v : Ir.value) -> Iset.add v.Ir.vid s) scope block.Ir.args
  in
  let errs, _ =
    List.fold_left
      (fun (errs, scope) op ->
        let errs = errs @ verify_op ~fname ~scope op in
        let scope =
          Array.fold_left (fun s (v : Ir.value) -> Iset.add v.Ir.vid s) scope op.Ir.results
        in
        (errs, scope))
      ([], scope) (Ir.block_ops block)
  in
  errs

and verify_op ~fname ~scope (op : Ir.op) : error list =
  let mk message = { in_func = fname; message } in
  let reg_errs =
    match verify_op_registered op with Ok () -> [] | Error m -> [ mk m ]
  in
  let use_errs =
    Array.to_list op.Ir.operands
    |> List.filter_map (fun (v : Ir.value) ->
           if Iset.mem v.Ir.vid scope then None
           else
             Some
               (mk
                  (Printf.sprintf "%s: operand %%%d (%s) does not dominate its use"
                     op.Ir.name v.Ir.vid (Types.to_string v.Ir.ty))))
  in
  let inner_scope =
    if List.mem op.Ir.name isolated_from_above then Iset.empty else scope
  in
  let region_errs =
    Array.to_list op.Ir.regions
    |> List.concat_map (verify_region ~fname ~scope:inner_scope)
  in
  reg_errs @ use_errs @ region_errs

let verify_func (f : Func.t) : error list =
  let entry = Func.entry_block f in
  (* The entry block args must match the declared parameter types. *)
  let sig_errs =
    let actual = Array.to_list (Array.map (fun (v : Ir.value) -> v.Ir.ty) entry.Ir.args) in
    if actual = f.Func.arg_tys then []
    else [ { in_func = f.Func.fname; message = "entry block args do not match signature" } ]
  in
  sig_errs @ verify_region ~fname:f.Func.fname ~scope:Iset.empty f.Func.body

let verify_module (m : Func.modul) : error list =
  List.concat_map verify_func m.Func.funcs

exception Verification_failed of string

let verify_module_exn m =
  match verify_module m with
  | [] -> ()
  | errs ->
    raise (Verification_failed (String.concat "\n" (List.map error_to_string errs)))
