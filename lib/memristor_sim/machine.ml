(* Memristive crossbar accelerator simulator. Interpreter hooks for the
   memristor dialect: weights are programmed into tiles (slow, endurance-
   limited NVM writes), staged inputs stream through the tiles as analog
   MVMs, results come back through the ADCs.

   Timing is an event-clock model: the digital interface (weight
   programming, input staging) is serialized on [io_clock]; each tile has
   its own [ready_at] clock, so MVMs issued to distinct tiles overlap.
   This is how the paper's cim-parallel unrolling gains its speedup: the
   unrolled loop round-robins executes across tiles. The run's makespan is
   the latest clock at release. *)

open Cinm_ir
open Cinm_interp
module Fault = Cinm_support.Fault
module Trace = Cinm_support.Trace
module Schedule = Cinm_support.Schedule
module Vec = Cinm_support.Vec

type tile = {
  mutable weights : Tensor.t option;
  mutable staged_input : Tensor.t option;
  mutable ready_at : float;
}

type device = { tiles : tile array }

type t = {
  config : Config.t;
  stats : Stats.t;
  devices : (int, device) Hashtbl.t;
  mutable next : int;
  mutable io_clock : float;
  faults : Fault.plan option;
  mutable trace_pid : int;
  events : Schedule.ev Vec.t;
}

let create ?(faults = Fault.default ()) config =
  {
    config;
    stats = Stats.create ~tiles:config.Config.tiles;
    devices = Hashtbl.create 4;
    next = 0;
    io_clock = 0.0;
    faults;
    trace_pid = 0;
    events = Vec.create ();
  }

(* Tracing: this simulator already runs on real event clocks, so spans sit
   directly on them — tile activity (programming, MVMs) on its own
   "tile<k>" track at the tile's clock, digital-interface activity on the
   "io" track at [io_clock]. Span durations equal the stats-bucket
   increments (cat "program" -> program_s, "mvm" -> compute_s, "io" ->
   io_s), added in emission order, so [Trace.device_total] reproduces the
   buckets bit for bit. The interpreter driving these hooks is
   sequential: determinism needs no further care here. *)

let tracing m =
  Trace.enabled ()
  && begin
       if m.trace_pid = 0 then
         m.trace_pid <-
           Trace.new_device
             (Printf.sprintf "memristor accelerator (%d tiles)"
                m.config.Config.tiles);
       true
     end

let tile_track k = Printf.sprintf "tile%d" k

let fresh_tile () = { weights = None; staged_input = None; ready_at = 0.0 }

let find_device m rv =
  match Hashtbl.find_opt m.devices (Rtval.as_handle rv) with
  | Some d -> d
  | None -> invalid_arg "Memristor machine: unknown device handle"

let tile_of d op =
  let k = Ir.int_attr op "tile" in
  if k < 0 || k >= Array.length d.tiles then
    invalid_arg (Printf.sprintf "Memristor machine: tile %d out of range" k);
  (k, d.tiles.(k))

let makespan m d =
  Array.fold_left (fun acc t -> Float.max acc t.ready_at) m.io_clock d.tiles

let tensor_bytes (t : Tensor.t) =
  Tensor.num_elements t * Types.dtype_bytes t.Tensor.dtype

(* Tile-resident staging data (programmed weights, staged inputs) is owned
   exclusively by its tile, so the copies recycle through the arena: a
   replaced or released copy returns its storage for the next one. *)
let stage_copy (t : Tensor.t) =
  let c = Tensor.Arena.alloc t.Tensor.shape t.Tensor.dtype in
  Tensor.blit t 0 c 0 (Tensor.num_elements t);
  c

let release_opt = function Some t -> Tensor.Arena.release t | None -> ()

let release_tiles d =
  Array.iter
    (fun tile ->
      release_opt tile.weights;
      tile.weights <- None;
      release_opt tile.staged_input;
      tile.staged_input <- None)
    d.tiles

let hook_impl (m : t) : Interp.hook =
 fun _ctx op ops ->
  let operand i = ops.(i) in
  let c = m.config in
  match op.Ir.name with
  | "memristor.alloc" ->
    let tiles = Ir.int_attr op "tiles" in
    if tiles > c.Config.tiles then
      invalid_arg
        (Printf.sprintf "memristor.alloc: %d tiles requested, %d available" tiles
           c.Config.tiles);
    let id = m.next in
    m.next <- m.next + 1;
    Hashtbl.replace m.devices id { tiles = Array.init tiles (fun _ -> fresh_tile ()) };
    Some [ Rtval.Handle id ]
  | "memristor.store_tile" ->
    let d = find_device m (operand 0) in
    let k, tile = tile_of d op in
    let w = Rtval.as_tensor (operand 1) in
    (match w.Tensor.shape with
    | [| r; cc |] when r <= c.Config.rows && cc <= c.Config.cols -> ()
    | _ ->
      invalid_arg
        (Printf.sprintf "memristor.store_tile: weights %s exceed %dx%d crossbar"
           (Cinm_support.Util.shape_to_string w.Tensor.shape)
           c.Config.rows c.Config.cols));
    let stored = stage_copy w in
    let stuck_before = m.stats.Stats.stuck_cells in
    (* Device non-ideality, applied to the *programmed* conductances.
       Stuck-at cells clamp to off (0) / on (1) conductance regardless of
       the written weight; the stuck set is a stable property of the
       physical tile (same (tile, cell) sites every run for a seed). *)
    (match m.faults with
    | Some plan
      when plan.Fault.rates.Fault.stuck0 > 0.0
           || plan.Fault.rates.Fault.stuck1 > 0.0 ->
      let cc = w.Tensor.shape.(1) in
      for i = 0 to Tensor.num_elements w - 1 do
        (* cell id is the element's physical position in the crossbar *)
        let cell = ((i / cc) * c.Config.cols) + (i mod cc) in
        match Fault.stuck_cell plan ~tile:k ~cell with
        | Some v ->
          Tensor.set_int stored i v;
          m.stats.Stats.stuck_cells <- m.stats.Stats.stuck_cells + 1
        | None -> ()
      done
    | _ -> ());
    release_opt tile.weights;
    tile.weights <- Some stored;
    let rows = w.Tensor.shape.(0) in
    let cells = Tensor.num_elements w in
    let t_prog = float_of_int rows *. c.Config.t_write_row in
    let start = Float.max m.io_clock tile.ready_at in
    if tracing m then begin
      Trace.complete ~cat:"program"
        ~args:
          [ ("rows", Trace.Int rows);
            ("cells", Trace.Int cells);
            ("write_cycle", Trace.Int (m.stats.Stats.endurance_writes.(k) + 1)) ]
        ~clock:Trace.Device ~pid:m.trace_pid ~track:(tile_track k) ~ts:start
        ~dur:t_prog "program";
      if m.stats.Stats.stuck_cells > stuck_before then
        Trace.instant ~cat:"fault"
          ~args:
            [ ("stuck_cells", Trace.Int (m.stats.Stats.stuck_cells - stuck_before)) ]
          ~clock:Trace.Device ~pid:m.trace_pid ~track:(tile_track k) ~ts:start
          "stuck-cells"
    end;
    m.io_clock <- start +. t_prog;
    tile.ready_at <- m.io_clock;
    (* Gain variation is calibrated out by a write-verify read-out pass
       after programming: the result data is unaffected (the digital
       periphery rescales), but the pass costs one MVM per programmed row
       on the serialized digital interface. *)
    (match m.faults with
    | Some plan when plan.Fault.rates.Fault.gain_var > 0.0 ->
      let gain = Fault.tile_gain plan ~tile:k in
      if Float.abs (gain -. 1.0) > 0.01 then begin
        let t_cal = float_of_int rows *. c.Config.t_mvm in
        if tracing m then
          Trace.complete ~cat:"io"
            ~args:[ ("gain", Trace.Float gain); ("rows", Trace.Int rows) ]
            ~clock:Trace.Device ~pid:m.trace_pid ~track:(tile_track k)
            ~ts:m.io_clock ~dur:t_cal "calibrate";
        m.io_clock <- m.io_clock +. t_cal;
        tile.ready_at <- m.io_clock;
        m.stats.Stats.io_s <- m.stats.Stats.io_s +. t_cal;
        m.stats.Stats.calibrations <- m.stats.Stats.calibrations + 1;
        m.stats.Stats.energy_j <- m.stats.Stats.energy_j +. c.Config.e_mvm
      end
    | _ -> ());
    m.stats.Stats.program_s <- m.stats.Stats.program_s +. t_prog;
    m.stats.Stats.cells_written <- m.stats.Stats.cells_written + cells;
    m.stats.Stats.store_ops <- m.stats.Stats.store_ops + 1;
    m.stats.Stats.endurance_writes.(k) <- m.stats.Stats.endurance_writes.(k) + 1;
    m.stats.Stats.energy_j <-
      m.stats.Stats.energy_j +. (float_of_int cells *. c.Config.e_write_cell);
    Some []
  | "memristor.copy_tile" ->
    let d = find_device m (operand 0) in
    let k, tile = tile_of d op in
    let input = Rtval.as_tensor (operand 1) in
    (match input.Tensor.shape with
    | [| _m; kk |] when kk <= c.Config.rows -> ()
    | _ -> invalid_arg "memristor.copy_tile: input must be (M x rows<=crossbar)");
    release_opt tile.staged_input;
    tile.staged_input <- Some (stage_copy input);
    let bytes = tensor_bytes input in
    let t_stage = float_of_int bytes *. c.Config.t_input_stage_per_byte in
    if tracing m then
      Trace.complete ~cat:"io"
        ~args:[ ("tile", Trace.Int k); ("bytes", Trace.Int bytes) ]
        ~clock:Trace.Device ~pid:m.trace_pid ~track:"io" ~ts:m.io_clock
        ~dur:t_stage "stage";
    (* the DAC registers are double-buffered: staging occupies only the
       shared digital interface; the tile just cannot consume the new
       input before it has arrived *)
    m.io_clock <- m.io_clock +. t_stage;
    tile.ready_at <- Float.max tile.ready_at m.io_clock;
    m.stats.Stats.io_s <- m.stats.Stats.io_s +. t_stage;
    m.stats.Stats.energy_j <-
      m.stats.Stats.energy_j +. (float_of_int bytes *. c.Config.e_io_byte);
    Some []
  | "memristor.gemm_tile" -> (
    let d = find_device m (operand 0) in
    let k, tile = tile_of d op in
    match (tile.staged_input, tile.weights) with
    | Some input, Some w ->
      let out = Tensor.matmul input w in
      let vectors = input.Tensor.shape.(0) in
      if tracing m then
        Trace.complete ~cat:"mvm"
          ~args:[ ("vectors", Trace.Int vectors) ]
          ~clock:Trace.Device ~pid:m.trace_pid ~track:(tile_track k)
          ~ts:tile.ready_at
          ~dur:(float_of_int vectors *. c.Config.t_mvm)
          "mvm";
      (* the MVM runs on the tile alone; distinct tiles overlap *)
      tile.ready_at <- tile.ready_at +. (float_of_int vectors *. c.Config.t_mvm);
      m.stats.Stats.compute_s <-
        m.stats.Stats.compute_s +. (float_of_int vectors *. c.Config.t_mvm);
      m.stats.Stats.mvms <- m.stats.Stats.mvms + vectors;
      m.stats.Stats.energy_j <-
        m.stats.Stats.energy_j +. (float_of_int vectors *. c.Config.e_mvm);
      Some [ Rtval.Tensor out ]
    | _ -> invalid_arg "memristor.gemm_tile: tile has no staged input or weights")
  | "memristor.read_result" ->
    invalid_arg "memristor.read_result: results are returned by gemm_tile in this flow"
  | "memristor.barrier" ->
    let d = find_device m (operand 0) in
    m.io_clock <- makespan m d;
    if tracing m then
      Trace.instant ~cat:"io" ~clock:Trace.Device ~pid:m.trace_pid ~track:"io"
        ~ts:m.io_clock "barrier";
    Some []
  | "memristor.release" ->
    let d = find_device m (operand 0) in
    if tracing m then
      Trace.instant ~cat:"io"
        ~args:[ ("makespan_us", Trace.Float (1e6 *. makespan m d)) ]
        ~clock:Trace.Device ~pid:m.trace_pid ~track:"io" ~ts:(makespan m d)
        "release";
    m.stats.Stats.makespan_s <- Float.max m.stats.Stats.makespan_s (makespan m d);
    release_tiles d;
    Hashtbl.remove m.devices (Rtval.as_handle (operand 0));
    Some []
  | _ -> None

(* The public hook: dispatch to [hook_impl], logging one schedule event
   per timed op whose duration is the increment of the *serialized* busy
   sum (program + compute + io). The crossbar's own tile-level overlap is
   already folded into its event clocks; for the cross-device schedule
   the machine is conservatively modelled as one serial engine ("dev"
   channel), so heterogeneous overlap comes from running it concurrently
   with the other machines, never from double-counting its internal
   parallelism. *)
let hook (m : t) : Interp.hook =
  let impl = hook_impl m in
  let busy () =
    m.stats.Stats.program_s +. m.stats.Stats.compute_s +. m.stats.Stats.io_s
  in
  fun ctx op ops ->
    match op.Ir.name with
    | "memristor.store_tile" | "memristor.copy_tile" | "memristor.gemm_tile" ->
      let t0 = busy () in
      let r = impl ctx op ops in
      let dur_s = busy () -. t0 in
      let kind =
        match op.Ir.name with
        | "memristor.copy_tile" -> Schedule.Dma_in
        | _ -> Schedule.Compute
      in
      Vec.push m.events
        { Schedule.chan = "dev"; kind; dur_s; bufs = []; label = op.Ir.name };
      r
    | _ -> impl ctx op ops

(* Return every live device's tile storage to the arena, at the end of a
   run (devices the program never released). MVM results are fresh
   tensors, so host results never alias tile storage. *)
let recycle m =
  Hashtbl.iter (fun _ d -> release_tiles d) m.devices;
  Hashtbl.reset m.devices

let run m (f : Func.t) args =
  let results, _ = Compile.run_func ~hooks:[ hook m ] f args in
  (results, m.stats)
