(** Memristive crossbar accelerator simulator: interpreter hooks for the
    memristor dialect. Weights are programmed into tiles (slow,
    endurance-limited NVM writes), staged inputs stream through as analog
    MVMs, results come back through the ADCs.

    Timing is an event-clock model: the digital interface (programming,
    input staging) is serialized on an io clock; each tile has its own
    ready clock, so MVMs on distinct tiles overlap — which is where the
    cim-parallel unrolling gets its speedup. The run's makespan is the
    latest clock at release.

    With a {!Cinm_support.Fault} plan installed the crossbars are
    non-ideal: stuck-at-0/1 cells clamp programmed conductances (changing
    results — this fault is not hidden), and tiles with conductance gain
    outside 1% tolerance pay a write-verify calibration pass after every
    store (accounted in io time and {!Stats.t.calibrations}; results are
    unaffected, the digital periphery rescales). *)

open Cinm_ir
open Cinm_interp

type tile
type device

type t = {
  config : Config.t;
  stats : Stats.t;
  devices : (int, device) Hashtbl.t;
  mutable next : int;
  mutable io_clock : float;
  faults : Cinm_support.Fault.plan option;
  mutable trace_pid : int;
      (** the machine's {!Cinm_support.Trace} device pid; [0] until the
          first event is emitted with tracing on. Spans sit directly on
          the simulator's event clocks: programming and MVMs on per-tile
          ["tile<k>"] tracks, digital-interface staging on ["io"], plus
          stuck-cell/calibration fault events. Span durations equal the
          stats-bucket increments (cat ["program"]/["mvm"]/["io"]), so
          {!Cinm_support.Trace.device_total} reproduces them bit for
          bit. *)
  events : Cinm_support.Schedule.ev Cinm_support.Vec.t;
      (** schedule-event log: one entry per timed op (store/copy/gemm
          tile), duration = the op's serialized busy increment; sliced by
          the async executor to build overlapped schedules *)
}

val create : ?faults:Cinm_support.Fault.plan option -> Config.t -> t
(** [faults] defaults to {!Cinm_support.Fault.default} (the [CINM_FAULTS]
    plan, if any); pass [~faults:None] to force ideal crossbars. *)

(** The interpreter hook implementing memristor.*. Programs that exceed the
    configured tile count/geometry, or compute on unprogrammed tiles,
    raise [Invalid_argument]. *)
val hook : t -> Interp.hook

(** Return every live device's tile storage to the {!Tensor.Arena}, for
    the end of a run (devices the program never released). MVM results are
    fresh tensors, so host results never alias tile storage. *)
val recycle : t -> unit

val run : t -> Func.t -> Rtval.t list -> Rtval.t list * Stats.t
