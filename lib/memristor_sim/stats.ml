(* Statistics of one memristor-accelerator run. The write count is the
   headline metric of the paper's cim-min-writes optimization (Fig. 10:
   7x fewer writes); tile-parallel phases shorten compute_s. *)

type t = {
  mutable program_s : float;  (** crossbar programming (NVM writes) *)
  mutable compute_s : float;  (** analog MVM phases *)
  mutable io_s : float;  (** digital staging / read-out / host transfers *)
  mutable cells_written : int;
  mutable store_ops : int;  (** store_tile calls *)
  mutable mvms : int;  (** input vectors driven through tiles *)
  mutable energy_j : float;
  mutable endurance_writes : int array;  (** per-tile write cycles *)
  mutable makespan_s : float;
      (** event-clock end time: tile-parallel phases overlap, unlike the
          serialized program/compute/io sums above *)
  mutable stuck_cells : int;  (** crossbar cells clamped by stuck-at faults *)
  mutable calibrations : int;  (** write-verify passes for tile gain drift *)
}

let create ~tiles =
  {
    program_s = 0.0;
    compute_s = 0.0;
    io_s = 0.0;
    cells_written = 0;
    store_ops = 0;
    mvms = 0;
    energy_j = 0.0;
    endurance_writes = Array.make tiles 0;
    makespan_s = 0.0;
    stuck_cells = 0;
    calibrations = 0;
  }

(* End-to-end accelerator time: the event-clock makespan when the program
   released the device, else the serialized sum. *)
let total_s s =
  if s.makespan_s > 0.0 then s.makespan_s else s.program_s +. s.compute_s +. s.io_s

let to_string s =
  let faults =
    if s.stuck_cells = 0 && s.calibrations = 0 then ""
    else Printf.sprintf " stuck=%d calibrations=%d" s.stuck_cells s.calibrations
  in
  Printf.sprintf
    "total=%.3fus (program=%.3f compute=%.3f io=%.3f) stores=%d cells=%d mvms=%d energy=%.3fuJ%s"
    (1e6 *. total_s s) (1e6 *. s.program_s) (1e6 *. s.compute_s) (1e6 *. s.io_s)
    s.store_ops s.cells_written s.mvms (1e6 *. s.energy_j) faults
