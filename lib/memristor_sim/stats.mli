(** Statistics of one memristor-accelerator run. The write count is the
    headline metric of the cim-min-writes optimization (Fig. 10). *)

type t = {
  mutable program_s : float;  (** crossbar programming (NVM writes) *)
  mutable compute_s : float;  (** analog MVM *)
  mutable io_s : float;  (** digital staging / read-out *)
  mutable cells_written : int;
  mutable store_ops : int;
  mutable mvms : int;
  mutable energy_j : float;
  mutable endurance_writes : int array;  (** per-tile write cycles *)
  mutable makespan_s : float;  (** event-clock end time (tiles overlap) *)
  mutable stuck_cells : int;  (** crossbar cells clamped by stuck-at faults *)
  mutable calibrations : int;  (** write-verify passes for tile gain drift *)
}

val create : tiles:int -> t

(** Event-clock makespan when set (device released), else the serial sum. *)
val total_s : t -> float

val to_string : t -> string
