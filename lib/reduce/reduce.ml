(* Delta-debugging IR reducer (the mlir-reduce analogue): given a module
   and an "interestingness" predicate (typically: a pass pipeline still
   fails with the same diagnostic class), greedily shrink the module while
   the predicate holds.

   Moves, applied in rounds until a fixpoint:
     1. drop whole functions;
     2. ddmin-style chunked replacement of ops by fresh constants of the
        same result types (chunk sizes n/2, n/4, ..., 1), rewiring uses —
        this also deletes whole region bodies when the op owning the
        region goes;
     3. ddmin-style chunked operand forwarding: a single-result op whose
        result type matches an operand is bypassed (uses rewired to the
        operand) — collapses live accumulator chains constant
        replacement cannot shorten;
     4. rewrite operands to fresh constants, decoupling def-use chains so
        the producers die in the cleanup sweep;
     5. delete pure ops whose results are unused (cleanup sweep);
     6. textually halve tensor/memref/workgroup shape dimensions.

   Every move is built on a deep clone of the current best module and
   accepted only if the clone is still interesting, so an invalid or
   diagnostic-changing mutation is simply rejected — moves do not need to
   preserve validity themselves. *)

open Cinm_ir
module Log = Cinm_support.Log

type stats = {
  rounds : int;
  candidates : int;
  accepted : int;
  ops_before : int;
  ops_after : int;
}

let clone_module (m : Func.modul) =
  let m' = Func.create_module () in
  List.iter (fun f -> Func.add_func m' (Func.clone f)) m.Func.funcs;
  m'.Func.mattrs <- m.Func.mattrs;
  m'

let count_ops = Pass.count_ops

(* duplicated from the interpreter to keep this library independent of it *)
let is_terminator (op : Ir.op) =
  match op.Ir.name with
  | "scf.yield" | "func.return" | "cim.yield" | "cnm.terminator" -> true
  | _ -> false

(* A fresh op producing a trivial value of [ty], or [None] when the type
   has no constant form (tokens, handles, workgroups, ...). *)
let materialize (ty : Types.t) : Ir.op option =
  match ty with
  | Types.Scalar d when Types.is_float_dtype d ->
    Some
      (Ir.create_op ~attrs:[ ("value", Attr.Float 0.) ] ~result_tys:[ ty ]
         "arith.constant")
  | Types.Index | Types.Scalar _ ->
    Some
      (Ir.create_op ~attrs:[ ("value", Attr.Int 0) ] ~result_tys:[ ty ]
         "arith.constant")
  | Types.Tensor _ -> Some (Ir.create_op ~result_tys:[ ty ] "tensor.empty")
  | Types.MemRef _ -> Some (Ir.create_op ~result_tys:[ ty ] "memref.alloc")
  | _ -> None

let is_trivial_def (v : Ir.value) =
  match v.Ir.def with
  | Ir.Op_result (d, _) -> (
    match d.Ir.name with
    | "arith.constant" | "tensor.empty" | "memref.alloc" -> true
    | _ -> false)
  | Ir.Block_arg _ -> true

(* Pre-order op array of a function body; deterministic, so indices
   computed on one clone address the same ops on any other clone. *)
let ops_of (f : Func.t) : Ir.op array =
  let acc = ref [] in
  Func.walk (fun op -> acc := op :: !acc) f;
  Array.of_list (List.rev !acc)

(* Replace [op] by fresh constants for each of its results (uses rewired
   across the whole function body, nested regions included), then drop it
   from its block. False when the op is a terminator, parentless, or has
   an unmaterializable result type. *)
let replace_op_with_constants (f : Func.t) (op : Ir.op) : bool =
  if is_terminator op then false
  else
    match op.Ir.parent with
    | None -> false
    | Some block ->
      let consts =
        Array.map (fun (r : Ir.value) -> materialize r.Ir.ty) op.Ir.results
      in
      if Array.exists Option.is_none consts then false
      else begin
        let consts = Array.map Option.get consts in
        Array.iteri
          (fun i (c : Ir.op) ->
            Ir.replace_uses_in_region f.Func.body ~old_v:op.Ir.results.(i)
              ~new_v:(Ir.result c 0))
          consts;
        let new_ops =
          List.concat_map
            (fun o -> if o == op then Array.to_list consts else [ o ])
            (Ir.block_ops block)
        in
        Ir.set_block_ops block new_ops;
        true
      end

(* Bypass [op]: rewire its single result's uses to a same-typed operand
   and drop the op. The workhorse for chains like acc' = add(acc, c),
   where every link is live so constant replacement never shrinks the
   path, but forwarding acc through removes a link (and the sweep then
   reaps the now-unused c). Dominance is preserved: the operand is
   defined before [op], so it is in scope at every use of the result. *)
let forward_operand_to_result (f : Func.t) (op : Ir.op) : bool =
  if is_terminator op || Array.length op.Ir.results <> 1 then false
  else
    match op.Ir.parent with
    | None -> false
    | Some block -> (
      let r = op.Ir.results.(0) in
      match
        Array.find_opt
          (fun (v : Ir.value) -> Types.equal v.Ir.ty r.Ir.ty)
          op.Ir.operands
      with
      | None -> false
      | Some v ->
        Ir.replace_uses_in_region f.Func.body ~old_v:r ~new_v:v;
        Ir.set_block_ops block
          (List.filter (fun o -> not (o == op)) (Ir.block_ops block));
        true)

(* Rewrite operand [j] of [op] to a fresh constant inserted just before
   it, decoupling the def-use chain so the producer can die in the sweep. *)
let rewrite_operand (op : Ir.op) (j : int) : bool =
  match op.Ir.parent with
  | None -> false
  | Some block ->
    let v = op.Ir.operands.(j) in
    if is_trivial_def v then false
    else (
      match materialize v.Ir.ty with
      | None -> false
      | Some c ->
        op.Ir.operands.(j) <- Ir.result c 0;
        let new_ops =
          List.concat_map
            (fun o -> if o == op then [ c; o ] else [ o ])
            (Ir.block_ops block)
        in
        Ir.set_block_ops block new_ops;
        true)

(* Delete pure value-producing ops none of whose results are used, to a
   fixpoint. Result-less (side-effecting) ops are left alone — the chunk
   move handles those. *)
let sweep_unused (f : Func.t) : bool =
  let changed = ref false in
  let continue_ = ref true in
  while !continue_ do
    let used = Hashtbl.create 64 in
    Func.walk
      (fun op ->
        Array.iter
          (fun (v : Ir.value) -> Hashtbl.replace used v.Ir.vid ())
          op.Ir.operands)
      f;
    let removed = ref false in
    let rec each_region (r : Ir.region) =
      Ir.iter_blocks
        (fun b ->
          if
            Ir.filter_ops_in_place
              (fun op ->
                is_terminator op
                || Array.length op.Ir.results = 0
                || Array.exists
                     (fun (v : Ir.value) -> Hashtbl.mem used v.Ir.vid)
                     op.Ir.results)
              b
          then removed := true;
          Ir.iter_ops (fun op -> Array.iter each_region op.Ir.regions) b)
        r
    in
    each_region f.Func.body;
    if !removed then changed := true else continue_ := false
  done;
  !changed

(* Halve every shape dimension appearing in the textual IR: a maximal
   digit run preceded by '<' or 'x' and followed by 'x' is a leading/
   middle dim; dtype digits (i32, f64) are preceded by a letter and so
   untouched. Semantic fallout (attr/shape mismatches) is caught by the
   predicate rejecting the candidate. *)
let halve_shapes_text txt : string option =
  let n = String.length txt in
  let buf = Buffer.create n in
  let changed = ref false in
  let i = ref 0 in
  while !i < n do
    let c = txt.[!i] in
    Buffer.add_char buf c;
    incr i;
    if c = '<' || c = 'x' then begin
      let s = !i in
      while !i < n && txt.[!i] >= '0' && txt.[!i] <= '9' do
        incr i
      done;
      let run = String.sub txt s (!i - s) in
      if run <> "" && !i < n && txt.[!i] = 'x' then begin
        let d = int_of_string run in
        if d > 1 then begin
          changed := true;
          Buffer.add_string buf (string_of_int ((d + 1) / 2))
        end
        else Buffer.add_string buf run
      end
      else Buffer.add_string buf run
    end
  done;
  if !changed then Some (Buffer.contents buf) else None

let reduce ?(max_rounds = 16) ~interesting (m0 : Func.modul) :
    Func.modul * stats =
  let ops_before = count_ops m0 in
  let candidates = ref 0 and accepted = ref 0 in
  let best = ref (clone_module m0) in
  let best_ops = ref ops_before in
  let try_candidate ~allow_equal c =
    incr candidates;
    let n = count_ops c in
    if (n < !best_ops || (allow_equal && n = !best_ops)) && interesting c then begin
      best := c;
      best_ops := n;
      incr accepted;
      true
    end
    else false
  in
  let rounds = ref 0 in
  let progress = ref true in
  while !progress && !rounds < max_rounds do
    progress := false;
    incr rounds;
    (* move 1: drop whole functions *)
    let fi = ref 0 in
    while !fi < List.length !best.Func.funcs && List.length !best.Func.funcs > 1 do
      let c = clone_module !best in
      c.Func.funcs <- List.filteri (fun i _ -> i <> !fi) c.Func.funcs;
      if try_candidate ~allow_equal:false c then progress := true else incr fi
    done;
    (* moves 2 + 3: ddmin chunks of a per-op mutation, per function *)
    let ddmin_pass (mutate : Func.t -> Ir.op -> bool) =
      for fi = 0 to List.length !best.Func.funcs - 1 do
        let fun_ops () = Array.length (ops_of (List.nth !best.Func.funcs fi)) in
        let chunk = ref (max 1 (fun_ops () / 2)) in
        while !chunk >= 1 do
          let pos = ref 0 in
          while !pos < fun_ops () do
            let c = clone_module !best in
            let f = List.nth c.Func.funcs fi in
            let ops = ops_of f in
            let any = ref false in
            for k = !pos to min (Array.length ops - 1) (!pos + !chunk - 1) do
              if mutate f ops.(k) then any := true
            done;
            if !any then ignore (sweep_unused f);
            if !any && try_candidate ~allow_equal:false c then progress := true
            else pos := !pos + !chunk
          done;
          chunk := !chunk / 2
        done
      done
    in
    ddmin_pass replace_op_with_constants;
    ddmin_pass forward_operand_to_result;
    (* move 4: decouple all operand chains at once, then sweep *)
    (let c = clone_module !best in
     let any = ref false in
     List.iter
       (fun f ->
         Array.iter
           (fun op ->
             for j = 0 to Array.length op.Ir.operands - 1 do
               if rewrite_operand op j then any := true
             done)
           (ops_of f);
         if !any then ignore (sweep_unused f))
       c.Func.funcs;
     if !any && try_candidate ~allow_equal:false c then progress := true);
    (* move 5: sweep-only candidate *)
    (let c = clone_module !best in
     let any = List.exists (fun b -> b) (List.map sweep_unused c.Func.funcs) in
     if any && try_candidate ~allow_equal:false c then progress := true);
    (* move 6: halve shapes until they stop parsing or stop helping *)
    let shrinking = ref true in
    while !shrinking do
      shrinking := false;
      match halve_shapes_text (Printer.module_to_string !best) with
      | None -> ()
      | Some txt -> (
        match Parser.parse_module_text txt with
        | exception Parser.Parse_error _ -> ()
        | c ->
          if try_candidate ~allow_equal:true c then begin
            progress := true;
            shrinking := true
          end)
    done;
    Log.debug "reduce: round %d done, %d ops (%d candidates, %d accepted)"
      !rounds !best_ops !candidates !accepted
  done;
  ( !best,
    {
      rounds = !rounds;
      candidates = !candidates;
      accepted = !accepted;
      ops_before;
      ops_after = !best_ops;
    } )
