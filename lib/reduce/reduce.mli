(** Delta-debugging IR reducer (the mlir-reduce analogue): greedily
    shrink a module while an "interestingness" predicate — typically "the
    pipeline still fails with the same diagnostic class" — keeps holding.
    Every candidate mutation is built on a deep clone and accepted only if
    the predicate holds on it, so moves need not preserve validity
    themselves. *)

open Cinm_ir

type stats = {
  rounds : int;
  candidates : int;
  accepted : int;
  ops_before : int;
  ops_after : int;
}

(** Deep copy of a module (functions and module attributes). *)
val clone_module : Func.modul -> Func.modul

(** Total op count (delegates to {!Pass.count_ops}). *)
val count_ops : Func.modul -> int

(** Shrink [m] (left untouched; the result is a fresh module). The
    [interesting] predicate must not retain or mutate its argument — run
    pipelines on an internal clone. [max_rounds] bounds the outer
    fixpoint loop (default 16). *)
val reduce :
  ?max_rounds:int ->
  interesting:(Func.modul -> bool) ->
  Func.modul ->
  Func.modul * stats
