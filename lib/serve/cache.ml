(* Cross-request pipeline cache.

   Compiling a benchmark is deterministic in (benchmark, backend, strict):
   the descriptor builds identical fresh IR every time and the pass
   pipeline is a pure function of the backend config (strict is in the
   key because a strict compile proves more — serving a strict request
   from a non-strict artifact would skip the per-pass verification the
   request asked for). So the daemon caches the compiled module and reuses
   it read-only across requests: execution binds values in per-request
   interpreter contexts and never mutates the module.

   This reuse is also what promotes the PR-4 compiled-unit cache to
   cross-request scope for free — that cache is keyed by entry-block
   identity, so re-running the *same* module object hits it, whereas
   recompiling from scratch would produce fresh blocks and compile the
   closures again.

   Only clean compiles are cached: a CPU-fallback artifact encodes a
   failure that may be config-dependent (pass budgets are wall-clock), so
   degraded compiles are rebuilt per request. Eviction is FIFO under a
   size cap; [invalidate] empties the cache (and the compiled-unit cache,
   whose keys would otherwise pin dead modules' code). *)

module Compile = Cinm_interp.Compile

type key = { benchmark : string; backend : string; strict : bool }

type t = {
  mutex : Mutex.t;
  entries : (key, Cinm_core.Driver.compiled) Hashtbl.t;
  order : key Queue.t;  (* insertion order, for FIFO eviction *)
  capacity : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type stats = { hits : int; misses : int; evictions : int; entries : int }

let create ?(capacity = 256) () =
  {
    mutex = Mutex.create ();
    entries = Hashtbl.create 64;
    order = Queue.create ();
    capacity = max 1 capacity;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let find t key =
  Mutex.lock t.mutex;
  let r = Hashtbl.find_opt t.entries key in
  (match r with Some _ -> t.hits <- t.hits + 1 | None -> t.misses <- t.misses + 1);
  Mutex.unlock t.mutex;
  r

(* Insert a clean compile. Concurrent compiles of the same key both run
   (wasted work, not wrong results); first insert wins so later requests
   share one module object. *)
let add t key compiled =
  if compiled.Cinm_core.Driver.fallback = None then begin
    Mutex.lock t.mutex;
    if not (Hashtbl.mem t.entries key) then begin
      while Hashtbl.length t.entries >= t.capacity do
        let victim = Queue.pop t.order in
        Hashtbl.remove t.entries victim;
        t.evictions <- t.evictions + 1
      done;
      Hashtbl.add t.entries key compiled;
      Queue.push key t.order
    end;
    Mutex.unlock t.mutex
  end

let invalidate t =
  Mutex.lock t.mutex;
  Hashtbl.reset t.entries;
  Queue.clear t.order;
  Mutex.unlock t.mutex;
  (* dropped modules pin compiled closures by block id; drop those too *)
  Compile.clear_cache ()

let stats t =
  Mutex.lock t.mutex;
  let s =
    {
      hits = t.hits;
      misses = t.misses;
      evictions = t.evictions;
      entries = Hashtbl.length t.entries;
    }
  in
  Mutex.unlock t.mutex;
  s
