(** Cross-request pipeline cache: compiled modules keyed by
    (benchmark, backend, strict), shared read-only across requests, FIFO
    eviction under a size cap. Only clean (non-fallback) compiles are
    cached. Reusing the same module object across requests is also what
    lets the compiled-unit cache (keyed by block identity) hit across
    requests. *)

type key = { benchmark : string; backend : string; strict : bool }

type t

type stats = { hits : int; misses : int; evictions : int; entries : int }

val create : ?capacity:int -> unit -> t

(** Counted lookup: every call bumps hits or misses. *)
val find : t -> key -> Cinm_core.Driver.compiled option

(** Insert a compile result; no-op for fallback (degraded) artifacts and
    when the key is already present (first insert wins). Evicts FIFO at
    capacity. *)
val add : t -> key -> Cinm_core.Driver.compiled -> unit

(** Empty the cache, including the compiled-unit (closure) cache its
    modules pin. *)
val invalidate : t -> unit

val stats : t -> stats
