(* The daemon's benchmark catalog: one shared, lazily built table of
   benchmark descriptors, served to every request. Sharing descriptors is
   deliberate — Benchmark.make memoizes input generation and
   Benchmark.reference memoizes the host reference, so the second request
   for a benchmark skips both (the descriptors' caches are the daemon's
   reference cache). [build] still constructs a fresh Func.t per call, so
   concurrent pipelines never share mutable IR.

   Sizes are the bench harness's --quick scale: big enough that device
   placement and multi-launch paths are exercised, small enough that a
   request completes in tens of milliseconds and a load test can push
   thousands of them. *)

open Cinm_benchmarks

let quick_sizes =
  {
    Suites.default_prim_sizes with
    Suites.va_n = 16384;
    red_n = 16384;
    hst_n = 16384;
    sel_n = 16384;
    ts_n = 16384 + 7;
  }

let table : (string, Benchmark.t) Hashtbl.t = Hashtbl.create 32
let table_mutex = Mutex.create ()
let built = ref false

(* The memoized caches inside each descriptor are guarded by the catalog
   having been built under the mutex once; afterwards the descriptors'
   own benign-race memoization (deterministic values) applies, exactly as
   in the batched bench harness. *)
let ensure () =
  Mutex.lock table_mutex;
  if not !built then begin
    List.iter
      (fun (b : Benchmark.t) ->
        if not (Hashtbl.mem table b.Benchmark.name) then
          Hashtbl.add table b.Benchmark.name b)
      (Suites.ml_suite ~scale:1 () @ Suites.prim_suite ~sizes:quick_sizes ());
    built := true
  end;
  Mutex.unlock table_mutex

let find name =
  ensure ();
  Hashtbl.find_opt table name

let names () =
  ensure ();
  Hashtbl.fold (fun name _ acc -> name :: acc) table [] |> List.sort compare

(* Pre-compute every host reference once, so concurrent first requests
   for the same benchmark do not race on ref_cache (the race is benign —
   both compute the same value — but warming makes first-request latency
   deterministic too). Used by the daemon at startup when asked. *)
let warm_references () =
  ensure ();
  Hashtbl.iter (fun _ b -> ignore (Benchmark.reference b)) table
