(** The daemon's shared benchmark catalog (quick-scale ML + PrIM suites).
    Descriptors are shared across requests so their memoized inputs and
    host references act as a cross-request reference cache; [build] still
    yields fresh IR per call. *)

val find : string -> Cinm_benchmarks.Benchmark.t option

(** Catalog names, sorted (the [health] endpoint reports them). *)
val names : unit -> string list

(** Compute every host reference up front (deterministic first-request
    latency; avoids benign ref_cache races under concurrent load). *)
val warm_references : unit -> unit
