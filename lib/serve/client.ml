(* A small blocking client for the serve protocol: one request line out,
   one response line in. Used by the loadgen harness, the serve tests and
   the smoke script; a production client would pipeline and match
   responses by id, but serialized request/response keeps test assertions
   exact. *)

type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  mutable closed : bool;
}

exception Server_gone of string

let connect ?(attempts = 1) path =
  let rec go n =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> { fd; ic = Unix.in_channel_of_descr fd; closed = false }
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
      when n > 1 ->
      Unix.close fd;
      Unix.sleepf 0.05;
      go (n - 1)
    | exception e ->
      Unix.close fd;
      raise e
  in
  go (max 1 attempts)

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let send_line t line =
  let data = Bytes.of_string (line ^ "\n") in
  let n = Bytes.length data in
  let off = ref 0 in
  try
    while !off < n do
      let w = Unix.write t.fd data !off (n - !off) in
      if w <= 0 then raise Exit;
      off := !off + w
    done
  with Exit | Unix.Unix_error _ -> raise (Server_gone "write failed")

let recv_line t =
  match input_line t.ic with
  | line -> line
  | exception End_of_file -> raise (Server_gone "connection closed")

(* Send a raw line (not necessarily valid JSON — tests use this to probe
   protocol hardening) and read one response line back. *)
let request_raw t line =
  send_line t line;
  recv_line t

let request t (req : Json.t) : Json.t =
  Json.parse (request_raw t (Json.to_string req))

(* Convenience: build a request object from optional fields. *)
let make_request ?id ?benchmark ?backend ?strict ?interp ?max_steps ?deadline_s
    ?pass_budget_s ?faults ?fallback ?check ?repeats ?trace op : Json.t
    =
  let add name v fields =
    match v with None -> fields | Some v -> (name, v) :: fields
  in
  let str v = Option.map (fun s -> Json.String s) v in
  Json.Obj
    (("op", Json.String op)
    :: ([]
       |> add "id" (str id)
       |> add "benchmark" (str benchmark)
       |> add "backend" (str backend)
       |> add "strict" (Option.map (fun b -> Json.Bool b) strict)
       |> add "interp" (str interp)
       |> add "max_steps" (Option.map (fun i -> Json.Int i) max_steps)
       |> add "deadline_s" (Option.map (fun f -> Json.Float f) deadline_s)
       |> add "pass_budget_s" (Option.map (fun f -> Json.Float f) pass_budget_s)
       |> add "faults" (str faults)
       |> add "fallback" (Option.map (fun b -> Json.Bool b) fallback)
       |> add "check" (Option.map (fun b -> Json.Bool b) check)
       |> add "repeats" (Option.map (fun i -> Json.Int i) repeats)
       |> add "trace" (Option.map (fun b -> Json.Bool b) trace)
       |> List.rev))
