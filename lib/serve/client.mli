(** Blocking client for the serve protocol: one request line out, one
    response line in, over a Unix-domain socket. *)

type t

(** Raised when the daemon closes the connection or a write fails. *)
exception Server_gone of string

(** [connect ?attempts path] connects to the daemon's socket, retrying
    [attempts] times at 50 ms intervals (for just-started daemons). *)
val connect : ?attempts:int -> string -> t

val close : t -> unit

(** Send a raw line (need not be valid JSON — protocol-hardening tests
    use this) and read one response line back. *)
val request_raw : t -> string -> string

(** Send a request object, read and parse the response. *)
val request : t -> Json.t -> Json.t

(** Build a request object from optional protocol fields. *)
val make_request :
  ?id:string ->
  ?benchmark:string ->
  ?backend:string ->
  ?strict:bool ->
  ?interp:string ->
  ?max_steps:int ->
  ?deadline_s:float ->
  ?pass_budget_s:float ->
  ?faults:string ->
  ?fallback:bool ->
  ?check:bool ->
  ?repeats:int ->
  ?trace:bool ->
  string ->
  Json.t
