(* Minimal JSON: the serve protocol's wire format. Hand-rolled (the tree
   is five constructors and the daemon needs exact control over error
   reporting) with the same line/column/caret error discipline as the IR
   parser — a malformed request line comes back to the client with the
   offending position marked, never as a closed connection.

   Numbers: anything with '.', 'e' or 'E' parses as [Float], the rest as
   [Int] (OCaml 63-bit, plenty for the protocol). Strings support the
   JSON escapes minus \u beyond Latin-1 (the protocol is ASCII). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

type error = { message : string; line : int; col : int; context : string }

exception Parse_error of error

(* Mirrors Parser.caret_snippet: the offending line (windowed around the
   column when long) with a caret under the column. *)
let caret_snippet line_text col =
  let len0 = String.length line_text in
  let start = if col - 1 > 60 then col - 1 - 40 else 0 in
  let len = min (len0 - start) 80 in
  let shown = String.sub line_text start len in
  let prefix = if start > 0 then "... " else "" in
  let caret_pos = String.length prefix + (col - 1 - start) in
  Printf.sprintf "  %s%s\n  %s^" prefix shown (String.make (max 0 caret_pos) ' ')

let error_at src pos message =
  let pos = min pos (String.length src) in
  let line = ref 1 and bol = ref 0 in
  for i = 0 to pos - 1 do
    if src.[i] = '\n' then begin
      incr line;
      bol := i + 1
    end
  done;
  let eol =
    match String.index_from_opt src !bol '\n' with
    | Some e -> e
    | None -> String.length src
  in
  let col = pos - !bol + 1 in
  let context = caret_snippet (String.sub src !bol (eol - !bol)) col in
  { message; line = !line; col; context }

let error_to_string e =
  Printf.sprintf "%s at line %d, column %d\n%s" e.message e.line e.col e.context

let () =
  Printexc.register_printer (function
    | Parse_error e -> Some ("json parse error: " ^ error_to_string e)
    | _ -> None)

(* ----- parsing ----- *)

type state = { src : string; mutable pos : int }

let fail st msg = raise (Parse_error (error_at st.src st.pos msg))
let eof st = st.pos >= String.length st.src
let peek st = if eof st then '\255' else st.src.[st.pos]
let advance st = st.pos <- st.pos + 1

let skip_ws st =
  while (not (eof st)) && (match peek st with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    advance st
  done

let expect st c =
  if peek st <> c then fail st (Printf.sprintf "expected '%c'" c);
  advance st

let parse_literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "expected '%s'" word)

let parse_string_body st =
  expect st '"';
  let b = Buffer.create 16 in
  let rec go () =
    if eof st then fail st "unterminated string";
    match peek st with
    | '"' -> advance st
    | '\\' ->
      advance st;
      (if eof st then fail st "unterminated escape";
       let c = peek st in
       advance st;
       match c with
       | '"' -> Buffer.add_char b '"'
       | '\\' -> Buffer.add_char b '\\'
       | '/' -> Buffer.add_char b '/'
       | 'n' -> Buffer.add_char b '\n'
       | 't' -> Buffer.add_char b '\t'
       | 'r' -> Buffer.add_char b '\r'
       | 'b' -> Buffer.add_char b '\b'
       | 'f' -> Buffer.add_char b '\012'
       | 'u' ->
         if st.pos + 4 > String.length st.src then fail st "truncated \\u escape";
         let hex = String.sub st.src st.pos 4 in
         (match int_of_string_opt ("0x" ^ hex) with
         | Some code when code < 256 ->
           st.pos <- st.pos + 4;
           Buffer.add_char b (Char.chr code)
         | Some _ ->
           st.pos <- st.pos + 4;
           Buffer.add_char b '?' (* non-Latin-1: protocol is ASCII *)
         | None -> fail st "invalid \\u escape")
       | _ -> fail st (Printf.sprintf "invalid escape '\\%c'" c));
      go ()
    | c ->
      advance st;
      Buffer.add_char b c;
      go ()
  in
  go ();
  Buffer.contents b

let parse_number st =
  let start = st.pos in
  if peek st = '-' then advance st;
  let is_float = ref false in
  let rec go () =
    match peek st with
    | '0' .. '9' ->
      advance st;
      go ()
    | '.' | 'e' | 'E' | '+' | '-' ->
      is_float := true;
      advance st;
      go ()
    | _ -> ()
  in
  go ();
  let text = String.sub st.src start (st.pos - start) in
  if !is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None ->
      st.pos <- start;
      fail st (Printf.sprintf "invalid number %S" text)
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None ->
      st.pos <- start;
      fail st (Printf.sprintf "invalid number %S" text)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | '{' ->
    advance st;
    skip_ws st;
    if peek st = '}' then begin
      advance st;
      Obj []
    end
    else begin
      let fields = ref [] in
      let rec members () =
        skip_ws st;
        let key = parse_string_body st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        fields := (key, v) :: !fields;
        skip_ws st;
        match peek st with
        | ',' ->
          advance st;
          members ()
        | '}' -> advance st
        | _ -> fail st "expected ',' or '}'"
      in
      members ();
      Obj (List.rev !fields)
    end
  | '[' ->
    advance st;
    skip_ws st;
    if peek st = ']' then begin
      advance st;
      List []
    end
    else begin
      let items = ref [] in
      let rec elements () =
        let v = parse_value st in
        items := v :: !items;
        skip_ws st;
        match peek st with
        | ',' ->
          advance st;
          elements ()
        | ']' -> advance st
        | _ -> fail st "expected ',' or ']'"
      in
      elements ();
      List (List.rev !items)
    end
  | '"' -> String (parse_string_body st)
  | 't' -> parse_literal st "true" (Bool true)
  | 'f' -> parse_literal st "false" (Bool false)
  | 'n' -> parse_literal st "null" Null
  | '-' | '0' .. '9' -> parse_number st
  | '\255' -> fail st "unexpected end of input"
  | c -> fail st (Printf.sprintf "unexpected character '%c'" c)

let parse src =
  let st = { src; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if not (eof st) then fail st "trailing characters after JSON value";
  v

(* ----- printing ----- *)

let escape_to b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let rec to_buffer b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f ->
    (* %.17g round-trips any float; JSON has no NaN/inf, degrade to null *)
    if Float.is_finite f then Buffer.add_string b (Printf.sprintf "%.17g" f)
    else Buffer.add_string b "null"
  | String s ->
    Buffer.add_char b '"';
    escape_to b s;
    Buffer.add_char b '"'
  | List items ->
    Buffer.add_char b '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char b ',';
        to_buffer b v)
      items;
    Buffer.add_char b ']'
  | Obj fields ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_char b '"';
        escape_to b k;
        Buffer.add_string b "\":";
        to_buffer b v)
      fields;
    Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  to_buffer b v;
  Buffer.contents b

(* ----- accessors (tolerant: absent/mistyped gives None) ----- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let get_string = function String s -> Some s | _ -> None
let get_bool = function Bool b -> Some b | _ -> None
let get_int = function Int i -> Some i | _ -> None

let get_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let string_field j key = Option.bind (member key j) get_string
let bool_field j key = Option.bind (member key j) get_bool
let int_field j key = Option.bind (member key j) get_int
let float_field j key = Option.bind (member key j) get_float
