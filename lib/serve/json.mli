(** Minimal JSON tree, parser and printer — the serve protocol's wire
    format. The parser reports failures with line/column and a caret
    snippet (the same discipline as {!Cinm_ir.Parser}), so a malformed
    request can be answered with a structured error that points at the
    offending byte instead of closing the connection. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

type error = { message : string; line : int; col : int; context : string }

exception Parse_error of error

val error_to_string : error -> string

(** Parse one complete JSON value ([Parse_error] on malformed input,
    including trailing garbage). *)
val parse : string -> t

val to_string : t -> string
val to_buffer : Buffer.t -> t -> unit

(** {2 Tolerant accessors} — absent or mistyped fields give [None].
    [get_float] accepts ints. *)

val member : string -> t -> t option
val get_string : t -> string option
val get_bool : t -> bool option
val get_int : t -> int option
val get_float : t -> float option
val string_field : t -> string -> string option
val bool_field : t -> string -> bool option
val int_field : t -> string -> int option
val float_field : t -> string -> float option
