(* The serve wire protocol: newline-delimited JSON, one request object in,
   one response object out. Inline ops (health/stats/shutdown) and
   protocol errors answer in order; concurrently admitted compile/run/
   bench responses may come back in any order — pipelining clients match
   them by ["id"].

   Request shape (only [op] is required; "metrics" returns the
   telemetry registry, "trace": true captures the request's spans):

     {"op": "run", "id": "r42", "benchmark": "va", "backend": "upmem",
      "strict": true, "interp": "compiled", "max_steps": 100000,
      "deadline_s": 5.0, "pass_budget_s": 0.5, "faults": "dpu_fail=0.05",
      "fallback": false, "check": true, "repeats": 3, "trace": true}

   Responses always carry ["ok"] and echo ["id"]/["op"]; failures carry a
   structured ["error"] object with a stable [code], a human [message]
   and, where applicable, parse position (line/col/context) or the crash
   reproducer path. The decoder is strict about types — a mistyped field
   is a [bad_request], not a silent default — but lenient about unknown
   fields, so clients can grow. *)

type op = Compile | Run | Bench | Health | Stats | Metrics | Shutdown

let op_name = function
  | Compile -> "compile"
  | Run -> "run"
  | Bench -> "bench"
  | Health -> "health"
  | Stats -> "stats"
  | Metrics -> "metrics"
  | Shutdown -> "shutdown"

let op_of_string = function
  | "compile" -> Some Compile
  | "run" -> Some Run
  | "bench" -> Some Bench
  | "health" -> Some Health
  | "stats" -> Some Stats
  | "metrics" -> Some Metrics
  | "shutdown" -> Some Shutdown
  | _ -> None

type request = {
  id : string option;
  op : op;
  benchmark : string;  (** "" for benchmark-less ops *)
  backend : string;  (** "host" | "upmem" | "cim" | "hetero" *)
  strict : bool option;
  interp : string option;
  max_steps : int option;
  deadline_s : float option;
  pass_budget_s : float option;
  faults : string option;  (** raw spec, e.g. "dpu_fail=0.05,seed=7" *)
  fallback : bool;  (** CPU fallback on device-lowering failure *)
  check : bool;  (** verify device results against the host reference *)
  repeats : int;  (** bench: number of timed runs *)
  trace : bool;
      (** capture this request's spans in isolation and attach the
          Perfetto JSON (or a --trace-dir path) to the response *)
}

(* Stable machine-readable failure taxonomy; the loadgen and CI smoke
   script assert on these strings, so treat them as API. *)
type error_code =
  | Parse_error_code
  | Oversized
  | Bad_request
  | Unknown_benchmark
  | Pass_failed
  | Watchdog
  | Deadline_exceeded
  | Cancelled
  | Overloaded
  | Shutting_down
  | Internal

let code_name = function
  | Parse_error_code -> "parse_error"
  | Oversized -> "oversized"
  | Bad_request -> "bad_request"
  | Unknown_benchmark -> "unknown_benchmark"
  | Pass_failed -> "pass_failed"
  | Watchdog -> "watchdog"
  | Deadline_exceeded -> "deadline_exceeded"
  | Cancelled -> "cancelled"
  | Overloaded -> "overloaded"
  | Shutting_down -> "shutting_down"
  | Internal -> "internal"

(* ----- request decoding ----- *)

(* A typed optional field: [Ok None] when absent, [Error _] when present
   with the wrong type — mistyped knobs must not silently default. *)
let opt_field j key get ty =
  match Json.member key j with
  | None | Some Json.Null -> Ok None
  | Some v -> (
    match get v with
    | Some x -> Ok (Some x)
    | None -> Error (Printf.sprintf "field %S must be %s" key ty))

let ( let* ) = Result.bind

let decode (j : Json.t) : (request, string) result =
  match j with
  | Json.Obj _ ->
    let* id = opt_field j "id" Json.get_string "a string" in
    let* op_str = opt_field j "op" Json.get_string "a string" in
    let* op =
      match op_str with
      | None -> Error "missing required field \"op\""
      | Some s -> (
        match op_of_string s with
        | Some op -> Ok op
        | None ->
          Error
            (Printf.sprintf
               "unknown op %S (expected compile|run|bench|health|stats|metrics|shutdown)"
               s))
    in
    let* benchmark = opt_field j "benchmark" Json.get_string "a string" in
    let* backend = opt_field j "backend" Json.get_string "a string" in
    let* strict = opt_field j "strict" Json.get_bool "a boolean" in
    let* interp = opt_field j "interp" Json.get_string "a string" in
    let* max_steps = opt_field j "max_steps" Json.get_int "an integer" in
    let* deadline_s = opt_field j "deadline_s" Json.get_float "a number" in
    let* pass_budget_s = opt_field j "pass_budget_s" Json.get_float "a number" in
    let* faults = opt_field j "faults" Json.get_string "a string" in
    let* fallback = opt_field j "fallback" Json.get_bool "a boolean" in
    let* check = opt_field j "check" Json.get_bool "a boolean" in
    let* repeats = opt_field j "repeats" Json.get_int "an integer" in
    let* trace = opt_field j "trace" Json.get_bool "a boolean" in
    let* () =
      match interp with
      | Some s when s <> "tree" && s <> "compiled" ->
        Error (Printf.sprintf "field \"interp\" must be tree|compiled, got %S" s)
      | _ -> Ok ()
    in
    let* () =
      match max_steps with
      | Some n when n < 0 -> Error "field \"max_steps\" must be non-negative"
      | _ -> Ok ()
    in
    let* () =
      match deadline_s with
      | Some d when d <= 0.0 -> Error "field \"deadline_s\" must be positive"
      | _ -> Ok ()
    in
    let* () =
      match repeats with
      | Some r when r < 1 -> Error "field \"repeats\" must be >= 1"
      | _ -> Ok ()
    in
    let needs_benchmark = match op with Compile | Run | Bench -> true | _ -> false in
    let* benchmark =
      match (benchmark, needs_benchmark) with
      | Some b, _ -> Ok b
      | None, false -> Ok ""
      | None, true ->
        Error (Printf.sprintf "op %S requires field \"benchmark\"" (op_name op))
    in
    let backend = Option.value backend ~default:"upmem" in
    let* () =
      match backend with
      | "host" | "upmem" | "cim" | "hetero" -> Ok ()
      | s ->
        Error
          (Printf.sprintf "field \"backend\" must be host|upmem|cim|hetero, got %S" s)
    in
    Ok
      {
        id;
        op;
        benchmark;
        backend;
        strict;
        interp;
        max_steps;
        deadline_s;
        pass_budget_s;
        faults;
        fallback = Option.value fallback ~default:true;
        check = Option.value check ~default:true;
        repeats = Option.value repeats ~default:1;
        trace = Option.value trace ~default:false;
      }
  | _ -> Error "request must be a JSON object"

(* ----- response encoding ----- *)

let id_fields id = match id with Some s -> [ ("id", Json.String s) ] | None -> []

(* the server-minted correlation id; "" (outside a server) emits nothing *)
let req_id_fields req_id =
  match req_id with
  | Some r when r <> "" -> [ ("req_id", Json.String r) ]
  | _ -> []

let ok_response ?id ?req_id ~op fields =
  Json.Obj
    (id_fields id @ req_id_fields req_id
    @ [ ("ok", Json.Bool true); ("op", Json.String (op_name op)) ]
    @ fields)

let error_response ?id ?req_id ?op ?(detail = []) ~code message =
  let op_field = match op with Some o -> [ ("op", Json.String (op_name o)) ] | None -> [] in
  Json.Obj
    (id_fields id @ req_id_fields req_id
    @ [ ("ok", Json.Bool false) ]
    @ op_field
    @ [
        ( "error",
          Json.Obj
            ([ ("code", Json.String (code_name code)); ("message", Json.String message) ]
            @ detail) );
      ])

(* Parse-position detail for parse_error responses, mirroring the JSON
   (and IR) parser's error record. *)
let parse_error_detail (e : Json.error) =
  [
    ("line", Json.Int e.Json.line);
    ("col", Json.Int e.Json.col);
    ("context", Json.String e.Json.context);
  ]
