(** The serve wire protocol: newline-delimited JSON requests and
    responses. See the implementation header for the request shape. *)

type op = Compile | Run | Bench | Health | Stats | Metrics | Shutdown

val op_name : op -> string
val op_of_string : string -> op option

type request = {
  id : string option;
  op : op;
  benchmark : string;  (** "" for benchmark-less ops *)
  backend : string;  (** "host" | "upmem" | "cim" | "hetero" *)
  strict : bool option;
  interp : string option;
  max_steps : int option;
  deadline_s : float option;
  pass_budget_s : float option;
  faults : string option;  (** raw fault spec, e.g. "dpu_fail=0.05,seed=7" *)
  fallback : bool;  (** CPU fallback on device-lowering failure *)
  check : bool;  (** verify device results against the host reference *)
  repeats : int;  (** bench: number of timed runs *)
  trace : bool;
      (** capture this request's spans in isolation and attach Perfetto
          JSON (inline or as a --trace-dir path) to the response *)
}

(** Stable machine-readable failure taxonomy — clients and the CI smoke
    script assert on {!code_name} strings, so treat them as API. *)
type error_code =
  | Parse_error_code
  | Oversized
  | Bad_request
  | Unknown_benchmark
  | Pass_failed
  | Watchdog
  | Deadline_exceeded
  | Cancelled
  | Overloaded
  | Shutting_down
  | Internal

val code_name : error_code -> string

(** Decode a parsed JSON request. [Error] carries a bad-request message
    (missing op, mistyped field, out-of-range knob). Unknown fields are
    ignored so clients can grow. *)
val decode : Json.t -> (request, string) result

(** Responses echo the client ["id"] and, when the server passes one,
    carry the server-minted ["req_id"] correlation id. *)
val ok_response :
  ?id:string -> ?req_id:string -> op:op -> (string * Json.t) list -> Json.t

val error_response :
  ?id:string ->
  ?req_id:string ->
  ?op:op ->
  ?detail:(string * Json.t) list ->
  code:error_code ->
  string ->
  Json.t

(** line/col/context detail fields for a parse_error response. *)
val parse_error_detail : Json.error -> (string * Json.t) list
