(* cinm_serve: a persistent compile-and-run daemon over a Unix socket.

   Architecture (see DESIGN.md, "The serve daemon"):

   - One event-loop thread owns the listening socket and every
     connection's read side: select(2), accept, newline-split, parse,
     decode. Cheap ops (health, stats, metrics, shutdown, every protocol
     error) are answered inline from the loop.
   - Heavy ops (compile / run / bench) are admitted against a bounded
     in-flight budget and submitted to the shared domain pool as tasks;
     the worker executes the request under a per-request Config snapshot
     and writes the response itself. Each connection carries a write
     mutex, so responses from the loop and from workers never interleave
     bytes; responses to concurrently admitted requests may come back in
     any order — clients match them by ["id"].
   - Admission control: when admitted (queued + executing) requests reach
     [max_inflight], new work is refused immediately with an [overloaded]
     error (load shedding — the client sees structured backpressure, the
     daemon never builds an unbounded queue).
   - Crash isolation: a worker converts *every* failure of its request —
     pass failure (with crash-reproducer path attached), watchdog trip,
     deadline, malformed program, any exception — into a structured error
     response. The daemon itself dies only on shutdown.
   - Degraded service: device faults (per-request "faults" plans) and
     CPU fallback mark the response ["degraded": true] instead of failing
     it; fault-injected requests still verify against the host reference.
   - Telemetry: every request line is minted a correlation id at accept
     time ([req_id]); it is threaded through the request's Config
     snapshot into pass spans, crash reproducers and log lines
     ({!Log.with_context}), and echoed in the response. Latency, queue
     wait and phase times land in the {!Trace.Metrics} histograms;
     outcomes are counted by error code. The registry is exposed as the
     "metrics" op (JSON), and — when [metrics_port] is set — as
     Prometheus text over GET /metrics on a localhost TCP listener
     multiplexed onto the same select loop. "trace": true captures the
     request's spans in isolation ({!Trace.with_capture}) and attaches
     the Perfetto JSON inline, or writes it under [trace_dir].
   - Graceful shutdown: the "shutdown" op (or SIGTERM/SIGINT) stops
     accepting connections, refuses new work with [shutting_down], lets
     in-flight requests finish ([drain_grace_s] seconds, then their
     cancel flags are set so the interpreter aborts them at the next
     watchdog point), and finally drains the pool. *)

module Config = Cinm_support.Config
module Fault = Cinm_support.Fault
module Pool = Cinm_support.Pool
module Trace = Cinm_support.Trace
module Log = Cinm_support.Log
module Pass = Cinm_ir.Pass
module Interp = Cinm_interp.Interp
module Compile = Cinm_interp.Compile
module Tensor = Cinm_interp.Tensor
module Driver = Cinm_core.Driver
module Backend = Cinm_core.Backend
module Report = Cinm_core.Report
module Benchmark = Cinm_benchmarks.Benchmark
module P = Protocol
module M = Trace.Metrics

type opts = {
  socket_path : string;
  jobs : int;  (** domain-pool size (0 = the default pool's size) *)
  max_inflight : int;  (** admitted (queued + executing) request cap *)
  max_request_bytes : int;  (** per-line cap; larger lines are shed *)
  default_deadline_s : float;  (** applied when a request names none; 0 = none *)
  cache_capacity : int;  (** pipeline-cache entries *)
  drain_grace_s : float;  (** shutdown: seconds before cancelling in-flight *)
  metrics_port : int;  (** localhost Prometheus exposition port; 0 = off *)
  trace_dir : string option;
      (** write per-request traces here instead of inlining them *)
  slow_request_s : float;  (** warn about slower requests; 0 = off *)
  base_config : Config.t;  (** per-request configs start from this *)
}

let default_opts ?(socket_path = "cinm-serve.sock") () =
  {
    socket_path;
    jobs = 0;
    max_inflight = 64;
    max_request_bytes = 65536;
    default_deadline_s = 0.0;
    cache_capacity = 256;
    drain_grace_s = 10.0;
    metrics_port = 0;
    trace_dir = None;
    slow_request_s = 0.0;
    base_config = Config.default ();
  }

(* ----- connection state (owned by the event loop; write side shared
   with workers under [wmutex]) ----- *)

type conn = {
  fd : Unix.file_descr;
  wmutex : Mutex.t;
  rbuf : Buffer.t;  (** partial line *)
  mutable skipping : bool;  (** oversized line: discard until newline *)
  mutable peer_open : bool;  (** false after EOF/write error *)
  mutable refs : int;  (** outstanding worker tasks for this connection *)
}

type counters = {
  mutable served : int;  (** responses written, ok or error *)
  mutable ok : int;
  mutable errors : int;
  mutable degraded : int;
  mutable rejected : int;  (** overloaded + shutting_down + oversized *)
}

(* Typed metric handles, interned once at [create] so the per-request hot
   path is lock-free shard writes (see Trace.Metrics). *)
type handles = {
  hm_request : M.histogram;  (** admission -> response write, incl. queue *)
  hm_queue : M.histogram;  (** admission -> start of execution *)
  hm_compile : M.histogram;
  hm_execute : M.histogram;
  hc_pc_hits : M.counter;  (** pipeline-cache hits *)
  hc_pc_misses : M.counter;
}

type t = {
  opts : opts;
  pool : Pool.t;
  cache : Cache.t;
  listen_fd : Unix.file_descr;
  metrics_fd : Unix.file_descr option;  (** Prometheus TCP listener *)
  mutable mconns : (Unix.file_descr * Buffer.t) list;
      (** in-progress HTTP scrapes (event-loop private) *)
  mutex : Mutex.t;  (** guards conns / inflight / counters / in-flight table *)
  mutable conns : conn list;
  mutable inflight : int;
  mutable draining : bool;
  counters : counters;
  by_code : (string, int) Hashtbl.t;  (** responses by outcome code *)
  live : (int, bool Atomic.t) Hashtbl.t;  (** seq -> cancel flag, for drain *)
  mutable seq : int;
  start_time : float;
  rid_prefix : string;  (** correlation-id prefix, unique per daemon *)
  rid_ctr : int Atomic.t;
  m : handles;
  shutdown_flag : bool Atomic.t;  (** set by signals / the shutdown op *)
}

let fresh_req_id srv =
  Printf.sprintf "%s-%d" srv.rid_prefix (1 + Atomic.fetch_and_add srv.rid_ctr 1)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* ----- response writing ----- *)

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    let w = Unix.write fd b !off (n - !off) in
    if w <= 0 then raise Exit;
    off := !off + w
  done

(* The outcome code of a response: "ok", or the structured error code. *)
let response_code (resp : Json.t) =
  if Json.bool_field resp "ok" = Some true then "ok"
  else
    match Json.member "error" resp with
    | Some e -> Option.value (Json.string_field e "code") ~default:"internal"
    | None -> "internal"

let send srv conn (resp : Json.t) =
  let line = Json.to_string resp ^ "\n" in
  (* account before writing: once the client has read this response, a
     follow-up "stats" (or "metrics") request must already see it counted *)
  let code = response_code resp in
  let is_degraded = Json.bool_field resp "degraded" = Some true in
  Mutex.lock srv.mutex;
  srv.counters.served <- srv.counters.served + 1;
  if code <> "ok" then srv.counters.errors <- srv.counters.errors + 1
  else srv.counters.ok <- srv.counters.ok + 1;
  if is_degraded then srv.counters.degraded <- srv.counters.degraded + 1;
  Hashtbl.replace srv.by_code code
    (1 + Option.value (Hashtbl.find_opt srv.by_code code) ~default:0);
  Mutex.unlock srv.mutex;
  if M.enabled () then begin
    M.incr
      ("cinm_serve_responses_total{code=\"" ^ M.prom_escape_label code ^ "\"}");
    if is_degraded then M.incr "cinm_serve_responses_degraded_total"
  end;
  Mutex.lock conn.wmutex;
  (try if conn.peer_open then write_all conn.fd line
   with Exit | Unix.Unix_error _ -> conn.peer_open <- false);
  Mutex.unlock conn.wmutex

let send_error srv conn ?id ?req_id ?op ?detail ~code message =
  (match code with
  | P.Overloaded | P.Shutting_down | P.Oversized ->
    Mutex.lock srv.mutex;
    srv.counters.rejected <- srv.counters.rejected + 1;
    Mutex.unlock srv.mutex
  | _ -> ());
  send srv conn (P.error_response ?id ?req_id ?op ?detail ~code message)

(* ----- per-request configuration ----- *)

(* Build the request's Config snapshot from the server's base config and
   the request's overrides. The fault spec is parsed here (bad specs are
   a bad_request, not a crash); the deadline is absolute from admission
   time, so queueing counts against it. The correlation id rides in the
   snapshot so pass spans, reproducers and responses all carry it. *)
let request_config srv (req : P.request) ~req_id : (Config.t, string) result =
  let base = srv.opts.base_config in
  let faults =
    match req.P.faults with
    | None -> Ok base.Config.faults
    | Some "" -> Ok None
    | Some spec -> (
      match Fault.parse spec with
      | Ok plan -> Ok (Some plan)
      | Error msg -> Error (Printf.sprintf "field \"faults\": %s" msg))
  in
  match faults with
  | Error _ as e -> e
  | Ok faults ->
    let deadline_s =
      match req.P.deadline_s with
      | Some d -> d
      | None -> srv.opts.default_deadline_s
    in
    Ok
      {
        Config.strict = Option.value req.P.strict ~default:base.Config.strict;
        pass_budget_s =
          (match req.P.pass_budget_s with
          | Some b -> Some b
          | None -> base.Config.pass_budget_s);
        reproducer_dir = base.Config.reproducer_dir;
        max_steps = Option.value req.P.max_steps ~default:base.Config.max_steps;
        interp = Option.value req.P.interp ~default:base.Config.interp;
        faults;
        deadline =
          (if deadline_s > 0.0 then Unix.gettimeofday () +. deadline_s else 0.0);
        cancel = Atomic.make false;
        req_id;
      }

(* ----- request execution (worker side) ----- *)

(* Per-request phase breakdown, filled as the request executes; feeds the
   phase histograms and the slow-request log line. [-1] = phase did not
   run. *)
type phases = {
  mutable ph_compile_s : float;
  mutable ph_execute_s : float;
  mutable ph_cache : string;  (** "" | "hit" | "miss" *)
}

(* The serve backends: deliberately small device configs so a request is
   tens of milliseconds, not seconds — the daemon optimizes for request
   throughput, and speedup ratios are not its product. *)
let backend_of_name = function
  | "host" -> Backend.Host_xeon
  | "cim" -> Backend.Cim (Backend.default_cim ())
  | "hetero" ->
    (* partitioned across all devices on the multi-stream executor; the
       same small DPU grid as the upmem backend keeps requests fast *)
    Backend.default_hetero ~dimms:1 ~dpus_per_dimm:4 ()
  | _ -> Backend.Upmem (Backend.default_upmem ~dimms:1 ~dpus_per_dimm:4 ~tasklets:4 ())

let degraded_of_report (compiled : Driver.compiled) (report : Report.t) =
  compiled.Driver.fallback <> None
  || Report.counter report "retries" > 0
  || Report.counter report "failed_dpus" > 0

let report_fields (r : Report.t) =
  let module Sched = Cinm_support.Schedule in
  [
    ("backend", Json.String r.Report.backend);
    ("sim_total_s", Json.Float r.Report.total_s);
    ("sim_device_s", Json.Float r.Report.device_s);
    ("retries", Json.Int (Report.counter r "retries"));
    ("failed_dpus", Json.Int (Report.counter r "failed_dpus"));
  ]
  @
  (* per-machine simulated-time tracks — only the multi-stream (hetero)
     executor fills these, so single-device responses are unchanged *)
  match r.Report.tracks with
  | [] -> []
  | tracks ->
    [
      ( "tracks",
        Json.List
          (List.map
             (fun (t : Sched.track) ->
               Json.Obj
                 [
                   ("machine", Json.String t.Sched.tr_machine);
                   ("compute_s", Json.Float t.Sched.tr_compute_s);
                   ("dma_s", Json.Float t.Sched.tr_dma_s);
                   ("idle_s", Json.Float t.Sched.tr_idle_s);
                 ])
             tracks) );
    ]

(* Compile via the cross-request pipeline cache; returns the artifact and
   "hit"/"miss". Degraded (fallback) artifacts are not cached. *)
let compile_cached srv (req : P.request) config (bench : Benchmark.t) =
  let key =
    {
      Cache.benchmark = req.P.benchmark;
      backend = req.P.backend;
      strict = config.Config.strict;
    }
  in
  match Cache.find srv.cache key with
  | Some compiled ->
    M.add srv.m.hc_pc_hits 1;
    (compiled, "hit")
  | None ->
    M.add srv.m.hc_pc_misses 1;
    let compiled =
      Driver.compile_func ~fallback:req.P.fallback ~config
        (backend_of_name req.P.backend)
        (bench.Benchmark.build ())
    in
    Cache.add srv.cache key compiled;
    (compiled, "miss")

let run_once (req : P.request) config (bench : Benchmark.t)
    (compiled : Driver.compiled) =
  let results, report = Driver.run ~config compiled (bench.Benchmark.inputs ()) in
  if req.P.check && compiled.Driver.fallback = None then
    if not (Benchmark.results_match bench results) then
      failwith (req.P.benchmark ^ ": device results differ from the host reference");
  report

let execute_request srv (req : P.request) config ~(phases : phases) : Json.t =
  let req_id = config.Config.req_id in
  match Catalog.find req.P.benchmark with
  | None ->
    P.error_response ?id:req.P.id ~req_id ~op:req.P.op ~code:P.Unknown_benchmark
      (Printf.sprintf "unknown benchmark %S (see \"health\" for the catalog)"
         req.P.benchmark)
  | Some bench -> (
    Config.check config;
    let tc0 = Unix.gettimeofday () in
    let compiled, cache_state = compile_cached srv req config bench in
    phases.ph_compile_s <- Unix.gettimeofday () -. tc0;
    phases.ph_cache <- cache_state;
    let base =
      [
        ("benchmark", Json.String req.P.benchmark);
        ("cache", Json.String cache_state);
        ("degraded", Json.Bool (compiled.Driver.fallback <> None));
      ]
      @
      (* the partitioner's device plan, recorded as a function attribute
         by the hetero pipeline ("cpu=2 upmem=1 ... est_speedup=1.9x") *)
      match compiled.Driver.modul.Cinm_ir.Func.funcs with
      | f :: _ -> (
        match List.assoc_opt "partition" f.Cinm_ir.Func.fattrs with
        | Some (Cinm_ir.Attr.Str s) -> [ ("partition", Json.String s) ]
        | _ -> [])
      | [] -> []
    in
    let fallback_fields =
      match compiled.Driver.fallback with
      | Some diag ->
        [ ("fallback", Json.String (Pass.diag_to_string diag)) ]
      | None -> []
    in
    match req.P.op with
    | P.Compile ->
      P.ok_response ?id:req.P.id ~req_id ~op:req.P.op
        (base @ fallback_fields
        @ [ ("ops", Json.Int (Pass.count_ops compiled.Driver.modul)) ])
    | P.Run ->
      let te0 = Unix.gettimeofday () in
      let report = run_once req config bench compiled in
      phases.ph_execute_s <- Unix.gettimeofday () -. te0;
      let degraded = degraded_of_report compiled report in
      P.ok_response ?id:req.P.id ~req_id ~op:req.P.op
        (List.remove_assoc "degraded" base
        @ [ ("degraded", Json.Bool degraded) ]
        @ fallback_fields @ report_fields report)
    | P.Bench ->
      let sim_s = ref 0.0 and wall = ref [] in
      let te0 = Unix.gettimeofday () in
      for _ = 1 to req.P.repeats do
        Config.check config;
        let t0 = Unix.gettimeofday () in
        let report = run_once req config bench compiled in
        wall := (Unix.gettimeofday () -. t0) :: !wall;
        sim_s := !sim_s +. report.Report.total_s
      done;
      phases.ph_execute_s <- Unix.gettimeofday () -. te0;
      let wall = List.rev !wall in
      P.ok_response ?id:req.P.id ~req_id ~op:req.P.op
        (base @ fallback_fields
        @ [
            ("runs", Json.Int req.P.repeats);
            ("sim_s", Json.Float !sim_s);
            ("wall_s", Json.List (List.map (fun w -> Json.Float w) wall));
          ])
    | P.Health | P.Stats | P.Metrics | P.Shutdown ->
      assert false (* handled inline *))

(* Convert any failure of a request into its structured error response.
   This function must not raise: it is the daemon's crash-isolation
   boundary.

   Classification caveat: an exception raised *inside* a DPU launch
   reaches us wrapped as [Usim.Machine.Dpu_failed] (resp. the CIM
   equivalent) with the original exception stringified into its message —
   the simulators stringify per-DPU outcomes to pick the lowest failing
   DPU deterministically. So watchdog / deadline / cancellation trips are
   recognized by message substring, not only by exception constructor.
   Injected device faults never take this path (they are absorbed by the
   retry/remap pre-pass), so a "watchdog:" or "deadline exceeded" match
   is unambiguous. *)
let execute_request_safe srv (req : P.request) config ~phases : Json.t =
  let req_id = config.Config.req_id in
  match execute_request srv req config ~phases with
  | resp -> resp
  | exception Config.Cancelled msg ->
    let code =
      if Atomic.get config.Config.cancel then P.Cancelled else P.Deadline_exceeded
    in
    P.error_response ?id:req.P.id ~req_id ~op:req.P.op ~code msg
  | exception Pass.Pass_failed diag ->
    (* reproducers are domain-local; this worker's last one is ours *)
    let detail =
      match Pass.last_reproducer () with
      | Some r when r.Pass.diag = diag ->
        [ ("reproducer", Json.String r.Pass.path) ]
      | _ -> []
    in
    P.error_response ?id:req.P.id ~req_id ~op:req.P.op ~detail
      ~code:P.Pass_failed (Pass.diag_to_string diag)
  | exception e ->
    let msg =
      match e with Interp.Interp_error m -> m | e -> Printexc.to_string e
    in
    let code =
      if contains msg "watchdog:" then P.Watchdog
      else if contains msg "deadline exceeded" then P.Deadline_exceeded
      else if contains msg "request cancelled" then P.Cancelled
      else P.Internal
    in
    P.error_response ?id:req.P.id ~req_id ~op:req.P.op ~code msg

(* ----- inline ops ----- *)

let health_response srv (req : P.request) ~req_id =
  Mutex.lock srv.mutex;
  let inflight = srv.inflight and draining = srv.draining in
  Mutex.unlock srv.mutex;
  P.ok_response ?id:req.P.id ~req_id ~op:req.P.op
    [
      ("status", Json.String (if draining then "draining" else "ok"));
      ("inflight", Json.Int inflight);
      ("capacity", Json.Int srv.opts.max_inflight);
      ("benchmarks", Json.List (List.map (fun n -> Json.String n) (Catalog.names ())));
    ]

let stats_response srv (req : P.request) ~req_id =
  Mutex.lock srv.mutex;
  let c = srv.counters in
  let served = c.served and ok = c.ok and errors = c.errors in
  let degraded = c.degraded and rejected = c.rejected in
  let inflight = srv.inflight in
  let by_code =
    Hashtbl.fold (fun code n acc -> (code, Json.Int n) :: acc) srv.by_code []
  in
  Mutex.unlock srv.mutex;
  let by_code = List.sort (fun (a, _) (b, _) -> compare a b) by_code in
  let pc = Cache.stats srv.cache in
  let cc = Compile.cache_stats () in
  let ar = Tensor.Arena.stats () in
  P.ok_response ?id:req.P.id ~req_id ~op:req.P.op
    [
      ("uptime_s", Json.Float (Unix.gettimeofday () -. srv.start_time));
      ("served", Json.Int served);
      ("ok", Json.Int ok);
      ("errors", Json.Int errors);
      ("degraded", Json.Int degraded);
      ("rejected", Json.Int rejected);
      ("inflight", Json.Int inflight);
      ("by_code", Json.Obj by_code);
      ( "pipeline_cache",
        Json.Obj
          [
            ("hits", Json.Int pc.Cache.hits);
            ("misses", Json.Int pc.Cache.misses);
            ("evictions", Json.Int pc.Cache.evictions);
            ("entries", Json.Int pc.Cache.entries);
          ] );
      ( "code_cache",
        Json.Obj
          [
            ("hits", Json.Int cc.Compile.hits);
            ("misses", Json.Int cc.Compile.misses);
            ("evictions", Json.Int cc.Compile.evictions);
            ("entries", Json.Int cc.Compile.entries);
          ] );
      ( "arena",
        Json.Obj
          [
            ("keys", Json.Int ar.Tensor.Arena.keys);
            ("pooled", Json.Int ar.Tensor.Arena.pooled);
            ("largest_pool", Json.Int ar.Tensor.Arena.largest_pool);
          ] );
    ]

(* The telemetry registry as structured JSON: counters and gauges by
   name, histograms with count/sum/min/max and bucket-resolution
   percentiles. Non-finite gauge samples are dropped (JSON has no NaN). *)
let metrics_response srv (req : P.request) ~req_id =
  let counters =
    List.map (fun (n, _, v) -> (n, Json.Int v)) (M.counters ())
  in
  let gauges =
    List.filter_map
      (fun (n, _, v) ->
        if Float.is_finite v then Some (n, Json.Float v) else None)
      (M.gauges ())
  in
  let hists =
    List.map
      (fun (s : M.hist_snapshot) ->
        ( s.M.hname,
          Json.Obj
            [
              ("count", Json.Int s.M.count);
              ("sum", Json.Float s.M.sum);
              ("min", Json.Float (if s.M.count = 0 then 0.0 else s.M.minv));
              ("max", Json.Float (if s.M.count = 0 then 0.0 else s.M.maxv));
              ("p50", Json.Float (M.quantile s 0.5));
              ("p95", Json.Float (M.quantile s 0.95));
              ("p99", Json.Float (M.quantile s 0.99));
            ] ))
      (M.histograms ())
  in
  P.ok_response ?id:req.P.id ~req_id ~op:req.P.op
    [
      ("uptime_s", Json.Float (Unix.gettimeofday () -. srv.start_time));
      ("counters", Json.Obj counters);
      ("gauges", Json.Obj gauges);
      ("histograms", Json.Obj hists);
    ]

(* ----- admission (event-loop side) ----- *)

let finish_request srv conn seq =
  Mutex.lock srv.mutex;
  srv.inflight <- srv.inflight - 1;
  Hashtbl.remove srv.live seq;
  conn.refs <- conn.refs - 1;
  Mutex.unlock srv.mutex

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

let admit srv conn (req : P.request) ~req_id =
  match request_config srv req ~req_id with
  | Error msg ->
    send_error srv conn ?id:req.P.id ~req_id ~op:req.P.op ~code:P.Bad_request msg
  | Ok config ->
    Mutex.lock srv.mutex;
    if srv.draining then begin
      Mutex.unlock srv.mutex;
      send_error srv conn ?id:req.P.id ~req_id ~op:req.P.op ~code:P.Shutting_down
        "daemon is shutting down"
    end
    else if srv.inflight >= srv.opts.max_inflight then begin
      Mutex.unlock srv.mutex;
      send_error srv conn ?id:req.P.id ~req_id ~op:req.P.op ~code:P.Overloaded
        (Printf.sprintf "%d requests in flight (capacity %d); retry later"
           srv.inflight srv.opts.max_inflight)
    end
    else begin
      srv.inflight <- srv.inflight + 1;
      srv.seq <- srv.seq + 1;
      let seq = srv.seq in
      Hashtbl.replace srv.live seq config.Config.cancel;
      conn.refs <- conn.refs + 1;
      Mutex.unlock srv.mutex;
      let t_admit = Unix.gettimeofday () in
      let task () =
        let t_start = Unix.gettimeofday () in
        M.record srv.m.hm_queue (t_start -. t_admit);
        Fun.protect
          ~finally:(fun () -> finish_request srv conn seq)
          (fun () ->
            Log.with_context req_id (fun () ->
                let phases =
                  { ph_compile_s = -1.0; ph_execute_s = -1.0; ph_cache = "" }
                in
                let run_exec () =
                  let t0 = if Trace.enabled () then Trace.now_host () else 0.0 in
                  let resp = execute_request_safe srv req config ~phases in
                  if Trace.enabled () then
                    Trace.complete ~cat:"serve" ~clock:Trace.Host
                      ~pid:Trace.host_pid ~track:"serve" ~ts:t0
                      ~dur:(Trace.now_host () -. t0)
                      ~args:
                        [
                          ("benchmark", Trace.Str req.P.benchmark);
                          ("req_id", Trace.Str req_id);
                          ( "ok",
                            Trace.Str
                              (if Json.bool_field resp "ok" = Some true then
                                 "true"
                               else "false") );
                        ]
                      (P.op_name req.P.op ^ ":" ^ req.P.benchmark);
                  resp
                in
                (* "trace": true captures exactly this request's spans —
                   the serve span above is emitted inside the capture *)
                let resp, trace_fields =
                  if req.P.trace then (
                    let resp, cap = Trace.with_capture run_exec in
                    let tj = Trace.capture_to_json cap in
                    match srv.opts.trace_dir with
                    | Some dir -> (
                      let path =
                        Filename.concat dir (req_id ^ ".trace.json")
                      in
                      match write_file path tj with
                      | () -> (resp, [ ("trace_path", Json.String path) ])
                      | exception Sys_error msg ->
                        (resp, [ ("trace_error", Json.String msg) ]))
                    | None -> (resp, [ ("trace", Json.String tj) ]))
                  else (run_exec (), [])
                in
                let resp =
                  match resp with
                  | Json.Obj fields -> Json.Obj (fields @ trace_fields)
                  | j -> j
                in
                (* histograms commit before the response is written, like
                   the counters in [send] *)
                let e2e = Unix.gettimeofday () -. t_admit in
                M.record srv.m.hm_request e2e;
                if phases.ph_compile_s >= 0.0 then
                  M.record srv.m.hm_compile phases.ph_compile_s;
                if phases.ph_execute_s >= 0.0 then
                  M.record srv.m.hm_execute phases.ph_execute_s;
                if
                  srv.opts.slow_request_s > 0.0
                  && e2e >= srv.opts.slow_request_s
                then
                  Log.warn
                    "serve: slow request: op=%s benchmark=%s backend=%s \
                     code=%s total_ms=%.1f queue_ms=%.1f compile_ms=%.1f \
                     execute_ms=%.1f cache=%s"
                    (P.op_name req.P.op) req.P.benchmark req.P.backend
                    (response_code resp) (1e3 *. e2e)
                    (1e3 *. (t_start -. t_admit))
                    (1e3 *. Float.max 0.0 phases.ph_compile_s)
                    (1e3 *. Float.max 0.0 phases.ph_execute_s)
                    (if phases.ph_cache = "" then "-" else phases.ph_cache);
                send srv conn resp))
      in
      if not (Pool.submit srv.pool task) then begin
        finish_request srv conn seq;
        send_error srv conn ?id:req.P.id ~req_id ~op:req.P.op
          ~code:P.Shutting_down "daemon is shutting down"
      end
    end

(* One complete request line from a connection. Never raises; never
   closes the connection — every outcome is a response. Each line gets a
   fresh correlation id, echoed in the response and carried by every log
   line / span / reproducer the request produces. *)
let handle_line srv conn line =
  if String.length line > srv.opts.max_request_bytes then
    send_error srv conn ~req_id:(fresh_req_id srv) ~code:P.Oversized
      (Printf.sprintf "request of %d bytes exceeds the %d-byte limit"
         (String.length line) srv.opts.max_request_bytes)
  else if String.trim line = "" then () (* blank lines are keep-alive noise *)
  else
    let req_id = fresh_req_id srv in
    match Json.parse line with
    | exception Json.Parse_error e ->
      send_error srv conn ~req_id ~detail:(P.parse_error_detail e)
        ~code:P.Parse_error_code e.Json.message
    | j -> (
      match P.decode j with
      | Error msg ->
        let id = Json.string_field j "id" in
        send_error srv conn ?id ~req_id ~code:P.Bad_request msg
      | Ok req -> (
        match req.P.op with
        | P.Health -> send srv conn (health_response srv req ~req_id)
        | P.Stats -> send srv conn (stats_response srv req ~req_id)
        | P.Metrics -> send srv conn (metrics_response srv req ~req_id)
        | P.Shutdown ->
          send srv conn
            (P.ok_response ?id:req.P.id ~req_id ~op:req.P.op
               [ ("status", Json.String "draining") ]);
          Atomic.set srv.shutdown_flag true
        | P.Compile | P.Run | P.Bench -> admit srv conn req ~req_id))

(* ----- Prometheus exposition (HTTP, multiplexed onto the select loop) -----

   A deliberately minimal HTTP/1.1 server: GET /metrics returns the text
   exposition, everything else 404/405, every response closes the
   connection. Requests are read until the blank line (or an 8 KiB cap);
   the response write is blocking, which is fine for localhost scrapers
   (the body fits the socket buffer). *)

let http_response ~status ~content_type body =
  Printf.sprintf
    "HTTP/1.1 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: \
     close\r\n\r\n%s"
    status content_type (String.length body) body

let http_reply data =
  let line_end =
    match (String.index_opt data '\r', String.index_opt data '\n') with
    | Some r, Some n -> min r n
    | Some r, None -> r
    | None, Some n -> n
    | None, None -> String.length data
  in
  match String.split_on_char ' ' (String.sub data 0 line_end) with
  | "GET" :: path :: _
    when path = "/metrics" || String.starts_with ~prefix:"/metrics?" path ->
    http_response ~status:"200 OK"
      ~content_type:"text/plain; version=0.0.4; charset=utf-8"
      (M.to_prometheus ())
  | "GET" :: _ ->
    http_response ~status:"404 Not Found"
      ~content_type:"text/plain; charset=utf-8" "not found; try /metrics\n"
  | _ ->
    http_response ~status:"405 Method Not Allowed"
      ~content_type:"text/plain; charset=utf-8" "only GET is supported\n"

let close_metrics_conn srv fd reply =
  (match reply with
  | Some body -> ( try write_all fd body with Exit | Unix.Unix_error _ -> ())
  | None -> ());
  (try Unix.close fd with Unix.Unix_error _ -> ());
  srv.mconns <- List.filter (fun (f, _) -> f <> fd) srv.mconns

let read_metrics_conn srv fd buf scratch =
  match Unix.read fd scratch 0 (Bytes.length scratch) with
  | 0 -> close_metrics_conn srv fd None
  | n ->
    Buffer.add_subbytes buf scratch 0 n;
    let data = Buffer.contents buf in
    if contains data "\r\n\r\n" || contains data "\n\n" then
      close_metrics_conn srv fd (Some (http_reply data))
    else if Buffer.length buf > 8192 then close_metrics_conn srv fd None
  | exception Unix.Unix_error (Unix.EAGAIN, _, _) -> ()
  | exception Unix.Unix_error _ -> close_metrics_conn srv fd None

(* ----- the event loop ----- *)

(* Split complete lines off a connection's read buffer, handling each;
   the remainder stays buffered. Oversized partial lines flip the
   connection into skip-until-newline mode so the stream resyncs instead
   of closing or buffering without bound. *)
let drain_buffer srv conn =
  let data = Buffer.contents conn.rbuf in
  Buffer.clear conn.rbuf;
  let n = String.length data in
  let pos = ref 0 in
  (try
     while !pos < n do
       match String.index_from_opt data !pos '\n' with
       | Some nl ->
         let line = String.sub data !pos (nl - !pos) in
         if conn.skipping then conn.skipping <- false
         else handle_line srv conn line;
         pos := nl + 1
       | None ->
         let rest = n - !pos in
         if conn.skipping then () (* drop bytes until a newline shows up *)
         else if rest > srv.opts.max_request_bytes then begin
           (* unbounded line: shed it now, resync at the next newline *)
           send_error srv conn ~req_id:(fresh_req_id srv) ~code:P.Oversized
             (Printf.sprintf
                "request exceeds the %d-byte limit; discarding until newline"
                srv.opts.max_request_bytes);
           conn.skipping <- true
         end
         else Buffer.add_substring conn.rbuf data !pos rest;
         pos := n
     done
   with e ->
     (* handle_line is not supposed to raise; contain it so the event
        loop survives even if it does *)
     Log.warn "serve: request handler raised: %s" (Printexc.to_string e))

let read_chunk srv conn scratch =
  match Unix.read conn.fd scratch 0 (Bytes.length scratch) with
  | 0 -> conn.peer_open <- false
  | n ->
    Buffer.add_subbytes conn.rbuf scratch 0 n;
    drain_buffer srv conn
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
    conn.peer_open <- false
  | exception Unix.Unix_error (Unix.EAGAIN, _, _) -> ()

(* Callback gauges for everything the daemon can cheaply sample: pool
   pressure, cache occupancy, arena occupancy, uptime. Sampled at
   snapshot time, outside the registry lock, so taking [srv.mutex] or
   the pool's lock here is safe. Re-registration replaces, so a daemon
   restarted in-process re-points the gauges at the live server. *)
let register_server_gauges srv =
  M.register_gauge ~help:"Admitted (queued + executing) requests"
    "cinm_serve_inflight" (fun () ->
      Mutex.lock srv.mutex;
      let n = srv.inflight in
      Mutex.unlock srv.mutex;
      float_of_int n);
  M.register_gauge ~help:"Tasks waiting in the domain-pool queue"
    "cinm_serve_queue_depth" (fun () ->
      float_of_int (Pool.stats srv.pool).Pool.st_queued);
  M.register_gauge ~help:"Pool tasks currently executing"
    "cinm_serve_pool_active" (fun () ->
      float_of_int (Pool.stats srv.pool).Pool.st_active);
  M.register_gauge ~help:"Domain-pool worker count" "cinm_serve_pool_workers"
    (fun () -> float_of_int (Pool.stats srv.pool).Pool.st_jobs);
  M.register_gauge ~help:"Executing pool tasks over workers (0..1)"
    "cinm_serve_pool_utilization" (fun () ->
      let s = Pool.stats srv.pool in
      if s.Pool.st_jobs = 0 then 0.0
      else float_of_int s.Pool.st_active /. float_of_int s.Pool.st_jobs);
  M.register_gauge ~help:"Pipeline-cache entries"
    "cinm_serve_pipeline_cache_entries" (fun () ->
      float_of_int (Cache.stats srv.cache).Cache.entries);
  M.register_gauge ~help:"Compiled-region cache entries"
    "cinm_code_cache_entries" (fun () ->
      float_of_int (Compile.cache_stats ()).Compile.entries);
  M.register_gauge ~help:"Compiled-region cache hits (cumulative)"
    "cinm_code_cache_hits" (fun () ->
      float_of_int (Compile.cache_stats ()).Compile.hits);
  M.register_gauge ~help:"Compiled-region cache misses (cumulative)"
    "cinm_code_cache_misses" (fun () ->
      float_of_int (Compile.cache_stats ()).Compile.misses);
  M.register_gauge ~help:"Tensors parked in the launch arena"
    "cinm_arena_pooled" (fun () ->
      float_of_int (Tensor.Arena.stats ()).Tensor.Arena.pooled);
  M.register_gauge ~help:"Daemon uptime in seconds" "cinm_serve_uptime_seconds"
    (fun () -> Unix.gettimeofday () -. srv.start_time)

let create (opts : opts) : t =
  (match Unix.lstat opts.socket_path with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink opts.socket_path
  | _ -> ()
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX opts.socket_path);
  Unix.listen listen_fd 64;
  let metrics_fd =
    if opts.metrics_port <= 0 then None
    else begin
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      match
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, opts.metrics_port));
        Unix.listen fd 16
      with
      | () ->
        Log.info "serve: metrics exposition on http://127.0.0.1:%d/metrics"
          opts.metrics_port;
        Some fd
      | exception Unix.Unix_error (err, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Log.warn "serve: cannot bind metrics port %d: %s (exposition disabled)"
          opts.metrics_port (Unix.error_message err);
        None
    end
  in
  (* With dedicated workers ([jobs > 0]) the daemon optimizes for request
     throughput: each request runs single-threaded on its worker domain
     and the *default* pool is shrunk to one, so a request's device loops
     (the simulators parallel-for DPU lanes over the default pool) run
     inline instead of contending — N concurrent requests beat one
     request's DPU loop going N-wide. With [jobs = 0] the daemon shares
     the default pool and keeps the one-shot CLI behavior (a single
     request's launches go parallel). *)
  let pool =
    if opts.jobs > 0 then begin
      Pool.set_default_jobs 1;
      Pool.create ~jobs:opts.jobs ()
    end
    else Pool.default ()
  in
  (* telemetry is always collected by the daemon — the hot path is
     lock-free shard writes, and the "metrics" op / exposition must
     answer regardless of the global trace flag *)
  M.enable ();
  let m =
    {
      hm_request =
        M.histogram
          ~help:
            "End-to-end request latency from admission to response write \
             (includes queue wait)"
          "cinm_serve_request_seconds";
      hm_queue =
        M.histogram
          ~help:"Time between admission and the start of execution on a worker"
          "cinm_serve_queue_wait_seconds";
      hm_compile =
        M.histogram
          ~help:
            "Per-request pipeline compile time (pipeline-cache hits are near \
             zero)"
          "cinm_serve_compile_seconds";
      hm_execute =
        M.histogram ~help:"Per-request device execution time (all repeats)"
          "cinm_serve_execute_seconds";
      hc_pc_hits =
        M.counter ~help:"Pipeline-cache hits"
          "cinm_serve_pipeline_cache_hits_total";
      hc_pc_misses =
        M.counter ~help:"Pipeline-cache misses"
          "cinm_serve_pipeline_cache_misses_total";
    }
  in
  let srv =
    {
      opts;
      pool;
      cache = Cache.create ~capacity:opts.cache_capacity ();
      listen_fd;
      metrics_fd;
      mconns = [];
      mutex = Mutex.create ();
      conns = [];
      inflight = 0;
      draining = false;
      counters = { served = 0; ok = 0; errors = 0; degraded = 0; rejected = 0 };
      by_code = Hashtbl.create 16;
      live = Hashtbl.create 64;
      seq = 0;
      start_time = Unix.gettimeofday ();
      rid_prefix =
        Printf.sprintf "%06x"
          (Hashtbl.hash
             (opts.socket_path, Unix.getpid (), Unix.gettimeofday ())
          land 0xffffff);
      rid_ctr = Atomic.make 0;
      m;
      shutdown_flag = Atomic.make false;
    }
  in
  register_server_gauges srv;
  srv

let install_signal_handlers srv =
  (* a dead client mid-write must be a failed send, not a dead daemon *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let request_shutdown _ = Atomic.set srv.shutdown_flag true in
  try
    Sys.set_signal Sys.sigterm (Sys.Signal_handle request_shutdown);
    Sys.set_signal Sys.sigint (Sys.Signal_handle request_shutdown)
  with Invalid_argument _ -> ()

let shutdown srv =
  Mutex.lock srv.mutex;
  srv.draining <- true;
  Mutex.unlock srv.mutex;
  (* in-flight requests get [drain_grace_s] to finish; after that their
     cancel flags are set and the interpreter aborts them at the next
     watchdog point (they still answer, as [cancelled] errors) *)
  let deadline = Unix.gettimeofday () +. srv.opts.drain_grace_s in
  let cancelled = ref false in
  let rec wait () =
    Mutex.lock srv.mutex;
    let n = srv.inflight in
    if n > 0 && (not !cancelled) && Unix.gettimeofday () > deadline then begin
      Hashtbl.iter (fun _ flag -> Atomic.set flag true) srv.live;
      cancelled := true;
      Log.warn "serve: drain grace expired; cancelled %d in-flight request(s)" n
    end;
    Mutex.unlock srv.mutex;
    if n > 0 then begin
      Unix.sleepf 0.01;
      wait ()
    end
  in
  wait ();
  Pool.shutdown srv.pool;
  Mutex.lock srv.mutex;
  let conns = srv.conns in
  srv.conns <- [];
  Mutex.unlock srv.mutex;
  List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) conns;
  List.iter
    (fun (fd, _) -> try Unix.close fd with Unix.Unix_error _ -> ())
    srv.mconns;
  srv.mconns <- [];
  (match srv.metrics_fd with
  | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  (try Unix.close srv.listen_fd with Unix.Unix_error _ -> ());
  try Unix.unlink srv.opts.socket_path with Unix.Unix_error _ -> ()

(* Serve until shutdown is requested (the "shutdown" op, SIGTERM or
   SIGINT), then drain and clean up. *)
let run srv =
  install_signal_handlers srv;
  let scratch = Bytes.create 65536 in
  while not (Atomic.get srv.shutdown_flag) do
    let conn_fds = List.map (fun c -> c.fd) srv.conns in
    let mconn_fds = List.map fst srv.mconns in
    let extra =
      match srv.metrics_fd with Some fd -> [ fd ] | None -> []
    in
    (match
       Unix.select ((srv.listen_fd :: extra) @ conn_fds @ mconn_fds) [] [] 0.1
     with
    | readable, _, _ ->
      List.iter
        (fun fd ->
          if fd = srv.listen_fd then begin
            match Unix.accept srv.listen_fd with
            | cfd, _ ->
              let conn =
                {
                  fd = cfd;
                  wmutex = Mutex.create ();
                  rbuf = Buffer.create 1024;
                  skipping = false;
                  peer_open = true;
                  refs = 0;
                }
              in
              Mutex.lock srv.mutex;
              srv.conns <- conn :: srv.conns;
              Mutex.unlock srv.mutex
            | exception Unix.Unix_error _ -> ()
          end
          else if srv.metrics_fd = Some fd then begin
            match Unix.accept fd with
            | cfd, _ -> srv.mconns <- (cfd, Buffer.create 256) :: srv.mconns
            | exception Unix.Unix_error _ -> ()
          end
          else
            match List.assoc_opt fd srv.mconns with
            | Some buf -> read_metrics_conn srv fd buf scratch
            | None -> (
              match List.find_opt (fun c -> c.fd = fd) srv.conns with
              | Some conn -> read_chunk srv conn scratch
              | None -> ()))
        readable
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (Unix.EBADF, _, _) -> ());
    (* reap closed connections whose workers have all finished *)
    Mutex.lock srv.mutex;
    let dead, alive =
      List.partition (fun c -> (not c.peer_open) && c.refs = 0) srv.conns
    in
    srv.conns <- alive;
    Mutex.unlock srv.mutex;
    List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) dead
  done;
  shutdown srv

let serve opts =
  let srv = create opts in
  run srv
