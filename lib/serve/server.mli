(** The cinm_serve daemon: a fault-isolated compile-and-run service over
    a Unix-domain socket (newline-delimited JSON, see {!Protocol}).

    One event-loop thread owns all sockets; compile/run/bench requests
    are admitted against a bounded in-flight budget and executed on the
    shared domain pool under per-request {!Cinm_support.Config}
    snapshots (deadline, cancellation, strictness, step budget,
    interpreter backend, fault plan). Every failure of a request becomes
    a structured error response — the daemon only exits on shutdown. *)

type opts = {
  socket_path : string;
  jobs : int;  (** domain-pool size (0 = the default pool's size) *)
  max_inflight : int;  (** admitted (queued + executing) request cap *)
  max_request_bytes : int;  (** per-line cap; larger lines are shed *)
  default_deadline_s : float;
      (** applied when a request names none; 0 = none *)
  cache_capacity : int;  (** pipeline-cache entries *)
  drain_grace_s : float;
      (** shutdown: seconds before in-flight requests are cancelled *)
  metrics_port : int;
      (** serve Prometheus text exposition over HTTP on this localhost
          port ([GET /metrics]), multiplexed onto the daemon's select
          loop; 0 disables the listener (the "metrics" op still works) *)
  trace_dir : string option;
      (** when set, per-request traces ("trace": true) are written to
          [<dir>/<req_id>.trace.json] and the response carries
          ["trace_path"]; when unset the Perfetto JSON is inlined *)
  slow_request_s : float;
      (** requests slower than this (admission to response) emit one
          structured warning with the phase breakdown; 0 disables *)
  base_config : Cinm_support.Config.t;
      (** per-request configs start from this *)
}

val default_opts : ?socket_path:string -> unit -> opts

type t

(** Bind the socket (replacing a stale socket file) and create the
    server, but do not serve yet. *)
val create : opts -> t

(** Serve until shutdown is requested (the ["shutdown"] op, SIGTERM or
    SIGINT), then drain in-flight work, tear the pool down, close every
    connection and unlink the socket. *)
val run : t -> unit

(** [create] + [run]. *)
val serve : opts -> unit
