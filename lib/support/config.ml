(* Per-request execution configuration.

   Before the serve daemon existed, every robustness knob was a process
   global initialized from an environment variable at module-load time
   (CINM_STRICT in the pass manager, CINM_MAX_STEPS in the interpreter,
   CINM_PASS_BUDGET_S, CINM_REPRODUCER_DIR, CINM_INTERP, CINM_FAULTS).
   That is fine for a one-shot CLI process but races badly in a long-lived
   server: two concurrent requests that want different step budgets would
   fight over one ref.

   This module is the single snapshot point. [from_env] parses the
   environment exactly once into an immutable record; [default] is the
   mutable *process* default (what the CLI flags mutate, preserving the
   old behavior); a server builds one [t] per request — starting from its
   own base config, overriding per-request fields — and threads it
   explicitly through the pass manager, the driver and the interpreter.
   Nothing on a hot path reads [Sys.getenv] anymore.

   Deadlines and cancellation: [deadline] is an absolute host timestamp
   (0. = none) and [cancel] a shared flag a server may set to tear a
   request down cooperatively. [check] raises {!Cancelled} when either
   trips; the pass manager calls it between passes and the interpreter
   watchdog calls it on loop back-edges, so a request dies at the next
   safe point instead of taking the process with it. [Cancelled] is
   deliberately not one of the exceptions the pass runner converts into a
   structured pass-failure diagnostic: a request past its deadline must
   abort outright, not trigger the CPU-fallback retry path. *)

type t = {
  strict : bool;  (** verify + print->parse->print fixpoint after every pass *)
  pass_budget_s : float option;  (** per-pass wall-time budget *)
  reproducer_dir : string option;  (** crash-reproducer output directory *)
  max_steps : int;  (** interpreter watchdog budget; 0 = unlimited *)
  interp : string;  (** "tree" | "compiled" | "" = process default *)
  faults : Fault.plan option;  (** None = the process-default plan *)
  deadline : float;  (** absolute host time (Unix epoch); 0. = none *)
  cancel : bool Atomic.t;  (** cooperative cancellation flag *)
  req_id : string;  (** correlation id minted at accept time; "" outside a server *)
}

exception Cancelled of string

let () =
  Printexc.register_printer (function
    | Cancelled msg -> Some (Printf.sprintf "request cancelled: %s" msg)
    | _ -> None)

(* A single shared never-set flag for configs that are not cancellable,
   so the watchdog's [Atomic.get] is always valid without an option. *)
let never_cancelled : bool Atomic.t = Atomic.make false

let truthy s =
  match String.lowercase_ascii s with
  | "1" | "true" | "on" | "yes" -> true
  | _ -> false

let env_truthy name =
  match Sys.getenv_opt name with Some s -> truthy s | None -> false

let from_env () =
  {
    strict = env_truthy "CINM_STRICT";
    pass_budget_s =
      (match Sys.getenv_opt "CINM_PASS_BUDGET_S" with
      | Some s -> float_of_string_opt s
      | None -> None);
    reproducer_dir = Sys.getenv_opt "CINM_REPRODUCER_DIR";
    max_steps =
      (match Option.map int_of_string_opt (Sys.getenv_opt "CINM_MAX_STEPS") with
      | Some (Some n) when n > 0 -> n
      | _ -> 0);
    interp = Option.value (Sys.getenv_opt "CINM_INTERP") ~default:"";
    faults = None (* resolved through Fault.default, which owns CINM_FAULTS *);
    deadline = 0.0;
    cancel = never_cancelled;
    req_id = "";
  }

(* The process default: parsed from the environment on first use, mutated
   by the CLI entry points through the legacy setters (Pass.set_strict,
   Interp.set_default_max_steps, ...), which delegate here. *)
let process_default : t option ref = ref None

let default () =
  match !process_default with
  | Some c -> c
  | None ->
    let c = from_env () in
    process_default := Some c;
    c

let set_default c = process_default := Some c
let update_default f = set_default (f (default ()))

let cancelled c = Atomic.get c.cancel

let past_deadline c = c.deadline > 0.0 && Unix.gettimeofday () > c.deadline

let check c =
  if Atomic.get c.cancel then raise (Cancelled "cancelled by the server");
  if past_deadline c then
    raise
      (Cancelled
         (Printf.sprintf "deadline exceeded (%.3fs past)"
            (Unix.gettimeofday () -. c.deadline)))

let remaining_s c =
  if c.deadline <= 0.0 then None else Some (c.deadline -. Unix.gettimeofday ())
