(** Per-request execution configuration.

    One immutable record holding every robustness knob that used to be a
    scattered [Sys.getenv]-initialized global: strict checking, pass
    budgets, reproducer directory, interpreter watchdog budget,
    interpreter backend, fault plan, plus a request deadline and a
    cooperative cancellation flag. The environment is parsed exactly once
    ({!from_env}); a server snapshots one [t] per request and threads it
    through the pass manager, driver and interpreter, so concurrent
    requests never race on process state. *)

type t = {
  strict : bool;
      (** verify + print->parse->print fixpoint after every pass *)
  pass_budget_s : float option;  (** per-pass wall-time budget *)
  reproducer_dir : string option;  (** crash-reproducer output directory *)
  max_steps : int;  (** interpreter watchdog budget; 0 = unlimited *)
  interp : string;  (** "tree" | "compiled" | "" = process default *)
  faults : Fault.plan option;  (** [None] = the process-default plan *)
  deadline : float;  (** absolute host time (Unix epoch); 0. = none *)
  cancel : bool Atomic.t;  (** cooperative cancellation flag *)
  req_id : string;
      (** correlation id minted by the server at accept time and echoed in
          responses, log lines, trace spans and crash reproducers; [""]
          outside a server *)
}

(** Raised by {!check} (and the interpreter watchdog / pass manager
    calling it) when the deadline passed or the cancel flag was set.
    Deliberately distinct from pass-failure diagnostics: cancellation
    aborts a request outright instead of triggering degradation paths. *)
exception Cancelled of string

(** The shared always-false flag installed on non-cancellable configs. *)
val never_cancelled : bool Atomic.t

(** Parse the environment (CINM_STRICT, CINM_PASS_BUDGET_S,
    CINM_REPRODUCER_DIR, CINM_MAX_STEPS, CINM_INTERP) into a snapshot.
    Fault plans stay with {!Fault.default}, which owns CINM_FAULTS. *)
val from_env : unit -> t

(** The mutable process default: [from_env] on first use, mutated by the
    CLI entry points via the legacy setters. *)
val default : unit -> t

val set_default : t -> unit

(** [update_default f] replaces the process default with [f (default ())]. *)
val update_default : (t -> t) -> unit

val cancelled : t -> bool
val past_deadline : t -> bool

(** @raise Cancelled when cancelled or past the deadline. *)
val check : t -> unit

(** Seconds until the deadline ([None] when there is none); may be
    negative when already past. *)
val remaining_s : t -> float option
