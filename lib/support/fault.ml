(* Deterministic fault injection for the device simulators.

   Real CI/NM substrates are not the ideal machines the timing models
   describe: UPMEM ranks ship with permanently-failed DPUs that the SDK
   masks out at allocation, launches fail transiently, and memristive
   crossbars suffer stuck-at cells and per-tile conductance variation.
   This module is the single source of those faults.

   Design: a fault *plan* is a seed plus per-mechanism rates, and every
   injection decision is a *pure function* of the plan and the fault
   site's identity (DPU number, launch sequence number, crossbar cell,
   ...). There is no mutable PRNG state to advance, so the decisions are
   independent of evaluation order — in particular of how many domains
   the simulator runs on (`--jobs`) — and two runs with the same seed see
   byte-identical fault sets. The hash is a SplitMix64 chain over the
   seed, a per-mechanism tag and the site indices. *)

type rates = {
  dpu_fail : float;  (** permanent per-DPU failure (masked at alloc) *)
  dpu_transient : float;  (** per-(launch, DPU, attempt) dispatch failure *)
  mram_bitflip : float;  (** per-element bit-flip probability on scatter *)
  stuck0 : float;  (** per-cell crossbar stuck-at-0 probability *)
  stuck1 : float;  (** per-cell crossbar stuck-at-1 probability *)
  gain_var : float;  (** relative per-tile conductance gain spread *)
}

let no_rates =
  { dpu_fail = 0.0; dpu_transient = 0.0; mram_bitflip = 0.0; stuck0 = 0.0;
    stuck1 = 0.0; gain_var = 0.0 }

type plan = { seed : int; rates : rates }

let make ?(seed = 0) rates = { seed; rates }

(* ----- the splittable hash ----- *)

let golden = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Mechanism tags keep the fault streams independent: the same indices
   never collide across mechanisms. *)
let tag_perm = 1
let tag_transient = 2
let tag_bitflip = 3
let tag_stuck = 4
let tag_gain = 5

let hash plan tag ids =
  let z =
    ref (mix64 (Int64.add (Int64.of_int plan.seed)
                  (Int64.mul golden (Int64.of_int tag))))
  in
  List.iter
    (fun i -> z := mix64 (Int64.add (Int64.logxor !z (Int64.of_int i)) golden))
    ids;
  !z

(* Uniform float in [0, 1) from the top 53 bits of the hash. *)
let uniform plan tag ids =
  Int64.to_float (Int64.shift_right_logical (hash plan tag ids) 11)
  *. (1.0 /. 9007199254740992.0)

(* ----- injectors ----- *)

let dpu_failed plan ~dpu =
  plan.rates.dpu_fail > 0.0 && uniform plan tag_perm [ dpu ] < plan.rates.dpu_fail

let launch_transient plan ~launch ~dpu ~attempt =
  plan.rates.dpu_transient > 0.0
  && uniform plan tag_transient [ launch; dpu; attempt ] < plan.rates.dpu_transient

let element_bitflip plan ~scatter ~pu ~elem =
  if plan.rates.mram_bitflip <= 0.0 then None
  else begin
    let h = hash plan tag_bitflip [ scatter; pu; elem ] in
    let u = Int64.to_float (Int64.shift_right_logical h 11) *. (1.0 /. 9007199254740992.0) in
    if u < plan.rates.mram_bitflip then
      (* which of the 32 bits flips comes from untouched low hash bits *)
      Some (Int64.to_int (Int64.logand h 31L))
    else None
  end

let stuck_cell plan ~tile ~cell =
  let r = plan.rates in
  if r.stuck0 <= 0.0 && r.stuck1 <= 0.0 then None
  else begin
    let u = uniform plan tag_stuck [ tile; cell ] in
    if u < r.stuck0 then Some 0
    else if u < r.stuck0 +. r.stuck1 then Some 1
    else None
  end

let tile_gain plan ~tile =
  if plan.rates.gain_var <= 0.0 then 1.0
  else 1.0 +. (plan.rates.gain_var *. ((2.0 *. uniform plan tag_gain [ tile ]) -. 1.0))

(* ----- spec parsing (CINM_FAULTS / bench --faults) ----- *)

(* Spec grammar: comma-separated [key=value] pairs, e.g.
     dpu_fail=0.05,bitflip=1e-7,seed=7
   [dpu_fail] sets both the permanent and the transient rate (a flaky DPU
   model); [perm]/[transient] override each individually. *)
let parse spec =
  let parse_pair (rates, seed) pair =
    match String.index_opt pair '=' with
    | None -> Error (Printf.sprintf "fault spec: expected key=value, got %S" pair)
    | Some i ->
      let key = String.trim (String.sub pair 0 i) in
      let v = String.trim (String.sub pair (i + 1) (String.length pair - i - 1)) in
      let float_v () =
        match float_of_string_opt v with
        | Some f when f >= 0.0 -> Ok f
        | _ -> Error (Printf.sprintf "fault spec: %s expects a rate >= 0, got %S" key v)
      in
      let ( >>= ) r f = Result.bind r f in
      (match key with
      | "dpu_fail" ->
        float_v () >>= fun f ->
        Ok ({ rates with dpu_fail = f; dpu_transient = f }, seed)
      | "perm" -> float_v () >>= fun f -> Ok ({ rates with dpu_fail = f }, seed)
      | "transient" -> float_v () >>= fun f -> Ok ({ rates with dpu_transient = f }, seed)
      | "bitflip" -> float_v () >>= fun f -> Ok ({ rates with mram_bitflip = f }, seed)
      | "stuck0" -> float_v () >>= fun f -> Ok ({ rates with stuck0 = f }, seed)
      | "stuck1" -> float_v () >>= fun f -> Ok ({ rates with stuck1 = f }, seed)
      | "gain" -> float_v () >>= fun f -> Ok ({ rates with gain_var = f }, seed)
      | "seed" -> (
        match int_of_string_opt v with
        | Some s -> Ok (rates, s)
        | None -> Error (Printf.sprintf "fault spec: seed expects an integer, got %S" v))
      | _ -> Error (Printf.sprintf "fault spec: unknown key %S" key))
  in
  let pairs =
    List.filter (fun s -> String.trim s <> "") (String.split_on_char ',' spec)
  in
  if pairs = [] then Error "fault spec: empty"
  else
    List.fold_left
      (fun acc pair -> Result.bind acc (fun st -> parse_pair st pair))
      (Ok (no_rates, 0))
      pairs
    |> Result.map (fun (rates, seed) -> { seed; rates })

let to_string p =
  let r = p.rates in
  let field name v acc = if v > 0.0 then Printf.sprintf "%s=%g," name v ^ acc else acc in
  Printf.sprintf "seed=%d,%s" p.seed
    (field "perm" r.dpu_fail
       (field "transient" r.dpu_transient
          (field "bitflip" r.mram_bitflip
             (field "stuck0" r.stuck0
                (field "stuck1" r.stuck1 (field "gain" r.gain_var ""))))))
  |> fun s -> if String.length s > 0 && s.[String.length s - 1] = ',' then String.sub s 0 (String.length s - 1) else s

(* ----- the process-wide default plan ----- *)

(* Like [Pool.default]: simulators pick the default plan up at creation
   unless one is passed explicitly, so [CINM_FAULTS] (or the bench
   harness's --faults flag via [set_default]) reaches every machine
   without threading a parameter through each call site. *)

let parsed_env = ref false
let default_plan : plan option ref = ref None

let default () =
  if not !parsed_env then begin
    parsed_env := true;
    match Sys.getenv_opt "CINM_FAULTS" with
    | None | Some "" -> ()
    | Some spec -> (
      match parse spec with
      | Ok p -> default_plan := Some p
      | Error msg -> Log.warn "ignoring CINM_FAULTS: %s" msg)
  end;
  !default_plan

let set_default p =
  parsed_env := true;
  default_plan := p
