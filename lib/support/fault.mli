(** Deterministic, seeded fault injection for the device simulators.

    A {!plan} bundles a seed with per-mechanism rates. Every injector is a
    pure function of the plan and the fault site's identity, so fault
    decisions are independent of evaluation order (and hence of the
    simulator's [--jobs] count): the same seed always yields the same
    fault set. *)

type rates = {
  dpu_fail : float;  (** permanent per-DPU failure probability *)
  dpu_transient : float;  (** per-(launch, DPU, attempt) dispatch failure *)
  mram_bitflip : float;  (** per-element bit-flip probability on scatter *)
  stuck0 : float;  (** per-cell crossbar stuck-at-0 probability *)
  stuck1 : float;  (** per-cell crossbar stuck-at-1 probability *)
  gain_var : float;  (** relative per-tile conductance gain spread *)
}

val no_rates : rates
(** All rates zero. *)

type plan = { seed : int; rates : rates }

val make : ?seed:int -> rates -> plan

(** {1 Injectors} *)

val dpu_failed : plan -> dpu:int -> bool
(** Is physical DPU [dpu] permanently failed? Stable across the run. *)

val launch_transient : plan -> launch:int -> dpu:int -> attempt:int -> bool
(** Does dispatch attempt [attempt] of launch [launch] on physical DPU
    [dpu] fail transiently? *)

val element_bitflip : plan -> scatter:int -> pu:int -> elem:int -> int option
(** [Some bit] if element [elem] written to PU [pu] during scatter number
    [scatter] suffers a flip of bit [bit] (0..31). *)

val stuck_cell : plan -> tile:int -> cell:int -> int option
(** [Some 0] / [Some 1] if crossbar cell [cell] of tile [tile] is stuck
    at low / high conductance. Stable across the run. *)

val tile_gain : plan -> tile:int -> float
(** Multiplicative conductance gain of tile [tile]; 1.0 when [gain_var]
    is zero, otherwise uniform in [1 - gain_var, 1 + gain_var]. *)

(** {1 Spec parsing} *)

val parse : string -> (plan, string) result
(** Parse a spec like ["dpu_fail=0.05,bitflip=1e-7,seed=7"]. Keys:
    [dpu_fail] (sets both permanent and transient rates), [perm],
    [transient], [bitflip], [stuck0], [stuck1], [gain], [seed]. *)

val to_string : plan -> string

(** {1 Process-wide default} *)

val default : unit -> plan option
(** The default plan picked up by simulators at creation: parsed once
    from [CINM_FAULTS] unless overridden by {!set_default}. [None] means
    fault-free. *)

val set_default : plan option -> unit
(** Override the default plan (e.g. from [bench --faults]); suppresses
    [CINM_FAULTS] parsing. *)
