(* Leveled logging. One tiny module so that every "[cinm] ..." line in
   the tree has a single, filterable exit point: CINM_LOG selects the
   minimum level at startup, tests capture lines with [set_sink], and CI
   lints lib/ against bare Printf.eprintf outside this file. *)

type level = Debug | Info | Warn

let severity = function Debug -> 0 | Info -> 1 | Warn -> 2

let level_name = function Debug -> "debug" | Info -> "info" | Warn -> "warn"

(* Minimum severity that is emitted; 3 silences everything. Warnings stay
   on by default, matching the pre-logger behaviour of the call sites. *)
let threshold = ref (severity Warn)

let set_level l = threshold := severity l
let set_silent () = threshold := 3

let of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | _ -> None

let () =
  match Sys.getenv_opt "CINM_LOG" with
  | None | Some "" -> ()
  | Some ("quiet" | "silent" | "none") -> threshold := 3
  | Some s -> ( match of_string s with Some l -> set_level l | None -> ())

let enabled l = severity l >= !threshold

let sink : (level -> string -> unit) option ref = ref None
let set_sink s = sink := s

(* Per-domain request context: the serve daemon sets the request id
   around request execution, and every line the request logs — from the
   pass manager, the driver, a simulator — carries it. Domain-local so
   concurrent requests on different workers never mix prefixes. *)
let ctx_key : string Domain.DLS.key = Domain.DLS.new_key (fun () -> "")

let context () = Domain.DLS.get ctx_key

let with_context id f =
  let prev = Domain.DLS.get ctx_key in
  Domain.DLS.set ctx_key id;
  Fun.protect ~finally:(fun () -> Domain.DLS.set ctx_key prev) f

let emit l s =
  let s = match context () with "" -> s | id -> "[req:" ^ id ^ "] " ^ s in
  match !sink with
  | Some f -> f l s
  | None -> (
    (* warnings keep the historical bare "[cinm] " prefix; the chattier
       levels are tagged so a debug stream stays greppable *)
    match l with
    | Warn -> Printf.eprintf "[cinm] %s\n%!" s
    | _ -> Printf.eprintf "[cinm:%s] %s\n%!" (level_name l) s)

let logf l fmt =
  if enabled l then Printf.ksprintf (emit l) fmt
  else Printf.ikfprintf (fun () -> ()) () fmt

let debug fmt = logf Debug fmt
let info fmt = logf Info fmt
let warn fmt = logf Warn fmt
