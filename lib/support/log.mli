(** Leveled logging for the CINM stack.

    All human-facing diagnostics (`[cinm] ...` lines) go through this
    module instead of bare [Printf.eprintf], so they can be filtered with
    [CINM_LOG=debug|info|warn|quiet] and captured in tests via
    {!set_sink}. CI lints `lib/` against bare [Printf.eprintf] outside
    this file. *)

type level = Debug | Info | Warn

(** Minimum level that is emitted (default [Warn], i.e. only warnings).
    Overridden at startup by the [CINM_LOG] environment variable. *)
val set_level : level -> unit

(** Silence every level (the [CINM_LOG=quiet] behaviour). *)
val set_silent : unit -> unit

val of_string : string -> level option
val level_name : level -> string

(** Would a message at this level currently be emitted? *)
val enabled : level -> bool

(** Redirect emitted lines (already formatted, without the `[cinm]`
    prefix) to a custom sink — used by tests; [None] restores stderr. *)
val set_sink : (level -> string -> unit) option -> unit

(** Run [f] with a per-domain request context: every line emitted by
    this domain inside [f] is prefixed with ["[req:<id>] "] (sinks see
    the prefixed string too). [""] clears the prefix. Restored on exit,
    even on exceptions; nested contexts shadow. *)
val with_context : string -> (unit -> 'a) -> 'a

(** The calling domain's current request context ([""] when none). *)
val context : unit -> string

val debug : ('a, unit, string, unit) format4 -> 'a
val info : ('a, unit, string, unit) format4 -> 'a
val warn : ('a, unit, string, unit) format4 -> 'a
